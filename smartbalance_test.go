package smartbalance

import (
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	plat := QuadHMP()
	bal, err := TrainSmartBalance(plat.Types, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(plat, bal)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := Mix("Mix1", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SpawnAll(specs); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.TotalInstructions() == 0 {
		t.Fatal("no work executed")
	}
	if st.EnergyEfficiency() <= 0 {
		t.Fatal("no efficiency computed")
	}
	if err := sys.Kernel().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Run extension through the facade.
	before := st.TotalInstructions()
	if err := sys.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().TotalInstructions() <= before {
		t.Fatal("extension made no progress")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, NewVanillaBalancer()); err == nil {
		t.Fatal("nil platform accepted")
	}
	if _, err := NewSystem(QuadHMP(), nil); err == nil {
		t.Fatal("nil balancer accepted")
	}
}

func TestRunValidation(t *testing.T) {
	sys, err := NewSystem(QuadHMP(), NewVanillaBalancer())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := sys.Run(-time.Second); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestBalancerConstructors(t *testing.T) {
	if NewVanillaBalancer().Name() != "vanilla-linux" {
		t.Fatal("vanilla constructor broken")
	}
	if NewPinnedBalancer().Name() != "pinned" {
		t.Fatal("pinned constructor broken")
	}
	bl := OctaBigLittle()
	g, err := NewGTSBalancer(bl)
	if err != nil || g.Name() != "arm-gts" {
		t.Fatalf("GTS constructor: %v", err)
	}
	ik, err := NewIKSBalancer(bl)
	if err != nil || ik.Name() != "linaro-iks" {
		t.Fatalf("IKS constructor: %v", err)
	}
	if _, err := NewGTSBalancer(QuadHMP()); err == nil {
		t.Fatal("GTS on 4-type platform accepted")
	}
}

func TestWorkloadPassthroughs(t *testing.T) {
	if len(Benchmarks()) < 14 {
		t.Fatal("benchmark list short")
	}
	if len(MixNames()) != 6 {
		t.Fatal("mix list wrong")
	}
	specs, err := IMB(High, Low, 3, 1)
	if err != nil || len(specs) != 3 {
		t.Fatalf("IMB passthrough: %v", err)
	}
	if _, err := Benchmark("nope", 1, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPlatformPassthroughs(t *testing.T) {
	if QuadHMP().NumCores() != 4 || OctaBigLittle().NumCores() != 8 {
		t.Fatal("platform constructors broken")
	}
	p, err := ScalingHMP(16)
	if err != nil || p.NumCores() != 16 {
		t.Fatalf("ScalingHMP: %v", err)
	}
	if len(Table2Types()) != 4 || len(BigLittleTypes()) != 2 {
		t.Fatal("type sets broken")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 24 { // Table 1 + 9 evaluation artefacts + 14 ablations
		t.Fatalf("%d experiment ids", len(ids))
	}
	opts := DefaultExperimentOptions()
	opts.Quick = true
	opts.DurationNs = 200e6
	opts.ThreadCounts = []int{2}
	res, err := RunExperiment("T3", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "T3" || res.Table.NumRows() != 6 {
		t.Fatal("T3 regeneration broken via facade")
	}
	if _, err := RunExperiment("F99", opts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTrainPredictorFacade(t *testing.T) {
	pred, err := TrainPredictor(Table2Types(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Trained() {
		t.Fatal("facade-trained predictor incomplete")
	}
}

func TestObjectiveGoalFacade(t *testing.T) {
	pred, err := TrainPredictor(Table2Types(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSmartBalanceConfig()
	cfg.Objective = GoalMaxThroughput
	ctrl, err := NewSmartBalanceController(pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(QuadHMP(), ctrl)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := Benchmark("swaptions", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SpawnAll(specs); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(800 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	throughput := sys.Stats().IPS()

	// Same workload under the efficiency goal: strictly less throughput.
	ee, err := TrainSmartBalance(Table2Types(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sys2, _ := NewSystem(QuadHMP(), ee)
	specs2, _ := Benchmark("swaptions", 4, 3)
	_ = sys2.SpawnAll(specs2)
	_ = sys2.Run(800 * time.Millisecond)
	if throughput <= sys2.Stats().IPS() {
		t.Fatalf("throughput goal did not raise IPS: %.4g vs %.4g", throughput, sys2.Stats().IPS())
	}
}

func TestThermalFacade(t *testing.T) {
	plat := QuadHMP()
	aw, tracker, err := NewThermalSmartBalance(plat, 4)
	if err != nil {
		t.Fatal(err)
	}
	if aw.Name() != "smartbalance-thermal" {
		t.Fatalf("Name() = %q", aw.Name())
	}
	sys, err := NewSystem(plat, aw)
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := Benchmark("swaptions", 2, 4)
	if err := sys.SpawnAll(specs); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if tracker.Max() <= 0 {
		t.Fatal("tracker never updated")
	}
	if sys.Stats().TotalInstructions() == 0 {
		t.Fatal("no work under thermal wrapper")
	}
}

func TestWorkloadBuilderFacade(t *testing.T) {
	specs, err := NewWorkload("svc").
		Compute(5e6, 2.0).
		Sleep(3*time.Millisecond).
		Workers(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d workers", len(specs))
	}
	if _, err := NewWorkload("").Compute(1e6, 2).Build(); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestDVFSFacade(t *testing.T) {
	points := []OperatingPoint{{FreqMHz: 1500, VoltageV: 0.8}, {FreqMHz: 500, VoltageV: 0.6}}
	p, err := DVFSPlatform(Table2Types()[1], points, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 4 || p.NumTypes() != 2 {
		t.Fatalf("DVFS platform %d cores, %d types", p.NumCores(), p.NumTypes())
	}
	if _, err := DVFSPlatform(Table2Types()[1], nil, 1); err == nil {
		t.Fatal("empty points accepted")
	}
}

func TestSystemFullAndTraceFacade(t *testing.T) {
	sys, err := NewSystemFull(QuadHMP(), NewVanillaBalancer(), DefaultKernelConfig(),
		MachineOptions{BusBandwidthGBps: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sys.EnableTrace(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EnableTrace(0); err == nil {
		t.Fatal("zero trace limit accepted")
	}
	specs, _ := Benchmark("canneal", 2, 2)
	_ = sys.SpawnAll(specs)
	if err := sys.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if rec.TotalInstructions() == 0 {
		t.Fatal("trace recorded nothing")
	}
	if rec.Summary() == "" {
		t.Fatal("empty trace summary")
	}
	if _, err := NewSystemFull(QuadHMP(), NewVanillaBalancer(), DefaultKernelConfig(),
		MachineOptions{BusBandwidthGBps: -1}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestWriteReportFacade(t *testing.T) {
	opts := DefaultExperimentOptions()
	opts.Quick = true
	opts.DurationNs = 200e6
	opts.ThreadCounts = []int{2}
	res, err := RunExperiment("T2", opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteReport(&sb, []*ExperimentResult{res}, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "T2") {
		t.Fatal("report missing artefact")
	}
}
