package smartbalance

// Epoch hot-path benchmarks: the cost of one sense→predict→balance
// iteration in isolation, the quantity ROADMAP item 2 tracks across
// PRs via BENCH_core.json (`make bench`). The harness runs a real
// system long enough to capture one representative epoch's sensing
// snapshot, then replays the controller's Rebalance against it so the
// numbers isolate the balancer (Fig. 7's overhead claim) from the
// workload simulation around it.

import (
	"testing"
	"time"

	"smartbalance/internal/contention"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
)

// captureBalancer wraps the SmartBalance controller and keeps the last
// epoch's sensing snapshot so benchmarks can replay it.
type captureBalancer struct {
	inner   *SmartBalanceController
	threads []hpc.ThreadSample
	cores   []hpc.CoreEpochSample
	now     kernel.Time
}

func (c *captureBalancer) Name() string { return c.inner.Name() }

func (c *captureBalancer) Rebalance(k *kernel.Kernel, now kernel.Time,
	threads []hpc.ThreadSample, cores []hpc.CoreEpochSample) {
	c.threads, c.cores, c.now = threads, cores, now
	c.inner.Rebalance(k, now, threads, cores)
}

// epochHotHarness builds an HMP system under SmartBalance, runs it for
// enough epochs to warm every per-epoch scratch buffer, and returns the
// controller plus a captured epoch snapshot to replay. contended
// switches to the clustered big.LITTLE platform with the LLC-domain
// contention model enabled and coupled to the controller, so the replay
// exercises the contention-aware objective.
func epochHotHarness(tb testing.TB, telemetry, contended bool) (*captureBalancer, *kernel.Kernel) {
	tb.Helper()
	plat := QuadHMP()
	var mopts MachineOptions
	if contended {
		plat = OctaBigLittle()
		mopts.Contention = contention.Spec{Enabled: true}
	}
	pred, err := TrainPredictor(plat.Types, 1)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := DefaultSmartBalanceConfig()
	cfg.Clock = NewFakeClock(time.Microsecond)
	inner, err := NewSmartBalanceController(pred, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	cap := &captureBalancer{inner: inner}
	sys, err := NewSystemFull(plat, cap, DefaultKernelConfig(), mopts)
	if err != nil {
		tb.Fatal(err)
	}
	if contended {
		inner.SetContention(sys.Kernel().Machine().Contention())
	}
	if telemetry {
		tcfg := TelemetryConfig{MaxEpochs: 64}
		inner.SetTelemetry(sys.EnableTelemetry(tcfg))
	}
	specs, err := Mix("Mix1", 8, 1)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sys.SpawnAll(specs); err != nil {
		tb.Fatal(err)
	}
	// 12 epochs: enough for every thread to have been sensed and for
	// amortised scratch capacities to stabilise.
	if err := sys.Run(12 * 50 * time.Millisecond); err != nil {
		tb.Fatal(err)
	}
	if cap.threads == nil {
		tb.Fatal("no epoch snapshot captured")
	}
	return cap, sys.Kernel()
}

// epochAllocs measures steady-state heap allocations per replayed
// sense→predict→balance epoch.
func epochAllocs(tb testing.TB, telemetry, contended bool) float64 {
	tb.Helper()
	cap, k := epochHotHarness(tb, telemetry, contended)
	// Warm the controller's scratch buffers beyond the captured state.
	for i := 0; i < 16; i++ {
		cap.inner.Rebalance(k, cap.now, cap.threads, cap.cores)
	}
	return testing.AllocsPerRun(200, func() {
		cap.inner.Rebalance(k, cap.now, cap.threads, cap.cores)
	})
}

// TestEpochAllocsReport prints the measured allocs/epoch for both
// telemetry states (informational; the pinned ceilings live in
// TestEpochHotAllocsPinned).
func TestEpochAllocsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Logf("allocs/epoch telemetry-off: %.1f", epochAllocs(t, false, false))
	t.Logf("allocs/epoch telemetry-on:  %.1f", epochAllocs(t, true, false))
	t.Logf("allocs/epoch contended:     %.1f", epochAllocs(t, false, true))
}

// TestEpochHotAllocsPinned pins the steady-state allocation budget of
// the epoch path — the enforcement half of the sbvet hotpath contract
// (DESIGN.md §11). With telemetry disabled the epoch is allocation-free;
// enabled, the only allocations left are the ones the suppressions in
// internal/telemetry document (retained span history, canonical attr
// rendering, arena amortisation). The pre-refactor baseline was ~10,774
// allocs/epoch in both states.
func TestEpochHotAllocsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if got := epochAllocs(t, false, false); got != 0 {
		t.Errorf("telemetry-off epoch allocates: %.1f allocs/epoch, want 0", got)
	}
	const maxEnabled = 8
	if got := epochAllocs(t, true, false); got > maxEnabled {
		t.Errorf("telemetry-on epoch allocates %.1f allocs/epoch, want <= %d", got, maxEnabled)
	}
	// The contention-aware objective rides the same scratch buffers: the
	// budget does not move when the model is on.
	if got := epochAllocs(t, false, true); got != 0 {
		t.Errorf("contended epoch allocates: %.1f allocs/epoch, want 0", got)
	}
}

// BenchmarkEpochHot measures one replayed sense→predict→balance epoch
// with telemetry disabled — the ns/epoch headline of BENCH_core.json.
func BenchmarkEpochHot(b *testing.B) {
	cap, k := epochHotHarness(b, false, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cap.inner.Rebalance(k, cap.now, cap.threads, cap.cores)
	}
}

// BenchmarkEpochHotTelemetry is the same epoch replay with the
// telemetry collector enabled — the enabled-path cost contract.
func BenchmarkEpochHotTelemetry(b *testing.B) {
	cap, k := epochHotHarness(b, true, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cap.inner.Rebalance(k, cap.now, cap.threads, cap.cores)
	}
}

// BenchmarkEpochHotContended replays the epoch on the clustered
// big.LITTLE platform with the LLC-domain contention model coupled in —
// the contention-aware objective's overhead headline in BENCH_core.json.
func BenchmarkEpochHotContended(b *testing.B) {
	cap, k := epochHotHarness(b, false, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cap.inner.Rebalance(k, cap.now, cap.threads, cap.cores)
	}
}
