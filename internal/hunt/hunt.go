package hunt

import (
	"fmt"
	"io"
	"sort"

	"smartbalance/internal/rng"
	"smartbalance/internal/sweep"
)

// huntSeedTag decorrelates the hunt's mutation stream from every other
// consumer of the same user-facing seed (kernel, arrival, fault
// streams all derive with their own tags).
const huntSeedTag = 0x4B1D_5EEC_A57E

// Config tunes one hunt.
type Config struct {
	// Seed drives the entire search; equal seeds replay equal hunts.
	Seed uint64
	// Generations and Population size the evolutionary loop.
	Generations int
	// Population is the number of candidates per generation.
	Population int
	// Workers bounds the evaluation pool (sweep engine workers). Never
	// changes any output, only wall-clock.
	Workers int
	// Cache, when non-nil, serves and stores candidate evaluations.
	Cache *sweep.Cache
	// SLO are the fleet-tier service-level objectives.
	SLO SLO
	// Margin is the relative tolerance on the comparative objectives
	// (ee-loss, policy-loss): a loss smaller than this is noise, not a
	// counterexample.
	Margin float64
	// Tiers restricts the search ("node", "fleet"); empty hunts both.
	Tiers []string
	// MaxCounterexamples caps the minimized corpus (0 = one per
	// objective, the natural maximum).
	MaxCounterexamples int
	// Log receives the canonical hunt log. The log is part of the
	// determinism contract: byte-identical across runs with equal
	// seeds, for any Workers. Nil discards it.
	Log io.Writer
}

// withDefaults resolves zero-valued fields.
func (c Config) withDefaults() Config {
	if c.Generations <= 0 {
		c.Generations = 4
	}
	if c.Population <= 0 {
		c.Population = 12
	}
	if c.SLO.P99Ms <= 0 {
		c.SLO.P99Ms = DefaultSLO().P99Ms
	}
	if c.SLO.JPR <= 0 {
		c.SLO.JPR = DefaultSLO().JPR
	}
	if c.Margin <= 0 {
		c.Margin = 0.02
	}
	if len(c.Tiers) == 0 {
		c.Tiers = []string{TierNode, TierFleet}
	}
	return c
}

// Result is one hunt's findings.
type Result struct {
	// Counterexamples holds the minimized corpus entries, sorted by
	// name — at most one per objective.
	Counterexamples []Entry
	// Evaluated counts candidate evaluations across the generation
	// loop (minimizer evaluations excluded).
	Evaluated int
}

// Run executes one hunt: seed a population, evolve it against the
// falsification objectives, minimize the best violation per objective,
// and return the corpus entries.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	for _, t := range cfg.Tiers {
		if t != TierNode && t != TierFleet {
			return nil, fmt.Errorf("hunt: unknown tier %q (node | fleet)", t)
		}
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	logf("hunt seed=%d gens=%d pop=%d tiers=%s slo-p99=%s slo-jpr=%s margin=%s",
		cfg.Seed, cfg.Generations, cfg.Population, joinTiers(cfg.Tiers),
		g(cfg.SLO.P99Ms), g(cfg.SLO.JPR), g(cfg.Margin))

	e := &Evaluator{SLO: cfg.SLO, Margin: cfg.Margin, Cache: cfg.Cache, Workers: cfg.Workers}
	r := rng.New(cfg.Seed ^ huntSeedTag)
	pop := seedPopulation(r, cfg.Population, cfg.Tiers)

	// best tracks the highest-scoring violating candidate per objective.
	type found struct {
		cand Candidate
		v    Violation
	}
	best := map[string]found{}
	res := &Result{}

	for gen := 0; gen < cfg.Generations; gen++ {
		evals := e.EvaluateAll(pop)
		res.Evaluated += len(evals)
		violations := 0
		for i, ev := range evals {
			if ev.Err != nil {
				logf("gen=%d cand=%d tier=%s err=%v", gen, i, ev.Cand.Tier, ev.Err)
				continue
			}
			top := ev.Violations[0]
			for _, v := range ev.Violations[1:] {
				if v.Score > top.Score {
					top = v
				}
			}
			logf("gen=%d cand=%d tier=%s fit=%s top=%s(%s) key=%s",
				gen, i, ev.Cand.Tier, g(ev.Fitness), top.Objective, top.Detail, ev.Cand.Key())
			for _, v := range ev.Violations {
				if v.Score < 0 {
					continue
				}
				violations++
				if b, ok := best[v.Objective]; !ok || v.Score > b.v.Score {
					best[v.Objective] = found{cand: ev.Cand, v: v}
				}
			}
		}
		logf("gen=%d violations=%d objectives-hit=%d", gen, violations, len(best))
		if gen == cfg.Generations-1 {
			break
		}
		pop = nextGeneration(r, pop, evals, cfg.Population, cfg.Tiers)
	}

	max := cfg.MaxCounterexamples
	if max <= 0 || max > len(Objectives) {
		max = len(Objectives)
	}
	for _, obj := range Objectives {
		if len(res.Counterexamples) >= max {
			break
		}
		b, ok := best[obj]
		if !ok {
			continue
		}
		m := Minimize(e, b.cand, obj)
		if m.Violation.Objective != obj {
			// The found candidate stopped reproducing under the
			// minimizer's re-check; record nothing rather than an
			// unverified entry.
			logf("minimize obj=%s dropped: no longer reproduces", obj)
			continue
		}
		logf("minimize obj=%s evals=%d steps=%d score=%s key=%s",
			obj, m.Evals, m.Steps, g(m.Violation.Score), m.Cand.Key())
		res.Counterexamples = append(res.Counterexamples, NewEntry(m, cfg.SLO, cfg.Margin))
	}
	sort.Slice(res.Counterexamples, func(i, j int) bool {
		return res.Counterexamples[i].Name() < res.Counterexamples[j].Name()
	})
	logf("hunt done evaluated=%d counterexamples=%d", res.Evaluated, len(res.Counterexamples))
	return res, nil
}

// nextGeneration keeps an elite quarter and fills the rest with
// mutations of the elites, drawn serially from the hunt stream after
// all evaluation completed, so parallel evaluation cannot reorder the
// draws. Elitism is stratified per tier: tiers score on different
// objective scales (a fleet p99 overshoot dwarfs a node efficiency
// loss), and unstratified selection lets one tier's scale take over
// the population and blind the hunt to the other tier's objectives.
// Within a tier the order is fitness-descending, ties to the earlier
// candidate — stable and deterministic.
func nextGeneration(r *rng.Rand, pop []Candidate, evals []Evaluation, size int, tiers []string) []Candidate {
	var elites []int
	for _, tier := range tiers {
		var order []int
		for i := range evals {
			if evals[i].Cand.Tier == tier {
				order = append(order, i)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			return evals[order[a]].Fitness > evals[order[b]].Fitness
		})
		quota := size / (4 * len(tiers))
		if quota < 2 {
			quota = 2
		}
		if quota > len(order) {
			quota = len(order)
		}
		elites = append(elites, order[:quota]...)
	}
	next := make([]Candidate, 0, size)
	for _, i := range elites {
		if len(next) < size {
			next = append(next, pop[i])
		}
	}
	for i := 0; len(next) < size; i++ {
		next = append(next, Mutate(r, pop[elites[i%len(elites)]]))
	}
	return next
}

// joinTiers renders the tier list canonically.
func joinTiers(tiers []string) string {
	out := ""
	for i, t := range tiers {
		if i > 0 {
			out += ","
		}
		out += t
	}
	return out
}
