package hunt

import (
	"strconv"

	"smartbalance/internal/fault"
	"smartbalance/internal/workload"
)

// Delta-debugging minimizer: greedy param-by-param reduction of a
// counterexample while its violation keeps reproducing. Reductions are
// proposed from a fixed, ordered table and accepted iff the reduced
// candidate still violates the same objective, so the trace — and the
// minimized result — is a deterministic function of the input
// candidate and the evaluator configuration. The seed is never an
// axis: a counterexample is pinned at the seed that found it.
//
// Evaluations flow through the shared evaluator, so a minimization
// pass over a cached counterexample costs almost nothing: most
// reductions were already tried during the hunt or a previous pass.

// maxMinimizePasses bounds the outer fixpoint loop. Each pass walks
// every axis once; reductions monotonically shrink the genome, so a
// handful of passes reaches the fixpoint in practice and the bound
// only guards pathological oscillation.
const maxMinimizePasses = 4

// Minimized is the result of one minimization.
type Minimized struct {
	Cand      Candidate
	Violation Violation
	// Evals counts the candidate evaluations the minimizer spent.
	Evals int
	// Steps counts the accepted reductions.
	Steps int
}

// Minimize shrinks c while the named objective keeps violating.
// c must already violate obj (Score >= 0) under e's configuration.
func Minimize(e *Evaluator, c Candidate, obj string) Minimized {
	m := Minimized{Cand: clone(c)}
	check := func(cand Candidate) (Violation, bool) {
		m.Evals++
		ev := e.Evaluate(cand)
		if ev.Err != nil {
			return Violation{}, false
		}
		for _, v := range ev.Violations {
			if v.Objective == obj && v.Score >= 0 {
				return v, true
			}
		}
		return Violation{}, false
	}
	v, ok := check(m.Cand)
	if !ok {
		// The caller handed a non-reproducing candidate; return it
		// unshrunk with the zero violation so the caller can notice.
		return m
	}
	m.Violation = v
	for pass := 0; pass < maxMinimizePasses; pass++ {
		accepted := 0
		for _, propose := range axes(m.Cand) {
			for _, cand := range propose(m.Cand) {
				if cand.Key() == m.Cand.Key() {
					continue
				}
				if nv, ok := check(cand); ok {
					m.Cand = cand
					m.Violation = nv
					m.Steps++
					accepted++
					break
				}
			}
		}
		if accepted == 0 {
			break
		}
	}
	return m
}

// axis proposes reduced candidates for one genome parameter, most
// aggressive first; the minimizer accepts the first that still
// violates.
type axis func(Candidate) []Candidate

// axes returns the tier's reduction table in fixed order.
func axes(c Candidate) []axis {
	if c.Tier == TierNode {
		return nodeAxes
	}
	return fleetAxes
}

// reduceNode builds a candidate with the node genome transformed.
func reduceNode(c Candidate, f func(*NodeGenome)) Candidate {
	out := clone(c)
	f(out.Node)
	return out
}

// reduceFleet builds a candidate with the fleet genome transformed.
func reduceFleet(c Candidate, f func(*FleetGenome)) Candidate {
	out := clone(c)
	f(out.Fleet)
	return out
}

// int64Steps proposes target, then the midpoint between current and
// target — a two-probe bisection per pass; the outer fixpoint loop
// converges the rest of the way.
func int64Steps(cur, target int64) []int64 {
	if cur == target {
		return nil
	}
	mid := (cur + target) / 2
	if mid == cur || mid == target {
		return []int64{target}
	}
	return []int64{target, mid}
}

var nodeAxes = []axis{
	// 1. The whole fault plan, then each rate individually: a
	// counterexample that needs no faults is far more alarming, and a
	// single-fault plan names the sensing path at issue.
	func(c Candidate) []Candidate {
		var out []Candidate
		if !c.Node.Fault.IsZero() {
			out = append(out, reduceNode(c, func(n *NodeGenome) { n.Fault = fault.Plan{} }))
		}
		return out
	},
	func(c Candidate) []Candidate { return dropFaultRates(c) },
	// 2. Threads toward 1.
	func(c Candidate) []Candidate {
		var out []Candidate
		for _, t := range int64Steps(int64(c.Node.Threads), 1) {
			out = append(out, reduceNode(c, func(n *NodeGenome) { n.Threads = int(t) }))
		}
		return out
	},
	// 3. Duration toward the 50ms floor (in the 50ms grid).
	func(c Candidate) []Candidate {
		var out []Candidate
		for _, d := range int64Steps(c.Node.DurationMs/50, 1) {
			out = append(out, reduceNode(c, func(n *NodeGenome) { n.DurationMs = d * 50 }))
		}
		return out
	},
	// 4. Each synth parameter back to its default — the minimized
	// workload differs from the canonical one only where it must.
	func(c Candidate) []Candidate { return resetSynthFields(c) },
	// 5. Contention off entirely, then down to the bare "on" defaults.
	// Objectives that need the contended machine (contention-loss)
	// reject the first proposal and keep the second when the capacity
	// overrides were incidental.
	func(c Candidate) []Candidate {
		var out []Candidate
		if c.Node.Contention != "" {
			out = append(out, reduceNode(c, func(n *NodeGenome) { n.Contention = "" }))
			if c.Node.Contention != "on" {
				out = append(out, reduceNode(c, func(n *NodeGenome) { n.Contention = "on" }))
			}
		}
		return out
	},
	// 6. Platform to quad (the smaller platform), when the violation
	// survives losing the GTS baseline.
	func(c Candidate) []Candidate {
		if c.Node.Platform == "quad" {
			return nil
		}
		return []Candidate{reduceNode(c, func(n *NodeGenome) { n.Platform = "quad" })}
	},
}

// dropFaultRates proposes zeroing each non-zero fault rate, one at a
// time, highest field first (fixed declaration order).
func dropFaultRates(c Candidate) []Candidate {
	var out []Candidate
	p := c.Node.Fault
	zero := []struct {
		on bool
		f  func(*fault.Plan)
	}{
		{p.DropRate > 0, func(q *fault.Plan) { q.DropRate = 0 }},
		{p.StaleRate > 0, func(q *fault.Plan) { q.StaleRate = 0 }},
		{p.CorruptRate > 0, func(q *fault.Plan) { q.CorruptRate = 0 }},
		{p.PowerDropRate > 0, func(q *fault.Plan) { q.PowerDropRate = 0 }},
		{p.PowerSpikeRate > 0, func(q *fault.Plan) { q.PowerSpikeRate = 0 }},
		{p.MigrateFailRate > 0, func(q *fault.Plan) { q.MigrateFailRate = 0 }},
		{p.SpikeFactor > 0, func(q *fault.Plan) { q.SpikeFactor = 0 }},
	}
	for _, z := range zero {
		if !z.on {
			continue
		}
		out = append(out, reduceNode(c, func(n *NodeGenome) {
			q := n.Fault
			z.f(&q)
			n.Fault = q
		}))
	}
	return out
}

// resetSynthFields proposes restoring each synth parameter to its
// default, one at a time, in declaration order.
func resetSynthFields(c Candidate) []Candidate {
	def := workload.DefaultSynth()
	cur := c.Node.Synth
	var out []Candidate
	reset := []func(*workload.SynthSpec){
		func(s *workload.SynthSpec) { s.Phases = def.Phases },
		func(s *workload.SynthSpec) { s.InsM = def.InsM },
		func(s *workload.SynthSpec) { s.ILP = def.ILP },
		func(s *workload.SynthSpec) { s.Mem = def.Mem },
		func(s *workload.SynthSpec) { s.Bsh = def.Bsh },
		func(s *workload.SynthSpec) { s.WsIKB = def.WsIKB },
		func(s *workload.SynthSpec) { s.WsDKB = def.WsDKB },
		func(s *workload.SynthSpec) { s.Ent = def.Ent },
		func(s *workload.SynthSpec) { s.MLP = def.MLP },
		func(s *workload.SynthSpec) { s.SleepM = def.SleepM },
		func(s *workload.SynthSpec) { s.Ant = def.Ant },
	}
	for _, f := range reset {
		probe := cur
		f(&probe)
		if probe == cur {
			continue
		}
		fn := f
		out = append(out, reduceNode(c, func(n *NodeGenome) { fn(&n.Synth) }))
	}
	return out
}

var fleetAxes = []axis{
	// 1. Nodes toward the 2-node floor.
	func(c Candidate) []Candidate {
		var out []Candidate
		for _, n := range int64Steps(int64(c.Fleet.Nodes), 2) {
			out = append(out, reduceFleet(c, func(f *FleetGenome) { f.Nodes = int(n) }))
		}
		return out
	},
	// 2. Duration toward the 100ms floor (in the 100ms grid).
	func(c Candidate) []Candidate {
		var out []Candidate
		for _, d := range int64Steps(c.Fleet.DurationMs/100, 1) {
			out = append(out, reduceFleet(c, func(f *FleetGenome) { f.DurationMs = d * 100 }))
		}
		return out
	},
	// 3. Arrival kind toward uniform at the same rate — the simplest
	// process that still breaks the objective.
	func(c Candidate) []Candidate {
		if c.Fleet.Arrival.Kind == "uniform" {
			return nil
		}
		return []Candidate{reduceFleet(c, func(f *FleetGenome) {
			f.Arrival = ArrivalGenome{Kind: "uniform", Rate: f.Arrival.Rate}
		})}
	},
	// 4. Profile to quad.
	func(c Candidate) []Candidate {
		if c.Fleet.Profile == "quad" {
			return nil
		}
		return []Candidate{reduceFleet(c, func(f *FleetGenome) { f.Profile = "quad" })}
	},
	// 5. Round the arrival parameters to 2 significant digits —
	// readable corpus entries beat 12-decimal mutation residue.
	func(c Candidate) []Candidate {
		rounded := reduceFleet(c, func(f *FleetGenome) {
			a := f.Arrival
			a.Rate = round2(a.Rate)
			a.Depth = round2(a.Depth)
			a.PeriodMs = round2(a.PeriodMs)
			a.Burst = round2(a.Burst)
			a.PBurst = round2(a.PBurst)
			a.PCalm = round2(a.PCalm)
			f.Arrival = a
		})
		if rounded.Fleet.Arrival == c.Fleet.Arrival {
			return nil
		}
		return []Candidate{rounded}
	},
}

// round2 rounds to 2 significant digits, the coarser sibling of
// roundSig.
func round2(v float64) float64 {
	r, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 2, 64), 64)
	if err != nil {
		return v
	}
	return r
}
