package hunt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Corpus: minimized counterexamples serialized to checked-in JSON so CI
// replays every pinned scenario forever. An entry records the full
// candidate genome plus the evaluator configuration that judged it, so
// a replay reproduces the exact violation — or fails loudly when a
// behaviour change (intended or not) un-pins it.

// CorpusSchemaVersion tags every corpus entry; replays reject entries
// from other schemas instead of guessing.
const CorpusSchemaVersion = "sbhunt-corpus-v1"

// Entry is one pinned counterexample.
type Entry struct {
	Schema    string    `json:"schema"`
	Objective string    `json:"objective"`
	Score     float64   `json:"score"`
	Detail    string    `json:"detail"`
	SLO       SLO       `json:"slo"`
	Margin    float64   `json:"margin"`
	Candidate Candidate `json:"candidate"`
}

// NewEntry packages a minimization result as a corpus entry.
func NewEntry(m Minimized, slo SLO, margin float64) Entry {
	return Entry{
		Schema:    CorpusSchemaVersion,
		Objective: m.Violation.Objective,
		Score:     m.Violation.Score,
		Detail:    m.Violation.Detail,
		SLO:       slo,
		Margin:    margin,
		Candidate: m.Cand,
	}
}

// Name is the entry's canonical filename: the objective plus the
// candidate hash, so distinct counterexamples never collide and
// re-running the hunt over an unchanged simulator rewrites files
// byte-identically.
func (e Entry) Name() string {
	return fmt.Sprintf("%s-%s.json", e.Objective, e.Candidate.Hash())
}

// WriteCorpus writes entries into dir under their canonical names and
// returns the filenames written, sorted.
func WriteCorpus(dir string, entries []Entry) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hunt: corpus dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		data, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("hunt: encode corpus entry: %w", err)
		}
		data = append(data, '\n')
		name := e.Name()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return nil, fmt.Errorf("hunt: write corpus entry: %w", err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadCorpus reads every *.json entry in dir, in sorted filename order.
func LoadCorpus(dir string) ([]Entry, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hunt: corpus dir: %w", err)
	}
	var names []string
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), ".json") {
			names = append(names, f.Name())
		}
	}
	sort.Strings(names)
	entries := make([]Entry, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("hunt: read corpus entry: %w", err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("hunt: corpus entry %s: %w", name, err)
		}
		if e.Schema != CorpusSchemaVersion {
			return nil, fmt.Errorf("hunt: corpus entry %s: schema %q, want %q",
				name, e.Schema, CorpusSchemaVersion)
		}
		if err := e.Candidate.Validate(); err != nil {
			return nil, fmt.Errorf("hunt: corpus entry %s: %w", name, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// ReplayResult is one entry's replay outcome.
type ReplayResult struct {
	Entry Entry
	// Violation is the re-evaluated violation for the entry's objective.
	Violation Violation
	// OK reports whether the objective still violates (Score >= 0).
	OK bool
	// Err is set when the candidate failed to evaluate at all.
	Err error
}

// Replay re-evaluates each entry under its own recorded SLO and margin
// (not the caller's: a pinned counterexample is judged by the contract
// it was found under) and reports whether the violation still
// reproduces. Cache and workers come from e; SLO and margin in e are
// overridden per entry.
func Replay(e *Evaluator, entries []Entry) []ReplayResult {
	out := make([]ReplayResult, len(entries))
	for i, entry := range entries {
		ev := Evaluator{
			SLO:     entry.SLO,
			Margin:  entry.Margin,
			Cache:   e.Cache,
			Workers: e.Workers,
		}
		res := ev.Evaluate(entry.Candidate)
		out[i] = ReplayResult{Entry: entry}
		if res.Err != nil {
			out[i].Err = res.Err
			continue
		}
		for _, v := range res.Violations {
			if v.Objective == entry.Objective {
				out[i].Violation = v
				out[i].OK = v.Score >= 0
				break
			}
		}
	}
	return out
}
