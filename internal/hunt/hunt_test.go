package hunt

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"smartbalance/internal/rng"
	"smartbalance/internal/sweep"
	"smartbalance/internal/workload"
)

// healthyNode is the canonical node genome: the seed population's base
// candidate, which the landscape probes show violates nothing.
func healthyNode() Candidate {
	return Candidate{Tier: TierNode, Node: &NodeGenome{
		Platform:   "biglittle",
		Threads:    4,
		DurationMs: 100,
		Seed:       1,
		Synth:      workload.DefaultSynth(),
	}}
}

// p99Violator is a fleet genome known to blow the default p99 SLO:
// two quad nodes cannot keep up with a 450 req/s uniform stream.
func p99Violator() Candidate {
	return Candidate{Tier: TierFleet, Fleet: &FleetGenome{
		Nodes:      2,
		Profile:    "quad",
		Policy:     "energy",
		Arrival:    ArrivalGenome{Kind: "uniform", Rate: 450},
		Seed:       1,
		DurationMs: 600,
	}}
}

func TestHuntDeterministicAcrossWorkersAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full hunt in -short mode")
	}
	cacheDir := t.TempDir()
	cache, err := sweep.OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int, cache *sweep.Cache) (string, *Result) {
		var log bytes.Buffer
		res, err := Run(Config{
			Seed: 42, Generations: 2, Population: 8,
			Workers: workers, Cache: cache, Log: &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return log.String(), res
	}
	logSerial, resSerial := run(1, nil)
	logPar, resPar := run(4, cache)
	logWarm, resWarm := run(4, cache)
	if logSerial != logPar {
		t.Errorf("serial and parallel hunt logs differ:\n--- serial\n%s\n--- parallel\n%s", logSerial, logPar)
	}
	if logPar != logWarm {
		t.Errorf("cold and warm-cache hunt logs differ")
	}
	if !reflect.DeepEqual(resSerial, resPar) || !reflect.DeepEqual(resPar, resWarm) {
		t.Errorf("hunt results differ across workers/cache settings")
	}
	if resSerial.Evaluated != 16 {
		t.Errorf("Evaluated = %d, want 16 (2 gens x 8 pop)", resSerial.Evaluated)
	}
}

func TestMutateAlwaysValidNeverAliases(t *testing.T) {
	r := rng.New(0xBEEF)
	bases := []Candidate{
		healthyNode(),
		{Tier: TierFleet, Fleet: &FleetGenome{
			Nodes: 6, Profile: "quad,biglittle", Policy: "energy",
			Arrival: defaultArrival("bursty", 300), Seed: 1, DurationMs: 300,
		}},
	}
	for _, base := range bases {
		baseKey := base.Key()
		cur := base
		for i := 0; i < 500; i++ {
			next := Mutate(r, cur)
			if err := next.Validate(); err != nil {
				t.Fatalf("mutation %d of %s tier produced invalid candidate: %v\n%s",
					i, base.Tier, err, next.Key())
			}
			cur = next
		}
		if base.Key() != baseKey {
			t.Errorf("%s tier base mutated in place — clone aliases the parent", base.Tier)
		}
	}
}

func TestSeedPopulationDeterministicAndValid(t *testing.T) {
	p1 := seedPopulation(rng.New(99), 12, []string{TierNode, TierFleet})
	p2 := seedPopulation(rng.New(99), 12, []string{TierNode, TierFleet})
	if len(p1) != 12 {
		t.Fatalf("population size = %d, want 12", len(p1))
	}
	tiers := map[string]int{}
	for i := range p1 {
		if p1[i].Key() != p2[i].Key() {
			t.Errorf("candidate %d differs across identically seeded populations", i)
		}
		if err := p1[i].Validate(); err != nil {
			t.Errorf("seed candidate %d invalid: %v", i, err)
		}
		tiers[p1[i].Tier]++
	}
	if tiers[TierNode] == 0 || tiers[TierFleet] == 0 {
		t.Errorf("seed population missing a tier: %v", tiers)
	}
}

func TestEvaluatorHealthyCandidateHasNoViolations(t *testing.T) {
	e := &Evaluator{SLO: DefaultSLO(), Margin: 0.02}
	ev := e.Evaluate(healthyNode())
	if ev.Err != nil {
		t.Fatal(ev.Err)
	}
	for _, v := range ev.Violations {
		if v.Score >= 0 {
			t.Errorf("healthy candidate violates %s: score=%v detail=%s", v.Objective, v.Score, v.Detail)
		}
	}
}

func TestEvaluatorFindsP99Violation(t *testing.T) {
	e := &Evaluator{SLO: DefaultSLO(), Margin: 0.02}
	ev := e.Evaluate(p99Violator())
	if ev.Err != nil {
		t.Fatal(ev.Err)
	}
	found := false
	for _, v := range ev.Violations {
		if v.Objective == ObjP99SLO {
			found = true
			if v.Score < 0 {
				t.Errorf("p99 violator scored %v on %s, want >= 0 (%s)", v.Score, v.Objective, v.Detail)
			}
		}
	}
	if !found {
		t.Errorf("no %s violation reported: %+v", ObjP99SLO, ev.Violations)
	}
}

func TestMinimizeShrinksAndIsDeterministic(t *testing.T) {
	big := Candidate{Tier: TierFleet, Fleet: &FleetGenome{
		Nodes:      6,
		Profile:    "quad,biglittle",
		Policy:     "energy",
		Arrival:    ArrivalGenome{Kind: "bursty", Rate: 490.8, Burst: 6, PBurst: 0.08, PCalm: 0.1776},
		Seed:       1,
		DurationMs: 500,
	}}
	e := &Evaluator{SLO: DefaultSLO(), Margin: 0.02}
	m1 := Minimize(e, big, ObjP99SLO)
	if m1.Violation.Objective != ObjP99SLO {
		t.Fatalf("minimizer lost the violation: %+v", m1.Violation)
	}
	if m1.Steps == 0 {
		t.Errorf("minimizer accepted no reductions on an oversized counterexample")
	}
	if m1.Cand.Fleet.Nodes > big.Fleet.Nodes {
		t.Errorf("minimized nodes grew: %d > %d", m1.Cand.Fleet.Nodes, big.Fleet.Nodes)
	}
	if m1.Cand.Fleet.Seed != big.Fleet.Seed {
		t.Errorf("minimizer changed the seed — the seed is never an axis")
	}
	m2 := Minimize(e, big, ObjP99SLO)
	if m1.Cand.Key() != m2.Cand.Key() || m1.Steps != m2.Steps || m1.Evals != m2.Evals {
		t.Errorf("minimization not deterministic:\n%s steps=%d evals=%d\n%s steps=%d evals=%d",
			m1.Cand.Key(), m1.Steps, m1.Evals, m2.Cand.Key(), m2.Steps, m2.Evals)
	}
}

func TestMinimizeNonViolatorReturnsUnshrunk(t *testing.T) {
	e := &Evaluator{SLO: DefaultSLO(), Margin: 0.02}
	m := Minimize(e, healthyNode(), ObjP99SLO)
	if m.Violation.Objective != "" || m.Steps != 0 {
		t.Errorf("non-violating input should return zero violation and no steps, got %+v steps=%d",
			m.Violation, m.Steps)
	}
}

func TestCorpusRoundTripAndReplay(t *testing.T) {
	e := &Evaluator{SLO: DefaultSLO(), Margin: 0.02}
	ev := e.Evaluate(p99Violator())
	if ev.Err != nil {
		t.Fatal(ev.Err)
	}
	var v Violation
	for _, cand := range ev.Violations {
		if cand.Objective == ObjP99SLO {
			v = cand
		}
	}
	entry := NewEntry(Minimized{Cand: p99Violator(), Violation: v}, DefaultSLO(), 0.02)
	dir := t.TempDir()
	names, err := WriteCorpus(dir, []Entry{entry})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != entry.Name() {
		t.Fatalf("WriteCorpus names = %v, want [%s]", names, entry.Name())
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || !reflect.DeepEqual(loaded[0], entry) {
		t.Fatalf("corpus round-trip mismatch:\nwrote %+v\nread  %+v", entry, loaded)
	}
	results := Replay(e, loaded)
	if len(results) != 1 || !results[0].OK || results[0].Err != nil {
		t.Fatalf("replay of a pinned violator failed: %+v", results)
	}
}

func TestCheckedInCorpusStillViolates(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay in -short mode")
	}
	dir := filepath.Join("..", "..", "testdata", "corpus")
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("checked-in corpus has %d entries, want >= 3", len(entries))
	}
	for _, r := range Replay(&Evaluator{}, entries) {
		if r.Err != nil {
			t.Errorf("corpus entry %s: %v", r.Entry.Name(), r.Err)
		} else if !r.OK {
			t.Errorf("corpus entry %s no longer violates %s (%s)",
				r.Entry.Name(), r.Entry.Objective, r.Violation.Detail)
		}
	}
}

func TestLoadCorpusRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	entry := Entry{Schema: "bogus-v0", Objective: ObjP99SLO, Candidate: p99Violator()}
	if _, err := WriteCorpus(dir, []Entry{entry}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Error("LoadCorpus accepted a wrong-schema entry")
	}
}

func TestRunRejectsUnknownTier(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Tiers: []string{"galaxy"}}); err == nil {
		t.Error("Run accepted an unknown tier")
	}
}
