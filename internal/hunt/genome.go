// Package hunt is the adversarial scenario search: a seeded
// evolutionary loop that mutates scenario genomes — synthetic workload
// shape, fault plans, arrival processes, fleet geometry — hunting for
// counterexamples to the claims the rest of the repository verifies by
// replication. A counterexample is a concrete, reproducible scenario
// where SmartBalance loses energy efficiency to a baseline, an SLO
// breaks, the flight recorder trips, or parallel execution diverges
// from serial. Found counterexamples are shrunk by a deterministic
// delta-debugging minimizer and pinned into a JSON corpus that CI
// replays forever after (scripts/hunt_check.sh).
//
// Determinism contract (DESIGN.md §14): the entire hunt — mutation
// sequence, evaluation results, minimization trace, corpus bytes — is
// a pure function of the hunt seed. Candidate evaluations fan out
// through the sweep engine, which returns results in canonical order
// for any worker count, and every random draw happens serially in the
// generation loop, so `sbhunt -seed N -workers K` writes byte-identical
// logs and corpora for every K.
package hunt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"

	"smartbalance/internal/contention"
	"smartbalance/internal/fault"
	"smartbalance/internal/fleet"
	"smartbalance/internal/workload"
)

// Tier names: the two simulation tiers a candidate can target.
const (
	TierNode  = "node"  // one MPSoC, intra-node balancing (internal/core)
	TierFleet = "fleet" // many nodes, dispatch policies (internal/fleet)
)

// Candidate is one point in the search space: exactly one tier genome.
type Candidate struct {
	Tier  string       `json:"tier"`
	Node  *NodeGenome  `json:"node,omitempty"`
	Fleet *FleetGenome `json:"fleet,omitempty"`
}

// NodeGenome describes a node-tier scenario: a synthetic workload on
// one platform under an optional fault plan, always balanced by
// SmartBalance and compared against the baselines.
type NodeGenome struct {
	// Platform is "quad" or "biglittle". The search stays on the two
	// canned platforms: GTS — the strongest baseline — requires exactly
	// two core types, and scaling:<n> platforms would silently drop it
	// from the comparison.
	Platform   string             `json:"platform"`
	Threads    int                `json:"threads"`
	DurationMs int64              `json:"duration_ms"`
	Seed       uint64             `json:"seed"`
	Synth      workload.SynthSpec `json:"synth"`
	Fault      fault.Plan         `json:"fault"`
	// Contention is a shared-resource model spec
	// (contention.ParseSpec); empty hunts the uncontended machine.
	// When enabled, the candidate additionally pits the
	// contention-aware controller against its "-blind" twin (the
	// contention-loss objective). omitempty keeps pre-axis corpus
	// entries' keys — and hashes — byte-stable.
	Contention string `json:"contention,omitempty"`
}

// FleetGenome describes a fleet-tier scenario: node count, per-node
// platform profile, dispatch policy, and the arrival process.
type FleetGenome struct {
	Nodes      int           `json:"nodes"`
	Profile    string        `json:"profile"`
	Policy     string        `json:"policy"`
	Arrival    ArrivalGenome `json:"arrival"`
	Seed       uint64        `json:"seed"`
	DurationMs int64         `json:"duration_ms"`
}

// ArrivalGenome is the mutable form of a fleet arrival spec. Spec()
// renders the canonical string the fleet parses.
type ArrivalGenome struct {
	Kind     string  `json:"kind"` // uniform | diurnal | bursty
	Rate     float64 `json:"rate"`
	Depth    float64 `json:"depth,omitempty"`
	PeriodMs float64 `json:"period_ms,omitempty"`
	Burst    float64 `json:"burst,omitempty"`
	PBurst   float64 `json:"pburst,omitempty"`
	PCalm    float64 `json:"pcalm,omitempty"`
}

// g renders a float the way every canonical surface in this repository
// does: shortest exact form.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Spec renders the canonical arrival spec string.
func (a ArrivalGenome) Spec() string {
	switch a.Kind {
	case "uniform":
		return "uniform:rate=" + g(a.Rate)
	case "diurnal":
		return fmt.Sprintf("diurnal:rate=%s,depth=%s,period=%s", g(a.Rate), g(a.Depth), g(a.PeriodMs))
	case "bursty":
		return fmt.Sprintf("bursty:rate=%s,burst=%s,pburst=%s,pcalm=%s",
			g(a.Rate), g(a.Burst), g(a.PBurst), g(a.PCalm))
	}
	return "invalid:" + a.Kind
}

// Validate checks the genome against the simulator domains, so every
// mutation lands on a runnable scenario instead of an error-valued
// evaluation.
func (c Candidate) Validate() error {
	switch c.Tier {
	case TierNode:
		if c.Node == nil || c.Fleet != nil {
			return fmt.Errorf("hunt: node-tier candidate with genomes node=%v fleet=%v", c.Node != nil, c.Fleet != nil)
		}
		return c.Node.validate()
	case TierFleet:
		if c.Fleet == nil || c.Node != nil {
			return fmt.Errorf("hunt: fleet-tier candidate with genomes node=%v fleet=%v", c.Node != nil, c.Fleet != nil)
		}
		return c.Fleet.validate()
	}
	return fmt.Errorf("hunt: unknown tier %q", c.Tier)
}

func (n *NodeGenome) validate() error {
	switch {
	case n.Platform != "quad" && n.Platform != "biglittle":
		return fmt.Errorf("hunt: node platform %q (quad | biglittle)", n.Platform)
	case n.Threads < 1 || n.Threads > 8:
		return fmt.Errorf("hunt: node threads %d outside [1,8]", n.Threads)
	case n.DurationMs < 50 || n.DurationMs > 400:
		return fmt.Errorf("hunt: node duration %dms outside [50,400]", n.DurationMs)
	}
	if err := n.Synth.Validate(); err != nil {
		return err
	}
	if _, err := contention.ParseSpec(n.Contention); err != nil {
		return err
	}
	return n.Fault.Validate()
}

func (f *FleetGenome) validate() error {
	switch {
	case f.Nodes < 2 || f.Nodes > 12:
		return fmt.Errorf("hunt: fleet nodes %d outside [2,12]", f.Nodes)
	case f.Profile != "quad" && f.Profile != "biglittle" && f.Profile != "quad,biglittle":
		return fmt.Errorf("hunt: fleet profile %q", f.Profile)
	case f.DurationMs < 100 || f.DurationMs > 600:
		return fmt.Errorf("hunt: fleet duration %dms outside [100,600]", f.DurationMs)
	}
	if _, err := fleet.ParsePolicy(f.Policy); err != nil {
		return err
	}
	return f.Arrival.validate()
}

func (a ArrivalGenome) validate() error {
	if a.Rate < 20 || a.Rate > 2000 {
		return fmt.Errorf("hunt: arrival rate %v outside [20,2000]", a.Rate)
	}
	switch a.Kind {
	case "uniform":
		return nil
	case "diurnal":
		if a.Depth < 0 || a.Depth > 0.95 {
			return fmt.Errorf("hunt: diurnal depth %v outside [0,0.95]", a.Depth)
		}
		if a.PeriodMs < 50 || a.PeriodMs > 5000 {
			return fmt.Errorf("hunt: diurnal period %v outside [50,5000]ms", a.PeriodMs)
		}
		return nil
	case "bursty":
		if a.Burst < 1.5 || a.Burst > 20 {
			return fmt.Errorf("hunt: burst factor %v outside [1.5,20]", a.Burst)
		}
		if a.PBurst <= 0 || a.PBurst > 1 || a.PCalm <= 0 || a.PCalm > 1 {
			return fmt.Errorf("hunt: burst switching probabilities outside (0,1]")
		}
		return nil
	}
	return fmt.Errorf("hunt: unknown arrival kind %q", a.Kind)
}

// Key is the candidate's canonical identity: its JSON encoding.
// encoding/json renders struct fields in declaration order, so equal
// candidates always produce equal keys.
func (c Candidate) Key() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Only unrepresentable values (NaN) can land here; genomes are
		// validated finite before use.
		return "unencodable:" + err.Error()
	}
	return string(b)
}

// Hash is the first 8 hex bytes of the candidate key's SHA-256 — the
// short name corpus files embed.
func (c Candidate) Hash() string {
	sum := sha256.Sum256([]byte(c.Key()))
	return hex.EncodeToString(sum[:4])
}
