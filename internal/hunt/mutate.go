package hunt

import (
	"strconv"

	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

// Mutation: small deterministic perturbations of one genome axis. Every
// operator receives the hunt's single mutation stream and must draw
// from it the same way regardless of platform or prior results, so one
// seed replays one mutation sequence exactly (the §14 contract). All
// operators land inside the genome domains by construction — Validate
// after mutation is a sanity check, not a rejection-sampling loop.

// roundSig rounds v to 4 significant digits via the decimal formatter,
// keeping mutated parameters readable in specs and corpus files while
// staying a pure function of v.
func roundSig(v float64) float64 {
	r, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 4, 64), 64)
	if err != nil {
		return v
	}
	return r
}

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// scale multiplies v by a factor drawn from [0.5, 2] (log-uniform-ish:
// half the mass shrinks, half grows) and clamps into [lo, hi]. The
// clamp comes after the rounding: rounding 65536 to 4 significant
// digits lands on 65540, outside the domain it was clamped into.
func scale(r *rng.Rand, v, lo, hi float64) float64 {
	f := 0.5 + 1.5*r.Float64()
	return clamp(roundSig(v*f), lo, hi)
}

// nudge adds a uniform draw from [-amt, amt] and clamps into [lo, hi].
func nudge(r *rng.Rand, v, amt, lo, hi float64) float64 {
	return clamp(roundSig(v+amt*(2*r.Float64()-1)), lo, hi)
}

// stepInt moves v by ±1..2 and clamps into [lo, hi].
func stepInt(r *rng.Rand, v, lo, hi int) int {
	d := 1 + r.Intn(2)
	if r.Intn(2) == 0 {
		d = -d
	}
	v += d
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Mutate returns a mutated copy of c, applying one or two operators
// drawn from the tier's fixed table.
func Mutate(r *rng.Rand, c Candidate) Candidate {
	out := clone(c)
	ops := 1 + r.Intn(2)
	for i := 0; i < ops; i++ {
		switch out.Tier {
		case TierNode:
			mutateNode(r, out.Node)
		case TierFleet:
			mutateFleet(r, out.Fleet)
		}
	}
	return out
}

// clone deep-copies a candidate so mutation never aliases the parent.
func clone(c Candidate) Candidate {
	out := c
	if c.Node != nil {
		n := *c.Node
		out.Node = &n
	}
	if c.Fleet != nil {
		f := *c.Fleet
		out.Fleet = &f
	}
	return out
}

func mutateNode(r *rng.Rand, n *NodeGenome) {
	switch r.Intn(18) {
	case 0:
		if n.Platform == "quad" {
			n.Platform = "biglittle"
		} else {
			n.Platform = "quad"
		}
	case 1:
		n.Threads = stepInt(r, n.Threads, 1, 8)
	case 2:
		n.DurationMs = int64(stepInt(r, int(n.DurationMs/50), 1, 8)) * 50
	case 3:
		n.Seed = r.Uint64()
	case 4:
		n.Synth.Phases = stepInt(r, n.Synth.Phases, 1, 8)
	case 5:
		n.Synth.InsM = scale(r, n.Synth.InsM, 1, 500)
	case 6:
		n.Synth.ILP = scale(r, n.Synth.ILP, 0.5, 8)
	case 7:
		n.Synth.Mem = nudge(r, n.Synth.Mem, 0.15, 0, 0.6)
	case 8:
		n.Synth.Bsh = nudge(r, n.Synth.Bsh, 0.08, 0, 0.25)
	case 9:
		n.Synth.WsIKB = scale(r, n.Synth.WsIKB, 1, 1024)
	case 10:
		n.Synth.WsDKB = scale(r, n.Synth.WsDKB, 1, 65536)
	case 11:
		n.Synth.Ent = nudge(r, n.Synth.Ent, 0.25, 0, 1)
	case 12:
		n.Synth.MLP = scale(r, n.Synth.MLP, 1, 8)
	case 13:
		n.Synth.SleepM = nudge(r, n.Synth.SleepM, 8, 0, 50)
	case 14, 15:
		// Fault-plan tweaks get double weight: sensing imperfection is
		// where the paper's claims are most fragile (Hofmann et al.),
		// so the search should probe it often.
		mutateFault(r, n)
	case 16:
		// Shared-resource model toggle: contended genomes additionally
		// race the aware controller against its blind twin.
		if n.Contention == "" {
			n.Contention = "on"
		} else {
			n.Contention = ""
		}
	case 17:
		n.Synth.Ant = r.Intn(3)
	}
}

// mutateFault perturbs one rate of the node genome's fault plan and
// renormalises through fault.Clamped so the plan stays valid.
func mutateFault(r *rng.Rand, n *NodeGenome) {
	p := n.Fault
	// Biased upward: faults start at zero and the interesting regimes
	// have them on.
	d := func(v float64) float64 { return roundSig(clamp(v+0.35*r.Float64()-0.1, 0, 1)) }
	switch r.Intn(6) {
	case 0:
		p.DropRate = d(p.DropRate)
	case 1:
		p.StaleRate = d(p.StaleRate)
	case 2:
		p.CorruptRate = d(p.CorruptRate)
	case 3:
		p.PowerDropRate = d(p.PowerDropRate)
	case 4:
		p.PowerSpikeRate = d(p.PowerSpikeRate)
	case 5:
		p.MigrateFailRate = d(p.MigrateFailRate)
	}
	n.Fault = p.Clamped()
}

func mutateFleet(r *rng.Rand, f *FleetGenome) {
	switch r.Intn(10) {
	case 0:
		f.Nodes = stepInt(r, f.Nodes, 2, 12)
	case 1:
		profiles := []string{"quad", "biglittle", "quad,biglittle"}
		f.Profile = profiles[r.Intn(len(profiles))]
	case 2:
		policies := []string{"energy", "least", "rr"}
		f.Policy = policies[r.Intn(len(policies))]
	case 3:
		f.Seed = r.Uint64()
	case 4:
		f.DurationMs = int64(stepInt(r, int(f.DurationMs/100), 1, 6)) * 100
	case 5:
		// Arrival kind flip, carrying the rate and refreshing the
		// kind-specific parameters to canonical midpoints.
		kinds := []string{"uniform", "diurnal", "bursty"}
		f.Arrival = defaultArrival(kinds[r.Intn(len(kinds))], f.Arrival.Rate)
	case 6:
		f.Arrival.Rate = scale(r, f.Arrival.Rate, 20, 2000)
	case 7:
		switch f.Arrival.Kind {
		case "diurnal":
			f.Arrival.Depth = nudge(r, f.Arrival.Depth, 0.25, 0, 0.95)
		case "bursty":
			f.Arrival.Burst = scale(r, f.Arrival.Burst, 1.5, 20)
		default:
			f.Arrival.Rate = scale(r, f.Arrival.Rate, 20, 2000)
		}
	case 8:
		switch f.Arrival.Kind {
		case "diurnal":
			f.Arrival.PeriodMs = scale(r, f.Arrival.PeriodMs, 50, 5000)
		case "bursty":
			f.Arrival.PBurst = nudge(r, f.Arrival.PBurst, 0.1, 0.01, 1)
		default:
			f.Arrival.Rate = scale(r, f.Arrival.Rate, 20, 2000)
		}
	case 9:
		if f.Arrival.Kind == "bursty" {
			f.Arrival.PCalm = nudge(r, f.Arrival.PCalm, 0.15, 0.01, 1)
		} else {
			f.Nodes = stepInt(r, f.Nodes, 2, 12)
		}
	}
}

// defaultArrival builds the canonical midpoint genome for a kind.
func defaultArrival(kind string, rate float64) ArrivalGenome {
	a := ArrivalGenome{Kind: kind, Rate: rate}
	switch kind {
	case "diurnal":
		a.Depth = 0.6
		a.PeriodMs = 2000
	case "bursty":
		a.Burst = 6
		a.PBurst = 0.08
		a.PCalm = 0.25
	}
	return a
}

// seedPopulation builds the deterministic initial population: the two
// tier base genomes, diversified by an increasing number of mutations.
func seedPopulation(r *rng.Rand, size int, tiers []string) []Candidate {
	bases := make([]Candidate, 0, 2)
	for _, tier := range tiers {
		switch tier {
		case TierNode:
			bases = append(bases, Candidate{Tier: TierNode, Node: &NodeGenome{
				Platform:   "biglittle",
				Threads:    4,
				DurationMs: 100,
				Seed:       1,
				Synth:      workload.DefaultSynth(),
			}})
		case TierFleet:
			bases = append(bases, Candidate{Tier: TierFleet, Fleet: &FleetGenome{
				Nodes:      6,
				Profile:    "quad,biglittle",
				Policy:     "energy",
				Arrival:    defaultArrival("bursty", 300),
				Seed:       1,
				DurationMs: 300,
			}})
		}
	}
	pop := make([]Candidate, 0, size)
	for i := 0; len(pop) < size; i++ {
		c := clone(bases[i%len(bases)])
		// Candidate i carries i/len(bases) mutations: the first few are
		// the canonical healthy scenarios, later ones wander out.
		for m := 0; m < i/len(bases); m++ {
			c = Mutate(r, c)
		}
		pop = append(pop, c)
	}
	return pop
}
