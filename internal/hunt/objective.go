package hunt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"smartbalance/internal/sweep"
	"smartbalance/internal/telemetry"
)

// Falsification objectives: the claims a counterexample breaks. A
// violation's Score is a normalized margin — >= 0 means the objective
// is violated (a counterexample), < 0 measures how close the candidate
// came, which is the gradient the evolutionary loop climbs.
const (
	// ObjEELoss: SmartBalance's energy efficiency falls more than
	// Margin below a baseline balancer on the same scenario — the
	// paper's headline claim inverted.
	ObjEELoss = "ee-loss"
	// ObjAnomaly: the flight recorder trips during the SmartBalance
	// run (negative EE gain, degraded epochs, refused-migration burst).
	ObjAnomaly = "anomaly"
	// ObjEnergySLO: fleet joules-per-request exceeds the energy SLO.
	ObjEnergySLO = "energy-slo"
	// ObjP99SLO: fleet p99 latency exceeds the latency SLO.
	ObjP99SLO = "p99-slo"
	// ObjPolicyLoss: the energy dispatch policy spends more
	// joules-per-request than round-robin on the same traffic — the
	// fleet tier's reason to exist, inverted.
	ObjPolicyLoss = "policy-loss"
	// ObjDivergence: the same fleet cell renders different outcomes
	// under different -workers settings — a determinism-contract break.
	ObjDivergence = "workers-divergence"
	// ObjContentionLoss: on a contended machine, the contention-aware
	// controller loses energy efficiency to its contention-blind twin —
	// the interference term made placement worse, inverting the A14
	// claim. Scored only when the genome enables contention.
	ObjContentionLoss = "contention-loss"
)

// Objectives lists every objective in canonical report order.
var Objectives = []string{ObjEELoss, ObjAnomaly, ObjContentionLoss, ObjEnergySLO, ObjP99SLO, ObjPolicyLoss, ObjDivergence}

// SLO holds the service-level objectives the fleet-tier search tries
// to break.
type SLO struct {
	// P99Ms is the p99 request-latency ceiling in milliseconds.
	P99Ms float64 `json:"p99_ms"`
	// JPR is the joules-per-completed-request ceiling.
	JPR float64 `json:"jpr"`
}

// DefaultSLO is loose enough that the canonical healthy scenarios pass
// with room, tight enough that the hunt can reach violations inside a
// small search budget.
func DefaultSLO() SLO { return SLO{P99Ms: 600, JPR: 0.06} }

// Violation is one objective's outcome for one candidate.
type Violation struct {
	Objective string  `json:"objective"`
	Score     float64 `json:"score"`
	Detail    string  `json:"detail"`
}

// Evaluation is one candidate's full scoring.
type Evaluation struct {
	Cand Candidate
	// Violations holds every objective applicable to the tier, in
	// canonical order.
	Violations []Violation
	// Fitness is the maximum violation score — the scalar the
	// selection step ranks on.
	Fitness float64
	// Err reports an unevaluable candidate (a simulation error);
	// fitness is floored and violations are nil.
	Err error
}

// errFitness floors the fitness of unevaluable candidates below any
// real score.
const errFitness = -1e9

// Schema versions for the hunt's own cached task payloads. The
// baseline node runs deliberately reuse sweep.SchemaVersion
// fingerprints — they are ordinary scenario runs, shared with every
// other sweep consumer; these versions cover only payload shapes that
// exist solely for the hunt.
const (
	obsSchemaVersion       = "sbhunt-obs-v1"
	fleetHuntSchemaVersion = "sbhunt-fleet-v1"
)

// obsPayload is the observed-run task payload: the ordinary outcome
// plus the distinct anomaly reasons the flight recorder registered.
type obsPayload struct {
	Outcome   *sweep.Outcome `json:"outcome"`
	Anomalies []string       `json:"anomalies,omitempty"`
}

// fleetCell fingerprints a fleet run together with its worker count,
// so the divergence check's arms occupy distinct cache slots.
type fleetCell struct {
	Scenario sweep.FleetScenario `json:"scenario"`
	Workers  int                 `json:"workers"`
}

// divergenceWorkers is the parallel arm of the workers-divergence
// check (the serial arm is 1).
const divergenceWorkers = 3

// Evaluator scores candidates against the objectives. It fans every
// candidate's simulation subtasks through the sweep engine — parallel
// across subtasks, results in canonical order, cached by content
// address — so evaluation is deterministic for any Workers and
// mutation loops re-hit cached cells instead of re-simulating.
type Evaluator struct {
	SLO     SLO
	Margin  float64
	Cache   *sweep.Cache
	Workers int
}

// subtask names one simulation a candidate needs.
type subtask struct {
	slot string // sb | vanilla | gts | w1 | wN | rr
	task sweep.Task
}

// Evaluate scores one candidate.
func (e *Evaluator) Evaluate(c Candidate) Evaluation {
	return e.EvaluateAll([]Candidate{c})[0]
}

// EvaluateAll scores a population. Subtasks are deduplicated by key
// across candidates (mutations frequently share arms with their
// parents), executed once, and fanned back out.
func (e *Evaluator) EvaluateAll(cands []Candidate) []Evaluation {
	evals := make([]Evaluation, len(cands))
	subs := make([][]subtask, len(cands))
	var tasks []sweep.Task
	index := map[string]int{} // task key -> index into tasks
	for i, c := range cands {
		evals[i].Cand = c
		evals[i].Fitness = errFitness
		if err := c.Validate(); err != nil {
			evals[i].Err = err
			continue
		}
		st := candidateSubtasks(c)
		subs[i] = st
		for _, s := range st {
			if _, ok := index[s.task.Key]; !ok {
				index[s.task.Key] = len(tasks)
				tasks = append(tasks, s.task)
			}
		}
	}
	results, err := sweep.Execute(tasks, sweep.Options{Workers: e.Workers, Cache: e.Cache})
	if err != nil {
		// Only malformed task lists land here, and the keys above are
		// unique by construction; surface the error on every candidate.
		for i := range evals {
			if evals[i].Err == nil {
				evals[i].Err = err
			}
		}
		return evals
	}
	for i := range cands {
		if evals[i].Err != nil {
			continue
		}
		payload := map[string][]byte{}
		var taskErr error
		for _, s := range subs[i] {
			r := results[index[s.task.Key]]
			if r.Err != nil && taskErr == nil {
				taskErr = fmt.Errorf("hunt: subtask %s: %w", s.slot, r.Err)
			}
			payload[s.slot] = r.Data
		}
		if taskErr != nil {
			evals[i].Err = taskErr
			continue
		}
		v, err := score(cands[i], payload, e.SLO, e.Margin)
		if err != nil {
			evals[i].Err = err
			continue
		}
		evals[i].Violations = v
		evals[i].Fitness = errFitness
		for _, violation := range v {
			if violation.Score > evals[i].Fitness {
				evals[i].Fitness = violation.Score
			}
		}
	}
	return evals
}

// candidateSubtasks builds the simulation arms a candidate needs.
func candidateSubtasks(c Candidate) []subtask {
	switch c.Tier {
	case TierNode:
		return nodeSubtasks(c.Node)
	case TierFleet:
		return fleetSubtasks(c.Fleet)
	}
	return nil
}

// scenario materialises the node genome's SmartBalance scenario.
func (n *NodeGenome) scenario() sweep.Scenario {
	faultSpec := n.Fault.String()
	if faultSpec == "none" {
		faultSpec = ""
	}
	contSpec := n.Contention
	if contSpec == "none" || contSpec == "off" {
		contSpec = ""
	}
	return sweep.Scenario{
		Platform:   n.Platform,
		Balancer:   "smartbalance",
		Workload:   n.Synth.String(),
		Threads:    n.Threads,
		Seed:       n.Seed,
		DurationNs: n.DurationMs * 1e6,
		Fault:      faultSpec,
		Contention: contSpec,
	}
}

func nodeSubtasks(n *NodeGenome) []subtask {
	sc := n.scenario()
	obsTask := sweep.Task{Key: "hunt-obs/" + sc.Key()}
	if fp, err := sweep.Fingerprint(obsSchemaVersion, sc); err == nil {
		obsTask.Fingerprint = fp
	}
	obsTask.Run = func() ([]byte, error) {
		tel := telemetry.New(telemetry.Config{})
		out, err := sweep.RunScenarioObserved(sc, tel)
		if err != nil {
			return nil, err
		}
		return json.Marshal(obsPayload{Outcome: out, Anomalies: tel.AnomalyReasons()})
	}
	subs := []subtask{{slot: "sb", task: obsTask}}
	baselines := []string{"vanilla"}
	if n.Platform == "biglittle" {
		// GTS needs exactly two core types; quad has four.
		baselines = append(baselines, "gts")
	}
	if sc.Contention != "" {
		// Contended genomes also run the blind twin: same controller,
		// same contended machine, no topology — the contention-loss arm.
		baselines = append(baselines, "smartbalance-blind")
	}
	for _, bal := range baselines {
		bsc := sc
		bsc.Balancer = bal
		// Ordinary scenario tasks, fingerprinted under the shared sweep
		// schema: baseline cells are interchangeable with any other
		// sweep's and hit the same cache entries.
		ts, err := sweep.Tasks([]sweep.Scenario{bsc}, "")
		if err != nil {
			continue
		}
		subs = append(subs, subtask{slot: bal, task: ts[0]})
	}
	return subs
}

// fleetScenario materialises the fleet genome's scenario.
func (f *FleetGenome) fleetScenario() sweep.FleetScenario {
	return sweep.FleetScenario{
		Nodes:      f.Nodes,
		Profile:    f.Profile,
		Balancer:   "smartbalance",
		Policy:     f.Policy,
		Arrival:    f.Arrival.Spec(),
		Seed:       f.Seed,
		DurationNs: f.DurationMs * 1e6,
	}
}

func fleetSubtasks(f *FleetGenome) []subtask {
	sc := f.fleetScenario()
	var subs []subtask
	for _, w := range []int{1, divergenceWorkers} {
		workers := w
		t := sweep.Task{Key: fmt.Sprintf("hunt-fleet/%s/w%d", sc.Key(), workers)}
		if fp, err := sweep.Fingerprint(fleetHuntSchemaVersion, fleetCell{Scenario: sc, Workers: workers}); err == nil {
			t.Fingerprint = fp
		}
		t.Run = func() ([]byte, error) {
			out, err := sweep.RunFleetScenarioWorkers(sc, workers)
			if err != nil {
				return nil, err
			}
			return json.Marshal(out)
		}
		subs = append(subs, subtask{slot: fmt.Sprintf("w%d", workers), task: t})
	}
	if f.Policy == "energy" {
		rsc := sc
		rsc.Policy = "rr"
		if ts, err := sweep.FleetTasks([]sweep.FleetScenario{rsc}, ""); err == nil {
			subs = append(subs, subtask{slot: "rr", task: ts[0]})
		}
	}
	return subs
}

// score derives the tier's violations from the subtask payloads.
func score(c Candidate, payload map[string][]byte, slo SLO, margin float64) ([]Violation, error) {
	switch c.Tier {
	case TierNode:
		return scoreNode(payload, margin)
	case TierFleet:
		return scoreFleet(payload, slo, margin)
	}
	return nil, fmt.Errorf("hunt: unknown tier %q", c.Tier)
}

func scoreNode(payload map[string][]byte, margin float64) ([]Violation, error) {
	var obs obsPayload
	if err := json.Unmarshal(payload["sb"], &obs); err != nil {
		return nil, fmt.Errorf("hunt: undecodable observed payload: %w", err)
	}
	eeLoss := Violation{Objective: ObjEELoss, Score: -1, Detail: "no usable baseline"}
	var details []string
	for _, bal := range []string{"gts", "vanilla"} {
		data, ok := payload[bal]
		if !ok {
			continue
		}
		out, err := sweep.DecodeOutcome(data)
		if err != nil {
			return nil, fmt.Errorf("hunt: baseline %s: %w", bal, err)
		}
		if out.EnergyEff <= 0 {
			continue
		}
		r := obs.Outcome.EnergyEff / out.EnergyEff
		details = append(details, fmt.Sprintf("sb/%s=%s", bal, g(r)))
		if s := (1 - margin) - r; s > eeLoss.Score {
			eeLoss.Score = s
		}
	}
	if len(details) > 0 {
		eeLoss.Detail = strings.Join(details, " ")
	}
	anom := Violation{Objective: ObjAnomaly, Score: -1, Detail: "clean"}
	if len(obs.Anomalies) > 0 {
		anom.Score = 1
		anom.Detail = strings.Join(obs.Anomalies, ",")
	}
	contLoss := Violation{Objective: ObjContentionLoss, Score: -1, Detail: "contention off"}
	if data, ok := payload["smartbalance-blind"]; ok {
		blind, err := sweep.DecodeOutcome(data)
		if err != nil {
			return nil, fmt.Errorf("hunt: blind baseline: %w", err)
		}
		if blind.EnergyEff > 0 {
			r := obs.Outcome.EnergyEff / blind.EnergyEff
			contLoss.Score = (1 - margin) - r
			contLoss.Detail = "aware/blind=" + g(r)
		} else {
			contLoss.Detail = "blind arm without throughput"
		}
	}
	return []Violation{eeLoss, anom, contLoss}, nil
}

func scoreFleet(payload map[string][]byte, slo SLO, margin float64) ([]Violation, error) {
	w1, err := sweep.DecodeFleetOutcome(payload["w1"])
	if err != nil {
		return nil, fmt.Errorf("hunt: undecodable fleet outcome: %w", err)
	}
	energy := Violation{Objective: ObjEnergySLO, Score: -1, Detail: "no completions"}
	if w1.Completed > 0 {
		energy.Score = (w1.JoulesPerRequest - slo.JPR) / slo.JPR
		energy.Detail = fmt.Sprintf("jpr=%s slo=%s", g(w1.JoulesPerRequest), g(slo.JPR))
	}
	p99 := Violation{
		Objective: ObjP99SLO,
		Score:     (w1.P99Ms - slo.P99Ms) / slo.P99Ms,
		Detail:    fmt.Sprintf("p99=%sms slo=%sms", g(w1.P99Ms), g(slo.P99Ms)),
	}
	policy := Violation{Objective: ObjPolicyLoss, Score: -1, Detail: "policy!=energy"}
	if rrData, ok := payload["rr"]; ok {
		rr, err := sweep.DecodeFleetOutcome(rrData)
		if err != nil {
			return nil, fmt.Errorf("hunt: undecodable rr baseline: %w", err)
		}
		if rr.Completed > 0 && rr.JoulesPerRequest > 0 && w1.Completed > 0 {
			r := w1.JoulesPerRequest / rr.JoulesPerRequest
			policy.Score = r - (1 + margin)
			policy.Detail = fmt.Sprintf("energy/rr=%s", g(r))
		} else {
			policy.Detail = "rr baseline without completions"
		}
	}
	div := Violation{Objective: ObjDivergence, Score: -1, Detail: fmt.Sprintf("w1==w%d", divergenceWorkers)}
	if !bytes.Equal(payload["w1"], payload[fmt.Sprintf("w%d", divergenceWorkers)]) {
		div.Score = 1
		div.Detail = fmt.Sprintf("w1!=w%d", divergenceWorkers)
	}
	return []Violation{energy, p99, policy, div}, nil
}
