package thermal

import (
	"math"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

func quadParams(t *testing.T) *Params {
	t.Helper()
	p, err := FromPlatform(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFromPlatform(t *testing.T) {
	p := quadParams(t)
	if len(p.ResistanceKPerW) != 4 {
		t.Fatalf("%d cores", len(p.ResistanceKPerW))
	}
	// Bigger cores: lower resistance, longer time constant.
	if p.ResistanceKPerW[0] >= p.ResistanceKPerW[3] {
		t.Fatal("Huge core should have lower thermal resistance than Small")
	}
	if p.TimeConstantNs[0] <= p.TimeConstantNs[3] {
		t.Fatal("Huge core should have a longer time constant")
	}
	if _, err := FromPlatform(&arch.Platform{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	good := quadParams(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.ResistanceKPerW = nil },
		func(p *Params) { p.TimeConstantNs = p.TimeConstantNs[:2] },
		func(p *Params) { p.ResistanceKPerW[1] = 0 },
		func(p *Params) { p.TimeConstantNs[0] = -1 },
		func(p *Params) { p.Coupling = 1 },
		func(p *Params) { p.Coupling = -0.1 },
	}
	for i, mod := range bad {
		p := quadParams(t)
		mod(p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestTrackerStartsAtAmbient(t *testing.T) {
	tr, err := NewTracker(quadParams(t))
	if err != nil {
		t.Fatal(err)
	}
	for j, temp := range tr.Temps() {
		if temp != DefaultAmbientC {
			t.Fatalf("core %d starts at %gC", j, temp)
		}
	}
	if tr.Max() != DefaultAmbientC || tr.MaxSeen() != DefaultAmbientC {
		t.Fatal("max temps wrong at start")
	}
}

func TestSteadyStateConvergence(t *testing.T) {
	p := quadParams(t)
	p.Coupling = 0 // isolate cores for the analytic check
	tr, err := NewTracker(p)
	if err != nil {
		t.Fatal(err)
	}
	power := []float64{8.62, 0, 0, 0} // Huge at peak, rest gated
	// Step for many time constants.
	for i := 0; i < 400; i++ {
		if err := tr.Advance(50e6, power); err != nil {
			t.Fatal(err)
		}
	}
	want := tr.SteadyStateC(0, 8.62)
	if math.Abs(tr.Temps()[0]-want) > 0.5 {
		t.Fatalf("Huge steady state %gC, want %gC", tr.Temps()[0], want)
	}
	// Idle cores stay at ambient (coupling disabled).
	if math.Abs(tr.Temps()[3]-DefaultAmbientC) > 0.5 {
		t.Fatalf("idle Small at %gC", tr.Temps()[3])
	}
	if tr.MaxSeen() < want-1 {
		t.Fatal("MaxSeen did not track the peak")
	}
}

func TestExponentialApproach(t *testing.T) {
	p := quadParams(t)
	p.Coupling = 0
	tr, _ := NewTracker(p)
	power := []float64{8.62, 0, 0, 0}
	tau := p.TimeConstantNs[0]
	if err := tr.Advance(int64(tau), power); err != nil {
		t.Fatal(err)
	}
	rise := tr.Temps()[0] - DefaultAmbientC
	full := tr.SteadyStateC(0, 8.62) - DefaultAmbientC
	// After one time constant: ~63% of the step.
	if rise < 0.55*full || rise > 0.70*full {
		t.Fatalf("after one tau: %.1f%% of the step", 100*rise/full)
	}
}

func TestCouplingSpreadsHeat(t *testing.T) {
	p := quadParams(t)
	p.Coupling = 0.4
	tr, _ := NewTracker(p)
	power := []float64{8.62, 0, 0, 0}
	for i := 0; i < 200; i++ {
		_ = tr.Advance(50e6, power)
	}
	// The idle cores must be pulled above ambient by the hot neighbour.
	if tr.Temps()[3] <= DefaultAmbientC+1 {
		t.Fatalf("coupling had no effect: Small at %gC", tr.Temps()[3])
	}
	// And the hot core ends cooler than in isolation.
	iso := quadParams(t)
	iso.Coupling = 0
	trIso, _ := NewTracker(iso)
	for i := 0; i < 200; i++ {
		_ = trIso.Advance(50e6, power)
	}
	if tr.Temps()[0] >= trIso.Temps()[0] {
		t.Fatal("coupling should cool the hot core")
	}
}

func TestAdvanceValidation(t *testing.T) {
	tr, _ := NewTracker(quadParams(t))
	if err := tr.Advance(0, make([]float64, 4)); err == nil {
		t.Fatal("zero step accepted")
	}
	if err := tr.Advance(1e6, make([]float64, 2)); err == nil {
		t.Fatal("wrong power length accepted")
	}
	if err := tr.Advance(1e6, []float64{-1, 0, 0, 0}); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestAwareWeightCurve(t *testing.T) {
	tr, _ := NewTracker(quadParams(t))
	inner := trainedController(t)
	a, err := NewAware(inner, tr)
	if err != nil {
		t.Fatal(err)
	}
	if w := a.weightFor(50); w != 1 {
		t.Fatalf("cool weight %g", w)
	}
	if w := a.weightFor(95); math.Abs(w-0.1) > 1e-12 {
		t.Fatalf("critical weight %g", w)
	}
	mid := a.weightFor(80) // halfway between 70 and 90
	if math.Abs(mid-0.55) > 1e-12 {
		t.Fatalf("midpoint weight %g, want 0.55", mid)
	}
	if _, err := NewAware(nil, tr); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewAware(inner, nil); err == nil {
		t.Fatal("nil tracker accepted")
	}
	a.CriticalC = a.DerateAboveC
	if err := a.Validate(); err == nil {
		t.Fatal("degenerate thresholds accepted")
	}
}

func trainedController(t *testing.T) *core.SmartBalance {
	t.Helper()
	pred, err := core.Train(arch.Table2Types(), core.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := core.New(pred, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

// runShare executes swaptions x4 under the given balancer for 1.5s and
// returns each core's share of retired instructions plus the stats.
func runShare(t *testing.T, bal kernel.Balancer) []float64 {
	t.Helper()
	plat := arch.QuadHMP()
	m, err := machine.New(plat)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(m, bal, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := workload.Benchmark("swaptions", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		_, _ = k.Spawn(&specs[i])
	}
	if err := k.Run(1_500e6); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	total := float64(st.TotalInstructions())
	if total == 0 {
		t.Fatal("no work")
	}
	shares := make([]float64, len(st.Cores))
	for j := range st.Cores {
		shares[j] = float64(st.Cores[j].Instr) / total
	}
	return shares
}

func TestThermalAwareSteersAwayFromHotCore(t *testing.T) {
	// Mechanism test: find the core plain SmartBalance loads most. That
	// core self-heats past the (deliberately tight) derating threshold,
	// so the thermal-aware wrapper must shift a substantial share of the
	// work onto cooler cores.
	plainShares := runShare(t, trainedController(t))
	hottest := 0
	for j := range plainShares {
		if plainShares[j] > plainShares[hottest] {
			hottest = j
		}
	}
	if plainShares[hottest] < 0.3 {
		t.Fatalf("no dominant core in plain run: %v", plainShares)
	}

	params := quadParams(t)
	tr, err := NewTracker(params)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := NewAware(trainedController(t), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Tight thresholds chosen inside the busy operating range of the
	// preferred (Big/Medium) cores but above the idle cores' (~46C):
	// the loaded hot cores get derated, the coolest do not.
	aw.DerateAboveC = 48
	aw.CriticalC = 56
	awareShares := runShare(t, aw)
	// Thermal steering duty-cycles the hot core (derate while hot, come
	// back when cool), so the time-averaged shift is moderate but must
	// be clearly present.
	if awareShares[hottest] >= plainShares[hottest]*0.92 {
		t.Fatalf("hot core %d still gets %.1f%% of work (plain: %.1f%%, temps %v)",
			hottest, 100*awareShares[hottest], 100*plainShares[hottest], tr.Temps())
	}
	if tr.MaxSeen() <= DefaultAmbientC {
		t.Fatal("tracker never saw heat")
	}
	t.Logf("core %d share: plain %.1f%%, thermal-aware %.1f%% (max temp seen %.1fC)",
		hottest, 100*plainShares[hottest], 100*awareShares[hottest], tr.MaxSeen())
}
