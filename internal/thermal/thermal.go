// Package thermal models per-core die temperature with first-order RC
// thermal networks and provides a temperature-aware wrapper around the
// SmartBalance controller.
//
// The paper's Section 6.4 points at run-time thermal estimation and
// tracking (its reference [24]) as the companion problem to its power
// sensing, and Eq. (11)'s weights ω_j are described as tunable "to give
// preference to certain cores or core types". This package combines the
// two: an RC estimator turns the per-core power sensors into
// temperature estimates, and the Aware balancer derates the objective
// weight of hot cores so the optimiser steers work away from them —
// trading a little energy efficiency for a cooler die.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"smartbalance/internal/arch"
)

// Params describes a platform's thermal network.
type Params struct {
	// AmbientC is the ambient (heat-sink) temperature in Celsius.
	AmbientC float64
	// ResistanceKPerW[j] is core j's junction-to-ambient thermal
	// resistance (K/W): the steady-state rise per watt.
	ResistanceKPerW []float64
	// TimeConstantNs[j] is core j's thermal RC time constant.
	TimeConstantNs []float64
	// Coupling in [0, 1) pulls each core toward the die's mean
	// temperature (lateral heat spreading); 0 isolates the cores.
	Coupling float64
}

// Validate checks the parameter domains.
func (p *Params) Validate() error {
	if len(p.ResistanceKPerW) == 0 {
		return errors.New("thermal: no cores")
	}
	if len(p.TimeConstantNs) != len(p.ResistanceKPerW) {
		return errors.New("thermal: parameter lengths disagree")
	}
	for j := range p.ResistanceKPerW {
		if p.ResistanceKPerW[j] <= 0 {
			return fmt.Errorf("thermal: core %d non-positive resistance", j)
		}
		if p.TimeConstantNs[j] <= 0 {
			return fmt.Errorf("thermal: core %d non-positive time constant", j)
		}
	}
	if p.Coupling < 0 || p.Coupling >= 1 {
		return fmt.Errorf("thermal: coupling %g outside [0,1)", p.Coupling)
	}
	return nil
}

// Thermal constants of the synthetic 22 nm package.
const (
	// resistanceScale sets R = resistanceScale / area: bigger cores
	// spread heat over more area.
	resistanceScale = 55.0 // K*mm^2/W
	// tauPerMM2 sets the RC time constant per unit area.
	tauPerMM2 = 12e6 // ns per mm^2 (~150 ms for the Huge core)
	// DefaultAmbientC is the default heat-sink temperature.
	DefaultAmbientC = 45.0
	// DefaultCoupling is the default lateral-spreading factor.
	DefaultCoupling = 0.15
)

// FromPlatform derives thermal parameters from core areas: thermal
// resistance shrinks and the time constant grows with die area.
func FromPlatform(p *arch.Platform) (*Params, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &Params{
		AmbientC: DefaultAmbientC,
		Coupling: DefaultCoupling,
	}
	for _, c := range p.Cores {
		area := p.Types[c.Type].AreaMM2
		out.ResistanceKPerW = append(out.ResistanceKPerW, resistanceScale/area)
		out.TimeConstantNs = append(out.TimeConstantNs, tauPerMM2*area)
	}
	return out, out.Validate()
}

// Tracker integrates per-core temperatures from power samples.
type Tracker struct {
	params Params
	temps  []float64
	// maxSeen records the hottest any core has ever been.
	maxSeen float64
}

// NewTracker starts all cores at ambient.
func NewTracker(params *Params) (*Tracker, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	t := &Tracker{params: *params}
	t.params.ResistanceKPerW = append([]float64(nil), params.ResistanceKPerW...)
	t.params.TimeConstantNs = append([]float64(nil), params.TimeConstantNs...)
	t.temps = make([]float64, len(params.ResistanceKPerW))
	for j := range t.temps {
		t.temps[j] = params.AmbientC
	}
	t.maxSeen = params.AmbientC
	return t, nil
}

// NumCores returns the tracked core count.
func (t *Tracker) NumCores() int { return len(t.temps) }

// Advance integrates dtNs of dissipation with the given per-core powers
// (watts). Each core relaxes exponentially toward its steady-state
// target T_amb + P*R (+ lateral coupling toward the die mean).
func (t *Tracker) Advance(dtNs int64, powerW []float64) error {
	if dtNs <= 0 {
		return fmt.Errorf("thermal: non-positive step %d", dtNs) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
	}
	if len(powerW) != len(t.temps) {
		return fmt.Errorf("thermal: %d power samples for %d cores", len(powerW), len(t.temps)) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
	}
	mean := 0.0
	for _, v := range t.temps {
		mean += v
	}
	mean /= float64(len(t.temps))
	for j := range t.temps {
		if powerW[j] < 0 {
			return fmt.Errorf("thermal: negative power on core %d", j) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
		}
		target := t.params.AmbientC + powerW[j]*t.params.ResistanceKPerW[j]
		target += t.params.Coupling * (mean - t.temps[j])
		alpha := 1 - math.Exp(-float64(dtNs)/t.params.TimeConstantNs[j])
		t.temps[j] += (target - t.temps[j]) * alpha
		if t.temps[j] > t.maxSeen {
			t.maxSeen = t.temps[j]
		}
	}
	return nil
}

// Temps returns a copy of the current per-core temperatures (C).
func (t *Tracker) Temps() []float64 {
	return append([]float64(nil), t.temps...) //sbvet:allow hotpath(defensive copy for external callers; the thermal wrapper's epoch path reads t.temps directly)
}

// Max returns the current hottest core temperature.
func (t *Tracker) Max() float64 {
	m := t.temps[0]
	for _, v := range t.temps[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxSeen returns the hottest temperature observed over the whole run.
func (t *Tracker) MaxSeen() float64 { return t.maxSeen }

// SteadyStateC returns the temperature core j would reach holding
// powerW indefinitely (ignoring coupling).
func (t *Tracker) SteadyStateC(j int, powerW float64) float64 {
	return t.params.AmbientC + powerW*t.params.ResistanceKPerW[j]
}
