package thermal

import (
	"errors"
	"fmt"

	"smartbalance/internal/core"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
	"smartbalance/internal/telemetry"
)

// Aware wraps a SmartBalance controller with temperature feedback: each
// epoch it estimates per-core temperatures from the power sensors,
// derates the objective weight ω_j of hot cores linearly between
// DerateAboveC and CriticalC, and then runs the wrapped controller.
// Above CriticalC a core's weight bottoms out at 1-MaxDerate.
type Aware struct {
	inner   *core.SmartBalance
	tracker *Tracker

	// DerateAboveC is the temperature where derating begins.
	DerateAboveC float64
	// CriticalC is the temperature of maximum derating.
	CriticalC float64
	// MaxDerate in (0, 1] is the weight reduction at CriticalC.
	MaxDerate float64

	lastEpoch kernel.Time

	// Per-epoch scratch (hot-path purity contract, DESIGN.md §11):
	// powerScratch feeds the tracker, weightScratch feeds the inner
	// controller, both rewritten every epoch.
	powerScratch  []float64
	weightScratch []float64
}

// NewAware builds a thermal-aware wrapper with default thresholds
// (derate from 70C, bottoming out at 90C with 90% derating).
func NewAware(inner *core.SmartBalance, tracker *Tracker) (*Aware, error) {
	if inner == nil {
		return nil, errors.New("thermal: nil inner controller")
	}
	if tracker == nil {
		return nil, errors.New("thermal: nil tracker")
	}
	return &Aware{
		inner:        inner,
		tracker:      tracker,
		DerateAboveC: 70,
		CriticalC:    90,
		MaxDerate:    0.9,
	}, nil
}

// Name implements kernel.Balancer.
func (a *Aware) Name() string { return "smartbalance-thermal" }

// Tracker exposes the temperature estimator (for stats and tests).
func (a *Aware) Tracker() *Tracker { return a.tracker }

// SetTelemetry forwards the telemetry collector to the wrapped
// SmartBalance controller, so a thermally wrapped system reports the
// same spans and metrics as a bare one.
func (a *Aware) SetTelemetry(c *telemetry.Collector) { a.inner.SetTelemetry(c) }

// Validate checks the derating thresholds.
func (a *Aware) Validate() error {
	if a.CriticalC <= a.DerateAboveC {
		return fmt.Errorf("thermal: critical %gC <= derate-above %gC", a.CriticalC, a.DerateAboveC) //sbvet:allow hotpath(diagnostic formats only on the rejected-config path)
	}
	if a.MaxDerate <= 0 || a.MaxDerate > 1 {
		return fmt.Errorf("thermal: max derate %g outside (0,1]", a.MaxDerate) //sbvet:allow hotpath(diagnostic formats only on the rejected-config path)
	}
	return nil
}

// Rebalance implements kernel.Balancer.
func (a *Aware) Rebalance(k *kernel.Kernel, now kernel.Time,
	threads []hpc.ThreadSample, cores []hpc.CoreEpochSample) {
	if err := a.Validate(); err != nil {
		return
	}
	if len(cores) == a.tracker.NumCores() {
		dt := now - a.lastEpoch
		if dt <= 0 {
			dt = k.Config().EpochNs
		}
		a.lastEpoch = now
		power := a.growPower(len(cores))
		for j := range cores {
			window := cores[j].BusyNs + cores[j].SleepNs
			if window > 0 {
				power[j] = (cores[j].Agg.EnergyJ + cores[j].SleepEnergyJ) / (float64(window) * 1e-9)
			}
		}
		_ = a.tracker.Advance(dt, power)
	}
	weights := a.growWeights(a.tracker.NumCores())
	for j, temp := range a.tracker.temps {
		weights[j] = a.weightFor(temp)
	}
	a.inner.SetWeights(weights)
	a.inner.Rebalance(k, now, threads, cores)
}

// growPower returns the power scratch resized to n; contents are
// rewritten by the caller.
func (a *Aware) growPower(n int) []float64 {
	if cap(a.powerScratch) < n {
		a.powerScratch = make([]float64, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
	}
	a.powerScratch = a.powerScratch[:n]
	for j := range a.powerScratch {
		a.powerScratch[j] = 0
	}
	return a.powerScratch
}

// growWeights returns the weight scratch resized to n; contents are
// rewritten by the caller.
func (a *Aware) growWeights(n int) []float64 {
	if cap(a.weightScratch) < n {
		a.weightScratch = make([]float64, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
	}
	a.weightScratch = a.weightScratch[:n]
	return a.weightScratch
}

// weightFor maps a temperature to an objective weight.
func (a *Aware) weightFor(tempC float64) float64 {
	switch {
	case tempC <= a.DerateAboveC:
		return 1
	case tempC >= a.CriticalC:
		return 1 - a.MaxDerate
	default:
		frac := (tempC - a.DerateAboveC) / (a.CriticalC - a.DerateAboveC)
		return 1 - a.MaxDerate*frac
	}
}
