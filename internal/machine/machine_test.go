package machine

import (
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/workload"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func simpleSpec(instr uint64, sleepNs int64, repeats int) *workload.ThreadSpec {
	return &workload.ThreadSpec{
		Name:      "t",
		Benchmark: "test",
		Phases: []workload.Phase{{
			Name: "p", Instructions: instr, ILP: 2, MemShare: 0.3, BranchShare: 0.1,
			WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.4, MLP: 2,
			TLBPressureI: 0.1, TLBPressureD: 0.2, SleepAfterNs: sleepNs,
		}},
		Repeats: repeats,
	}
}

func TestNewRejectsInvalidPlatform(t *testing.T) {
	if _, err := New(&arch.Platform{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestNewThreadStateValidates(t *testing.T) {
	m := newMachine(t)
	if _, err := m.NewThreadState(&workload.ThreadSpec{Name: "bad"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	ts, err := m.NewThreadState(simpleSpec(1e6, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ts.Finished() || ts.PhaseIndex() != 0 {
		t.Fatal("fresh thread state wrong")
	}
}

func TestExecSliceBasicCounters(t *testing.T) {
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(100e6, 0, 0))
	res, err := m.ExecSlice(ts, 1, 1e6) // 1ms on the Big core
	if err != nil {
		t.Fatal(err)
	}
	if res.DurNs <= 0 || res.DurNs > 1e6 {
		t.Fatalf("DurNs = %d", res.DurNs)
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions retired")
	}
	// Instruction class shares approximately match the phase mix.
	memFrac := float64(res.MemInstructions) / float64(res.Instructions)
	if memFrac < 0.28 || memFrac > 0.32 {
		t.Fatalf("mem fraction %.3f, want ~0.3", memFrac)
	}
	brFrac := float64(res.BranchInstructions) / float64(res.Instructions)
	if brFrac < 0.08 || brFrac > 0.12 {
		t.Fatalf("branch fraction %.3f, want ~0.1", brFrac)
	}
	if res.CyclesBusy == 0 || res.CyclesIdle == 0 {
		t.Fatalf("cycle split %d/%d", res.CyclesBusy, res.CyclesIdle)
	}
	// Cycle count consistent with frequency (1.5 GHz Big core).
	total := res.CyclesBusy + res.CyclesIdle
	wantCycles := uint64(float64(res.DurNs) * 1.5)
	if total < wantCycles*99/100 || total > wantCycles*101/100 {
		t.Fatalf("cycles %d, want ~%d", total, wantCycles)
	}
	if res.EnergyJ <= 0 {
		t.Fatal("no energy consumed")
	}
	if res.SleepNs != 0 || res.Finished {
		t.Fatal("endless busy thread should neither sleep nor finish")
	}
}

func TestExecSliceIPSConsistentWithModel(t *testing.T) {
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(1e9, 0, 0))
	met := m.SteadyMetrics(ts, 0)
	huge := m.Platform().Type(0)
	res, err := m.ExecSlice(ts, 0, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	gotIPS := float64(res.Instructions) / (float64(res.DurNs) * 1e-9)
	wantIPS := met.IPS(huge)
	if gotIPS < wantIPS*0.99 || gotIPS > wantIPS*1.01 {
		t.Fatalf("slice IPS %.4g, model IPS %.4g", gotIPS, wantIPS)
	}
}

func TestExecSliceFinishes(t *testing.T) {
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(1e6, 0, 1))
	// 1M instructions at >0.5e9 IPS finish well inside 100ms.
	res, err := m.ExecSlice(ts, 3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || !ts.Finished() {
		t.Fatal("thread did not finish")
	}
	if res.Instructions != 1e6 {
		t.Fatalf("retired %d instructions, want 1e6", res.Instructions)
	}
	if res.DurNs >= 100e6 {
		t.Fatal("slice should end early at completion")
	}
	if _, err := m.ExecSlice(ts, 3, 1e6); err != ErrFinished {
		t.Fatalf("want ErrFinished, got %v", err)
	}
}

func TestExecSliceSleepPoint(t *testing.T) {
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(1e6, 5e6, 0))
	res, err := m.ExecSlice(ts, 1, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.SleepNs != 5e6 {
		t.Fatalf("SleepNs = %d, want 5e6", res.SleepNs)
	}
	if res.Finished {
		t.Fatal("repeating thread reported finished")
	}
	// After the sleep point the thread resumes at phase 0 again.
	if ts.PhaseIndex() != 0 {
		t.Fatalf("phase index %d after wrap", ts.PhaseIndex())
	}
}

func TestExecSliceSleepJitterPropagates(t *testing.T) {
	// Slice shorter than the phase: no sleep yet.
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(1e9, 5e6, 0))
	res, err := m.ExecSlice(ts, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.SleepNs != 0 {
		t.Fatal("mid-phase slice must not sleep")
	}
}

func TestExecSliceMultiPhase(t *testing.T) {
	m := newMachine(t)
	spec := &workload.ThreadSpec{
		Name:      "mp",
		Benchmark: "test",
		Phases: []workload.Phase{
			{Name: "a", Instructions: 1e5, ILP: 3, MemShare: 0.2, BranchShare: 0.1,
				WorkingSetIKB: 4, WorkingSetDKB: 16, BranchEntropy: 0.2, MLP: 2},
			{Name: "b", Instructions: 1e5, ILP: 1.5, MemShare: 0.4, BranchShare: 0.15,
				WorkingSetIKB: 8, WorkingSetDKB: 512, BranchEntropy: 0.6, MLP: 2},
		},
		Repeats: 2,
	}
	ts, err := m.NewThreadState(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecSlice(ts, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("two repeats of 2x1e5 instructions should finish in 1s")
	}
	if res.Instructions != 4e5 {
		t.Fatalf("retired %d, want 4e5", res.Instructions)
	}
	cycles, _ := ts.Progress()
	if cycles != 2 {
		t.Fatalf("cyclesDone = %d", cycles)
	}
}

func TestExecSliceRepeatsAndPhaseWrap(t *testing.T) {
	m := newMachine(t)
	spec := simpleSpec(1e5, 0, 3)
	ts, _ := m.NewThreadState(spec)
	totalInstr := uint64(0)
	for !ts.Finished() {
		res, err := m.ExecSlice(ts, 2, 1e5)
		if err != nil {
			t.Fatal(err)
		}
		totalInstr += res.Instructions
	}
	if totalInstr != 3e5 {
		t.Fatalf("total %d, want 3e5", totalInstr)
	}
}

func TestExecSliceInvalidDuration(t *testing.T) {
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(1e6, 0, 0))
	if _, err := m.ExecSlice(ts, 0, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := m.ExecSlice(ts, 0, -5); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestCoreTypeChangesThroughput(t *testing.T) {
	m := newMachine(t)
	specs, err := workload.Benchmark("swaptions", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tsHuge, _ := m.NewThreadState(&specs[0])
	specs2, _ := workload.Benchmark("swaptions", 1, 1)
	tsSmall, _ := m.NewThreadState(&specs2[0])

	rh, err := m.ExecSlice(tsHuge, 0, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := m.ExecSlice(tsSmall, 3, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Instructions <= 2*rs.Instructions {
		t.Fatalf("Huge (%d instr) should far outpace Small (%d instr) on compute code",
			rh.Instructions, rs.Instructions)
	}
	// But energy per instruction must favour the small core.
	epiHuge := rh.EnergyJ / float64(rh.Instructions)
	epiSmall := rs.EnergyJ / float64(rs.Instructions)
	if epiSmall >= epiHuge {
		t.Fatalf("EPI: Small %.3g >= Huge %.3g", epiSmall, epiHuge)
	}
}

func TestSteadyMetricsMemoised(t *testing.T) {
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(1e6, 0, 0))
	a := m.SteadyMetrics(ts, 2)
	b := m.SteadyMetrics(ts, 2)
	if a != b {
		t.Fatal("memoised metrics differ between calls")
	}
}

func TestEnergyAccumulatesOverSlices(t *testing.T) {
	m := newMachine(t)
	ts, _ := m.NewThreadState(simpleSpec(1e9, 0, 0))
	var total float64
	for i := 0; i < 10; i++ {
		res, err := m.ExecSlice(ts, 1, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		total += res.EnergyJ
	}
	// 10ms on the Big core: energy must be in the right ballpark
	// (between idle and peak power times duration).
	pm := m.PowerModels().ForType(1)
	phase := ts.CurrentPhase()
	lo := pm.LeakW() * 0.01
	hi := pm.BusyPower(m.Platform().Type(1).PeakIPC, phase) * 0.01
	if total < lo || total > hi {
		t.Fatalf("10ms energy %.4g outside [%.4g, %.4g]", total, lo, hi)
	}
}

func BenchmarkExecSlice(b *testing.B) {
	m, err := New(arch.QuadHMP())
	if err != nil {
		b.Fatal(err)
	}
	ts, err := m.NewThreadState(simpleSpec(1<<62, 0, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ExecSlice(ts, 1, 1e6); err != nil {
			b.Fatal(err)
		}
	}
}
