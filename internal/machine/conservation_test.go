package machine

import (
	"testing"
	"testing/quick"

	"smartbalance/internal/arch"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

// Conservation properties: however a thread's execution is sliced
// (quantum sizes, interleaved core types), the totals must be exact.

func TestInstructionConservationAcrossSlicing(t *testing.T) {
	m, err := New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	const totalInstr = 30e6
	mkState := func() *ThreadState {
		ts, err := m.NewThreadState(&workload.ThreadSpec{
			Name:      "c",
			Benchmark: "c",
			Phases: []workload.Phase{
				{Name: "a", Instructions: totalInstr / 3, ILP: 3, MemShare: 0.2, BranchShare: 0.1,
					WorkingSetIKB: 4, WorkingSetDKB: 32, BranchEntropy: 0.3, MLP: 2},
				{Name: "b", Instructions: 2 * totalInstr / 3, ILP: 1.5, MemShare: 0.4, BranchShare: 0.12,
					WorkingSetIKB: 8, WorkingSetDKB: 512, BranchEntropy: 0.5, MLP: 2},
			},
			Repeats: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}

	// Reference: one giant slice on the Big core.
	ref := mkState()
	refRes, err := m.ExecSlice(ref, 1, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Finished || refRes.Instructions != totalInstr {
		t.Fatalf("reference run retired %d, finished=%v", refRes.Instructions, refRes.Finished)
	}

	// Sliced arbitrarily across alternating core types.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		ts := mkState()
		var instr uint64
		for i := 0; i < 100000; i++ {
			if ts.Finished() {
				break
			}
			dur := int64(1e4 + r.Intn(3e6))
			tid := arch.CoreTypeID(r.Intn(4))
			res, err := m.ExecSlice(ts, tid, dur)
			if err != nil {
				return false
			}
			instr += res.Instructions
		}
		return ts.Finished() && instr == totalInstr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCountersNeverExceedInstructions(t *testing.T) {
	m, err := New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := workload.Benchmark("canneal", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := m.NewThreadState(&specs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		res, err := m.ExecSlice(ts, arch.CoreTypeID(i%4), 2e6)
		if err != nil {
			t.Fatal(err)
		}
		if res.MemInstructions > res.Instructions || res.BranchInstructions > res.Instructions {
			t.Fatalf("instruction class exceeds total: %+v", res)
		}
		if res.L1DMisses > res.MemInstructions {
			t.Fatalf("more data misses than memory ops: %+v", res)
		}
		if res.BranchMispredicts > res.BranchInstructions {
			t.Fatalf("more mispredicts than branches: %+v", res)
		}
		if res.L1IMisses > res.Instructions || res.ITLBMisses > res.Instructions {
			t.Fatalf("front-end events exceed instructions: %+v", res)
		}
	}
}

func TestEnergyMonotoneInDuration(t *testing.T) {
	m, err := New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *ThreadState {
		ts, err := m.NewThreadState(simpleSpec(1<<62, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	short, err := m.ExecSlice(mk(), 0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	long, err := m.ExecSlice(mk(), 0, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	if long.EnergyJ <= short.EnergyJ {
		t.Fatalf("energy not monotone in duration: %g vs %g", long.EnergyJ, short.EnergyJ)
	}
	if long.Instructions <= short.Instructions {
		t.Fatal("instructions not monotone in duration")
	}
}
