// Package machine binds the architecture, workload, performance, and
// power models into an executable abstraction: it advances a thread's
// progress through its phase cycle on a given core type for a bounded
// time slice and reports everything the hardware would have counted —
// instructions by class, busy/stall cycles, cache/TLB/branch miss
// events, and consumed energy.
//
// The discrete-event kernel (internal/kernel) calls ExecSlice once per
// scheduling quantum; the resulting counter deltas are what the
// SmartBalance sensing phase samples at context-switch time.
package machine

import (
	"errors"
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/contention"
	"smartbalance/internal/perfmodel"
	"smartbalance/internal/powermodel"
	"smartbalance/internal/workload"
)

// ErrFinished is returned when a slice is requested for a thread that
// has already retired all of its instructions.
var ErrFinished = errors.New("machine: thread already finished")

// ThreadState tracks a thread's progress through its phase cycle,
// together with a per-core-type memo of the steady-state metrics of
// each phase (the phases are immutable once spawned).
type ThreadState struct {
	Spec *workload.ThreadSpec

	phaseIdx     int
	instrInPhase uint64
	cyclesDone   int
	finished     bool

	// metrics[phase*numTypes+coreType] holds the memoised model
	// evaluation; valid marks filled entries. Flat layout: the lookup
	// is one bounds check and no pointer chase on the slice hot path.
	numTypes int
	metrics  []perfmodel.Metrics
	valid    []bool
}

// Options tunes optional machine behaviours.
type Options struct {
	// BusBandwidthGBps, when positive, enables the shared-memory-bus
	// contention model of the paper's Section 5 platform ("the cores
	// are connected to the main memory through a shared bus"):
	// aggregate L1-miss traffic across all cores inflates everyone's
	// effective memory latency with an M/M/1-style queueing factor.
	// Zero disables contention (independent cores).
	BusBandwidthGBps float64
	// Contention configures the LLC-domain shared-resource model
	// (internal/contention): co-runner working-set overlap inflating
	// miss rates and domain bandwidth saturation flattening IPS. The
	// zero spec disables it; it composes with the global bus model.
	Contention contention.Spec
}

// Bus-model constants.
const (
	// cacheLineBytes is the transfer size of one miss.
	cacheLineBytes = 64
	// busTauNs is the traffic-EWMA window.
	busTauNs = 5e6
	// busMaxUtil caps the queueing factor (scale <= 10x).
	busMaxUtil = 0.9
)

// Machine executes threads on the cores of one platform.
type Machine struct {
	plat *arch.Platform
	pm   *powermodel.Platform
	opts Options

	// busBytesPerNs is the decayed average of L1-miss traffic; 1 GB/s
	// equals one byte per nanosecond.
	busBytesPerNs float64

	// cont is the LLC-domain contention model; nil when disabled.
	cont *contention.Model
}

// New builds a Machine for the platform with default options. The
// platform is validated and its power models calibrated.
func New(plat *arch.Platform) (*Machine, error) {
	return NewWithOptions(plat, Options{})
}

// NewWithOptions builds a Machine with explicit options.
func NewWithOptions(plat *arch.Platform, opts Options) (*Machine, error) {
	if opts.BusBandwidthGBps < 0 {
		return nil, fmt.Errorf("machine: negative bus bandwidth %g", opts.BusBandwidthGBps)
	}
	pm, err := powermodel.NewPlatform(plat)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	cont, err := contention.NewModel(plat, opts.Contention)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	return &Machine{plat: plat, pm: pm, opts: opts, cont: cont}, nil
}

// Contention returns the machine's LLC-domain contention model, or nil
// when the model is disabled.
func (m *Machine) Contention() *contention.Model { return m.cont }

// MemLatencyScale returns the current contention multiplier applied to
// memory latency (1 when the bus model is disabled or unloaded).
func (m *Machine) MemLatencyScale() float64 {
	if m.opts.BusBandwidthGBps <= 0 {
		return 1
	}
	util := m.busBytesPerNs / m.opts.BusBandwidthGBps
	if util > busMaxUtil {
		util = busMaxUtil
	}
	if util < 0 {
		util = 0
	}
	return 1 / (1 - util)
}

// recordBusTraffic folds a slice's miss traffic into the EWMA.
func (m *Machine) recordBusTraffic(durNs int64, missBytes float64) {
	if m.opts.BusBandwidthGBps <= 0 || durNs <= 0 {
		return
	}
	w := float64(durNs) / (float64(durNs) + busTauNs)
	m.busBytesPerNs = (1-w)*m.busBytesPerNs + w*(missBytes/float64(durNs))
}

// Platform returns the machine's platform.
func (m *Machine) Platform() *arch.Platform { return m.plat }

// PowerModels returns the calibrated power models.
func (m *Machine) PowerModels() *powermodel.Platform { return m.pm }

// NewThreadState validates the spec and prepares run-time state. The
// steady-state metrics of every (phase, core type) pair are evaluated
// eagerly — the spec is immutable and the table is small, so paying
// the model up front keeps phase transitions free of evaluation work
// on the slice hot path.
func (m *Machine) NewThreadState(spec *workload.ThreadSpec) (*ThreadState, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	n := len(spec.Phases)
	q := m.plat.NumTypes()
	ts := &ThreadState{
		Spec:     spec,
		numTypes: q,
		metrics:  make([]perfmodel.Metrics, n*q),
		valid:    make([]bool, n*q),
	}
	for p := 0; p < n; p++ {
		for c := 0; c < q; c++ {
			ts.metrics[p*q+c] = perfmodel.Evaluate(&spec.Phases[p], &m.plat.Types[c])
			ts.valid[p*q+c] = true
		}
	}
	return ts, nil
}

// Finished reports whether the thread has retired all instructions.
func (t *ThreadState) Finished() bool { return t.finished }

// PhaseIndex returns the index of the current phase.
func (t *ThreadState) PhaseIndex() int { return t.phaseIdx }

// CurrentPhase returns the phase the thread is executing (or would
// execute next).
func (t *ThreadState) CurrentPhase() *workload.Phase {
	return &t.Spec.Phases[t.phaseIdx]
}

// Progress returns (completed cycles, instructions into current phase).
func (t *ThreadState) Progress() (cycles int, instr uint64) {
	return t.cyclesDone, t.instrInPhase
}

// SteadyMetrics returns the memoised steady-state metrics of the
// thread's current phase on core type tid. This is also the oracle the
// predictor evaluation (Fig. 6) and the prediction-vs-oracle ablation
// compare against.
func (m *Machine) SteadyMetrics(t *ThreadState, tid arch.CoreTypeID) perfmodel.Metrics {
	return *m.phaseMetrics(t, t.phaseIdx, tid)
}

// phaseMetrics returns a pointer into the memo table; the entry is
// immutable once filled, so callers may hold it across calls.
func (m *Machine) phaseMetrics(t *ThreadState, phase int, tid arch.CoreTypeID) *perfmodel.Metrics {
	idx := phase*t.numTypes + int(tid)
	if !t.valid[idx] {
		t.metrics[idx] = perfmodel.Evaluate(&t.Spec.Phases[phase], &m.plat.Types[tid])
		t.valid[idx] = true
	}
	return &t.metrics[idx]
}

// SliceResult reports what happened during one execution slice.
type SliceResult struct {
	// DurNs is the execution time actually consumed (<= the requested
	// maximum; shorter when the thread hits a sleep point or finishes).
	DurNs int64
	// Instruction counters (the paper's I_total, I_mem, I_branch).
	Instructions       uint64
	MemInstructions    uint64
	BranchInstructions uint64
	// Cycle counters (cyBusy and cyIdle; cySleep is accounted by the
	// kernel, which owns wall time).
	CyclesBusy uint64
	CyclesIdle uint64
	// Performance-degradation event counters.
	L1IMisses         uint64
	L1DMisses         uint64
	BranchMispredicts uint64
	ITLBMisses        uint64
	DTLBMisses        uint64
	// LLCMisses counts L1D misses that also missed the private L2 and
	// went to memory; MemBytes is the corresponding line traffic. These
	// are the counters the contention model and its sensing envelope
	// consume.
	LLCMisses uint64
	MemBytes  uint64
	// EnergyJ is the energy consumed by the core during the slice.
	EnergyJ float64
	// SleepNs > 0 indicates the thread entered a sleep/wait period at
	// the end of the slice.
	SleepNs int64
	// Finished indicates the thread retired its last instruction.
	Finished bool
}

// ExecSlice runs thread t on a core of type tid for at most maxDurNs of
// execution time and returns the counter deltas. The slice ends early at
// a sleep point or when the thread finishes. maxDurNs must be positive.
func (m *Machine) ExecSlice(t *ThreadState, tid arch.CoreTypeID, maxDurNs int64) (SliceResult, error) {
	var res SliceResult
	err := m.ExecSliceInto(&res, t, tid, maxDurNs)
	return res, err
}

// ExecSliceInto is ExecSlice writing its result into *out (which is
// reset first): the scheduler hot path targets the core's pending-slice
// slot directly instead of copying the ~100-byte result twice per
// slice. It executes with core identity unknown, so the LLC-domain
// contention model (which needs to know the co-runner set) is not
// applied; the kernel's dispatch path uses ExecSliceOnCore.
func (m *Machine) ExecSliceInto(out *SliceResult, t *ThreadState, tid arch.CoreTypeID, maxDurNs int64) error {
	return m.execSlice(out, t, tid, -1, maxDurNs)
}

// ExecSliceOnCore is ExecSliceInto with the executing core identified,
// which lets the LLC-domain contention model degrade the slice by the
// core's co-runner pressure and fold the slice's footprint back into
// the model. With the model disabled it is arithmetically identical to
// ExecSliceInto on the core's type.
func (m *Machine) ExecSliceOnCore(out *SliceResult, t *ThreadState, core arch.CoreID, maxDurNs int64) error {
	return m.execSlice(out, t, m.plat.TypeID(core), int(core), maxDurNs)
}

// execSlice is the shared slice-execution loop. core < 0 means the
// executing core is unknown (no LLC-domain contention applies).
func (m *Machine) execSlice(out *SliceResult, t *ThreadState, tid arch.CoreTypeID, core int, maxDurNs int64) error {
	res := out
	*res = SliceResult{}
	if maxDurNs <= 0 {
		return fmt.Errorf("machine: non-positive slice duration %d", maxDurNs) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
	}
	if t.finished {
		return ErrFinished
	}
	ct := &m.plat.Types[tid]
	pmod := m.pm.ForType(tid)
	freqGHz := ct.FreqMHz / 1000 // cycles per ns
	// Contention is sampled once per slice (the factors move on the
	// busTauNs/ewmaTauNs scale, far slower than a slice).
	latScale := m.MemLatencyScale()
	missScale := 1.0
	if m.cont != nil && core >= 0 {
		missScale = m.cont.MissScale(arch.CoreID(core))
		latScale *= m.cont.LatScale(arch.CoreID(core))
	}

	remaining := float64(maxDurNs)
	var memTrafficBytes float64 // L2-miss traffic feeding the shared bus
	wsKB := t.Spec.Phases[t.phaseIdx].WorkingSetDKB
	for remaining > 1e-9 {
		ph := &t.Spec.Phases[t.phaseIdx]
		wsKB = ph.WorkingSetDKB
		var met *perfmodel.Metrics
		var contended perfmodel.Metrics
		if latScale > 1.0001 || missScale > 1.0001 {
			contended = perfmodel.EvaluateShared(ph, ct, latScale, missScale)
			met = &contended
		} else {
			met = m.phaseMetrics(t, t.phaseIdx, tid)
		}
		ipsPerNs := met.IPC * freqGHz // instructions per nanosecond

		instrLeft := ph.Instructions - t.instrInPhase
		nsNeeded := float64(instrLeft) / ipsPerNs

		var segNs float64
		var segInstr uint64
		phaseEnds := false
		if nsNeeded <= remaining {
			segNs = nsNeeded
			segInstr = instrLeft
			phaseEnds = true
		} else {
			segNs = remaining
			segInstr = uint64(segNs * ipsPerNs)
			if segInstr > instrLeft {
				segInstr = instrLeft
				phaseEnds = true
			}
		}
		if segInstr == 0 && !phaseEnds {
			// The slice remainder is too short to retire a single
			// instruction; consume it as stall time and stop.
			res.CyclesIdle += uint64(remaining * freqGHz)
			res.EnergyJ += pmod.BusyPower(0, ph) * remaining * 1e-9
			res.DurNs += int64(remaining)
			break
		}

		cycles := segNs * freqGHz
		busy := cycles * met.BusyFrac
		res.DurNs += int64(segNs + 0.5)
		res.Instructions += segInstr
		res.MemInstructions += uint64(float64(segInstr) * ph.MemShare)
		res.BranchInstructions += uint64(float64(segInstr) * ph.BranchShare)
		res.CyclesBusy += uint64(busy)
		res.CyclesIdle += uint64(cycles - busy)
		res.L1IMisses += uint64(float64(segInstr) * met.MissRateL1I)
		memOps := float64(segInstr) * ph.MemShare
		res.L1DMisses += uint64(memOps * met.MissRateL1D)
		// Only misses that escape the private L2 reach the shared bus.
		llcMisses := memOps * met.MissRateL1D * met.MissRateL2
		res.LLCMisses += uint64(llcMisses)
		res.MemBytes += uint64(llcMisses * cacheLineBytes)
		memTrafficBytes += llcMisses * cacheLineBytes
		res.BranchMispredicts += uint64(float64(segInstr) * ph.BranchShare * met.MispredictRate)
		res.ITLBMisses += uint64(float64(segInstr) * met.MissRateITLB)
		res.DTLBMisses += uint64(memOps * met.MissRateDTLB)
		res.EnergyJ += pmod.EnergyJ(met.IPC, ph, int64(segNs+0.5))

		remaining -= segNs
		t.instrInPhase += segInstr

		if phaseEnds {
			sleep := ph.SleepAfterNs
			t.advancePhase()
			if t.finished {
				res.Finished = true
				break
			}
			if sleep > 0 {
				res.SleepNs = sleep
				break
			}
		}
	}
	if res.DurNs > maxDurNs {
		res.DurNs = maxDurNs
	}
	if res.DurNs <= 0 {
		// Guarantee forward progress for the event loop even when the
		// slice rounds down to zero.
		res.DurNs = 1
	}
	m.recordBusTraffic(res.DurNs, memTrafficBytes)
	if m.cont != nil && core >= 0 {
		m.cont.RecordSlice(arch.CoreID(core), res.DurNs, wsKB, memTrafficBytes)
	}
	return nil
}

// advancePhase moves to the next phase, handling cycle repetition and
// completion.
func (t *ThreadState) advancePhase() {
	t.instrInPhase = 0
	t.phaseIdx++
	if t.phaseIdx < len(t.Spec.Phases) {
		return
	}
	t.phaseIdx = 0
	t.cyclesDone++
	if t.Spec.Repeats > 0 && t.cyclesDone >= t.Spec.Repeats {
		t.finished = true
	}
}
