package machine

import (
	"math"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/contention"
	"smartbalance/internal/workload"
)

// memorySpec builds a memory-heavy thread whose data working set is the
// contention lever under test.
func memorySpec(wsDKB float64) *workload.ThreadSpec {
	return &workload.ThreadSpec{
		Name:      "mem",
		Benchmark: "test",
		Phases: []workload.Phase{{
			Name: "p", Instructions: 500e6, ILP: 1.5, MemShare: 0.45,
			BranchShare: 0.05, WorkingSetIKB: 16, WorkingSetDKB: wsDKB,
			BranchEntropy: 0.3, MLP: 2, TLBPressureI: 0.05, TLBPressureD: 0.3,
		}},
	}
}

// TestContentionZeroOverlapByteIdentical pins the §15 invariant at the
// machine layer: with the model enabled but no co-runner in the
// victim's LLC domain, every slice result is byte-identical to the
// uncontended machine — enabling contention on a solo workload changes
// nothing at all.
func TestContentionZeroOverlapByteIdentical(t *testing.T) {
	plain, err := New(arch.OctaBigLittle())
	if err != nil {
		t.Fatal(err)
	}
	cont, err := NewWithOptions(arch.OctaBigLittle(), Options{
		Contention: contention.Spec{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := plain.NewThreadState(memorySpec(4096))
	if err != nil {
		t.Fatal(err)
	}
	tc, err := cont.NewThreadState(memorySpec(4096))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		var rp, rc SliceResult
		if err := plain.ExecSliceOnCore(&rp, tp, 0, 2e6); err != nil {
			t.Fatal(err)
		}
		if err := cont.ExecSliceOnCore(&rc, tc, 0, 2e6); err != nil {
			t.Fatal(err)
		}
		if rp != rc {
			t.Fatalf("slice %d diverged with zero overlap:\nplain %+v\ncont  %+v", i, rp, rc)
		}
	}
}

// TestContentionMonotoneDegradation: a heavier co-runner working set in
// the victim's domain retires fewer victim instructions per slice and
// raises its memory-bound counters — the degradation is monotone in the
// overlap.
func TestContentionMonotoneDegradation(t *testing.T) {
	prevInstr := uint64(math.MaxUint64)
	prevLLC := 0.0
	for _, antWs := range []float64{64, 2048, 8192, 32768} {
		m, err := NewWithOptions(arch.OctaBigLittle(), Options{
			Contention: contention.Spec{Enabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		ant, err := m.NewThreadState(memorySpec(antWs))
		if err != nil {
			t.Fatal(err)
		}
		vic, err := m.NewThreadState(memorySpec(1024))
		if err != nil {
			t.Fatal(err)
		}
		// Warm the antagonist's footprint EWMA on core 1 (victim's
		// domain), then measure one victim slice on core 0.
		var r SliceResult
		for i := 0; i < 60; i++ {
			if err := m.ExecSliceOnCore(&r, ant, 1, 1e6); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.ExecSliceOnCore(&r, vic, 0, 2e6); err != nil {
			t.Fatal(err)
		}
		if r.Instructions == 0 || r.Instructions > prevInstr {
			t.Fatalf("victim retired %d instructions under ant ws %g KB, want (0, %d]",
				r.Instructions, antWs, prevInstr)
		}
		// Counter quantisation wobbles the rate in the last few digits
		// once both points sit on the pressure cap; allow that.
		llcRate := float64(r.LLCMisses) / float64(r.Instructions)
		if llcRate < prevLLC*(1-1e-4) {
			t.Fatalf("victim LLC miss rate %v under ant ws %g KB fell below %v", llcRate, antWs, prevLLC)
		}
		prevInstr, prevLLC = r.Instructions, llcRate
	}
	if prevInstr == uint64(math.MaxUint64) {
		t.Fatal("no slices measured")
	}
}

// TestContentionSaturationStaysFinite: an absurd antagonist against a
// 1 GB/s domain drives the model into both clamps; the victim's slice
// must remain finite, forward-progressing, and energy-sane.
func TestContentionSaturationStaysFinite(t *testing.T) {
	m, err := NewWithOptions(arch.OctaBigLittle(), Options{
		Contention: contention.Spec{Enabled: true, BWGBps: 1, LLCKB: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ws float64) *ThreadState {
		ts, err := m.NewThreadState(memorySpec(ws))
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	ants := []*ThreadState{mk(65536), mk(65536), mk(65536)}
	vic := mk(1024)
	var r SliceResult
	for i := 0; i < 100; i++ {
		for c, ant := range ants {
			if err := m.ExecSliceOnCore(&r, ant, arch.CoreID(c+1), 1e6); err != nil {
				t.Fatal(err)
			}
		}
	}
	cm := m.Contention()
	if cm.MissScale(0) > 1+cm.MissSlope()*cm.PressureCap() {
		t.Fatalf("MissScale %v escaped the pressure cap", cm.MissScale(0))
	}
	if lim := 1 / (1 - cm.MaxBWUtil()); cm.LatScale(0) > lim {
		t.Fatalf("LatScale %v escaped the utilisation clamp %v", cm.LatScale(0), lim)
	}
	for i := 0; i < 20; i++ {
		if err := m.ExecSliceOnCore(&r, vic, 0, 2e6); err != nil {
			t.Fatal(err)
		}
		if r.DurNs <= 0 || r.DurNs > 2e6 {
			t.Fatalf("slice %d DurNs %d outside (0, 2ms]", i, r.DurNs)
		}
		if r.Instructions == 0 {
			t.Fatalf("slice %d made no progress under saturation", i)
		}
		if math.IsNaN(r.EnergyJ) || math.IsInf(r.EnergyJ, 0) || r.EnergyJ < 0 {
			t.Fatalf("slice %d energy %v", i, r.EnergyJ)
		}
	}
}
