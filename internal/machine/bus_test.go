package machine

import (
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/perfmodel"
	"smartbalance/internal/workload"
)

func memBoundSpec() *workload.ThreadSpec {
	return &workload.ThreadSpec{
		Name:      "mem",
		Benchmark: "mem",
		Phases: []workload.Phase{{
			Name: "stream", Instructions: 1 << 40, ILP: 1.4, MemShare: 0.45, BranchShare: 0.1,
			WorkingSetIKB: 8, WorkingSetDKB: 4096, BranchEntropy: 0.3, MLP: 3,
			TLBPressureI: 0.05, TLBPressureD: 0.5,
		}},
	}
}

func TestNewWithOptionsValidation(t *testing.T) {
	if _, err := NewWithOptions(arch.QuadHMP(), Options{BusBandwidthGBps: -1}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestBusDisabledByDefault(t *testing.T) {
	m := newMachine(t)
	if m.MemLatencyScale() != 1 {
		t.Fatalf("default latency scale %g", m.MemLatencyScale())
	}
	ts, _ := m.NewThreadState(memBoundSpec())
	for i := 0; i < 50; i++ {
		if _, err := m.ExecSlice(ts, 0, 2e6); err != nil {
			t.Fatal(err)
		}
	}
	if m.MemLatencyScale() != 1 {
		t.Fatal("disabled bus model accumulated contention")
	}
}

func TestBusContentionInflatesLatency(t *testing.T) {
	// A tightly constrained bus under heavy miss traffic must raise the
	// latency scale above 1 (and keep it bounded).
	m, err := NewWithOptions(arch.QuadHMP(), Options{BusBandwidthGBps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := m.NewThreadState(memBoundSpec())
	for i := 0; i < 200; i++ {
		if _, err := m.ExecSlice(ts, 0, 2e6); err != nil {
			t.Fatal(err)
		}
	}
	scale := m.MemLatencyScale()
	if scale <= 1.02 {
		t.Fatalf("no contention built up: scale %g", scale)
	}
	if scale > 10.001 {
		t.Fatalf("contention unbounded: scale %g", scale)
	}
}

func TestBusContentionReducesThroughput(t *testing.T) {
	run := func(bandwidth float64) uint64 {
		m, err := NewWithOptions(arch.QuadHMP(), Options{BusBandwidthGBps: bandwidth})
		if err != nil {
			t.Fatal(err)
		}
		// Four memory-bound threads interleaved across all cores,
		// sharing one bus.
		states := make([]*ThreadState, 4)
		for i := range states {
			states[i], _ = m.NewThreadState(memBoundSpec())
		}
		var total uint64
		for round := 0; round < 100; round++ {
			for i, ts := range states {
				res, err := m.ExecSlice(ts, arch.CoreTypeID(i), 2e6)
				if err != nil {
					t.Fatal(err)
				}
				total += res.Instructions
			}
		}
		return total
	}
	free := run(0)     // disabled
	tight := run(0.25) // heavily constrained
	if tight >= free {
		t.Fatalf("contention did not reduce throughput: %d >= %d", tight, free)
	}
	if float64(tight) > 0.9*float64(free) {
		t.Fatalf("contention effect implausibly small: %d vs %d", tight, free)
	}
}

func TestBusContentionDecays(t *testing.T) {
	m, err := NewWithOptions(arch.QuadHMP(), Options{BusBandwidthGBps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := m.NewThreadState(memBoundSpec())
	for i := 0; i < 100; i++ {
		_, _ = m.ExecSlice(ts, 0, 2e6)
	}
	loaded := m.MemLatencyScale()
	// Compute-bound traffic afterwards: contention must decay.
	cs, _ := m.NewThreadState(simpleSpec(1<<40, 0, 0))
	for i := 0; i < 100; i++ {
		_, _ = m.ExecSlice(cs, 0, 2e6)
	}
	cooled := m.MemLatencyScale()
	if cooled >= loaded {
		t.Fatalf("contention did not decay: %g -> %g", loaded, cooled)
	}
}

func TestEvaluateContendedMonotone(t *testing.T) {
	// Exposed via machine for convenience; scale raises memory stalls,
	// so IPC must fall monotonically on memory-bound code.
	spec := memBoundSpec()
	ct := arch.BigCore()
	prev := 10.0
	for _, scale := range []float64{0.5, 1, 2, 4, 8} {
		met := perfmodel.EvaluateContended(&spec.Phases[0], &ct, scale)
		if met.IPC > prev+1e-12 {
			t.Fatalf("IPC not monotone in contention at scale %g", scale)
		}
		prev = met.IPC
	}
}
