package sweep

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Map runs fn(0) .. fn(n-1) on a bounded worker pool and returns the
// results in index order — the order-preserving parallel map the
// experiment harness uses for in-memory fan-out (per-seed replication,
// per-workload figure cells). workers <= 0 selects GOMAXPROCS; workers
// == 1 degenerates to a serial loop on the calling goroutine's pool.
//
// Every index runs even when some fail; the returned error is the
// lowest-indexed one, so error reporting is deterministic regardless of
// goroutine scheduling. A panicking fn is recovered into a *PanicError
// for its index and never takes down the other workers. fn must be safe
// to call concurrently from multiple goroutines.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	errs := make([]error, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for ; w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = callRecovered(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			// Returned as-is: the callback carries its own context, and
			// adding an index prefix here would double-wrap it.
			return out, errs[i]
		}
	}
	return out, nil
}

// callRecovered invokes fn(i), converting a panic into *PanicError.
func callRecovered[T any](fn func(i int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return fn(i)
}
