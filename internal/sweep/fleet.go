package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"smartbalance/internal/fleet"
	"smartbalance/internal/tablefmt"
)

// Fleet sweeps: the inter-node tier's design space — node count x
// dispatch policy x arrival shape x seed — on the same deterministic
// engine, cache, and reporting discipline as the intra-node scenario
// sweeps. The fleet tier steps its own nodes serially inside each job
// (Workers = 1): the sweep engine already parallelises across cells,
// and nesting pools would oversubscribe without changing any result.

// FleetSchemaVersion participates in every fleet-cell fingerprint,
// separately versioned from the scenario schema so either tier can
// evolve without invalidating the other's cache.
const FleetSchemaVersion = "sbfleet-v1"

// FleetScenario is one cell of a fleet sweep.
type FleetScenario struct {
	Nodes      int    `json:"nodes"`
	Profile    string `json:"profile"`
	Balancer   string `json:"balancer"`
	Policy     string `json:"policy"`
	Arrival    string `json:"arrival"`
	Seed       uint64 `json:"seed"`
	DurationNs int64  `json:"duration_ns"`
}

// Key canonically identifies the cell within a sweep.
func (s FleetScenario) Key() string {
	return fmt.Sprintf("fleet/n%d/%s/%s/%s/%s/s%d/d%dms",
		s.Nodes, s.Profile, s.Balancer, s.Policy, s.Arrival, s.Seed, s.DurationNs/1e6)
}

// validate rejects statically malformed cells.
func (s FleetScenario) validate() error {
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("sweep: fleet cell with %d nodes", s.Nodes)
	case s.Profile == "":
		return errors.New("sweep: fleet cell without a profile")
	case s.Balancer == "":
		return errors.New("sweep: fleet cell without a balancer")
	case s.Policy == "":
		return errors.New("sweep: fleet cell without a policy")
	case s.Arrival == "":
		return errors.New("sweep: fleet cell without an arrival spec")
	case s.DurationNs <= 0:
		return fmt.Errorf("sweep: non-positive fleet duration %d", s.DurationNs)
	}
	if _, err := fleet.ParsePolicy(s.Policy); err != nil {
		return err
	}
	return nil
}

// FleetGrid is a fleet sweep specification: the cross product of its
// axes.
type FleetGrid struct {
	Nodes      []int
	Profiles   []string
	Balancers  []string
	Policies   []string
	Arrivals   []string
	Seeds      []uint64
	DurationNs int64
}

// Expand materialises the grid in canonical job order — node-count
// major, then profile, balancer, policy, arrival, seed.
func (g FleetGrid) Expand() ([]FleetScenario, error) {
	if len(g.Nodes) == 0 || len(g.Profiles) == 0 || len(g.Balancers) == 0 ||
		len(g.Policies) == 0 || len(g.Arrivals) == 0 || len(g.Seeds) == 0 {
		return nil, errors.New("sweep: every fleet grid axis needs at least one value")
	}
	var scs []FleetScenario
	for _, n := range g.Nodes {
		for _, prof := range g.Profiles {
			for _, bal := range g.Balancers {
				for _, pol := range g.Policies {
					for _, arr := range g.Arrivals {
						for _, seed := range g.Seeds {
							sc := FleetScenario{
								Nodes:      n,
								Profile:    prof,
								Balancer:   bal,
								Policy:     pol,
								Arrival:    arr,
								Seed:       seed,
								DurationNs: g.DurationNs,
							}
							if err := sc.validate(); err != nil {
								return nil, err
							}
							scs = append(scs, sc)
						}
					}
				}
			}
		}
	}
	return scs, nil
}

// FleetOutcome is one fleet cell's measured result.
type FleetOutcome struct {
	Scenario         FleetScenario `json:"scenario"`
	Requests         int           `json:"requests"`
	Completed        int           `json:"completed"`
	InFlight         int           `json:"in_flight"`
	EnergyJ          float64       `json:"energy_j"`
	JoulesPerRequest float64       `json:"joules_per_request"`
	P50Ms            float64       `json:"p50_ms"`
	P95Ms            float64       `json:"p95_ms"`
	P99Ms            float64       `json:"p99_ms"`
	MaxMs            float64       `json:"max_ms"`
}

// RunFleetScenario executes one fleet cell end to end.
func RunFleetScenario(sc FleetScenario) (*FleetOutcome, error) {
	return RunFleetScenarioWorkers(sc, 1)
}

// RunFleetScenarioWorkers is RunFleetScenario with an explicit
// node-stepping worker count. The fleet's determinism contract says
// the count never changes any output — the adversarial hunt runs the
// same cell under different counts precisely to check that claim, so
// the knob must be reachable from the sweep layer.
func RunFleetScenarioWorkers(sc FleetScenario, workers int) (*FleetOutcome, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	cfg := fleet.DefaultConfig()
	cfg.Nodes = sc.Nodes
	cfg.Profile = sc.Profile
	cfg.Balancer = sc.Balancer
	cfg.Policy = sc.Policy
	cfg.Arrival = sc.Arrival
	cfg.Seed = sc.Seed
	cfg.DurationNs = sc.DurationNs
	cfg.Workers = workers
	f, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := f.Run()
	if err != nil {
		return nil, err
	}
	return &FleetOutcome{
		Scenario:         sc,
		Requests:         res.Requests,
		Completed:        res.Completed,
		InFlight:         res.InFlight,
		EnergyJ:          res.EnergyJ,
		JoulesPerRequest: res.JoulesPerRequest,
		P50Ms:            res.P50Ms,
		P95Ms:            res.P95Ms,
		P99Ms:            res.P99Ms,
		MaxMs:            res.MaxMs,
	}, nil
}

// FleetTasks converts fleet cells into engine tasks, fingerprinted
// under the fleet schema.
func FleetTasks(scs []FleetScenario, salt string) ([]Task, error) {
	version := FleetSchemaVersion
	if salt != "" {
		version += "|" + salt
	}
	tasks := make([]Task, len(scs))
	for i := range scs {
		sc := scs[i]
		fp, err := Fingerprint(version, sc)
		if err != nil {
			return nil, err
		}
		tasks[i] = Task{
			Key:         sc.Key(),
			Fingerprint: fp,
			Run: func() ([]byte, error) {
				out, err := RunFleetScenario(sc)
				if err != nil {
					return nil, err
				}
				return json.Marshal(out)
			},
		}
	}
	return tasks, nil
}

// DecodeFleetOutcome parses a task result payload produced by
// FleetTasks.
func DecodeFleetOutcome(data []byte) (*FleetOutcome, error) {
	var out FleetOutcome
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("sweep: undecodable fleet outcome: %w", err)
	}
	return &out, nil
}

// RenderFleetTable renders fleet results as a text table.
func RenderFleetTable(w io.Writer, results []Result) error {
	tb := tablefmt.New("Fleet sweep",
		"scenario", "req", "done", "J/req", "p50 ms", "p99 ms", "energy J", "status")
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			tb.AddRow(r.Key, "-", "-", "-", "-", "-", "-", "ERROR: "+r.Err.Error())
			continue
		}
		out, err := DecodeFleetOutcome(r.Data)
		if err != nil {
			return fmt.Errorf("sweep: result %q: %w", r.Key, err)
		}
		tb.AddRow(r.Key,
			fmt.Sprintf("%d", out.Requests),
			fmt.Sprintf("%d", out.Completed),
			tablefmt.FormatFloat(out.JoulesPerRequest),
			tablefmt.FormatFloat(out.P50Ms),
			tablefmt.FormatFloat(out.P99Ms),
			tablefmt.FormatFloat(out.EnergyJ),
			"ok")
	}
	return tb.Render(w)
}
