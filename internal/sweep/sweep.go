// Package sweep is the deterministic parallel scenario-sweep engine:
// it expands scenario specifications (platform x balancer x workload x
// seed grids) into independent jobs and executes them on a bounded
// worker pool, with three guarantees the experiment harness depends on:
//
//   - Determinism: results are keyed by their scenario and returned in
//     canonical job order regardless of goroutine scheduling, so a
//     parallel sweep's report is byte-identical to a serial one. Each
//     job derives all randomness from its own seed; the engine itself
//     introduces none.
//   - Caching: jobs carry a content-addressed fingerprint (scenario
//     config + seed + schema version), and an on-disk Cache serves
//     unchanged scenarios without re-running them, so incremental
//     sweeps only execute the delta.
//   - Graceful degradation: a panicking job is recovered into an
//     error-valued result carrying its stack; it never kills the sweep
//     or the other workers.
//
// Wall-clock time never enters the engine directly (the sbvet wallclock
// invariant): per-job timing flows through an injected core.Clock
// factory, frozen by default so library users and tests stay
// bit-reproducible. Binaries inject core.RealClock at the boundary.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"smartbalance/internal/core"
	"smartbalance/internal/telemetry"
)

// Task is one independent unit of a sweep.
type Task struct {
	// Key canonically identifies the task within its sweep; Execute
	// rejects duplicate or empty keys. It names the task in progress
	// updates and reports.
	Key string
	// Fingerprint is the task's content address for caching: a
	// canonical encoding of everything the result depends on (scenario
	// config, seed, schema version). Empty disables caching for this
	// task.
	Fingerprint []byte
	// Run produces the task's serialized result. It must be a pure
	// function of the task's own inputs: tasks run concurrently, so
	// shared state would race and break result determinism.
	Run func() ([]byte, error)
}

// Status is a task's lifecycle state, as seen by progress hooks.
type Status int

// Task lifecycle states.
const (
	StatusQueued Status = iota
	StatusRunning
	StatusDone
	StatusCached
	StatusFailed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusCached:
		return "cached"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Progress is one live status update. Updates are delivered serially
// (the engine holds a lock around the callback), but their order across
// tasks follows goroutine scheduling — consumers must not derive
// results from it. Results come from Execute's return value, which is
// canonically ordered.
type Progress struct {
	// Index is the task's position in canonical job order.
	Index int
	// Total is the sweep's job count.
	Total int
	// Key is the task's identity.
	Key string
	// Status is the task's new state.
	Status Status
	// WallNs is the task's wall time on its worker's clock; set on
	// Done/Failed updates.
	WallNs int64
	// Err is the task's error; set on Failed updates.
	Err error
}

// Options configures Execute.
type Options struct {
	// Workers bounds the pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Cache, when non-nil, serves and stores fingerprinted task
	// results.
	Cache *Cache
	// NewClock supplies one Clock per worker for per-task wall timing
	// (clocks need not be safe for concurrent use). Nil freezes timing
	// at zero, keeping library runs a pure function of their inputs;
	// binaries pass core.RealClock here.
	NewClock func() core.Clock
	// OnProgress, when non-nil, receives live status updates.
	OnProgress func(Progress)
	// Telemetry, when non-nil, receives the sweep's engine telemetry:
	// per-job records (one epoch per canonical job index, holding a
	// "job" span with the job's key and status) and job/cache counters.
	// Each worker records into a private collector — collectors are not
	// safe for concurrent use — and Execute merges them; because every
	// job occupies its own epoch number, the merged trace is identical
	// for any worker count and schedule. Job wall time is deliberately
	// excluded: it would break that equivalence.
	Telemetry *telemetry.Collector
}

// Result is one task's outcome. Execute returns results in canonical
// job order: Result[i] always belongs to tasks[i].
type Result struct {
	// Index is the task's position in canonical job order.
	Index int
	// Key is the task's identity.
	Key string
	// Data is the serialized result payload (nil on failure).
	Data []byte
	// Err is the task's failure, if any; a recovered panic surfaces as
	// a *PanicError.
	Err error
	// Cached reports whether Data came from the cache instead of a run.
	Cached bool
	// WallNs is the task's wall time on the worker's injected clock
	// (zero for cached results and under the default frozen clock).
	WallNs int64
}

// PanicError is a task panic recovered by the engine.
type PanicError struct {
	// Value is the panic value, stringified.
	Value string
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error renders the panic without the stack (stacks carry addresses and
// so are not stable across runs; report them separately).
func (e *PanicError) Error() string { return "panic: " + e.Value }

// Workers resolves a worker-count setting: values <= 0 select
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Execute runs every task on a bounded worker pool and returns their
// results in canonical job order. The returned error reports only
// malformed input (empty/duplicate keys, nil Run); per-task failures —
// including recovered panics — live in the results, so one bad
// scenario never kills the sweep. FirstError collapses them when the
// caller wants fail-fast semantics.
func Execute(tasks []Task, opts Options) ([]Result, error) {
	seen := make(map[string]int, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		if t.Key == "" {
			return nil, fmt.Errorf("sweep: task %d has an empty key", i)
		}
		if j, dup := seen[t.Key]; dup {
			return nil, fmt.Errorf("sweep: duplicate task key %q (tasks %d and %d)", t.Key, j, i)
		}
		seen[t.Key] = i
		if t.Run == nil {
			return nil, fmt.Errorf("sweep: task %q has no Run function", t.Key)
		}
	}

	results := make([]Result, len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}

	var progressMu sync.Mutex
	emit := func(p Progress) {
		if opts.OnProgress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		opts.OnProgress(p)
	}

	workers := Workers(opts.Workers)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	workerTel := make([]*telemetry.Collector, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		if opts.Telemetry.Enabled() {
			workerTel[w] = telemetry.New(telemetry.Config{})
		}
		go func(w int) {
			defer wg.Done()
			var clk core.Clock
			if opts.NewClock != nil {
				clk = opts.NewClock()
			} else {
				clk = core.NewFakeClock(0)
			}
			for i := range idx {
				results[i] = runOne(i, len(tasks), &tasks[i], opts.Cache, clk, workerTel[w], emit)
			}
		}(w)
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, wt := range workerTel {
		opts.Telemetry.Merge(wt)
	}
	return results, nil
}

// runOne executes (or cache-serves) a single task on a worker,
// recording its outcome into the worker's telemetry collector under
// epoch i+1 (timestamps are the canonical job index — the sweep has no
// simulated clock of its own, and wall time would make parallel and
// serial traces diverge).
func runOne(i, total int, t *Task, cache *Cache, clk core.Clock, tel *telemetry.Collector, emit func(Progress)) Result {
	emit(Progress{Index: i, Total: total, Key: t.Key, Status: StatusRunning})
	record := func(status Status) {
		if !tel.Enabled() {
			return
		}
		at := int64(i + 1)
		tel.BeginEpoch(i+1, at)
		tel.Span("job", at, 0,
			telemetry.Str("key", t.Key),
			telemetry.Str("status", status.String()))
		tel.Counter("sweep_jobs_total").Inc()
		switch status {
		case StatusCached:
			tel.Counter("sweep_jobs_cached_total").Inc()
		case StatusFailed:
			tel.Counter("sweep_jobs_failed_total").Inc()
		default:
			tel.Counter("sweep_jobs_executed_total").Inc()
		}
	}
	res := Result{Index: i, Key: t.Key}
	if cache != nil && len(t.Fingerprint) > 0 {
		if data, ok := cache.Get(t.Fingerprint); ok {
			res.Data = data
			res.Cached = true
			record(StatusCached)
			emit(Progress{Index: i, Total: total, Key: t.Key, Status: StatusCached})
			return res
		}
	}
	t0 := clk.Now()
	data, err := runRecovered(t)
	res.WallNs = clk.Now().Sub(t0).Nanoseconds()
	res.Data, res.Err = data, err
	if err != nil {
		record(StatusFailed)
		emit(Progress{Index: i, Total: total, Key: t.Key, Status: StatusFailed, WallNs: res.WallNs, Err: err})
		return res
	}
	if cache != nil && len(t.Fingerprint) > 0 {
		// Write failures degrade to an uncached (but correct) sweep;
		// they are surfaced through CacheStats, not as task errors.
		cache.Put(t.Fingerprint, data)
	}
	record(StatusDone)
	emit(Progress{Index: i, Total: total, Key: t.Key, Status: StatusDone, WallNs: res.WallNs})
	return res
}

// runRecovered invokes the task, converting a panic into *PanicError.
func runRecovered(t *Task) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return t.Run()
}

// FirstError returns the error of the lowest-indexed failed result —
// deterministic regardless of which worker failed first — or nil when
// every task succeeded.
func FirstError(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("sweep: task %q: %w", results[i].Key, results[i].Err)
		}
	}
	return nil
}
