package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"smartbalance/internal/telemetry"
)

// synthTasks builds n synthetic jobs whose payloads are valid Outcome
// encodings — heavy scenario runs are not needed to exercise the
// engine's telemetry path.
func synthTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func() ([]byte, error) {
				if i%5 == 4 {
					return nil, errors.New("synthetic failure")
				}
				return json.Marshal(Outcome{EnergyEff: 1e9 * float64(i+1)})
			},
		}
	}
	return tasks
}

// sweepTrace runs the synthetic sweep with the given worker count and
// returns the merged telemetry's canonical JSONL bytes.
func sweepTrace(t *testing.T, workers int) []byte {
	t.Helper()
	tel := telemetry.New(telemetry.Config{})
	results, err := Execute(synthTasks(12), Options{Workers: workers, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	RecordTelemetry(tel, results, nil)
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, tel.Trace()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepTelemetryParallelEqualsSerial is the telemetry-equivalence
// guarantee: the merged trace of a parallel sweep is byte-identical to
// a serial one, for several worker counts.
func TestSweepTelemetryParallelEqualsSerial(t *testing.T) {
	serial := sweepTrace(t, 1)
	for _, workers := range []int{2, 4, 8} {
		if par := sweepTrace(t, workers); !bytes.Equal(serial, par) {
			a, _ := telemetry.ReadJSONL(bytes.NewReader(serial))
			b, _ := telemetry.ReadJSONL(bytes.NewReader(par))
			t.Fatalf("workers=%d trace differs from serial: %v", workers, telemetry.FirstDivergence(a, b))
		}
	}
}

func TestSweepTelemetryJobAccounting(t *testing.T) {
	tel := telemetry.New(telemetry.Config{})
	results, err := Execute(synthTasks(12), Options{Workers: 4, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	RecordTelemetry(tel, results, nil)
	if got := tel.Counter("sweep_jobs_total").Value(); got != 12 {
		t.Fatalf("sweep_jobs_total = %d, want 12", got)
	}
	if got := tel.Counter("sweep_jobs_failed_total").Value(); got != 2 {
		t.Fatalf("sweep_jobs_failed_total = %d, want 2 (indices 4 and 9)", got)
	}
	if got := tel.Counter("sweep_jobs_executed_total").Value(); got != 10 {
		t.Fatalf("sweep_jobs_executed_total = %d, want 10", got)
	}
	tr := tel.Trace()
	if len(tr.Epochs) != 12 {
		t.Fatalf("epochs = %d, want one per job", len(tr.Epochs))
	}
	for i, e := range tr.Epochs {
		if e.Epoch != i+1 || len(e.Spans) != 1 || e.Spans[0].Phase != "job" {
			t.Fatalf("epoch[%d] = %+v, want epoch %d with one job span", i, e, i+1)
		}
	}
	// The EE histogram saw every successful outcome.
	want := "sweep_scenario_ee"
	for _, m := range tr.Metrics {
		if m.Key == want {
			if m.Count != 10 {
				t.Fatalf("%s count = %d, want 10", want, m.Count)
			}
			return
		}
	}
	t.Fatalf("metric %s missing", want)
}

func TestSweepTelemetryCacheCounters(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mkTasks := func() []Task {
		tasks := make([]Task, 6)
		for i := 0; i < 6; i++ {
			i := i
			tasks[i] = Task{
				Key:         fmt.Sprintf("job-%d", i),
				Fingerprint: []byte(fmt.Sprintf("fp-%d", i)),
				Run:         func() ([]byte, error) { return json.Marshal(Outcome{EnergyEff: 2e9}) },
			}
		}
		return tasks
	}
	cold := telemetry.New(telemetry.Config{})
	results, err := Execute(mkTasks(), Options{Workers: 3, Cache: cache, Telemetry: cold})
	if err != nil {
		t.Fatal(err)
	}
	RecordTelemetry(cold, results, cache)
	if got := cold.Counter("sweep_cache_misses_total").Value(); got != 6 {
		t.Fatalf("cold misses = %d, want 6", got)
	}
	if got := cold.Counter("sweep_jobs_cached_total").Value(); got != 0 {
		t.Fatalf("cold cached jobs = %d, want 0", got)
	}

	// Warm run with a fresh cache handle: zero misses, all jobs cached —
	// the property scripts/sweep_check.sh asserts from the Prometheus
	// export.
	warmCache, err := OpenCache(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	warm := telemetry.New(telemetry.Config{})
	results, err = Execute(mkTasks(), Options{Workers: 3, Cache: warmCache, Telemetry: warm})
	if err != nil {
		t.Fatal(err)
	}
	RecordTelemetry(warm, results, warmCache)
	if got := warm.Counter("sweep_cache_misses_total").Value(); got != 0 {
		t.Fatalf("warm misses = %d, want 0", got)
	}
	if got := warm.Counter("sweep_cache_hits_total").Value(); got != 6 {
		t.Fatalf("warm hits = %d, want 6", got)
	}
	if got := warm.Counter("sweep_jobs_cached_total").Value(); got != 6 {
		t.Fatalf("warm cached jobs = %d, want 6", got)
	}
}

// TestSweepTelemetryDisabledIsFree pins the no-telemetry path: Execute
// with a nil collector must not panic and must not allocate collectors.
func TestSweepTelemetryDisabledIsFree(t *testing.T) {
	results, err := Execute(synthTasks(5), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	RecordTelemetry(nil, results, nil)
	if FirstError(results) == nil {
		t.Fatal("synthetic failure lost")
	}
}
