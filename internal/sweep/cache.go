package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed on-disk result store. Entries are
// keyed by the SHA-256 of a task's fingerprint — the canonical encoding
// of everything the result depends on — so a hit is only possible when
// the scenario, its seed, and the schema version all match, and cache
// invalidation is automatic: change any input and the address changes.
//
// Layout: <dir>/<hh>/<rest-of-hash>.json, where hh is the first hex
// byte of the hash (a fan-out directory, keeping listings short).
// Payloads are JSON documents (every producer in this repository
// serializes results as JSON), which gives Get a content check: reads
// of missing, unreadable, or non-JSON entries are misses, never errors,
// and a present-but-unusable entry is evicted on detection so it
// misses exactly once. Writes are atomic (temp file + rename) so a
// crashed sweep cannot leave a torn entry behind. Failed writes degrade
// the sweep to uncached and are counted in Stats. All methods are safe
// for concurrent use.
type Cache struct {
	dir string

	// remove evicts a corrupt entry; os.RemoveAll outside tests. Tests
	// inject failures here because the usual trick — a read-only parent
	// directory — does not fail under root, and CI runs as root.
	remove func(path string) error

	mu        sync.Mutex
	hits      int
	misses    int
	writes    int
	writeErrs int
	corrupt   int
	// stuck marks entries detected corrupt whose eviction failed, so a
	// re-detection on the next Get is not double-counted in corrupt.
	// A successful eviction or Put clears the mark.
	stuck map[string]bool
}

// CacheStats is a point-in-time snapshot of cache traffic.
type CacheStats struct {
	// Hits counts Get calls served from disk.
	Hits int
	// Misses counts Get calls that found no usable entry.
	Misses int
	// Writes counts entries successfully stored.
	Writes int
	// WriteErrs counts failed stores (the sweep still completed, just
	// uncached).
	WriteErrs int
	// Corrupt counts distinct corrupt-entry detections: entries found
	// present but unusable (unreadable or not valid JSON). Detection
	// evicts the entry; if the eviction itself fails (read-only cache
	// dir), every later Get of the slot is still a miss but not another
	// corrupt detection until the slot changes.
	Corrupt int
}

// OpenCache opens (creating if needed) a result cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir, remove: os.RemoveAll, stuck: map[string]bool{}}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Fingerprint builds a task's content address: the canonical JSON of
// cfg, prefixed by a version tag that participates in the hash.
// encoding/json renders struct fields in declaration order and map
// keys sorted, so equal configurations always produce equal
// fingerprints. Bump the version tag whenever result semantics change
// and every stale entry silently becomes a miss.
func Fingerprint(version string, cfg any) ([]byte, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	fp := make([]byte, 0, len(version)+1+len(b))
	fp = append(fp, version...)
	fp = append(fp, 0)
	return append(fp, b...), nil
}

// path maps a fingerprint to its entry's location.
func (c *Cache) path(fp []byte) string {
	sum := sha256.Sum256(fp)
	h := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, h[:2], h[2:]+".json")
}

// Get returns the stored payload for fp. Any read problem — absent
// entry, permission error, torn file, non-JSON content — is reported as
// a miss, never an error. A present-but-unusable entry is additionally
// evicted (best-effort) and counted in Stats.Corrupt, so it costs
// exactly one miss instead of one per future Get.
func (c *Cache) Get(fp []byte) ([]byte, bool) {
	path := c.path(fp)
	data, err := os.ReadFile(path)
	corrupt := false
	if err == nil && !json.Valid(data) {
		err = errors.New("sweep: cache entry is not valid JSON")
		data = nil
	}
	evicted := false
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		// Something is there but unusable: evict it so the slot heals
		// on the next Put. RemoveAll covers the pathological
		// directory-where-a-file-belongs case.
		corrupt = true
		evicted = c.remove(path) == nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.misses++
		if corrupt {
			// Count each distinct detection once. When the eviction
			// fails the entry stays on disk, and without the stuck mark
			// every subsequent Get would re-detect and re-count it.
			if !c.stuck[path] {
				c.corrupt++
			}
			if evicted {
				delete(c.stuck, path)
			} else {
				c.stuck[path] = true
			}
		}
		return nil, false
	}
	c.hits++
	return data, true
}

// Put stores the payload for fp atomically. The payload is expected to
// be a JSON document (Get treats anything else as corrupt). On failure
// the entry is simply absent (a future miss) and the failure is counted
// in Stats.
func (c *Cache) Put(fp, data []byte) {
	path := c.path(fp)
	err := c.write(path, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.writeErrs++
		return
	}
	// The slot holds fresh bytes now; a corrupt re-detection here would
	// be a new corruption, not the stuck one.
	delete(c.stuck, path)
	c.writes++
}

// write lands data at path via a same-directory temp file and rename.
func (c *Cache) write(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Stats snapshots the cache's traffic counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Writes: c.writes, WriteErrs: c.writeErrs, Corrupt: c.corrupt}
}
