package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"smartbalance/internal/core"
)

// mkTasks builds n uncached tasks whose payloads identify their index.
func mkTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task{
			Key: fmt.Sprintf("job-%03d", i),
			Run: func() ([]byte, error) {
				return []byte(fmt.Sprintf(`{"i":%d}`, i)), nil
			},
		}
	}
	return tasks
}

func TestExecuteCanonicalOrder(t *testing.T) {
	tasks := mkTasks(37)
	serial, err := Execute(tasks, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Execute(tasks, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 37 || len(parallel) != 37 {
		t.Fatalf("result counts: %d serial, %d parallel", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Key != tasks[i].Key || parallel[i].Key != tasks[i].Key {
			t.Fatalf("result %d out of canonical order: %q / %q", i, serial[i].Key, parallel[i].Key)
		}
		if !bytes.Equal(serial[i].Data, parallel[i].Data) {
			t.Fatalf("result %d differs between serial and parallel", i)
		}
	}
}

func TestExecuteRejectsMalformedInput(t *testing.T) {
	run := func() ([]byte, error) { return nil, nil }
	cases := [][]Task{
		{{Key: "", Run: run}},
		{{Key: "a", Run: run}, {Key: "a", Run: run}},
		{{Key: "a"}},
	}
	for i, tasks := range cases {
		if _, err := Execute(tasks, Options{Workers: 2}); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestExecutePanicRecovery(t *testing.T) {
	tasks := mkTasks(5)
	tasks[2].Run = func() ([]byte, error) { panic("boom at job 2") }
	results, err := Execute(tasks, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(results[2].Err, &pe) {
		t.Fatalf("job 2: want PanicError, got %v", results[2].Err)
	}
	if !strings.Contains(pe.Value, "boom at job 2") || pe.Stack == "" {
		t.Fatalf("panic not captured: value %q, stack %d bytes", pe.Value, len(pe.Stack))
	}
	for _, i := range []int{0, 1, 3, 4} {
		if results[i].Err != nil || results[i].Data == nil {
			t.Fatalf("job %d did not survive its neighbour's panic: %+v", i, results[i])
		}
	}
	if err := FirstError(results); err == nil || !strings.Contains(err.Error(), "job-002") {
		t.Fatalf("FirstError = %v, want job-002's panic", err)
	}
}

func TestExecuteProgressAndTiming(t *testing.T) {
	tasks := mkTasks(4)
	var mu sync.Mutex
	counts := map[Status]int{}
	results, err := Execute(tasks, Options{
		Workers:  2,
		NewClock: func() core.Clock { return core.NewFakeClock(time.Millisecond) },
		OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			counts[p.Status]++
			if p.Total != 4 || p.Key == "" {
				t.Errorf("bad progress update: %+v", p)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[StatusRunning] != 4 || counts[StatusDone] != 4 || counts[StatusFailed] != 0 {
		t.Fatalf("progress counts: %v", counts)
	}
	for i := range results {
		// One fake-clock step per task: start and stop readings 1ms apart.
		if results[i].WallNs != time.Millisecond.Nanoseconds() {
			t.Fatalf("job %d wall %dns, want 1ms (fake clock)", i, results[i].WallNs)
		}
	}
}

func TestExecuteDefaultClockIsFrozen(t *testing.T) {
	results, err := Execute(mkTasks(3), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].WallNs != 0 {
			t.Fatalf("job %d wall %dns under frozen default clock", i, results[i].WallNs)
		}
	}
}

func TestExecuteEmpty(t *testing.T) {
	results, err := Execute(nil, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty sweep: %v, %d results", err, len(results))
	}
}

func TestMapOrderAndErrorDeterminism(t *testing.T) {
	out, err := Map(8, 64, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Two failures: the lowest-indexed error must win regardless of
	// scheduling.
	_, err = Map(8, 16, func(i int) (int, error) {
		if i == 11 || i == 3 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail-3" {
		t.Fatalf("Map error = %v, want fail-3", err)
	}
	// A panic is an error for its index, not a process abort.
	_, err = Map(4, 8, func(i int) (int, error) {
		if i == 5 {
			panic("map boom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || !strings.Contains(pe.Value, "map boom") {
		t.Fatalf("Map panic error = %v", err)
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("zero items: %v, %d", err, len(out))
	}
}
