package sweep

import (
	"smartbalance/internal/telemetry"
)

// eeBuckets are the fixed upper bounds of the sweep-level
// energy-efficiency histogram (instructions per joule), matching the
// controller's per-epoch distribution so the two are comparable.
var eeBuckets = []float64{1e8, 3e8, 1e9, 3e9, 1e10, 3e10, 1e11}

// RecordTelemetry folds a finished sweep's outcome-level telemetry
// into c: the cache's traffic statistics as counters (explicit zeros
// when cache is nil, so "no misses" is assertable either way) and each
// decodable scenario outcome's energy efficiency into a histogram,
// walking results in canonical job order so the export is identical
// for any worker count. Call it once, after Execute returns.
func RecordTelemetry(c *telemetry.Collector, results []Result, cache *Cache) {
	if !c.Enabled() {
		return
	}
	var st CacheStats
	if cache != nil {
		st = cache.Stats()
	}
	c.Counter("sweep_cache_hits_total").Add(int64(st.Hits))
	c.Counter("sweep_cache_misses_total").Add(int64(st.Misses))
	c.Counter("sweep_cache_writes_total").Add(int64(st.Writes))
	c.Counter("sweep_cache_write_errors_total").Add(int64(st.WriteErrs))
	c.Counter("sweep_cache_corrupt_total").Add(int64(st.Corrupt))

	h := c.Histogram("sweep_scenario_ee", eeBuckets)
	for i := range results {
		if results[i].Err != nil || results[i].Data == nil {
			continue
		}
		out, err := DecodeOutcome(results[i].Data)
		if err != nil {
			continue
		}
		h.Observe(out.EnergyEff)
	}
}
