package sweep

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func testFleetGrid() FleetGrid {
	return FleetGrid{
		Nodes:      []int{2},
		Profiles:   []string{"quad,biglittle"},
		Balancers:  []string{"vanilla"},
		Policies:   []string{"rr", "energy"},
		Arrivals:   []string{"uniform:rate=200"},
		Seeds:      []uint64{1, 2},
		DurationNs: 100e6,
	}
}

func TestFleetGridExpandCanonicalOrder(t *testing.T) {
	scs, err := testFleetGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(scs))
	}
	want := []string{
		"fleet/n2/quad,biglittle/vanilla/rr/uniform:rate=200/s1/d100ms",
		"fleet/n2/quad,biglittle/vanilla/rr/uniform:rate=200/s2/d100ms",
		"fleet/n2/quad,biglittle/vanilla/energy/uniform:rate=200/s1/d100ms",
		"fleet/n2/quad,biglittle/vanilla/energy/uniform:rate=200/s2/d100ms",
	}
	for i, sc := range scs {
		if sc.Key() != want[i] {
			t.Errorf("cell %d key = %q, want %q", i, sc.Key(), want[i])
		}
	}
}

func TestFleetGridRejectsMalformedCells(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FleetGrid)
	}{
		{"empty axis", func(g *FleetGrid) { g.Policies = nil }},
		{"zero nodes", func(g *FleetGrid) { g.Nodes = []int{0} }},
		{"bad policy", func(g *FleetGrid) { g.Policies = []string{"random"} }},
		{"zero duration", func(g *FleetGrid) { g.DurationNs = 0 }},
	}
	for _, tc := range cases {
		g := testFleetGrid()
		tc.mut(&g)
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: grid expanded, want error", tc.name)
		}
	}
}

func TestFleetTasksDeterministicAcrossWorkers(t *testing.T) {
	scs, err := testFleetGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		tasks, err := FleetTasks(scs, "")
		if err != nil {
			t.Fatal(err)
		}
		results, err := Execute(tasks, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := FirstError(results); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	if parallel := render(4); parallel != serial {
		t.Error("fleet sweep JSONL differs between 1 and 4 workers")
	}
	if !strings.Contains(serial, `"joules_per_request"`) {
		t.Errorf("fleet outcome missing joules_per_request:\n%s", serial)
	}
}

func TestFleetOutcomeRoundTrip(t *testing.T) {
	scs, err := testFleetGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunFleetScenario(scs[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed == 0 || out.EnergyJ <= 0 {
		t.Fatalf("implausible outcome: %+v", out)
	}
	tasks, err := FleetTasks(scs[:1], "")
	if err != nil {
		t.Fatal(err)
	}
	data, err := tasks[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFleetOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *out {
		t.Errorf("decoded outcome %+v != direct run %+v", got, out)
	}
}

func TestRenderFleetTableCarriesErrors(t *testing.T) {
	results := []Result{{Key: "fleet/broken", Err: errors.New("boom")}}
	var buf bytes.Buffer
	if err := RenderFleetTable(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ERROR: boom") {
		t.Errorf("table missing error row:\n%s", buf.String())
	}
}
