package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFingerprintDeterminism(t *testing.T) {
	sc := Scenario{Platform: "quad", Balancer: "vanilla", Workload: "Mix1",
		Threads: 2, Seed: 7, DurationNs: 100e6}
	a, err := Fingerprint(SchemaVersion, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(SchemaVersion, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal configs produced different fingerprints")
	}
	// Any input change must change the address: config, seed, version.
	for name, fp := range map[string]func() ([]byte, error){
		"seed":     func() ([]byte, error) { s := sc; s.Seed = 8; return Fingerprint(SchemaVersion, s) },
		"config":   func() ([]byte, error) { s := sc; s.Threads = 4; return Fingerprint(SchemaVersion, s) },
		"version":  func() ([]byte, error) { return Fingerprint(SchemaVersion+"x", sc) },
		"workload": func() ([]byte, error) { s := sc; s.Workload = "Mix2"; return Fingerprint(SchemaVersion, s) },
	} {
		c, err := fp()
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a, c) {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := []byte("fingerprint-1")
	if _, ok := c.Get(fp); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(fp, []byte(`"payload"`))
	data, ok := c.Get(fp)
	if !ok || string(data) != `"payload"` {
		t.Fatalf("round trip: %q, %v", data, ok)
	}
	if _, ok := c.Get([]byte("fingerprint-2")); ok {
		t.Fatal("hit for a different fingerprint")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Writes != 1 || st.WriteErrs != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenCache(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestExecuteCacheHitsAndByteIdenticalRerun(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs int
	tasks := make([]Task, 6)
	for i := range tasks {
		i := i
		fp, err := Fingerprint("v1", map[string]int{"job": i})
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = Task{
			Key:         fmt.Sprintf("job-%d", i),
			Fingerprint: fp,
			Run: func() ([]byte, error) {
				runs++ // cold sweep runs serially below, so unsynchronised is fine
				return []byte(fmt.Sprintf(`{"job":%d}`, i)), nil
			},
		}
	}
	cold, err := Execute(tasks, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 6 {
		t.Fatalf("cold sweep ran %d tasks", runs)
	}
	warmCache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Execute(tasks, Options{Workers: 4, Cache: warmCache})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 6 {
		t.Fatalf("warm sweep re-ran tasks: %d total runs", runs)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("job %d not served from cache", i)
		}
		if !bytes.Equal(warm[i].Data, cold[i].Data) {
			t.Fatalf("job %d cached payload differs", i)
		}
	}
	if st := warmCache.Stats(); st.Hits != 6 {
		t.Fatalf("warm stats: %+v", st)
	}
	// Canonical reports of cold and warm sweeps must be byte-identical:
	// caching is invisible in canonical output. (JSONL is the generic
	// form; RenderTable needs Outcome payloads.)
	var coldJSON, warmJSON bytes.Buffer
	if err := WriteJSONL(&coldJSON, cold); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&warmJSON, warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON.Bytes(), warmJSON.Bytes()) {
		t.Fatal("cached rerun changed the canonical JSONL report")
	}
}

func TestExecuteFailuresAreNotCached(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Fingerprint("v1", "flaky")
	if err != nil {
		t.Fatal(err)
	}
	attempt := 0
	task := Task{Key: "flaky", Fingerprint: fp, Run: func() ([]byte, error) {
		attempt++
		if attempt == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return []byte(`{"ok":true}`), nil
	}}
	first, err := Execute([]Task{task}, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Err == nil {
		t.Fatal("first attempt should fail")
	}
	second, err := Execute([]Task{task}, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Err != nil || second[0].Cached {
		t.Fatalf("second attempt: %+v (failures must not be cached)", second[0])
	}
	third, err := Execute([]Task{task}, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !third[0].Cached {
		t.Fatal("success was not cached")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := []byte("fp")
	p := cache.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	// An unreadable entry (here: a directory where a file belongs) must
	// degrade to a miss, never an error.
	if err := os.Mkdir(p, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("unreadable entry served as a hit")
	}
}

func TestCacheCorruptEntryMissesExactlyOnce(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := []byte("fp-corrupt")
	p := cache.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	// A torn/garbage entry: present on disk but not valid JSON.
	if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not evicted: stat err %v", err)
	}
	// Second Get: the entry is gone, so this is an ordinary (absent)
	// miss, not a corrupt one.
	if _, ok := cache.Get(fp); ok {
		t.Fatal("hit after eviction")
	}
	st := cache.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("want exactly 1 corrupt detection, got %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("want 2 misses, got %+v", st)
	}
	// The slot heals: a Put after eviction serves hits again.
	cache.Put(fp, []byte(`{"ok":true}`))
	if data, ok := cache.Get(fp); !ok || string(data) != `{"ok":true}` {
		t.Fatalf("healed slot: %q, %v", data, ok)
	}
	if st := cache.Stats(); st.Corrupt != 1 {
		t.Fatalf("healed hit recounted as corrupt: %+v", st)
	}
}

func TestCacheDirectoryEntryEvicted(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := []byte("fp-dir")
	p := cache.path(fp)
	if err := os.MkdirAll(p, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("directory entry served as a hit")
	}
	if st := cache.Stats(); st.Corrupt != 1 {
		t.Fatalf("directory entry not counted corrupt: %+v", st)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("directory entry not evicted: stat err %v", err)
	}
}

// TestCacheCorruptEvictionFailureNotDoubleCounted is the regression
// test for the read-only-cache-dir accounting bug: when the eviction
// unlink fails, the corrupt entry stays on disk and every Get
// re-detects it — the old code counted a fresh Corrupt each time, so
// Stats.Corrupt grew without bound while only one entry was ever bad.
// The eviction failure is injected through the cache's remove hook
// because a read-only parent directory does not stop root, and CI runs
// as root.
func TestCacheCorruptEvictionFailureNotDoubleCounted(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	removeCalls := 0
	cache.remove = func(string) error {
		removeCalls++
		return errors.New("unlink denied")
	}
	fp := []byte("fp-stuck")
	p := cache.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if _, ok := cache.Get(fp); ok {
			t.Fatalf("Get %d: corrupt entry served as a hit", i)
		}
	}
	if removeCalls != 3 {
		t.Fatalf("eviction attempted %d times, want 3 (every detection retries)", removeCalls)
	}
	st := cache.Stats()
	if st.Misses != 3 {
		t.Fatalf("want 3 misses, got %+v", st)
	}
	if st.Corrupt != 1 {
		t.Fatalf("stuck corrupt entry double-counted: want Corrupt=1, got %+v", st)
	}

	// Put overwrites the stuck slot atomically (rename does not need
	// the unlink that was denied); the fresh bytes clear the stuck mark
	// and serve hits again.
	cache.Put(fp, []byte(`{"ok":1}`))
	if data, ok := cache.Get(fp); !ok || string(data) != `{"ok":1}` {
		t.Fatalf("healed slot: %q, %v", data, ok)
	}
	if st := cache.Stats(); st.Corrupt != 1 || st.Hits != 1 {
		t.Fatalf("after heal: %+v", st)
	}

	// A *new* corruption of the healed slot is a new detection.
	if err := os.WriteFile(p, []byte("{torn again"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("re-corrupted entry served as a hit")
	}
	if st := cache.Stats(); st.Corrupt != 2 {
		t.Fatalf("fresh corruption not counted: %+v", st)
	}
}

// TestCacheEvictionRecoveryClearsStuckMark: when a later eviction of a
// stuck entry succeeds (the transient unlink failure cleared), the slot
// returns to the ordinary lifecycle — and the *next* corruption of the
// same slot counts again.
func TestCacheEvictionRecoveryClearsStuckMark(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fail := true
	cache.remove = func(path string) error {
		if fail {
			return errors.New("unlink denied")
		}
		return os.RemoveAll(path)
	}
	fp := []byte("fp-transient")
	p := cache.path(fp)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	write := func() {
		t.Helper()
		if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write()
	cache.Get(fp) // detected, eviction fails -> stuck
	fail = false
	cache.Get(fp) // re-detected (not recounted), eviction succeeds
	if st := cache.Stats(); st.Corrupt != 1 || st.Misses != 2 {
		t.Fatalf("transient failure: %+v", st)
	}
	write()
	cache.Get(fp) // fresh corruption after recovery: counts again
	if st := cache.Stats(); st.Corrupt != 2 || st.Misses != 3 {
		t.Fatalf("post-recovery corruption: %+v", st)
	}
}
