package sweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func quickGrid() Grid {
	return Grid{
		Platforms:  []string{"quad"},
		Balancers:  []string{"vanilla", "pinned"},
		Workloads:  []string{"swaptions", "imb:HM"},
		Threads:    []int{2},
		Seeds:      []uint64{1, 2},
		DurationNs: 40e6,
	}
}

func TestGridExpandCanonicalOrder(t *testing.T) {
	scs, err := quickGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1*2*2*1*2 {
		t.Fatalf("expanded %d scenarios", len(scs))
	}
	// Platform-major, then balancer, workload, threads, seed; keys
	// unique.
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Key()] {
			t.Fatalf("duplicate key %s", sc.Key())
		}
		seen[sc.Key()] = true
	}
	if scs[0].Key() != "quad/vanilla/swaptions/t2/s1/d40ms" {
		t.Fatalf("first key %s", scs[0].Key())
	}
	if scs[1].Seed != 2 || scs[2].Workload != "imb:HM" {
		t.Fatalf("canonical order violated: %+v %+v", scs[1], scs[2])
	}
}

func TestGridExpandRejectsEmptyAxes(t *testing.T) {
	g := quickGrid()
	g.Seeds = nil
	if _, err := g.Expand(); err == nil {
		t.Fatal("empty seed axis accepted")
	}
	g = quickGrid()
	g.DurationNs = 0
	if _, err := g.Expand(); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestRunScenarioVanilla(t *testing.T) {
	out, err := RunScenario(Scenario{
		Platform: "quad", Balancer: "vanilla", Workload: "Mix1",
		Threads: 2, Seed: 1, DurationNs: 60e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.EnergyEff <= 0 || out.Instructions == 0 || out.PowerW <= 0 {
		t.Fatalf("degenerate outcome: %+v", out)
	}
}

func TestRunScenarioBadNames(t *testing.T) {
	base := Scenario{Platform: "quad", Balancer: "vanilla", Workload: "Mix1",
		Threads: 2, Seed: 1, DurationNs: 10e6}
	bad := []Scenario{}
	s := base
	s.Platform = "mega"
	bad = append(bad, s)
	s = base
	s.Workload = "nope"
	bad = append(bad, s)
	s = base
	s.Balancer = "nope"
	bad = append(bad, s)
	s = base
	s.Balancer = "gts" // GTS needs a two-type platform; quad has four
	bad = append(bad, s)
	for i, sc := range bad {
		if _, err := RunScenario(sc); err == nil {
			t.Errorf("case %d: bad scenario accepted: %+v", i, sc)
		}
	}
}

// TestScenarioSweepSerialParallelByteIdentical is the engine's core
// contract on real scenarios: expanding a grid and running it with one
// worker or many produces byte-identical canonical reports.
func TestScenarioSweepSerialParallelByteIdentical(t *testing.T) {
	scs, err := quickGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := Tasks(scs, "")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Execute(tasks, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Execute(tasks, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sj, pj, st, pt bytes.Buffer
	if err := WriteJSONL(&sj, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&pj, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Fatal("parallel JSONL report differs from serial")
	}
	if err := RenderTable(&st, serial); err != nil {
		t.Fatal(err)
	}
	if err := RenderTable(&pt, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Bytes(), pt.Bytes()) {
		t.Fatal("parallel table report differs from serial")
	}
	if !strings.Contains(st.String(), "quad/vanilla/swaptions/t2/s1/d40ms") {
		t.Fatalf("table lacks scenario keys:\n%s", st.String())
	}
}

// TestScenarioErrorValuedResult: a failing scenario degrades to an
// error row; the rest of the sweep completes.
func TestScenarioErrorValuedResult(t *testing.T) {
	scs := []Scenario{
		{Platform: "quad", Balancer: "vanilla", Workload: "Mix1", Threads: 2, Seed: 1, DurationNs: 20e6},
		{Platform: "quad", Balancer: "gts", Workload: "Mix1", Threads: 2, Seed: 1, DurationNs: 20e6},
	}
	tasks, err := Tasks(scs, "")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Execute(tasks, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("healthy scenario failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("gts-on-quad should fail")
	}
	var tab bytes.Buffer
	if err := RenderTable(&tab, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "ERROR:") {
		t.Fatalf("error row missing:\n%s", tab.String())
	}
	s := Summarize(results)
	if s.Jobs != 2 || s.OK != 1 || s.Failed != 1 {
		t.Fatalf("summary: %+v", s)
	}
}

func TestDecodeOutcomeRejectsGarbage(t *testing.T) {
	if _, err := DecodeOutcome([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestFaultAxisFingerprintAndKey(t *testing.T) {
	clean := Scenario{Platform: "quad", Balancer: "vanilla", Workload: "Mix1",
		Threads: 2, Seed: 1, DurationNs: 100e6}
	faulty := clean
	faulty.Fault = "drop=0.5"

	if clean.Key() == faulty.Key() {
		t.Fatal("fault plan not reflected in the scenario key")
	}
	fpClean, err := Fingerprint(SchemaVersion, clean)
	if err != nil {
		t.Fatal(err)
	}
	fpFaulty, err := Fingerprint(SchemaVersion, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if string(fpClean) == string(fpFaulty) {
		t.Fatal("fault plan not part of the fingerprint")
	}
	// Backward compatibility: a clean scenario's canonical JSON (and so
	// its content address) must not mention the fault field at all —
	// cache entries written before the axis existed must still hit.
	if strings.Contains(string(fpClean), "fault") {
		t.Fatalf("clean fingerprint leaks the fault axis: %s", fpClean)
	}

	bad := clean
	bad.Fault = "drop=2"
	if _, err := RunScenario(bad); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

func TestGridFaultAxisExpansion(t *testing.T) {
	g := Grid{
		Platforms: []string{"quad"}, Balancers: []string{"vanilla"},
		Workloads: []string{"Mix1"}, Threads: []int{2}, Seeds: []uint64{1},
		DurationNs: 100e6, Faults: []string{"none", "drop=0.5"},
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("want 2 scenarios, got %d", len(scs))
	}
	if scs[0].Fault != "" {
		t.Fatalf(`"none" should normalise to the empty plan, got %q`, scs[0].Fault)
	}
	if scs[1].Fault != "drop=0.5" {
		t.Fatalf("fault plan lost in expansion: %q", scs[1].Fault)
	}
}

func TestRunScenarioWithFaultsDeterministic(t *testing.T) {
	sc := Scenario{Platform: "quad", Balancer: "smartbalance", Workload: "Mix1",
		Threads: 4, Seed: 3, DurationNs: 400e6, Fault: "drop=0.4;migfail=0.3"}
	a, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("faulty scenario not deterministic:\n%s\n%s", ja, jb)
	}
	clean := sc
	clean.Fault = ""
	c, err := RunScenario(clean)
	if err != nil {
		t.Fatal(err)
	}
	if c.Instructions == 0 || a.Instructions == 0 {
		t.Fatal("scenarios retired no instructions")
	}
}
