package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/contention"
	"smartbalance/internal/core"
	"smartbalance/internal/fault"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/telemetry"
	"smartbalance/internal/workload"
)

// SchemaVersion participates in every scenario fingerprint. Bump it
// whenever simulation semantics change (kernel, models, balancers), so
// results cached by an older build are never served for a newer one.
const SchemaVersion = "sbsweep-v1"

// Scenario is one cell of a design-space sweep: a platform, a
// balancing policy, a workload, and the seed driving every source of
// randomness in the run. Naming follows cmd/sbsim: platform "quad" |
// "biglittle" | "scaling:<n>", workload a benchmark name, "MixN", or
// "imb:<T><I>", balancer "smartbalance" | "smartbalance-blind" |
// "vanilla" | "gts" | "iks" | "pinned" ("-blind" is the SmartBalance
// controller denied the contention topology — the A14 baseline).
type Scenario struct {
	Platform   string `json:"platform"`
	Balancer   string `json:"balancer"`
	Workload   string `json:"workload"`
	Threads    int    `json:"threads"`
	Seed       uint64 `json:"seed"`
	DurationNs int64  `json:"duration_ns"`
	// Fault is a fault-injection plan in fault.ParsePlan's spec grammar
	// (e.g. "drop=0.3;migfail=0.1"); empty or "none" runs clean. The
	// omitempty tag keeps clean scenarios' fingerprints — and therefore
	// their cache entries — identical to builds that predate the axis.
	Fault string `json:"fault,omitempty"`
	// Contention is a shared-resource model spec in
	// contention.ParseSpec's grammar ("on" or
	// "on,llc=...,bw=...,slope=..."); empty or "none" runs with the
	// uncontended machine. As with Fault, omitempty keeps uncontended
	// fingerprints identical to pre-axis builds.
	Contention string `json:"contention,omitempty"`
}

// Key canonically identifies the scenario within a sweep. Clean
// scenarios keep the historical key shape; a fault plan appends one
// segment.
func (s Scenario) Key() string {
	key := fmt.Sprintf("%s/%s/%s/t%d/s%d/d%dms",
		s.Platform, s.Balancer, s.Workload, s.Threads, s.Seed, s.DurationNs/1e6)
	if s.Fault != "" && s.Fault != "none" {
		key += "/f[" + s.Fault + "]"
	}
	if s.Contention != "" && s.Contention != "none" {
		key += "/c[" + s.Contention + "]"
	}
	return key
}

// validate rejects statically malformed scenarios (name resolution
// happens at run time, inside the job, so one bad name degrades to an
// error-valued result rather than aborting grid expansion).
func (s Scenario) validate() error {
	switch {
	case s.Platform == "":
		return errors.New("sweep: scenario without a platform")
	case s.Balancer == "":
		return errors.New("sweep: scenario without a balancer")
	case s.Workload == "":
		return errors.New("sweep: scenario without a workload")
	case s.Threads < 1:
		return fmt.Errorf("sweep: invalid thread count %d", s.Threads)
	case s.DurationNs <= 0:
		return fmt.Errorf("sweep: non-positive duration %d", s.DurationNs)
	}
	if _, err := fault.ParsePlan(s.Fault); err != nil {
		return fmt.Errorf("sweep: scenario fault plan: %w", err)
	}
	if _, err := contention.ParseSpec(s.Contention); err != nil {
		return fmt.Errorf("sweep: scenario contention spec: %w", err)
	}
	return nil
}

// Grid is a scenario specification: the cross product of its axes.
type Grid struct {
	Platforms  []string
	Balancers  []string
	Workloads  []string
	Threads    []int
	Seeds      []uint64
	DurationNs int64
	// Faults is the optional fault-plan axis (fault.ParsePlan specs);
	// empty expands as a single clean cell.
	Faults []string
	// Contentions is the optional shared-resource axis
	// (contention.ParseSpec specs); empty expands as a single
	// uncontended cell.
	Contentions []string
}

// Expand materialises the grid in canonical job order — platform-major,
// then balancer, workload, thread count, seed — the order every report
// lists results in, independent of execution interleaving.
func (g Grid) Expand() ([]Scenario, error) {
	if len(g.Platforms) == 0 || len(g.Balancers) == 0 || len(g.Workloads) == 0 ||
		len(g.Threads) == 0 || len(g.Seeds) == 0 {
		return nil, errors.New("sweep: every grid axis needs at least one value")
	}
	faults := g.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	contentions := g.Contentions
	if len(contentions) == 0 {
		contentions = []string{""}
	}
	var scs []Scenario
	for _, plat := range g.Platforms {
		for _, bal := range g.Balancers {
			for _, wl := range g.Workloads {
				for _, tc := range g.Threads {
					for _, seed := range g.Seeds {
						for _, fp := range faults {
							if fp == "none" || fp == "off" {
								fp = ""
							}
							for _, cp := range contentions {
								if cp == "none" || cp == "off" {
									cp = ""
								}
								sc := Scenario{
									Platform:   plat,
									Balancer:   bal,
									Workload:   wl,
									Threads:    tc,
									Seed:       seed,
									DurationNs: g.DurationNs,
									Fault:      fp,
									Contention: cp,
								}
								if err := sc.validate(); err != nil {
									return nil, err
								}
								scs = append(scs, sc)
							}
						}
					}
				}
			}
		}
	}
	return scs, nil
}

// Outcome is one scenario's measured result — the payload stored in the
// cache and emitted in reports. Fields are fixed-order struct members
// so the canonical JSON encoding is stable.
type Outcome struct {
	Scenario     Scenario `json:"scenario"`
	EnergyEff    float64  `json:"ips_per_watt"`
	IPS          float64  `json:"ips"`
	PowerW       float64  `json:"power_w"`
	EnergyJ      float64  `json:"energy_j"`
	Instructions uint64   `json:"instructions"`
	Migrations   int      `json:"migrations"`
	Epochs       int      `json:"epochs"`
}

// faultSeedTag decorrelates the fault injector's seed stream from the
// kernel's for the same scenario seed.
const faultSeedTag = 0xFA_17_1A_9E_5D

// RunScenario executes one scenario end to end: resolve the platform,
// workload, and balancer, simulate for the scenario's duration, check
// kernel invariants, and distill the run statistics.
func RunScenario(sc Scenario) (*Outcome, error) {
	return runScenario(sc, nil)
}

// RunScenarioObserved runs the scenario with a telemetry collector
// attached to the kernel and the balancer (when it accepts one), so
// callers can inspect flight-recorder anomalies alongside the outcome.
// Telemetry observation never changes the simulation itself — the
// outcome is byte-identical to RunScenario's — so observed runs share
// the unobserved runs' cache entries safely.
func RunScenarioObserved(sc Scenario, tel *telemetry.Collector) (*Outcome, error) {
	return runScenario(sc, tel)
}

func runScenario(sc Scenario, tel *telemetry.Collector) (*Outcome, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	plat, err := buildPlatform(sc.Platform)
	if err != nil {
		return nil, err
	}
	specs, err := buildWorkload(sc.Workload, sc.Threads, sc.Seed)
	if err != nil {
		return nil, err
	}
	bal, err := buildBalancer(sc.Balancer, plat, sc.Seed)
	if err != nil {
		return nil, err
	}
	cspec, err := contention.ParseSpec(sc.Contention)
	if err != nil {
		return nil, err
	}
	m, err := machine.NewWithOptions(plat, machine.Options{Contention: cspec})
	if err != nil {
		return nil, err
	}
	if sc.Balancer != "smartbalance-blind" {
		// Contention-aware controllers read the machine's domain model;
		// the "-blind" arm runs the same controller with the same ground
		// truth but never learns the topology (the A14 baseline).
		if aware, ok := bal.(interface {
			SetContention(*contention.Model)
		}); ok {
			aware.SetContention(m.Contention())
		}
	}
	cfg := kernel.DefaultConfig()
	cfg.Seed = sc.Seed
	if sc.Fault != "" {
		plan, err := fault.ParsePlan(sc.Fault)
		if err != nil {
			return nil, err
		}
		if !plan.IsZero() {
			// The injector seed derives from the scenario seed (xor a
			// fixed tag to decorrelate it from the kernel's stream), so
			// one seed knob reproduces the whole faulty run.
			inj, err := fault.New(plan, sc.Seed^faultSeedTag)
			if err != nil {
				return nil, err
			}
			cfg.Faults = inj
		}
	}
	k, err := kernel.New(m, bal, cfg)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		tel.SetMeta("scenario", sc.Key())
		k.AddObserver(telemetry.KernelObserver(tel))
		if sink, ok := bal.(interface {
			SetTelemetry(*telemetry.Collector)
		}); ok {
			sink.SetTelemetry(tel)
		}
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			return nil, err
		}
	}
	if err := k.Run(sc.DurationNs); err != nil {
		return nil, err
	}
	if err := k.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sweep: post-run invariant violation: %w", err)
	}
	st := k.Stats()
	return &Outcome{
		Scenario:     sc,
		EnergyEff:    st.EnergyEfficiency(),
		IPS:          st.IPS(),
		PowerW:       st.PowerW(),
		EnergyJ:      st.TotalEnergyJ(),
		Instructions: st.TotalInstructions(),
		Migrations:   st.Migrations,
		Epochs:       st.Epochs,
	}, nil
}

// Tasks converts scenarios into engine tasks. salt joins the schema
// version in every fingerprint — callers pass a build identifier there
// when they want cache isolation between builds; tests use it to force
// misses.
func Tasks(scs []Scenario, salt string) ([]Task, error) {
	version := SchemaVersion
	if salt != "" {
		version += "|" + salt
	}
	tasks := make([]Task, len(scs))
	for i := range scs {
		sc := scs[i]
		fp, err := Fingerprint(version, sc)
		if err != nil {
			return nil, err
		}
		tasks[i] = Task{
			Key:         sc.Key(),
			Fingerprint: fp,
			Run: func() ([]byte, error) {
				out, err := RunScenario(sc)
				if err != nil {
					return nil, err
				}
				return json.Marshal(out)
			},
		}
	}
	return tasks, nil
}

// DecodeOutcome parses a task result payload produced by Tasks.
func DecodeOutcome(data []byte) (*Outcome, error) {
	var out Outcome
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("sweep: undecodable outcome: %w", err)
	}
	return &out, nil
}

// buildPlatform resolves a platform name.
func buildPlatform(name string) (*arch.Platform, error) {
	switch {
	case name == "quad":
		return arch.QuadHMP(), nil
	case name == "biglittle":
		return arch.OctaBigLittle(), nil
	case strings.HasPrefix(name, "scaling:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "scaling:"))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad scaling core count in %q: %v", name, err)
		}
		return arch.ScalingHMP(n)
	}
	return nil, fmt.Errorf("sweep: unknown platform %q (quad | biglittle | scaling:<n>)", name)
}

// buildWorkload resolves a workload name into thread specs.
func buildWorkload(name string, threads int, seed uint64) ([]workload.ThreadSpec, error) {
	if strings.HasPrefix(name, workload.SynthPrefix) {
		return workload.Synth(name, threads, seed)
	}
	if strings.HasPrefix(name, "imb:") {
		code := strings.TrimPrefix(name, "imb:")
		// Accept both "HTMI" and "HM" forms, as cmd/sbsim does.
		code = strings.ReplaceAll(strings.ReplaceAll(code, "T", ""), "I", "")
		if len(code) != 2 {
			return nil, fmt.Errorf("sweep: bad IMB code %q (want e.g. imb:HTMI)", name)
		}
		tl, err := parseLevel(code[:1])
		if err != nil {
			return nil, err
		}
		il, err := parseLevel(code[1:])
		if err != nil {
			return nil, err
		}
		return workload.IMB(tl, il, threads, seed)
	}
	for _, m := range workload.MixNames() {
		if m == name {
			return workload.Mix(name, threads, seed)
		}
	}
	return workload.Benchmark(name, threads, seed)
}

// parseLevel resolves an IMB level letter.
func parseLevel(s string) (workload.Level, error) {
	switch strings.ToUpper(s) {
	case "H":
		return workload.High, nil
	case "M":
		return workload.Medium, nil
	case "L":
		return workload.Low, nil
	}
	return 0, fmt.Errorf("sweep: unknown IMB level %q", s)
}

// buildBalancer resolves a balancer name for the platform.
func buildBalancer(name string, plat *arch.Platform, seed uint64) (kernel.Balancer, error) {
	switch name {
	case "smartbalance", "smartbalance-blind":
		pred, err := trainedPredictor(plat.Types, seed)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Anneal.Seed = seed
		return core.New(pred, cfg)
	case "vanilla":
		return balancer.Vanilla{}, nil
	case "gts":
		return balancer.NewGTS(plat)
	case "iks":
		return balancer.NewIKS(plat)
	case "pinned":
		return balancer.Pinned{}, nil
	}
	return nil, fmt.Errorf("sweep: unknown balancer %q (smartbalance | smartbalance-blind | vanilla | gts | iks | pinned)", name)
}

// predictorEntry is one memoised training run.
type predictorEntry struct {
	once sync.Once
	pred *core.Predictor
	err  error
}

// predictorCache memoises trained predictors per (core-type set, seed).
// Training is a pure function of both, so memoisation cannot change any
// result — it only stops concurrent scenarios on the same platform from
// redoing an identical fit.
var predictorCache sync.Map

// trainedPredictor trains (or reuses) the predictor for the type set.
func trainedPredictor(types []arch.CoreType, seed uint64) (*core.Predictor, error) {
	// The key preserves type order: CoreTypeID is positional, so the
	// same set in a different order is a different predictor.
	names := make([]string, len(types))
	for i := range types {
		names[i] = types[i].Name
	}
	key := fmt.Sprintf("%s|%d", strings.Join(names, ","), seed)
	v, _ := predictorCache.LoadOrStore(key, &predictorEntry{})
	e := v.(*predictorEntry)
	e.once.Do(func() {
		tc := core.DefaultTrainConfig()
		tc.Seed = seed
		e.pred, e.err = core.Train(types, tc)
	})
	return e.pred, e.err
}
