package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"smartbalance/internal/tablefmt"
)

// Reporting renders sweep results in canonical job order, and by
// design omits anything that varies between equivalent runs: wall
// times, cache hits, and panic stacks all stay out of the canonical
// forms, so a parallel sweep, a serial sweep, and a fully cached rerun
// of either emit byte-identical reports. Timing and cache traffic
// belong on a side channel (cmd/sbsweep prints them to stderr).

// RenderTable renders scenario results as a text table.
func RenderTable(w io.Writer, results []Result) error {
	tb := tablefmt.New("Scenario sweep",
		"scenario", "IPS/W", "IPS", "power W", "energy J", "migr", "epochs", "status")
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			tb.AddRow(r.Key, "-", "-", "-", "-", "-", "-", "ERROR: "+r.Err.Error())
			continue
		}
		out, err := DecodeOutcome(r.Data)
		if err != nil {
			return fmt.Errorf("sweep: result %q: %w", r.Key, err)
		}
		tb.AddRow(r.Key,
			tablefmt.FormatFloat(out.EnergyEff),
			tablefmt.FormatFloat(out.IPS),
			tablefmt.FormatFloat(out.PowerW),
			tablefmt.FormatFloat(out.EnergyJ),
			fmt.Sprintf("%d", out.Migrations),
			fmt.Sprintf("%d", out.Epochs),
			"ok")
	}
	return tb.Render(w)
}

// jsonLine is the canonical JSON-lines record for one result.
type jsonLine struct {
	Key     string          `json:"key"`
	Outcome json.RawMessage `json:"outcome,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// WriteJSONL writes one canonical JSON object per result, in job
// order: {"key":..., "outcome":{...}} or {"key":..., "error":"..."}.
func WriteJSONL(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		r := &results[i]
		line := jsonLine{Key: r.Key}
		if r.Err != nil {
			line.Error = r.Err.Error()
		} else {
			if !json.Valid(r.Data) {
				return fmt.Errorf("sweep: result %q carries invalid JSON", r.Key)
			}
			line.Outcome = json.RawMessage(r.Data)
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates a sweep's results for the side channel.
type Summary struct {
	Jobs   int
	OK     int
	Failed int
	Cached int
	WallNs int64 // summed per-task wall time (zero under frozen clocks)
	Stacks []string
}

// Summarize tallies results; recovered panic stacks are collected so
// callers can surface them without polluting canonical output.
func Summarize(results []Result) Summary {
	s := Summary{Jobs: len(results)}
	for i := range results {
		r := &results[i]
		s.WallNs += r.WallNs
		switch {
		case r.Err != nil:
			s.Failed++
			var pe *PanicError
			if errors.As(r.Err, &pe) {
				s.Stacks = append(s.Stacks, fmt.Sprintf("%s:\n%s", r.Key, pe.Stack))
			}
		case r.Cached:
			s.Cached++
			s.OK++
		default:
			s.OK++
		}
	}
	return s
}
