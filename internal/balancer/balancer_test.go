package balancer

import (
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

func newKernel(t *testing.T, plat *arch.Platform, b kernel.Balancer) *kernel.Kernel {
	t.Helper()
	m, err := machine.New(plat)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(m, b, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func busySpec(name string) *workload.ThreadSpec {
	return &workload.ThreadSpec{
		Name:      name,
		Benchmark: "busy",
		Phases: []workload.Phase{{
			Name: "spin", Instructions: 40e6, ILP: 2, MemShare: 0.3, BranchShare: 0.1,
			WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.4, MLP: 2,
			TLBPressureI: 0.1, TLBPressureD: 0.2,
		}},
	}
}

func idleSpec(name string) *workload.ThreadSpec {
	s := busySpec(name)
	s.Phases[0].Instructions = 2e6
	s.Phases[0].SleepAfterNs = 50e6 // mostly asleep
	return s
}

func spawnN(t *testing.T, k *kernel.Kernel, spec func(string) *workload.ThreadSpec, n int) []kernel.ThreadID {
	t.Helper()
	ids := make([]kernel.ThreadID, n)
	for i := 0; i < n; i++ {
		id, err := k.Spawn(spec("t"))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func TestVanillaEqualisesRunnableCounts(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), Vanilla{})
	spawnN(t, k, busySpec, 8)
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Eight always-runnable equal-weight tasks on four cores: each core
	// should host exactly two.
	for c := 0; c < 4; c++ {
		if got := k.RunqueueLen(arch.CoreID(c)); got != 2 {
			t.Fatalf("core %d has %d runnable tasks, want 2", c, got)
		}
	}
}

func TestVanillaIsCapabilityBlind(t *testing.T) {
	// With 4 equal tasks on the quad HMP, vanilla gives each core one
	// task, including the Small core — leaving performance on the table,
	// which is the paper's premise.
	k := newKernel(t, arch.QuadHMP(), Vanilla{})
	spawnN(t, k, busySpec, 4)
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if got := k.RunqueueLen(arch.CoreID(c)); got != 1 {
			t.Fatalf("core %d has %d tasks, want 1", c, got)
		}
	}
	s := k.Stats()
	// Every core including Small must have executed work.
	for i := range s.Cores {
		if s.Cores[i].Instr == 0 {
			t.Fatalf("core %d (%s) idle under vanilla with 4 tasks", i, s.Cores[i].TypeName)
		}
	}
}

func TestVanillaSingleCoreNoop(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, Vanilla{})
	spawnN(t, k, busySpec, 3)
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGTSRequiresTwoTypes(t *testing.T) {
	if _, err := NewGTS(arch.QuadHMP()); err == nil {
		t.Fatal("GTS accepted a 4-type platform")
	}
	homog, _ := arch.HomogeneousPlatform(arch.BigCore(), 4)
	if _, err := NewGTS(homog); err == nil {
		t.Fatal("GTS accepted a 1-type platform")
	}
	if _, err := NewGTS(arch.OctaBigLittle()); err != nil {
		t.Fatalf("GTS rejected big.LITTLE: %v", err)
	}
}

func TestGTSThresholdValidation(t *testing.T) {
	g := &GTS{UpThreshold: 0.2, DownThreshold: 0.5}
	if err := g.bind(arch.OctaBigLittle()); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

func TestGTSMigratesBusyTasksToBigCores(t *testing.T) {
	plat := arch.OctaBigLittle()
	g, err := NewGTS(plat)
	if err != nil {
		t.Fatal(err)
	}
	k := newKernel(t, plat, g)
	busy := spawnN(t, k, busySpec, 3)
	idle := spawnN(t, k, idleSpec, 3)
	if err := k.Run(900e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	isBig := func(c arch.CoreID) bool { return plat.TypeID(c) == 0 }
	for _, id := range busy {
		if !isBig(k.Task(id).Core()) {
			t.Fatalf("busy task %d on little core %d", id, k.Task(id).Core())
		}
	}
	for _, id := range idle {
		if isBig(k.Task(id).Core()) {
			t.Fatalf("idle task %d on big core %d", id, k.Task(id).Core())
		}
	}
}

func TestGTSSpreadsWithinCluster(t *testing.T) {
	plat := arch.OctaBigLittle()
	g, _ := NewGTS(plat)
	k := newKernel(t, plat, g)
	spawnN(t, k, busySpec, 4) // all busy -> all on the 4 big cores
	if err := k.Run(900e6); err != nil {
		t.Fatal(err)
	}
	seen := map[arch.CoreID]int{}
	for _, task := range k.ActiveTasks() {
		seen[task.Core()]++
	}
	for c, n := range seen {
		if plat.TypeID(c) != 0 {
			t.Fatalf("busy task left on little core %d", c)
		}
		if n != 1 {
			t.Fatalf("core %d hosts %d tasks; cluster not spread", c, n)
		}
	}
}

func TestIKSConstruction(t *testing.T) {
	if _, err := NewIKS(arch.QuadHMP()); err == nil {
		t.Fatal("IKS accepted 4-type platform")
	}
	ik, err := NewIKS(arch.OctaBigLittle())
	if err != nil {
		t.Fatal(err)
	}
	if len(ik.pairs) != 4 {
		t.Fatalf("%d pairs", len(ik.pairs))
	}
	// Unequal clusters rejected.
	p, _ := arch.CustomPlatform("odd",
		arch.TypeCount{Type: arch.BigCore(), Count: 2},
		arch.TypeCount{Type: arch.SmallCore(), Count: 3})
	if _, err := NewIKS(p); err == nil {
		t.Fatal("IKS accepted unequal clusters")
	}
}

func TestIKSSwitchesClusters(t *testing.T) {
	plat := arch.OctaBigLittle()
	ik, err := NewIKS(plat)
	if err != nil {
		t.Fatal(err)
	}
	k := newKernel(t, plat, ik)
	spawnN(t, k, busySpec, 4)
	if err := k.Run(900e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Busy tasks saturate their virtual cores: pairs should be switched
	// to big, so the active cores are big ones.
	bigInstr, littleInstr := uint64(0), uint64(0)
	s := k.Stats()
	for i := range s.Cores {
		if plat.TypeID(s.Cores[i].Core) == 0 {
			bigInstr += s.Cores[i].Instr
		} else {
			littleInstr += s.Cores[i].Instr
		}
	}
	if bigInstr <= littleInstr {
		t.Fatalf("IKS did not switch to big: big %d, little %d", bigInstr, littleInstr)
	}
}

func TestIKSIdleWorkloadStaysLittle(t *testing.T) {
	plat := arch.OctaBigLittle()
	ik, _ := NewIKS(plat)
	k := newKernel(t, plat, ik)
	spawnN(t, k, idleSpec, 4)
	if err := k.Run(900e6); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	bigInstr, littleInstr := uint64(0), uint64(0)
	for i := range s.Cores {
		if plat.TypeID(s.Cores[i].Core) == 0 {
			bigInstr += s.Cores[i].Instr
		} else {
			littleInstr += s.Cores[i].Instr
		}
	}
	if littleInstr <= bigInstr {
		t.Fatalf("idle workload should stay on little: big %d, little %d", bigInstr, littleInstr)
	}
}

func TestStaticPins(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), Static{Assign: func(id kernel.ThreadID) arch.CoreID {
		return arch.CoreID(2)
	}})
	ids := spawnN(t, k, busySpec, 3)
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if k.Task(id).Core() != 2 {
			t.Fatalf("task %d on core %d, want 2", id, k.Task(id).Core())
		}
	}
	// Nil assign pins to 0.
	k2 := newKernel(t, arch.QuadHMP(), Static{})
	ids2 := spawnN(t, k2, busySpec, 2)
	if err := k2.Run(200e6); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids2 {
		if k2.Task(id).Core() != 0 {
			t.Fatal("nil Assign should pin to core 0")
		}
	}
}

func TestRandomUsesManyCores(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), NewRandom(5))
	spawnN(t, k, busySpec, 6)
	if err := k.Run(900e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	coresUsed := 0
	for i := range s.Cores {
		if s.Cores[i].Instr > 0 {
			coresUsed++
		}
	}
	if coresUsed < 3 {
		t.Fatalf("random balancer used only %d cores", coresUsed)
	}
	if s.Migrations == 0 {
		t.Fatal("random balancer never migrated")
	}
}

func TestPinnedNeverMigrates(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), Pinned{})
	spawnN(t, k, busySpec, 8)
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	if got := k.Stats().Migrations; got != 0 {
		t.Fatalf("pinned balancer migrated %d times", got)
	}
}

func TestBalancerNames(t *testing.T) {
	plat := arch.OctaBigLittle()
	g, _ := NewGTS(plat)
	ik, _ := NewIKS(plat)
	for _, c := range []struct {
		b    kernel.Balancer
		want string
	}{
		{Vanilla{}, "vanilla-linux"},
		{g, "arm-gts"},
		{ik, "linaro-iks"},
		{Static{}, "static"},
		{NewRandom(1), "random"},
		{Pinned{}, "pinned"},
	} {
		if c.b.Name() != c.want {
			t.Errorf("Name() = %q, want %q", c.b.Name(), c.want)
		}
	}
}
