package balancer

import (
	"fmt"
	"sort"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
)

// IKS reproduces the Linaro In-Kernel Switcher: big and little cores
// are paired into virtual cores, and at any moment each pair exposes
// only one of its two physical cores, selected by the pair's aggregate
// load with hysteresis. Coarser than GTS — a whole virtual core
// switches at once — which is exactly the limitation GTS (and
// SmartBalance) improve on.
type IKS struct {
	// UpThreshold/DownThreshold act on the pair's aggregate utilisation.
	UpThreshold   float64
	DownThreshold float64

	pairs   [][2]arch.CoreID // [big, little] per virtual core
	onBig   []bool
	isValid bool
}

// NewIKS pairs the platform's big and little cores. The platform must
// have two core types with equal counts.
func NewIKS(p *arch.Platform) (*IKS, error) {
	if p.NumTypes() != 2 {
		return nil, fmt.Errorf("balancer: IKS requires exactly 2 core types, got %d", p.NumTypes())
	}
	bigType := arch.CoreTypeID(0)
	if p.Types[1].PeakIPC*p.Types[1].FreqMHz > p.Types[0].PeakIPC*p.Types[0].FreqMHz {
		bigType = 1
	}
	bigs := p.CoresOfType(bigType)
	littles := p.CoresOfType(1 - bigType)
	if len(bigs) != len(littles) || len(bigs) == 0 {
		return nil, fmt.Errorf("balancer: IKS needs equal big/little counts, got %d/%d", len(bigs), len(littles))
	}
	iks := &IKS{UpThreshold: 0.7, DownThreshold: 0.3, isValid: true}
	for i := range bigs {
		iks.pairs = append(iks.pairs, [2]arch.CoreID{bigs[i], littles[i]})
	}
	iks.onBig = make([]bool, len(iks.pairs))
	return iks, nil
}

// Name implements kernel.Balancer.
func (i *IKS) Name() string { return "linaro-iks" }

// Rebalance implements kernel.Balancer.
func (i *IKS) Rebalance(k *kernel.Kernel, _ kernel.Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	if !i.isValid {
		return
	}
	// Map each physical core to its virtual pair.
	pairOf := make(map[arch.CoreID]int, 2*len(i.pairs)) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	for pi, pr := range i.pairs {
		pairOf[pr[0]] = pi
		pairOf[pr[1]] = pi
	}
	// Aggregate utilisation per virtual core, and collect its tasks.
	util := make([]float64, len(i.pairs))         //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	tasks := make([][]*kernel.Task, len(i.pairs)) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	var unassigned []*kernel.Task
	for _, t := range k.ActiveTasks() {
		pi, ok := pairOf[t.Core()]
		if !ok {
			unassigned = append(unassigned, t) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
			continue
		}
		util[pi] += t.TrackedLoad()
		tasks[pi] = append(tasks[pi], t) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	}
	// Switch each pair's active side with hysteresis.
	for pi := range i.pairs {
		switch {
		case util[pi] >= i.UpThreshold:
			i.onBig[pi] = true
		case util[pi] <= i.DownThreshold:
			i.onBig[pi] = false
		}
		active := i.activeCore(pi)
		for _, t := range tasks[pi] {
			_ = k.Migrate(t.ID, active)
		}
	}
	// Distribute strays (spawned on a core we have no mapping for —
	// cannot happen on a valid platform, defensive) and then equalise
	// virtual-core populations so one pair doesn't hold everything.
	i.spread(k, unassigned)
}

// activeCore returns the physical core a virtual core currently exposes.
func (i *IKS) activeCore(pi int) arch.CoreID {
	if i.onBig[pi] {
		return i.pairs[pi][0]
	}
	return i.pairs[pi][1]
}

// spread places stray tasks round-robin over active cores, lightest
// first.
func (i *IKS) spread(k *kernel.Kernel, strays []*kernel.Task) {
	if len(strays) == 0 {
		return
	}
	sort.SliceStable(strays, func(a, b int) bool { return strays[a].ID < strays[b].ID }) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	for n, t := range strays {
		_ = k.Migrate(t.ID, i.activeCore(n%len(i.pairs)))
	}
}
