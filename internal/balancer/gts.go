package balancer

import (
	"errors"
	"fmt"
	"sort"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
)

// GTS reproduces ARM's Global Task Scheduling (big.LITTLE MP) policy:
// every task is individually eligible for either a big or a little
// core, selected by comparing its tracked utilisation against fixed
// up/down-migration thresholds — "the policy makes a fixed utilization
// threshold-based binary decision to either select a big or a little
// core". Its structural limitations, which the paper exploits, are
// inherited: exactly two core classes, utilisation as the only signal,
// and no awareness of per-thread IPC or power.
type GTS struct {
	// UpThreshold is the utilisation above which a task migrates to the
	// big cluster; DownThreshold the level below which it returns to a
	// little core. The gap provides hysteresis.
	UpThreshold   float64
	DownThreshold float64

	big, little []arch.CoreID
	initialized bool
}

// NewGTS creates a GTS balancer with ARM's stock thresholds and
// validates that the platform is a two-class big.LITTLE.
func NewGTS(p *arch.Platform) (*GTS, error) {
	g := &GTS{UpThreshold: 0.60, DownThreshold: 0.25}
	if err := g.bind(p); err != nil {
		return nil, err
	}
	return g, nil
}

// bind classifies the platform's cores into big and little clusters.
func (g *GTS) bind(p *arch.Platform) error {
	if p.NumTypes() != 2 {
		return fmt.Errorf("balancer: GTS requires exactly 2 core types, platform has %d", p.NumTypes()) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	}
	if g.UpThreshold <= g.DownThreshold || g.UpThreshold > 1 || g.DownThreshold < 0 {
		return errors.New("balancer: GTS thresholds must satisfy 0 <= down < up <= 1") //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	}
	bigType := arch.CoreTypeID(0)
	if p.Types[1].PeakIPC*p.Types[1].FreqMHz > p.Types[0].PeakIPC*p.Types[0].FreqMHz {
		bigType = 1
	}
	for _, c := range p.Cores {
		if c.Type == bigType {
			g.big = append(g.big, c.ID) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		} else {
			g.little = append(g.little, c.ID) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		}
	}
	if len(g.big) == 0 || len(g.little) == 0 {
		return errors.New("balancer: GTS needs at least one core of each class") //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	}
	g.initialized = true
	return nil
}

// Name implements kernel.Balancer.
func (g *GTS) Name() string { return "arm-gts" }

// Rebalance implements kernel.Balancer.
func (g *GTS) Rebalance(k *kernel.Kernel, _ kernel.Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	if !g.initialized {
		if err := g.bind(k.Platform()); err != nil {
			return
		}
	}
	isBig := make(map[arch.CoreID]bool, len(g.big)) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	for _, c := range g.big {
		isBig[c] = true
	}
	// Decide each task's class by its tracked utilisation, then place it
	// on the least-loaded core of that class.
	type placement struct {
		t   *kernel.Task
		big bool
	}
	var plan []placement
	for _, t := range k.ActiveTasks() {
		// GTS thresholds act on the PELT tracked load (runnable
		// fraction), not instantaneous utilisation.
		u := t.TrackedLoad()
		onBig := isBig[t.Core()]
		switch {
		case u >= g.UpThreshold:
			plan = append(plan, placement{t, true}) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		case u <= g.DownThreshold:
			plan = append(plan, placement{t, false}) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		default:
			// hysteresis: stay
			plan = append(plan, placement{t, onBig}) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		}
	}
	// Stable placement: sort by descending tracked load so heavy tasks
	// claim their class first, then least-loaded fill.
	sort.SliceStable(plan, func(i, j int) bool { //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		return plan[i].t.TrackedLoad() > plan[j].t.TrackedLoad()
	})
	// Per-class quotas keep clusters internally balanced (stock CFS does
	// this within a cluster; our kernel delegates it to the balancer).
	nBig, nLittle := 0, 0
	for _, p := range plan {
		if p.big {
			nBig++
		} else {
			nLittle++
		}
	}
	quotaBig := ceilDiv(nBig, len(g.big))
	quotaLittle := ceilDiv(nLittle, len(g.little))
	count := make(map[arch.CoreID]int, k.NumCores())  //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	pick := func(cluster []arch.CoreID) arch.CoreID { //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		best := cluster[0]
		for _, c := range cluster[1:] {
			if count[c] < count[best] {
				best = c
			}
		}
		return best
	}
	for _, p := range plan {
		cluster, quota := g.little, quotaLittle
		if p.big {
			cluster, quota = g.big, quotaBig
		}
		dst := pick(cluster)
		// Sticky placement: stay on the current core when it is in the
		// right class and under quota, avoiding migration churn.
		if cur := p.t.Core(); isBig[cur] == p.big && count[cur] < quota {
			dst = cur
		}
		count[dst]++
		_ = k.Migrate(p.t.ID, dst)
	}
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
