// Package balancer implements the baseline load-balancing policies the
// paper compares SmartBalance against: the vanilla Linux CFS load
// balancer (capability-blind even distribution, Fig. 1a), ARM's Global
// Task Scheduling for big.LITTLE (utilisation-threshold binary
// core-class selection), and the Linaro In-Kernel Switcher (cluster
// switching). Static and random policies are provided for tests and for
// the Fig. 8 distance-to-optimal analysis.
package balancer

import (
	"sort"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
)

// Vanilla reproduces the stock Linux load balancer's behaviour at epoch
// granularity: it equalises *load* (summed CFS weight of runnable
// tasks) across cores, treating every core as equal regardless of its
// type — "the vanilla Linux kernel load balancer evenly distributes the
// workload among cores even if the cores have distinct processing
// capabilities".
type Vanilla struct{}

// Name implements kernel.Balancer.
func (Vanilla) Name() string { return "vanilla-linux" }

// Rebalance implements kernel.Balancer. It repeatedly pulls a queued
// task from the busiest core to the idlest core while doing so reduces
// the imbalance, exactly like the find_busiest_group/pull path but
// collapsed to one flat scheduling domain.
func (Vanilla) Rebalance(k *kernel.Kernel, _ kernel.Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	n := k.NumCores()
	if n < 2 {
		return
	}
	// Collect movable (runnable, not currently running) tasks per core.
	byCore := make([][]*kernel.Task, n) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	load := make([]int64, n)            //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
	for _, t := range k.ActiveTasks() {
		switch t.State() {
		case kernel.StateRunnable:
			byCore[t.Core()] = append(byCore[t.Core()], t) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
			load[t.Core()] += t.Weight()
		case kernel.StateRunning:
			load[t.Core()] += t.Weight()
		}
	}
	// Greedy busiest-to-idlest pulls.
	for iter := 0; iter < 4*n; iter++ {
		busiest, idlest := 0, 0
		for c := 1; c < n; c++ {
			if load[c] > load[busiest] {
				busiest = c
			}
			if load[c] < load[idlest] {
				idlest = c
			}
		}
		if busiest == idlest || len(byCore[busiest]) == 0 {
			return
		}
		// Pick the lightest queued task whose move shrinks the gap.
		cands := byCore[busiest]
		sort.Slice(cands, func(i, j int) bool { return cands[i].Weight() < cands[j].Weight() }) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
		moved := false
		for i, t := range cands {
			w := t.Weight()
			if load[busiest]-load[idlest] <= w {
				continue // moving it would overshoot
			}
			if err := k.Migrate(t.ID, arch.CoreID(idlest)); err == nil {
				load[busiest] -= w
				load[idlest] += w
				byCore[busiest] = append(cands[:i], cands[i+1:]...) //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
				byCore[idlest] = append(byCore[idlest], t)          //sbvet:allow hotpath(comparison-baseline balancer (Section 6 ablation), outside the SmartBalance zero-alloc contract)
				moved = true
			}
			break
		}
		if !moved {
			return
		}
	}
}
