package balancer

import (
	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
	"smartbalance/internal/rng"
)

// Static pins every task to a fixed core chosen by a user-supplied
// assignment function of the task id. Useful for tests, oracle
// comparisons, and the Fig. 8 synthetic cases.
type Static struct {
	// Assign maps a task id to its core. A nil Assign pins everything
	// to core 0.
	Assign func(id kernel.ThreadID) arch.CoreID
}

// Name implements kernel.Balancer.
func (Static) Name() string { return "static" }

// Rebalance implements kernel.Balancer.
func (s Static) Rebalance(k *kernel.Kernel, _ kernel.Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	for _, t := range k.ActiveTasks() {
		dst := arch.CoreID(0)
		if s.Assign != nil {
			dst = s.Assign(t.ID)
		}
		_ = k.Migrate(t.ID, dst)
	}
}

// Random reassigns every task to a uniformly random core each epoch — a
// chaos baseline that bounds how bad placement can get while still
// using all cores.
type Random struct {
	r *rng.Rand
}

// NewRandom creates a Random balancer with its own deterministic stream.
func NewRandom(seed uint64) *Random {
	return &Random{r: rng.New(seed)}
}

// Name implements kernel.Balancer.
func (*Random) Name() string { return "random" }

// Rebalance implements kernel.Balancer.
func (b *Random) Rebalance(k *kernel.Kernel, _ kernel.Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	n := k.NumCores()
	for _, t := range k.ActiveTasks() {
		_ = k.Migrate(t.ID, arch.CoreID(b.r.Intn(n)))
	}
}

// Pinned keeps tasks wherever fork placement put them (no balancing at
// all); the degenerate control.
type Pinned struct{}

// Name implements kernel.Balancer.
func (Pinned) Name() string { return "pinned" }

// Rebalance implements kernel.Balancer.
func (Pinned) Rebalance(*kernel.Kernel, kernel.Time, []hpc.ThreadSample, []hpc.CoreEpochSample) {
}
