package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of this module.
type Package struct {
	Dir   string // absolute directory the files were read from
	Path  string // import path within the module
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module
// without any external tooling. Imports inside the module are resolved
// by recursively loading the imported directory; standard-library
// imports are type-checked from GOROOT source (offline). Loaded
// packages are cached, so a whole-repository run checks each package
// once.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute directory containing go.mod
	ModulePath string // module path declared in go.mod

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader locates the module enclosing dir and returns a loader for
// it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModule walks up from dir to the nearest go.mod and returns the
// module root directory and the declared module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// LoadDir loads the package rooted at dir, which must lie inside the
// module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModulePath)
	}
	path := l.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load parses and type-checks the package at dir under the given import
// path, resolving imports through the loader itself.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Tolerate soft errors ("declared and not used", unused imports):
	// fixture corpora deliberately contain skeletal code. Hard errors
	// mean the package would not compile and analysis results would be
	// garbage, so those still fail the load.
	var hard []error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok && te.Soft {
				return
			}
			hard = append(hard, err)
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(hard) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, errors.Join(hard...))
	}
	p := &Package{Dir: dir, Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Packages returns every module package loaded so far — requested or
// pulled in as a dependency — sorted by import path.
func (l *Loader) Packages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, p := range paths {
		out[i] = l.pkgs[p]
	}
	return out
}

// Import implements types.Importer: module-internal paths are resolved
// by loading their directory; everything else is delegated to the
// GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.load(path, filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ExpandPatterns resolves package patterns relative to base into a
// deterministic list of package directories. Supported forms are plain
// directories ("./internal/core", absolute paths) and recursive
// patterns ("./...", "dir/..."), which walk the tree skipping testdata,
// vendor, hidden, and underscore-prefixed directories — the same
// pruning the go tool applies.
func ExpandPatterns(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(base, pat)
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		d := filepath.Clean(pat)
		if !hasGoFiles(d) {
			return nil, fmt.Errorf("analysis: no Go files in %s", d)
		}
		add(d)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
