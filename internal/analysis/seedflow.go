package analysis

import (
	"go/ast"
	"go/types"
)

// rngPkgPath is the module's deterministic generator package.
const rngPkgPath = "smartbalance/internal/rng"

// SeedFlow returns the analyzer enforcing that rng.Rand streams are
// seeded from configuration, not hardcoded. It flags rng.New called
// with a compile-time constant (literal or named const) and any
// rng.Rand composite literal (the zero value is not a usable
// generator). Tests are exempt structurally: sbvet does not load
// _test.go files, where fixed seeds are the point.
func SeedFlow() *Analyzer {
	return &Analyzer{
		Name: "seedflow",
		Doc:  "flag rng.Rand construction from literal seeds; seeds must flow from configuration",
		Run: func(pass *Pass) {
			if pass.PkgPath == rngPkgPath {
				return
			}
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						sel, ok := n.Fun.(*ast.SelectorExpr)
						if !ok || !pass.importedFunc(sel, rngPkgPath, "New") || len(n.Args) != 1 {
							return true
						}
						if tv, ok := pass.Info.Types[n.Args[0]]; ok && tv.Value != nil {
							pass.Reportf(n.Pos(),
								"rng.New seeded with constant %s: seeds must flow from configuration (flags, Config fields, or Split of a configured stream)", tv.Value)
						}
					case *ast.CompositeLit:
						if isRngRand(pass.Info.TypeOf(n)) {
							pass.Reportf(n.Pos(),
								"rng.Rand composite literal: the zero value is unusable; construct with rng.New from a configured seed")
						}
					}
					return true
				})
			}
		},
	}
}

// isRngRand reports whether t is rng.Rand from the module's rng
// package.
func isRngRand(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == rngPkgPath
}
