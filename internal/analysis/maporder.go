package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// orderedWriteMethods are method/function names whose call inside a
// map-range body makes iteration order user-visible.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// MapOrder returns the analyzer flagging range statements over maps
// whose body emits into an ordered sink — appends to a slice, writes to
// an io.Writer or strings.Builder, or string concatenation. Go map
// iteration order is deliberately randomised, so such loops produce
// different output on every run. The canonical fix — collect the keys,
// sort, then iterate — is recognised and exempt when the body is
// exactly `keys = append(keys, k)`.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map iteration feeding ordered output; sort the keys first",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok || !isMap(pass.Info.TypeOf(rs.X)) {
						return true
					}
					if isKeyCollect(rs) {
						return true
					}
					reportOrderedWrites(pass, rs)
					return true
				})
			}
		},
	}
}

// reportOrderedWrites scans the body of a map-range statement for
// order-sensitive writes. Nested map ranges are skipped: they get their
// own visit, and one report per offending write is enough. Writes into
// a container indexed by the range key (m2[k] = append(m2[k], v)) are
// exempt: each key's slot is touched once, so iteration order cannot
// show through.
func reportOrderedWrites(pass *Pass, outer *ast.RangeStmt) {
	keyName := ""
	if key, ok := outer.Key.(*ast.Ident); ok {
		keyName = key.Name
	}
	ast.Inspect(outer.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMap(pass.Info.TypeOf(n.X)) {
				return false
			}
		case *ast.AssignStmt:
			if isKeyedWrite(n, keyName) {
				return false
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.Info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(),
					"string concatenation inside range over map: output order is nondeterministic; collect and sort the keys first")
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && isBuiltin(pass, fun) {
					pass.Reportf(n.Pos(),
						"append inside range over map: element order is nondeterministic; collect and sort the keys first")
				}
			case *ast.SelectorExpr:
				if orderedWriteMethods[fun.Sel.Name] {
					pass.Reportf(n.Pos(),
						"%s inside range over map: output order is nondeterministic; collect and sort the keys first", fun.Sel.Name)
				}
			}
		}
		return true
	})
}

// isKeyedWrite recognises assignments whose only destination is indexed
// by the range key, e.g. samples[k] = append(samples[k], v) or
// counts[k] += v: order-independent accumulation.
func isKeyedWrite(as *ast.AssignStmt, keyName string) bool {
	if keyName == "" || keyName == "_" || len(as.Lhs) != 1 {
		return false
	}
	idx, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	return ok && id.Name == keyName
}

// isKeyCollect recognises the collect-then-sort idiom: a body that is
// exactly one `keys = append(keys, k)` where k is the range key.
func isKeyCollect(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	sliceArg, ok := call.Args[0].(*ast.Ident)
	if !ok || sliceArg.Name != dst.Name {
		return false
	}
	elemArg, ok := call.Args[1].(*ast.Ident)
	return ok && elemArg.Name == key.Name
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok
}
