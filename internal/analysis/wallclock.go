package analysis

import "go/ast"

// DefaultSimPackages lists the packages whose behaviour must be a pure
// function of the seed: everything that executes during a simulated
// run. Wall-clock reads inside them make results irreproducible, so
// the wallclock analyzer forbids time.Now/time.Since there. Host-side
// timing belongs at the cmd/ and examples/ boundary, or behind
// core.Clock with an annotated RealClock implementation.
var DefaultSimPackages = []string{
	"smartbalance/internal/core",
	"smartbalance/internal/perfmodel",
	"smartbalance/internal/powermodel",
	"smartbalance/internal/balancer",
	"smartbalance/internal/workload",
	"smartbalance/internal/kernel",
	"smartbalance/internal/machine",
	"smartbalance/internal/hpc",
	"smartbalance/internal/pelt",
	"smartbalance/internal/rng",
	"smartbalance/internal/thermal",
	"smartbalance/internal/exp",
	"smartbalance/internal/sweep",
	"smartbalance/internal/fault",
	"smartbalance/internal/telemetry",
	"smartbalance/internal/fleet",
	"smartbalance/internal/hunt",
	"smartbalance/internal/contention",
}

// Wallclock returns the analyzer forbidding time.Now and time.Since in
// simulation packages. simPkgs overrides the package set (nil selects
// DefaultSimPackages); tests use this to point the analyzer at fixture
// packages.
func Wallclock(simPkgs []string) *Analyzer {
	if simPkgs == nil {
		simPkgs = DefaultSimPackages
	}
	return &Analyzer{
		Name: "wallclock",
		Doc:  "forbid time.Now/time.Since in simulation packages; results must be functions of the seed",
		Run: func(pass *Pass) {
			if !underAny(pass.PkgPath, simPkgs) {
				return
			}
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					for _, name := range [...]string{"Now", "Since"} {
						if pass.importedFunc(sel, "time", name) {
							pass.Reportf(call.Pos(),
								"time.%s in simulation package %s: results must be deterministic in the seed; inject core.Clock or move the read to the cmd/ boundary",
								name, pass.PkgPath)
						}
					}
					return true
				})
			}
		},
	}
}
