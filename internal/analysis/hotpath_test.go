package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runHotpathFixture analyzes one fixture directory with the hotpath
// analyzer through the full module-tier driver (so transitively loaded
// fixture sub-packages are covered) and returns the diagnostics with
// paths rewritten to the golden convention (src/<name>/...).
func runHotpathFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	diags, err := Run(".", []string{filepath.Join("testdata", "src", name)}, []*Analyzer{Hotpath()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range diags {
		diags[i].File = strings.TrimPrefix(diags[i].File, "internal/analysis/testdata/")
	}
	return diags
}

// TestHotpathGolden pins the analyzer's exact output over the fixture
// corpus: positives in the root, in interface-dispatched implementers,
// across the package boundary, and in the annotated closure; negatives
// (unreachable functions, the justified suppression) by absence.
func TestHotpathGolden(t *testing.T) {
	diags := runHotpathFixture(t, "hotpath")
	if len(diags) == 0 {
		t.Fatal("hotpath fixture produced no diagnostics")
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	got := sb.String()
	golden := filepath.Join("testdata", "golden", "hotpath.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestHotpathNegatives spells out the absence cases the golden file
// encodes implicitly, so a regression points at the broken property.
func TestHotpathNegatives(t *testing.T) {
	diags := runHotpathFixture(t, "hotpath")
	for _, d := range diags {
		if strings.Contains(d.Message, "suppression") {
			t.Errorf("suppressed finding leaked: %s", d)
		}
		// The only map literals in the corpus live in unreachable
		// functions (hot.go Unreached's slice sibling aside, sub.go
		// ColdHelper) — any map-literal report in sub.go means a cold
		// function was checked.
		if d.File == "src/hotpath/sub/sub.go" && strings.Contains(d.Message, "map literal") {
			t.Errorf("cold cross-package function was checked: %s", d)
		}
	}
}

// TestHotpathCrossPackageAttribution checks that a finding in the sub
// package names the root that made it hot.
func TestHotpathCrossPackageAttribution(t *testing.T) {
	diags := runHotpathFixture(t, "hotpath")
	var sawSub bool
	for _, d := range diags {
		if d.File == "src/hotpath/sub/sub.go" {
			sawSub = true
			if !strings.Contains(d.Message, "hotpath.Tick") {
				t.Errorf("cross-package finding lost its root attribution: %s", d)
			}
		}
	}
	if !sawSub {
		t.Error("no findings propagated into the sub package")
	}
}

// TestHotpathClosureRoot checks that an annotated function literal is a
// root of its own: the append inside MakeObserver's returned closure
// must be reported even though MakeObserver itself is cold.
func TestHotpathClosureRoot(t *testing.T) {
	diags := runHotpathFixture(t, "hotpath")
	var saw bool
	for _, d := range diags {
		if d.File == "src/hotpath/hot.go" && strings.Contains(d.Message, "append") && d.Line >= 66 && d.Line <= 70 {
			saw = true
		}
	}
	if !saw {
		t.Error("append inside the annotated closure root was not reported")
	}
}

// TestEmptyReasonReportedOnce is the regression test for the
// malformed-annotation edge case: an //sbvet:allow hotpath() with an
// empty reason covering a line that carries two hotpath diagnostics is
// itself reported exactly once, while both underlying diagnostics still
// fire (a malformed annotation must never suppress).
func TestEmptyReasonReportedOnce(t *testing.T) {
	diags := runHotpathFixture(t, "allowdup")
	var emptyReason, onLine int
	for _, d := range diags {
		if d.Analyzer == "sbvet" && strings.Contains(d.Message, "empty reason") {
			emptyReason++
		}
		if d.Analyzer == "hotpath" && d.File == "src/allowdup/a.go" && d.Line == 11 {
			onLine++
		}
	}
	if emptyReason != 1 {
		t.Errorf("empty-reason annotation reported %d times, want exactly 1", emptyReason)
	}
	if onLine != 2 {
		t.Errorf("got %d hotpath diagnostics on the annotated line, want 2 (append and make must not be suppressed)", onLine)
	}
}

// TestDanglingHotpathDirective checks that a //sbvet:hotpath mark that
// attaches to no function is reported rather than silently dropped.
func TestDanglingHotpathDirective(t *testing.T) {
	// The fixture must live inside the module for the loader to accept
	// it, so build it under testdata and clean up.
	dir := filepath.Join("testdata", "src", "dangling")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src := "package dangling\n\n//sbvet:hotpath\n\nvar X = 1\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(".", []string{dir}, []*Analyzer{Hotpath()})
	if err != nil {
		t.Fatal(err)
	}
	var saw bool
	for _, d := range diags {
		if strings.Contains(d.Message, "marks no function") {
			saw = true
		}
	}
	if !saw {
		t.Errorf("dangling //sbvet:hotpath directive was not reported; got %v", diags)
	}
}
