package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// FuncNode is one function with a body somewhere in this module: a
// declared function or method (Decl != nil) or a function literal
// (Lit != nil). Nodes are the vertices of the CallGraph.
type FuncNode struct {
	// Obj is the declared object; nil for function literals.
	Obj *types.Func
	// Decl/Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Pkg is the package the body lives in.
	Pkg *Package

	// edges are the node's outgoing call/reference edges, in source
	// order, deduplicated.
	edges []*FuncNode
	seen  map[*FuncNode]bool
}

// Name renders a stable human-readable identifier: the qualified
// function name, or "pkg.func@file:line" for a literal.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return qualifiedFuncName(n.Obj)
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	file := pos.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return n.Pkg.Path + ".func@" + file + ":" + strconv.Itoa(pos.Line)
}

// Body returns the node's function body.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Edges returns the outgoing edges in deterministic (source) order.
func (n *FuncNode) Edges() []*FuncNode { return n.edges }

func (n *FuncNode) addEdge(to *FuncNode) {
	if to == nil || to == n {
		return
	}
	if n.seen == nil {
		n.seen = make(map[*FuncNode]bool)
	}
	if n.seen[to] {
		return
	}
	n.seen[to] = true
	n.edges = append(n.edges, to)
}

// qualifiedFuncName renders pkgpath.Func or pkgpath.(Recv).Method.
func qualifiedFuncName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return f.Pkg().Path() + ".(" + ptr + named.Obj().Name() + ")." + f.Name()
		}
	}
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// CallGraph is a conservative over-approximation of the module's call
// structure, built purely from the syntax and type information the
// loader already has:
//
//   - a direct call adds a precise edge;
//   - a method value, method expression, or any other reference to a
//     declared function adds an edge from the referencing function (the
//     value may be called later, so reachability must include it);
//   - a call through an interface method adds edges to every method of
//     every module type implementing that interface (class-hierarchy
//     style over-approximation);
//   - a function literal gets an edge from its lexically enclosing
//     function.
//
// Calls through plain func-typed variables add no edges of their own:
// the usual callback pattern is already covered by the reference edges
// above when the callback value is built in analyzed code, and hot
// callbacks installed on cold paths are handled by annotating the
// callback itself as a root. Recursion — direct or mutual — needs no
// special casing; Reachable visits each node once.
type CallGraph struct {
	nodes   map[*types.Func]*FuncNode // declared functions by object
	lits    map[*ast.FuncLit]*FuncNode
	ordered []*FuncNode // deterministic iteration order
}

// NodeOf returns the node of a declared function, or nil.
func (g *CallGraph) NodeOf(f *types.Func) *FuncNode { return g.nodes[f] }

// LitNode returns the node of a function literal, or nil.
func (g *CallGraph) LitNode(l *ast.FuncLit) *FuncNode { return g.lits[l] }

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.ordered }

// ifaceMethodKey identifies one interface-dispatch site: the interface
// type and method name.
type ifaceMethodKey struct {
	iface *types.Interface
	name  string
}

// BuildCallGraph constructs the graph over the given packages, which
// must be in deterministic order (node and edge order follow it).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes: make(map[*types.Func]*FuncNode),
		lits:  make(map[*ast.FuncLit]*FuncNode),
	}
	// Pass 1: index every declared function and, nested under it, every
	// function literal (with the enclosing edge wired immediately).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				g.nodes[obj] = n
				g.ordered = append(g.ordered, n)
				g.indexLits(n, fd.Body, pkg)
			}
		}
	}
	// Pass 2: resolve call and reference edges in every body.
	impls := buildImplIndex(pkgs)
	for _, n := range g.ordered {
		g.resolveEdges(n, impls)
	}
	return g
}

// indexLits registers every function literal lexically inside root,
// each with an edge from its immediately enclosing function.
func (g *CallGraph) indexLits(encloser *FuncNode, root ast.Node, pkg *Package) {
	ast.Inspect(root, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		n := &FuncNode{Lit: lit, Pkg: pkg}
		g.lits[lit] = n
		g.ordered = append(g.ordered, n)
		encloser.addEdge(n)
		g.indexLits(n, lit.Body, pkg)
		return false // the nested walk above owns this subtree
	})
}

// implIndex resolves interface-dispatch keys to implementing module
// methods, lazily per key, over a pre-built list of module named types.
type implIndex struct {
	named []*types.Named
	cache map[ifaceMethodKey][]*types.Func
}

// buildImplIndex collects every named non-interface type declared in
// the given packages, in deterministic order.
func buildImplIndex(pkgs []*Package) *implIndex {
	idx := &implIndex{cache: make(map[ifaceMethodKey][]*types.Func)}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// implementers returns the methods named key.name of every module type
// implementing key.iface.
func (idx *implIndex) implementers(key ifaceMethodKey) []*types.Func {
	if ms, ok := idx.cache[key]; ok {
		return ms
	}
	var out []*types.Func
	for _, named := range idx.named {
		var recv types.Type = named
		if !types.Implements(recv, key.iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, key.iface) {
				continue
			}
		}
		ms := types.NewMethodSet(recv)
		for i := 0; i < ms.Len(); i++ {
			if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == key.name {
				out = append(out, f)
			}
		}
	}
	idx.cache[key] = out
	return out
}

// resolveEdges walks one node's own body (nested literals are pruned;
// their bodies belong to their own nodes) and adds edges.
func (g *CallGraph) resolveEdges(n *FuncNode, impls *implIndex) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	inspectOwn(body, func(node ast.Node) {
		switch e := node.(type) {
		case *ast.CallExpr:
			g.edgeForCall(n, e, info, impls)
		case *ast.Ident:
			// A declared function used as a value. The callee position of
			// a direct call also lands here; the duplicate is deduped.
			if f, ok := info.Uses[e].(*types.Func); ok {
				n.addEdge(g.nodes[f])
			}
		case *ast.SelectorExpr:
			// Method value or method expression used as a value; through
			// an interface it dispatches like a call.
			sel, ok := info.Selections[e]
			if !ok {
				return
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				g.edgeForMethod(n, f, sel, impls)
			}
		}
	})
}

// edgeForCall resolves one call expression into edges.
func (g *CallGraph) edgeForCall(n *FuncNode, call *ast.CallExpr, info *types.Info, impls *implIndex) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			n.addEdge(g.nodes[f])
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				g.edgeForMethod(n, f, sel, impls)
			}
			return
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			n.addEdge(g.nodes[f])
		}
	case *ast.FuncLit:
		n.addEdge(g.lits[fun])
	}
}

// edgeForMethod adds the edge(s) for one method selection: precise for
// a statically bound method, fanned out over module implementers for an
// interface dispatch.
func (g *CallGraph) edgeForMethod(n *FuncNode, f *types.Func, sel *types.Selection, impls *implIndex) {
	if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
		for _, m := range impls.implementers(ifaceMethodKey{iface, f.Name()}) {
			n.addEdge(g.nodes[m])
		}
		return
	}
	n.addEdge(g.nodes[f])
}

// inspectOwn walks the AST rooted at root without descending into
// nested function literals. The literal node itself is still visited —
// it is a closure-allocation site in the enclosing function.
func inspectOwn(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(node ast.Node) bool {
		if node == nil {
			return true
		}
		fn(node)
		_, isLit := node.(*ast.FuncLit)
		return !isLit
	})
}

// Reachable returns every node reachable from the given roots
// (inclusive) in deterministic breadth-first order, together with a map
// from each reached node to the root it was first reached from (for
// diagnostic messages).
func (g *CallGraph) Reachable(roots []*FuncNode) ([]*FuncNode, map[*FuncNode]*FuncNode) {
	var order []*FuncNode
	via := make(map[*FuncNode]*FuncNode)
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if r == nil || via[r] != nil {
			continue
		}
		via[r] = r
		queue = append(queue, r)
		order = append(order, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			if via[e] != nil {
				continue
			}
			via[e] = via[n]
			queue = append(queue, e)
			order = append(order, e)
		}
	}
	return order, via
}
