package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

const fixtureModPrefix = "smartbalance/internal/analysis/testdata/src/"

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// goldenCases pairs each analyzer with its fixture package. The golden
// files record the exact expected diagnostics (file:line: analyzer:
// message); negative cases are asserted by their absence.
var goldenCases = []struct {
	name string
	an   func() *Analyzer
}{
	{"wallclock", func() *Analyzer { return Wallclock([]string{fixtureModPrefix + "wallclock"}) }},
	{"norand", NoRand},
	{"floateq", FloatEq},
	{"maporder", MapOrder},
	{"mutexcopy", MutexCopy},
	{"seedflow", SeedFlow},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.name)
			diags := Analyze(pkg, []*Analyzer{tc.an()})
			if len(diags) == 0 {
				t.Fatalf("%s: fixture produced no diagnostics; every analyzer needs a positive case", tc.name)
			}
			var sb strings.Builder
			for _, d := range diags {
				rel, err := filepath.Rel(pkg.Dir, d.File)
				if err != nil {
					t.Fatal(err)
				}
				d.File = filepath.ToSlash(filepath.Join("src", tc.name, rel))
				sb.WriteString(d.String())
				sb.WriteByte('\n')
			}
			got := sb.String()
			golden := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestWallclockOutsideSimPackages is the wallclock negative case: the
// same fixture, analyzed under the default simulation-package list
// (which does not contain the fixture path), must yield no wallclock
// findings.
func TestWallclockOutsideSimPackages(t *testing.T) {
	pkg := loadFixture(t, "wallclock")
	diags := Analyze(pkg, []*Analyzer{Wallclock(nil)})
	for _, d := range diags {
		if d.Analyzer == "wallclock" {
			t.Errorf("unexpected wallclock diagnostic outside simulation packages: %s", d)
		}
	}
}

// TestSuppressionCounted checks that valid allow annotations suppress
// (rather than drop) diagnostics: the two annotated time.Now calls in
// the fixture must be counted as suppressed.
func TestSuppressionCounted(t *testing.T) {
	pkg := loadFixture(t, "wallclock")
	pass := newPass(pkg)
	pass.analyzer = "wallclock"
	Wallclock([]string{fixtureModPrefix + "wallclock"}).Run(pass)
	if pass.Suppressed != 3 {
		t.Errorf("Suppressed = %d, want 3 (the three validly annotated calls)", pass.Suppressed)
	}
}

// TestMalformedAnnotationStillFires checks the fail-safe: an allow
// annotation without a reason must not suppress, and must itself be
// reported.
func TestMalformedAnnotationStillFires(t *testing.T) {
	pkg := loadFixture(t, "wallclock")
	diags := Analyze(pkg, []*Analyzer{Wallclock([]string{fixtureModPrefix + "wallclock"})})
	var sawEmptyReason, sawWallclockOnAnnotatedLine bool
	for _, d := range diags {
		if d.Analyzer == "sbvet" && strings.Contains(d.Message, "empty reason") {
			sawEmptyReason = true
		}
		if d.Analyzer == "wallclock" && strings.Contains(d.Message, "time.Now") {
			sawWallclockOnAnnotatedLine = true
		}
	}
	if !sawEmptyReason {
		t.Error("empty-reason annotation was not reported")
	}
	if !sawWallclockOnAnnotatedLine {
		t.Error("malformed annotation suppressed the wallclock diagnostic")
	}
}
