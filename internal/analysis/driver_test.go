package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the CI invariant behind `sbvet ./...`: the whole
// repository, analyzed with the full default suite, must produce zero
// diagnostics. Any new violation either gets fixed or gets an
// annotated //sbvet:allow with a reason.
func TestRepoIsClean(t *testing.T) {
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo violation: %s", d)
	}
}

func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "smartbalance" {
		t.Errorf("module path = %q, want smartbalance", path)
	}
	if filepath.Base(root) == "" {
		t.Error("empty module root")
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawAnalysis bool
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into testdata: %s", d)
		}
		if filepath.Base(d) == "analysis" {
			sawAnalysis = true
		}
	}
	if !sawAnalysis {
		t.Error("pattern expansion missed internal/analysis itself")
	}
	if len(dirs) < 20 {
		t.Errorf("suspiciously few packages found: %d", len(dirs))
	}
}

func TestLoadDirOutsideModuleRejected(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(l.ModuleRoot, "..")); err == nil {
		t.Error("LoadDir accepted a directory outside the module")
	}
}

// TestAnalyzerNamesRegistered keeps the allow-annotation registry in
// sync with the shipped suite.
func TestAnalyzerNamesRegistered(t *testing.T) {
	for _, a := range All() {
		if !knownAnalyzerNames[a.Name] {
			t.Errorf("analyzer %q missing from knownAnalyzerNames; its allow annotations would be rejected", a.Name)
		}
	}
	if len(All()) != 6 {
		t.Errorf("suite has %d analyzers, want 6", len(All()))
	}
}

// TestLoaderCachesPackages checks that a package imported by several
// others is type-checked once.
func TestLoaderCachesPackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.LoadDir(filepath.Join(l.ModuleRoot, "internal", "rng"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.LoadDir(filepath.Join(l.ModuleRoot, "internal", "rng"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("LoadDir re-loaded a cached package")
	}
}
