package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the CI invariant behind `sbvet ./...`: the whole
// repository, analyzed with the full default suite, must produce zero
// diagnostics. Any new violation either gets fixed or gets an
// annotated //sbvet:allow with a reason.
func TestRepoIsClean(t *testing.T) {
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo violation: %s", d)
	}
}

func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "smartbalance" {
		t.Errorf("module path = %q, want smartbalance", path)
	}
	if filepath.Base(root) == "" {
		t.Error("empty module root")
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawAnalysis bool
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into testdata: %s", d)
		}
		if filepath.Base(d) == "analysis" {
			sawAnalysis = true
		}
	}
	if !sawAnalysis {
		t.Error("pattern expansion missed internal/analysis itself")
	}
	if len(dirs) < 20 {
		t.Errorf("suspiciously few packages found: %d", len(dirs))
	}
}

func TestLoadDirOutsideModuleRejected(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(l.ModuleRoot, "..")); err == nil {
		t.Error("LoadDir accepted a directory outside the module")
	}
}

// TestAnalyzerNamesRegistered keeps the allow-annotation registry in
// sync with the shipped suite.
func TestAnalyzerNamesRegistered(t *testing.T) {
	for _, a := range All() {
		if !knownAnalyzerNames[a.Name] {
			t.Errorf("analyzer %q missing from knownAnalyzerNames; its allow annotations would be rejected", a.Name)
		}
	}
	if len(All()) != 7 {
		t.Errorf("suite has %d analyzers, want 7", len(All()))
	}
}

// TestLoaderCachesPackages checks that a package imported by several
// others is type-checked once.
func TestLoaderCachesPackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.LoadDir(filepath.Join(l.ModuleRoot, "internal", "rng"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.LoadDir(filepath.Join(l.ModuleRoot, "internal", "rng"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("LoadDir re-loaded a cached package")
	}
}

// TestCollectAllowsFixture pins the -allows inventory over the hotpath
// fixture: the one justified suppression comes back as a well-formed
// record (file, line, analyzer, reason) and nothing is flagged
// malformed.
func TestCollectAllowsFixture(t *testing.T) {
	recs, bad, err := CollectAllows(".", []string{filepath.Join("testdata", "src", "hotpath")})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed annotations: %v", bad)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d allow records, want 1: %v", len(recs), recs)
	}
	r := recs[0]
	if r.Analyzer != "hotpath" {
		t.Errorf("analyzer = %q, want hotpath", r.Analyzer)
	}
	if r.Reason != "fixture: demonstrates a justified suppression" {
		t.Errorf("reason = %q", r.Reason)
	}
	if !strings.HasSuffix(r.File, "hot.go") || r.Line != 30 {
		t.Errorf("position = %s:%d, want .../hot.go:30", r.File, r.Line)
	}
}

// TestCollectAllowsFlagsEmptyReason covers the staleness-gate half of
// the inventory: the allowdup fixture's empty-reason annotation must
// come back as a malformed-annotation diagnostic, not a record.
func TestCollectAllowsFlagsEmptyReason(t *testing.T) {
	recs, bad, err := CollectAllows(".", []string{filepath.Join("testdata", "src", "allowdup")})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("empty-reason annotation inventoried as well-formed: %v", recs)
	}
	if len(bad) != 1 {
		t.Fatalf("got %d malformed diagnostics, want 1: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "reason") {
		t.Errorf("diagnostic does not mention the missing reason: %s", bad[0])
	}
}

// TestCollectAllowsRepoInventory is the suppression-hygiene invariant
// over the real repository: every //sbvet:allow carries a non-empty
// reason and names a registered analyzer (no malformed or stale
// annotations), and the records come back position-sorted — the
// contract `sbvet -allows` audits in CI.
func TestCollectAllowsRepoInventory(t *testing.T) {
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	recs, bad, err := CollectAllows(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range bad {
		t.Errorf("malformed or stale annotation: %s", d)
	}
	if len(recs) == 0 {
		t.Fatal("repo inventory is empty; the hot-path contract suppressions should appear")
	}
	for _, r := range recs {
		if r.Reason == "" {
			t.Errorf("%s:%d: allow without a reason", r.File, r.Line)
		}
	}
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("records not position-sorted: %s:%d before %s:%d", a.File, a.Line, b.File, b.Line)
		}
	}
}
