package analysis

import (
	"go/ast"
	"go/types"
)

// syncLockTypes are the sync types whose by-value copy silently forks
// the lock state.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// MutexCopy returns the analyzer flagging by-value copies of types that
// contain a sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, or
// sync.Cond (directly or via embedded structs/arrays). A copied lock
// guards nothing: two goroutines end up serialising on different
// mutexes. Checked sites: function parameters, results, and receivers
// declared by value; assignments from existing values; call arguments;
// and range value variables. Fresh composite literals are fine.
func MutexCopy() *Analyzer {
	return &Analyzer{
		Name: "mutexcopy",
		Doc:  "flag by-value copies of types containing sync.Mutex/WaitGroup; pass pointers",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						if n.Recv != nil {
							checkFieldList(pass, n.Recv, "receiver")
						}
						checkFieldList(pass, n.Type.Params, "parameter")
						checkFieldList(pass, n.Type.Results, "result")
					case *ast.FuncLit:
						checkFieldList(pass, n.Type.Params, "parameter")
						checkFieldList(pass, n.Type.Results, "result")
					case *ast.AssignStmt:
						// Tuple assignments from a single call carry
						// function results; those are flagged at the
						// callee's signature instead.
						if len(n.Lhs) != len(n.Rhs) {
							return true
						}
						for i, rhs := range n.Rhs {
							if isBlank(n.Lhs[i]) {
								continue
							}
							if isValueCopy(rhs) && containsLock(pass.Info.TypeOf(rhs)) {
								pass.Reportf(rhs.Pos(),
									"assignment copies %s by value; it contains a sync lock — use a pointer", typeName(pass, rhs))
							}
						}
					case *ast.CallExpr:
						for _, arg := range n.Args {
							if isValueCopy(arg) && containsLock(pass.Info.TypeOf(arg)) {
								pass.Reportf(arg.Pos(),
									"call passes %s by value; it contains a sync lock — pass a pointer", typeName(pass, arg))
							}
						}
					case *ast.RangeStmt:
						if n.Value != nil && !isBlank(n.Value) && containsLock(pass.Info.TypeOf(n.Value)) {
							pass.Reportf(n.Value.Pos(),
								"range value copies %s by value; it contains a sync lock — range over indices or pointers", typeName(pass, n.Value))
						}
					}
					return true
				})
			}
		},
	}
}

// checkFieldList flags by-value fields (params/results/receivers) whose
// type contains a lock.
func checkFieldList(pass *Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		if _, ok := field.Type.(*ast.StarExpr); ok {
			continue
		}
		if containsLock(pass.Info.TypeOf(field.Type)) {
			pass.Reportf(field.Type.Pos(),
				"%s type %s is passed by value and contains a sync lock — use a pointer", kind, types.TypeString(pass.Info.TypeOf(field.Type), types.RelativeTo(pass.Pkg)))
		}
	}
}

// isValueCopy reports whether evaluating e yields a copy of an existing
// value (as opposed to a freshly constructed one). Composite literals,
// address-taking, and function calls are excluded: literals are fresh,
// &x is a pointer, and a call's result copy is reported at the callee's
// result declaration.
func isValueCopy(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isValueCopy(e.X)
	}
	return false
}

// containsLock reports whether t (or any struct field / array element
// reachable by value) is one of the sync lock types.
func containsLock(t types.Type) bool {
	return lockSearch(t, make(map[types.Type]bool))
}

func lockSearch(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockSearch(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockSearch(u.Elem(), seen)
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func typeName(pass *Pass, e ast.Expr) string {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return "value"
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
