package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ModulePass carries the state a module-tier analyzer sees: every
// package the loader has pulled in (the requested ones plus everything
// they transitively import inside the module), the call graph over all
// of them, and one Pass per package so diagnostics honour each file's
// own //sbvet:allow annotations.
//
// Passes of requested packages are shared with the per-package tier —
// a package's annotations are scanned exactly once per run, so a
// malformed annotation is reported exactly once no matter how many
// analyzers or tiers would have consulted it. Packages that were only
// loaded as dependencies get a quiet pass: their annotation problems
// are not reported here (they belong to the run that analyzes the
// package directly), but module-tier diagnostics in them are.
type ModulePass struct {
	Graph *CallGraph

	analyzer string
	passes   map[string]*Pass // by package path, all loaded module packages
	pkgs     []*Package       // deterministic order (sorted by path)
	quiet    []*Pass          // passes created here, not shared with the per-package tier
}

// newModulePass builds the module tier over everything the loader has
// loaded, reusing the given per-package passes where one exists.
func newModulePass(l *Loader, shared map[string]*Pass) *ModulePass {
	pkgs := l.Packages()
	mp := &ModulePass{
		passes: make(map[string]*Pass, len(pkgs)),
		pkgs:   pkgs,
	}
	for _, pkg := range pkgs {
		pass := shared[pkg.Path]
		if pass == nil {
			pass = newPass(pkg)
			pass.diags = nil // quiet: annotation problems belong to the package's own run
			mp.quiet = append(mp.quiet, pass)
		}
		mp.passes[pkg.Path] = pass
	}
	mp.Graph = BuildCallGraph(pkgs)
	return mp
}

// Packages returns every loaded module package in deterministic order.
func (mp *ModulePass) Packages() []*Package { return mp.pkgs }

// PassFor returns the Pass of a loaded package.
func (mp *ModulePass) PassFor(pkg *Package) *Pass { return mp.passes[pkg.Path] }

// Reportf records a diagnostic for the running module analyzer at a
// position inside pkg, honouring that file's allow annotations.
func (mp *ModulePass) Reportf(pkg *Package, at token.Pos, format string, args ...any) {
	pass := mp.passes[pkg.Path]
	pass.analyzer = mp.analyzer
	pass.Reportf(at, format, args...)
}

// HotRoots resolves every //sbvet:hotpath directive to its call-graph
// node. A directive marks the function declaration it is attached to —
// in the doc comment, on the `func` line itself, or on the line
// directly above — or, the same way, a function literal (for hot
// callbacks built on cold paths). Directives that mark nothing are
// reported so a drifted annotation cannot silently drop a root.
func (mp *ModulePass) HotRoots() []*FuncNode {
	var roots []*FuncNode
	for _, pkg := range mp.pkgs {
		pass := mp.passes[pkg.Path]
		claimed := make(map[string]map[int]bool) // filename -> mark line -> used
		claim := func(file string, line int) {
			if claimed[file] == nil {
				claimed[file] = make(map[int]bool)
			}
			claimed[file][line] = true
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				switch d := node.(type) {
				case *ast.FuncDecl:
					if file, line, ok := pass.hotRootMark(d.Doc, d.Pos()); ok {
						claim(file, line)
						if f, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
							if n := mp.Graph.NodeOf(f); n != nil {
								roots = append(roots, n)
							}
						}
					}
				case *ast.FuncLit:
					if file, line, ok := pass.hotRootMark(nil, d.Pos()); ok {
						claim(file, line)
						if n := mp.Graph.LitNode(d); n != nil {
							roots = append(roots, n)
						}
					}
				}
				return true
			})
		}
		// Every directive must have marked something.
		for _, f := range pkg.Files {
			file := pass.Fset.Position(f.Pos()).Filename
			for _, line := range pass.hotRoots[file] {
				if !claimed[file][line] {
					pass.analyzer = mp.analyzer
					pass.addDiag(token.Position{Filename: file, Line: line, Column: 1}, "sbvet",
						"//sbvet:hotpath directive marks no function; attach it to a func declaration or literal")
				}
			}
		}
	}
	// Deterministic root order regardless of discovery order.
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })
	return roots
}

// hotRootMark reports whether a //sbvet:hotpath directive attaches to a
// function whose `func` token is at fn: a mark inside the doc comment
// doc (if any), on fn's own line, or on the line directly above. It
// returns the file and mark line so callers can account for consumed
// directives.
func (p *Pass) hotRootMark(doc *ast.CommentGroup, fn token.Pos) (string, int, bool) {
	pos := p.Fset.Position(fn)
	lines := p.hotRoots[pos.Filename]
	if len(lines) == 0 {
		return "", 0, false
	}
	lo, hi := pos.Line-1, pos.Line
	if doc != nil {
		if dl := p.Fset.Position(doc.Pos()).Line; dl < lo {
			lo = dl
		}
	}
	for _, l := range lines {
		if l >= lo && l <= hi {
			return pos.Filename, l, true
		}
	}
	return "", 0, false
}
