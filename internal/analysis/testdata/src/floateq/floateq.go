// Package floateq is an sbvet fixture: exact floating-point equality
// must be flagged; integer comparison, epsilon comparison, and the NaN
// self-test must not.
package floateq

// Watts is a named float type; its underlying kind still trips the
// analyzer.
type Watts float64

// Bad compares float64 values exactly.
func Bad(a, b float64) bool {
	return a == b
}

// Bad32 compares float32 values exactly with !=.
func Bad32(a, b float32) bool {
	return a != b
}

// BadNamed compares a named float type exactly.
func BadNamed(a, b Watts) bool {
	return a == b
}

// BadMixed compares a float variable against an untyped constant.
func BadMixed(a float64) bool {
	return a == 0.5
}

// OKNaN is the one legitimate exact float comparison.
func OKNaN(a float64) bool {
	return a != a
}

// OKInt compares integers; nothing to flag.
func OKInt(a, b int) bool {
	return a == b
}

// OKEps is the recommended epsilon pattern.
func OKEps(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
