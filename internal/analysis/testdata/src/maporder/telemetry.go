package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// The telemetry-shaped cases: a metrics registry is backed by maps, and
// exporting it by ranging over them directly makes every export file
// shuffle between runs.

// BadMetricsExport streams registry entries to the writer in map order.
func BadMetricsExport(w io.Writer, counters map[string]int64) {
	for k, v := range counters {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

// BadMetricsLines accumulates export lines in map order.
func BadMetricsLines(counters map[string]int64) []string {
	var lines []string
	for k, v := range counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	return lines
}

// OKSnapshotSorted is the registry's actual export idiom: collect the
// keys, sort, then walk deterministically.
func OKSnapshotSorted(counters map[string]int64) string {
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s %d\n", k, counters[k])
	}
	return sb.String()
}
