// Package maporder is an sbvet fixture: map iteration feeding ordered
// sinks must be flagged; the collect-keys-then-sort idiom and pure
// reductions must not.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// BadAppend appends formatted entries in map order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// BadBuilder streams keys into a strings.Builder in map order.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k)
	}
	return sb.String()
}

// BadConcat grows a string in map order.
func BadConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

// OKCollectSort is the canonical fix and must not be flagged.
func OKCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OKKeyedAccumulate writes only to the slot indexed by the range key;
// iteration order cannot show through.
func OKKeyedAccumulate(groups map[string][]float64) map[string]float64 {
	sums := make(map[string]float64)
	for k, vs := range groups {
		total := 0.0
		for _, v := range vs {
			total += v
		}
		sums[k] = total
	}
	return sums
}

// OKKeyedAppend is the grouped-samples idiom from internal/exp.
func OKKeyedAppend(in map[string]float64, out map[string][]float64) {
	for k, v := range in {
		out[k] = append(out[k], v)
	}
}

// OKReduce accumulates an order-independent value.
func OKReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
