// Package norand is an sbvet fixture: math/rand must be flagged, the
// module's own rng package must not.
package norand

import (
	"math/rand"

	"smartbalance/internal/rng"
)

// Bad uses the forbidden global generator.
func Bad() int {
	return rand.Intn(10)
}

// OK draws from a caller-seeded deterministic stream.
func OK(seed uint64) int {
	return rng.New(seed).Intn(10)
}
