// Package mutexcopy is an sbvet fixture: by-value copies of
// lock-bearing types must be flagged; pointer plumbing and fresh
// composite literals must not.
package mutexcopy

import "sync"

// Guarded embeds a mutex; copying it forks the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Pool nests a lock two levels down; containsLock must recurse.
type Pool struct {
	workers [4]Guarded
}

// BadParam takes a Guarded by value.
func BadParam(g Guarded) int {
	return g.n
}

// BadReturn returns a WaitGroup-bearing value by value.
func BadReturn(p *Pool) Pool {
	return *p
}

// BadAssign dereferences into a stack copy.
func BadAssign(g *Guarded) {
	cp := *g
	cp.n++
}

// BadArg forwards a dereferenced copy into a call.
func BadArg(g *Guarded) int {
	return BadParam(*g)
}

// BadRange copies each element into the loop variable.
func BadRange(gs []Guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// OKPtr plumbs pointers end to end.
func OKPtr(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// OKFresh constructs a new value in place; no existing lock is copied.
func OKFresh() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// OKIndexRange iterates by index, touching elements through the slice.
func OKIndexRange(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
