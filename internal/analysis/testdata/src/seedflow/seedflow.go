// Package seedflow is an sbvet fixture: rng streams hardwired to
// literal or constant seeds must be flagged; seeds flowing in from
// configuration must not.
package seedflow

import "smartbalance/internal/rng"

const defaultSeed = 42

// Config is the blessed way to carry a seed.
type Config struct {
	Seed uint64
}

// BadLiteral hardcodes the seed.
func BadLiteral() *rng.Rand {
	return rng.New(12345)
}

// BadConst launders the literal through a named constant.
func BadConst() *rng.Rand {
	return rng.New(defaultSeed)
}

// BadHex hardcodes a hex seed.
func BadHex() *rng.Rand {
	return rng.New(0xDEADBEEF)
}

// BadZero builds the unusable zero value.
func BadZero() rng.Rand {
	return rng.Rand{}
}

// OKParam threads the seed from the caller.
func OKParam(seed uint64) *rng.Rand {
	return rng.New(seed)
}

// OKConfig threads the seed from configuration.
func OKConfig(cfg Config) *rng.Rand {
	return rng.New(cfg.Seed)
}

// OKDerived perturbs a configured seed; the argument is not constant.
func OKDerived(seed uint64) *rng.Rand {
	return rng.New(seed ^ 0x5EED)
}

// OKSplit derives an independent stream without touching literals.
func OKSplit(r *rng.Rand) *rng.Rand {
	return r.Split()
}

// BadInWorker seeds a fresh stream from a constant inside a worker
// goroutine; per-worker streams must Split from a configured parent.
func BadInWorker(out chan<- float64) {
	go func() {
		out <- rng.New(777).Float64()
	}()
}

// OKInWorker splits the configured parent stream per worker.
func OKInWorker(parent *rng.Rand, out chan<- float64) {
	go func(r *rng.Rand) {
		out <- r.Float64()
	}(parent.Split())
}

// arrivalSeedTag mirrors the fleet tier's per-concern stream tags.
const arrivalSeedTag = 0xA2217A1FEE75

// BadArrivalStream seeds the arrival process straight from the tag — a
// constant — instead of deriving it from the configured fleet seed.
func BadArrivalStream() *rng.Rand {
	return rng.New(arrivalSeedTag)
}

// OKArrivalStream derives the arrival stream from the configured seed
// xored with the concern tag; the argument is not constant.
func OKArrivalStream(cfg Config) *rng.Rand {
	return rng.New(cfg.Seed ^ arrivalSeedTag)
}

// OKPerNodeStreams chains independent per-node seeds off the
// configured seed with splitmix, one draw per node.
func OKPerNodeStreams(cfg Config, nodes int) []*rng.Rand {
	state := cfg.Seed
	streams := make([]*rng.Rand, nodes)
	for i := range streams {
		streams[i] = rng.New(rng.Splitmix64(&state))
	}
	return streams
}

// huntSeedTag mirrors the adversarial hunt's mutation-stream tag.
const huntSeedTag = 0x4B1D

// BadHuntStream seeds the mutation stream from the bare tag: every
// hunt would replay the same mutation sequence regardless of -seed.
func BadHuntStream() *rng.Rand {
	return rng.New(huntSeedTag)
}

// OKHuntStream derives the mutation stream from the configured hunt
// seed xored with the tag; the argument is not constant.
func OKHuntStream(cfg Config) *rng.Rand {
	return rng.New(cfg.Seed ^ huntSeedTag)
}
