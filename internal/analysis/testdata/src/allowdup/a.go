// Package allowdup is the regression fixture for empty-reason allow
// annotations: the annotation on the allocation line is malformed
// (empty reason), so it must be reported exactly once while the two
// diagnostics it would have suppressed still fire.
package allowdup

// Root ticks.
//
//sbvet:hotpath
func Root(n int) []int {
	xs := append(make([]int, 0, n), n) //sbvet:allow hotpath()
	return xs
}
