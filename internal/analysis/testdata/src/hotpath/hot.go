// Package hotpath is the fixture corpus for the hotpath analyzer and
// the call-graph builder: roots marked //sbvet:hotpath, violations in
// the root itself, in interface-dispatched implementations, in a
// cross-package callee (sub), and in an annotated closure — plus
// functions that are deliberately unreachable and must stay silent.
package hotpath

import (
	"fmt"

	"smartbalance/internal/analysis/testdata/src/hotpath/sub"
)

// Stepper is dispatched through an interface inside Tick, so every
// module implementation of Step is conservatively hot.
type Stepper interface {
	Step(n int) int
}

// Tick is the epoch root.
//
//sbvet:hotpath
func Tick(s Stepper, xs []int) int {
	total := 0
	for _, x := range xs {
		total += s.Step(x)
	}
	buf := make([]int, 8)
	buf = append(buf, total)
	scratch := make([]int, 4) //sbvet:allow hotpath(fixture: demonstrates a justified suppression)
	_ = scratch
	msg := fmt.Sprintf("t=%d", total)
	bs := []byte(msg)
	_ = string(bs)
	p := new(int)
	_ = p
	f := func() int { return total }
	_ = f()
	box(total)
	_ = vara(1, 2)
	return sub.Helper(total) + len(buf)
}

// Even and Odd are mutually recursive and clean; the graph walk must
// terminate and reach both.
//
//sbvet:hotpath
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// MakeObserver builds a hot callback on a cold path: the literal, not
// the builder, is the root.
func MakeObserver(sink []int) func(int) []int {
	//sbvet:hotpath
	return func(n int) []int {
		sink = append(sink, n)
		return sink
	}
}

// Fast is a clean Step implementation: hot via dispatch, no findings.
type Fast struct{ scale int }

func (f Fast) Step(n int) int { return n * f.scale }

// Slow allocates on every step.
type Slow struct{}

func (Slow) Step(n int) int {
	m := map[int]int{1: n}
	out := 0
	for _, v := range m {
		out += v
	}
	return out
}

// methodValueUser exercises the method-value reference edge; it is not
// reachable from any root, so its body is never checked.
func methodValueUser() func(int) int {
	f := Fast{scale: 2}
	return f.Step
}

func box(v any) { _ = v }

func vara(xs ...int) int { return len(xs) }

// Unreached allocates freely but is outside every root's call graph.
func Unreached() []int {
	return []int{1, 2, 3}
}
