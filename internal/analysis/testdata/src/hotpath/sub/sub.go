// Package sub is the cross-package half of the hotpath fixture: it is
// only hot because the root package calls into it, so every finding
// here proves facts propagate through the module call graph.
package sub

type point struct{ x int }

// Helper is reached from hotpath.Tick.
func Helper(n int) int {
	xs := []int{n, n + 1}
	p := &point{x: n}
	defer release(p)
	for i := 0; i < n; i++ {
		defer release(p)
	}
	s := "a"
	s = s + suffix(n)
	_ = s
	return xs[0] + chain(n)
}

// chain keeps one more hop in the graph so attribution survives depth.
func chain(n int) int {
	m := make(map[int]int, 1)
	m[n] = n
	return m[n]
}

func release(*point) {}

func suffix(int) string { return "!" }

// ColdHelper is never called from a root and must stay silent.
func ColdHelper() map[int]int {
	return map[int]int{1: 2}
}
