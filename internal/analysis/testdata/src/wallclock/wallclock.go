// Package wallclock is an sbvet fixture: positive and negative cases
// for the wallclock analyzer, including the suppression path.
package wallclock

import "time"

// Bad reads the wall clock twice; both calls must be flagged.
func Bad() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// Allowed carries a valid annotation and must be suppressed.
func Allowed() time.Time {
	return time.Now() //sbvet:allow wallclock(fixture: designated real-time boundary)
}

// AllowedAbove is suppressed by an annotation on the preceding line.
func AllowedAbove() time.Time {
	//sbvet:allow wallclock(fixture: annotation on the line above)
	return time.Now()
}

// MissingReason has a malformed annotation: the diagnostic stays and
// the annotation itself is reported.
func MissingReason() time.Time {
	return time.Now() //sbvet:allow wallclock()
}

// OK uses time only for arithmetic, which is deterministic and fine.
func OK() time.Duration {
	return 3 * time.Second
}

// shadowed proves the analyzer resolves the qualifier: this "time" is a
// local struct, not the time package.
func shadowed() {
	time := struct{ Now func() int }{Now: func() int { return 0 }}
	_ = time.Now()
}

// BadInWorker reads the clock inside a worker goroutine — the sweep
// engine's failure mode — and must be flagged exactly like
// straight-line code.
func BadInWorker(done chan<- time.Duration) {
	go func() {
		t0 := time.Now()
		done <- time.Since(t0)
	}()
}

// AllowedInWorker is the annotated exception inside a goroutine.
func AllowedInWorker(done chan<- time.Time) {
	go func() {
		done <- time.Now() //sbvet:allow wallclock(fixture: annotated inside a worker)
	}()
}

// BadDispatcher mirrors the fleet tier's failure mode: stamping
// request arrivals off the wall clock while parallel node-stepping
// goroutines run. Simulated timelines advance with the tick counter,
// so both reads must be flagged.
func BadDispatcher(nodes int, done chan<- time.Duration) {
	start := time.Now()
	for i := 0; i < nodes; i++ {
		go func() {
			done <- time.Since(start)
		}()
	}
}
