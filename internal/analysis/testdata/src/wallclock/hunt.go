package wallclock

import "time"

// The hunt-shaped cases: an evolutionary search is the classic place a
// wall-clock budget sneaks in ("stop after 30 seconds"), which makes
// the number of generations — and therefore the whole corpus — depend
// on host load instead of the seed.

// BadGenerationDeadline cuts the search off on host time; both reads
// must be flagged.
func BadGenerationDeadline(gens int) int {
	deadline := time.Now().Add(30 * time.Second)
	ran := 0
	for g := 0; g < gens; g++ {
		if time.Since(deadline) > 0 {
			break
		}
		ran++
	}
	return ran
}

// OKGenerationBudget bounds the search by evaluation count, a pure
// function of the configuration.
func OKGenerationBudget(gens, pop, budget int) int {
	ran := 0
	for g := 0; g < gens && ran+pop <= budget; g++ {
		ran += pop
	}
	return ran
}
