package wallclock

import "time"

// The telemetry-shaped cases: an observability layer is the classic
// place wall time sneaks into a simulation package, because "just
// timestamp the span" feels harmless. It isn't — exports stop being
// byte-identical across runs.

type span struct {
	StartNs int64
	DurNs   int64
}

// BadSpanTimestamp stamps a span from the host clock; both reads must
// be flagged.
func BadSpanTimestamp() span {
	t0 := time.Now()
	return span{StartNs: t0.UnixNano(), DurNs: int64(time.Since(t0))}
}

// OKSimulatedSpan stamps the span from simulated nanoseconds handed in
// by the kernel; no host time is involved.
func OKSimulatedSpan(nowNs, durNs int64) span {
	return span{StartNs: nowNs, DurNs: durNs}
}
