package wallclock

import "time"

// The contention-shaped cases: a shared-resource model decays its
// per-core pressure EWMAs over time, and host time is the classic
// wrong clock to decay against — the miss-rate inflation then depends
// on how fast the host ran the epoch loop, not on the simulated
// schedule, and fixed-seed runs stop being byte-identical.

// BadEwmaDecay ages the pressure average against the host clock; the
// read must be flagged.
func BadEwmaDecay(ewma, sample, tau float64, last time.Time) float64 {
	dt := time.Now().Sub(last).Seconds()
	alpha := dt / (dt + tau)
	return ewma + alpha*(sample-ewma)
}

// OKEwmaDecay ages the average against simulated nanoseconds carried
// by the caller, a pure function of the schedule.
func OKEwmaDecay(ewma, sample, tau float64, nowNs, lastNs int64) float64 {
	dt := float64(nowNs - lastNs)
	alpha := dt / (dt + tau)
	return ewma + alpha*(sample-ewma)
}
