package analysis

import "strconv"

// NoRand returns the analyzer forbidding math/rand (and math/rand/v2)
// imports anywhere in the module. Global, implicitly seeded generators
// break run-to-run reproducibility; smartbalance/internal/rng provides
// explicitly seeded, splittable streams instead.
func NoRand() *Analyzer {
	return &Analyzer{
		Name: "norand",
		Doc:  "forbid math/rand imports; use smartbalance/internal/rng seeded streams",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						pass.Reportf(imp.Pos(),
							"import of %s: use smartbalance/internal/rng, which is deterministic in its seed and splittable per goroutine", path)
					}
				}
			}
		},
	}
}
