// Package analysis implements sbvet, the repository's own static
// analyzer. It enforces the invariants the Go compiler cannot check but
// the reproduction depends on: every simulation result must be a
// deterministic function of the seed (DESIGN.md §6), and scheduler
// state must never be copied behind a lock's back.
//
// The package is deliberately stdlib-only (go/ast, go/parser, go/token,
// go/types): the build must work offline, so the usual
// golang.org/x/tools analysis framework is off the table. What ships
// instead is a small re-implementation of the same shape — a loader
// that parses and type-checks packages of this module, a Pass carrying
// the per-package state, and a set of Analyzer values that walk the
// AST and report Diagnostics.
//
// Findings can be suppressed at the call site with an annotated reason:
//
//	t := time.Now() //sbvet:allow wallclock(host-side benchmark boundary)
//
// The annotation must name the analyzer and carry a non-empty reason in
// parentheses; it applies to diagnostics on its own line or the line
// directly below it. Malformed annotations are themselves reported
// (analyzer name "sbvet") so typos cannot silently disable a check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer at one source position.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical file:line: analyzer: message form used
// by the CLI and the golden tests.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one sbvet check: a name (used in enable flags and allow
// annotations), a one-line contract, and exactly one of two run hooks.
// Run inspects a single type-checked package through its Pass;
// RunModule sees every loaded package of the module at once through a
// ModulePass (with its call graph), for checks whose facts must cross
// package boundaries.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// knownAnalyzerNames is the closed set of names valid in
// //sbvet:allow annotations. Kept as a literal (rather than derived
// from All) so Pass construction needs no analyzer instances.
var knownAnalyzerNames = map[string]bool{
	"wallclock": true,
	"norand":    true,
	"floateq":   true,
	"maporder":  true,
	"mutexcopy": true,
	"seedflow":  true,
	"hotpath":   true,
}

// allowMark is one parsed //sbvet:allow annotation.
type allowMark struct {
	line     int
	col      int
	analyzer string
	reason   string
}

// Pass carries the state one analyzer sees for one package: the parsed
// files, the type information, and the diagnostic sink with its
// suppression table.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	analyzer   string                 // name of the analyzer currently running
	allows     map[string][]allowMark // filename -> annotations in that file
	hotRoots   map[string][]int       // filename -> lines of //sbvet:hotpath marks
	diags      []Diagnostic
	Suppressed int // diagnostics silenced by a valid allow annotation
}

// newPass builds the Pass for a loaded package, scanning every comment
// for sbvet annotations. Malformed annotations are reported immediately
// under the pseudo-analyzer name "sbvet".
func newPass(pkg *Package) *Pass {
	p := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		PkgPath:  pkg.Path,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		allows:   make(map[string][]allowMark),
		hotRoots: make(map[string][]int),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p.scanComment(c)
			}
		}
	}
	return p
}

// scanComment parses a single comment for an sbvet directive.
func (p *Pass) scanComment(c *ast.Comment) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, "sbvet:") {
		return
	}
	pos := p.Fset.Position(c.Slash)
	rest := strings.TrimPrefix(text, "sbvet:")
	if strings.TrimSpace(rest) == "hotpath" {
		p.hotRoots[pos.Filename] = append(p.hotRoots[pos.Filename], pos.Line)
		return
	}
	if !strings.HasPrefix(rest, "allow ") {
		p.addDiag(pos, "sbvet", fmt.Sprintf("malformed sbvet directive %q: only //sbvet:allow name(reason) and //sbvet:hotpath are recognised", c.Text))
		return
	}
	spec := strings.TrimSpace(strings.TrimPrefix(rest, "allow "))
	open := strings.IndexByte(spec, '(')
	if open <= 0 || !strings.HasSuffix(spec, ")") {
		p.addDiag(pos, "sbvet", fmt.Sprintf("malformed allow annotation %q: want //sbvet:allow name(reason)", c.Text))
		return
	}
	name := spec[:open]
	reason := strings.TrimSpace(spec[open+1 : len(spec)-1])
	if !knownAnalyzerNames[name] {
		p.addDiag(pos, "sbvet", fmt.Sprintf("allow annotation names unknown analyzer %q", name))
		return
	}
	if reason == "" {
		p.addDiag(pos, "sbvet", fmt.Sprintf("allow annotation for %q has an empty reason; justify the suppression", name))
		return
	}
	p.allows[pos.Filename] = append(p.allows[pos.Filename], allowMark{line: pos.Line, col: pos.Column, analyzer: name, reason: reason})
}

// allowed reports whether a diagnostic of the running analyzer at the
// given position is suppressed: a valid annotation on the same line or
// on the line directly above covers it.
func (p *Pass) allowed(pos token.Position) bool {
	for _, m := range p.allows[pos.Filename] {
		if m.analyzer == p.analyzer && (m.line == pos.Line || m.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// Reportf records a diagnostic for the running analyzer unless an allow
// annotation covers the position.
func (p *Pass) Reportf(at token.Pos, format string, args ...any) {
	pos := p.Fset.Position(at)
	if p.allowed(pos) {
		p.Suppressed++
		return
	}
	p.addDiag(pos, p.analyzer, fmt.Sprintf(format, args...))
}

func (p *Pass) addDiag(pos token.Position, analyzer, msg string) {
	p.diags = append(p.diags, Diagnostic{
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: analyzer,
		Message:  msg,
	})
}

// importedFunc reports whether sel denotes pkgPath.name via a plain
// package qualifier (e.g. time.Now where "time" really is the time
// package, not a local variable shadowing it).
func (p *Pass) importedFunc(sel *ast.SelectorExpr, pkgPath, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// Analyze runs the given analyzers' per-package tier over one loaded
// package and returns the diagnostics, sorted by position. Module-tier
// analyzers are skipped (use Run, which sees the whole module).
// Annotation-parsing problems are included regardless of which
// analyzers are enabled.
func Analyze(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	pass := newPass(pkg)
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass.analyzer = a.Name
		a.Run(pass)
	}
	SortDiagnostics(pass.diags)
	return pass.diags
}

// SortDiagnostics orders diagnostics by file, line, column, and
// analyzer name so output is deterministic.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// SortAllowRecords orders allow records by file, line, and analyzer so
// inventories are deterministic.
func SortAllowRecords(rs []AllowRecord) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

// underAny reports whether pkgPath is one of the given package paths or
// nested below one of them.
func underAny(pkgPath string, roots []string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}
