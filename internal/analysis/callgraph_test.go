package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureGraph loads the hotpath fixture (root package plus its sub
// package, pulled in transitively) and builds the module call graph.
func fixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join("testdata", "src", "hotpath")); err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph(l.Packages())
}

// nodeNamed finds the unique node whose Name has the given suffix.
func nodeNamed(t *testing.T, g *CallGraph, suffix string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range g.Nodes() {
		if strings.HasSuffix(n.Name(), suffix) {
			if found != nil {
				t.Fatalf("node suffix %q is ambiguous (%s vs %s)", suffix, found.Name(), n.Name())
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named *%s", suffix)
	}
	return found
}

func hasEdge(from, to *FuncNode) bool {
	for _, e := range from.Edges() {
		if e == to {
			return true
		}
	}
	return false
}

// TestCallGraphCrossPackage checks that a direct call into another
// module package becomes an edge.
func TestCallGraphCrossPackage(t *testing.T) {
	g := fixtureGraph(t)
	tick := nodeNamed(t, g, "hotpath.Tick")
	helper := nodeNamed(t, g, "sub.Helper")
	if !hasEdge(tick, helper) {
		t.Error("missing cross-package edge Tick -> sub.Helper")
	}
}

// TestCallGraphInterfaceDispatch checks the conservative
// over-approximation: a call through Stepper.Step fans out to every
// module implementation, including the one Tick never actually
// receives.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := fixtureGraph(t)
	tick := nodeNamed(t, g, "hotpath.Tick")
	fast := nodeNamed(t, g, "(Fast).Step")
	slow := nodeNamed(t, g, "(Slow).Step")
	if !hasEdge(tick, fast) {
		t.Error("interface dispatch missed Fast.Step")
	}
	if !hasEdge(tick, slow) {
		t.Error("interface dispatch missed Slow.Step (conservative fan-out)")
	}
}

// TestCallGraphMethodValue checks that a method used as a value (not
// called) still produces an edge: the value may be invoked later.
func TestCallGraphMethodValue(t *testing.T) {
	g := fixtureGraph(t)
	user := nodeNamed(t, g, "hotpath.methodValueUser")
	fast := nodeNamed(t, g, "(Fast).Step")
	if !hasEdge(user, fast) {
		t.Error("method-value reference f.Step produced no edge")
	}
}

// TestCallGraphRecursionCycle checks that mutual recursion neither
// loses edges nor traps the reachability walk.
func TestCallGraphRecursionCycle(t *testing.T) {
	g := fixtureGraph(t)
	even := nodeNamed(t, g, "hotpath.Even")
	odd := nodeNamed(t, g, "hotpath.Odd")
	if !hasEdge(even, odd) || !hasEdge(odd, even) {
		t.Fatal("mutual recursion edges missing")
	}
	reach, via := g.Reachable([]*FuncNode{even})
	var sawEven, sawOdd bool
	for _, n := range reach {
		if n == even {
			sawEven = true
		}
		if n == odd {
			sawOdd = true
		}
	}
	if !sawEven || !sawOdd {
		t.Errorf("reachability through the cycle incomplete: even=%v odd=%v", sawEven, sawOdd)
	}
	if via[odd] != even {
		t.Errorf("via attribution of Odd = %v, want Even", via[odd])
	}
}

// TestCallGraphClosureEdge checks that a function literal is its own
// node with an edge from its enclosing function.
func TestCallGraphClosureEdge(t *testing.T) {
	g := fixtureGraph(t)
	maker := nodeNamed(t, g, "hotpath.MakeObserver")
	var lit *FuncNode
	for _, e := range maker.Edges() {
		if e.Lit != nil {
			lit = e
		}
	}
	if lit == nil {
		t.Fatal("MakeObserver has no edge to its returned closure")
	}
	if !strings.Contains(lit.Name(), "func@hot.go:") {
		t.Errorf("closure node name = %q, want func@hot.go:<line>", lit.Name())
	}
}

// TestCallGraphDeterministicOrder checks that two builds over the same
// packages produce identical node and edge orderings.
func TestCallGraphDeterministicOrder(t *testing.T) {
	render := func(g *CallGraph) string {
		var sb strings.Builder
		for _, n := range g.Nodes() {
			sb.WriteString(n.Name())
			for _, e := range n.Edges() {
				sb.WriteString(" -> ")
				sb.WriteString(e.Name())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	a := render(fixtureGraph(t))
	b := render(fixtureGraph(t))
	if a != b {
		t.Error("call-graph ordering is not deterministic across builds")
	}
}
