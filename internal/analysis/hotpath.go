package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// knownAllocFuncs maps qualified stdlib function names (as rendered by
// qualifiedFuncName) to a short reason why calling them allocates on
// every call. The table is curated, not exhaustive: it covers the
// formatting, error-construction, and reflection-backed sorting entry
// points that actually show up on scheduler hot paths.
var knownAllocFuncs = map[string]string{
	"fmt.Sprintf":            "formats into a fresh string",
	"fmt.Sprint":             "formats into a fresh string",
	"fmt.Sprintln":           "formats into a fresh string",
	"fmt.Errorf":             "allocates the error and formats its message",
	"fmt.Fprintf":            "boxes operands and buffers the output",
	"fmt.Fprint":             "boxes operands and buffers the output",
	"fmt.Fprintln":           "boxes operands and buffers the output",
	"errors.New":             "allocates the error value",
	"strconv.Itoa":           "builds a fresh string",
	"strconv.FormatInt":      "builds a fresh string",
	"strconv.FormatFloat":    "builds a fresh string",
	"strconv.FormatUint":     "builds a fresh string",
	"strconv.Quote":          "builds a fresh string",
	"sort.Slice":             "boxes the slice in an interface and allocates via reflection",
	"sort.SliceStable":       "boxes the slice in an interface and allocates via reflection",
	"sort.SliceIsSorted":     "boxes the slice in an interface and allocates via reflection",
	"strings.Split":          "allocates the result slice and substrings",
	"strings.Fields":         "allocates the result slice",
	"strings.Join":           "builds a fresh string",
	"strings.Repeat":         "builds a fresh string",
	"strings.ReplaceAll":     "builds a fresh string",
	"strings.ToUpper":        "builds a fresh string",
	"strings.ToLower":        "builds a fresh string",
	"time.(Duration).String": "builds a fresh string",
}

// Hotpath returns the module-tier analyzer enforcing the hot-path
// purity contract (DESIGN.md §11): inside the transitive call graph of
// every function marked //sbvet:hotpath, it reports the allocation and
// boxing constructs that would invalidate the paper's per-epoch
// overhead argument — composite literals of slice/map type and
// heap-escaping &T{} literals, make/new/append, closures, interface
// boxing at call sites, variadic argument slices, allocating string
// operations, calls into known-allocating stdlib functions, map
// iteration, and defer inside loops. Each finding is suppressible with
// //sbvet:allow hotpath(reason) at its line.
func Hotpath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "flag allocation and boxing reachable from //sbvet:hotpath roots",
		RunModule: func(mp *ModulePass) {
			roots := mp.HotRoots()
			if len(roots) == 0 {
				return
			}
			reach, via := mp.Graph.Reachable(roots)
			for _, n := range reach {
				checkHotFunc(mp, n, via[n])
			}
		},
	}
}

// checkHotFunc runs every hot-path check over one reachable function's
// own body (nested literals are separate graph nodes and get their own
// visit).
func checkHotFunc(mp *ModulePass, n, root *FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	suffix := ""
	if root != n {
		suffix = " [hot via " + root.Name() + "]"
	}
	report := func(at token.Pos, format string, args ...any) {
		mp.Reportf(n.Pkg, at, format+"%s", append(args, suffix)...)
	}
	info := n.Pkg.Info

	// Loop body spans, for the defer-in-loop check: a defer whose
	// position falls inside any loop body runs its allocation and its
	// deferred call once per iteration.
	type span struct{ lo, hi token.Pos }
	var loops []span
	var defers []token.Pos

	inspectOwn(body, func(node ast.Node) {
		switch e := node.(type) {
		case *ast.CompositeLit:
			switch info.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				report(e.Pos(), "slice literal allocates per evaluation; use an array or a reused buffer")
			case *types.Map:
				report(e.Pos(), "map literal allocates per evaluation; hoist it out of the hot path")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "&composite literal escapes to the heap; reuse a preallocated value")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && !isConstExpr(info, e) && isStringType(info.TypeOf(e)) {
				report(e.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(report, info, e)
		case *ast.FuncLit:
			report(e.Pos(), "closure allocates; hoist it or restructure into an explicit branch")
		case *ast.RangeStmt:
			if isMap(info.TypeOf(e.X)) {
				report(e.Pos(), "map iteration in hot path; keep a slice of keys or values instead")
			}
			loops = append(loops, span{e.Body.Pos(), e.Body.End()})
		case *ast.ForStmt:
			loops = append(loops, span{e.Body.Pos(), e.Body.End()})
		case *ast.DeferStmt:
			defers = append(defers, e.Pos())
		}
	})
	for _, d := range defers {
		for _, l := range loops {
			if d >= l.lo && d < l.hi {
				report(d, "defer inside a loop allocates and runs once per iteration; move it out")
				break
			}
		}
	}
}

// checkHotCall applies the call-site checks: allocating builtins,
// allocating conversions, the known-allocating stdlib table, interface
// boxing of arguments, and the variadic argument slice.
func checkHotCall(report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates; reuse a buffer across epochs")
			case "new":
				report(call.Pos(), "new allocates; reuse a preallocated value")
			case "append":
				report(call.Pos(), "append may grow its backing array; pre-size or reuse the buffer")
			}
			return
		}
	}
	// Conversions: string<->[]byte/[]rune copy their data.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		if src != nil {
			switch d := dst.(type) {
			case *types.Basic:
				if d.Info()&types.IsString != 0 {
					if _, ok := src.Underlying().(*types.Slice); ok {
						report(call.Pos(), "conversion to string copies the bytes")
					}
				}
			case *types.Slice:
				if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					report(call.Pos(), "conversion from string copies the bytes")
				}
			}
		}
		return
	}
	// Known-allocating stdlib calls: one focused report subsumes the
	// boxing/variadic findings the same call would also trigger.
	if callee := calleeFunc(info, call); callee != nil && callee.Pkg() != nil {
		if why, ok := knownAllocFuncs[qualifiedFuncName(callee)]; ok {
			report(call.Pos(), "calls %s, which %s", qualifiedFuncName(callee), why)
			return
		}
	}
	sig, ok := typeUnderlying(info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // spread form passes the slice through unboxed
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = params.At(np - 1).Type().Underlying().(*types.Slice).Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument boxes a %s into an interface parameter", at.String())
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		report(call.Pos(), "variadic call allocates its argument slice; spread a reused buffer instead")
	}
}

// calleeFunc resolves a call's statically known callee, or nil for
// calls through plain func values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// pointerShaped reports whether boxing a value of type t into an
// interface needs no heap allocation: pointers, channels, maps,
// functions, unsafe pointers, and zero-size values ride directly in the
// interface word.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
