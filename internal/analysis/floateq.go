package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq returns the analyzer flagging == and != between
// floating-point operands. Exact float comparison makes control flow
// depend on the last ULP of a computation — the kind of fragility that
// turns a compiler upgrade into a results diff. The one idiomatic
// exception, the self-comparison NaN test (x != x), is permitted.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "flag ==/!= between floating-point operands; compare with an epsilon",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
						return true
					}
					if isSelfCompare(be.X, be.Y) {
						return true // NaN test: the one exact float comparison that is correct
					}
					if isFloat(pass.Info.TypeOf(be.X)) || isFloat(pass.Info.TypeOf(be.Y)) {
						pass.Reportf(be.OpPos,
							"floating-point %s comparison: exact equality is brittle; compare with an epsilon (math.Abs(a-b) < eps)", be.Op)
					}
					return true
				})
			}
		},
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isSelfCompare reports whether x and y are the same plain identifier,
// as in the NaN check v != v.
func isSelfCompare(x, y ast.Expr) bool {
	xi, ok1 := x.(*ast.Ident)
	yi, ok2 := y.(*ast.Ident)
	return ok1 && ok2 && xi.Name == yi.Name
}
