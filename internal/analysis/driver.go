package analysis

import (
	"path/filepath"
	"strings"
)

// All returns the full sbvet analyzer suite in its default
// configuration.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock(nil),
		NoRand(),
		FloatEq(),
		MapOrder(),
		MutexCopy(),
		SeedFlow(),
		Hotpath(),
	}
}

// Run loads every package matched by patterns (resolved relative to
// dir) and applies the given analyzers: first the per-package tier on
// each requested package, then the module tier (analyzers with a
// RunModule hook) once over everything the loader pulled in.
// Diagnostics come back sorted and deduplicated, with file paths
// relative to the module root so output is stable across machines.
//
// Each package's annotations are scanned exactly once per run — the
// module tier reuses the per-package Pass — so annotation problems
// (unknown analyzer, empty reason) are reported once, not once per
// tier or per diagnostic they would have suppressed.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgDirs, err := ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	passes := make(map[string]*Pass)
	var order []*Pass
	for _, d := range pkgDirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		if passes[pkg.Path] != nil {
			continue
		}
		pass := newPass(pkg)
		passes[pkg.Path] = pass
		order = append(order, pass)
	}
	for _, pass := range order {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass.analyzer = a.Name
			a.Run(pass)
		}
	}
	var mp *ModulePass
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if mp == nil {
			mp = newModulePass(l, passes)
		}
		mp.analyzer = a.Name
		a.RunModule(mp)
	}
	var diags []Diagnostic
	seen := make(map[Diagnostic]bool)
	collect := func(ds []Diagnostic) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				diags = append(diags, d)
			}
		}
	}
	for _, pass := range order {
		collect(pass.diags)
	}
	if mp != nil {
		for _, pass := range mp.quiet {
			collect(pass.diags)
		}
	}
	for i := range diags {
		if rel, err := filepath.Rel(l.ModuleRoot, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// AllowRecord is one inventoried //sbvet:allow annotation.
type AllowRecord struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// CollectAllows loads every package matched by patterns and inventories
// its //sbvet:allow annotations (the audit surface behind `sbvet
// -allows`). Well-formed annotations come back as records sorted by
// position; malformed ones — unknown analyzer name, empty reason, bad
// syntax — come back as diagnostics, so the inventory can double as a
// staleness gate. File paths are relative to the module root.
func CollectAllows(dir string, patterns []string) ([]AllowRecord, []Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	pkgDirs, err := ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	rel := func(file string) string {
		if r, err := filepath.Rel(l.ModuleRoot, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return file
	}
	var recs []AllowRecord
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, d := range pkgDirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, nil, err
		}
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		pass := newPass(pkg)
		for _, f := range pkg.Files {
			file := pkg.Fset.Position(f.Pos()).Filename
			for _, m := range pass.allows[file] {
				recs = append(recs, AllowRecord{File: rel(file), Line: m.line, Analyzer: m.analyzer, Reason: m.reason})
			}
		}
		for _, dg := range pass.diags {
			dg.File = rel(dg.File)
			diags = append(diags, dg)
		}
	}
	SortAllowRecords(recs)
	SortDiagnostics(diags)
	return recs, diags, nil
}
