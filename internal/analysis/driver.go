package analysis

import (
	"path/filepath"
	"strings"
)

// All returns the full sbvet analyzer suite in its default
// configuration.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock(nil),
		NoRand(),
		FloatEq(),
		MapOrder(),
		MutexCopy(),
		SeedFlow(),
	}
}

// Run loads every package matched by patterns (resolved relative to
// dir) and applies the given analyzers. Diagnostics come back sorted,
// with file paths relative to the module root so output is stable
// across machines.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgDirs, err := ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, d := range pkgDirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		diags = append(diags, Analyze(pkg, analyzers)...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(l.ModuleRoot, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}
