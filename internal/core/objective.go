package core

import (
	"errors"
	"fmt"

	"smartbalance/internal/arch"
)

// ObjectiveMode selects how per-core throughput/power pairs aggregate
// into the scalar objective J_E of Eq. (10)-(11).
//
// The paper states the goal as "maximizing overall energy efficiency
// (i.e., IPS/Watt or Instructions per Joule)" and formalises it as a
// weighted sum J_E = Σ ω_j IPS_j/P_j. Read literally, the sum of
// per-core ratios never rewards emptying (power-gating) an inefficient
// core — an empty core merely contributes 0 while a populated one adds
// a positive term — so it cannot reproduce the measured overall-IPS/W
// gains of Fig. 4. GlobalRatio therefore optimises the overall ratio
// Σ_j ω_j·IPS_j / Σ_j P_j (with quiescent cores contributing their
// gated leakage to the denominator), which is the quantity the paper's
// evaluation actually measures; PerCoreRatioSum retains the literal
// Eq. (11) form as an ablation.
type ObjectiveMode int

// Objective modes. Section 4.3: "An objective or a cost function for
// the allocation problem can be defined in several ways according to
// the desired optimization goals."
const (
	// GlobalRatio maximises overall IPS/Watt (default).
	GlobalRatio ObjectiveMode = iota
	// PerCoreRatioSum maximises the literal Eq. (11) weighted sum of
	// per-core IPS/Watt ratios.
	PerCoreRatioSum
	// MaxThroughput maximises aggregate IPS, ignoring power — the
	// performance-first goal the related work (Becchi, Kumar) pursues.
	MaxThroughput
)

// String names the mode.
func (m ObjectiveMode) String() string {
	switch m {
	case GlobalRatio:
		return "global-ratio"
	case PerCoreRatioSum:
		return "per-core-ratio-sum"
	case MaxThroughput:
		return "max-throughput"
	default:
		return fmt.Sprintf("ObjectiveMode(%d)", int(m))
	}
}

// Problem is the allocation-optimisation input assembled by the
// predict phase: the throughput matrix S(k) (Eq. 2), the power matrix
// P(k) (Eq. 3), the thread utilisation vector U, per-core idle power,
// and the objective weights ω_j of Eq. (11).
type Problem struct {
	// IPS[i][j] is thread i's (measured or predicted) throughput on
	// core j, in instructions per second.
	IPS [][]float64
	// Power[i][j] is thread i's (measured or predicted) average power
	// on core j, in watts.
	Power [][]float64
	// Util[i] is thread i's runnable fraction of an epoch in [0, 1].
	Util []float64
	// IdlePower[j] is core j's power when it has nothing to run
	// (quiescent-state leakage).
	IdlePower []float64
	// Weights are the ω_j of Eq. (11); nil means all ones.
	Weights []float64
	// Mode selects the aggregation (zero value: GlobalRatio).
	Mode ObjectiveMode
	// Allowed[i][j], when non-nil, restricts thread i to cores with a
	// true entry — the affinity constraints the paper notes "can easily
	// be included". nil (or a nil row) means unrestricted.
	Allowed [][]bool
	// Contention, when non-nil, adds the shared-resource interference
	// term: candidate allocations that oversubscribe an LLC domain's
	// capacity or bandwidth have their throughput discounted. nil keeps
	// the contention-blind objective, bit-for-bit.
	Contention *ContentionTerm
}

// ContentionTerm is the optimiser-side view of the LLC-domain model
// (internal/contention): the static domain partition plus per-thread
// sensed appetite estimates. The optimiser discounts each domain's
// throughput contribution by a penalty that grows with the pooled
// working set beyond the domain LLC and with bandwidth utilisation —
// the same mechanisms the machine-side model applies to ground truth,
// so minimising predicted interference minimises real interference.
type ContentionTerm struct {
	// DomainOf maps core j -> LLC-domain index.
	DomainOf []int32
	// DomLLCKB and DomBWGBps are the per-domain capacities.
	DomLLCKB  []float64
	DomBWGBps []float64
	// WsKB[i] is thread i's estimated data working set (KB), inverted
	// from its sensed L1D miss rate; BwGBps[i] its estimated memory
	// bandwidth demand (sensed traffic scaled by utilisation).
	WsKB   []float64
	BwGBps []float64
	// MissSlope scales the capacity-oversubscription penalty;
	// PressureCap and MaxBWUtil clamp the two terms.
	MissSlope   float64
	PressureCap float64
	MaxBWUtil   float64
}

// penalty returns the throughput discount factor for a core whose LLC
// domain d carries co-runner working set wsKB and bandwidth demand
// bwGBps beyond the core's own (the same self-exclusion the machine
// model applies: a core alone in its domain sees factor exactly 1, and
// a thread is never charged for pressure it generates itself — only
// for what its co-runners inflict on it).
func (t *ContentionTerm) penalty(d int, wsKB, bwGBps float64) float64 {
	pressure := wsKB / t.DomLLCKB[d]
	if pressure < 0 {
		pressure = 0
	} else if pressure > t.PressureCap {
		pressure = t.PressureCap
	}
	util := bwGBps / t.DomBWGBps[d]
	if util < 0 {
		util = 0
	} else if util > t.MaxBWUtil {
		util = t.MaxBWUtil
	}
	return 1 / (1 + t.MissSlope*pressure + util/(1-util))
}

// validate checks the term's shape against m threads and n cores.
func (t *ContentionTerm) validate(m, n int) error {
	if len(t.DomainOf) != n {
		return errContentionShape
	}
	nd := len(t.DomLLCKB)
	if nd == 0 || len(t.DomBWGBps) != nd {
		return errContentionShape
	}
	for _, d := range t.DomainOf {
		if int(d) < 0 || int(d) >= nd {
			return errContentionShape
		}
	}
	if len(t.WsKB) != m || len(t.BwGBps) != m {
		return errContentionShape
	}
	for d := 0; d < nd; d++ {
		if t.DomLLCKB[d] <= 0 || t.DomBWGBps[d] <= 0 {
			return errContentionDomain
		}
	}
	for i := 0; i < m; i++ {
		if t.WsKB[i] < 0 || t.BwGBps[i] < 0 || !isFinite(t.WsKB[i]) || !isFinite(t.BwGBps[i]) {
			return errContentionThread
		}
	}
	if t.MissSlope < 0 || t.PressureCap <= 0 || t.MaxBWUtil <= 0 || t.MaxBWUtil >= 1 {
		return errContentionShape
	}
	return nil
}

// AllowedOn reports whether thread i may run on core j.
func (p *Problem) AllowedOn(i, j int) bool {
	if p.Allowed == nil || p.Allowed[i] == nil {
		return true
	}
	return j < len(p.Allowed[i]) && p.Allowed[i][j]
}

// NumThreads returns m.
func (p *Problem) NumThreads() int { return len(p.IPS) }

// NumCores returns n.
func (p *Problem) NumCores() int { return len(p.IdlePower) }

// Validation sentinels. Predeclared so the per-epoch Validate call
// constructs nothing on its accepting path (hot-path purity contract);
// the shaped fmt.Errorf diagnostics below fire only on rejected input.
var (
	errNoThreads    = errors.New("core: problem with no threads")
	errNoCores      = errors.New("core: problem with no cores")
	errRowCounts    = errors.New("core: matrix row counts disagree")
	errWeightWidth  = errors.New("core: weight vector width != cores")
	errAffinityRows = errors.New("core: affinity matrix row count != threads")
	errAllocLen     = errors.New("core: allocation length != thread count")
	errAllocCore    = errors.New("core: allocation addresses invalid core")

	errContentionShape  = errors.New("core: contention term shape mismatch")
	errContentionDomain = errors.New("core: contention domain with non-positive capacity")
	errContentionThread = errors.New("core: contention thread estimate negative or non-finite")
)

// Validate checks the problem's shape and value domains.
func (p *Problem) Validate() error {
	m := len(p.IPS)
	if m == 0 {
		return errNoThreads
	}
	n := len(p.IdlePower)
	if n == 0 {
		return errNoCores
	}
	if len(p.Power) != m || len(p.Util) != m {
		return errRowCounts
	}
	for i := 0; i < m; i++ {
		if len(p.IPS[i]) != n || len(p.Power[i]) != n {
			return fmt.Errorf("core: thread %d row width != %d cores", i, n) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
		}
		if p.Util[i] < 0 || p.Util[i] > 1 {
			return fmt.Errorf("core: thread %d utilisation %g outside [0,1]", i, p.Util[i]) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
		}
		for j := 0; j < n; j++ {
			if p.IPS[i][j] < 0 || p.Power[i][j] < 0 {
				return fmt.Errorf("core: negative entry at (%d,%d)", i, j) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
			}
		}
	}
	if p.Weights != nil && len(p.Weights) != n {
		return errWeightWidth
	}
	for j := range p.IdlePower {
		if p.IdlePower[j] < 0 {
			return fmt.Errorf("core: negative idle power on core %d", j) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
		}
	}
	if p.Allowed != nil {
		if len(p.Allowed) != m {
			return errAffinityRows
		}
		for i, row := range p.Allowed {
			if row == nil {
				continue
			}
			if len(row) != n {
				return fmt.Errorf("core: thread %d affinity row width != cores", i) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
			}
			any := false
			for _, ok := range row {
				if ok {
					any = true
					break
				}
			}
			if !any {
				return fmt.Errorf("core: thread %d has an empty affinity set", i) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
			}
		}
	}
	if p.Contention != nil {
		if err := p.Contention.validate(m, n); err != nil {
			return err
		}
	}
	return nil
}

// weight returns ω_j.
func (p *Problem) weight(j int) float64 {
	if p.Weights == nil {
		return 1
	}
	return p.Weights[j]
}

// Allocation is the Ψ(k) of Eq. (1), encoded as thread -> core.
type Allocation []arch.CoreID

// Clone returns a copy.
func (a Allocation) Clone() Allocation {
	out := make(Allocation, len(a)) //sbvet:allow hotpath(ownership-transferring copy; reached in-epoch only through the oracle ablation balancer, outside the zero-alloc contract)
	copy(out, a)
	return out
}

// Valid reports whether every entry addresses one of n cores.
func (a Allocation) Valid(n int) bool {
	for _, c := range a {
		if int(c) < 0 || int(c) >= n {
			return false
		}
	}
	return true
}

// coreShare computes, for the threads mapped to one core, each
// thread's share of core time under CFS time-sharing: fair water-
// filling of one core-second per second among threads capped by their
// utilisation demand. utils must be the demands of the threads on this
// core; the return value is aligned with it. Allocating convenience
// form; the evaluator's hot path uses coreShareInto with owned scratch.
func coreShare(utils []float64) []float64 {
	shares := make([]float64, len(utils))
	coreShareInto(shares, utils, make([]int, len(utils)))
	return shares
}

// coreShareInto computes the fair shares into shares (len(utils)),
// using idx (len(utils)) as index-sort scratch. The index sort is an
// insertion sort: per-core thread counts are small (tens at most),
// where it beats sort.Slice anyway — and unlike sort.Slice it costs no
// closure and no interface boxing on the epoch path.
func coreShareInto(shares, utils []float64, idx []int) {
	n := len(utils)
	if n == 0 {
		return
	}
	// Sort indices by demand ascending; threads below the fair share
	// take their demand, releasing capacity to the rest.
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		k := idx[i]
		j := i - 1
		for j >= 0 && utils[idx[j]] > utils[k] {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = k
	}
	capacity := 1.0
	remaining := n
	for _, i := range idx {
		fair := capacity / float64(remaining)
		s := utils[i]
		if s > fair {
			s = fair
		}
		shares[i] = s
		capacity -= s
		remaining--
	}
}

// coreEval computes one core's expected throughput (weighted, in GIPS)
// and power (W) for the threads mapped to it, using the evaluator's
// scratch buffers. An empty core draws its quiescent idle power and
// produces nothing.
func (e *Evaluator) coreEval(j int, threads []int) (gips, power float64) {
	p := e.prob
	if len(threads) == 0 {
		return 0, p.IdlePower[j]
	}
	e.utilScratch = growFloats(e.utilScratch, len(threads))
	e.shareScratch = growFloats(e.shareScratch, len(threads))
	e.idxScratch = growInts(e.idxScratch, len(threads))
	for k, i := range threads {
		e.utilScratch[k] = p.Util[i]
	}
	coreShareInto(e.shareScratch, e.utilScratch, e.idxScratch)
	var ips, busy float64
	for k, i := range threads {
		s := e.shareScratch[k]
		ips += s * p.IPS[i][j]
		power += s * p.Power[i][j]
		busy += s
	}
	power += (1 - busy) * p.IdlePower[j]
	return p.weight(j) * ips / 1e9, power
}

// Evaluator maintains an allocation's objective value with O(changed
// cores) incremental updates — the paper's "keeping track of previous
// computations and obtaining a new evaluation only by performing
// computations induced by the latest swap on Ψ".
type Evaluator struct {
	prob   *Problem
	alloc  Allocation
	byCore [][]int // thread indices per core

	coreGIPS      []float64
	corePow       []float64
	prevPopulated []bool
	sumGIPS       float64
	sumPow        float64
	ratioSum      float64 // Σ ω_j IPS_j/P_j for PerCoreRatioSum mode

	// Contention aggregates, maintained only when the problem carries a
	// ContentionTerm (zero-length otherwise): the pooled thread
	// appetites (working set, bandwidth) per LLC domain and per core. A
	// move or swap touches at most two cores and two domains, so these
	// stay O(1) to maintain; the penalised objective is an O(cores)
	// fold where core j's discount is driven by its domain aggregate
	// minus its own contribution (self-exclusion, mirroring the
	// machine-side model).
	domWs  []float64
	domBw  []float64
	coreWs []float64
	coreBw []float64

	// Scratch reused across Reset calls and delta previews, so a
	// controller-owned evaluator allocates nothing in steady state
	// (DESIGN.md §11). utilScratch/shareScratch/idxScratch back
	// coreEval; previewA/previewB hold hypothetical core member lists
	// during MoveDelta/SwapDelta.
	utilScratch  []float64
	shareScratch []float64
	idxScratch   []int
	previewA     []int
	previewB     []int
}

// NewEvaluator builds an evaluator for the initial allocation.
func NewEvaluator(prob *Problem, initial Allocation) (*Evaluator, error) {
	e := &Evaluator{}
	if err := e.Reset(prob, initial); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-targets the evaluator at a (possibly different) problem and
// initial allocation, reusing every internal buffer whose capacity
// suffices. A controller that owns one Evaluator and Resets it per
// epoch therefore stops paying the construction allocations after the
// first few epochs.
func (e *Evaluator) Reset(prob *Problem, initial Allocation) error {
	if err := prob.Validate(); err != nil {
		return err
	}
	if len(initial) != prob.NumThreads() {
		return errAllocLen
	}
	if !initial.Valid(prob.NumCores()) {
		return errAllocCore
	}
	n := prob.NumCores()
	e.prob = prob
	e.alloc = growAlloc(e.alloc, len(initial))
	copy(e.alloc, initial)
	e.byCore = growIntRows(e.byCore, n)
	for j := range e.byCore {
		e.byCore[j] = e.byCore[j][:0]
	}
	e.coreGIPS = growFloats(e.coreGIPS, n)
	e.corePow = growFloats(e.corePow, n)
	e.prevPopulated = growBools(e.prevPopulated, n)
	e.sumGIPS, e.sumPow, e.ratioSum = 0, 0, 0
	for i, c := range e.alloc {
		e.byCore[c] = append(e.byCore[c], i) //sbvet:allow hotpath(per-core member rows keep their high-water capacity across Resets)
	}
	for j := range e.coreGIPS {
		g, w := e.coreEval(j, e.byCore[j])
		e.coreGIPS[j] = g
		e.corePow[j] = w
		e.sumGIPS += g
		e.sumPow += w
		e.prevPopulated[j] = len(e.byCore[j]) > 0
		e.ratioSum += ratio(g, w, e.prevPopulated[j])
	}
	if t := prob.Contention; t != nil {
		nd := len(t.DomLLCKB)
		e.domWs = growFloats(e.domWs, nd)
		e.domBw = growFloats(e.domBw, nd)
		for d := 0; d < nd; d++ {
			e.domWs[d], e.domBw[d] = 0, 0
		}
		e.coreWs = growFloats(e.coreWs, n)
		e.coreBw = growFloats(e.coreBw, n)
		for j := 0; j < n; j++ {
			e.coreWs[j], e.coreBw[j] = 0, 0
		}
		for i, c := range e.alloc {
			d := t.DomainOf[c]
			e.domWs[d] += t.WsKB[i]
			e.domBw[d] += t.BwGBps[i]
			e.coreWs[c] += t.WsKB[i]
			e.coreBw[c] += t.BwGBps[i]
		}
	} else {
		e.domWs = e.domWs[:0]
		e.domBw = e.domBw[:0]
		e.coreWs = e.coreWs[:0]
		e.coreBw = e.coreBw[:0]
	}
	return nil
}

// ratio is the per-core Eq. (11) term: 0 for an empty core.
func ratio(gips, pow float64, populated bool) float64 {
	if !populated || pow <= 0 {
		return 0
	}
	return gips / pow
}

// Objective returns the current J_E under the problem's mode. With a
// contention term the throughput side is a penalty-discounted fold
// over cores — each core discounted by the co-runner appetite pooled
// in its LLC domain, its own contribution excluded — while power is
// never discounted (contention wastes cycles, it does not save
// energy).
func (e *Evaluator) Objective() float64 {
	if t := e.prob.Contention; t != nil {
		var penG, penR float64
		for j := range e.coreGIPS {
			d := int(t.DomainOf[j])
			pen := t.penalty(d, e.domWs[d]-e.coreWs[j], e.domBw[d]-e.coreBw[j])
			penG += pen * e.coreGIPS[j]
			penR += pen * ratio(e.coreGIPS[j], e.corePow[j], e.prevPopulated[j])
		}
		switch e.prob.Mode {
		case PerCoreRatioSum:
			return penR
		case MaxThroughput:
			return penG
		default:
			if e.sumPow <= 0 {
				return 0
			}
			return penG / e.sumPow
		}
	}
	switch e.prob.Mode {
	case PerCoreRatioSum:
		return e.ratioSum
	case MaxThroughput:
		return e.sumGIPS
	default:
		if e.sumPow <= 0 {
			return 0
		}
		return e.sumGIPS / e.sumPow
	}
}

// Allocation returns a copy of the current allocation.
func (e *Evaluator) Allocation() Allocation { return e.alloc.Clone() }

// objectiveWith computes the objective if cores a and b had the given
// replacement (gips, pow, populated) values.
func (e *Evaluator) objectiveWith(a, b int, ga, wa float64, na bool, gb, wb float64, nb bool) float64 {
	switch e.prob.Mode {
	case PerCoreRatioSum:
		s := e.ratioSum
		s -= ratio(e.coreGIPS[a], e.corePow[a], len(e.byCore[a]) > 0)
		s -= ratio(e.coreGIPS[b], e.corePow[b], len(e.byCore[b]) > 0)
		s += ratio(ga, wa, na) + ratio(gb, wb, nb)
		return s
	case MaxThroughput:
		return e.sumGIPS - e.coreGIPS[a] - e.coreGIPS[b] + ga + gb
	default:
		g := e.sumGIPS - e.coreGIPS[a] - e.coreGIPS[b] + ga + gb
		w := e.sumPow - e.corePow[a] - e.corePow[b] + wa + wb
		if w <= 0 {
			return 0
		}
		return g / w
	}
}

// objectiveWithCont computes the penalised objective if cores a and b
// had the given replacement values and their pooled thread appetites
// (and so their LLC domains') shifted by the given deltas. The deltas
// land on the domain aggregates of every *other* core in the affected
// domains; for cores a and b themselves the domain and own-core shifts
// cancel (self-exclusion: a core's discount never reflects its own
// threads, only its co-runners').
func (e *Evaluator) objectiveWithCont(a, b int, ga, wa float64, na bool, gb, wb float64, nb bool, dwsA, dbwA, dwsB, dbwB float64) float64 {
	t := e.prob.Contention
	da, db := int(t.DomainOf[a]), int(t.DomainOf[b])
	var penG, penR float64
	for j := range e.coreGIPS {
		g, w, pop := e.coreGIPS[j], e.corePow[j], e.prevPopulated[j]
		if j == a {
			g, w, pop = ga, wa, na
		} else if j == b {
			g, w, pop = gb, wb, nb
		}
		d := int(t.DomainOf[j])
		ws := e.domWs[d] - e.coreWs[j]
		bw := e.domBw[d] - e.coreBw[j]
		if d == da && j != a {
			ws += dwsA
			bw += dbwA
		}
		if d == db && j != b {
			ws += dwsB
			bw += dbwB
		}
		pen := t.penalty(d, ws, bw)
		penG += pen * g
		penR += pen * ratio(g, w, pop)
	}
	switch e.prob.Mode {
	case PerCoreRatioSum:
		return penR
	case MaxThroughput:
		return penG
	default:
		w := e.sumPow - e.corePow[a] - e.corePow[b] + wa + wb
		if w <= 0 {
			return 0
		}
		return penG / w
	}
}

// MoveDelta returns the objective change of moving thread i to core
// dst, without applying it.
func (e *Evaluator) MoveDelta(i int, dst arch.CoreID) float64 {
	src := e.alloc[i]
	if src == dst {
		return 0
	}
	e.previewA = removeFromInto(e.previewA, e.byCore[src], i)
	nd := len(e.byCore[dst])
	e.previewB = growInts(e.previewB, nd+1)
	copy(e.previewB, e.byCore[dst])
	e.previewB[nd] = i
	ga, wa := e.coreEval(int(src), e.previewA)
	gb, wb := e.coreEval(int(dst), e.previewB)
	if t := e.prob.Contention; t != nil {
		return e.objectiveWithCont(int(src), int(dst), ga, wa, len(e.previewA) > 0, gb, wb, true,
			-t.WsKB[i], -t.BwGBps[i], t.WsKB[i], t.BwGBps[i]) - e.Objective()
	}
	return e.objectiveWith(int(src), int(dst), ga, wa, len(e.previewA) > 0, gb, wb, true) - e.Objective()
}

// Move applies the move of thread i to core dst, updating caches, and
// returns the objective delta.
func (e *Evaluator) Move(i int, dst arch.CoreID) float64 {
	src := e.alloc[i]
	if src == dst {
		return 0
	}
	before := e.Objective()
	e.byCore[src] = removeInPlace(e.byCore[src], i)
	e.byCore[dst] = append(e.byCore[dst], i) //sbvet:allow hotpath(per-core member rows keep their high-water capacity; growth stops after the first epochs)
	e.alloc[i] = dst
	if t := e.prob.Contention; t != nil {
		ds, dd := t.DomainOf[src], t.DomainOf[dst]
		e.domWs[ds] -= t.WsKB[i]
		e.domBw[ds] -= t.BwGBps[i]
		e.domWs[dd] += t.WsKB[i]
		e.domBw[dd] += t.BwGBps[i]
		e.coreWs[src] -= t.WsKB[i]
		e.coreBw[src] -= t.BwGBps[i]
		e.coreWs[dst] += t.WsKB[i]
		e.coreBw[dst] += t.BwGBps[i]
	}
	e.recompute(int(src))
	e.recompute(int(dst))
	return e.Objective() - before
}

// SwapDelta returns the objective change of swapping the cores of
// threads i and k without applying it.
func (e *Evaluator) SwapDelta(i, k int) float64 {
	ci, ck := e.alloc[i], e.alloc[k]
	if ci == ck {
		return 0
	}
	e.previewA = removeFromInto(e.previewA, e.byCore[ci], i)
	na := len(e.previewA)
	e.previewA = growInts(e.previewA, na+1)
	e.previewA[na] = k
	e.previewB = removeFromInto(e.previewB, e.byCore[ck], k)
	nb := len(e.previewB)
	e.previewB = growInts(e.previewB, nb+1)
	e.previewB[nb] = i
	ga, wa := e.coreEval(int(ci), e.previewA)
	gb, wb := e.coreEval(int(ck), e.previewB)
	if t := e.prob.Contention; t != nil {
		return e.objectiveWithCont(int(ci), int(ck), ga, wa, true, gb, wb, true,
			t.WsKB[k]-t.WsKB[i], t.BwGBps[k]-t.BwGBps[i],
			t.WsKB[i]-t.WsKB[k], t.BwGBps[i]-t.BwGBps[k]) - e.Objective()
	}
	return e.objectiveWith(int(ci), int(ck), ga, wa, true, gb, wb, true) - e.Objective()
}

// Swap applies the swap of threads i and k and returns the delta.
func (e *Evaluator) Swap(i, k int) float64 {
	ci, ck := e.alloc[i], e.alloc[k]
	if ci == ck {
		return 0
	}
	before := e.Objective()
	e.byCore[ci] = append(removeInPlace(e.byCore[ci], i), k) //sbvet:allow hotpath(the in-place removal freed one slot, so this append never grows)
	e.byCore[ck] = append(removeInPlace(e.byCore[ck], k), i) //sbvet:allow hotpath(the in-place removal freed one slot, so this append never grows)
	e.alloc[i], e.alloc[k] = ck, ci
	if t := e.prob.Contention; t != nil {
		di, dk := t.DomainOf[ci], t.DomainOf[ck]
		e.domWs[di] += t.WsKB[k] - t.WsKB[i]
		e.domBw[di] += t.BwGBps[k] - t.BwGBps[i]
		e.domWs[dk] += t.WsKB[i] - t.WsKB[k]
		e.domBw[dk] += t.BwGBps[i] - t.BwGBps[k]
		e.coreWs[ci] += t.WsKB[k] - t.WsKB[i]
		e.coreBw[ci] += t.BwGBps[k] - t.BwGBps[i]
		e.coreWs[ck] += t.WsKB[i] - t.WsKB[k]
		e.coreBw[ck] += t.BwGBps[i] - t.BwGBps[k]
	}
	e.recompute(int(ci))
	e.recompute(int(ck))
	return e.Objective() - before
}

// recompute refreshes core j's cached contribution after a membership
// change.
func (e *Evaluator) recompute(j int) {
	oldG, oldW := e.coreGIPS[j], e.corePow[j]
	oldR := ratio(oldG, oldW, e.prevPopulated[j])
	e.sumGIPS -= oldG
	e.sumPow -= oldW
	e.ratioSum -= oldR
	g, w := e.coreEval(j, e.byCore[j])
	e.coreGIPS[j] = g
	e.corePow[j] = w
	e.sumGIPS += g
	e.sumPow += w
	pop := len(e.byCore[j]) > 0
	e.ratioSum += ratio(g, w, pop)
	e.prevPopulated[j] = pop
}

// removeFromInto writes s minus the first occurrence of v into dst
// (reusing dst's backing array) and returns it. The input slice is not
// modified, so delta previews stay side-effect free.
func removeFromInto(dst, s []int, v int) []int {
	dst = growInts(dst, len(s))
	k := 0
	removed := false
	for _, x := range s {
		if !removed && x == v {
			removed = true
			continue
		}
		dst[k] = x
		k++
	}
	return dst[:k]
}

// removeInPlace deletes the first occurrence of v from s, preserving
// order, without allocating.
func removeInPlace(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			copy(s[i:], s[i+1:])
			return s[:len(s)-1]
		}
	}
	return s
}

// EvaluateAllocation computes J_E of an allocation from scratch; the
// reference implementation the incremental evaluator is tested against,
// and the scorer used by the brute-force oracle.
func EvaluateAllocation(prob *Problem, alloc Allocation) (float64, error) {
	e, err := NewEvaluator(prob, alloc)
	if err != nil {
		return 0, err
	}
	return e.Objective(), nil
}

// BruteForceOptimal enumerates all n^m allocations and returns the best
// one — tractable only for tiny problems, used by the Fig. 8
// distance-to-optimal analysis and by tests.
func BruteForceOptimal(prob *Problem) (Allocation, float64, error) {
	if err := prob.Validate(); err != nil {
		return nil, 0, err
	}
	m, n := prob.NumThreads(), prob.NumCores()
	total := 1
	for i := 0; i < m; i++ {
		total *= n
		if total > 20_000_000 {
			return nil, 0, fmt.Errorf("core: brute force infeasible for n=%d m=%d", n, m)
		}
	}
	best := make(Allocation, m)
	cur := make(Allocation, m)
	bestScore := -1.0
enumerate:
	for idx := 0; idx < total; idx++ {
		x := idx
		for i := 0; i < m; i++ {
			cur[i] = arch.CoreID(x % n)
			if !prob.AllowedOn(i, int(cur[i])) {
				continue enumerate
			}
			x /= n
		}
		score, err := EvaluateAllocation(prob, cur)
		if err != nil {
			return nil, 0, err
		}
		if score > bestScore {
			bestScore = score
			copy(best, cur)
		}
	}
	return best, bestScore, nil
}
