package core

import (
	"math"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

// These tests validate the estimation step (Eq. 4-7): the per-thread
// measurements assembled from context-switch counter samples must match
// the underlying steady-state model, both for a solo thread and under
// CFS time-sharing interference.

// senseCapture is a balancer that senses every epoch and stores the
// last measurement per thread.
type senseCapture struct {
	last map[kernel.ThreadID]Measurement
}

func (s *senseCapture) Name() string { return "sense-capture" }
func (s *senseCapture) Rebalance(k *kernel.Kernel, _ kernel.Time,
	threads []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	plat := k.Platform()
	typeOf := func(c arch.CoreID) arch.CoreTypeID { return plat.TypeID(c) }
	for _, t := range k.ActiveTasks() {
		if m, ok := Sense(hpc.FindThread(threads, int(t.ID)), t.Utilization(k.Config().EpochNs), typeOf); ok {
			s.last[t.ID] = m
		}
	}
}

func steadySpec() *workload.ThreadSpec {
	return &workload.ThreadSpec{
		Name:      "steady",
		Benchmark: "steady",
		Phases: []workload.Phase{{
			Name: "p", Instructions: 1 << 40, ILP: 2.2, MemShare: 0.32, BranchShare: 0.12,
			WorkingSetIKB: 10, WorkingSetDKB: 384, BranchEntropy: 0.45, MLP: 2.4,
			TLBPressureI: 0.1, TLBPressureD: 0.3,
		}},
	}
}

func TestSensedMeasurementMatchesSteadyState(t *testing.T) {
	// One thread alone on one core: the sensed IPC, rates, and power
	// must match the analytical steady state (no noise configured).
	plat, err := arch.HomogeneousPlatform(arch.BigCore(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(plat)
	if err != nil {
		t.Fatal(err)
	}
	cap := &senseCapture{last: map[kernel.ThreadID]Measurement{}}
	k, err := kernel.New(m, cap, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := steadySpec()
	id, err := k.Spawn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(300e6); err != nil {
		t.Fatal(err)
	}
	meas, ok := cap.last[id]
	if !ok {
		t.Fatal("no measurement sensed")
	}
	want := m.SteadyMetrics(k.Task(id).MachineState(), 0)
	relErr := func(got, exp float64) float64 {
		if exp == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-exp) / exp
	}
	if e := relErr(meas.IPC, want.IPC); e > 0.01 {
		t.Fatalf("sensed IPC %.4f vs model %.4f (err %.2f%%)", meas.IPC, want.IPC, 100*e)
	}
	if e := relErr(meas.MissL1D, want.MissRateL1D); e > 0.02 {
		t.Fatalf("sensed mr$d %.5f vs model %.5f", meas.MissL1D, want.MissRateL1D)
	}
	if e := relErr(meas.Mispredict, want.MispredictRate); e > 0.02 {
		t.Fatalf("sensed mrb %.5f vs model %.5f", meas.Mispredict, want.MispredictRate)
	}
	if e := relErr(meas.MemShare, spec.Phases[0].MemShare); e > 0.02 {
		t.Fatalf("sensed Imsh %.4f vs spec %.4f", meas.MemShare, spec.Phases[0].MemShare)
	}
	if meas.Util < 0.95 {
		t.Fatalf("solo busy thread utilisation %.3f", meas.Util)
	}
}

func TestSensedMeasurementUnderTimeSharing(t *testing.T) {
	// Three identical threads sharing one core: IPS per thread drops to
	// ~1/3 of solo, but the *per-thread IPC and rates while running*
	// stay at the steady state — exactly the property Eq. 4's
	// per-slice normalisation is designed to deliver.
	plat, err := arch.HomogeneousPlatform(arch.BigCore(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(plat)
	if err != nil {
		t.Fatal(err)
	}
	cap := &senseCapture{last: map[kernel.ThreadID]Measurement{}}
	k, err := kernel.New(m, cap, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ids []kernel.ThreadID
	for i := 0; i < 3; i++ {
		id, err := k.Spawn(steadySpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	want := m.SteadyMetrics(k.Task(ids[0]).MachineState(), 0)
	soloIPS := want.IPS(plat.Type(0))
	for _, id := range ids {
		meas, ok := cap.last[id]
		if !ok {
			t.Fatalf("thread %d not sensed", id)
		}
		// IPC while running is interference-free in this substrate.
		if math.Abs(meas.IPC-want.IPC)/want.IPC > 0.02 {
			t.Fatalf("time-shared IPC %.4f vs steady %.4f", meas.IPC, want.IPC)
		}
		// But the epoch-average IPS reflects the 1/3 time share... IPS in
		// Measurement is per-running-time (Eq. 4 normalises by tau), so it
		// too matches solo.
		if math.Abs(meas.IPS-soloIPS)/soloIPS > 0.02 {
			t.Fatalf("per-runtime IPS %.4g vs solo %.4g", meas.IPS, soloIPS)
		}
	}
}

func TestSenseSkipsThreadsThatNeverRan(t *testing.T) {
	sample := &hpc.ThreadEpochSample{}
	if _, ok := Sense(sample, 0.2, nil); ok {
		t.Fatal("empty sample sensed")
	}
	// Zero instructions: also rejected.
	sample.PerCore = append(sample.PerCore, hpc.CoreCounters{Core: 0, C: hpc.Counters{RunNs: 100}})
	typeOf := func(arch.CoreID) arch.CoreTypeID { return 0 }
	if _, ok := Sense(sample, 0.2, typeOf); ok {
		t.Fatal("zero-instruction sample sensed")
	}
}
