package core

import (
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/rng"
)

func TestAnnealConfigValidate(t *testing.T) {
	good := DefaultAnnealConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*AnnealConfig){
		func(c *AnnealConfig) { c.MaxIter = 0 },
		func(c *AnnealConfig) { c.Perturb = 0 },
		func(c *AnnealConfig) { c.Perturb = 1.5 },
		func(c *AnnealConfig) { c.DeltaPerturb = 0 },
		func(c *AnnealConfig) { c.DeltaPerturb = 1.1 },
		func(c *AnnealConfig) { c.Accept = 0 },
		func(c *AnnealConfig) { c.DeltaAccept = 1.2 },
		func(c *AnnealConfig) { c.SwapFraction = -0.1 },
	}
	for i, mod := range bad {
		c := DefaultAnnealConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad anneal config %d accepted", i)
		}
	}
}

func TestAnnealNeverWorseThanStart(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(r, 6, 4)
		initial := make(Allocation, 6)
		for i := range initial {
			initial[i] = arch.CoreID(r.Intn(4))
		}
		start, err := EvaluateAllocation(p, initial)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultAnnealConfig()
		cfg.Seed = uint64(trial)
		res, err := Anneal(p, initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective < start-1e-9 {
			t.Fatalf("trial %d: annealing returned a worse solution: %g < %g", trial, res.Objective, start)
		}
		if !res.Allocation.Valid(4) || len(res.Allocation) != 6 {
			t.Fatalf("invalid result allocation %v", res.Allocation)
		}
	}
}

func TestAnnealReachesNearOptimal(t *testing.T) {
	// Fig. 8's "distance to optimal": on brute-forceable cases the SA
	// solution must land within a few percent of the true optimum.
	r := rng.New(21)
	worst := 0.0
	for trial := 0; trial < 12; trial++ {
		m := 4 + r.Intn(4) // 4..7 threads
		n := 3 + r.Intn(2) // 3..4 cores
		p := randomProblem(r, m, n)
		_, opt, err := BruteForceOptimal(p)
		if err != nil {
			t.Fatal(err)
		}
		initial := make(Allocation, m) // all on core 0: worst-ish start
		cfg := DefaultAnnealConfig()
		cfg.MaxIter = 1024
		cfg.Seed = uint64(trial + 100)
		res, err := Anneal(p, initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gap := (opt - res.Objective) / opt * 100
		if gap > worst {
			worst = gap
		}
	}
	if worst > 8 {
		t.Fatalf("worst distance to optimal %.2f%% > 8%%", worst)
	}
	t.Logf("worst distance to optimal across trials: %.2f%%", worst)
}

func TestAnnealDeterministicUnderSeed(t *testing.T) {
	r := rng.New(31)
	p := randomProblem(r, 8, 4)
	initial := make(Allocation, 8)
	cfg := DefaultAnnealConfig()
	cfg.Seed = 42
	a, err := Anneal(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("same seed, different objectives: %g vs %g", a.Objective, b.Objective)
	}
	for i := range a.Allocation {
		if a.Allocation[i] != b.Allocation[i] {
			t.Fatal("same seed, different allocations")
		}
	}
}

func TestAnnealFixedVsFloatQuality(t *testing.T) {
	// The fixed-point acceptance path must not be materially worse than
	// the float path (the paper's claim: fixed-point trades precision
	// "without significantly compromising the quality").
	r := rng.New(41)
	var fixedSum, floatSum float64
	for trial := 0; trial < 8; trial++ {
		p := randomProblem(r, 8, 4)
		initial := make(Allocation, 8)
		cfg := DefaultAnnealConfig()
		cfg.MaxIter = 768
		cfg.Seed = uint64(trial)
		fixed, err := Anneal(p, initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.UseFloat = true
		fl, err := Anneal(p, initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixedSum += fixed.Objective
		floatSum += fl.Objective
	}
	if fixedSum < 0.93*floatSum {
		t.Fatalf("fixed-point SA quality %.4g vs float %.4g: more than 7%% worse", fixedSum, floatSum)
	}
}

func TestAnnealSingleThread(t *testing.T) {
	r := rng.New(51)
	p := randomProblem(r, 1, 4)
	res, err := Anneal(p, Allocation{0}, DefaultAnnealConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With one thread the optimum is the single best core; SA must find it.
	_, opt, err := BruteForceOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective < opt-1e-9 {
		t.Fatalf("single-thread SA %.6f < optimum %.6f", res.Objective, opt)
	}
}

func TestAnnealAcceptsSomeDownhill(t *testing.T) {
	// With a warm acceptance schedule, some non-improving moves must be
	// accepted — otherwise it is hill climbing, not annealing.
	r := rng.New(61)
	p := randomProblem(r, 10, 4)
	initial := make(Allocation, 10)
	for i := range initial {
		initial[i] = arch.CoreID(r.Intn(4))
	}
	cfg := DefaultAnnealConfig()
	cfg.MaxIter = 2000
	cfg.Accept = 0.5 // warm
	cfg.DeltaAccept = 0.9999
	res, err := Anneal(p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count improving moves possible from start by hill climbing only:
	// hard to compute exactly, so use the acceptance count as a proxy —
	// it must exceed the number of strict improvements a greedy pass
	// would find (at most m*n = 40 here).
	if res.Accepted <= 40 {
		t.Fatalf("only %d acceptances with a warm schedule; Metropolis path inactive", res.Accepted)
	}
}

func TestGreedyInitial(t *testing.T) {
	r := rng.New(71)
	p := randomProblem(r, 8, 4)
	alloc, err := GreedyInitial(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) != 8 || !alloc.Valid(4) {
		t.Fatalf("bad greedy allocation %v", alloc)
	}
	zero := make(Allocation, 8)
	zScore, _ := EvaluateAllocation(p, zero)
	gScore, _ := EvaluateAllocation(p, alloc)
	if gScore < zScore {
		t.Fatalf("greedy %.4f worse than all-on-core-0 %.4f", gScore, zScore)
	}
}

func TestScaledMaxIter(t *testing.T) {
	if ScaledMaxIter(2, 4) < 256 {
		t.Fatal("floor violated")
	}
	if ScaledMaxIter(128, 256) > 4096 {
		t.Fatal("cap violated")
	}
	if ScaledMaxIter(8, 16) <= ScaledMaxIter(2, 4) {
		t.Fatal("budget should grow with scale")
	}
}

func TestAnnealConfigString(t *testing.T) {
	c := DefaultAnnealConfig()
	if c.String() == "" {
		t.Fatal("empty config string")
	}
	c.UseFloat = true
	if c.String() == DefaultAnnealConfig().String() {
		t.Fatal("float mode not reflected in string")
	}
}

func BenchmarkAnneal8Threads4Cores(b *testing.B) {
	r := rng.New(81)
	p := randomProblem(r, 8, 4)
	initial := make(Allocation, 8)
	cfg := DefaultAnnealConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Anneal(p, initial, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnneal256Threads128Cores(b *testing.B) {
	r := rng.New(91)
	p := randomProblem(r, 256, 128)
	initial := make(Allocation, 256)
	cfg := DefaultAnnealConfig()
	cfg.MaxIter = ScaledMaxIter(128, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Anneal(p, initial, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAnnealRespectsAffinity(t *testing.T) {
	// Every thread pinned to an arbitrary pair of cores: no SA move may
	// violate the mask, and the best solution still respects it.
	r := rng.New(101)
	for trial := 0; trial < 8; trial++ {
		m, n := 8, 4
		p := randomProblem(r, m, n)
		p.Allowed = make([][]bool, m)
		initial := make(Allocation, m)
		for i := 0; i < m; i++ {
			a := r.Intn(n)
			b := (a + 1 + r.Intn(n-1)) % n
			row := make([]bool, n)
			row[a], row[b] = true, true
			p.Allowed[i] = row
			initial[i] = arch.CoreID(a)
		}
		cfg := DefaultAnnealConfig()
		cfg.MaxIter = 800
		cfg.Seed = uint64(trial)
		res, err := Anneal(p, initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.Allocation {
			if !p.AllowedOn(i, int(c)) {
				t.Fatalf("trial %d: thread %d placed on disallowed core %d", trial, i, c)
			}
		}
	}
}

func TestAnnealFullyPinnedProblem(t *testing.T) {
	// Every thread pinned to exactly one core: SA can change nothing and
	// must return the initial allocation's objective.
	r := rng.New(103)
	m, n := 6, 4
	p := randomProblem(r, m, n)
	p.Allowed = make([][]bool, m)
	initial := make(Allocation, m)
	for i := 0; i < m; i++ {
		row := make([]bool, n)
		c := i % n
		row[c] = true
		p.Allowed[i] = row
		initial[i] = arch.CoreID(c)
	}
	start, err := EvaluateAllocation(p, initial)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anneal(p, initial, DefaultAnnealConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != start {
		t.Fatalf("fully pinned SA changed the objective: %g -> %g", start, res.Objective)
	}
	for i, c := range res.Allocation {
		if c != initial[i] {
			t.Fatal("fully pinned SA moved a thread")
		}
	}
}

func TestGreedyInitialRespectsAffinity(t *testing.T) {
	r := rng.New(105)
	m, n := 6, 4
	p := randomProblem(r, m, n)
	p.Allowed = make([][]bool, m)
	for i := 0; i < m; i++ {
		row := make([]bool, n)
		row[3] = true   // only the last core allowed — and core 0 is the
		row[0] = i == 0 // greedy start, so threads must be forced off it
		p.Allowed[i] = row
	}
	alloc, err := GreedyInitial(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range alloc {
		if !p.AllowedOn(i, int(c)) {
			t.Fatalf("greedy placed thread %d on disallowed core %d", i, c)
		}
	}
}

func TestBruteForceRespectsAffinity(t *testing.T) {
	r := rng.New(107)
	p := randomProblem(r, 4, 3)
	p.Allowed = [][]bool{
		{true, false, false},
		nil, // unrestricted
		{false, true, true},
		{false, false, true},
	}
	best, score, err := BruteForceOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatal("no feasible allocation scored")
	}
	for i, c := range best {
		if !p.AllowedOn(i, int(c)) {
			t.Fatalf("brute force violated affinity at thread %d", i)
		}
	}
}

func TestProblemValidateAffinity(t *testing.T) {
	r := rng.New(109)
	p := randomProblem(r, 3, 2)
	p.Allowed = [][]bool{{true, true}} // wrong row count
	if err := p.Validate(); err == nil {
		t.Fatal("short affinity matrix accepted")
	}
	p.Allowed = [][]bool{{true}, nil, nil} // wrong width
	if err := p.Validate(); err == nil {
		t.Fatal("narrow affinity row accepted")
	}
	p.Allowed = [][]bool{{false, false}, nil, nil} // empty set
	if err := p.Validate(); err == nil {
		t.Fatal("empty affinity set accepted")
	}
	p.Allowed = [][]bool{{true, false}, nil, nil}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
