package core

import (
	"testing"
	"time"

	"smartbalance/internal/arch"
	"smartbalance/internal/workload"
)

func TestFakeClockAdvancesByStep(t *testing.T) {
	c := NewFakeClock(time.Millisecond)
	t0 := c.Now()
	t1 := c.Now()
	if d := t1.Sub(t0); d != time.Millisecond {
		t.Errorf("step = %v, want 1ms", d)
	}
	frozen := &FakeClock{}
	if !frozen.Now().Equal(frozen.Now()) {
		t.Error("zero-value FakeClock is not frozen")
	}
}

func TestRealClockProgresses(t *testing.T) {
	c := RealClock()
	t0 := c.Now()
	if sinceOn(c, t0) < 0 {
		t.Error("real clock ran backwards")
	}
}

// TestSmartBalanceOverheadDeterministicWithFakeClock is the invariant
// the Clock refactor buys: with an injected FakeClock, the measured
// per-phase overhead is a pure function of the run — identical across
// repetitions, with the sense phase charged exactly one step per epoch.
func TestSmartBalanceOverheadDeterministicWithFakeClock(t *testing.T) {
	const step = time.Microsecond
	run := func() PhaseOverhead {
		pred, err := Train(arch.Table2Types(), DefaultTrainConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Clock = NewFakeClock(step)
		sb, err := New(pred, cfg)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := workload.Mix("Mix1", 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		runScenario(t, arch.QuadHMP(), sb, specs, 600e6)
		return sb.Overhead()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("overhead not deterministic under FakeClock:\n  run1 %+v\n  run2 %+v", a, b)
	}
	if a.Epochs == 0 || a.Total() == 0 {
		t.Fatalf("no overhead recorded: %+v", a)
	}
	if want := time.Duration(a.Epochs) * step; a.Sense != want {
		t.Errorf("Sense = %v, want exactly %v (one step per epoch)", a.Sense, want)
	}
}

// TestMeasurePhasesWithFakeClock pins the exact accounting: each timed
// phase brackets its work with two clock reads, so a FakeClock charges
// precisely one step per phase regardless of host load.
func TestMeasurePhasesWithFakeClock(t *testing.T) {
	pred, err := Train(arch.Table2Types(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	const step = 10 * time.Microsecond
	pt, err := MeasurePhasesWithClock(pred, ScalePoint{Cores: 4, Threads: 8}, 2, 1, NewFakeClock(step))
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]time.Duration{
		"Sense": pt.Sense, "Predict": pt.Predict, "Optimize": pt.Optimize,
	} {
		if got != step {
			t.Errorf("%s = %v, want exactly %v", name, got, step)
		}
	}
	if pt.Migrate != 4*time.Duration(MigrationCostNs) {
		t.Errorf("Migrate = %v, want modelled 4x%dns", pt.Migrate, MigrationCostNs)
	}
}
