package core

import (
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

func TestOracleName(t *testing.T) {
	o, err := NewOracle(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "oracle" {
		t.Fatalf("Name() = %q", o.Name())
	}
}

func TestNewOracleValidatesAnneal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Anneal.Perturb = -1
	if _, err := NewOracle(cfg); err == nil {
		t.Fatal("bad anneal config accepted")
	}
	// MaxIter <= 0 selects the scaled budget and skips validation.
	cfg = DefaultConfig()
	cfg.Anneal.MaxIter = 0
	if _, err := NewOracle(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOracleBeatsVanilla(t *testing.T) {
	// Oracle matrices are exact, so the oracle balancer is the upper
	// bound: it must beat the capability-blind vanilla policy.
	run := func(b kernel.Balancer) float64 {
		m, err := machine.New(arch.QuadHMP())
		if err != nil {
			t.Fatal(err)
		}
		k, err := kernel.New(m, b, kernel.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		specs, err := workload.Mix("Mix5", 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			if _, err := k.Spawn(&specs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := k.Run(1e9); err != nil {
			t.Fatal(err)
		}
		if err := k.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return k.Stats().EnergyEfficiency()
	}
	o, err := NewOracle(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracleEE := run(o)
	vanillaEE := run(balancer.Vanilla{})
	if oracleEE <= vanillaEE*1.2 {
		t.Fatalf("oracle EE %.4g barely beats vanilla %.4g", oracleEE, vanillaEE)
	}
}

func TestOracleEmptySystem(t *testing.T) {
	o, err := NewOracle(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := machine.New(arch.QuadHMP())
	k, _ := kernel.New(m, o, kernel.DefaultConfig())
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	if k.Stats().TotalInstructions() != 0 {
		t.Fatal("phantom work")
	}
}

func TestPredictionCloseToOracleEndToEnd(t *testing.T) {
	// The repository-level claim behind Fig. 6: the predictor's error is
	// small enough that prediction-driven balancing achieves nearly the
	// oracle's energy efficiency.
	run := func(b kernel.Balancer) float64 {
		m, _ := machine.New(arch.QuadHMP())
		k, _ := kernel.New(m, b, kernel.DefaultConfig())
		specs, err := workload.Mix("Mix1", 2, 12)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			_, _ = k.Spawn(&specs[i])
		}
		if err := k.Run(1e9); err != nil {
			t.Fatal(err)
		}
		return k.Stats().EnergyEfficiency()
	}
	o, err := NewOracle(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sb := newSmartBalance(t, arch.Table2Types())
	oracleEE := run(o)
	smartEE := run(sb)
	if smartEE < 0.8*oracleEE {
		t.Fatalf("prediction-driven EE %.4g is below 80%% of oracle %.4g", smartEE, oracleEE)
	}
}
