package core

// This file holds the high-water-mark scratch idiom used across the
// hot sense→predict→balance path (DESIGN.md §11): buffers grow to the
// largest size a run demands and are reused verbatim afterwards, so
// steady-state epochs allocate nothing. The grow helpers return stale
// contents on the fast path — callers must overwrite every element.

// growFloats returns s resized to n, reallocating only when capacity
// is insufficient. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
	}
	return s[:n]
}

// growInts returns s resized to n; contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
	}
	return s[:n]
}

// growAlloc returns s resized to n; contents are unspecified.
func growAlloc(s Allocation, n int) Allocation {
	if cap(s) < n {
		return make(Allocation, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
	}
	return s[:n]
}

// growBools returns s resized to n; contents are unspecified.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
	}
	return s[:n]
}

// growFloatRows returns s resized to n rows, keeping existing row
// headers (and their backing capacity) where possible. Row contents
// are unspecified; callers re-point every row.
func growFloatRows(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		grown := make([][]float64, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
		copy(grown, s)
		return grown
	}
	return s[:n]
}

// growIntRows returns s resized to n rows, keeping existing row
// headers so per-row capacity survives reuse across epochs.
func growIntRows(s [][]int, n int) [][]int {
	if cap(s) < n {
		grown := make([][]int, n) //sbvet:allow hotpath(scratch grows to the high-water mark once; steady-state epochs reuse it)
		copy(grown, s)
		return grown
	}
	return s[:n]
}
