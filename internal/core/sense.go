// Package core implements SmartBalance itself: the closed-loop
// sense-predict-balance load balancer of the paper.
//
// Each epoch the controller (1) senses per-thread hardware counters and
// power collected at context-switch granularity, (2) estimates each
// thread's throughput and power contribution on the core it ran on
// (Eq. 4-7), (3) predicts its throughput and power on every *other*
// core type with a trained linear model (Eq. 8-9), assembling the
// throughput matrix S(k) and power matrix P(k), and (4) runs a
// fixed-point simulated-annealing optimisation (Algorithm 1) of the
// energy-efficiency objective J_E (Eq. 10-11) to choose the next
// epoch's allocation, applied through the kernel's migration interface.
package core

import (
	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
)

// Measurement is the estimation-phase output for one thread: its sensed
// behaviour on the core it (predominantly) executed on during the
// epoch. These are the ips_ij(k) and p_ij(k) of Eq. (4) and (5),
// together with the workload-characterisation counters of Section 4.1
// that feed the cross-core predictor.
type Measurement struct {
	// Core is the core the thread ran on; SrcType its type.
	Core    arch.CoreID
	SrcType arch.CoreTypeID

	// IPC and IPS are the measured throughput; PowerW the measured
	// average power attributable to the thread while it ran.
	IPC    float64
	IPS    float64
	PowerW float64

	// Workload characterisation rates (the predictor features).
	MissL1I     float64 // mr$i: L1I misses per instruction
	MissL1D     float64 // mr$d: L1D misses per memory access
	MemShare    float64 // I_msh
	BranchShare float64 // I_bsh
	Mispredict  float64 // mr_b: mispredicts per branch
	MissITLB    float64 // mr_itlb
	MissDTLB    float64 // mr_dtlb

	// Shared-resource counters (internal/contention). These are sensed
	// alongside the predictor features but deliberately kept out of the
	// trained feature set (the paper's 10-counter interface is fixed);
	// the balancer's contention term consumes them directly.
	MissLLC  float64 // LLC misses per L1D miss (conditional L2->memory rate)
	MemBWGBs float64 // memory traffic in GB/s while running

	// Util is the thread's runnable fraction of the epoch, the U vector
	// of Algorithm 1's inputs.
	Util float64

	// Valid marks a measurement backed by at least one sampled slice.
	Valid bool
}

// SenseStatus classifies the outcome of sensing one thread's epoch
// sample (DESIGN.md §9): the balancer treats SenseNoSample as benign
// (the thread slept; fall back to its last characterisation at full
// confidence) and SenseInvalid as sensor damage (fall back with decayed
// confidence, count toward the degraded-epoch majority).
type SenseStatus int

const (
	// SenseOK: the sample is present and physically plausible.
	SenseOK SenseStatus = iota
	// SenseNoSample: the thread has no usable counters this epoch. On
	// clean sensing this only happens when it never ran (or ran
	// zero-instruction slivers); whether it is benign depends on the
	// scheduler's own run-time accounting, which the caller owns.
	SenseNoSample
	// SenseInvalid: counters exist but fail plausibility — non-finite
	// or negative values, or rates outside the core type's physical
	// envelope. Impossible on clean sensing; treat as a fault.
	SenseInvalid
)

// String names the status.
func (s SenseStatus) String() string {
	switch s {
	case SenseOK:
		return "ok"
	case SenseNoSample:
		return "nosample"
	case SenseInvalid:
		return "invalid"
	default:
		return "unknown"
	}
}

// Plausibility envelope headrooms. The measured IPC/IPS can run
// slightly past the Table 2 peak anchor through rounding in the
// counter-to-rate conversion, and measured power legitimately exceeds
// the peak-throughput anchor under instruction mixes more expensive
// than the calibration mix plus sensor noise — hence generous slack.
// Faults this envelope is built to catch (saturated counters, spiked
// power sensors) overshoot it by orders of magnitude.
const (
	ipcHeadroom   = 1.05
	powerHeadroom = 4.0
	// llcLineBytes is the transfer size of one LLC miss; the bandwidth
	// envelope is one line per retired instruction at peak throughput.
	llcLineBytes = 64.0
)

// Sense converts one thread's epoch counter sample into a Measurement,
// implementing the estimation step of Section 4.2.1: per-thread
// averages over the L scheduling periods of the epoch. typeOf maps a
// core id to its type. ok is false when the thread has no usable
// counters (it slept throughout), in which case the caller falls back
// to its last known measurement.
//
// Sense performs no plausibility checking; balancers exposed to
// imperfect sensors use SenseChecked.
func Sense(sample *hpc.ThreadEpochSample, util float64, typeOf func(arch.CoreID) arch.CoreTypeID) (Measurement, bool) {
	if sample == nil {
		return Measurement{}, false
	}
	coreInt, counters, ok := sample.DominantCore()
	if !ok || counters.Instructions == 0 || counters.RunNs <= 0 {
		return Measurement{}, false
	}
	core := arch.CoreID(coreInt)
	return assemble(core, typeOf(core), counters, util), true
}

// SenseChecked is the hardened estimation step: it assembles the same
// Measurement as Sense and then validates it against the platform's
// physical envelope. A sample that is missing or empty yields
// SenseNoSample; one that is present but implausible — non-finite
// values, negative energy, a dominant core off the platform, IPC/IPS
// beyond the core type's peak, power outside (0, 4x peak] — yields
// SenseInvalid and must not reach Eq. 8-11.
//
// On clean sensing SenseChecked is behaviourally identical to Sense:
// every plausible sample maps to (m, SenseOK) with the exact same
// Measurement, and every slept epoch to SenseNoSample.
//
//sbvet:hotpath
func SenseChecked(sample *hpc.ThreadEpochSample, util float64, plat *arch.Platform) (Measurement, SenseStatus) {
	if sample == nil {
		return Measurement{}, SenseNoSample
	}
	coreInt, counters, ok := sample.DominantCore()
	if !ok {
		return Measurement{}, SenseNoSample
	}
	if coreInt < 0 || coreInt >= plat.NumCores() {
		return Measurement{}, SenseInvalid
	}
	if counters.Instructions == 0 || counters.RunNs <= 0 {
		// No committed work on the dominant core: on clean sensing this
		// is a thread that slept (or ran only zero-instruction
		// slivers). A zero-wiped sample lands here too; the caller
		// disambiguates against the scheduler's run-time accounting.
		return Measurement{}, SenseNoSample
	}
	core := arch.CoreID(coreInt)
	ct := plat.Type(core)
	m := assemble(core, plat.TypeID(core), counters, util)

	if !finiteMeasurement(&m) {
		return Measurement{}, SenseInvalid
	}
	if counters.EnergyJ < 0 || m.PowerW <= 0 {
		// Negative energy is unphysical; exactly-zero power over a
		// slice that committed instructions is a dead power sensor (the
		// hpc noise clamp floors individual draws at zero, but a whole
		// sampled slice burning no energy does not happen).
		return Measurement{}, SenseInvalid
	}
	if m.IPC > ct.PeakIPC*ipcHeadroom {
		return Measurement{}, SenseInvalid
	}
	if m.IPS > ct.PeakIPC*ct.FreqHz()*ipcHeadroom {
		return Measurement{}, SenseInvalid
	}
	if m.PowerW > ct.PeakPowerW*powerHeadroom {
		return Measurement{}, SenseInvalid
	}
	if m.MissLLC > ipcHeadroom {
		// A conditional miss probability cannot exceed 1.
		return Measurement{}, SenseInvalid
	}
	if m.MemBWGBs > ct.PeakIPC*(ct.FreqMHz/1000)*llcLineBytes*ipcHeadroom {
		// More than one line of traffic per retired instruction at peak
		// throughput: saturated counters, not physics.
		return Measurement{}, SenseInvalid
	}
	return m, SenseOK
}

// assemble builds the Measurement from a dominant-core counter set.
func assemble(core arch.CoreID, srcType arch.CoreTypeID, counters *hpc.Counters, util float64) Measurement {
	return Measurement{
		Core:        core,
		SrcType:     srcType,
		IPC:         counters.IPC(),
		IPS:         counters.IPS(),
		PowerW:      counters.PowerW(),
		MissL1I:     counters.MissRateL1I(),
		MissL1D:     counters.MissRateL1D(),
		MemShare:    counters.MemShare(),
		BranchShare: counters.BranchShare(),
		Mispredict:  counters.MispredictRate(),
		MissITLB:    counters.MissRateITLB(),
		MissDTLB:    counters.MissRateDTLB(),
		MissLLC:     counters.MissRateLLC(),
		MemBWGBs:    counters.MemBWGBps(),
		Util:        util,
		Valid:       true,
	}
}

// finiteMeasurement reports whether every derived field of m is finite.
// An explicit field walk rather than a range over a slice literal, which
// would allocate on the hot sensing path.
func finiteMeasurement(m *Measurement) bool {
	return isFinite(m.IPC) && isFinite(m.IPS) && isFinite(m.PowerW) &&
		isFinite(m.MissL1I) && isFinite(m.MissL1D) && isFinite(m.MemShare) &&
		isFinite(m.BranchShare) && isFinite(m.Mispredict) &&
		isFinite(m.MissITLB) && isFinite(m.MissDTLB) &&
		isFinite(m.MissLLC) && isFinite(m.MemBWGBs) && isFinite(m.Util)
}
