// Package core implements SmartBalance itself: the closed-loop
// sense-predict-balance load balancer of the paper.
//
// Each epoch the controller (1) senses per-thread hardware counters and
// power collected at context-switch granularity, (2) estimates each
// thread's throughput and power contribution on the core it ran on
// (Eq. 4-7), (3) predicts its throughput and power on every *other*
// core type with a trained linear model (Eq. 8-9), assembling the
// throughput matrix S(k) and power matrix P(k), and (4) runs a
// fixed-point simulated-annealing optimisation (Algorithm 1) of the
// energy-efficiency objective J_E (Eq. 10-11) to choose the next
// epoch's allocation, applied through the kernel's migration interface.
package core

import (
	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
)

// Measurement is the estimation-phase output for one thread: its sensed
// behaviour on the core it (predominantly) executed on during the
// epoch. These are the ips_ij(k) and p_ij(k) of Eq. (4) and (5),
// together with the workload-characterisation counters of Section 4.1
// that feed the cross-core predictor.
type Measurement struct {
	// Core is the core the thread ran on; SrcType its type.
	Core    arch.CoreID
	SrcType arch.CoreTypeID

	// IPC and IPS are the measured throughput; PowerW the measured
	// average power attributable to the thread while it ran.
	IPC    float64
	IPS    float64
	PowerW float64

	// Workload characterisation rates (the predictor features).
	MissL1I     float64 // mr$i: L1I misses per instruction
	MissL1D     float64 // mr$d: L1D misses per memory access
	MemShare    float64 // I_msh
	BranchShare float64 // I_bsh
	Mispredict  float64 // mr_b: mispredicts per branch
	MissITLB    float64 // mr_itlb
	MissDTLB    float64 // mr_dtlb

	// Util is the thread's runnable fraction of the epoch, the U vector
	// of Algorithm 1's inputs.
	Util float64

	// Valid marks a measurement backed by at least one sampled slice.
	Valid bool
}

// Sense converts one thread's epoch counter sample into a Measurement,
// implementing the estimation step of Section 4.2.1: per-thread
// averages over the L scheduling periods of the epoch. typeOf maps a
// core id to its type. ok is false when the thread never ran during the
// epoch (it slept throughout), in which case the caller falls back to
// its last known measurement.
func Sense(sample *hpc.ThreadEpochSample, util float64, typeOf func(arch.CoreID) arch.CoreTypeID) (Measurement, bool) {
	if sample == nil {
		return Measurement{}, false
	}
	coreInt, counters, ok := sample.DominantCore()
	if !ok || counters.Instructions == 0 || counters.RunNs <= 0 {
		return Measurement{}, false
	}
	core := arch.CoreID(coreInt)
	m := Measurement{
		Core:        core,
		SrcType:     typeOf(core),
		IPC:         counters.IPC(),
		IPS:         counters.IPS(),
		PowerW:      counters.PowerW(),
		MissL1I:     counters.MissRateL1I(),
		MissL1D:     counters.MissRateL1D(),
		MemShare:    counters.MemShare(),
		BranchShare: counters.BranchShare(),
		Mispredict:  counters.MispredictRate(),
		MissITLB:    counters.MissRateITLB(),
		MissDTLB:    counters.MissRateDTLB(),
		Util:        util,
		Valid:       true,
	}
	return m, true
}
