package core

import (
	"testing"

	"smartbalance/internal/arch"
)

func TestScalabilityScenarios(t *testing.T) {
	sc := ScalabilityScenarios()
	if len(sc) != 7 { // 2,4,8,16,32,64,128
		t.Fatalf("%d scenarios", len(sc))
	}
	if sc[0].Cores != 2 || sc[0].Threads != 4 {
		t.Fatalf("first scenario %+v", sc[0])
	}
	if sc[len(sc)-1].Cores != 128 || sc[len(sc)-1].Threads != 256 {
		t.Fatalf("last scenario %+v", sc[len(sc)-1])
	}
}

func TestMeasurePhasesQuad(t *testing.T) {
	pred, err := Train(arch.Table2Types(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := MeasurePhases(pred, ScalePoint{Cores: 4, Threads: 8}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Sense <= 0 || pt.Predict <= 0 || pt.Optimize <= 0 || pt.Migrate <= 0 {
		t.Fatalf("missing phase times: %+v", pt)
	}
	if pt.Total() <= 0 {
		t.Fatal("zero total")
	}
	// The paper: "for typical embedded platforms ... with 2 to 8 cores,
	// the average overhead ... is negligible with respect to the 60ms
	// epoch length (less than 1%)". Host hardware differs, so allow 5%.
	if frac := pt.FractionOfEpoch(60e6); frac > 0.05 {
		t.Fatalf("quad-core overhead %.2f%% of a 60ms epoch", 100*frac)
	}
	if pt.Migrate.Nanoseconds() != 4*MigrationCostNs {
		t.Fatalf("migration model wrong: %v", pt.Migrate)
	}
}

func TestMeasurePhasesScalesWithSize(t *testing.T) {
	pred, err := Train(arch.Table2Types(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	small, err := MeasurePhases(pred, ScalePoint{Cores: 2, Threads: 4}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasurePhases(pred, ScalePoint{Cores: 64, Threads: 128}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.Predict <= small.Predict {
		t.Fatalf("predict phase did not scale: %v vs %v", big.Predict, small.Predict)
	}
	if big.Migrate <= small.Migrate {
		t.Fatal("migration model did not scale")
	}
	if big.MaxIter < small.MaxIter {
		t.Fatal("iteration budget should not shrink with scale")
	}
}

func TestMeasurePhasesValidation(t *testing.T) {
	pred, err := Train(arch.Table2Types(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasurePhases(pred, ScalePoint{Cores: 0, Threads: 4}, 1, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := MeasurePhases(pred, ScalePoint{Cores: 2, Threads: 0}, 1, 1); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestFractionOfEpochDegenerate(t *testing.T) {
	var pt PhaseTimes
	if pt.FractionOfEpoch(0) != 0 {
		t.Fatal("zero epoch should yield zero fraction")
	}
}
