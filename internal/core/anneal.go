package core

import (
	"errors"
	"fmt"
	"math"

	"smartbalance/internal/arch"
	"smartbalance/internal/fixedpt"
	"smartbalance/internal/rng"
)

// AnnealConfig carries the tunable input parameters of Algorithm 1:
// "Max. no. of iterations Opt_max_iter, perturbation schedule
// Opt_Δperturb, solution acceptance rate Opt_Δaccept, initial
// perturbation Opt_perturb and acceptance rate Opt_accept."
type AnnealConfig struct {
	MaxIter      int
	Perturb      float64 // initial perturbation magnitude (0,1]
	DeltaPerturb float64 // multiplicative perturbation decay per iteration
	Accept       float64 // initial acceptance temperature, relative to |J0|
	DeltaAccept  float64 // multiplicative acceptance decay per iteration
	// SwapFraction is the probability a move swaps two threads' cores
	// instead of reassigning one thread; swaps preserve per-core counts
	// while reassignments explore different occupancies.
	SwapFraction float64
	// UseFloat switches to a floating-point Metropolis rule instead of
	// the paper's fixed-point rand/e^x implementation (ablation knob).
	UseFloat bool
	// Seed drives the optimiser's deterministic randi() stream.
	Seed uint64
}

// DefaultAnnealConfig returns the Fig. 8(b)-style parameter set used by
// the experiments.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{
		MaxIter:      512,
		Perturb:      1.0,
		DeltaPerturb: 0.995,
		Accept:       0.10,
		DeltaAccept:  0.99,
		SwapFraction: 0.5,
		Seed:         1,
	}
}

// Validation sentinels, predeclared so the per-epoch Validate call
// constructs nothing (hot-path purity contract).
var (
	errAnnealMaxIter      = errors.New("core: anneal MaxIter < 1")
	errAnnealPerturb      = errors.New("core: anneal Perturb outside (0,1]")
	errAnnealDeltaPerturb = errors.New("core: anneal DeltaPerturb outside (0,1]")
	errAnnealAccept       = errors.New("core: anneal Accept must be positive")
	errAnnealDeltaAccept  = errors.New("core: anneal DeltaAccept outside (0,1]")
	errAnnealSwapFraction = errors.New("core: anneal SwapFraction outside [0,1]")
)

// Validate checks parameter domains.
func (c *AnnealConfig) Validate() error {
	switch {
	case c.MaxIter < 1:
		return errAnnealMaxIter
	case c.Perturb <= 0 || c.Perturb > 1:
		return errAnnealPerturb
	case c.DeltaPerturb <= 0 || c.DeltaPerturb > 1:
		return errAnnealDeltaPerturb
	case c.Accept <= 0:
		return errAnnealAccept
	case c.DeltaAccept <= 0 || c.DeltaAccept > 1:
		return errAnnealDeltaAccept
	case c.SwapFraction < 0 || c.SwapFraction > 1:
		return errAnnealSwapFraction
	}
	return nil
}

// AnnealResult reports the optimisation outcome.
type AnnealResult struct {
	Allocation Allocation
	Objective  float64
	// Initial is the objective of the starting allocation before any
	// moves — the incumbent score. Callers that want plan-acceptance
	// hysteresis compare Objective against it without re-evaluating.
	Initial float64
	// Iterations actually executed and moves accepted.
	Iterations int
	Accepted   int
}

// Annealer is a reusable Algorithm 1 runner: it owns the incremental
// evaluator, the best-allocation buffer, the result record, and the
// deterministic generator, all of which are reused across Run calls so
// a controller invoking it once per epoch allocates nothing in steady
// state (DESIGN.md §11).
type Annealer struct {
	eval Evaluator
	best Allocation
	res  AnnealResult
	r    rng.Rand
}

// Anneal runs Algorithm 1: simulated annealing over allocations with
// the incremental objective evaluator, a perturbation magnitude that
// shrinks the move neighbourhood as the schedule cools, and the
// fixed-point Metropolis acceptance rule
//
//	probability = e^(-diff/accept); accept if randi() mod 1/probability == 0
//
// using the custom fixed-point rand and e^x implementations.
//
// This convenience form allocates a fresh Annealer and copies the
// winning allocation out; per-epoch callers hold an Annealer and use
// Run directly.
func Anneal(prob *Problem, initial Allocation, cfg AnnealConfig) (*AnnealResult, error) {
	var a Annealer
	res, err := a.Run(prob, initial, cfg)
	if err != nil {
		return nil, err
	}
	out := *res
	out.Allocation = res.Allocation.Clone()
	return &out, nil
}

// Run executes Algorithm 1 over the annealer's reused state. The
// returned result — including its Allocation — aliases annealer-owned
// buffers and stays valid only until the next Run call; callers that
// retain it across epochs must Clone the allocation.
func (a *Annealer) Run(prob *Problem, initial Allocation, cfg AnnealConfig) (*AnnealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eval := &a.eval
	if err := eval.Reset(prob, initial); err != nil {
		return nil, err
	}
	m := prob.NumThreads()
	n := prob.NumCores()
	a.r.Reseed(cfg.Seed)
	r := &a.r

	// The acceptance temperature is scaled to the objective magnitude so
	// one parameter set works across problem sizes.
	scale := math.Abs(eval.Objective())
	if scale < 1e-6 {
		scale = 1e-6
	}
	accept := cfg.Accept * scale
	perturb := cfg.Perturb

	a.best = growAlloc(a.best, len(eval.alloc))
	copy(a.best, eval.alloc)
	bestScore := eval.Objective()
	a.res = AnnealResult{Initial: bestScore}
	res := &a.res

	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iterations++
		// Move generation. The perturbation magnitude bounds how far the
		// new core index may land from the current one (Algorithm 1's
		// pos_new = pos + sqrt(perturb)*randi(...)).
		span := int(math.Sqrt(perturb)*float64(n)) + 1
		if span > n {
			span = n
		}
		// The candidate move is carried in plain locals and applied in an
		// explicit branch — a closure here would allocate every iteration.
		var diff float64
		isSwap := false
		var mvI, mvJ int
		var mvDst arch.CoreID
		if m >= 2 && r.Float64() < cfg.SwapFraction {
			i := r.Intn(m)
			j := r.Intn(m)
			if i == j {
				j = (j + 1) % m
			}
			// A swap must respect both threads' affinity masks.
			if !prob.AllowedOn(i, int(eval.alloc[j])) || !prob.AllowedOn(j, int(eval.alloc[i])) {
				perturb *= cfg.DeltaPerturb
				accept *= cfg.DeltaAccept
				continue
			}
			diff = eval.SwapDelta(i, j)
			isSwap, mvI, mvJ = true, i, j
		} else {
			i := r.Intn(m)
			cur := int(eval.alloc[i])
			off := r.IntRange(-span, span+1)
			dst := ((cur+off)%n + n) % n
			if dst == cur {
				dst = (dst + 1) % n
			}
			if !prob.AllowedOn(i, dst) {
				// Scan forward for the nearest allowed core; give up on
				// this iteration if the thread is fully pinned.
				found := false
				for step := 1; step < n; step++ {
					cand := (dst + step) % n
					if cand != cur && prob.AllowedOn(i, cand) {
						dst, found = cand, true
						break
					}
				}
				if !found {
					perturb *= cfg.DeltaPerturb
					accept *= cfg.DeltaAccept
					continue
				}
			}
			diff = eval.MoveDelta(i, arch.CoreID(dst))
			mvI, mvDst = i, arch.CoreID(dst)
		}

		take := false
		if diff > 0 {
			take = true // always accept an improvement
		} else if accept > 0 {
			if cfg.UseFloat {
				take = r.Float64() < math.Exp(diff/accept)
			} else {
				take = fixedPointAccept(diff, accept, r)
			}
		}
		if take {
			if isSwap {
				eval.Swap(mvI, mvJ)
			} else {
				eval.Move(mvI, mvDst)
			}
			res.Accepted++
			if s := eval.Objective(); s > bestScore {
				bestScore = s
				copy(a.best, eval.alloc)
			}
		}
		perturb *= cfg.DeltaPerturb
		accept *= cfg.DeltaAccept
	}
	res.Allocation = a.best
	res.Objective = bestScore
	return res, nil
}

// fixedPointAccept implements the paper's acceptance rule with the
// custom fixed-point e^x: probability = e^(-|diff|/accept), accepted
// when randi() mod round(1/probability) == 0.
func fixedPointAccept(diff, accept float64, r *rng.Rand) bool {
	x := fixedpt.FromFloat(-diff / accept) // diff <= 0, so x >= 0
	prob := fixedpt.ExpNeg(x)
	if prob <= 0 {
		return false
	}
	if prob >= fixedpt.One {
		return true
	}
	inv := uint32(fixedpt.Div(fixedpt.One, prob).Float())
	if inv <= 1 {
		return true
	}
	return r.Uint32()%inv == 0
}

// GreedyInitial builds a sensible starting allocation: threads in
// descending utilisation order are placed on the core with the best
// marginal objective gain. Used when the previous epoch's allocation is
// unavailable.
func GreedyInitial(prob *Problem) (Allocation, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	m, n := prob.NumThreads(), prob.NumCores()
	alloc := make(Allocation, m)
	// Start everything on core 0, then greedily relocate.
	eval, err := NewEvaluator(prob, alloc)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		bestCore := eval.alloc[i]
		bestDelta := 0.0
		if !prob.AllowedOn(i, int(bestCore)) {
			bestDelta = math.Inf(-1) // must move somewhere allowed
		}
		for j := 0; j < n; j++ {
			if !prob.AllowedOn(i, j) {
				continue
			}
			if d := eval.MoveDelta(i, arch.CoreID(j)); d > bestDelta {
				bestDelta = d
				bestCore = arch.CoreID(j)
			}
		}
		if bestCore != eval.alloc[i] {
			eval.Move(i, bestCore)
		}
	}
	return eval.Allocation(), nil
}

// ScaledMaxIter returns the iteration budget used for a platform scale,
// matching the paper's Fig. 8(a) strategy: "for larger configurations
// we limit the number of iterations to avoid excessive overhead,
// therefore trading off solution quality for scalability."
func ScaledMaxIter(nCores, nThreads int) int {
	iter := 64 * nCores * intLog2(nThreads+1)
	switch {
	case iter < 256:
		return 256
	case iter > 4096:
		return 4096
	default:
		return iter
	}
}

func intLog2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

// String renders the config compactly for experiment logs.
func (c AnnealConfig) String() string {
	mode := "fixed-point"
	if c.UseFloat {
		mode = "float"
	}
	return fmt.Sprintf("iters=%d perturb=%.2fxΔ%.3f accept=%.2fxΔ%.3f swap=%.2f %s",
		c.MaxIter, c.Perturb, c.DeltaPerturb, c.Accept, c.DeltaAccept, c.SwapFraction, mode)
}
