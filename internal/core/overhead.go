package core

import (
	"fmt"
	"time"

	"smartbalance/internal/arch"
	"smartbalance/internal/powermodel"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

// This file supports the paper's Fig. 7 overhead and scalability
// analysis: per-phase runtime of SmartBalance measured on the 4-core
// platform and extrapolated from 2 to 128 cores with 4 to 256 threads.
// Here every scale is measured directly by driving the real phase
// implementations on synthetic inputs of that size.

// MigrationCostNs is the modelled cost of migrating one thread
// (runqueue manipulation plus cold-cache refill), charged for the
// paper's assumption that 50% of threads migrate per epoch. Migration
// cost is a property of the target hardware, not of the host running
// this reproduction, so it is modelled rather than timed.
const MigrationCostNs = 30_000

// ScalePoint is one (cores, threads) configuration of the scalability
// sweep.
type ScalePoint struct {
	Cores   int
	Threads int
}

// ScalabilityScenarios returns the paper's Fig. 7(b) sweep: 2 to 128
// cores with 2 threads per core.
func ScalabilityScenarios() []ScalePoint {
	var out []ScalePoint
	for n := 2; n <= 128; n *= 2 {
		out = append(out, ScalePoint{Cores: n, Threads: 2 * n})
	}
	return out
}

// PhaseTimes is the per-phase overhead of one SmartBalance epoch at a
// given scale.
type PhaseTimes struct {
	Scale    ScalePoint
	MaxIter  int
	Sense    time.Duration
	Predict  time.Duration
	Optimize time.Duration
	// Migrate is modelled (50% of threads x MigrationCostNs).
	Migrate time.Duration
}

// Total returns the summed per-epoch overhead.
func (p PhaseTimes) Total() time.Duration {
	return p.Sense + p.Predict + p.Optimize + p.Migrate
}

// FractionOfEpoch returns the overhead relative to an epoch length.
func (p PhaseTimes) FractionOfEpoch(epochNs int64) float64 {
	if epochNs <= 0 {
		return 0
	}
	return float64(p.Total().Nanoseconds()) / float64(epochNs)
}

// MeasurePhases times one sense-predict-optimize pass of the real
// implementation at the given scale, using a trained predictor and a
// synthetic measurement population. repeat > 1 averages over several
// passes for stable numbers. Timing uses the host clock; for
// deterministic output (tests, golden runs) use MeasurePhasesWithClock
// and a FakeClock.
func MeasurePhases(pred *Predictor, sp ScalePoint, repeat int, seed uint64) (PhaseTimes, error) {
	return MeasurePhasesWithClock(pred, sp, repeat, seed, RealClock())
}

// MeasurePhasesWithClock is MeasurePhases with an injectable time
// source, keeping host time out of the simulation packages (the
// wallclock invariant).
func MeasurePhasesWithClock(pred *Predictor, sp ScalePoint, repeat int, seed uint64, clk Clock) (PhaseTimes, error) {
	if sp.Cores < 1 || sp.Threads < 1 {
		return PhaseTimes{}, fmt.Errorf("core: invalid scale %+v", sp)
	}
	if repeat < 1 {
		repeat = 1
	}
	plat, err := arch.ScalingHMP(sp.Cores)
	if err != nil {
		return PhaseTimes{}, err
	}
	types := plat.Types
	q := len(types)
	pms := make([]*powermodel.CoreModel, q)
	for i := range types {
		pm, err := powermodel.NewCoreModel(&types[i])
		if err != nil {
			return PhaseTimes{}, err
		}
		pms[i] = pm
	}
	r := rng.New(seed)

	// Synthetic measured population: random training-space phases
	// profiled on random source types.
	phases := make([]workload.Phase, sp.Threads)
	srcs := make([]arch.CoreTypeID, sp.Threads)
	for i := range phases {
		for {
			phases[i] = randomPhase(r, i)
			if phases[i].Validate() == nil {
				break
			}
		}
		srcs[i] = arch.CoreTypeID(r.Intn(q))
	}

	pt := PhaseTimes{Scale: sp, MaxIter: ScaledMaxIter(sp.Cores, sp.Threads)}
	for rep := 0; rep < repeat; rep++ {
		// ---- Sense: assemble measurements (per-thread aggregation). ----
		t0 := clk.Now()
		meas := make([]Measurement, sp.Threads)
		for i := range meas {
			meas[i] = ProfileMeasurement(&phases[i], types, srcs[i], pms[srcs[i]], 0, nil)
			meas[i].Util = 0.3 + 0.7*r.Float64()
		}
		pt.Sense += sinceOn(clk, t0)

		// ---- Predict: fill S(k) and P(k). ----
		t1 := clk.Now()
		prob := &Problem{
			IPS:       make([][]float64, sp.Threads),
			Power:     make([][]float64, sp.Threads),
			Util:      make([]float64, sp.Threads),
			IdlePower: make([]float64, sp.Cores),
		}
		for j := 0; j < sp.Cores; j++ {
			prob.IdlePower[j] = pms[plat.TypeID(arch.CoreID(j))].SleepW()
		}
		for i := range meas {
			ipsRow := make([]float64, sp.Cores)
			powRow := make([]float64, sp.Cores)
			ipsByType := make([]float64, q)
			powByType := make([]float64, q)
			for tid := 0; tid < q; tid++ {
				ips, err := pred.PredictIPS(&meas[i], arch.CoreTypeID(tid))
				if err != nil {
					return PhaseTimes{}, err
				}
				pw, err := pred.PredictPower(&meas[i], arch.CoreTypeID(tid))
				if err != nil {
					return PhaseTimes{}, err
				}
				ipsByType[tid] = ips
				powByType[tid] = pw
			}
			for j := 0; j < sp.Cores; j++ {
				tid := plat.TypeID(arch.CoreID(j))
				ipsRow[j] = ipsByType[tid]
				powRow[j] = powByType[tid]
			}
			prob.IPS[i] = ipsRow
			prob.Power[i] = powRow
			prob.Util[i] = meas[i].Util
		}
		pt.Predict += sinceOn(clk, t1)

		// ---- Optimize: Algorithm 1 at the scaled iteration budget. ----
		t2 := clk.Now()
		initial := make(Allocation, sp.Threads)
		for i := range initial {
			initial[i] = arch.CoreID(i % sp.Cores)
		}
		cfg := DefaultAnnealConfig()
		cfg.MaxIter = pt.MaxIter
		cfg.Seed = seed + uint64(rep)
		if _, err := Anneal(prob, initial, cfg); err != nil {
			return PhaseTimes{}, err
		}
		pt.Optimize += sinceOn(clk, t2)
	}
	pt.Sense /= time.Duration(repeat)
	pt.Predict /= time.Duration(repeat)
	pt.Optimize /= time.Duration(repeat)
	// Migration: modelled, not host-timed (see MigrationCostNs).
	pt.Migrate = time.Duration(sp.Threads/2) * time.Duration(MigrationCostNs)
	return pt, nil
}
