package core

import (
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
)

// OracleBalance is the sampling-based upper bound the paper's Section
// 4.2.2 contrasts prediction against: instead of predicting each
// thread's behaviour on other core types from one measurement, it reads
// the exact model-evaluated throughput/power matrices ("as if every
// thread had been sampled on every core type, at zero cost") and runs
// the same Algorithm 1 optimiser on them.
//
// On real hardware this policy is unimplementable without the sampling
// overhead the paper rejects; here it bounds how much the predictor's
// error costs — the prediction-vs-oracle ablation.
type OracleBalance struct {
	cfg    Config
	epochs int
}

// NewOracle builds an oracle-matrix balancer with the given optimiser
// configuration.
func NewOracle(cfg Config) (*OracleBalance, error) {
	if cfg.Anneal.MaxIter > 0 {
		if err := cfg.Anneal.Validate(); err != nil {
			return nil, err
		}
	}
	return &OracleBalance{cfg: cfg}, nil
}

// Name implements kernel.Balancer.
func (o *OracleBalance) Name() string { return "oracle" }

// Rebalance implements kernel.Balancer.
func (o *OracleBalance) Rebalance(k *kernel.Kernel, _ kernel.Time,
	_ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	o.epochs++
	tasks := k.ActiveTasks()
	if len(tasks) == 0 {
		return
	}
	plat := k.Platform()
	prob, err := OracleProblem(plat, k, tasks, o.cfg.Weights)
	if err != nil {
		return
	}
	initial := make(Allocation, len(tasks)) //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
	for i, t := range tasks {
		initial[i] = t.Core()
	}
	acfg := o.cfg.Anneal
	if acfg.MaxIter <= 0 {
		acfg = DefaultAnnealConfig()
		acfg.MaxIter = ScaledMaxIter(plat.NumCores(), len(tasks))
	}
	acfg.Seed ^= uint64(o.epochs) * 0x9E3779B97F4A7C15
	res, err := Anneal(prob, initial, acfg)
	if err != nil {
		return
	}
	for i, t := range tasks {
		if res.Allocation[i] != t.Core() {
			_ = k.Migrate(t.ID, res.Allocation[i])
		}
	}
}
