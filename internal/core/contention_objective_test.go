package core

import (
	"math"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/rng"
)

// toyContention attaches a 2-domain contention term to the 3-core toy
// problem: cores {0,1} share a domain, core 2 is alone.
func toyContention(wsKB, bwGBps float64) *ContentionTerm {
	return &ContentionTerm{
		DomainOf:    []int32{0, 0, 1},
		DomLLCKB:    []float64{1024, 512},
		DomBWGBps:   []float64{8, 8},
		WsKB:        []float64{wsKB, wsKB, wsKB, wsKB},
		BwGBps:      []float64{bwGBps, bwGBps, bwGBps, bwGBps},
		MissSlope:   0.9,
		PressureCap: 2,
		MaxBWUtil:   0.9,
	}
}

// randomContention builds a valid random term for an m-thread, n-core
// problem, with a round-robin domain partition.
func randomContention(r *rng.Rand, m, n int) *ContentionTerm {
	nd := 1 + r.Intn(n)
	t := &ContentionTerm{
		DomainOf:    make([]int32, n),
		DomLLCKB:    make([]float64, nd),
		DomBWGBps:   make([]float64, nd),
		WsKB:        make([]float64, m),
		BwGBps:      make([]float64, m),
		MissSlope:   0.2 + r.Float64()*2,
		PressureCap: 1 + r.Float64()*3,
		MaxBWUtil:   0.5 + r.Float64()*0.4,
	}
	for j := 0; j < n; j++ {
		t.DomainOf[j] = int32(j % nd)
	}
	for d := 0; d < nd; d++ {
		t.DomLLCKB[d] = 256 + r.Float64()*4096
		t.DomBWGBps[d] = 1 + r.Float64()*15
	}
	for i := 0; i < m; i++ {
		t.WsKB[i] = r.Float64() * 8192
		t.BwGBps[i] = r.Float64() * 4
	}
	return t
}

func TestContentionTermValidateRejects(t *testing.T) {
	bad := []func(*ContentionTerm){
		func(c *ContentionTerm) { c.DomainOf = c.DomainOf[:2] },   // wrong core count
		func(c *ContentionTerm) { c.DomainOf[1] = 5 },             // domain out of range
		func(c *ContentionTerm) { c.DomainOf[1] = -1 },            // negative domain
		func(c *ContentionTerm) { c.DomLLCKB = nil },              // no domains
		func(c *ContentionTerm) { c.DomLLCKB[0] = 0 },             // non-positive capacity
		func(c *ContentionTerm) { c.DomBWGBps = c.DomBWGBps[:1] }, // shape mismatch
		func(c *ContentionTerm) { c.DomBWGBps[1] = -2 },           // negative bandwidth
		func(c *ContentionTerm) { c.WsKB = c.WsKB[:1] },           // wrong thread count
		func(c *ContentionTerm) { c.WsKB[3] = -1 },                // negative footprint
		func(c *ContentionTerm) { c.WsKB[0] = math.NaN() },        // non-finite footprint
		func(c *ContentionTerm) { c.BwGBps[2] = math.Inf(1) },     // non-finite demand
		func(c *ContentionTerm) { c.MissSlope = -0.1 },            // negative slope
		func(c *ContentionTerm) { c.PressureCap = 0 },             // no cap
		func(c *ContentionTerm) { c.MaxBWUtil = 1 },               // util clamp must be < 1
	}
	for i, mod := range bad {
		p := toyProblem()
		p.Contention = toyContention(512, 1)
		mod(p.Contention)
		if err := p.Validate(); err == nil {
			t.Errorf("bad contention term %d accepted", i)
		}
	}
	p := toyProblem()
	p.Contention = toyContention(512, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid term rejected: %v", err)
	}
}

// TestContentionZeroFootprintExact: a term whose threads have zero
// footprint and zero bandwidth demand yields penalty factors of exactly
// 1, so the objective is bit-identical to the term-free problem — the
// optimizer half of the §15 byte-identity invariant.
func TestContentionZeroFootprintExact(t *testing.T) {
	allocs := []Allocation{{0, 0, 0, 0}, {0, 1, 2, 2}, {2, 1, 0, 1}}
	for _, mode := range []ObjectiveMode{GlobalRatio, PerCoreRatioSum, MaxThroughput} {
		for _, a := range allocs {
			plain := toyProblem()
			plain.Mode = mode
			want, err := EvaluateAllocation(plain, a)
			if err != nil {
				t.Fatal(err)
			}
			cont := toyProblem()
			cont.Mode = mode
			cont.Contention = toyContention(0, 0)
			got, err := EvaluateAllocation(cont, a)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("mode %v alloc %v: zero-footprint term shifted objective %v -> %v", mode, a, want, got)
			}
		}
	}
}

// TestContentionPenalizesCoLocation: with a heavy shared footprint, the
// contention term must make packing both hot threads into one LLC
// domain score worse than separating them across domains, all else
// equal.
func TestContentionPenalizesCoLocation(t *testing.T) {
	p := toyProblem()
	p.Contention = toyContention(2048, 4)
	packed, err := EvaluateAllocation(p, Allocation{0, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same cores, but thread 1 crosses into core 2's singleton domain.
	split, err := EvaluateAllocation(p, Allocation{0, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	plain := toyProblem()
	packedPlain, _ := EvaluateAllocation(plain, Allocation{0, 1, 2, 2})
	splitPlain, _ := EvaluateAllocation(plain, Allocation{0, 2, 2, 2})
	// The term must shift the comparison toward splitting relative to
	// the contention-blind objective.
	if split/packed <= splitPlain/packedPlain {
		t.Fatalf("contention term did not reward domain separation: %v/%v vs plain %v/%v",
			split, packed, splitPlain, packedPlain)
	}
}

// TestContentionObjectiveMonotoneInFootprint: growing every thread's
// working set and bandwidth demand never raises the objective.
func TestContentionObjectiveMonotoneInFootprint(t *testing.T) {
	alloc := Allocation{0, 1, 2, 0}
	prev := math.Inf(1)
	for _, ws := range []float64{0, 256, 1024, 4096, 16384} {
		p := toyProblem()
		p.Contention = toyContention(ws, ws/512)
		got, err := EvaluateAllocation(p, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if !(got > 0) || math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("objective %v at ws %g not positive finite", got, ws)
		}
		if got > prev {
			t.Fatalf("objective rose with footprint: %v after %v at ws %g", got, prev, ws)
		}
		prev = got
	}
}

// TestContentionIncrementalMatchesScratch is the §4 evaluator
// equivalence property with a contention term attached: previews equal
// applied deltas, and the incrementally maintained objective equals a
// scratch evaluation after every mutation.
func TestContentionIncrementalMatchesScratch(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		m := 2 + r.Intn(10)
		n := 2 + r.Intn(5)
		p := randomProblem(r, m, n)
		p.Contention = randomContention(r, m, n)
		if trial%3 == 0 {
			p.Mode = ObjectiveMode(trial / 3 % 3)
		}
		alloc := make(Allocation, m)
		for i := range alloc {
			alloc[i] = arch.CoreID(r.Intn(n))
		}
		e, err := NewEvaluator(p, alloc)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			if r.Float64() < 0.5 {
				i := r.Intn(m)
				dst := arch.CoreID(r.Intn(n))
				pre := e.MoveDelta(i, dst)
				got := e.Move(i, dst)
				if math.Abs(pre-got) > 1e-9 {
					t.Fatalf("MoveDelta %g != Move %g", pre, got)
				}
			} else {
				i, j := r.Intn(m), r.Intn(m)
				pre := e.SwapDelta(i, j)
				got := e.Swap(i, j)
				if math.Abs(pre-got) > 1e-9 {
					t.Fatalf("SwapDelta %g != Swap %g", pre, got)
				}
			}
			scratch, err := EvaluateAllocation(p, e.Allocation())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(scratch-e.Objective()) > 1e-6*(1+math.Abs(scratch)) {
				t.Fatalf("incremental %.9f != scratch %.9f at step %d (trial %d)", e.Objective(), scratch, step, trial)
			}
		}
	}
}
