package core

import (
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

// runScenario executes specs on plat under balancer b for durNs.
func runScenario(t *testing.T, plat *arch.Platform, b kernel.Balancer, specs []workload.ThreadSpec, durNs int64) *kernel.RunStats {
	t.Helper()
	m, err := machine.New(plat)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(m, b, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(durNs); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return k.Stats()
}

func newSmartBalance(t *testing.T, types []arch.CoreType) *SmartBalance {
	t.Helper()
	pred, err := Train(types, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := New(pred, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("nil predictor accepted")
	}
	p, _ := NewPredictor(arch.Table2Types())
	if _, err := New(p, DefaultConfig()); err == nil {
		t.Fatal("untrained predictor accepted")
	}
}

func TestSmartBalanceName(t *testing.T) {
	sb := newSmartBalance(t, arch.Table2Types())
	if sb.Name() != "smartbalance" {
		t.Fatalf("Name() = %q", sb.Name())
	}
}

func TestSenseFromSample(t *testing.T) {
	// Sense is exercised end-to-end below; here check the nil path.
	if _, ok := Sense(nil, 0.5, nil); ok {
		t.Fatal("nil sample sensed")
	}
}

func TestSmartBalanceBeatsVanillaOnMixes(t *testing.T) {
	// The headline result (Fig. 4b shape): on the 4-type HMP,
	// SmartBalance must deliver substantially better IPS/W than the
	// capability-blind vanilla balancer.
	plat := arch.QuadHMP()
	const dur = 1_500e6 // 1.5 s
	var ratios []float64
	for _, mix := range []string{"Mix1", "Mix5"} {
		specs, err := workload.Mix(mix, 2, 42)
		if err != nil {
			t.Fatal(err)
		}
		van := runScenario(t, plat, balancer.Vanilla{}, specs, dur)
		specs2, _ := workload.Mix(mix, 2, 42)
		sb := newSmartBalance(t, arch.Table2Types())
		smart := runScenario(t, plat, sb, specs2, dur)
		ratio := smart.EnergyEfficiency() / van.EnergyEfficiency()
		ratios = append(ratios, ratio)
		oh := sb.Overhead()
		t.Logf("%s: smart %.4g IPS/W vs vanilla %.4g IPS/W -> %.2fx (overhead/epoch %v)",
			mix, smart.EnergyEfficiency(), van.EnergyEfficiency(), ratio, oh.PerEpoch())
		if ratio < 1.15 {
			t.Errorf("%s: SmartBalance gain only %.2fx over vanilla", mix, ratio)
		}
	}
}

func TestSmartBalanceBeatsGTSOnBigLittle(t *testing.T) {
	// Fig. 5 shape: on the octa-core big.LITTLE, SmartBalance should
	// outperform ARM GTS on energy efficiency.
	plat := arch.OctaBigLittle()
	specs, err := workload.Mix("Mix6", 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	gts, err := balancer.NewGTS(plat)
	if err != nil {
		t.Fatal(err)
	}
	g := runScenario(t, plat, gts, specs, 1_500e6)
	specs2, _ := workload.Mix("Mix6", 2, 11)
	sb := newSmartBalance(t, arch.BigLittleTypes())
	s := runScenario(t, plat, sb, specs2, 1_500e6)
	ratio := s.EnergyEfficiency() / g.EnergyEfficiency()
	t.Logf("big.LITTLE Mix6: smart %.4g vs GTS %.4g IPS/W -> %.2fx",
		s.EnergyEfficiency(), g.EnergyEfficiency(), ratio)
	if ratio < 1.02 {
		t.Errorf("SmartBalance gain over GTS only %.2fx", ratio)
	}
}

func TestSmartBalanceTracksOverhead(t *testing.T) {
	plat := arch.QuadHMP()
	sb := newSmartBalance(t, arch.Table2Types())
	specs, _ := workload.Mix("Mix1", 2, 3)
	_ = runScenario(t, plat, sb, specs, 600e6)
	o := sb.Overhead()
	if o.Epochs != 10 {
		t.Fatalf("overhead epochs %d, want 10", o.Epochs)
	}
	if o.Total() <= 0 {
		t.Fatal("no overhead recorded")
	}
	if o.Optimize <= 0 || o.Sense <= 0 || o.Predict <= 0 {
		t.Fatalf("per-phase overheads missing: %+v", o)
	}
	if o.PerEpoch() <= 0 {
		t.Fatal("per-epoch overhead missing")
	}
}

func TestSmartBalanceHandlesEmptySystem(t *testing.T) {
	plat := arch.QuadHMP()
	sb := newSmartBalance(t, arch.Table2Types())
	m, _ := machine.New(plat)
	k, _ := kernel.New(m, sb, kernel.DefaultConfig())
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	// No tasks: nothing to do, no crash.
	if k.Stats().TotalInstructions() != 0 {
		t.Fatal("phantom instructions")
	}
}

func TestSmartBalanceRefusesMismatchedPlatform(t *testing.T) {
	// Predictor trained for 4 types, platform has 2: controller must
	// decline to act (and not corrupt anything).
	sb := newSmartBalance(t, arch.Table2Types())
	plat := arch.OctaBigLittle()
	specs, _ := workload.Benchmark("swaptions", 2, 1)
	stats := runScenario(t, plat, sb, specs, 300e6)
	if stats.Migrations != 0 {
		t.Fatal("mismatched controller migrated tasks")
	}
}

func TestSmartBalanceSleepyThreadsKeepLastMeasurement(t *testing.T) {
	// A thread that sleeps through entire epochs must still be placed
	// using its last known characterisation (no crash / no churn).
	plat := arch.QuadHMP()
	sb := newSmartBalance(t, arch.Table2Types())
	spec := workload.ThreadSpec{
		Name:      "narcoleptic",
		Benchmark: "sleepy",
		Phases: []workload.Phase{{
			Name: "blip", Instructions: 1e6, ILP: 2, MemShare: 0.3, BranchShare: 0.1,
			WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.4, MLP: 2,
			SleepAfterNs: 200e6, // sleeps >3 epochs at a time
		}},
	}
	busy, _ := workload.Benchmark("swaptions", 2, 5)
	specs := append(busy, spec)
	stats := runScenario(t, plat, sb, specs, 900e6)
	if stats.TotalInstructions() == 0 {
		t.Fatal("no work done")
	}
}

func TestBuildProblemShape(t *testing.T) {
	plat := arch.QuadHMP()
	sb := newSmartBalance(t, arch.Table2Types())
	m, _ := machine.New(plat)
	k, _ := kernel.New(m, sb, kernel.DefaultConfig())
	specs, _ := workload.Benchmark("canneal", 3, 8)
	for i := range specs {
		_, _ = k.Spawn(&specs[i])
	}
	if err := k.Run(400e6); err != nil {
		t.Fatal(err)
	}
	meas := []Measurement{
		{SrcType: 0, IPC: 1.2, IPS: 2.4e9, PowerW: 5, Util: 1, Valid: true},
		{SrcType: 3, IPC: 0.5, IPS: 0.25e9, PowerW: 0.06, Util: 0.4, Valid: true},
	}
	prob, err := sb.BuildProblem(plat, k, meas)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	if prob.NumThreads() != 2 || prob.NumCores() != 4 {
		t.Fatalf("problem shape %dx%d", prob.NumThreads(), prob.NumCores())
	}
	// Same-type entries must equal the measurements.
	if prob.IPS[0][0] != 2.4e9 || prob.Power[0][0] != 5 {
		t.Fatal("measured entries not preserved")
	}
	if prob.IPS[1][3] != 0.25e9 {
		t.Fatal("measured small-core entry not preserved")
	}
	// Predicted entries must be positive and bounded by peak.
	for i := range prob.IPS {
		for j := range prob.IPS[i] {
			ct := plat.Type(arch.CoreID(j))
			if prob.IPS[i][j] <= 0 || prob.IPS[i][j] > ct.PeakIPC*ct.FreqHz()+1 {
				t.Fatalf("IPS[%d][%d] = %g out of range", i, j, prob.IPS[i][j])
			}
			if prob.Power[i][j] < 0 {
				t.Fatalf("negative power prediction at (%d,%d)", i, j)
			}
		}
	}
}

func TestOracleProblem(t *testing.T) {
	plat := arch.QuadHMP()
	m, _ := machine.New(plat)
	k, _ := kernel.New(m, balancer.Pinned{}, kernel.DefaultConfig())
	specs, _ := workload.Benchmark("swaptions", 2, 2)
	for i := range specs {
		_, _ = k.Spawn(&specs[i])
	}
	if err := k.Run(100e6); err != nil {
		t.Fatal(err)
	}
	prob, err := OracleProblem(plat, k, k.ActiveTasks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	// Oracle IPS on Huge must exceed IPS on Small for compute-bound work.
	if prob.IPS[0][0] <= prob.IPS[0][3] {
		t.Fatalf("oracle lost heterogeneity: %g <= %g", prob.IPS[0][0], prob.IPS[0][3])
	}
}

func TestKernelThreadsLeftAlone(t *testing.T) {
	// Section 5.1: threads marked as kernel threads at fork are not
	// re-allocated by SmartBalance; user threads are.
	plat := arch.QuadHMP()
	sb := newSmartBalance(t, arch.Table2Types())
	m, _ := machine.New(plat)
	k, _ := kernel.New(m, sb, kernel.DefaultConfig())

	kspec := workload.ThreadSpec{
		Name:         "kworker",
		Benchmark:    "kernel",
		KernelThread: true,
		Phases: []workload.Phase{{
			Name: "housekeeping", Instructions: 2e6, ILP: 1.5, MemShare: 0.3, BranchShare: 0.15,
			WorkingSetIKB: 6, WorkingSetDKB: 32, BranchEntropy: 0.4, MLP: 1.5,
			SleepAfterNs: 8e6,
		}},
	}
	kid, err := k.Spawn(&kspec)
	if err != nil {
		t.Fatal(err)
	}
	home := k.Task(kid).Core()
	users, _ := workload.Benchmark("canneal", 3, 17)
	for i := range users {
		_, _ = k.Spawn(&users[i])
	}
	if err := k.Run(900e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	kt := k.Task(kid)
	if !kt.IsKernelThread() {
		t.Fatal("kernel-thread mark lost")
	}
	if kt.Migrations() != 0 || kt.Core() != home {
		t.Fatalf("kernel thread was re-allocated: core %d->%d, %d migrations",
			home, kt.Core(), kt.Migrations())
	}
	// The user threads must have been balanced as usual.
	migrated := 0
	for _, task := range k.Tasks() {
		if !task.IsKernelThread() && task.Migrations() > 0 {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatal("no user thread was ever migrated")
	}
}
