package core

import (
	"errors"
	"fmt"
	"math"

	"smartbalance/internal/arch"
	"smartbalance/internal/regress"
)

// ErrNotUsable marks a prediction that must not reach the optimiser: a
// non-finite output, symptomatic of a degenerate regression fit (e.g. a
// rank-deficient training corpus leaving NaN coefficients) or of
// corrupt measurement inputs. Callers detect it with errors.Is and skip
// the epoch rather than optimise over garbage.
var ErrNotUsable = errors.New("core: prediction not usable")

// errInvalidMeasurement rejects predictions from measurements whose
// Valid flag is unset. A sentinel (not fmt.Errorf) so the rejection is
// allocation-free on the hot predict path.
var errInvalidMeasurement = errors.New("core: prediction from invalid measurement")

// NumFeatures is the width of the predictor feature vector — the ten
// columns of the paper's Table 4: FR, mr$i, mr$d, I_msh, I_bsh, mr_b,
// mr_itlb, mr_dtlb, ipc_src, and a constant.
const NumFeatures = 10

// FeatureNames returns the Table 4 column labels in order.
func FeatureNames() []string {
	return []string{"FR", "mr$i", "mr$d", "Imsh", "Ibsh", "mrb", "mritlb", "mrdtlb", "ipc_src", "const"}
}

// Features assembles the characterisation vector X_ij of Eq. (8) from a
// measurement on a source core, for prediction onto a destination type
// with the given frequency ratio FR = F_dst / F_src. The returned slice
// is freshly allocated; the hot predict path uses featuresInto on a
// predictor-owned array instead.
func Features(m *Measurement, freqRatio float64) []float64 {
	var x [NumFeatures]float64
	featuresInto(&x, m, freqRatio)
	out := make([]float64, NumFeatures)
	copy(out, x[:])
	return out
}

// featuresInto fills dst with the Eq. (8) characterisation vector
// without allocating.
func featuresInto(dst *[NumFeatures]float64, m *Measurement, freqRatio float64) {
	dst[0] = freqRatio
	dst[1] = m.MissL1I
	dst[2] = m.MissL1D
	dst[3] = m.MemShare
	dst[4] = m.BranchShare
	dst[5] = m.Mispredict
	dst[6] = m.MissITLB
	dst[7] = m.MissDTLB
	dst[8] = m.IPC
	dst[9] = 1
}

// PowerFit is the per-core-type affine performance-power relationship
// of Eq. (9): p = Alpha1*ipc + Alpha0, obtained from offline profiling.
type PowerFit struct {
	Alpha1 float64
	Alpha0 float64
}

// Predict evaluates the fit.
func (f PowerFit) Predict(ipc float64) float64 {
	p := f.Alpha1*ipc + f.Alpha0
	if p < 0 {
		p = 0
	}
	return p
}

// Predictor holds the trained coefficient matrix Θ for every ordered
// pair of distinct core types (the paper's Table 4) plus the per-type
// power fits.
type Predictor struct {
	types []arch.CoreType
	// theta[src][dst] is the linear model predicting ipc on dst from a
	// measurement on src; nil on the diagonal (measured directly).
	theta [][]*regress.Model
	power []PowerFit
}

// NewPredictor allocates an untrained predictor for the given core-type
// set.
func NewPredictor(types []arch.CoreType) (*Predictor, error) {
	if len(types) == 0 {
		return nil, errors.New("core: predictor needs at least one core type")
	}
	q := len(types)
	p := &Predictor{
		types: types,
		theta: make([][]*regress.Model, q),
		power: make([]PowerFit, q),
	}
	for i := range p.theta {
		p.theta[i] = make([]*regress.Model, q)
	}
	return p, nil
}

// NumTypes returns the core-type count q.
func (p *Predictor) NumTypes() int { return len(p.types) }

// Type returns core type tid.
func (p *Predictor) Type(tid arch.CoreTypeID) *arch.CoreType { return &p.types[tid] }

// SetModel installs a trained Θ row for the (src, dst) pair.
func (p *Predictor) SetModel(src, dst arch.CoreTypeID, m *regress.Model) error {
	if src == dst {
		return errors.New("core: diagonal predictor entries are measured, not modelled")
	}
	if len(m.Coef) != NumFeatures {
		return fmt.Errorf("core: model has %d coefficients, want %d", len(m.Coef), NumFeatures)
	}
	p.theta[src][dst] = m
	return nil
}

// Model returns the Θ row for (src, dst), or nil.
func (p *Predictor) Model(src, dst arch.CoreTypeID) *regress.Model { return p.theta[src][dst] }

// SetPowerFit installs the Eq. (9) fit for a core type.
func (p *Predictor) SetPowerFit(tid arch.CoreTypeID, f PowerFit) { p.power[tid] = f }

// PowerFitFor returns the Eq. (9) fit of a core type.
func (p *Predictor) PowerFitFor(tid arch.CoreTypeID) PowerFit { return p.power[tid] }

// Trained reports whether every off-diagonal Θ row and every power fit
// is present.
func (p *Predictor) Trained() bool {
	for s := range p.theta {
		for d := range p.theta[s] {
			if s != d && p.theta[s][d] == nil {
				return false
			}
		}
	}
	for _, f := range p.power {
		if f.Alpha0 == 0 && f.Alpha1 == 0 { //sbvet:allow floateq(exact zero is the untrained-model sentinel, never a computed value)
			return false
		}
	}
	return true
}

// PredictIPC predicts the thread's IPC on destination type dst from its
// measurement on m.SrcType (Eq. 8). For dst == src the measured IPC is
// returned unchanged. Predictions are clamped to the destination's
// physical range (0, PeakIPC].
func (p *Predictor) PredictIPC(m *Measurement, dst arch.CoreTypeID) (float64, error) {
	if !m.Valid {
		return 0, errInvalidMeasurement
	}
	if dst == m.SrcType {
		if !isFinite(m.IPC) {
			return 0, fmt.Errorf("%w: non-finite measured ipc %g", ErrNotUsable, m.IPC) //sbvet:allow hotpath(degenerate-measurement rejection; formats only when the epoch is being skipped)
		}
		return m.IPC, nil
	}
	model := p.theta[m.SrcType][dst]
	if model == nil {
		return 0, fmt.Errorf("core: no model for %s->%s", //sbvet:allow hotpath(fires only for an untrained type pair, which the controller refuses at construction)
			p.types[m.SrcType].Name, p.types[dst].Name)
	}
	fr := p.types[dst].FreqMHz / p.types[m.SrcType].FreqMHz
	// Stack-allocated feature vector: featuresInto fills a local array
	// and Predict does not retain its argument, so the slice never
	// escapes. Keeps the predictor re-entrant (sweep workers share one
	// trained predictor) and the hot path allocation-free.
	var feat [NumFeatures]float64
	featuresInto(&feat, m, fr)
	ipc := model.Predict(feat[:])
	if !isFinite(ipc) {
		// NaN survives both clamp comparisons below; reject explicitly.
		return 0, fmt.Errorf("%w: non-finite ipc prediction for %s->%s", //sbvet:allow hotpath(degenerate-prediction rejection; formats only when the epoch is being skipped)
			ErrNotUsable, p.types[m.SrcType].Name, p.types[dst].Name)
	}
	if ipc < 0.01 {
		ipc = 0.01
	}
	if cap := p.types[dst].PeakIPC; ipc > cap {
		ipc = cap
	}
	return ipc, nil
}

// isFinite reports whether v is neither NaN nor an infinity.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// PredictIPS converts a predicted IPC into instructions per second on
// the destination type: ips_hat = ipc_hat * F_dst.
//
//sbvet:hotpath
func (p *Predictor) PredictIPS(m *Measurement, dst arch.CoreTypeID) (float64, error) {
	ipc, err := p.PredictIPC(m, dst)
	if err != nil {
		return 0, err
	}
	return ipc * p.types[dst].FreqHz(), nil
}

// PredictPower predicts the thread's average power on destination type
// dst (Eq. 9), using the measured power directly when dst == src.
//
//sbvet:hotpath
func (p *Predictor) PredictPower(m *Measurement, dst arch.CoreTypeID) (float64, error) {
	if !m.Valid {
		return 0, errInvalidMeasurement
	}
	if dst == m.SrcType {
		if !isFinite(m.PowerW) {
			return 0, fmt.Errorf("%w: non-finite measured power %g", ErrNotUsable, m.PowerW) //sbvet:allow hotpath(degenerate-measurement rejection; formats only when the epoch is being skipped)
		}
		return m.PowerW, nil
	}
	ipc, err := p.PredictIPC(m, dst)
	if err != nil {
		return 0, err
	}
	pw := p.power[dst].Predict(ipc)
	if !isFinite(pw) {
		return 0, fmt.Errorf("%w: non-finite power prediction on %s", //sbvet:allow hotpath(degenerate-prediction rejection; formats only when the epoch is being skipped)
			ErrNotUsable, p.types[dst].Name)
	}
	// Plausibility clamp to the Table 2 anchor: the trained fits satisfy
	// Predict(PeakIPC) < PeakPowerW (the clamp is a no-op on sane fits),
	// so only a corrupt fit or input can reach it.
	if cap := p.types[dst].PeakPowerW; cap > 0 && pw > cap {
		pw = cap
	}
	return pw, nil
}
