package core

import (
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/perfmodel"
	"smartbalance/internal/powermodel"
	"smartbalance/internal/regress"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

// This file implements the paper's offline profiling step: "In order to
// obtain Θ, we employ standard linear regression using the least
// squares method" and "α0, α1 ... are obtained from offline profiling".
// Profiling here runs workload phases through the analytical
// performance/power models on every core type — the stand-in for
// executing the training benchmarks on every core of the Gem5 platform.

// TrainingPhases assembles the profiling corpus. The paper trains on
// "offline profiling of PARSEC benchmarks", so the corpus is dominated
// by jittered variants of the benchmark phases (several profiled
// workers per benchmark), plus the IMB configurations and nRandom
// random (valid) phases to regularise the space between benchmarks.
func TrainingPhases(nRandom int, seed uint64) []workload.Phase {
	var phases []workload.Phase
	for variant := 0; variant < 6; variant++ {
		vseed := seed + uint64(variant)*0x51ED
		for _, name := range workload.Benchmarks() {
			specs, err := workload.Benchmark(name, 1, vseed)
			if err != nil {
				continue // unreachable: Benchmarks() names are valid
			}
			phases = append(phases, specs[0].Phases...)
		}
		for _, cfg := range workload.IMBConfigs() {
			specs, err := workload.IMB(cfg[0], cfg[1], 1, vseed)
			if err != nil {
				continue
			}
			phases = append(phases, specs[0].Phases...)
		}
	}
	r := rng.New(seed ^ 0x7A1E)
	for i := 0; i < nRandom; i++ {
		ph := randomPhase(r, i)
		if ph.Validate() == nil {
			phases = append(phases, ph)
		}
	}
	return phases
}

// randomPhase draws a phase from the model's valid attribute space.
func randomPhase(r *rng.Rand, i int) workload.Phase {
	return workload.Phase{
		Name:          fmt.Sprintf("rand%d", i),
		Instructions:  1e6,
		ILP:           0.8 + r.Float64()*4.5,
		MemShare:      0.05 + r.Float64()*0.5,
		BranchShare:   0.03 + r.Float64()*0.25,
		WorkingSetIKB: 2 + r.Float64()*60,
		WorkingSetDKB: 8 + r.Float64()*3000,
		BranchEntropy: r.Float64(),
		MLP:           1 + r.Float64()*4,
		TLBPressureI:  r.Float64() * 0.5,
		TLBPressureD:  r.Float64(),
	}
}

// ProfileMeasurement produces the steady-state measurement the sensors
// would report for a phase executing on a core of type src — the
// profiling-run observation. sensorSigma adds multiplicative Gaussian
// noise to the power reading (0 disables).
func ProfileMeasurement(ph *workload.Phase, types []arch.CoreType, src arch.CoreTypeID,
	pm *powermodel.CoreModel, sensorSigma float64, r *rng.Rand) Measurement {
	met := perfmodel.Evaluate(ph, &types[src])
	power := pm.BusyPower(met.IPC, ph)
	if sensorSigma > 0 && r != nil {
		power *= 1 + sensorSigma*r.NormFloat64()
		if power < 0 {
			power = 0
		}
	}
	return Measurement{
		Core:        -1, // profiling measurement, not tied to a physical core
		SrcType:     src,
		IPC:         met.IPC,
		IPS:         met.IPS(&types[src]),
		PowerW:      power,
		MissL1I:     met.MissRateL1I,
		MissL1D:     met.MissRateL1D,
		MemShare:    ph.MemShare,
		BranchShare: ph.BranchShare,
		Mispredict:  met.MispredictRate,
		MissITLB:    met.MissRateITLB,
		MissDTLB:    met.MissRateDTLB,
		Valid:       true,
	}
}

// TrainConfig parameterises offline training.
type TrainConfig struct {
	// RandomPhases is the number of synthetic phases added to the
	// benchmark-derived corpus.
	RandomPhases int
	// SensorSigma is the relative power-sensor noise applied to the
	// profiling observations.
	SensorSigma float64
	// Seed drives corpus generation and noise.
	Seed uint64
}

// DefaultTrainConfig mirrors the reproduction's standard setup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{RandomPhases: 80, SensorSigma: 0.02, Seed: 1}
}

// Train fits every off-diagonal Θ row and every per-type power fit over
// the profiling corpus, returning the trained predictor.
func Train(types []arch.CoreType, cfg TrainConfig) (*Predictor, error) {
	p, err := NewPredictor(types)
	if err != nil {
		return nil, err
	}
	phases := TrainingPhases(cfg.RandomPhases, cfg.Seed)
	if len(phases) < NumFeatures {
		return nil, fmt.Errorf("core: corpus of %d phases too small", len(phases))
	}
	pms := make([]*powermodel.CoreModel, len(types))
	for i := range types {
		pm, err := powermodel.NewCoreModel(&types[i])
		if err != nil {
			return nil, err
		}
		pms[i] = pm
	}
	r := rng.New(cfg.Seed ^ 0x5EED)

	// Profile every phase on every type once.
	obs := make([][]Measurement, len(types)) // obs[type][phase]
	for tid := range types {
		obs[tid] = make([]Measurement, len(phases))
		for pi := range phases {
			obs[tid][pi] = ProfileMeasurement(&phases[pi], types, arch.CoreTypeID(tid), pms[tid], cfg.SensorSigma, r)
		}
	}

	// Θ rows: for each ordered (src, dst) pair, regress dst IPC on the
	// src-side features.
	for s := range types {
		for d := range types {
			if s == d {
				continue
			}
			fr := types[d].FreqMHz / types[s].FreqMHz
			// Relative-error weighting: Fig. 6 reports *percentage*
			// error, so each sample is scaled by 1/target — weighted
			// least squares minimising the relative residual.
			rows := make([][]float64, len(phases))
			targets := make([]float64, len(phases))
			for pi := range phases {
				x := Features(&obs[s][pi], fr)
				y := obs[d][pi].IPC
				w := 1.0
				if y > 0.05 {
					w = 1 / y
				}
				for fi := range x {
					x[fi] *= w
				}
				rows[pi] = x
				targets[pi] = y * w
			}
			model, err := regress.Fit(rows, targets)
			if err != nil {
				return nil, fmt.Errorf("core: fit %s->%s: %w", types[s].Name, types[d].Name, err)
			}
			if err := p.SetModel(arch.CoreTypeID(s), arch.CoreTypeID(d), model); err != nil {
				return nil, err
			}
		}
	}

	// Eq. (9) power fits: per destination type, power ~ a1*ipc + a0.
	for tid := range types {
		xs := make([]float64, len(phases))
		ys := make([]float64, len(phases))
		for pi := range phases {
			xs[pi] = obs[tid][pi].IPC
			ys[pi] = obs[tid][pi].PowerW
		}
		a1, a0, err := regress.SimpleFit(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("core: power fit for %s: %w", types[tid].Name, err)
		}
		p.SetPowerFit(arch.CoreTypeID(tid), PowerFit{Alpha1: a1, Alpha0: a0})
	}
	return p, nil
}

// PredictionError quantifies the predictor's held-out accuracy (the
// paper's Fig. 6 metric): mean absolute percentage error of IPC and
// power predictions across all ordered type pairs for the given phases.
func PredictionError(p *Predictor, phases []workload.Phase, sensorSigma float64, seed uint64) (perfPct, powerPct float64, err error) {
	types := p.types
	pms := make([]*powermodel.CoreModel, len(types))
	for i := range types {
		pm, e := powermodel.NewCoreModel(&types[i])
		if e != nil {
			return 0, 0, e
		}
		pms[i] = pm
	}
	r := rng.New(seed ^ 0xE7A1)
	var sumPerf, sumPower float64
	n := 0
	for pi := range phases {
		for s := range types {
			src := arch.CoreTypeID(s)
			m := ProfileMeasurement(&phases[pi], types, src, pms[s], sensorSigma, r)
			for d := range types {
				if s == d {
					continue
				}
				dst := arch.CoreTypeID(d)
				truth := ProfileMeasurement(&phases[pi], types, dst, pms[d], 0, nil)
				ipcHat, e := p.PredictIPC(&m, dst)
				if e != nil {
					return 0, 0, e
				}
				pHat, e := p.PredictPower(&m, dst)
				if e != nil {
					return 0, 0, e
				}
				if truth.IPC > 1e-9 {
					sumPerf += abs(ipcHat-truth.IPC) / truth.IPC
				}
				if truth.PowerW > 1e-9 {
					sumPower += abs(pHat-truth.PowerW) / truth.PowerW
				}
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("core: empty evaluation set")
	}
	return 100 * sumPerf / float64(n), 100 * sumPower / float64(n), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
