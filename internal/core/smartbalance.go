package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"smartbalance/internal/arch"
	"smartbalance/internal/contention"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
	"smartbalance/internal/perfmodel"
	"smartbalance/internal/telemetry"
)

// Config parameterises the SmartBalance controller.
type Config struct {
	// Anneal configures the Algorithm 1 optimiser. MaxIter <= 0 selects
	// the scaled budget of Fig. 8(a) automatically.
	Anneal AnnealConfig
	// Weights are the per-core objective weights ω_j (nil = all ones).
	Weights []float64
	// Objective selects the optimisation goal (zero value: overall
	// IPS/Watt; see ObjectiveMode).
	Objective ObjectiveMode
	// Clock supplies the time source for per-phase overhead
	// measurement. nil selects RealClock (host time) — appropriate at
	// the cmd/ boundary; deterministic runs inject a FakeClock.
	Clock Clock
	// Degrade tunes the graceful-degradation fallback (DESIGN.md §9);
	// zero-valued fields select the defaults.
	Degrade DegradeConfig
}

// DegradeConfig tunes how the controller degrades under sensing faults.
// The zero value selects the defaults noted per field.
type DegradeConfig struct {
	// Decay is the per-epoch multiplicative confidence decay applied to
	// a degraded thread's last-known-good measurement: a measurement
	// aged a epochs carries confidence Decay^a (default 0.5).
	Decay float64
	// MinConfidence floors the decayed confidence so a long-degraded
	// thread keeps a small voice instead of vanishing from the
	// optimisation (default 0.1).
	MinConfidence float64
	// RecoveryEpochs is the hysteresis width: after a majority-degraded
	// epoch forces a skipped rebalance, this many consecutive clean
	// epochs must pass before optimisation re-arms (default 2).
	RecoveryEpochs int
}

// withDefaults resolves zero-valued fields.
func (d DegradeConfig) withDefaults() DegradeConfig {
	if d.Decay <= 0 || d.Decay > 1 {
		d.Decay = 0.5
	}
	if d.MinConfidence <= 0 || d.MinConfidence > 1 {
		d.MinConfidence = 0.1
	}
	if d.RecoveryEpochs <= 0 {
		d.RecoveryEpochs = 2
	}
	return d
}

// Health reports the controller's exposure to sensing faults — the
// observable side of the degradation contract, consumed by the
// fault-robustness ablation and by tests.
type Health struct {
	// DegradedThreadEpochs counts thread-epochs served from a decayed
	// last-known-good fallback because the fresh sample was invalid or
	// missing while the thread demonstrably ran.
	DegradedThreadEpochs int
	// UnmeasurableThreadEpochs counts thread-epochs where a degraded
	// thread had no last-known-good measurement at all and was left in
	// place.
	UnmeasurableThreadEpochs int
	// SkippedEpochs counts rebalances skipped because a majority of
	// sensed threads were degraded.
	SkippedEpochs int
	// RecoveryHolds counts clean epochs spent waiting out the
	// hysteresis after a majority-degraded epoch.
	RecoveryHolds int
	// DegradedMode reports whether the controller is currently holding
	// placement (inside a degraded episode or its recovery window).
	DegradedMode bool
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{Anneal: DefaultAnnealConfig()}
}

// PhaseOverhead accumulates the wall-clock cost of each SmartBalance
// phase across epochs — the measurement behind the paper's Fig. 7.
type PhaseOverhead struct {
	Sense    time.Duration
	Predict  time.Duration
	Optimize time.Duration
	Migrate  time.Duration
	// Epochs is the number of balancer invocations measured; Migrations
	// the number of thread moves requested.
	Epochs     int
	Migrations int
}

// Total returns the summed per-epoch overhead.
func (o *PhaseOverhead) Total() time.Duration {
	return o.Sense + o.Predict + o.Optimize + o.Migrate
}

// PerEpoch returns the mean overhead per balancer invocation.
func (o *PhaseOverhead) PerEpoch() time.Duration {
	if o.Epochs == 0 {
		return 0
	}
	return o.Total() / time.Duration(o.Epochs)
}

// SmartBalance is the closed-loop balancer: a kernel.Balancer whose
// Rebalance runs the sense, estimate/predict, optimise, and migrate
// phases at every epoch boundary (Fig. 2).
type SmartBalance struct {
	pred  *Predictor
	cfg   Config
	clock Clock

	// lastMeasure retains each thread's most recent valid measurement
	// so threads that slept through an epoch keep informed predictions.
	lastMeasure map[kernel.ThreadID]Measurement
	// lastGood records the epoch of each thread's most recent fresh
	// (SenseOK) measurement, the age base for confidence decay.
	lastGood map[kernel.ThreadID]int

	degrade DegradeConfig
	health  Health
	// cleanStreak counts consecutive non-majority-degraded epochs while
	// in degraded mode (the recovery hysteresis).
	cleanStreak int

	overhead PhaseOverhead
	epochs   int

	// tel, when non-nil, receives per-phase spans, metrics, and anomaly
	// triggers. The nil collector is free on the hot path; attribute
	// construction is additionally guarded by Enabled() because variadic
	// slices allocate at the caller.
	tel *telemetry.Collector
	// prevEE is the previous epoch's measured energy efficiency
	// (instructions per joule), the baseline for the negative-EE-gain
	// anomaly trigger.
	prevEE float64

	// Epoch-path scratch, reused across epochs so a steady-state
	// Rebalance allocates nothing (hot-path purity contract, DESIGN.md
	// §11). prob's matrices are windows into the flat ipsBuf/powBuf
	// backing arrays; spanAttrs backs every telemetry span's attribute
	// list, spread into Span which copies it into its arena.
	ann       Annealer
	optTasks  []*kernel.Task
	meas      []Measurement
	initial   Allocation
	prob      Problem
	ipsBuf    []float64
	powBuf    []float64
	ipsByType []float64
	powByType []float64
	spanAttrs [8]telemetry.Attr

	// cont, when non-nil, is the machine-side LLC-domain model the
	// contention-aware objective reads its topology from (SetContention).
	// The static per-domain arrays are snapshotted there; contTerm's
	// per-thread appetite vectors are epoch scratch, re-estimated from
	// sensing every Rebalance.
	cont         *contention.Model
	contDomainOf []int32
	contDomLLC   []float64
	contDomBW    []float64
	contMaxWsKB  float64
	contTerm     ContentionTerm
	contCurWs    []float64
	contCurBw    []float64
	contCoreWs   []float64
	contCoreBw   []float64
}

// New constructs a SmartBalance controller around a trained predictor.
func New(pred *Predictor, cfg Config) (*SmartBalance, error) {
	if pred == nil {
		return nil, errors.New("core: nil predictor")
	}
	if !pred.Trained() {
		return nil, errors.New("core: predictor is not fully trained")
	}
	if err := cfg.Anneal.Validate(); cfg.Anneal.MaxIter > 0 && err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = RealClock()
	}
	return &SmartBalance{
		pred:        pred,
		cfg:         cfg,
		clock:       clk,
		lastMeasure: make(map[kernel.ThreadID]Measurement),
		lastGood:    make(map[kernel.ThreadID]int),
		degrade:     cfg.Degrade.withDefaults(),
	}, nil
}

// Name implements kernel.Balancer.
func (s *SmartBalance) Name() string { return "smartbalance" }

// SetWeights replaces the per-core objective weights ω_j (Eq. 11)
// before the next epoch — the tuning knob the paper describes for
// giving "preference to certain cores or core types" (used, e.g., by
// the thermal-aware wrapper). nil restores uniform weights.
func (s *SmartBalance) SetWeights(w []float64) { s.cfg.Weights = w }

// Overhead returns the accumulated per-phase wall-clock costs.
func (s *SmartBalance) Overhead() PhaseOverhead { return s.overhead }

// Health returns the controller's accumulated degradation telemetry.
func (s *SmartBalance) Health() Health { return s.health }

// SetContention couples the controller to the machine's LLC-domain
// model: from the next epoch on, the optimiser's objective carries the
// shared-resource interference term (the "aware" arm of the A14
// ablation), with per-thread cache and bandwidth appetites estimated
// purely from sensed counters. nil — or never calling this — keeps the
// contention-blind objective, bit-for-bit. The domain topology is
// snapshotted here; it is static for the life of a model.
func (s *SmartBalance) SetContention(m *contention.Model) {
	s.cont = m
	if m == nil {
		return
	}
	n := m.NumCores()
	nd := m.NumDomains()
	s.contDomainOf = make([]int32, n)
	for c := 0; c < n; c++ {
		s.contDomainOf[c] = int32(m.DomainOf(arch.CoreID(c)))
	}
	s.contDomLLC = make([]float64, nd)
	s.contDomBW = make([]float64, nd)
	maxLLC := 0.0
	for d := 0; d < nd; d++ {
		s.contDomLLC[d] = m.DomainLLCKB(d)
		s.contDomBW[d] = m.DomainBWGBps(d)
		if s.contDomLLC[d] > maxLLC {
			maxLLC = s.contDomLLC[d]
		}
	}
	// Working-set estimates beyond (1+cap) x the largest LLC cannot
	// change any domain's clamped pressure, so the inversion saturates
	// there.
	s.contMaxWsKB = (1 + m.PressureCap()) * maxLLC
}

// contMissSlopeToIPS converts the machine model's miss-rate slope into
// an IPS-level penalty slope, and contMaxBWUtilIPS bounds the queueing
// term the optimiser sees. The machine applies its slope to the
// conditional L2 miss rate — a quantity that caps at 1 and is only one
// term of CPI — so the IPS-level interference is several times smaller
// than the miss-rate inflation. Reusing the raw knobs makes moving off
// a pressured cluster look like a near-3x throughput win, which the
// annealer pays real watts to chase (spreading over clusters that
// gating should empty). Empirically on the A14 mixes ~1/4 of the
// machine slope, with the queueing term clamped at 2:1, tracks the
// realised degradation.
const (
	contMissSlopeToIPS = 2.0
	contMaxBWUtilIPS   = 0.9
)

// contMinGain is the plan-acceptance hysteresis for the contention-aware
// controller: a new allocation is applied only when its predicted
// objective beats the incumbent placement's by this relative margin.
// The interference term makes near-tied plans common (several
// placements isolate the same antagonist equally well) while the
// annealer's per-epoch seed variation breaks those ties differently
// each epoch; with zero threshold the controller oscillates between
// equivalent optima and pays the cold-cache migration debt every epoch.
// Blind controllers keep the zero-threshold paper behaviour — the gate
// is only active when a contention model is attached, so disabled-model
// runs stay byte-identical.
const contMinGain = 0.02

// fillContentionTerm assembles the optimiser-side term for this epoch's
// measurements: static topology by reference, per-thread appetites
// estimated from sensing (working set by inverting the L1D capacity
// curve on the source type's cache; bandwidth as measured traffic
// scaled by utilisation).
func (s *SmartBalance) fillContentionTerm(t *ContentionTerm, plat *arch.Platform, meas []Measurement) {
	t.DomainOf = s.contDomainOf
	t.DomLLCKB = s.contDomLLC
	t.DomBWGBps = s.contDomBW
	// The machine's slope inflates the *conditional L2 miss rate*; only a
	// fraction of that reaches IPS (a miss is one term of CPI, and the
	// rate caps at 1). An IPS-level penalty reusing the raw slope
	// overstates interference several-fold, and an overstated term makes
	// the optimiser trade real watts for imaginary throughput (spreading
	// across clusters that gating should empty). Temper both knobs to
	// IPS scale.
	t.MissSlope = contMissSlopeToIPS * s.cont.MissSlope()
	t.PressureCap = s.cont.PressureCap()
	t.MaxBWUtil = s.cont.MaxBWUtil()
	if t.MaxBWUtil > contMaxBWUtilIPS {
		t.MaxBWUtil = contMaxBWUtilIPS
	}
	t.WsKB = growFloats(t.WsKB, len(meas))
	t.BwGBps = growFloats(t.BwGBps, len(meas))
	for i := range meas {
		mm := &meas[i]
		ct := &plat.Types[mm.SrcType]
		// Working set from the L2 capacity curve: the sensed conditional
		// LLC rate times the L1D rate is the absolute L2-to-memory rate,
		// whose inversion stays well-conditioned far beyond the cache
		// size (the L1D curve alone saturates a few multiples past L1,
		// flattening every appetite to the clamp and erasing the
		// placement gradient). The sensed rate embeds the co-runner
		// inflation the machine applied on the thread's current core;
		// dividing by the model's own MissScale recovers the clean
		// appetite, so estimates do not balloon under the very pressure
		// the balancer is trying to relieve.
		abs2 := mm.MissLLC * mm.MissL1D
		bw := mm.MemBWGBs
		if scale := s.cont.MissScale(mm.Core); scale > 1 {
			abs2 /= scale
			bw /= scale
		}
		t.WsKB[i] = perfmodel.EstimateWorkingSetKB(abs2, float64(ct.L2KB), perfmodel.L1DMissCap, s.contMaxWsKB)
		t.BwGBps[i] = bw * mm.Util
	}
}

// normalizeContentionIPS rescales each thread's predicted-IPS row by
// the inverse of the penalty its *current* core carries under the
// incumbent co-runner set (domain appetite minus the core's own —
// the same self-exclusion the machine and the evaluator apply).
// Sensed counters already embed the current contention (the machine
// degraded the slices that produced them), so applying the candidate
// penalty to raw predictions would double-count it; after this
// normalization the penalized objective reproduces the sensed
// throughput exactly at the incumbent placement, and the term scores
// only the *change* a move makes to co-location. Threads on
// unpressured cores (penalty 1) are untouched bit-for-bit.
func (s *SmartBalance) normalizeContentionIPS(t *ContentionTerm, ips [][]float64, meas []Measurement) {
	nd := len(t.DomLLCKB)
	n := len(t.DomainOf)
	s.contCurWs = growFloats(s.contCurWs, nd)
	s.contCurBw = growFloats(s.contCurBw, nd)
	for d := 0; d < nd; d++ {
		s.contCurWs[d] = 0
		s.contCurBw[d] = 0
	}
	s.contCoreWs = growFloats(s.contCoreWs, n)
	s.contCoreBw = growFloats(s.contCoreBw, n)
	for c := 0; c < n; c++ {
		s.contCoreWs[c] = 0
		s.contCoreBw[c] = 0
	}
	for i := range meas {
		c := meas[i].Core
		d := t.DomainOf[c]
		s.contCurWs[d] += t.WsKB[i]
		s.contCurBw[d] += t.BwGBps[i]
		s.contCoreWs[c] += t.WsKB[i]
		s.contCoreBw[c] += t.BwGBps[i]
	}
	for i := range meas {
		c := meas[i].Core
		d := int(t.DomainOf[c])
		pen := t.penalty(d, s.contCurWs[d]-s.contCoreWs[c], s.contCurBw[d]-s.contCoreBw[c])
		if pen >= 1 {
			continue
		}
		inv := 1 / pen
		row := ips[i]
		for j := range row {
			row[j] *= inv
		}
	}
}

// SetTelemetry installs (or, with nil, removes) the telemetry
// collector the controller reports into: per-phase spans with
// structured attributes, health gauges, and the flight-recorder
// anomaly triggers (majority-degraded epoch, negative EE gain, refused
// migration burst).
func (s *SmartBalance) SetTelemetry(c *telemetry.Collector) { s.tel = c }

// refusedBurst is the per-epoch refused-migration count at which the
// controller flags an anomaly: a couple of refusals are routine
// (tasks exit between decide and migrate), a burst means the plan and
// the kernel disagree about the world.
const refusedBurst = 3

// eeBuckets are the fixed upper bounds of the per-epoch
// energy-efficiency histogram, spanning the instructions-per-joule
// range the simulated platforms produce. Fixed at compile time so
// every run and every sweep worker shares one bucket layout.
var eeBuckets = []float64{1e8, 3e8, 1e9, 3e9, 1e10, 3e10, 1e11}

// epochEE computes the finished epoch's measured energy efficiency
// (total instructions per total joule, Eq. 2) from the per-core
// samples; 0 when no energy was metered.
func epochEE(cores []hpc.CoreEpochSample) float64 {
	var instr float64
	var energy float64
	for i := range cores {
		instr += float64(cores[i].Agg.Instructions)
		energy += cores[i].Agg.EnergyJ + cores[i].SleepEnergyJ
	}
	if energy <= 0 {
		return 0
	}
	return instr / energy
}

// confidence returns the exponentially age-decayed trust in a thread's
// last-known-good measurement: Decay^age floored at MinConfidence. A
// thread with no fresh measurement on record decays from epoch zero.
func (s *SmartBalance) confidence(id kernel.ThreadID) float64 {
	age := s.epochs - s.lastGood[id]
	if age < 1 {
		age = 1
	}
	c := 1.0
	for i := 0; i < age; i++ {
		c *= s.degrade.Decay
		if c <= s.degrade.MinConfidence {
			return s.degrade.MinConfidence
		}
	}
	if c < s.degrade.MinConfidence {
		return s.degrade.MinConfidence
	}
	return c
}

// Rebalance implements kernel.Balancer: one full
// sense-predict-balance iteration.
//
//sbvet:hotpath
func (s *SmartBalance) Rebalance(k *kernel.Kernel, now kernel.Time,
	threads []hpc.ThreadSample, cores []hpc.CoreEpochSample) {
	plat := k.Platform()
	if plat.NumTypes() != s.pred.NumTypes() {
		// Mis-paired predictor/platform: refuse to act rather than act
		// on nonsense predictions.
		return
	}
	s.epochs++
	s.overhead.Epochs++
	epochNs := k.Config().EpochNs

	if s.tel.Enabled() {
		// The kernel adapter announces the same boundary from the
		// TraceEpoch event; BeginEpoch is idempotent so whichever runs
		// first wins and the other is a no-op.
		s.tel.BeginEpoch(s.epochs, now)
		s.tel.Counter("smartbalance_epochs_total").Inc()
		ee := epochEE(cores)
		s.tel.Gauge("smartbalance_epoch_ee").Set(ee)
		s.tel.Histogram("smartbalance_epoch_ee_dist", eeBuckets).Observe(ee)
		if s.prevEE > 0 && ee < 0.75*s.prevEE {
			s.tel.Anomaly(now, telemetry.AnomalyNegativeEEGain, //sbvet:allow hotpath(anomaly detail formats only when the flight recorder triggers)
				fmt.Sprintf("epoch ee %.4g fell below 0.75 x previous %.4g", ee, s.prevEE))
		}
		s.prevEE = ee
		if s.cont != nil {
			s.tel.Gauge("smartbalance_contention_pressure_max").Set(s.cont.MaxPressure())
			s.tel.Gauge("smartbalance_contention_bw_util_max").Set(s.cont.MaxBWUtilization())
		}
	}

	// ---- Phase 1: sensing & measurement (Section 4.1, Eq. 4-7). ----
	t0 := s.clock.Now()
	tasks := k.ActiveTasks()
	if len(tasks) == 0 {
		s.overhead.Sense += sinceOn(s.clock, t0)
		return
	}
	optTasks := s.optTasks[:0]
	meas := s.meas[:0]
	sensed, degraded := 0, 0
	for _, task := range tasks {
		if task.IsKernelThread() {
			// Section 5.1: the user-level threads dominate, so kernel
			// threads are left where the scheduler put them.
			continue
		}
		util := task.Utilization(epochNs)
		m, status := SenseChecked(hpc.FindThread(threads, int(task.ID)), util, plat)
		if status == SenseNoSample && task.EpochRunNs() > 0 {
			// The scheduler accounted run time this epoch, so counters
			// were recorded — a missing/empty sample means the sensing
			// path lost them (dropout or zero-wipe), not that the
			// thread slept. Impossible on clean sensing.
			status = SenseInvalid
		}
		sensed++
		switch status {
		case SenseOK:
			s.lastMeasure[task.ID] = m
			s.lastGood[task.ID] = s.epochs
		case SenseNoSample:
			// The thread slept throughout: fall back to its last known
			// characterisation (still accurate — nothing ran to change
			// it) with fresh utilisation.
			last, seen := s.lastMeasure[task.ID]
			if !seen {
				// Never measured (e.g. spawned at the very end of the
				// epoch): leave it where it is this round.
				continue
			}
			m = last
			m.Util = util
			s.lastMeasure[task.ID] = m
		case SenseInvalid:
			// Sensing fault: fall back to the last-known-good
			// measurement, discounted by how stale it is (DESIGN.md
			// §9) so a long-degraded thread sways placement less.
			degraded++
			last, seen := s.lastMeasure[task.ID]
			if !seen {
				s.health.UnmeasurableThreadEpochs++
				continue
			}
			s.health.DegradedThreadEpochs++
			m = last
			m.Util = util * s.confidence(task.ID)
		}
		optTasks = append(optTasks, task) //sbvet:allow hotpath(controller-owned scratch; capacity reaches the live task count and is reused every epoch)
		meas = append(meas, m)            //sbvet:allow hotpath(controller-owned scratch; capacity reaches the live task count and is reused every epoch)
	}
	s.optTasks, s.meas = optTasks, meas
	// Drop measurements of exited threads.
	if len(s.lastMeasure) > 2*len(tasks)+16 {
		alive := make(map[kernel.ThreadID]bool, len(tasks)) //sbvet:allow hotpath(exited-thread reclamation runs only when the retained map outgrows the live set by 2x)
		for _, task := range tasks {
			alive[task.ID] = true
		}
		for id := range s.lastMeasure { //sbvet:allow hotpath(reclamation branch; bounded by the retained-measurement map and entered rarely)
			if !alive[id] {
				delete(s.lastMeasure, id)
				delete(s.lastGood, id)
			}
		}
	}
	s.overhead.Sense += sinceOn(s.clock, t0)
	if s.tel.Enabled() {
		s.spanAttrs[0] = telemetry.Int("tasks", int64(len(tasks)))
		s.spanAttrs[1] = telemetry.Int("sensed", int64(sensed))
		s.spanAttrs[2] = telemetry.Int("degraded", int64(degraded))
		s.spanAttrs[3] = telemetry.Bool("degraded_mode", s.health.DegradedMode)
		s.tel.Span(telemetry.PhaseSense, now, 0, s.spanAttrs[:4]...)
		s.tel.Gauge("smartbalance_health_degraded_thread_epochs").Set(float64(s.health.DegradedThreadEpochs))
		s.tel.Gauge("smartbalance_health_unmeasurable_thread_epochs").Set(float64(s.health.UnmeasurableThreadEpochs))
	}

	// Majority-degraded epoch: the sensed picture is mostly fiction, so
	// optimising over it would thrash placements. Keep the current
	// allocation and (re-)enter degraded mode; hysteresis below keeps
	// it held until RecoveryEpochs consecutive clean epochs pass.
	if sensed > 0 && 2*degraded > sensed {
		s.health.SkippedEpochs++
		s.health.DegradedMode = true
		s.cleanStreak = 0
		if s.tel.Enabled() {
			s.tel.Counter("smartbalance_skipped_epochs_total").Inc()
			s.tel.Gauge("smartbalance_degraded_mode").Set(1)
			s.tel.Anomaly(now, telemetry.AnomalyDegradedEpoch, //sbvet:allow hotpath(anomaly detail formats only when the flight recorder triggers)
				fmt.Sprintf("%d of %d sensed threads degraded; holding placement", degraded, sensed))
		}
		return
	}
	if s.health.DegradedMode {
		s.cleanStreak++
		if s.cleanStreak < s.degrade.RecoveryEpochs {
			s.health.RecoveryHolds++
			if s.tel.Enabled() {
				s.tel.Counter("smartbalance_recovery_holds_total").Inc()
			}
			return
		}
		s.health.DegradedMode = false
		s.cleanStreak = 0
	}
	s.tel.Gauge("smartbalance_degraded_mode").Set(0)
	if len(optTasks) == 0 {
		return
	}

	// ---- Phase 2: prediction — fill S(k) and P(k) (Section 4.2.2). ----
	t1 := s.clock.Now()
	prob, err := s.buildProblem(plat, k, meas)
	if err != nil {
		s.overhead.Predict += sinceOn(s.clock, t1)
		return
	}
	prob.Allowed = affinityMatrix(optTasks, plat.NumCores())
	s.overhead.Predict += sinceOn(s.clock, t1)
	if s.tel.Enabled() {
		s.spanAttrs[0] = telemetry.Int("threads", int64(len(optTasks)))
		s.spanAttrs[1] = telemetry.Int("types", int64(plat.NumTypes()))
		s.tel.Span(telemetry.PhasePredict, now, 0, s.spanAttrs[:2]...)
	}

	// ---- Phase 3: balance — Algorithm 1 over allocations. ----
	t2 := s.clock.Now()
	s.initial = growAlloc(s.initial, len(optTasks))
	for i, task := range optTasks {
		s.initial[i] = task.Core()
	}
	acfg := s.cfg.Anneal
	if acfg.MaxIter <= 0 {
		acfg = DefaultAnnealConfig()
		acfg.MaxIter = ScaledMaxIter(plat.NumCores(), len(optTasks))
	}
	acfg.Seed ^= uint64(s.epochs) * 0x9E3779B97F4A7C15
	result, err := s.ann.Run(prob, s.initial, acfg)
	s.overhead.Optimize += sinceOn(s.clock, t2)
	if err != nil {
		return
	}
	if s.tel.Enabled() {
		s.spanAttrs[0] = telemetry.F64("objective", result.Objective)
		s.spanAttrs[1] = telemetry.Int("iterations", int64(result.Iterations))
		s.spanAttrs[2] = telemetry.Int("accepted", int64(result.Accepted))
		s.tel.Span(telemetry.PhaseDecide, now, 0, s.spanAttrs[:3]...)
	}

	// Plan-acceptance hysteresis (aware only): hold the incumbent
	// placement unless the annealed plan clears a relative margin over
	// it. See contMinGain for why ties oscillate without this.
	if s.cont != nil && result.Objective-result.Initial <= contMinGain*math.Abs(result.Initial) {
		if s.tel.Enabled() {
			s.tel.Counter("smartbalance_plans_held_total").Add(1)
		}
		return
	}

	// ---- Phase 4: apply Ψ via migration (set_cpus_allowed_ptr). ----
	t3 := s.clock.Now()
	applied, refused := 0, 0
	for i, task := range optTasks {
		dst := result.Allocation[i]
		if dst != task.Core() {
			src := task.Core()
			if err := k.Migrate(task.ID, dst); err == nil {
				s.overhead.Migrations++
				applied++
				if s.tel.Enabled() {
					s.spanAttrs[0] = telemetry.Int("thread", int64(task.ID))
					s.spanAttrs[1] = telemetry.Int("from", int64(src))
					s.spanAttrs[2] = telemetry.Int("to", int64(dst))
					s.spanAttrs[3] = telemetry.F64("pred_ips", prob.IPS[i][int(dst)])
					s.spanAttrs[4] = telemetry.F64("pred_power", prob.Power[i][int(dst)])
					s.spanAttrs[5] = telemetry.F64("meas_ips", meas[i].IPS)
					s.spanAttrs[6] = telemetry.F64("meas_power", meas[i].PowerW)
					s.tel.Span(telemetry.PhaseMigrate, now, 0, s.spanAttrs[:7]...)
				}
			} else {
				refused++
			}
		}
	}
	s.overhead.Migrate += sinceOn(s.clock, t3)
	if s.tel.Enabled() {
		s.tel.Counter("smartbalance_migrations_total").Add(int64(applied))
		s.tel.Counter("smartbalance_migrations_refused_total").Add(int64(refused))
		s.spanAttrs[0] = telemetry.Int("requested", int64(applied+refused))
		s.spanAttrs[1] = telemetry.Int("applied", int64(applied))
		s.spanAttrs[2] = telemetry.Int("refused", int64(refused))
		s.tel.Span(telemetry.PhaseMigrate, now, 0, s.spanAttrs[:3]...)
		if refused >= refusedBurst {
			s.tel.Anomaly(now, telemetry.AnomalyRefusedBurst, //sbvet:allow hotpath(anomaly detail formats only when the flight recorder triggers)
				fmt.Sprintf("%d of %d requested migrations refused this epoch", refused, applied+refused))
		}
	}
}

// buildProblem assembles the optimisation input into controller-owned
// scratch: S(k) and P(k) rows are windows into two flat backing arrays
// that persist across epochs, so the steady-state predict phase
// allocates nothing. The returned problem aliases the controller and
// is valid until the next call.
func (s *SmartBalance) buildProblem(plat *arch.Platform, k *kernel.Kernel, meas []Measurement) (*Problem, error) {
	m := len(meas)
	n := plat.NumCores()
	q := plat.NumTypes()
	prob := &s.prob
	prob.Weights = s.cfg.Weights
	prob.Mode = s.cfg.Objective
	prob.Allowed = nil
	prob.Contention = nil
	if s.cont != nil {
		s.fillContentionTerm(&s.contTerm, plat, meas)
		prob.Contention = &s.contTerm
	}
	prob.Util = growFloats(prob.Util, m)
	prob.IdlePower = growFloats(prob.IdlePower, n)
	prob.IPS = growFloatRows(prob.IPS, m)
	prob.Power = growFloatRows(prob.Power, m)
	s.ipsBuf = growFloats(s.ipsBuf, m*n)
	s.powBuf = growFloats(s.powBuf, m*n)
	s.ipsByType = growFloats(s.ipsByType, q)
	s.powByType = growFloats(s.powByType, q)
	pm := k.Machine().PowerModels()
	for j := 0; j < n; j++ {
		prob.IdlePower[j] = pm.ForType(plat.TypeID(arch.CoreID(j))).SleepW()
	}
	// Predict once per (thread, type), then expand to cores.
	for i := range meas {
		mm := &meas[i]
		for tid := 0; tid < q; tid++ {
			ips, err := s.pred.PredictIPS(mm, arch.CoreTypeID(tid))
			if err != nil {
				return nil, fmt.Errorf("core: predict ips: %w", err) //sbvet:allow hotpath(wrap formats only when a prediction is rejected, which skips the epoch)
			}
			pw, err := s.pred.PredictPower(mm, arch.CoreTypeID(tid))
			if err != nil {
				return nil, fmt.Errorf("core: predict power: %w", err) //sbvet:allow hotpath(wrap formats only when a prediction is rejected, which skips the epoch)
			}
			s.ipsByType[tid] = ips
			s.powByType[tid] = pw
		}
		ipsRow := s.ipsBuf[i*n : (i+1)*n : (i+1)*n]
		powRow := s.powBuf[i*n : (i+1)*n : (i+1)*n]
		for j := 0; j < n; j++ {
			tid := plat.TypeID(arch.CoreID(j))
			ipsRow[j] = s.ipsByType[tid]
			powRow[j] = s.powByType[tid]
		}
		prob.IPS[i] = ipsRow
		prob.Power[i] = powRow
		prob.Util[i] = mm.Util
	}
	if prob.Contention != nil {
		s.normalizeContentionIPS(prob.Contention, prob.IPS, meas)
	}
	return prob, nil
}

// BuildProblem assembles the optimisation input from the epoch's
// measurements: S(k) and P(k) rows per thread (measured on the source
// type, predicted elsewhere), the utilisation vector, and per-core idle
// power. Allocating form for external callers; the controller's epoch
// path uses the scratch-backed buildProblem.
func (s *SmartBalance) BuildProblem(plat *arch.Platform, k *kernel.Kernel, meas []Measurement) (*Problem, error) {
	n := plat.NumCores()
	prob := &Problem{
		IPS:       make([][]float64, len(meas)),
		Power:     make([][]float64, len(meas)),
		Util:      make([]float64, len(meas)),
		IdlePower: make([]float64, n),
		Weights:   s.cfg.Weights,
		Mode:      s.cfg.Objective,
	}
	if s.cont != nil {
		t := &ContentionTerm{}
		s.fillContentionTerm(t, plat, meas)
		prob.Contention = t
	}
	pm := k.Machine().PowerModels()
	for j := 0; j < n; j++ {
		prob.IdlePower[j] = pm.ForType(plat.TypeID(arch.CoreID(j))).SleepW()
	}
	// Predict once per (thread, type), then expand to cores.
	q := plat.NumTypes()
	for i := range meas {
		m := &meas[i]
		ipsByType := make([]float64, q)
		powByType := make([]float64, q)
		for tid := 0; tid < q; tid++ {
			ips, err := s.pred.PredictIPS(m, arch.CoreTypeID(tid))
			if err != nil {
				return nil, fmt.Errorf("core: predict ips: %w", err)
			}
			p, err := s.pred.PredictPower(m, arch.CoreTypeID(tid))
			if err != nil {
				return nil, fmt.Errorf("core: predict power: %w", err)
			}
			ipsByType[tid] = ips
			powByType[tid] = p
		}
		prob.IPS[i] = make([]float64, n)
		prob.Power[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			tid := plat.TypeID(arch.CoreID(j))
			prob.IPS[i][j] = ipsByType[tid]
			prob.Power[i][j] = powByType[tid]
		}
		prob.Util[i] = m.Util
	}
	if prob.Contention != nil {
		s.normalizeContentionIPS(prob.Contention, prob.IPS, meas)
	}
	return prob, nil
}

// affinityMatrix extracts the tasks' CPU-affinity masks, or nil when no
// task is restricted. It probes with HasAffinity/AllowedOn rather than
// AllowedMask so the (overwhelmingly common) unrestricted case touches
// no allocating accessor.
func affinityMatrix(tasks []*kernel.Task, n int) [][]bool {
	any := false
	for _, t := range tasks {
		if t.HasAffinity() {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	out := make([][]bool, len(tasks)) //sbvet:allow hotpath(built only when a task carries an explicit affinity mask; the standard experiments have none)
	for i, t := range tasks {
		if !t.HasAffinity() {
			continue // nil row = unrestricted
		}
		row := make([]bool, n) //sbvet:allow hotpath(built only when a task carries an explicit affinity mask)
		for j := 0; j < n; j++ {
			row[j] = t.AllowedOn(arch.CoreID(j))
		}
		out[i] = row
	}
	return out
}

// OracleProblem builds the same optimisation input but with exact
// model-evaluated entries instead of predictions — the
// prediction-vs-oracle ablation.
func OracleProblem(plat *arch.Platform, k *kernel.Kernel, tasks []*kernel.Task, weights []float64) (*Problem, error) {
	n := plat.NumCores()
	epochNs := k.Config().EpochNs
	prob := &Problem{ //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
		IPS:       make([][]float64, len(tasks)), //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
		Power:     make([][]float64, len(tasks)), //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
		Util:      make([]float64, len(tasks)),   //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
		IdlePower: make([]float64, n),            //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
		Weights:   weights,
	}
	pm := k.Machine().PowerModels()
	for j := 0; j < n; j++ {
		prob.IdlePower[j] = pm.ForType(plat.TypeID(arch.CoreID(j))).SleepW()
	}
	for i, task := range tasks {
		prob.IPS[i] = make([]float64, n)   //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
		prob.Power[i] = make([]float64, n) //sbvet:allow hotpath(oracle ablation baseline, outside the SmartBalance zero-alloc contract)
		st := k.Machine()
		ts := task.MachineState()
		for j := 0; j < n; j++ {
			tid := plat.TypeID(arch.CoreID(j))
			met := st.SteadyMetrics(ts, tid)
			ct := plat.Type(arch.CoreID(j))
			prob.IPS[i][j] = met.IPS(ct)
			prob.Power[i][j] = pm.ForType(tid).BusyPower(met.IPC, ts.CurrentPhase())
		}
		prob.Util[i] = task.Utilization(epochNs)
	}
	prob.Allowed = affinityMatrix(tasks, n)
	return prob, nil
}
