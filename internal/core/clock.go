package core

import "time"

// Clock abstracts wall-clock access for overhead measurement, so that
// simulation packages never read host time directly (the wallclock
// sbvet invariant). Real time enters the system at exactly one
// annotated point — RealClock — which the cmd/ binaries and examples
// inject; simulated and tested runs use a FakeClock and stay
// bit-for-bit deterministic.
type Clock interface {
	// Now returns the clock's current reading. Durations are measured
	// as the difference of two readings.
	Now() time.Time
}

// realClock reads the host's monotonic clock.
type realClock struct{}

func (realClock) Now() time.Time {
	return time.Now() //sbvet:allow wallclock(single real-time entry point behind the Clock interface)
}

// RealClock returns the Clock backed by host time. Use it only at the
// cmd/ and examples/ boundary, where measuring actual controller
// overhead (Fig. 7) is the point.
func RealClock() Clock { return realClock{} }

// FakeClock is a deterministic Clock for simulations and tests: every
// Now call advances the reading by a fixed step, so any timing derived
// from it is a pure function of the call sequence. The zero value is a
// frozen clock (step 0). FakeClock is not safe for concurrent use;
// give each goroutine its own.
type FakeClock struct {
	now  time.Time
	step time.Duration
}

// NewFakeClock returns a FakeClock advancing by step per Now call.
func NewFakeClock(step time.Duration) *FakeClock {
	return &FakeClock{step: step}
}

// Now returns the current reading and advances the clock by the step.
func (c *FakeClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// sinceOn returns the elapsed duration on clk since t0 — the
// clock-parameterised replacement for time.Since.
func sinceOn(clk Clock, t0 time.Time) time.Duration {
	return clk.Now().Sub(t0)
}
