package core

import (
	"errors"
	"math"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/powermodel"
	"smartbalance/internal/regress"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

func trainedPredictor(t *testing.T) *Predictor {
	t.Helper()
	p, err := Train(arch.Table2Types(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFeatureVectorShape(t *testing.T) {
	m := Measurement{IPC: 1.5, MissL1I: 0.01, Valid: true}
	x := Features(&m, 2.0)
	if len(x) != NumFeatures {
		t.Fatalf("feature vector has %d entries, want %d", len(x), NumFeatures)
	}
	if x[0] != 2.0 {
		t.Fatal("FR not first feature")
	}
	if x[NumFeatures-1] != 1 {
		t.Fatal("const not last feature")
	}
	if x[NumFeatures-2] != 1.5 {
		t.Fatal("ipc_src misplaced")
	}
	if len(FeatureNames()) != NumFeatures {
		t.Fatal("feature names out of sync")
	}
}

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(nil); err == nil {
		t.Fatal("empty type set accepted")
	}
	p, err := NewPredictor(arch.Table2Types())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTypes() != 4 {
		t.Fatalf("NumTypes = %d", p.NumTypes())
	}
	if p.Trained() {
		t.Fatal("fresh predictor claims trained")
	}
	if err := p.SetModel(1, 1, &regress.Model{Coef: make([]float64, NumFeatures)}); err == nil {
		t.Fatal("diagonal model accepted")
	}
	if err := p.SetModel(0, 1, &regress.Model{Coef: []float64{1}}); err == nil {
		t.Fatal("wrong-width model accepted")
	}
}

func TestTrainProducesFullPredictor(t *testing.T) {
	p := trainedPredictor(t)
	if !p.Trained() {
		t.Fatal("Train left gaps")
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			m := p.Model(arch.CoreTypeID(s), arch.CoreTypeID(d))
			if m == nil {
				t.Fatalf("missing model %d->%d", s, d)
			}
			// Training uses relative-error weighting, so R2 on the
			// transformed targets is not meaningful; the mean absolute
			// percentage training error is. Upward predictions (small
			// source core -> Huge) are inherently lossy because the
			// narrow core saturates the ILP signal, so the per-pair
			// bound is loose; the held-out *average* is asserted tightly
			// in TestPredictionErrorMatchesPaperBallpark.
			if m.MeanAbsPct > 30 {
				t.Errorf("model %d->%d training MAPE = %.1f%%; predictor useless", s, d, m.MeanAbsPct)
			}
		}
	}
	// Power fits: positive slope (power rises with IPC).
	for tid := 0; tid < 4; tid++ {
		f := p.PowerFitFor(arch.CoreTypeID(tid))
		if f.Alpha1 <= 0 {
			t.Errorf("type %d power slope %g not positive", tid, f.Alpha1)
		}
		if f.Alpha0 <= 0 {
			t.Errorf("type %d power intercept %g not positive (leak+idle)", tid, f.Alpha0)
		}
	}
}

func TestPredictIPCWithinBounds(t *testing.T) {
	p := trainedPredictor(t)
	types := arch.Table2Types()
	phases := TrainingPhases(50, 99)
	pmH, _ := powermodel.NewCoreModel(&types[0])
	r := rng.New(3)
	for pi := range phases {
		m := ProfileMeasurement(&phases[pi], types, 0, pmH, 0, r)
		for d := 1; d < 4; d++ {
			ipc, err := p.PredictIPC(&m, arch.CoreTypeID(d))
			if err != nil {
				t.Fatal(err)
			}
			if ipc <= 0 || ipc > types[d].PeakIPC {
				t.Fatalf("predicted IPC %g outside (0, %g] for %s", ipc, types[d].PeakIPC, types[d].Name)
			}
		}
	}
}

func TestPredictSameTypeReturnsMeasurement(t *testing.T) {
	p := trainedPredictor(t)
	m := Measurement{SrcType: 2, IPC: 1.11, PowerW: 0.33, Valid: true}
	ipc, err := p.PredictIPC(&m, 2)
	if err != nil || ipc != 1.11 {
		t.Fatalf("same-type IPC = %g, err %v", ipc, err)
	}
	pw, err := p.PredictPower(&m, 2)
	if err != nil || pw != 0.33 {
		t.Fatalf("same-type power = %g, err %v", pw, err)
	}
}

func TestPredictInvalidMeasurementRejected(t *testing.T) {
	p := trainedPredictor(t)
	m := Measurement{SrcType: 0}
	if _, err := p.PredictIPC(&m, 1); err == nil {
		t.Fatal("invalid measurement accepted")
	}
	if _, err := p.PredictPower(&m, 1); err == nil {
		t.Fatal("invalid measurement accepted for power")
	}
}

func TestPredictUntrainedPairFails(t *testing.T) {
	p, _ := NewPredictor(arch.Table2Types())
	m := Measurement{SrcType: 0, IPC: 1, Valid: true}
	if _, err := p.PredictIPC(&m, 1); err == nil {
		t.Fatal("untrained pair predicted")
	}
}

func TestPredictionErrorMatchesPaperBallpark(t *testing.T) {
	// The paper reports ~4.2% performance and ~5% power prediction
	// error (Fig. 6). Exact numbers depend on their corpus; we require
	// the same order of magnitude: low single digits, certainly below
	// 15%, and above zero (a suspiciously perfect predictor would mean
	// the evaluation is circular).
	p := trainedPredictor(t)
	// Held-out set: jittered benchmark phases not used verbatim in
	// training (training used seed 1 workers; these use seed 7734).
	var held []workload.Phase
	for _, name := range workload.Benchmarks() {
		specs, err := workload.Benchmark(name, 2, 7734)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			held = append(held, specs[i].Phases...)
		}
	}
	perf, power, err := PredictionError(p, held, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	if perf <= 0 || perf > 15 {
		t.Fatalf("performance prediction error %.2f%% outside (0, 15]", perf)
	}
	if power <= 0 || power > 15 {
		t.Fatalf("power prediction error %.2f%% outside (0, 15]", power)
	}
	t.Logf("held-out prediction error: perf %.2f%%, power %.2f%% (paper: 4.2%%, 5%%)", perf, power)
}

func TestPowerFitPredictClampsNegative(t *testing.T) {
	f := PowerFit{Alpha1: 1, Alpha0: -10}
	if f.Predict(1) != 0 {
		t.Fatal("negative power prediction not clamped")
	}
}

func TestTrainingPhasesCoverage(t *testing.T) {
	phases := TrainingPhases(100, 5)
	if len(phases) < 130 { // >= ~35 benchmark/IMB phases + 100 random
		t.Fatalf("corpus only %d phases", len(phases))
	}
	for i := range phases {
		if err := phases[i].Validate(); err != nil {
			t.Fatalf("phase %d invalid: %v", i, err)
		}
	}
	// Deterministic under seed.
	again := TrainingPhases(100, 5)
	if len(again) != len(phases) || again[len(again)-1].ILP != phases[len(phases)-1].ILP {
		t.Fatal("TrainingPhases not deterministic")
	}
}

func TestTrainDeterministic(t *testing.T) {
	a, err := Train(arch.Table2Types(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(arch.Table2Types(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	ma := a.Model(0, 1)
	mb := b.Model(0, 1)
	for i := range ma.Coef {
		if ma.Coef[i] != mb.Coef[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestTrainBigLittle(t *testing.T) {
	// The predictor must also train on the two-type GTS platform.
	p, err := Train(arch.BigLittleTypes(), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trained() {
		t.Fatal("big.LITTLE predictor incomplete")
	}
}

func BenchmarkTrainQuad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Train(arch.Table2Types(), DefaultTrainConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRankDeficientCorpusNeverYieldsSilentNaN(t *testing.T) {
	// A degenerate training corpus — every sample identical, so the
	// design matrix has rank 1 against NumFeatures columns — must
	// produce either an explicit fit error or finite, usable
	// coefficients (the ridge fallback); never NaN that flows silently
	// into predictions.
	row := []float64{1.2, 0.01, 0.02, 0.3, 0.1, 0.05, 0.001, 0.002, 1.5, 1}
	rows := make([][]float64, NumFeatures+2)
	y := make([]float64, len(rows))
	for i := range rows {
		rows[i] = row
		y[i] = 0.8
	}
	model, err := regress.Fit(rows, y)
	if err != nil {
		return // explicit rejection is acceptable
	}
	for i, c := range model.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("rank-deficient fit produced non-finite coef[%d] = %g", i, c)
		}
	}
	types := arch.Table2Types()
	p, err := NewPredictor(types)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetModel(0, 1, model); err != nil {
		t.Fatal(err)
	}
	m := Measurement{SrcType: 0, IPC: 1.5, PowerW: 1.0, Valid: true}
	ipc, err := p.PredictIPC(&m, 1)
	if err != nil {
		t.Fatalf("finite rank-deficient model rejected: %v", err)
	}
	if !(ipc > 0 && ipc <= types[1].PeakIPC) {
		t.Fatalf("prediction %g outside (0, %g]", ipc, types[1].PeakIPC)
	}
}

func TestPredictRejectsNonFiniteModelOutputs(t *testing.T) {
	// NaN coefficients — the signature of a corpus poisoned by corrupt
	// measurements — must surface as ErrNotUsable, not as a NaN that
	// survives the clamps (NaN fails both < and > comparisons).
	types := arch.Table2Types()
	p, err := NewPredictor(types)
	if err != nil {
		t.Fatal(err)
	}
	bad := &regress.Model{Coef: make([]float64, NumFeatures)}
	bad.Coef[0] = math.NaN()
	if err := p.SetModel(0, 1, bad); err != nil {
		t.Fatal(err)
	}
	p.SetPowerFit(1, PowerFit{Alpha1: math.NaN(), Alpha0: 1})
	m := Measurement{SrcType: 0, IPC: 1.5, PowerW: 1.0, Valid: true}
	if _, err := p.PredictIPC(&m, 1); !errors.Is(err, ErrNotUsable) {
		t.Fatalf("NaN model output: want ErrNotUsable, got %v", err)
	}
	if _, err := p.PredictPower(&m, 1); !errors.Is(err, ErrNotUsable) {
		t.Fatalf("NaN power output: want ErrNotUsable, got %v", err)
	}
	// Non-finite measured values on the same-type path are rejected too.
	inf := Measurement{SrcType: 1, IPC: math.Inf(1), PowerW: math.NaN(), Valid: true}
	if _, err := p.PredictIPC(&inf, 1); !errors.Is(err, ErrNotUsable) {
		t.Fatalf("Inf measured ipc: want ErrNotUsable, got %v", err)
	}
	if _, err := p.PredictPower(&inf, 1); !errors.Is(err, ErrNotUsable) {
		t.Fatalf("NaN measured power: want ErrNotUsable, got %v", err)
	}
}

func TestPredictPowerClampedToPeak(t *testing.T) {
	types := arch.Table2Types()
	p, err := NewPredictor(types)
	if err != nil {
		t.Fatal(err)
	}
	// A wildly optimistic (but finite) power fit is clamped to the
	// destination type's Table 2 peak-power anchor.
	ident := &regress.Model{Coef: make([]float64, NumFeatures)}
	ident.Coef[NumFeatures-2] = 1 // ipc_src passthrough
	if err := p.SetModel(0, 1, ident); err != nil {
		t.Fatal(err)
	}
	p.SetPowerFit(1, PowerFit{Alpha1: 1e6, Alpha0: 0})
	m := Measurement{SrcType: 0, IPC: 1.5, PowerW: 1.0, Valid: true}
	pw, err := p.PredictPower(&m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pw != types[1].PeakPowerW {
		t.Fatalf("runaway power fit predicted %g, want clamp at %g", pw, types[1].PeakPowerW)
	}
}
