package core

import (
	"math"
	"testing"
	"testing/quick"

	"smartbalance/internal/arch"
	"smartbalance/internal/rng"
)

// toyProblem builds a 4-thread, 3-core problem with hand-set values.
func toyProblem() *Problem {
	return &Problem{
		IPS: [][]float64{
			{4e9, 2e9, 1e9},
			{3e9, 2.5e9, 0.8e9},
			{1e9, 0.9e9, 0.85e9},
			{2e9, 1.5e9, 0.5e9},
		},
		Power: [][]float64{
			{8, 1.4, 0.1},
			{7, 1.2, 0.09},
			{6, 1.0, 0.08},
			{7.5, 1.3, 0.1},
		},
		Util:      []float64{1, 1, 0.5, 0.2},
		IdlePower: []float64{0.2, 0.05, 0.01},
	}
}

func randomProblem(r *rng.Rand, m, n int) *Problem {
	p := &Problem{
		IPS:       make([][]float64, m),
		Power:     make([][]float64, m),
		Util:      make([]float64, m),
		IdlePower: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.IdlePower[j] = 0.01 + r.Float64()*0.2
	}
	for i := 0; i < m; i++ {
		p.IPS[i] = make([]float64, n)
		p.Power[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p.IPS[i][j] = (0.2 + r.Float64()*4) * 1e9
			p.Power[i][j] = 0.05 + r.Float64()*8
		}
		p.Util[i] = 0.05 + r.Float64()*0.95
	}
	return p
}

func TestProblemValidate(t *testing.T) {
	if err := toyProblem().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Problem){
		func(p *Problem) { p.IPS = nil },
		func(p *Problem) { p.IdlePower = nil },
		func(p *Problem) { p.Util = p.Util[:2] },
		func(p *Problem) { p.IPS[1] = p.IPS[1][:1] },
		func(p *Problem) { p.Util[0] = 1.5 },
		func(p *Problem) { p.Power[2][1] = -1 },
		func(p *Problem) { p.Weights = []float64{1} },
	}
	for i, mod := range bad {
		p := toyProblem()
		mod(p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestCoreShareWaterFilling(t *testing.T) {
	// Demands below the fair share are met exactly; the rest split the
	// remainder.
	shares := coreShare([]float64{0.1, 1, 1})
	if math.Abs(shares[0]-0.1) > 1e-12 {
		t.Fatalf("light thread share %g", shares[0])
	}
	if math.Abs(shares[1]-0.45) > 1e-12 || math.Abs(shares[2]-0.45) > 1e-12 {
		t.Fatalf("heavy shares %v", shares)
	}
	// Total never exceeds capacity.
	total := shares[0] + shares[1] + shares[2]
	if total > 1+1e-12 {
		t.Fatalf("shares exceed capacity: %g", total)
	}
}

func TestCoreShareAllLight(t *testing.T) {
	shares := coreShare([]float64{0.2, 0.3})
	if shares[0] != 0.2 || shares[1] != 0.3 {
		t.Fatalf("light demands should be met: %v", shares)
	}
}

func TestCoreShareSaturated(t *testing.T) {
	shares := coreShare([]float64{1, 1, 1, 1})
	for _, s := range shares {
		if math.Abs(s-0.25) > 1e-12 {
			t.Fatalf("saturated shares %v", shares)
		}
	}
}

func TestCoreShareEmpty(t *testing.T) {
	if len(coreShare(nil)) != 0 {
		t.Fatal("empty core should have no shares")
	}
}

func TestCoreShareProperty(t *testing.T) {
	// For any demands, shares are within [0, demand] and sum <= 1.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		utils := make([]float64, len(raw))
		for i, v := range raw {
			utils[i] = float64(v) / 255
		}
		shares := coreShare(utils)
		sum := 0.0
		for i, s := range shares {
			if s < -1e-12 || s > utils[i]+1e-12 {
				return false
			}
			sum += s
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCoreSemanticsPerMode(t *testing.T) {
	// PerCoreRatioSum: an empty core contributes exactly 0 (Eq. 11 with
	// IPS_j = 0), so packing everything onto core 0 scores the same as
	// core 0's own ratio.
	p := toyProblem()
	p.Mode = PerCoreRatioSum
	packed, err := EvaluateAllocation(p, Allocation{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if packed <= 0 {
		t.Fatal("non-empty allocation scored zero")
	}
	// GlobalRatio: empty cores still burn their quiescent power in the
	// denominator, so raising an idle core's IdlePower must lower J.
	p2 := toyProblem() // GlobalRatio by default
	base, _ := EvaluateAllocation(p2, Allocation{0, 0, 0, 0})
	p3 := toyProblem()
	p3.IdlePower[2] *= 100
	loaded, _ := EvaluateAllocation(p3, Allocation{0, 0, 0, 0})
	if loaded >= base {
		t.Fatalf("idle power ignored in global mode: %g >= %g", loaded, base)
	}
}

func TestGlobalModeRewardsGatingHungryCores(t *testing.T) {
	// The decisive difference between the modes: with a power-hungry
	// core 0, moving its thread to the efficient core 2 must raise the
	// global objective even though it empties core 0.
	p := toyProblem()
	spread, _ := EvaluateAllocation(p, Allocation{0, 1, 2, 2})
	gated, _ := EvaluateAllocation(p, Allocation{2, 1, 2, 2})
	if gated <= spread {
		t.Fatalf("global mode should reward sleeping the 8W core: gated %g <= spread %g", gated, spread)
	}
	// And the relative gain must be substantial here (the 8W core was
	// producing 4 GIPS out of ~5 GIPS total but eating ~85% of the power).
	if gated < 1.5*spread {
		t.Fatalf("gating gain implausibly small: %g vs %g", gated, spread)
	}
}

func TestOptimalBeatsCapabilityBlindSpread(t *testing.T) {
	// The vanilla balancer's even spread (one thread per core by count,
	// ignoring types) must be beatable by the J_E optimum — this gap is
	// the paper's entire opportunity.
	p := toyProblem()
	even, err := EvaluateAllocation(p, Allocation{0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, best, err := BruteForceOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if best <= even*1.05 {
		t.Fatalf("optimum %.4f barely beats blind spread %.4f; no heterogeneity signal", best, even)
	}
}

func TestWeightsScaleContribution(t *testing.T) {
	p := toyProblem()
	base, _ := EvaluateAllocation(p, Allocation{0, 1, 2, 2})
	p.Weights = []float64{2, 1, 1}
	weighted, _ := EvaluateAllocation(p, Allocation{0, 1, 2, 2})
	if weighted <= base {
		t.Fatal("doubling a used core's weight must raise the objective")
	}
}

func TestEvaluatorIncrementalMatchesScratch(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		m := 2 + r.Intn(10)
		n := 2 + r.Intn(5)
		p := randomProblem(r, m, n)
		alloc := make(Allocation, m)
		for i := range alloc {
			alloc[i] = arch.CoreID(r.Intn(n))
		}
		e, err := NewEvaluator(p, alloc)
		if err != nil {
			t.Fatal(err)
		}
		// A sequence of random moves and swaps; after each, the
		// incremental objective must equal a scratch evaluation.
		for step := 0; step < 30; step++ {
			if r.Float64() < 0.5 {
				i := r.Intn(m)
				dst := arch.CoreID(r.Intn(n))
				pre := e.MoveDelta(i, dst)
				got := e.Move(i, dst)
				if math.Abs(pre-got) > 1e-9 {
					t.Fatalf("MoveDelta %g != Move %g", pre, got)
				}
			} else {
				i, j := r.Intn(m), r.Intn(m)
				pre := e.SwapDelta(i, j)
				got := e.Swap(i, j)
				if math.Abs(pre-got) > 1e-9 {
					t.Fatalf("SwapDelta %g != Swap %g", pre, got)
				}
			}
			scratch, err := EvaluateAllocation(p, e.Allocation())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(scratch-e.Objective()) > 1e-6*(1+math.Abs(scratch)) {
				t.Fatalf("incremental %.9f != scratch %.9f at step %d", e.Objective(), scratch, step)
			}
		}
	}
}

func TestEvaluatorRejectsBadInput(t *testing.T) {
	p := toyProblem()
	if _, err := NewEvaluator(p, Allocation{0}); err == nil {
		t.Fatal("short allocation accepted")
	}
	if _, err := NewEvaluator(p, Allocation{0, 0, 0, 9}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	bad := toyProblem()
	bad.Util[0] = -1
	if _, err := NewEvaluator(bad, Allocation{0, 0, 0, 0}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestBruteForceOptimal(t *testing.T) {
	p := toyProblem()
	best, score, err := BruteForceOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 4 {
		t.Fatalf("allocation length %d", len(best))
	}
	// No allocation may beat it (exhaustive cross-check on a subsample).
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		alloc := make(Allocation, 4)
		for i := range alloc {
			alloc[i] = arch.CoreID(r.Intn(3))
		}
		s, _ := EvaluateAllocation(p, alloc)
		if s > score+1e-12 {
			t.Fatalf("brute force missed a better allocation: %v scores %g > %g", alloc, s, score)
		}
	}
}

func TestBruteForceInfeasibleRejected(t *testing.T) {
	r := rng.New(9)
	p := randomProblem(r, 30, 8) // 8^30 states
	if _, _, err := BruteForceOptimal(p); err == nil {
		t.Fatal("infeasible brute force accepted")
	}
}

// Benchmarks for the incremental-vs-scratch objective evaluation — the
// paper's "obtaining a new evaluation only by performing computations
// induced by the latest swap on Ψ" optimisation, quantified.

func BenchmarkMoveDeltaIncremental(b *testing.B) {
	r := rng.New(201)
	p := randomProblem(r, 32, 8)
	alloc := make(Allocation, 32)
	for i := range alloc {
		alloc[i] = arch.CoreID(r.Intn(8))
	}
	e, err := NewEvaluator(p, alloc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Move(i%32, arch.CoreID(i%8))
	}
}

func BenchmarkMoveScratchReevaluation(b *testing.B) {
	r := rng.New(202)
	p := randomProblem(r, 32, 8)
	alloc := make(Allocation, 32)
	for i := range alloc {
		alloc[i] = arch.CoreID(r.Intn(8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc[i%32] = arch.CoreID(i % 8)
		if _, err := EvaluateAllocation(p, alloc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMaxThroughputModePrefersFastCores(t *testing.T) {
	// Under the throughput goal the optimum loads the fastest cores
	// regardless of power; for the toy problem, thread 0 (4 GIPS on
	// core 0) must land on core 0 in the brute-force optimum.
	p := toyProblem()
	p.Mode = MaxThroughput
	best, score, err := BruteForceOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if best[0] != 0 {
		t.Fatalf("throughput optimum put thread 0 on core %d", best[0])
	}
	if score <= 0 {
		t.Fatal("no throughput scored")
	}
	// The mode string is distinct.
	if MaxThroughput.String() != "max-throughput" {
		t.Fatal("mode string wrong")
	}
	// Incremental evaluation must match scratch in this mode too.
	e, err := NewEvaluator(p, Allocation{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Move(1, 2)
	scratch, _ := EvaluateAllocation(p, e.Allocation())
	if math.Abs(scratch-e.Objective()) > 1e-9 {
		t.Fatalf("throughput mode incremental %.9f != scratch %.9f", e.Objective(), scratch)
	}
}
