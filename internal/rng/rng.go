// Package rng provides the deterministic pseudo-random number generators
// used throughout the SmartBalance reproduction.
//
// Two generators are provided:
//
//   - Splitmix64, used to seed and to split independent streams, and
//   - Xorshift64Star, the workhorse generator.
//
// The paper's run-time optimiser (Algorithm 1) relies on a custom
// fixed-point friendly integer generator: randi() yields a uniformly
// distributed integer in [0, 2^32) and randi(x, y) yields one in [x, y).
// Rand implements both with the exact semantics Algorithm 1 assumes,
// trading perfect uniformity for speed, as described in the paper.
//
// All generators in this package are deterministic functions of their
// seed, which the rest of the repository depends on for reproducible
// simulations and tests. None of them are safe for concurrent use; give
// each goroutine its own stream via Split.
package rng

import "math"

// Splitmix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is primarily used for seeding other
// generators: even poor seeds (0, 1, 2, ...) produce well-distributed
// outputs.
func Splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Rand is a small, fast, deterministic generator (xorshift64*). The zero
// value is not usable; construct with New.
type Rand struct {
	state uint64
}

// New returns a generator seeded from seed. Any seed is acceptable,
// including zero: seeds are first diffused through splitmix64 so that
// nearby seeds produce unrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed re-initialises r in place from seed with the same diffusion
// as New — the allocation-free way to reuse one generator across
// per-epoch optimiser runs.
func (r *Rand) Reseed(seed uint64) {
	s := seed
	st := Splitmix64(&s)
	if st == 0 {
		// xorshift64* requires a non-zero state.
		st = 0x9E3779B97F4A7C15
	}
	r.state = st
}

// Split returns a new generator whose stream is statistically
// independent of r's. It advances r once.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Uint64 returns the next value of the xorshift64* sequence.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns a uniformly distributed 32-bit value. This is the
// paper's randi(): "generates an uniformly distributed integer number in
// the interval [0, 2^32)".
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift range reduction (Lemire). The slight modulo bias of
	// the plain approach is irrelevant at our n (< 2^20) but this is
	// bias-free anyway for the common case and branch-light.
	v := uint64(r.Uint32())
	return int((v * uint64(n)) >> 32)
}

// IntRange implements the paper's randi(x, y): a uniformly distributed
// integer in [x, y). It panics if x >= y.
func (r *Rand) IntRange(x, y int) int {
	if x >= y {
		panic("rng: IntRange with empty interval")
	}
	return x + r.Intn(y-x)
}

// Float64 returns a uniformly distributed float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float with mean 0 and
// standard deviation 1, using the polar Marsaglia method. Used only for
// sensor-noise injection, never inside the fixed-point optimiser.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrt(-2*ln(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
