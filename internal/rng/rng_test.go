package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/1000 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		v := r.Uint64()
		if seen[v] {
			t.Fatalf("zero-seeded stream repeated value %#x within 100 draws", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == s.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("split stream collided %d times with parent", collisions)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRangeBounds(t *testing.T) {
	r := New(9)
	cases := [][2]int{{0, 1}, {-5, 5}, {10, 20}, {-100, -50}}
	for _, c := range cases {
		for i := 0; i < 500; i++ {
			v := r.IntRange(c[0], c[1])
			if v < c[0] || v >= c[1] {
				t.Fatalf("IntRange(%d,%d) = %d out of range", c[0], c[1], v)
			}
		}
	}
}

func TestIntRangePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(3,3) did not panic")
		}
	}()
	New(1).IntRange(3, 3)
}

func TestIntRangePropertyInBounds(t *testing.T) {
	r := New(11)
	f := func(a int16, span uint8) bool {
		x := int(a)
		y := x + int(span) + 1
		v := r.IntRange(x, y)
		return v >= x && v < y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestUint32Uniformity(t *testing.T) {
	// Chi-squared-ish sanity check across 16 buckets.
	r := New(8)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[r.Uint32()>>28]++
	}
	want := n / 16
	for i, b := range buckets {
		if math.Abs(float64(b-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", i, b, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermShuffles(t *testing.T) {
	// At least one of several permutations of length 10 must differ from identity.
	r := New(14)
	moved := false
	for trial := 0; trial < 5 && !moved; trial++ {
		p := r.Perm(10)
		for i, v := range p {
			if i != v {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Fatal("Perm(10) returned identity 5 times in a row")
	}
}

func TestSplitmix64KnownValues(t *testing.T) {
	// Reference values from the public-domain splitmix64 implementation
	// with seed 0: first three outputs.
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	var s uint64
	for i, w := range want {
		got := Splitmix64(&s)
		if got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Intn(1024)
	}
	_ = sink
}
