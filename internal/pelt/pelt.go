// Package pelt implements Linux's per-entity load tracking: a
// geometric-series average of an entity's runnable and running time
// over ~1 ms periods, decaying such that 32 periods halve a
// contribution (y^32 = 1/2). ARM's big.LITTLE MP patches (the GTS
// baseline) make their up/down-migration decisions on exactly this
// tracked load, so the reproduction tracks it the same way.
package pelt

import "math"

// PeriodNs is the PELT accounting period (Linux uses 1024 us).
const PeriodNs = 1 << 20

// y is the per-period decay factor, chosen so y^32 = 0.5.
var y = math.Pow(0.5, 1.0/32)

// maxSum is the series limit sum_{i>=0} y^i = 1/(1-y); a task that was
// always runnable converges to it.
var maxSum = 1 / (1 - y)

// yPow memoizes y^r for the 32 possible residues r = n mod 32, so the
// hot advance path never calls math.Pow. Entries are the exact float64
// values math.Pow(y, r) returns, keeping decayN bit-identical to the
// direct computation.
var yPow = func() (t [32]float64) {
	for i := range t {
		t[i] = math.Pow(y, float64(i))
	}
	return t
}()

// decayN returns y^n.
func decayN(n int64) float64 {
	if n <= 0 {
		return 1
	}
	// Halve per full 32 periods, then the residue.
	halvings := n / 32
	if halvings > 60 {
		return 0
	}
	v := math.Ldexp(1, -int(halvings))
	return v * yPow[n%32]
}

// Tracker follows one task's runnable/running history. The zero value
// is a tracker that has never been runnable; call Transition at every
// state change and read Utilization/Load at any time at or after the
// last transition.
type Tracker struct {
	lastUpdate int64 // ns timestamp of the last accounting
	// fractional period carry-over [0, PeriodNs).
	phase int64

	runnableSum float64 // decayed sum of runnable periods
	runningSum  float64 // decayed sum of running periods

	runnable bool
	running  bool
}

// Transition accounts the elapsed interval under the current state and
// switches to the new state. now must be monotonically non-decreasing.
func (t *Tracker) Transition(now int64, runnable, running bool) {
	t.advance(now)
	t.runnable = runnable
	t.running = running
}

// advance folds the interval [lastUpdate, now) into the sums using the
// current state.
func (t *Tracker) advance(now int64) {
	if now <= t.lastUpdate {
		t.lastUpdate = now
		return
	}
	elapsed := now - t.lastUpdate
	t.lastUpdate = now

	total := t.phase + elapsed
	fullPeriods := total / PeriodNs
	t.phase = total % PeriodNs

	if fullPeriods > 0 {
		d := decayN(fullPeriods)
		// Geometric sum of the newly completed periods:
		// sum_{i=1..n} y^i = y*(1-y^n)/(1-y).
		contrib := y * (1 - d) / (1 - y)
		t.runnableSum *= d
		t.runningSum *= d
		if t.runnable {
			t.runnableSum += contrib
		}
		if t.running {
			t.runningSum += contrib
		}
	}
	// The partial current period contributes proportionally; fold it in
	// lazily at read time via phaseContrib (keeping sums period-aligned
	// avoids double counting).
}

// phaseContrib returns the in-progress partial period's weight.
func (t *Tracker) phaseContrib() float64 {
	return float64(t.phase) / PeriodNs
}

// Load returns the tracked *runnable* fraction in [0, 1] as of the last
// Transition/Observe — the load_avg_ratio GTS thresholds act on.
func (t *Tracker) Load() float64 {
	s := t.runnableSum
	if t.runnable {
		s += t.phaseContrib()
	}
	v := s / maxSum
	if v > 1 {
		v = 1
	}
	return v
}

// Utilization returns the tracked *running* fraction in [0, 1].
func (t *Tracker) Utilization() float64 {
	s := t.runningSum
	if t.running {
		s += t.phaseContrib()
	}
	v := s / maxSum
	if v > 1 {
		v = 1
	}
	return v
}

// Observe advances accounting to now without changing state (for
// reading fresh values at an epoch boundary).
func (t *Tracker) Observe(now int64) {
	t.advance(now)
}
