package pelt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDecayHalvesAt32Periods(t *testing.T) {
	if math.Abs(decayN(32)-0.5) > 1e-12 {
		t.Fatalf("y^32 = %g, want 0.5", decayN(32))
	}
	if decayN(0) != 1 {
		t.Fatal("y^0 != 1")
	}
	if decayN(64) > 0.2500001 || decayN(64) < 0.2499999 {
		t.Fatalf("y^64 = %g, want 0.25", decayN(64))
	}
	if decayN(32*100) != 0 {
		t.Fatal("deep decay should underflow to 0")
	}
}

func TestAlwaysRunnableConvergesToOne(t *testing.T) {
	var tr Tracker
	tr.Transition(0, true, true)
	// 200 ms of continuous running.
	tr.Observe(200e6)
	if u := tr.Utilization(); u < 0.95 || u > 1 {
		t.Fatalf("always-running utilization %g after 200ms", u)
	}
	if l := tr.Load(); l < 0.95 || l > 1 {
		t.Fatalf("always-runnable load %g", l)
	}
}

func TestNeverRunnableStaysZero(t *testing.T) {
	var tr Tracker
	tr.Transition(0, false, false)
	tr.Observe(500e6)
	if tr.Utilization() != 0 || tr.Load() != 0 {
		t.Fatalf("idle tracker: util %g load %g", tr.Utilization(), tr.Load())
	}
}

func TestHalfDutyCycleConvergesToHalf(t *testing.T) {
	var tr Tracker
	now := int64(0)
	// 4 ms on, 4 ms off, for 400 ms.
	for i := 0; i < 50; i++ {
		tr.Transition(now, true, true)
		now += 4e6
		tr.Transition(now, false, false)
		now += 4e6
	}
	tr.Observe(now)
	u := tr.Utilization()
	if u < 0.40 || u > 0.60 {
		t.Fatalf("50%% duty cycle tracked as %g", u)
	}
}

func TestRunnableVsRunningDistinction(t *testing.T) {
	// A task that is always runnable but only running half the time
	// (sharing a core) has load ~1 but utilization ~0.5 — exactly the
	// distinction GTS's up-migration relies on.
	var tr Tracker
	now := int64(0)
	for i := 0; i < 50; i++ {
		tr.Transition(now, true, true)
		now += 3e6
		tr.Transition(now, true, false) // queued, not running
		now += 3e6
	}
	tr.Observe(now)
	if l := tr.Load(); l < 0.9 {
		t.Fatalf("always-runnable load %g", l)
	}
	u := tr.Utilization()
	if u < 0.35 || u > 0.65 {
		t.Fatalf("half-running utilization %g", u)
	}
}

func TestRecencyBias(t *testing.T) {
	// After a long busy history, ~100 ms of idleness must pull the
	// tracked value well down (32 periods halve it).
	var tr Tracker
	tr.Transition(0, true, true)
	tr.Transition(300e6, false, false)
	tr.Observe(400e6) // ~95 idle periods
	if u := tr.Utilization(); u > 0.2 {
		t.Fatalf("stale busy history not decayed: %g", u)
	}
}

func TestBoundsProperty(t *testing.T) {
	// Any transition sequence keeps both values in [0, 1] and keeps
	// Load >= Utilization (running implies runnable).
	f := func(steps []uint8) bool {
		var tr Tracker
		now := int64(0)
		for _, s := range steps {
			dur := int64(s%64+1) * 5e5
			runnable := s&1 == 1
			running := runnable && s&2 == 2
			tr.Transition(now, runnable, running)
			now += dur
		}
		tr.Observe(now)
		u, l := tr.Utilization(), tr.Load()
		return u >= 0 && u <= 1 && l >= 0 && l <= 1 && l >= u-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNonMonotonicNowTolerated(t *testing.T) {
	var tr Tracker
	tr.Transition(10e6, true, true)
	tr.Observe(5e6) // goes backwards: must not panic or corrupt
	if u := tr.Utilization(); u < 0 || u > 1 {
		t.Fatalf("utilization %g after clock skew", u)
	}
}

func BenchmarkTransition(b *testing.B) {
	var tr Tracker
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 2e6
		tr.Transition(now, i&1 == 0, i&1 == 0)
	}
}
