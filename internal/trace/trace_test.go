package trace

import (
	"fmt"
	"strings"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

func tracedRun(t *testing.T, limit int) (*Recorder, *kernel.Kernel) {
	t.Helper()
	m, err := machine.New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(m, balancer.Vanilla{}, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(limit)
	if err != nil {
		t.Fatal(err)
	}
	k.SetObserver(rec.Observe)
	specs, err := workload.IMB(workload.Medium, workload.Medium, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(400e6); err != nil {
		t.Fatal(err)
	}
	return rec, k
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("zero limit accepted")
	}
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec, k := tracedRun(t, 1<<20)
	if rec.Count(kernel.TraceSpawn) != 4 {
		t.Fatalf("spawn events: %d", rec.Count(kernel.TraceSpawn))
	}
	if rec.Count(kernel.TraceSlice) == 0 {
		t.Fatal("no slice events")
	}
	// Interactive workload must sleep and wake.
	if rec.Count(kernel.TraceSleep) == 0 || rec.Count(kernel.TraceWake) == 0 {
		t.Fatal("no sleep/wake events for an interactive workload")
	}
	// 400ms / 60ms epochs.
	if rec.Count(kernel.TraceEpoch) != 6 {
		t.Fatalf("epoch events: %d", rec.Count(kernel.TraceEpoch))
	}
	// Trace-derived instruction total must equal the kernel's.
	if rec.TotalInstructions() != k.Stats().TotalInstructions() {
		t.Fatalf("trace instr %d != stats %d", rec.TotalInstructions(), k.Stats().TotalInstructions())
	}
	// Slice time must equal the busy time.
	var busy int64
	for _, c := range k.Stats().Cores {
		busy += c.BusyNs
	}
	if rec.TotalSliceNs() != busy {
		t.Fatalf("trace slice ns %d != busy %d", rec.TotalSliceNs(), busy)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec, _ := tracedRun(t, 16)
	if len(rec.Events()) > 16 {
		t.Fatalf("ring exceeded limit: %d", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Fatal("no eviction despite tiny ring")
	}
	// Counts still cover everything.
	if rec.Count(kernel.TraceSlice) <= 16 {
		t.Fatal("statistics should outlive the ring")
	}
}

// TestRingEvictsOldestFirst feeds a synthetic, strictly ordered event
// stream through a tiny ring and pins down the eviction policy: the
// retained window is always the most recent events, evicted oldest
// first, and the dropped counter accounts exactly for the difference.
func TestRingEvictsOldestFirst(t *testing.T) {
	rec, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	const total = 21
	for i := 0; i < total; i++ {
		rec.Observe(kernel.TraceEvent{At: int64(i), Kind: kernel.TraceWake, Core: 0, Thread: 1})
	}
	evs := rec.Events()
	if len(evs)+rec.Dropped() != total {
		t.Fatalf("retained %d + dropped %d != observed %d", len(evs), rec.Dropped(), total)
	}
	// The retained window must be the contiguous tail of the stream.
	for i, e := range evs {
		want := int64(total - len(evs) + i)
		if e.At != want {
			t.Fatalf("retained[%d].At = %d, want %d (eviction must be oldest-first)", i, e.At, want)
		}
	}
	// Statistics still cover every event, evicted or not.
	if rec.Count(kernel.TraceWake) != total {
		t.Fatalf("kind count %d, want %d", rec.Count(kernel.TraceWake), total)
	}
}

// TestSummaryReportsDropped pins the dropped count into the text
// summary, where a human reading -trace output learns the ring
// overflowed.
func TestSummaryReportsDropped(t *testing.T) {
	rec, _ := tracedRun(t, 16)
	if rec.Dropped() == 0 {
		t.Fatal("tiny ring did not overflow; test needs a longer run")
	}
	want := fmt.Sprintf("(%d dropped)", rec.Dropped())
	if s := rec.Summary(); !strings.Contains(s, want) {
		t.Fatalf("summary missing %q:\n%s", want, s)
	}
}

func TestDetachStopsEvents(t *testing.T) {
	k := newQuadKernel(t)
	rec, err := NewRecorder(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Attach(k); err != nil {
		t.Fatal(err)
	}
	rec.Detach()
	specs, err := workload.Benchmark("swaptions", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(100e6); err != nil {
		t.Fatal(err)
	}
	if n := rec.Count(kernel.TraceSlice); n != 0 {
		t.Fatalf("detached recorder still received %d slice events", n)
	}
	// Detach does not unpin: the recorder's statistics belong to k.
	if err := rec.Attach(newQuadKernel(t)); err != ErrAttached {
		t.Fatalf("attach after detach: %v, want ErrAttached", err)
	}
}

// TestRecordersComposeOnOneKernel is the multi-observer composition
// check from the trace side: two recorders attached to the same kernel
// both see the full event stream.
func TestRecordersComposeOnOneKernel(t *testing.T) {
	k := newQuadKernel(t)
	r1, _ := NewRecorder(1 << 16)
	r2, _ := NewRecorder(1 << 16)
	if err := r1.Attach(k); err != nil {
		t.Fatal(err)
	}
	if err := r2.Attach(k); err != nil {
		t.Fatal(err)
	}
	specs, err := workload.Benchmark("swaptions", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	if r1.Count(kernel.TraceSlice) == 0 {
		t.Fatal("first recorder saw nothing")
	}
	if r1.Count(kernel.TraceSlice) != r2.Count(kernel.TraceSlice) ||
		r1.TotalInstructions() != r2.TotalInstructions() {
		t.Fatalf("composed recorders disagree: %d/%d slices, %d/%d instr",
			r1.Count(kernel.TraceSlice), r2.Count(kernel.TraceSlice),
			r1.TotalInstructions(), r2.TotalInstructions())
	}
}

func TestSummaryAndDump(t *testing.T) {
	rec, _ := tracedRun(t, 1024)
	s := rec.Summary()
	for _, frag := range []string{"slice", "epoch", "context switches per core", "c0="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, s)
		}
	}
	var sb strings.Builder
	if err := rec.Dump(&sb, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 10 {
		t.Fatalf("Dump(10) wrote %d lines", lines)
	}
	sb.Reset()
	if err := rec.Dump(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != len(rec.Events()) {
		t.Fatal("Dump(0) should write all retained events")
	}
}

func TestEventStringForms(t *testing.T) {
	e := kernel.TraceEvent{At: 1.5e6, Kind: kernel.TraceSlice, Core: 2, Thread: 7, DurNs: 3e6, Instr: 42}
	s := e.String()
	for _, frag := range []string{"slice", "core=2", "tid=7", "instr=42"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("slice event string missing %q: %s", frag, s)
		}
	}
	ep := kernel.TraceEvent{At: 60e6, Kind: kernel.TraceEpoch}
	if !strings.Contains(ep.String(), "epoch") {
		t.Fatal("epoch event string wrong")
	}
}

func TestMigrationsTracked(t *testing.T) {
	// Vanilla with 8 tasks triggers migrations; verify the recorder's
	// migration count matches kernel stats.
	m, _ := machine.New(arch.QuadHMP())
	k, _ := kernel.New(m, balancer.NewRandom(3), kernel.DefaultConfig())
	rec, _ := NewRecorder(1 << 20)
	k.SetObserver(rec.Observe)
	specs, _ := workload.Benchmark("swaptions", 6, 1)
	for i := range specs {
		_, _ = k.Spawn(&specs[i])
	}
	if err := k.Run(500e6); err != nil {
		t.Fatal(err)
	}
	if rec.Count(kernel.TraceMigrate) != k.Stats().Migrations {
		t.Fatalf("trace migrations %d != stats %d", rec.Count(kernel.TraceMigrate), k.Stats().Migrations)
	}
}

// newQuadKernel builds a fresh vanilla kernel on the quad HMP.
func newQuadKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	m, err := machine.New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(m, balancer.Vanilla{}, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAttachEnforcesOneKernel(t *testing.T) {
	rec, err := NewRecorder(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := newQuadKernel(t), newQuadKernel(t)
	if err := rec.Attach(k1); err != nil {
		t.Fatal(err)
	}
	if err := rec.Attach(k2); err != ErrAttached {
		t.Fatalf("second attach: %v, want ErrAttached", err)
	}
	// Same recorder, same kernel counts too: the binding is for life.
	if err := rec.Attach(k1); err != ErrAttached {
		t.Fatalf("re-attach to same kernel: %v, want ErrAttached", err)
	}
	// k2 must be untouched by the refused attach: its run produces no
	// events in rec.
	specs, err := workload.Benchmark("swaptions", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if _, err := k2.Spawn(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := k2.Run(100e6); err != nil {
		t.Fatal(err)
	}
	if rec.Count(kernel.TraceSlice) != 0 {
		t.Fatalf("refused attach still delivered %d slice events", rec.Count(kernel.TraceSlice))
	}
}

// tracedScenario runs one traced scenario and returns the recorder —
// the building block for the concurrency regression test below.
func tracedScenario(seed uint64) (*Recorder, error) {
	m, err := machine.New(arch.QuadHMP())
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(m, balancer.Vanilla{}, kernel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rec, err := NewRecorder(1 << 16)
	if err != nil {
		return nil, err
	}
	if err := rec.Attach(k); err != nil {
		return nil, err
	}
	specs, err := workload.Benchmark("swaptions", 4, seed)
	if err != nil {
		return nil, err
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			return nil, err
		}
	}
	if err := k.Run(300e6); err != nil {
		return nil, err
	}
	return rec, nil
}

// TestRecordersConcurrentKernels is the parallel-sweep regression: two
// kernels with their own recorders running on concurrent goroutines
// (exercised under go test -race) observe exactly the event counts a
// serial rerun of each scenario observes.
func TestRecordersConcurrentKernels(t *testing.T) {
	seeds := []uint64{1, 2}
	recs := make([]*Recorder, len(seeds))
	errs := make([]error, len(seeds))
	done := make(chan int, len(seeds))
	for i := range seeds {
		go func(i int) {
			recs[i], errs[i] = tracedScenario(seeds[i])
			done <- i
		}(i)
	}
	for range seeds {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent scenario %d: %v", i, err)
		}
	}
	for i, seed := range seeds {
		serial, err := tracedScenario(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []kernel.TraceKind{
			kernel.TraceSpawn, kernel.TraceSlice, kernel.TraceMigrate,
			kernel.TraceFinish, kernel.TraceEpoch,
		} {
			if got, want := recs[i].Count(kind), serial.Count(kind); got != want {
				t.Errorf("seed %d %s: concurrent %d != serial %d", seed, kind, got, want)
			}
		}
		if recs[i].TotalInstructions() != serial.TotalInstructions() {
			t.Errorf("seed %d: concurrent instr %d != serial %d",
				seed, recs[i].TotalInstructions(), serial.TotalInstructions())
		}
	}
}
