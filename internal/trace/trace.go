// Package trace records and summarises kernel scheduling events: a
// bounded ring of raw events plus aggregate statistics (per-kind
// counts, per-core context switches, migration matrix). It backs the
// sbsim -trace flag and is handy when debugging balancer behaviour.
//
// Recorders are strictly one-per-kernel-instance: a kernel is
// single-threaded, so a recorder bound to exactly one kernel needs no
// locking, while sharing one across kernels — easy to do by accident
// now that the sweep engine runs scenarios concurrently — would race
// on every counter and interleave unrelated event streams. Attach
// enforces the binding; parallel sweeps give every kernel its own
// recorder.
package trace

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"smartbalance/internal/arch"
	"smartbalance/internal/kernel"
)

// ErrAttached reports an attempt to bind one Recorder to a second
// kernel.
var ErrAttached = errors.New("trace: recorder is already attached to a kernel")

// Recorder accumulates one kernel's trace events. Bind it with Attach
// (preferred — it enforces the one-kernel rule) or, in single-kernel
// code, kernel.SetObserver(rec.Observe). Not safe for concurrent use:
// it inherits its kernel's single-threadedness, so concurrent
// simulations need one recorder per kernel instance.
type Recorder struct {
	limit  int
	events []kernel.TraceEvent
	// dropped counts events evicted from the ring.
	dropped int
	// attached flips on the first Attach, pinning the recorder to that
	// kernel for life. k and slot identify the observer registration so
	// Detach can undo it.
	attached bool
	k        *kernel.Kernel
	slot     int

	kindCounts map[kernel.TraceKind]int
	// switchesPerCore counts TraceSlice events per core.
	switchesPerCore map[arch.CoreID]int
	// migrations[dst] counts arrivals per destination core.
	migrations map[arch.CoreID]int
	// sliceNs accumulates total sliced execution time.
	sliceNs int64
	// instr accumulates retired instructions across slices.
	instr uint64
}

// NewRecorder creates a recorder keeping at most limit raw events
// (older events are evicted; statistics cover everything). limit must
// be positive.
func NewRecorder(limit int) (*Recorder, error) {
	if limit < 1 {
		return nil, fmt.Errorf("trace: non-positive event limit %d", limit)
	}
	return &Recorder{
		limit:           limit,
		kindCounts:      make(map[kernel.TraceKind]int),
		switchesPerCore: make(map[arch.CoreID]int),
		migrations:      make(map[arch.CoreID]int),
	}, nil
}

// Attach installs the recorder as k's trace observer and pins it to
// that kernel: a second Attach — the same recorder shared across the
// sweep engine's concurrent kernels would race on every counter —
// returns ErrAttached and leaves the second kernel untouched.
func (r *Recorder) Attach(k *kernel.Kernel) error {
	if r.attached {
		return ErrAttached
	}
	r.attached = true
	r.k = k
	r.slot = k.AddObserver(r.Observe)
	return nil
}

// Detach uninstalls the recorder from its kernel. The recorder stays
// pinned to that kernel (re-Attach still returns ErrAttached — its
// statistics describe that kernel and must not mix streams); Detach
// only stops further events from arriving, e.g. before installing a
// replacement recorder on the same kernel.
func (r *Recorder) Detach() {
	if r.k != nil {
		r.k.RemoveObserver(r.slot)
		r.k = nil
	}
}

// Observe is the kernel.Observer callback.
func (r *Recorder) Observe(e kernel.TraceEvent) {
	if len(r.events) >= r.limit {
		// Drop the oldest half in one move to amortise eviction.
		half := r.limit / 2
		if half < 1 {
			half = 1
		}
		r.dropped += half
		r.events = append(r.events[:0], r.events[half:]...)
	}
	r.events = append(r.events, e)
	r.kindCounts[e.Kind]++
	switch e.Kind {
	case kernel.TraceSlice:
		r.switchesPerCore[e.Core]++
		r.sliceNs += e.DurNs
		r.instr += e.Instr
	case kernel.TraceMigrate:
		r.migrations[e.Core]++
	}
}

// Events returns the retained raw events (oldest first).
func (r *Recorder) Events() []kernel.TraceEvent {
	out := make([]kernel.TraceEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped reports how many raw events were evicted from the ring.
func (r *Recorder) Dropped() int { return r.dropped }

// Count returns how many events of the given kind were observed
// (including evicted ones).
func (r *Recorder) Count(k kernel.TraceKind) int { return r.kindCounts[k] }

// TotalInstructions returns instructions observed across all slices.
func (r *Recorder) TotalInstructions() uint64 { return r.instr }

// TotalSliceNs returns execution time observed across all slices.
func (r *Recorder) TotalSliceNs() int64 { return r.sliceNs }

// Summary renders aggregate statistics.
func (r *Recorder) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d retained events (%d dropped)\n", len(r.events), r.dropped)
	order := []kernel.TraceKind{
		kernel.TraceSpawn, kernel.TraceSlice, kernel.TraceSleep, kernel.TraceWake,
		kernel.TraceMigrate, kernel.TraceFinish, kernel.TraceEpoch,
		kernel.TraceCoreIdle, kernel.TraceCoreBusy,
	}
	for _, k := range order {
		if c := r.kindCounts[k]; c > 0 {
			fmt.Fprintf(&sb, "  %-10s %d\n", k, c)
		}
	}
	if len(r.switchesPerCore) > 0 {
		sb.WriteString("  context switches per core:")
		max := arch.CoreID(-1)
		for c := range r.switchesPerCore {
			if c > max {
				max = c
			}
		}
		for c := arch.CoreID(0); c <= max; c++ {
			fmt.Fprintf(&sb, " c%d=%d", c, r.switchesPerCore[c])
		}
		sb.WriteByte('\n')
	}
	if len(r.migrations) > 0 {
		sb.WriteString("  migration arrivals per core:")
		max := arch.CoreID(-1)
		for c := range r.migrations {
			if c > max {
				max = c
			}
		}
		for c := arch.CoreID(0); c <= max; c++ {
			if n := r.migrations[c]; n > 0 {
				fmt.Fprintf(&sb, " c%d=%d", c, n)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dump writes the last n retained events to w (all of them when n <= 0
// or n exceeds the retained count).
func (r *Recorder) Dump(w io.Writer, n int) error {
	evs := r.events
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	for _, e := range evs {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
