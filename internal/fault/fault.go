// Package fault is the deterministic fault-injection layer for the
// sense→predict→balance loop: it perturbs what the balancer observes —
// per-thread counter samples, per-core power readings, and the outcome
// of migration requests — without ever touching the simulation's ground
// truth. Real sensing stacks lose counter banks, replay stale epochs,
// saturate on overflow, and transiently refuse migrations; SmartBalance
// must degrade gracefully under all of it (see DESIGN.md §9), and this
// package makes every one of those imperfections reproducible.
//
// Determinism contract: an Injector is a pure function of its Plan, its
// seed, and the simulated call sequence. All randomness flows from one
// rng.Rand stream whose draws are consumed in sorted-thread-id order,
// so a run with faults is exactly as reproducible as a run without.
// Wall-clock time never enters (the sbvet wallclock invariant); the
// only time an injector sees is the kernel's simulated clock.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
	"smartbalance/internal/rng"
)

// ErrMigrationRefused is the sentinel wrapped by every injected
// migration failure, so callers can distinguish an injected transient
// refusal from a genuinely invalid request.
var ErrMigrationRefused = errors.New("fault: migration refused (injected)")

// saturated is the value injected into event counters by the saturate
// corruption: large enough that every derived rate (IPC, miss rates,
// instruction shares) is wildly implausible, small enough that sums of
// a few of them cannot overflow uint64.
const saturated = uint64(1) << 62

// defaultSpikeFactor multiplies power readings on an injected spike
// when the plan does not set its own factor.
const defaultSpikeFactor = 10.0

// Plan describes one fault-injection configuration. The five sensor
// rates are per-thread-epoch probabilities of mutually exclusive fault
// kinds (a single uniform draw per thread per epoch selects at most
// one), so their sum must not exceed 1. The zero value injects nothing.
type Plan struct {
	// DropRate is the probability a thread's epoch sample vanishes
	// entirely (a dropped counter bank).
	DropRate float64 `json:"drop,omitempty"`
	// StaleRate is the probability the thread's previous-epoch sample
	// is replayed in place of the current one (a stale sensor read).
	// With no previous epoch on record the fault degrades to a drop.
	StaleRate float64 `json:"stale,omitempty"`
	// CorruptRate is the probability the thread's counters are zeroed
	// or saturated (chosen by a coin flip), modelling counter-bank
	// wipes and overflow.
	CorruptRate float64 `json:"corrupt,omitempty"`
	// PowerDropRate is the probability the thread's power reading (and,
	// independently per core, the core power sensor) reads zero.
	PowerDropRate float64 `json:"powerdrop,omitempty"`
	// PowerSpikeRate is the probability the power reading is multiplied
	// by SpikeFactor (an electrical transient).
	PowerSpikeRate float64 `json:"powerspike,omitempty"`
	// MigrateFailRate is the per-call probability a valid
	// kernel.Migrate request is refused with ErrMigrationRefused.
	MigrateFailRate float64 `json:"migfail,omitempty"`
	// SpikeFactor is the power-spike multiplier; 0 selects the default
	// of 10.
	SpikeFactor float64 `json:"spikex,omitempty"`
	// Seed drives the injector's random stream. 0 defers to the seed
	// the injector is constructed with (normally derived from the
	// scenario seed), keeping single-seed scenarios single-knobbed.
	Seed uint64 `json:"seed,omitempty"`
}

// IsZero reports whether the plan injects nothing.
func (p Plan) IsZero() bool {
	return p.DropRate == 0 && p.StaleRate == 0 && p.CorruptRate == 0 && //sbvet:allow floateq(zero is the fault-disabled sentinel, never a computed value)
		p.PowerDropRate == 0 && p.PowerSpikeRate == 0 && p.MigrateFailRate == 0 //sbvet:allow floateq(zero is the fault-disabled sentinel, never a computed value)
}

// sensorSum returns the total probability mass of the per-thread sensor
// faults.
func (p Plan) sensorSum() float64 {
	return p.DropRate + p.StaleRate + p.CorruptRate + p.PowerDropRate + p.PowerSpikeRate
}

// Validate checks the plan's probabilities.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop", p.DropRate}, {"stale", p.StaleRate}, {"corrupt", p.CorruptRate},
		{"powerdrop", p.PowerDropRate}, {"powerspike", p.PowerSpikeRate},
		{"migfail", p.MigrateFailRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %s rate %g outside [0, 1]", r.name, r.v)
		}
	}
	if s := p.sensorSum(); s > 1+1e-12 {
		return fmt.Errorf("fault: sensor fault rates sum to %g > 1 (they are mutually exclusive per thread-epoch)", s)
	}
	if p.SpikeFactor != 0 && p.SpikeFactor < 1 { //sbvet:allow floateq(zero is the use-default sentinel, never a computed value)
		return fmt.Errorf("fault: spike factor %g below 1", p.SpikeFactor)
	}
	return nil
}

// Clamped returns the nearest valid plan: each rate clamped to [0, 1]
// (NaN reads as 0), the mutually exclusive sensor rates rescaled
// proportionally when their sum exceeds 1, and a non-zero SpikeFactor
// raised to at least 1. Validate is nil on the result. Mutation-based
// callers (the adversarial hunt) perturb rates independently and rely
// on this to land back inside the plan domain instead of erroring.
func (p Plan) Clamped() Plan {
	clamp01 := func(v float64) float64 {
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	q := p
	q.DropRate = clamp01(p.DropRate)
	q.StaleRate = clamp01(p.StaleRate)
	q.CorruptRate = clamp01(p.CorruptRate)
	q.PowerDropRate = clamp01(p.PowerDropRate)
	q.PowerSpikeRate = clamp01(p.PowerSpikeRate)
	q.MigrateFailRate = clamp01(p.MigrateFailRate)
	if s := q.sensorSum(); s > 1 {
		q.DropRate /= s
		q.StaleRate /= s
		q.CorruptRate /= s
		q.PowerDropRate /= s
		q.PowerSpikeRate /= s
	}
	if math.IsNaN(q.SpikeFactor) || q.SpikeFactor < 0 {
		q.SpikeFactor = 0
	}
	if q.SpikeFactor != 0 && q.SpikeFactor < 1 { //sbvet:allow floateq(zero is the use-default sentinel, never a computed value)
		q.SpikeFactor = 1
	}
	return q
}

// String renders the plan in the canonical spec grammar accepted by
// ParsePlan: semicolon-separated key=value pairs in fixed field order,
// zero fields omitted. The zero plan renders as "none".
func (p Plan) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 { //sbvet:allow floateq(zero fields are elided from the canonical spec, never computed)
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("drop", p.DropRate)
	add("stale", p.StaleRate)
	add("corrupt", p.CorruptRate)
	add("powerdrop", p.PowerDropRate)
	add("powerspike", p.PowerSpikeRate)
	add("migfail", p.MigrateFailRate)
	add("spikex", p.SpikeFactor)
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(p.Seed, 10))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses the spec grammar produced by String:
// "drop=0.5;stale=0.1;migfail=0.2;seed=7". "", "none", and "off" all
// mean the zero plan. Keys match the Plan fields: drop, stale, corrupt,
// powerdrop, powerspike, migfail, spikex, seed.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" || spec == "off" {
		return p, nil
	}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad spec item %q (want key=value)", item)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q", val)
			}
			p.Seed = seed
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad value %q for %q", val, key)
		}
		switch key {
		case "drop":
			p.DropRate = f
		case "stale":
			p.StaleRate = f
		case "corrupt":
			p.CorruptRate = f
		case "powerdrop":
			p.PowerDropRate = f
		case "powerspike":
			p.PowerSpikeRate = f
		case "migfail":
			p.MigrateFailRate = f
		case "spikex":
			p.SpikeFactor = f
		default:
			return Plan{}, fmt.Errorf("fault: unknown spec key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Stats counts the faults an injector has materialised. Deterministic
// per (plan, seed, run): tests assert on exact values.
type Stats struct {
	// Epochs is the number of FilterEpoch invocations.
	Epochs int
	// Dropped counts vanished thread samples (including stale faults
	// with no history to replay).
	Dropped int
	// Staled counts replayed previous-epoch samples.
	Staled int
	// Corrupted counts zeroed/saturated samples.
	Corrupted int
	// PowerDrops and PowerSpikes count power-sensor faults across both
	// thread samples and per-core aggregates.
	PowerDrops  int
	PowerSpikes int
	// MigrateFails counts refused migration requests.
	MigrateFails int
}

// Injector implements kernel.FaultInjector according to a Plan. Not
// safe for concurrent use: one injector serves exactly one kernel,
// which calls it from one goroutine.
type Injector struct {
	plan Plan
	r    *rng.Rand

	// prev is the previous epoch's unperturbed snapshot, the source of
	// stale-replay faults.
	prev  []hpc.ThreadSample
	stats Stats
}

var _ kernel.FaultInjector = (*Injector)(nil)

// New builds an injector for the plan. seed drives the fault stream
// when the plan does not pin its own Seed; callers derive it from the
// scenario seed so one knob reproduces the whole run.
func New(plan Plan, seed uint64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.Seed != 0 {
		seed = plan.Seed
	}
	return &Injector{plan: plan, r: rng.New(seed)}, nil
}

// Plan returns the injector's configuration.
func (in *Injector) Plan() Plan { return in.plan }

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// spikeFactor resolves the configured or default spike multiplier.
func (in *Injector) spikeFactor() float64 {
	if in.plan.SpikeFactor >= 1 {
		return in.plan.SpikeFactor
	}
	return defaultSpikeFactor
}

// FilterEpoch implements kernel.FaultInjector: one uniform draw per
// thread (in sorted id order, so draws never depend on map iteration)
// selects at most one sensor fault; per-core power sensors then draw
// independently. The unperturbed snapshot is retained for next epoch's
// stale replays.
func (in *Injector) FilterEpoch(epoch int, now kernel.Time, threads []hpc.ThreadSample, cores []hpc.CoreEpochSample) ([]hpc.ThreadSample, []hpc.CoreEpochSample) {
	in.stats.Epochs++
	if in.plan.sensorSum() <= 0 {
		in.prev = threads
		return threads, cores
	}
	// The snapshot is sorted ascending by thread id (the
	// hpc.Bank.Snapshot contract), so iterating in slice order consumes
	// rng draws in sorted-id order exactly as the map-era sort did.
	out := make([]hpc.ThreadSample, 0, len(threads)) //sbvet:allow hotpath(fault-experiment path; guarded by sensorSum()>0, unreachable in clean runs)
	p := in.plan
	for i := range threads {
		tid, s := threads[i].Thread, threads[i].Sample
		u := in.r.Float64()
		switch {
		case u < p.DropRate:
			in.stats.Dropped++
		case u < p.DropRate+p.StaleRate:
			if prev := hpc.FindThread(in.prev, tid); prev != nil {
				out = append(out, hpc.ThreadSample{Thread: tid, Sample: copySample(prev)}) //sbvet:allow hotpath(fault-experiment path; guarded by sensorSum()>0, unreachable in clean runs)
				in.stats.Staled++
			} else {
				// Nothing to replay yet: the sensor delivered garbage
				// framing, observed as a drop.
				in.stats.Dropped++
			}
		case u < p.DropRate+p.StaleRate+p.CorruptRate:
			c := copySample(s)
			if in.r.Uint64()&1 == 0 {
				zeroSample(c)
			} else {
				saturateSample(c)
			}
			out = append(out, hpc.ThreadSample{Thread: tid, Sample: c}) //sbvet:allow hotpath(fault-experiment path; guarded by sensorSum()>0, unreachable in clean runs)
			in.stats.Corrupted++
		case u < p.DropRate+p.StaleRate+p.CorruptRate+p.PowerDropRate:
			c := copySample(s)
			scaleEnergy(c, 0)
			out = append(out, hpc.ThreadSample{Thread: tid, Sample: c}) //sbvet:allow hotpath(fault-experiment path; guarded by sensorSum()>0, unreachable in clean runs)
			in.stats.PowerDrops++
		case u < p.sensorSum():
			c := copySample(s)
			scaleEnergy(c, in.spikeFactor())
			out = append(out, hpc.ThreadSample{Thread: tid, Sample: c}) //sbvet:allow hotpath(fault-experiment path; guarded by sensorSum()>0, unreachable in clean runs)
			in.stats.PowerSpikes++
		default:
			out = append(out, threads[i]) //sbvet:allow hotpath(fault-experiment path; guarded by sensorSum()>0, unreachable in clean runs)
		}
	}

	outCores := cores
	if p.PowerDropRate > 0 || p.PowerSpikeRate > 0 {
		outCores = append([]hpc.CoreEpochSample(nil), cores...) //sbvet:allow hotpath(fault-experiment path; guarded by sensorSum()>0, unreachable in clean runs)
		for i := range outCores {
			u := in.r.Float64()
			switch {
			case u < p.PowerDropRate:
				outCores[i].Agg.EnergyJ = 0
				outCores[i].SleepEnergyJ = 0
				in.stats.PowerDrops++
			case u < p.PowerDropRate+p.PowerSpikeRate:
				outCores[i].Agg.EnergyJ *= in.spikeFactor()
				outCores[i].SleepEnergyJ *= in.spikeFactor()
				in.stats.PowerSpikes++
			}
		}
	}
	in.prev = threads
	return out, outCores
}

// MigrateFault implements kernel.FaultInjector.
func (in *Injector) MigrateFault(now kernel.Time, id kernel.ThreadID, dst arch.CoreID) error {
	if in.plan.MigrateFailRate <= 0 {
		return nil
	}
	if in.r.Float64() < in.plan.MigrateFailRate {
		in.stats.MigrateFails++
		return fmt.Errorf("%w: task %d -> core %d", ErrMigrationRefused, id, dst) //sbvet:allow hotpath(injected-refusal diagnostic; fires only under a configured MigrateFailRate experiment)
	}
	return nil
}

// copySample deep-copies a thread sample so perturbations never alias
// the clean snapshot retained for stale replay (snapshot views are
// bank-owned double buffers, valid only until the next epoch).
func copySample(s *hpc.ThreadEpochSample) *hpc.ThreadEpochSample {
	return &hpc.ThreadEpochSample{PerCore: append([]hpc.CoreCounters(nil), s.PerCore...)} //sbvet:allow hotpath(fault-experiment path; reached only from FilterEpoch perturbation branches)
}

// zeroSample wipes every counter: the bank lost the thread's state.
func zeroSample(s *hpc.ThreadEpochSample) {
	for i := range s.PerCore {
		s.PerCore[i].C = hpc.Counters{}
	}
}

// saturateSample overflows the event counters while leaving the
// scheduler-owned run time intact — the measured rates become wildly
// implausible, which is exactly what the hardened Sense must catch.
func saturateSample(s *hpc.ThreadEpochSample) {
	for i := range s.PerCore {
		c := &s.PerCore[i].C
		c.Instructions = saturated
		c.MemInstructions = saturated
		c.BranchInstructions = saturated
		c.CyclesBusy = saturated
		c.CyclesIdle = saturated
		c.L1IMisses = saturated
		c.L1DMisses = saturated
		c.BranchMispredicts = saturated
		c.ITLBMisses = saturated
		c.DTLBMisses = saturated
		c.LLCMisses = saturated
		c.MemBytes = saturated
	}
}

// scaleEnergy multiplies every power reading in the sample.
func scaleEnergy(s *hpc.ThreadEpochSample, factor float64) {
	for i := range s.PerCore {
		s.PerCore[i].C.EnergyJ *= factor
	}
}
