package fault

import (
	"errors"
	"math"
	"testing"

	"smartbalance/internal/hpc"
	"smartbalance/internal/kernel"
)

// mkSample builds a single-core thread sample with plausible counters.
func mkSample(core int, instr uint64, energy float64) *hpc.ThreadEpochSample {
	return &hpc.ThreadEpochSample{PerCore: []hpc.CoreCounters{{
		Core: core,
		C: hpc.Counters{
			RunNs:        1_000_000,
			Instructions: instr,
			CyclesBusy:   instr + instr/2,
			EnergyJ:      energy,
		},
	}}}
}

func mkThreads(n int) []hpc.ThreadSample {
	m := make([]hpc.ThreadSample, n)
	for i := 0; i < n; i++ {
		m[i] = hpc.ThreadSample{Thread: i, Sample: mkSample(i%2, 1000+uint64(i), 0.01*float64(i+1))}
	}
	return m
}

func mkCores() []hpc.CoreEpochSample {
	return []hpc.CoreEpochSample{
		{BusyNs: 1e6, Agg: hpc.Counters{EnergyJ: 0.5}, SleepEnergyJ: 0.05},
		{BusyNs: 2e6, Agg: hpc.Counters{EnergyJ: 0.8}, SleepEnergyJ: 0.02},
	}
}

func TestZeroPlanIsPassthrough(t *testing.T) {
	in, err := New(Plan{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	threads := mkThreads(4)
	cores := mkCores()
	outT, outC := in.FilterEpoch(1, 0, threads, cores)
	// Identity, not just equality: zero plans must not copy or redraw.
	if len(outT) != len(threads) {
		t.Fatalf("thread count changed: %d -> %d", len(threads), len(outT))
	}
	for tid, s := range threads {
		if outT[tid] != s {
			t.Fatalf("thread %d sample was copied by a zero plan", tid)
		}
	}
	if &outC[0] != &cores[0] {
		t.Fatal("core slice was copied by a zero plan")
	}
	if err := in.MigrateFault(0, 1, 0); err != nil {
		t.Fatalf("zero plan refused a migration: %v", err)
	}
	if s := in.Stats(); s.Dropped+s.Staled+s.Corrupted+s.PowerDrops+s.PowerSpikes+s.MigrateFails != 0 {
		t.Fatalf("zero plan materialised faults: %+v", s)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	plan := Plan{DropRate: 0.2, StaleRate: 0.2, CorruptRate: 0.2, PowerDropRate: 0.1, PowerSpikeRate: 0.1, MigrateFailRate: 0.3}
	run := func(seed uint64) (Stats, map[int]float64) {
		in, err := New(plan, seed)
		if err != nil {
			t.Fatal(err)
		}
		energies := make(map[int]float64)
		for epoch := 1; epoch <= 50; epoch++ {
			threads, cores := in.FilterEpoch(epoch, kernel.Time(epoch)*60e6, mkThreads(6), mkCores())
			for _, s := range threads {
				tot := s.Sample.Total()
				energies[s.Thread*1000+epoch] = tot.EnergyJ
			}
			_ = cores
			_ = in.MigrateFault(kernel.Time(epoch)*60e6, 1, 0)
		}
		return in.Stats(), energies
	}
	s1, e1 := run(7)
	s2, e2 := run(7)
	if s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	for k, v := range e1 {
		if e2[k] != v { //sbvet:allow floateq(bit-identity is the property under test)
			t.Fatalf("same seed diverged at %d: %g vs %g", k, v, e2[k])
		}
	}
	s3, _ := run(8)
	if s1 == s3 {
		t.Fatalf("different seeds produced identical stats %+v (suspicious)", s1)
	}
}

func TestDropRateOne(t *testing.T) {
	in, err := New(Plan{DropRate: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := in.FilterEpoch(1, 0, mkThreads(5), mkCores())
	if len(out) != 0 {
		t.Fatalf("full dropout left %d samples", len(out))
	}
	if s := in.Stats(); s.Dropped != 5 {
		t.Fatalf("want 5 drops, got %+v", s)
	}
}

func TestStaleReplaysPreviousEpoch(t *testing.T) {
	in, err := New(Plan{StaleRate: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1: no history, so stale degrades to drop.
	out1, _ := in.FilterEpoch(1, 0, []hpc.ThreadSample{{Thread: 3, Sample: mkSample(0, 100, 1.0)}}, mkCores())
	if len(out1) != 0 {
		t.Fatalf("stale with no history should drop, got %d samples", len(out1))
	}
	// Epoch 2: replays epoch 1's clean sample, not epoch 2's.
	out2, _ := in.FilterEpoch(2, 0, []hpc.ThreadSample{{Thread: 3, Sample: mkSample(0, 200, 2.0)}}, mkCores())
	s := hpc.FindThread(out2, 3)
	if s == nil {
		t.Fatal("stale fault dropped the sample instead of replaying")
	}
	if got := s.Total().Instructions; got != 100 {
		t.Fatalf("want epoch-1 instructions 100 replayed, got %d", got)
	}
	// Epoch 3 replays epoch 2's clean value: prev tracks the true
	// snapshot, not the perturbed one.
	out3, _ := in.FilterEpoch(3, 0, []hpc.ThreadSample{{Thread: 3, Sample: mkSample(0, 300, 3.0)}}, mkCores())
	if got := hpc.FindThread(out3, 3).Total().Instructions; got != 200 {
		t.Fatalf("want epoch-2 instructions 200 replayed, got %d", got)
	}
	st := in.Stats()
	if st.Dropped != 1 || st.Staled != 2 {
		t.Fatalf("want 1 drop + 2 stales, got %+v", st)
	}
}

func TestCorruptZeroesOrSaturates(t *testing.T) {
	in, err := New(Plan{CorruptRate: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	zeroed, sat := 0, 0
	for epoch := 1; epoch <= 20; epoch++ {
		out, _ := in.FilterEpoch(epoch, 0, []hpc.ThreadSample{{Thread: 1, Sample: mkSample(0, 500, 1.0)}}, mkCores())
		tot := hpc.FindThread(out, 1).Total()
		switch tot.Instructions {
		case 0:
			zeroed++
		case saturated:
			sat++
		default:
			t.Fatalf("corrupt sample has ordinary instruction count %d", tot.Instructions)
		}
	}
	if zeroed == 0 || sat == 0 {
		t.Fatalf("both corruption flavours should appear over 20 epochs: zeroed=%d saturated=%d", zeroed, sat)
	}
	if s := in.Stats(); s.Corrupted != 20 {
		t.Fatalf("want 20 corruptions, got %+v", s)
	}
}

func TestPowerFaults(t *testing.T) {
	in, err := New(Plan{PowerDropRate: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	threads := []hpc.ThreadSample{{Thread: 1, Sample: mkSample(0, 500, 2.5)}}
	outT, outC := in.FilterEpoch(1, 0, threads, mkCores())
	if e := hpc.FindThread(outT, 1).Total().EnergyJ; e != 0 { //sbvet:allow floateq(injected drop writes exactly zero)
		t.Fatalf("power drop left thread energy %g", e)
	}
	for i := range outC {
		if outC[i].Agg.EnergyJ != 0 || outC[i].SleepEnergyJ != 0 { //sbvet:allow floateq(injected drop writes exactly zero)
			t.Fatalf("power drop left core %d energy %g/%g", i, outC[i].Agg.EnergyJ, outC[i].SleepEnergyJ)
		}
	}
	// Ground truth must be untouched.
	if e := threads[0].Sample.Total().EnergyJ; math.Abs(e-2.5) > 1e-15 {
		t.Fatalf("injector mutated the clean sample: %g", e)
	}

	spike, err := New(Plan{PowerSpikeRate: 1, SpikeFactor: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	outT, outC = spike.FilterEpoch(1, 0, []hpc.ThreadSample{{Thread: 1, Sample: mkSample(0, 500, 2.5)}}, mkCores())
	if e := hpc.FindThread(outT, 1).Total().EnergyJ; math.Abs(e-10) > 1e-12 {
		t.Fatalf("want 4x spike = 10 J, got %g", e)
	}
	if e := outC[0].Agg.EnergyJ; math.Abs(e-2.0) > 1e-12 {
		t.Fatalf("want core spike 0.5*4 = 2 J, got %g", e)
	}
}

func TestMigrateFault(t *testing.T) {
	in, err := New(Plan{MigrateFailRate: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	errFault := in.MigrateFault(0, 7, 2)
	if !errors.Is(errFault, ErrMigrationRefused) {
		t.Fatalf("want ErrMigrationRefused, got %v", errFault)
	}
	if s := in.Stats(); s.MigrateFails != 1 {
		t.Fatalf("want 1 migrate fail, got %+v", s)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	cases := []Plan{
		{},
		{DropRate: 0.5},
		{DropRate: 0.25, StaleRate: 0.125, CorruptRate: 0.0625, PowerDropRate: 0.03125, PowerSpikeRate: 0.015625, MigrateFailRate: 0.75, SpikeFactor: 12, Seed: 99},
	}
	for _, want := range cases {
		spec := want.String()
		got, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v want %+v", spec, got, want)
		}
	}
	if p, err := ParsePlan("none"); err != nil || !p.IsZero() {
		t.Fatalf(`ParsePlan("none") = %+v, %v`, p, err)
	}
	if (Plan{}).String() != "none" {
		t.Fatalf("zero plan renders as %q", (Plan{}).String())
	}
	for _, bad := range []string{"drop", "drop=x", "bogus=1", "drop=1.5", "drop=0.7;stale=0.7", "spikex=0.5", "seed=-1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted invalid spec", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Plan{DropRate: math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if err := (Plan{DropRate: 0.5, StaleRate: 0.5, CorruptRate: 0.5}).Validate(); err == nil {
		t.Fatal("sensor rates summing to 1.5 accepted")
	}
	if err := (Plan{DropRate: 0.4, StaleRate: 0.3, CorruptRate: 0.3}).Validate(); err != nil {
		t.Fatalf("sensor rates summing to 1.0 rejected: %v", err)
	}
}

var _ kernel.FaultInjector = (*Injector)(nil)

func TestClampedProducesValidPlans(t *testing.T) {
	cases := []Plan{
		{},
		{DropRate: 0.3, MigrateFailRate: 0.5},
		{DropRate: -0.2, StaleRate: 1.7}, // out of range both ways
		{DropRate: 0.5, StaleRate: 0.5, CorruptRate: 0.5, PowerDropRate: 1}, // sensor sum 2.5
		{SpikeFactor: 0.3}, // below the minimum
		{SpikeFactor: -2},  // nonsense
		{DropRate: math.NaN(), PowerSpikeRate: math.Inf(1)},
	}
	for i, p := range cases {
		q := p.Clamped()
		if err := q.Validate(); err != nil {
			t.Errorf("case %d: Clamped() still invalid: %v (plan %+v)", i, err, q)
		}
	}
	// Valid plans pass through unchanged.
	p := Plan{DropRate: 0.2, MigrateFailRate: 0.4, SpikeFactor: 5, Seed: 9}
	if q := p.Clamped(); q != p {
		t.Errorf("valid plan changed by Clamped: %+v -> %+v", p, q)
	}
	// Oversubscribed sensor rates keep their proportions.
	over := Plan{DropRate: 1, StaleRate: 1}
	q := over.Clamped()
	if q.DropRate != q.StaleRate { //sbvet:allow floateq(identical inputs must rescale identically — exactness is the point)
		t.Errorf("proportional rescale broke symmetry: %+v", q)
	}
	if s := q.sensorSum(); s > 1+1e-12 {
		t.Errorf("rescaled sensor sum %v still > 1", s)
	}
}
