package telemetry

import (
	"strings"
	"testing"
)

func TestFirstDivergenceIdentical(t *testing.T) {
	a, b := sampleCollector().Trace(), sampleCollector().Trace()
	if d := FirstDivergence(a, b); d != nil {
		t.Fatalf("identical traces diverge: %s", d)
	}
}

func TestFirstDivergenceLocalisesEpoch(t *testing.T) {
	a, b := sampleCollector().Trace(), sampleCollector().Trace()
	// Perturb one attribute deep in epoch 2 of b.
	b.Epochs[1].Spans[1].Attrs[3] = F64("pred_ips", 9.9e9)
	d := FirstDivergence(a, b)
	if d == nil {
		t.Fatal("perturbed trace reported identical")
	}
	if d.Kind != "epoch" || d.Epoch != 2 {
		t.Fatalf("divergence = %+v, want kind=epoch epoch=2", d)
	}
	if !strings.Contains(d.String(), "first divergent epoch 2") {
		t.Fatalf("String() = %q, want it to name epoch 2", d.String())
	}
}

func TestFirstDivergenceEpochBeatsMeta(t *testing.T) {
	a, b := sampleCollector().Trace(), sampleCollector().Trace()
	b.Meta["seed"] = "43"
	b.Epochs[2].Spans[0].DurNs++
	d := FirstDivergence(a, b)
	if d == nil || d.Kind != "epoch" || d.Epoch != 3 {
		t.Fatalf("divergence = %+v, want the epoch difference, not the meta one", d)
	}
}

func TestFirstDivergenceEpochCount(t *testing.T) {
	a, b := sampleCollector().Trace(), sampleCollector().Trace()
	b.Epochs = b.Epochs[:2]
	d := FirstDivergence(a, b)
	if d == nil || d.Kind != "epoch" || d.Epoch != 3 {
		t.Fatalf("divergence = %+v, want truncation reported at epoch 3", d)
	}
}

func TestFirstDivergenceMetrics(t *testing.T) {
	a, b := sampleCollector().Trace(), sampleCollector().Trace()
	b.Metrics[0].Value++
	d := FirstDivergence(a, b)
	if d == nil || d.Kind != "metrics" {
		t.Fatalf("divergence = %+v, want kind=metrics", d)
	}
}

func TestFirstDivergenceMetaOnly(t *testing.T) {
	a, b := sampleCollector().Trace(), sampleCollector().Trace()
	b.Meta["note"] = "relabelled"
	d := FirstDivergence(a, b)
	if d == nil || d.Kind != "meta" {
		t.Fatalf("divergence = %+v, want kind=meta", d)
	}
}

func TestFirstDivergenceAnomalies(t *testing.T) {
	a, b := sampleCollector().Trace(), sampleCollector().Trace()
	b.Anomalies[0].Reason = AnomalyRefusedBurst
	d := FirstDivergence(a, b)
	if d == nil || d.Kind != "anomalies" || d.Epoch != 3 {
		t.Fatalf("divergence = %+v, want kind=anomalies epoch=3", d)
	}
}
