package telemetry

import (
	"strings"
	"testing"
)

// sampleCollector builds a small, fully deterministic trace exercising
// every feature: meta, all three metric kinds, multiple epochs with
// spans and attrs, one anomaly with a flight dump.
func sampleCollector() *Collector {
	c := New(Config{FlightEpochs: 2})
	c.SetMeta("platform", "odroid-xu3")
	c.SetMeta("seed", "42")
	c.Counter("migrations_total").Add(3)
	c.Gauge("last_ee").Set(1.25)
	h := c.Histogram("sense_latency_us", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	for e := 1; e <= 3; e++ {
		start := int64(e) * 1_000_000
		c.BeginEpoch(e, start)
		c.Span(PhaseSense, start, 1500, Int("cores", 8))
		c.Span(PhaseMigrate, start+1500, 800,
			Int("thread", 4), Int("from", 0), Int("to", 5), F64("pred_ips", 2.5e9))
	}
	c.Anomaly(3_500_000, AnomalyDegradedEpoch, "5/8 cores degraded")
	return c
}

func TestCollectorNilIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.SetMeta("k", "v")
	c.Counter("x").Inc()
	c.Gauge("g").Set(1)
	c.Histogram("h", []float64{1}).Observe(2)
	c.BeginEpoch(1, 0)
	c.Span("sense", 0, 1)
	c.Anomaly(0, "r", "")
	c.Merge(New(Config{}))
	if got := c.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	if n := len(c.Trace().Epochs); n != 0 {
		t.Fatalf("nil collector trace has %d epochs", n)
	}
	if c.Anomalies() != nil || c.Dumps() != nil || c.DroppedEpochs() != 0 {
		t.Fatal("nil collector leaks state")
	}
}

func TestBeginEpochIdempotent(t *testing.T) {
	c := New(Config{})
	c.BeginEpoch(1, 100)
	c.Span("sense", 100, 10)
	c.BeginEpoch(1, 999) // duplicate announcement must not rotate
	c.Span("decide", 110, 10)
	c.BeginEpoch(2, 200)
	tr := c.Trace()
	if len(tr.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(tr.Epochs))
	}
	if len(tr.Epochs[0].Spans) != 2 {
		t.Fatalf("epoch 1 spans = %d, want 2 (duplicate BeginEpoch rotated)", len(tr.Epochs[0].Spans))
	}
	if tr.Epochs[0].StartNs != 100 {
		t.Fatalf("epoch 1 start = %d, want 100 (duplicate BeginEpoch reset it)", tr.Epochs[0].StartNs)
	}
}

func TestSpanBeforeBeginEpoch(t *testing.T) {
	c := New(Config{})
	c.Span("boot", 5, 1)
	tr := c.Trace()
	if len(tr.Epochs) != 1 || tr.Epochs[0].Epoch != 0 {
		t.Fatalf("want implicit epoch 0, got %+v", tr.Epochs)
	}
}

func TestMaxEpochsEviction(t *testing.T) {
	c := New(Config{MaxEpochs: 3})
	for e := 1; e <= 6; e++ {
		c.BeginEpoch(e, int64(e))
	}
	tr := c.Trace()
	// Epochs 1..5 are closed (6 is in progress); MaxEpochs=3 keeps 3..5.
	want := []int{3, 4, 5, 6}
	if len(tr.Epochs) != len(want) {
		t.Fatalf("epochs = %d, want %d", len(tr.Epochs), len(want))
	}
	for i, e := range want {
		if tr.Epochs[i].Epoch != e {
			t.Fatalf("epoch[%d] = %d, want %d (eviction must be oldest-first)", i, tr.Epochs[i].Epoch, e)
		}
	}
	if c.DroppedEpochs() != 2 {
		t.Fatalf("dropped = %d, want 2", c.DroppedEpochs())
	}
}

func TestFlightRecorderWindowAndDumpCap(t *testing.T) {
	c := New(Config{FlightEpochs: 2, MaxDumps: 2})
	for e := 1; e <= 5; e++ {
		c.BeginEpoch(e, int64(e)*100)
		c.Span("sense", int64(e)*100, 1)
	}
	for i := 0; i < 4; i++ {
		c.Anomaly(550, AnomalyNegativeEEGain, "")
	}
	if got := len(c.Anomalies()); got != 4 {
		t.Fatalf("anomalies = %d, want 4", got)
	}
	dumps := c.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("dumps = %d, want MaxDumps=2", len(dumps))
	}
	w := dumps[0].Window
	if len(w) != 2 || w[0].Epoch != 4 || w[1].Epoch != 5 {
		t.Fatalf("window = %+v, want last 2 epochs [4 5]", w)
	}
	if dumps[0].Anomaly.Epoch != 5 {
		t.Fatalf("dump anomaly epoch = %d, want 5", dumps[0].Anomaly.Epoch)
	}
}

func TestCounterMonotone(t *testing.T) {
	c := New(Config{})
	ctr := c.Counter("x")
	ctr.Add(2)
	ctr.Add(-5)
	if got := ctr.Value(); got != 2 {
		t.Fatalf("counter = %d, want 2 (negative adds ignored)", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := New(Config{})
	h := c.Histogram("h", []float64{100, 10}) // unsorted on purpose
	for _, v := range []float64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	var m Metric
	for _, s := range c.Trace().Metrics {
		if s.Key == "h" {
			m = s
		}
	}
	want := "h histogram count=4 sum=1022 le=10:2 le=100:1 le=+Inf:1"
	if got := m.String(); got != want {
		t.Fatalf("histogram snapshot:\n got %s\nwant %s", got, want)
	}
}

func TestSnapshotSortedAndZeroValued(t *testing.T) {
	c := New(Config{})
	c.Counter("zz_touched").Inc()
	c.Counter("aa_untouched") // registered only
	c.Gauge("mm_gauge")
	ms := c.Trace().Metrics
	var keys []string
	for _, m := range ms {
		keys = append(keys, m.Key)
	}
	if got, want := strings.Join(keys, ","), "aa_untouched,mm_gauge,zz_touched"; got != want {
		t.Fatalf("snapshot keys = %s, want %s", got, want)
	}
	if ms[0].Value != 0 {
		t.Fatalf("untouched counter exports %v, want explicit 0", ms[0].Value)
	}
}

func TestMergeCanonicalisesWorkerOrder(t *testing.T) {
	build := func(epochs ...int) *Collector {
		c := New(Config{})
		for _, e := range epochs {
			c.BeginEpoch(e, int64(e)*10)
			c.Span("job", int64(e)*10, 3, Int("epoch", int64(e)))
			c.Counter("jobs_total").Inc()
		}
		return c
	}
	// Two merge orders simulating different parallel schedules.
	a := New(Config{})
	a.Merge(build(1, 4))
	a.Merge(build(2, 3))
	b := New(Config{})
	b.Merge(build(2, 3))
	b.Merge(build(1, 4))
	// Counters must sum either way.
	if av, bv := a.Counter("jobs_total").Value(), b.Counter("jobs_total").Value(); av != 4 || bv != 4 {
		t.Fatalf("merged counters = %d/%d, want 4/4", av, bv)
	}
	if d := FirstDivergence(a.Trace(), b.Trace()); d != nil {
		t.Fatalf("merge order leaked into trace: %s", d)
	}
	for i, e := range a.Trace().Epochs {
		if e.Epoch != i+1 {
			t.Fatalf("merged epoch[%d] = %d, want sorted order", i, e.Epoch)
		}
	}
}

func TestMergeGaugeLastWinsAndMeta(t *testing.T) {
	a := New(Config{})
	a.Gauge("g").Set(1)
	a.SetMeta("k", "a")
	b := New(Config{})
	b.Gauge("g").Set(2)
	b.SetMeta("k", "b")
	dst := New(Config{})
	dst.Merge(a)
	dst.Merge(b)
	if got := dst.Gauge("g").Value(); got != 2 {
		t.Fatalf("merged gauge = %v, want last-merged 2", got)
	}
	if got := dst.Trace().Meta["k"]; got != "b" {
		t.Fatalf("merged meta = %q, want %q", got, "b")
	}
	// An unset gauge merges as a registered zero, not an absence.
	e := New(Config{})
	e.Gauge("unset")
	dst2 := New(Config{})
	dst2.Merge(e)
	found := false
	for _, m := range dst2.Trace().Metrics {
		if m.Key == "unset" && m.Kind == KindGauge {
			found = true
		}
	}
	if !found {
		t.Fatal("unset gauge vanished in merge")
	}
}

func TestTraceDeterministicAcrossCalls(t *testing.T) {
	c := sampleCollector()
	var a, b strings.Builder
	if err := WriteJSONL(&a, c.Trace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, c.Trace()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two Trace() snapshots of the same collector serialise differently")
	}
}
