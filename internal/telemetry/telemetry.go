// Package telemetry is the deterministic observability layer for the
// sense→predict→balance loop: a metrics registry (counters, gauges,
// fixed-bucket histograms), epoch-scoped spans timestamped in simulated
// nanoseconds, and a bounded flight recorder that snapshots the last K
// epochs around anomalies. Exporters render the collected trace as
// JSONL (the canonical interchange format, readable back by
// ReadJSONL), Chrome trace-event JSON (loadable in chrome://tracing),
// and Prometheus-style text.
//
// # Determinism contract (DESIGN.md §10)
//
// Everything this package emits is a pure function of the simulated
// run: timestamps are simulated nanoseconds (wall clock never enters —
// the sbvet wallclock invariant covers this package), map-backed state
// is exported in sorted key order, and span order within an epoch is
// the order of emission, which simulation code keeps deterministic.
// Two runs with the same seed therefore produce byte-identical
// exports, and a parallel sweep's merged telemetry is byte-identical
// to a serial one.
//
// # Disabled cost contract
//
// A nil *Collector is the disabled state: every method on it — and on
// the nil metric handles it returns — is a safe no-op that performs no
// allocation, so instrumented hot paths pay a pointer test and nothing
// else when telemetry is off. Callers that build attribute lists must
// still guard the construction with Enabled(), since variadic argument
// slices are allocated by the caller.
//
// Collectors are not safe for concurrent use: like trace.Recorder they
// inherit the single-threadedness of the kernel feeding them. Parallel
// sweeps give every worker its own collector and merge afterwards
// (Merge), in canonical job order.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
)

// Schema identifies the telemetry interchange format; it participates
// in every JSONL export and readers reject other schemas.
const Schema = "sbtelemetry-v1"

// Phase names for the spans the SmartBalance controller emits. Any
// string is a valid span phase; these are the conventional ones.
const (
	PhaseSense   = "sense"
	PhasePredict = "predict"
	PhaseDecide  = "decide"
	PhaseMigrate = "migrate"
)

// Anomaly reasons the flight recorder triggers on. Any string is a
// valid reason; these are the conventional ones.
const (
	AnomalyNegativeEEGain = "negative-ee-gain"
	AnomalyDegradedEpoch  = "majority-degraded"
	AnomalyRefusedBurst   = "refused-migration-burst"
)

// Attr is one structured span attribute. Values are pre-rendered to
// canonical strings by the typed constructors, which keeps spans
// trivially comparable and every export format deterministic.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{K: k, V: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { //sbvet:allow hotpath(attr values pre-render to canonical strings — the determinism contract; one short string per recorded attribute)
	return Attr{K: k, V: strconv.FormatInt(v, 10)}
}

// F64 builds a float attribute with the shortest exact rendering.
func F64(k string, v float64) Attr { //sbvet:allow hotpath(attr values pre-render to canonical strings — the determinism contract; one short string per recorded attribute)
	return Attr{K: k, V: formatFloat(v)}
}

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{K: k, V: strconv.FormatBool(v)} }

// formatFloat renders a float canonically (shortest form that
// round-trips, same across platforms).
func formatFloat(v float64) string { //sbvet:allow hotpath(canonical float rendering — the determinism contract; one short string per recorded value)
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Span is one phase of one epoch. StartNs/DurNs are simulated
// nanoseconds; a zero-duration span marks an instant.
type Span struct {
	Epoch   int    `json:"epoch"`
	Seq     int    `json:"seq"`
	Phase   string `json:"phase"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// String renders the span canonically — the unit of comparison for
// trace diffing.
func (s Span) String() string {
	out := fmt.Sprintf("epoch=%d seq=%d phase=%s start=%dns dur=%dns",
		s.Epoch, s.Seq, s.Phase, s.StartNs, s.DurNs)
	for _, a := range s.Attrs {
		out += " " + a.K + "=" + a.V
	}
	return out
}

// EpochRecord groups the spans of one epoch.
type EpochRecord struct {
	Epoch   int    `json:"epoch"`
	StartNs int64  `json:"start_ns"`
	Spans   []Span `json:"spans,omitempty"`
}

// Anomaly is one flight-recorder trigger.
type Anomaly struct {
	Epoch  int    `json:"epoch"`
	AtNs   int64  `json:"at_ns"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

// String renders the anomaly canonically.
func (a Anomaly) String() string {
	out := fmt.Sprintf("epoch=%d at=%dns reason=%s", a.Epoch, a.AtNs, a.Reason)
	if a.Detail != "" {
		out += " detail=" + a.Detail
	}
	return out
}

// Dump is one flight-recorder snapshot: the last-K-epoch window as it
// stood when an anomaly fired, plus the metrics at that instant.
type Dump struct {
	Anomaly Anomaly       `json:"anomaly"`
	Window  []EpochRecord `json:"window,omitempty"`
	Metrics []Metric      `json:"metrics,omitempty"`
}

// Config tunes a Collector. The zero value selects the noted defaults.
type Config struct {
	// FlightEpochs is K, the number of most-recent epochs an anomaly
	// dump snapshots (default 8).
	FlightEpochs int
	// MaxDumps caps how many anomaly dumps are retained; further
	// anomalies are still recorded in the anomaly list, just without a
	// window snapshot (default 4).
	MaxDumps int
	// MaxEpochs bounds the retained epoch history; older epochs are
	// evicted oldest-first and counted in DroppedEpochs (default 0 =
	// unlimited, appropriate for bounded simulation runs).
	MaxEpochs int
}

// withDefaults resolves zero-valued fields.
func (c Config) withDefaults() Config {
	if c.FlightEpochs <= 0 {
		c.FlightEpochs = 8
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 4
	}
	return c
}

// Collector accumulates one run's telemetry: metadata, metrics, epoch
// spans, anomalies, and flight-recorder dumps. The nil Collector is
// the zero-cost disabled state; see the package comment.
type Collector struct {
	cfg  Config
	meta map[string]string
	reg  Registry

	epochs  []EpochRecord // closed epochs, oldest first
	dropped int           // epochs evicted under MaxEpochs
	cur     *EpochRecord
	curBuf  EpochRecord // backing storage for cur, reused across epochs
	seq     int         // next span sequence number within cur

	// attrArena is the current attribute chunk. Span copies every
	// attribute list into it so callers may reuse (and overwrite) their
	// own attr buffers across epochs; retained spans keep views into
	// full chunks, which are replaced — never reallocated — when
	// exhausted, so those views stay valid.
	attrArena []Attr

	anomalies []Anomaly
	dumps     []Dump
}

// New builds an enabled collector.
func New(cfg Config) *Collector {
	return &Collector{
		cfg:  cfg.withDefaults(),
		meta: make(map[string]string),
		reg:  newRegistry(),
	}
}

// Enabled reports whether the collector records anything; nil-safe.
func (c *Collector) Enabled() bool { return c != nil }

// SetMeta records one run-level metadata pair (platform, workload,
// seed, ...). Keys export in sorted order.
func (c *Collector) SetMeta(k, v string) {
	if c == nil {
		return
	}
	c.meta[k] = v
}

// Counter returns the named counter handle, creating it on first use.
// Returns nil on a nil collector; nil handles are no-op.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	return c.reg.Counter(name)
}

// Gauge returns the named gauge handle, creating it on first use.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	return c.reg.Gauge(name)
}

// Histogram returns the named fixed-bucket histogram handle, creating
// it with the given upper bounds on first use (later calls reuse the
// original bounds).
func (c *Collector) Histogram(name string, bounds []float64) *Histogram {
	if c == nil {
		return nil
	}
	return c.reg.Histogram(name, bounds)
}

// BeginEpoch closes the current epoch record (if any) and starts a new
// one. Calling it again with the same epoch number is a no-op, so the
// kernel adapter and the controller can both announce the same epoch
// boundary without double-rotating the flight recorder.
func (c *Collector) BeginEpoch(epoch int, nowNs int64) {
	if c == nil {
		return
	}
	if c.cur != nil && c.cur.Epoch == epoch {
		return
	}
	c.closeEpoch()
	c.curBuf = EpochRecord{Epoch: epoch, StartNs: nowNs}
	c.cur = &c.curBuf
	c.seq = 0
}

// closeEpoch pushes the in-progress epoch into history, evicting the
// oldest epoch when MaxEpochs is exceeded.
func (c *Collector) closeEpoch() {
	if c.cur == nil {
		return
	}
	c.epochs = append(c.epochs, *c.cur) //sbvet:allow hotpath(epoch history is retained by design; one record append per epoch)
	c.cur = nil
	if c.cfg.MaxEpochs > 0 && len(c.epochs) > c.cfg.MaxEpochs {
		n := len(c.epochs) - c.cfg.MaxEpochs
		c.dropped += n
		c.epochs = append(c.epochs[:0], c.epochs[n:]...) //sbvet:allow hotpath(cannot grow — eviction compacts the history into its own backing array)
	}
}

// Span appends one span to the current epoch. Spans emitted before any
// BeginEpoch land in an implicit epoch 0 record.
//
//sbvet:hotpath
func (c *Collector) Span(phase string, startNs, durNs int64, attrs ...Attr) {
	if c == nil {
		return
	}
	if c.cur == nil {
		c.curBuf = EpochRecord{Epoch: 0, StartNs: startNs}
		c.cur = &c.curBuf
		c.seq = 0
	}
	c.cur.Spans = append(c.cur.Spans, Span{ //sbvet:allow hotpath(the epoch history retains every span; a fresh spans slice per epoch is inherent to retention)
		Epoch:   c.cur.Epoch,
		Seq:     c.seq,
		Phase:   phase,
		StartNs: startNs,
		DurNs:   durNs,
		Attrs:   c.internAttrs(attrs),
	})
	c.seq++
}

// attrChunkSize is the attribute-arena chunk capacity; one chunk
// allocation amortises over this many retained attributes.
const attrChunkSize = 256

// internAttrs copies attrs into the collector's arena and returns a
// stable full-capacity view, so callers keep ownership of (and may
// overwrite) their argument buffer. Chunks are replaced when exhausted,
// never grown in place, so earlier views stay valid.
func (c *Collector) internAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	if cap(c.attrArena)-len(c.attrArena) < len(attrs) {
		n := attrChunkSize
		if len(attrs) > n {
			n = len(attrs)
		}
		c.attrArena = make([]Attr, 0, n) //sbvet:allow hotpath(arena chunk; one allocation amortises over attrChunkSize retained attributes)
	}
	start := len(c.attrArena)
	c.attrArena = append(c.attrArena, attrs...) //sbvet:allow hotpath(cannot grow — the guard above replaced the chunk when remaining capacity was short)
	return c.attrArena[start:len(c.attrArena):len(c.attrArena)]
}

// Anomaly records a flight-recorder trigger at the current epoch and,
// while fewer than MaxDumps dumps exist, snapshots the last
// FlightEpochs epochs (including the in-progress one) plus the current
// metrics into a Dump.
func (c *Collector) Anomaly(atNs int64, reason, detail string) {
	if c == nil {
		return
	}
	epoch := 0
	if c.cur != nil {
		epoch = c.cur.Epoch
	} else if n := len(c.epochs); n > 0 {
		epoch = c.epochs[n-1].Epoch
	}
	an := Anomaly{Epoch: epoch, AtNs: atNs, Reason: reason, Detail: detail}
	c.anomalies = append(c.anomalies, an) //sbvet:allow hotpath(anomalies are rare by definition; the list is retained for export)
	if len(c.dumps) >= c.cfg.MaxDumps {
		return
	}
	c.dumps = append(c.dumps, Dump{ //sbvet:allow hotpath(flight-recorder dump; runs at most MaxDumps times per run)
		Anomaly: an,
		Window:  c.window(),
		Metrics: c.reg.Snapshot(),
	})
}

// window copies the flight-recorder view: the last FlightEpochs epochs
// including the in-progress one.
func (c *Collector) window() []EpochRecord {
	all := c.epochs
	if c.cur != nil {
		all = append(append([]EpochRecord(nil), all...), *c.cur) //sbvet:allow hotpath(flight-recorder dump path; runs at most MaxDumps times per run)
	}
	if len(all) > c.cfg.FlightEpochs {
		all = all[len(all)-c.cfg.FlightEpochs:]
	}
	out := make([]EpochRecord, len(all)) //sbvet:allow hotpath(flight-recorder dump path; runs at most MaxDumps times per run)
	for i := range all {
		out[i] = all[i]
		out[i].Spans = append([]Span(nil), all[i].Spans...) //sbvet:allow hotpath(flight-recorder dump path; runs at most MaxDumps times per run)
	}
	return out
}

// Anomalies returns the recorded anomalies in order.
func (c *Collector) Anomalies() []Anomaly {
	if c == nil {
		return nil
	}
	return append([]Anomaly(nil), c.anomalies...)
}

// AnomalyReasons returns the distinct anomaly reasons recorded, sorted
// — the summary consumers that only care *whether* a class of anomaly
// fired (the adversarial hunt's flight-recorder objective, report
// rollups) key on. Nil-safe like every other read.
func (c *Collector) AnomalyReasons() []string {
	if c == nil || len(c.anomalies) == 0 {
		return nil
	}
	seen := make(map[string]bool, 4)
	for i := range c.anomalies {
		seen[c.anomalies[i].Reason] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Dumps returns the retained flight-recorder dumps in order.
func (c *Collector) Dumps() []Dump {
	if c == nil {
		return nil
	}
	return append([]Dump(nil), c.dumps...)
}

// DroppedEpochs reports how many epoch records were evicted under
// MaxEpochs.
func (c *Collector) DroppedEpochs() int {
	if c == nil {
		return 0
	}
	return c.dropped
}

// Trace snapshots everything collected so far into an export-ready
// document. The in-progress epoch is included; collection may
// continue afterwards.
func (c *Collector) Trace() *Trace {
	if c == nil {
		return &Trace{Meta: map[string]string{"schema": Schema}}
	}
	meta := make(map[string]string, len(c.meta)+1)
	for k, v := range c.meta {
		meta[k] = v
	}
	meta["schema"] = Schema
	epochs := make([]EpochRecord, 0, len(c.epochs)+1)
	for _, e := range c.epochs {
		e.Spans = append([]Span(nil), e.Spans...)
		epochs = append(epochs, e)
	}
	if c.cur != nil {
		e := *c.cur
		e.Spans = append([]Span(nil), e.Spans...)
		epochs = append(epochs, e)
	}
	return &Trace{
		Meta:      meta,
		Epochs:    epochs,
		Metrics:   c.reg.Snapshot(),
		Anomalies: append([]Anomaly(nil), c.anomalies...),
		Dumps:     append([]Dump(nil), c.dumps...),
	}
}

// Merge folds src into c: counters and histograms sum, gauges take
// src's value when src set one (last-merged wins), meta entries copy
// (src wins), and epoch records concatenate and re-sort stably by
// epoch number. Callers merging per-worker collectors must merge in
// canonical order for gauge and meta determinism; spans are
// canonicalised by the epoch sort regardless of merge order.
func (c *Collector) Merge(src *Collector) {
	if c == nil || src == nil {
		return
	}
	for _, k := range sortedKeys(src.meta) {
		c.meta[k] = src.meta[k]
	}
	c.reg.merge(&src.reg)
	src.closeEpoch()
	c.closeEpoch()
	c.epochs = append(c.epochs, src.epochs...)
	sort.SliceStable(c.epochs, func(i, j int) bool {
		return c.epochs[i].Epoch < c.epochs[j].Epoch
	})
	c.dropped += src.dropped
	c.anomalies = append(c.anomalies, src.anomalies...)
	sort.SliceStable(c.anomalies, func(i, j int) bool {
		return c.anomalies[i].Epoch < c.anomalies[j].Epoch
	})
	for _, d := range src.dumps {
		if len(c.dumps) >= c.cfg.MaxDumps {
			break
		}
		c.dumps = append(c.dumps, d)
	}
	sort.SliceStable(c.dumps, func(i, j int) bool {
		return c.dumps[i].Anomaly.Epoch < c.dumps[j].Anomaly.Epoch
	})
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Trace is the export-ready snapshot of one collector (or of several,
// merged): the document every exporter renders and ReadJSONL
// reconstructs.
type Trace struct {
	Meta      map[string]string
	Epochs    []EpochRecord
	Metrics   []Metric
	Anomalies []Anomaly
	Dumps     []Dump
}
