package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Metric kinds, as rendered in snapshots and exports.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is a monotone int64 metric. The nil handle (from a disabled
// collector) is a no-op.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter; negative deltas are ignored (counters
// are monotone).
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value float64 metric. The nil handle is a no-op.
type Gauge struct {
	name string
	v    float64
	set  bool
}

// Set records the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	g.set = true
}

// Value returns the current value (0 on a nil or never-set handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket float64 distribution: observation counts
// per upper bound (cumulative style is applied at export), plus sum
// and count. Bucket bounds are fixed at registration, keeping merges
// and exports deterministic. The nil handle is a no-op.
type Histogram struct {
	name   string
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []int64   // len(bounds)+1, last is the overflow bucket
	count  int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Bucket is one exported histogram bucket: the count of observations
// at or below the upper bound (non-cumulative; exporters cumulate
// where their format demands it). Le is the canonically rendered
// upper bound; the overflow bucket renders as "+Inf" (kept as a string
// so the document survives encoding/json, which rejects float
// infinities).
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Metric is one snapshot entry. Exactly one of the value fields is
// meaningful, selected by Kind.
type Metric struct {
	Key  string `json:"key"`
	Kind string `json:"kind"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Buckets/Count/Sum carry histograms.
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
}

// String renders the metric canonically.
func (m Metric) String() string {
	switch m.Kind {
	case KindHistogram:
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s %s count=%d sum=%s", m.Key, m.Kind, m.Count, formatFloat(m.Sum))
		for _, b := range m.Buckets {
			fmt.Fprintf(&sb, " le=%s:%d", b.Le, b.Count)
		}
		return sb.String()
	default:
		return fmt.Sprintf("%s %s %s", m.Key, m.Kind, formatFloat(m.Value))
	}
}

// Registry holds one collector's metrics. It is created by the
// collector; external packages interact through handles.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// newRegistry builds an empty registry.
func newRegistry() Registry {
	return Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
// Registration alone makes the metric appear in snapshots, so "this
// never happened" is an observable zero rather than an absence.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name} //sbvet:allow hotpath(first-use registration; the handle is cached in the registry map for every later epoch)
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name} //sbvet:allow hotpath(first-use registration; the handle is cached in the registry map for every later epoch)
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bounds on first use. Bounds are defensively copied and sorted;
// later calls reuse the original bounds regardless of the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	bs := append([]float64(nil), bounds...) //sbvet:allow hotpath(first-use registration; the handle is cached in the registry map for every later epoch)
	sort.Float64s(bs)
	h := &Histogram{name: name, bounds: bs, counts: make([]int64, len(bs)+1)} //sbvet:allow hotpath(first-use registration; the handle is cached in the registry map for every later epoch)
	r.hists[name] = h
	return h
}

// Snapshot renders every metric, sorted by key (counters, gauges, and
// histograms share one namespace in the output; a key collision across
// kinds is a caller bug and simply yields adjacent entries).
func (r *Registry) Snapshot() []Metric {
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists)) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	for _, name := range counterKeys(r.counters) {
		out = append(out, Metric{Key: name, Kind: KindCounter, Value: float64(r.counters[name].v)}) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	}
	for _, name := range gaugeKeys(r.gauges) {
		out = append(out, Metric{Key: name, Kind: KindGauge, Value: r.gauges[name].v}) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	}
	for _, name := range histKeys(r.hists) {
		h := r.hists[name]
		m := Metric{Key: name, Kind: KindHistogram, Count: h.count, Sum: h.sum}
		for i, b := range h.bounds {
			m.Buckets = append(m.Buckets, Bucket{Le: formatFloat(b), Count: h.counts[i]}) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
		}
		m.Buckets = append(m.Buckets, Bucket{Le: "+Inf", Count: h.counts[len(h.bounds)]}) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
		out = append(out, m)                                                              //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	}
	sort.Slice(out, func(i, j int) bool { //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// merge folds src's metrics into r: counters and histograms sum,
// gauges take src's value when src set one.
func (r *Registry) merge(src *Registry) {
	for _, name := range counterKeys(src.counters) {
		r.Counter(name).Add(src.counters[name].v)
	}
	for _, name := range gaugeKeys(src.gauges) {
		if sg := src.gauges[name]; sg.set {
			r.Gauge(name).Set(sg.v)
		} else {
			r.Gauge(name) // register so zero-valued gauges survive merges
		}
	}
	for _, name := range histKeys(src.hists) {
		sh := src.hists[name]
		dh := r.Histogram(name, sh.bounds)
		if len(dh.counts) != len(sh.counts) {
			// Conflicting bucket layouts cannot merge meaningfully; fold
			// the observations through Observe so count/sum stay right.
			for i, n := range sh.counts {
				v := sh.sum / float64(max64(sh.count, 1))
				if i < len(sh.bounds) {
					v = sh.bounds[i]
				}
				for ; n > 0; n-- {
					dh.Observe(v)
				}
			}
			continue
		}
		for i := range sh.counts {
			dh.counts[i] += sh.counts[i]
		}
		dh.count += sh.count
		dh.sum += sh.sum
	}
}

// counterKeys, gaugeKeys, and histKeys return sorted key sets; merges
// walk them in order so handle creation order (and with it nothing
// observable) stays deterministic.
func counterKeys(m map[string]*Counter) []string {
	keys := make([]string, 0, len(m)) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	for k := range m {                //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
		keys = append(keys, k) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	}
	sort.Strings(keys)
	return keys
}

func gaugeKeys(m map[string]*Gauge) []string {
	keys := make([]string, 0, len(m)) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	for k := range m {                //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
		keys = append(keys, k) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	}
	sort.Strings(keys)
	return keys
}

func histKeys(m map[string]*Histogram) []string {
	keys := make([]string, 0, len(m)) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	for k := range m {                //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
		keys = append(keys, k) //sbvet:allow hotpath(metric-export path; runs on anomaly dumps and end-of-run snapshots, not steady-state epochs)
	}
	sort.Strings(keys)
	return keys
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
