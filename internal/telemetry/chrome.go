package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// chromeEvent is one trace-event in the Chrome trace-event format
// (the JSON consumed by chrome://tracing and Perfetto). Timestamps are
// microseconds; ours derive from simulated nanoseconds, so the
// rendered timeline is the simulation's, not the host's.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the top-level trace-event container.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome track (tid) assignments.
const (
	chromeTidEpochs    = 0
	chromeTidPhases    = 1
	chromeTidAnomalies = 2
)

// WriteChrome renders the trace in Chrome trace-event format: epoch
// boundaries as instant events on one track, phase spans as complete
// events on another, anomalies as instant events on a third, and the
// run metadata as process metadata. Deterministic: event order follows
// the trace document and encoding/json sorts the args maps.
func WriteChrome(w io.Writer, tr *Trace) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	add := func(e chromeEvent) {
		e.Pid = 1
		doc.TraceEvents = append(doc.TraceEvents, e)
	}

	add(chromeEvent{Name: "process_name", Ph: "M", Args: map[string]string{"name": "smartbalance"}})
	add(chromeEvent{Name: "thread_name", Ph: "M", Tid: chromeTidEpochs, Args: map[string]string{"name": "epochs"}})
	add(chromeEvent{Name: "thread_name", Ph: "M", Tid: chromeTidPhases, Args: map[string]string{"name": "phases"}})
	add(chromeEvent{Name: "thread_name", Ph: "M", Tid: chromeTidAnomalies, Args: map[string]string{"name": "anomalies"}})
	if len(tr.Meta) > 0 {
		add(chromeEvent{Name: "run_meta", Ph: "i", Ts: 0, Tid: chromeTidEpochs, S: "g", Args: tr.Meta})
	}

	for _, e := range tr.Epochs {
		add(chromeEvent{
			Name: "epoch", Ph: "i", Ts: us(e.StartNs), Tid: chromeTidEpochs, S: "t",
			Args: map[string]string{"epoch": itoa(e.Epoch)},
		})
		for _, s := range e.Spans {
			args := make(map[string]string, len(s.Attrs)+1)
			args["epoch"] = itoa(s.Epoch)
			for _, a := range s.Attrs {
				args[a.K] = a.V
			}
			add(chromeEvent{
				Name: s.Phase, Ph: "X", Ts: us(s.StartNs), Dur: us(s.DurNs),
				Tid: chromeTidPhases, Args: args,
			})
		}
	}
	for _, a := range tr.Anomalies {
		add(chromeEvent{
			Name: a.Reason, Ph: "i", Ts: us(a.AtNs), Tid: chromeTidAnomalies, S: "g",
			Args: map[string]string{"epoch": itoa(a.Epoch), "detail": a.Detail},
		})
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// us converts simulated nanoseconds to trace-event microseconds.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// itoa is strconv.Itoa, local to keep call sites short.
func itoa(v int) string { return strconv.Itoa(v) }
