package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteProm renders the metrics snapshot in the Prometheus text
// exposition format: one # TYPE line per metric family (the key up to
// any label braces) followed by its samples, families in sorted order.
// Histograms expand into cumulative _bucket series plus _sum and
// _count; histogram keys must be label-free for the expansion to be
// well-formed. Counters and gauges registered but never touched render
// as explicit zeros, so "this never happened" is an assertable fact —
// the property scripts/sweep_check.sh leans on.
func WriteProm(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range tr.Metrics {
		family := promFamily(m.Key)
		if family != lastFamily {
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", family, m.Kind); err != nil {
				return err
			}
			lastFamily = family
		}
		switch m.Kind {
		case KindHistogram:
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.Key, b.Le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%s_sum %s\n", m.Key, formatFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, "%s_count %d\n", m.Key, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(bw, "%s %s\n", m.Key, formatFloat(m.Value)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// promFamily strips a rendered label set from a metric key:
// kernel_events_total{kind="slice"} -> kernel_events_total.
func promFamily(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Name renders a metric key with one canonical label, e.g.
// Name("kernel_events_total", "kind", "slice") ->
// kernel_events_total{kind="slice"}. Multi-label keys can be built by
// callers directly as long as label order is fixed at every call site.
func Name(family, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", family, label, value)
}
