package telemetry

import (
	"smartbalance/internal/kernel"
)

// KernelObserver adapts a Collector to the kernel's trace-observer
// hook: every scheduling event increments a per-kind counter, slices
// additionally feed per-core slice/instruction counters, and epoch
// boundaries rotate the collector's epoch record (1-based, matching
// the controller's own epoch count, so the idempotent BeginEpoch dedups
// the two announcements). The returned observer composes with any
// number of others through Kernel.AddObserver.
//
// Handles are resolved once up front and cached, so the per-event cost
// is array indexing, not map lookups.
func KernelObserver(c *Collector) kernel.Observer {
	if c == nil {
		return func(kernel.TraceEvent) {}
	}
	kinds := []kernel.TraceKind{
		kernel.TraceSpawn, kernel.TraceSlice, kernel.TraceSleep,
		kernel.TraceWake, kernel.TraceMigrate, kernel.TraceFinish,
		kernel.TraceEpoch, kernel.TraceCoreIdle, kernel.TraceCoreBusy,
	}
	byKind := make([]*Counter, len(kinds))
	for _, k := range kinds {
		byKind[int(k)] = c.Counter(Name("kernel_events_total", "kind", k.String()))
	}
	instr := c.Counter("kernel_instructions_total")
	sliceNs := c.Counter("kernel_slice_ns_total")
	var perCoreSlices []*Counter
	coreSlices := func(core int) *Counter {
		for core >= len(perCoreSlices) {
			perCoreSlices = append(perCoreSlices, nil)
		}
		if perCoreSlices[core] == nil {
			perCoreSlices[core] = c.Counter(Name("kernel_core_slices_total", "core", itoa(core)))
		}
		return perCoreSlices[core]
	}
	epoch := 0
	return func(e kernel.TraceEvent) {
		if int(e.Kind) < len(byKind) && byKind[int(e.Kind)] != nil {
			byKind[int(e.Kind)].Inc()
		}
		switch e.Kind {
		case kernel.TraceSlice:
			instr.Add(int64(e.Instr))
			sliceNs.Add(e.DurNs)
			if e.Core >= 0 {
				coreSlices(int(e.Core)).Inc()
			}
		case kernel.TraceEpoch:
			epoch++
			c.BeginEpoch(epoch, int64(e.At))
		}
	}
}
