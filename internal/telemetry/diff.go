package telemetry

import "fmt"

// Divergence localises the first difference between two traces — the
// bisection primitive behind `sbtrace diff`: given two runs that
// should have been identical, it names the first epoch (and span)
// where they part ways.
type Divergence struct {
	// Kind classifies where the difference lives: "epoch" (the usual
	// case — a span or epoch record differs), "metrics", "anomalies",
	// or "meta" (only when everything timed is identical).
	Kind string
	// Epoch is the first divergent epoch (meaningful for kind "epoch"
	// and "anomalies").
	Epoch int
	// Detail is a human-readable a-vs-b description.
	Detail string
}

// String renders the divergence.
func (d *Divergence) String() string {
	switch d.Kind {
	case "epoch", "anomalies":
		return fmt.Sprintf("first divergent epoch %d (%s): %s", d.Epoch, d.Kind, d.Detail)
	default:
		return fmt.Sprintf("%s diverge: %s", d.Kind, d.Detail)
	}
}

// FirstDivergence compares two traces and returns the first point
// where they differ, or nil when they are identical. Epochs are
// compared first (in order — the earliest divergent epoch wins), then
// metrics, then anomalies, then metadata; so two runs that differ only
// in labelling (e.g. an operator note in the meta) still compare their
// timelines, and a genuine behavioural fork is always reported at the
// epoch where it first shows.
func FirstDivergence(a, b *Trace) *Divergence {
	if d := diffEpochs(a.Epochs, b.Epochs); d != nil {
		return d
	}
	if d := diffMetrics(a.Metrics, b.Metrics); d != nil {
		return d
	}
	if d := diffAnomalies(a.Anomalies, b.Anomalies); d != nil {
		return d
	}
	if d := diffMeta(a.Meta, b.Meta); d != nil {
		return d
	}
	return nil
}

// diffEpochs finds the first differing epoch record.
func diffEpochs(as, bs []EpochRecord) *Divergence {
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		ea, eb := as[i], bs[i]
		if ea.Epoch != eb.Epoch || ea.StartNs != eb.StartNs {
			return &Divergence{Kind: "epoch", Epoch: minEpoch(ea.Epoch, eb.Epoch),
				Detail: fmt.Sprintf("epoch record %d vs %d (start %dns vs %dns)", ea.Epoch, eb.Epoch, ea.StartNs, eb.StartNs)}
		}
		m := len(ea.Spans)
		if len(eb.Spans) < m {
			m = len(eb.Spans)
		}
		for j := 0; j < m; j++ {
			sa, sb := ea.Spans[j].String(), eb.Spans[j].String()
			if sa != sb {
				return &Divergence{Kind: "epoch", Epoch: ea.Epoch,
					Detail: fmt.Sprintf("span %d:\n  a: %s\n  b: %s", j, sa, sb)}
			}
		}
		if len(ea.Spans) != len(eb.Spans) {
			return &Divergence{Kind: "epoch", Epoch: ea.Epoch,
				Detail: fmt.Sprintf("span count %d vs %d", len(ea.Spans), len(eb.Spans))}
		}
	}
	if len(as) != len(bs) {
		extra := as
		if len(bs) > len(as) {
			extra = bs
		}
		return &Divergence{Kind: "epoch", Epoch: extra[n].Epoch,
			Detail: fmt.Sprintf("epoch count %d vs %d", len(as), len(bs))}
	}
	return nil
}

// diffMetrics finds the first differing metric in the sorted
// snapshots.
func diffMetrics(as, bs []Metric) *Divergence {
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		sa, sb := as[i].String(), bs[i].String()
		if sa != sb {
			return &Divergence{Kind: "metrics",
				Detail: fmt.Sprintf("\n  a: %s\n  b: %s", sa, sb)}
		}
	}
	if len(as) != len(bs) {
		return &Divergence{Kind: "metrics",
			Detail: fmt.Sprintf("metric count %d vs %d", len(as), len(bs))}
	}
	return nil
}

// diffAnomalies finds the first differing anomaly.
func diffAnomalies(as, bs []Anomaly) *Divergence {
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		sa, sb := as[i].String(), bs[i].String()
		if sa != sb {
			return &Divergence{Kind: "anomalies", Epoch: minEpoch(as[i].Epoch, bs[i].Epoch),
				Detail: fmt.Sprintf("\n  a: %s\n  b: %s", sa, sb)}
		}
	}
	if len(as) != len(bs) {
		extra := as
		if len(bs) > len(as) {
			extra = bs
		}
		return &Divergence{Kind: "anomalies", Epoch: extra[n].Epoch,
			Detail: fmt.Sprintf("anomaly count %d vs %d", len(as), len(bs))}
	}
	return nil
}

// diffMeta finds the first differing metadata key in sorted order.
func diffMeta(a, b map[string]string) *Divergence {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for _, k := range sortedKeySet(keys) {
		va, oka := a[k]
		vb, okb := b[k]
		if oka != okb || va != vb {
			return &Divergence{Kind: "meta",
				Detail: fmt.Sprintf("key %q: %q vs %q", k, va, vb)}
		}
	}
	return nil
}

// sortedKeySet returns the set's members sorted.
func sortedKeySet(set map[string]bool) []string {
	m := make(map[string]string, len(set))
	for k := range set {
		m[k] = ""
	}
	return sortedKeys(m)
}

func minEpoch(a, b int) int {
	if a < b {
		return a
	}
	return b
}
