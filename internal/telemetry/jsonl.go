package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL is the canonical interchange format: one JSON document per
// line, in a fixed order — the meta line, then epoch and span lines in
// epoch order, then metric lines sorted by key, then anomaly and dump
// lines. Field order within a line is fixed by the Go struct
// declarations and map keys are sorted by encoding/json, so two equal
// traces always serialise to byte-identical files.

// line is the union of every JSONL line shape. T selects the variant.
type line struct {
	T string `json:"t"`

	// t == "meta"
	Schema string            `json:"schema,omitempty"`
	KV     map[string]string `json:"kv,omitempty"`

	// t == "epoch" | "span" | "anomaly" | "dump"
	Epoch   int    `json:"epoch,omitempty"`
	StartNs int64  `json:"start_ns,omitempty"`
	Seq     int    `json:"seq,omitempty"`
	Phase   string `json:"phase,omitempty"`
	DurNs   int64  `json:"dur_ns,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`

	// t == "metric"
	Key     string   `json:"key,omitempty"`
	Kind    string   `json:"kind,omitempty"`
	Value   *float64 `json:"value,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`

	// t == "anomaly" | "dump"
	AtNs    int64         `json:"at_ns,omitempty"`
	Reason  string        `json:"reason,omitempty"`
	Detail  string        `json:"detail,omitempty"`
	Window  []EpochRecord `json:"window,omitempty"`
	Metrics []Metric      `json:"metrics,omitempty"`
}

// WriteJSONL renders the trace in the canonical interchange format.
func WriteJSONL(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	if err := enc.Encode(line{T: "meta", Schema: Schema, KV: tr.Meta}); err != nil {
		return err
	}
	for _, e := range tr.Epochs {
		if err := enc.Encode(line{T: "epoch", Epoch: e.Epoch, StartNs: e.StartNs}); err != nil {
			return err
		}
		for _, s := range e.Spans {
			err := enc.Encode(line{
				T: "span", Epoch: s.Epoch, Seq: s.Seq, Phase: s.Phase,
				StartNs: s.StartNs, DurNs: s.DurNs, Attrs: s.Attrs,
			})
			if err != nil {
				return err
			}
		}
	}
	for _, m := range tr.Metrics {
		l := line{T: "metric", Key: m.Key, Kind: m.Kind}
		if m.Kind == KindHistogram {
			l.Buckets, l.Count, l.Sum = m.Buckets, m.Count, m.Sum
		} else {
			v := m.Value
			l.Value = &v
		}
		if err := enc.Encode(l); err != nil {
			return err
		}
	}
	for _, a := range tr.Anomalies {
		err := enc.Encode(line{
			T: "anomaly", Epoch: a.Epoch, AtNs: a.AtNs,
			Reason: a.Reason, Detail: a.Detail,
		})
		if err != nil {
			return err
		}
	}
	for _, d := range tr.Dumps {
		err := enc.Encode(line{
			T: "dump", Epoch: d.Anomaly.Epoch, AtNs: d.Anomaly.AtNs,
			Reason: d.Anomaly.Reason, Detail: d.Anomaly.Detail,
			Window: d.Window, Metrics: d.Metrics,
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a canonical JSONL export back into a Trace. It
// rejects other schemas and malformed lines with positional errors.
func ReadJSONL(r io.Reader) (*Trace, error) {
	tr := &Trace{Meta: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var curEpoch *EpochRecord
	n := 0
	sawMeta := false
	flushEpoch := func() {
		if curEpoch != nil {
			tr.Epochs = append(tr.Epochs, *curEpoch)
			curEpoch = nil
		}
	}
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", n, err)
		}
		switch l.T {
		case "meta":
			if l.Schema != Schema {
				return nil, fmt.Errorf("telemetry: line %d: unsupported schema %q (want %q)", n, l.Schema, Schema)
			}
			for k, v := range l.KV {
				tr.Meta[k] = v
			}
			sawMeta = true
		case "epoch":
			flushEpoch()
			curEpoch = &EpochRecord{Epoch: l.Epoch, StartNs: l.StartNs}
		case "span":
			s := Span{Epoch: l.Epoch, Seq: l.Seq, Phase: l.Phase, StartNs: l.StartNs, DurNs: l.DurNs, Attrs: l.Attrs}
			if curEpoch == nil || curEpoch.Epoch != l.Epoch {
				flushEpoch()
				curEpoch = &EpochRecord{Epoch: l.Epoch, StartNs: l.StartNs}
			}
			curEpoch.Spans = append(curEpoch.Spans, s)
		case "metric":
			m := Metric{Key: l.Key, Kind: l.Kind, Buckets: l.Buckets, Count: l.Count, Sum: l.Sum}
			if l.Value != nil {
				m.Value = *l.Value
			}
			tr.Metrics = append(tr.Metrics, m)
		case "anomaly":
			tr.Anomalies = append(tr.Anomalies, Anomaly{Epoch: l.Epoch, AtNs: l.AtNs, Reason: l.Reason, Detail: l.Detail})
		case "dump":
			tr.Dumps = append(tr.Dumps, Dump{
				Anomaly: Anomaly{Epoch: l.Epoch, AtNs: l.AtNs, Reason: l.Reason, Detail: l.Detail},
				Window:  l.Window,
				Metrics: l.Metrics,
			})
		default:
			return nil, fmt.Errorf("telemetry: line %d: unknown line type %q", n, l.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flushEpoch()
	if !sawMeta {
		return nil, fmt.Errorf("telemetry: no meta line; not a %s export", Schema)
	}
	return tr, nil
}
