package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenExporters drives the golden-file check for every exporter: the
// sample trace must render byte-identically to the committed fixture.
var goldenExporters = []struct {
	name   string
	golden string
	write  func(*bytes.Buffer, *Trace) error
}{
	{"jsonl", "sample.jsonl.golden", func(b *bytes.Buffer, tr *Trace) error { return WriteJSONL(b, tr) }},
	{"chrome", "sample.chrome.golden", func(b *bytes.Buffer, tr *Trace) error { return WriteChrome(b, tr) }},
	{"prom", "sample.prom.golden", func(b *bytes.Buffer, tr *Trace) error { return WriteProm(b, tr) }},
}

func TestExportersGolden(t *testing.T) {
	tr := sampleCollector().Trace()
	for _, tc := range goldenExporters {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(&buf, tr); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s export drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
					tc.name, path, buf.String(), want)
			}
		})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	orig := sampleCollector().Trace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d := FirstDivergence(orig, back); d != nil {
		t.Fatalf("round trip diverged: %s", d)
	}
	// Dumps don't participate in FirstDivergence; check them directly.
	if len(back.Dumps) != len(orig.Dumps) {
		t.Fatalf("round trip dumps = %d, want %d", len(back.Dumps), len(orig.Dumps))
	}
	var again bytes.Buffer
	if err := WriteJSONL(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("write -> read -> write is not byte-stable")
	}
}

func TestReadJSONLRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "no meta line"},
		{"wrong schema", `{"t":"meta","schema":"other-v9"}` + "\n", "unsupported schema"},
		{"garbage", "not json\n", "line 1"},
		{"unknown type", `{"t":"meta","schema":"sbtelemetry-v1"}` + "\n" + `{"t":"mystery"}` + "\n", "unknown line type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleCollector().Trace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// 4 metadata + 1 run_meta + 3 epochs * 3 events + 1 anomaly.
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	phases := 0
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" {
			phases++
		}
	}
	if phases != 6 {
		t.Fatalf("chrome export has %d complete events, want 6 spans", phases)
	}
}

func TestPromExportShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, sampleCollector().Trace()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE migrations_total counter",
		"migrations_total 3",
		"# TYPE last_ee gauge",
		"last_ee 1.25",
		"# TYPE sense_latency_us histogram",
		`sense_latency_us_bucket{le="10"} 1`,
		`sense_latency_us_bucket{le="100"} 2`,
		`sense_latency_us_bucket{le="+Inf"} 3`,
		"sense_latency_us_sum 555",
		"sense_latency_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom export missing %q:\n%s", want, out)
		}
	}
}

func TestPromFamilyGroupsLabelledSeries(t *testing.T) {
	c := New(Config{})
	c.Counter(Name("events_total", "kind", "slice")).Add(2)
	c.Counter(Name("events_total", "kind", "wake")).Add(1)
	var buf bytes.Buffer
	if err := WriteProm(&buf, c.Trace()); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "# TYPE events_total counter"); got != 1 {
		t.Fatalf("TYPE line emitted %d times for one family:\n%s", got, buf.String())
	}
}
