// Package arch describes the heterogeneous computing elements of
// Section 3 of the paper: core types defined by micro-architectural
// feature combinations (Table 2), cores instantiating those types, and
// platform topologies (generic HMPs, the octa-core big.LITTLE used for
// the GTS comparison, and the scaling configurations of Fig. 7).
package arch

import (
	"errors"
	"fmt"
)

// CoreTypeID identifies a core type within a platform. The paper's set
// R = {r1, ..., rq}.
type CoreTypeID int

// CoreID identifies a physical core within a platform. The paper's set
// C = {c1, ..., cn}.
type CoreID int

// CoreType is one architecturally differentiated core configuration —
// one column of the paper's Table 2. The X = {x1..x7} feature set plus
// nominal frequency/voltage and the Gem5/McPAT-derived anchors (peak
// IPC, peak power, area) used to calibrate the analytical models.
type CoreType struct {
	Name string

	// Micro-architectural parameters (x1..x7 of Table 2).
	IssueWidth int // x1: superscalar issue width
	LQSize     int // x2 (load half): load-queue entries
	SQSize     int // x2 (store half): store-queue entries
	IQSize     int // x3: instruction-queue entries
	ROBSize    int // x4: reorder-buffer entries
	IntRegs    int // x5 (int half): physical integer registers
	FloatRegs  int // x5 (float half): physical float registers
	L1IKB      int // x6: L1 instruction cache size in KB
	L1DKB      int // x7: L1 data cache size in KB
	// L2KB is the private unified L2 size in KB (Section 5: "All L1 and
	// L2 caches are private"). Table 2 does not list L2 sizes; the
	// constructors derive them as 16x the L1D capacity. Zero is invalid.
	L2KB int

	// Nominal operating point.
	FreqMHz  float64 // F: clock frequency
	VoltageV float64 // Vdd: supply voltage

	// Gem5/McPAT calibration anchors (the starred rows of Table 2).
	PeakIPC    float64 // peak sustained throughput in instructions/cycle
	PeakPowerW float64 // total power at peak throughput
	AreaMM2    float64 // die area
}

// FreqHz returns the clock frequency in Hz.
func (ct *CoreType) FreqHz() float64 { return ct.FreqMHz * 1e6 }

// Validate checks the structural sanity of a core type definition.
func (ct *CoreType) Validate() error {
	switch {
	case ct.Name == "":
		return errors.New("arch: core type without a name")
	case ct.IssueWidth < 1 || ct.IssueWidth > 16:
		return fmt.Errorf("arch: core type %q: issue width %d out of [1,16]", ct.Name, ct.IssueWidth)
	case ct.LQSize < 1 || ct.SQSize < 1:
		return fmt.Errorf("arch: core type %q: LQ/SQ must be positive", ct.Name)
	case ct.IQSize < 1 || ct.ROBSize < 1:
		return fmt.Errorf("arch: core type %q: IQ/ROB must be positive", ct.Name)
	case ct.IntRegs < 16 || ct.FloatRegs < 16:
		return fmt.Errorf("arch: core type %q: too few physical registers", ct.Name)
	case ct.L1IKB < 1 || ct.L1DKB < 1:
		return fmt.Errorf("arch: core type %q: L1 sizes must be positive", ct.Name)
	case ct.L2KB < ct.L1DKB:
		return fmt.Errorf("arch: core type %q: L2 (%dKB) smaller than L1D (%dKB)", ct.Name, ct.L2KB, ct.L1DKB)
	case ct.FreqMHz <= 0:
		return fmt.Errorf("arch: core type %q: non-positive frequency", ct.Name)
	case ct.VoltageV <= 0:
		return fmt.Errorf("arch: core type %q: non-positive voltage", ct.Name)
	case ct.PeakIPC <= 0 || ct.PeakIPC > float64(ct.IssueWidth):
		return fmt.Errorf("arch: core type %q: peak IPC %.2f outside (0, issue width]", ct.Name, ct.PeakIPC)
	case ct.PeakPowerW <= 0:
		return fmt.Errorf("arch: core type %q: non-positive peak power", ct.Name)
	case ct.AreaMM2 <= 0:
		return fmt.Errorf("arch: core type %q: non-positive area", ct.Name)
	}
	return nil
}

// Core is one physical core: an instance of a core type.
type Core struct {
	ID   CoreID
	Type CoreTypeID
}

// Platform is a heterogeneous MPSoC: the core-type set R, the core set
// C, and the typing function gamma: C -> R (held as Core.Type).
type Platform struct {
	Name  string
	Types []CoreType
	Cores []Core
}

// NumCores returns n = |C|.
func (p *Platform) NumCores() int { return len(p.Cores) }

// NumTypes returns q = |R|.
func (p *Platform) NumTypes() int { return len(p.Types) }

// Type returns the core type of core c (the paper's gamma(c)). It
// panics on an invalid id, which is always a programming error.
func (p *Platform) Type(c CoreID) *CoreType {
	return &p.Types[p.Cores[c].Type]
}

// TypeID returns the core-type id of core c.
func (p *Platform) TypeID(c CoreID) CoreTypeID {
	return p.Cores[c].Type
}

// CoresOfType returns the ids of all cores whose type is tid.
func (p *Platform) CoresOfType(tid CoreTypeID) []CoreID {
	var out []CoreID
	for _, c := range p.Cores {
		if c.Type == tid {
			out = append(out, c.ID)
		}
	}
	return out
}

// TypeCounts returns, per core type, the number of cores of that type.
func (p *Platform) TypeCounts() []int {
	counts := make([]int, len(p.Types))
	for _, c := range p.Cores {
		counts[c.Type]++
	}
	return counts
}

// Validate checks structural consistency: non-empty sets, dense core
// ids, and every core referencing a valid type.
func (p *Platform) Validate() error {
	if len(p.Types) == 0 {
		return errors.New("arch: platform with no core types")
	}
	if len(p.Cores) == 0 {
		return errors.New("arch: platform with no cores")
	}
	seen := map[string]bool{}
	for i := range p.Types {
		if err := p.Types[i].Validate(); err != nil {
			return err
		}
		if seen[p.Types[i].Name] {
			return fmt.Errorf("arch: duplicate core type name %q", p.Types[i].Name)
		}
		seen[p.Types[i].Name] = true
	}
	for i, c := range p.Cores {
		if int(c.ID) != i {
			return fmt.Errorf("arch: core at index %d has id %d (ids must be dense)", i, c.ID)
		}
		if c.Type < 0 || int(c.Type) >= len(p.Types) {
			return fmt.Errorf("arch: core %d references unknown type %d", c.ID, c.Type)
		}
	}
	return nil
}

// TotalAreaMM2 returns the summed core area of the platform.
func (p *Platform) TotalAreaMM2() float64 {
	a := 0.0
	for _, c := range p.Cores {
		a += p.Types[c.Type].AreaMM2
	}
	return a
}

// String returns a short human-readable description, e.g.
// "quad-hmp: 1xHuge 1xBig 1xMedium 1xSmall".
func (p *Platform) String() string {
	s := p.Name + ":"
	for tid, n := range p.TypeCounts() {
		if n > 0 {
			s += fmt.Sprintf(" %dx%s", n, p.Types[tid].Name)
		}
	}
	return s
}
