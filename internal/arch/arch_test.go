package arch

import (
	"strings"
	"testing"
)

func TestTable2ValuesMatchPaper(t *testing.T) {
	// Spot-check the exact Table 2 numbers the models calibrate against.
	h := HugeCore()
	if h.IssueWidth != 8 || h.ROBSize != 192 || h.L1IKB != 64 || h.FreqMHz != 2000 ||
		h.VoltageV != 1.0 || h.PeakIPC != 4.18 || h.PeakPowerW != 8.62 || h.AreaMM2 != 11.99 {
		t.Fatalf("Huge core diverges from Table 2: %+v", h)
	}
	b := BigCore()
	if b.IssueWidth != 4 || b.ROBSize != 128 || b.FreqMHz != 1500 || b.PeakIPC != 2.60 || b.PeakPowerW != 1.41 {
		t.Fatalf("Big core diverges from Table 2: %+v", b)
	}
	m := MediumCore()
	if m.IssueWidth != 2 || m.IQSize != 16 || m.FreqMHz != 1000 || m.PeakIPC != 1.31 || m.PeakPowerW != 0.53 {
		t.Fatalf("Medium core diverges from Table 2: %+v", m)
	}
	s := SmallCore()
	if s.IssueWidth != 1 || s.FreqMHz != 500 || s.PeakIPC != 0.91 || s.PeakPowerW != 0.095 || s.AreaMM2 != 2.27 {
		t.Fatalf("Small core diverges from Table 2: %+v", s)
	}
}

func TestTable2TypesAllValid(t *testing.T) {
	for _, ct := range Table2Types() {
		if err := ct.Validate(); err != nil {
			t.Errorf("%s: %v", ct.Name, err)
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	types := Table2Types()
	names := []string{"Huge", "Big", "Medium", "Small"}
	for i, ct := range types {
		if ct.Name != names[i] {
			t.Fatalf("type %d = %q, want %q", i, ct.Name, names[i])
		}
	}
	// Monotone decreasing capability and power down the list.
	for i := 1; i < len(types); i++ {
		if types[i].PeakIPC >= types[i-1].PeakIPC {
			t.Errorf("PeakIPC not decreasing at %s", types[i].Name)
		}
		if types[i].PeakPowerW >= types[i-1].PeakPowerW {
			t.Errorf("PeakPowerW not decreasing at %s", types[i].Name)
		}
	}
}

func TestCoreTypeValidateRejectsBadConfigs(t *testing.T) {
	mk := func(mod func(*CoreType)) error {
		ct := BigCore()
		mod(&ct)
		return ct.Validate()
	}
	cases := []struct {
		name string
		mod  func(*CoreType)
	}{
		{"empty name", func(c *CoreType) { c.Name = "" }},
		{"zero issue", func(c *CoreType) { c.IssueWidth = 0 }},
		{"huge issue", func(c *CoreType) { c.IssueWidth = 32 }},
		{"zero LQ", func(c *CoreType) { c.LQSize = 0 }},
		{"zero ROB", func(c *CoreType) { c.ROBSize = 0 }},
		{"few regs", func(c *CoreType) { c.IntRegs = 4 }},
		{"zero L1I", func(c *CoreType) { c.L1IKB = 0 }},
		{"zero freq", func(c *CoreType) { c.FreqMHz = 0 }},
		{"zero volt", func(c *CoreType) { c.VoltageV = 0 }},
		{"ipc above width", func(c *CoreType) { c.PeakIPC = 9 }},
		{"zero power", func(c *CoreType) { c.PeakPowerW = 0 }},
		{"zero area", func(c *CoreType) { c.AreaMM2 = 0 }},
	}
	for _, c := range cases {
		if err := mk(c.mod); err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
	if err := mk(func(*CoreType) {}); err != nil {
		t.Errorf("unmodified Big core rejected: %v", err)
	}
}

func TestFreqHz(t *testing.T) {
	h := HugeCore()
	if h.FreqHz() != 2e9 {
		t.Fatalf("FreqHz = %g", h.FreqHz())
	}
}

func TestQuadHMP(t *testing.T) {
	p := QuadHMP()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 4 || p.NumTypes() != 4 {
		t.Fatalf("quad HMP has %d cores, %d types", p.NumCores(), p.NumTypes())
	}
	// Every core a distinct type.
	for i := 0; i < 4; i++ {
		if p.TypeID(CoreID(i)) != CoreTypeID(i) {
			t.Fatalf("core %d has type %d", i, p.TypeID(CoreID(i)))
		}
	}
	if p.Type(0).Name != "Huge" || p.Type(3).Name != "Small" {
		t.Fatal("type mapping wrong")
	}
}

func TestOctaBigLittle(t *testing.T) {
	p := OctaBigLittle()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 8 || p.NumTypes() != 2 {
		t.Fatalf("octa big.LITTLE: %d cores, %d types", p.NumCores(), p.NumTypes())
	}
	bigs := p.CoresOfType(0)
	littles := p.CoresOfType(1)
	if len(bigs) != 4 || len(littles) != 4 {
		t.Fatalf("cluster sizes %d/%d", len(bigs), len(littles))
	}
	if p.Type(0).PeakIPC <= p.Type(7).PeakIPC {
		t.Fatal("big core should out-IPC little core")
	}
	if p.Type(0).PeakPowerW <= p.Type(7).PeakPowerW {
		t.Fatal("big core should out-consume little core")
	}
}

func TestScalingHMP(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 128} {
		p, err := ScalingHMP(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.NumCores() != n {
			t.Fatalf("n=%d: got %d cores", n, p.NumCores())
		}
	}
	if _, err := ScalingHMP(0); err == nil {
		t.Fatal("ScalingHMP(0) accepted")
	}
}

func TestScalingHMPTilesTypes(t *testing.T) {
	p, err := ScalingHMP(8)
	if err != nil {
		t.Fatal(err)
	}
	counts := p.TypeCounts()
	for tid, n := range counts {
		if n != 2 {
			t.Fatalf("type %d count = %d, want 2", tid, n)
		}
	}
}

func TestHomogeneousPlatform(t *testing.T) {
	p, err := HomogeneousPlatform(MediumCore(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumTypes() != 1 || p.NumCores() != 6 {
		t.Fatalf("%d types, %d cores", p.NumTypes(), p.NumCores())
	}
	if _, err := HomogeneousPlatform(MediumCore(), 0); err == nil {
		t.Fatal("zero-core platform accepted")
	}
}

func TestCustomPlatform(t *testing.T) {
	p, err := CustomPlatform("test",
		TypeCount{Type: BigCore(), Count: 2},
		TypeCount{Type: SmallCore(), Count: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 5 || p.NumTypes() != 2 {
		t.Fatalf("%d cores, %d types", p.NumCores(), p.NumTypes())
	}
	if len(p.CoresOfType(1)) != 3 {
		t.Fatal("small cluster wrong size")
	}
	if _, err := CustomPlatform("bad"); err == nil {
		t.Fatal("empty CustomPlatform accepted")
	}
	if _, err := CustomPlatform("bad", TypeCount{Type: BigCore(), Count: 0}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestPlatformValidateCatchesCorruption(t *testing.T) {
	p := QuadHMP()
	p.Cores[2].Type = 99
	if err := p.Validate(); err == nil {
		t.Fatal("dangling type reference accepted")
	}
	p = QuadHMP()
	p.Cores[1].ID = 5
	if err := p.Validate(); err == nil {
		t.Fatal("non-dense core ids accepted")
	}
	p = QuadHMP()
	p.Types[1].Name = p.Types[0].Name
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate type names accepted")
	}
	if err := (&Platform{}).Validate(); err == nil {
		t.Fatal("empty platform accepted")
	}
	if err := (&Platform{Types: Table2Types()}).Validate(); err == nil {
		t.Fatal("coreless platform accepted")
	}
}

func TestTotalArea(t *testing.T) {
	p := QuadHMP()
	want := 11.99 + 5.08 + 3.04 + 2.27
	if got := p.TotalAreaMM2(); got != want {
		t.Fatalf("TotalAreaMM2 = %g, want %g", got, want)
	}
}

func TestPlatformString(t *testing.T) {
	s := QuadHMP().String()
	for _, frag := range []string{"quad-hmp", "1xHuge", "1xSmall"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestL2Validation(t *testing.T) {
	ct := BigCore()
	ct.L2KB = ct.L1DKB - 1
	if err := ct.Validate(); err == nil {
		t.Fatal("L2 smaller than L1D accepted")
	}
	// Table 2 constructors derive 16x L1D.
	for _, c := range Table2Types() {
		if c.L2KB != 16*c.L1DKB {
			t.Fatalf("%s L2 = %dKB, want %d", c.Name, c.L2KB, 16*c.L1DKB)
		}
	}
}
