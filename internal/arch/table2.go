package arch

import "fmt"

// The four core types of the paper's Table 2, estimated there with Gem5
// and McPAT for a 22 nm node from an Alpha 21264 baseline. These exact
// values anchor the analytical performance and power models.

// HugeCore returns the "Huge" column of Table 2.
func HugeCore() CoreType {
	return CoreType{
		Name:       "Huge",
		IssueWidth: 8,
		LQSize:     32, SQSize: 32,
		IQSize:  64,
		ROBSize: 192,
		IntRegs: 256, FloatRegs: 256,
		L1IKB: 64, L1DKB: 64, L2KB: 1024,
		FreqMHz:  2000,
		VoltageV: 1.0,
		PeakIPC:  4.18, PeakPowerW: 8.62, AreaMM2: 11.99,
	}
}

// BigCore returns the "Big" column of Table 2.
func BigCore() CoreType {
	return CoreType{
		Name:       "Big",
		IssueWidth: 4,
		LQSize:     16, SQSize: 16,
		IQSize:  32,
		ROBSize: 128,
		IntRegs: 128, FloatRegs: 128,
		L1IKB: 32, L1DKB: 32, L2KB: 512,
		FreqMHz:  1500,
		VoltageV: 0.8,
		PeakIPC:  2.60, PeakPowerW: 1.41, AreaMM2: 5.08,
	}
}

// MediumCore returns the "Medium" column of Table 2.
func MediumCore() CoreType {
	return CoreType{
		Name:       "Medium",
		IssueWidth: 2,
		LQSize:     8, SQSize: 8,
		IQSize:  16,
		ROBSize: 64,
		IntRegs: 64, FloatRegs: 64,
		L1IKB: 16, L1DKB: 16, L2KB: 256,
		FreqMHz:  1000,
		VoltageV: 0.7,
		PeakIPC:  1.31, PeakPowerW: 0.53, AreaMM2: 3.04,
	}
}

// SmallCore returns the "Small" column of Table 2.
func SmallCore() CoreType {
	return CoreType{
		Name:       "Small",
		IssueWidth: 1,
		LQSize:     8, SQSize: 8,
		IQSize:  16,
		ROBSize: 64,
		IntRegs: 64, FloatRegs: 64,
		L1IKB: 16, L1DKB: 16, L2KB: 256,
		FreqMHz:  500,
		VoltageV: 0.6,
		PeakIPC:  0.91, PeakPowerW: 0.095, AreaMM2: 2.27,
	}
}

// Table2Types returns the four core types in Table 2 order
// (Huge, Big, Medium, Small).
func Table2Types() []CoreType {
	return []CoreType{HugeCore(), BigCore(), MediumCore(), SmallCore()}
}

// QuadHMP returns the paper's primary evaluation platform: a 4-core
// aggressively heterogeneous MPSoC with one core of each Table 2 type.
func QuadHMP() *Platform {
	p := &Platform{Name: "quad-hmp", Types: Table2Types()}
	for i := 0; i < 4; i++ {
		p.Cores = append(p.Cores, Core{ID: CoreID(i), Type: CoreTypeID(i)})
	}
	return p
}

// BigLittleTypes returns the two core types of the octa-core
// big.LITTLE platform used in the GTS comparison (Section 6.1):
// A15-class "big" and A7-class "little" cores. Parameters follow the
// Big and Small columns of Table 2 with frequencies representative of
// the Exynos big.LITTLE parts (1.6 GHz / 1.2 GHz).
func BigLittleTypes() []CoreType {
	big := BigCore()
	big.Name = "big"
	big.FreqMHz = 1600
	big.PeakPowerW = 1.55 // scaled with frequency from the Big anchor
	little := SmallCore()
	little.Name = "little"
	little.FreqMHz = 1200
	little.IssueWidth = 2 // A7 is partial dual-issue
	little.PeakIPC = 1.05
	little.PeakPowerW = 0.28
	return []CoreType{big, little}
}

// OctaBigLittle returns the octa-core big.LITTLE HMP of Section 6.1:
// four big cores followed by four little cores.
func OctaBigLittle() *Platform {
	p := &Platform{Name: "octa-biglittle", Types: BigLittleTypes()}
	for i := 0; i < 8; i++ {
		t := CoreTypeID(0)
		if i >= 4 {
			t = CoreTypeID(1)
		}
		p.Cores = append(p.Cores, Core{ID: CoreID(i), Type: t})
	}
	return p
}

// HexaDualCluster returns a six-core big.LITTLE part whose little
// cores sit in two separate clusters — cores 0-1 little (cluster 0),
// 2-3 big, 4-5 little (cluster 1) — the DynamIQ-style arrangement
// where one core type spans multiple LLC domains. It is the A14
// contention-ablation platform: a type-indexed predictor cannot tell
// the two little clusters apart (same type, same predicted IPS), so
// only a contention-aware objective can choose which threads share a
// little LLC. Both little groups carry the same CoreTypeID; the domain
// split comes purely from non-contiguity (arch.LLCDomains).
func HexaDualCluster() *Platform {
	p := &Platform{Name: "hexa-dualcluster", Types: BigLittleTypes()}
	layout := []CoreTypeID{1, 1, 0, 0, 1, 1}
	for i, t := range layout {
		p.Cores = append(p.Cores, Core{ID: CoreID(i), Type: t})
	}
	return p
}

// ScalingHMP builds an n-core heterogeneous platform for the Fig. 7
// scalability analysis by tiling the Table 2 quad (Huge, Big, Medium,
// Small, Huge, ...). n must be at least 1.
func ScalingHMP(n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("arch: ScalingHMP needs n >= 1, got %d", n)
	}
	p := &Platform{Name: fmt.Sprintf("scaling-hmp-%d", n), Types: Table2Types()}
	for i := 0; i < n; i++ {
		p.Cores = append(p.Cores, Core{ID: CoreID(i), Type: CoreTypeID(i % 4)})
	}
	return p, nil
}

// HomogeneousPlatform builds an n-core platform of a single core type;
// useful as a control in tests and ablations.
func HomogeneousPlatform(ct CoreType, n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("arch: HomogeneousPlatform needs n >= 1, got %d", n)
	}
	p := &Platform{Name: fmt.Sprintf("homogeneous-%s-%d", ct.Name, n), Types: []CoreType{ct}}
	for i := 0; i < n; i++ {
		p.Cores = append(p.Cores, Core{ID: CoreID(i), Type: 0})
	}
	return p, nil
}

// CustomPlatform assembles a platform from (type, count) pairs in order.
type TypeCount struct {
	Type  CoreType
	Count int
}

// CustomPlatform builds a platform with the given name from typed core
// groups. Counts must be positive.
func CustomPlatform(name string, groups ...TypeCount) (*Platform, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("arch: CustomPlatform %q with no groups", name)
	}
	p := &Platform{Name: name}
	id := 0
	for gi, g := range groups {
		if g.Count < 1 {
			return nil, fmt.Errorf("arch: CustomPlatform %q group %d: non-positive count", name, gi)
		}
		p.Types = append(p.Types, g.Type)
		for i := 0; i < g.Count; i++ {
			p.Cores = append(p.Cores, Core{ID: CoreID(id), Type: CoreTypeID(gi)})
			id++
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
