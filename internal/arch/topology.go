package arch

// LLC-domain topology. The Table 2 platforms carry private L1/L2
// hierarchies, but physical MPSoCs cluster cores: contiguous cores of
// one type share a cluster-level last-level cache and a slice of the
// memory fabric (the Exynos-style big.LITTLE CCI arrangement the GTS
// comparison models). The contention model (internal/contention) needs
// that grouping; arch owns it because it is purely topological.

// LLCDomain is one shared last-level-cache domain: a maximal run of
// contiguous same-type cores plus the aggregate LLC capacity backing
// them (the member cores' private L2 allocations pooled at cluster
// level).
type LLCDomain struct {
	// Cores lists the member core ids, ascending and contiguous.
	Cores []CoreID
	// TypeID is the shared core type of the members.
	TypeID CoreTypeID
	// LLCKB is the pooled last-level capacity of the domain in KB.
	LLCKB float64
}

// LLCDomains derives the platform's LLC-domain partition: each maximal
// run of contiguous cores of one type forms a domain whose capacity is
// the sum of the members' L2 allocations. A heterogeneous platform
// with per-core types (QuadHMP) therefore yields singleton domains —
// private caches, contention only through the shared memory fabric —
// while OctaBigLittle yields one big and one little cluster. The
// partition is a pure function of the platform, in core order.
func LLCDomains(p *Platform) []LLCDomain {
	if p == nil || len(p.Cores) == 0 {
		return nil
	}
	var out []LLCDomain
	start := 0
	for i := 1; i <= len(p.Cores); i++ {
		if i < len(p.Cores) && p.Cores[i].Type == p.Cores[start].Type {
			continue
		}
		tid := p.Cores[start].Type
		d := LLCDomain{TypeID: tid, LLCKB: float64(i-start) * float64(p.Types[tid].L2KB)}
		for c := start; c < i; c++ {
			d.Cores = append(d.Cores, CoreID(c))
		}
		out = append(out, d)
		start = i
	}
	return out
}
