package arch

import "fmt"

// Section 3 of the paper: "even if the cores are identical in terms of
// microarchitecture but associated with different nominal frequencies,
// they can be considered as distinct core types." This file builds such
// frequency-differentiated platforms, letting SmartBalance exploit DVFS
// operating points with the same machinery it uses for architectural
// heterogeneity.

// OperatingPoint is one DVFS voltage/frequency pair.
type OperatingPoint struct {
	FreqMHz  float64
	VoltageV float64
}

// Validate checks the operating point's domain.
func (op OperatingPoint) Validate() error {
	if op.FreqMHz <= 0 {
		return fmt.Errorf("arch: non-positive frequency %g", op.FreqMHz)
	}
	if op.VoltageV <= 0 {
		return fmt.Errorf("arch: non-positive voltage %g", op.VoltageV)
	}
	return nil
}

// DVFSType derives a distinct core type from base running at the given
// operating point: the micro-architecture is unchanged, while peak
// power rescales with V²·F for the dynamic share and V for leakage
// (matching the power model's scaling laws). The leakage share of the
// base peak power is taken as leakFraction (use
// powermodel.LeakageFraction for consistency with the power model).
func DVFSType(base CoreType, op OperatingPoint, leakFraction float64) (CoreType, error) {
	if err := base.Validate(); err != nil {
		return CoreType{}, err
	}
	if err := op.Validate(); err != nil {
		return CoreType{}, err
	}
	if leakFraction < 0 || leakFraction >= 1 {
		return CoreType{}, fmt.Errorf("arch: leak fraction %g outside [0,1)", leakFraction)
	}
	ct := base
	vr := op.VoltageV / base.VoltageV
	fr := op.FreqMHz / base.FreqMHz
	leak := leakFraction * base.PeakPowerW
	dyn := base.PeakPowerW - leak
	ct.FreqMHz = op.FreqMHz
	ct.VoltageV = op.VoltageV
	ct.PeakPowerW = dyn*vr*vr*fr + leak*vr
	ct.Name = fmt.Sprintf("%s@%.0fMHz", base.Name, op.FreqMHz)
	if err := ct.Validate(); err != nil {
		return CoreType{}, err
	}
	return ct, nil
}

// DVFSPlatform builds a platform of coresPerPoint cores at each
// operating point of the same base micro-architecture — an
// "aggressively heterogeneous" MPSoC made purely of DVFS diversity.
func DVFSPlatform(base CoreType, points []OperatingPoint, coresPerPoint int, leakFraction float64) (*Platform, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("arch: DVFSPlatform needs at least one operating point")
	}
	if coresPerPoint < 1 {
		return nil, fmt.Errorf("arch: DVFSPlatform needs >= 1 core per point, got %d", coresPerPoint)
	}
	groups := make([]TypeCount, 0, len(points))
	for _, op := range points {
		ct, err := DVFSType(base, op, leakFraction)
		if err != nil {
			return nil, err
		}
		groups = append(groups, TypeCount{Type: ct, Count: coresPerPoint})
	}
	return CustomPlatform(fmt.Sprintf("dvfs-%s-%dpt", base.Name, len(points)), groups...)
}
