package arch

import (
	"math"
	"testing"
)

func TestDVFSTypeScaling(t *testing.T) {
	base := BigCore() // 1500 MHz @ 0.8 V, 1.41 W peak
	const leakFrac = 0.22
	// Same point: identical power.
	same, err := DVFSType(base, OperatingPoint{FreqMHz: base.FreqMHz, VoltageV: base.VoltageV}, leakFrac)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same.PeakPowerW-base.PeakPowerW) > 1e-12 {
		t.Fatalf("identity point changed power: %g", same.PeakPowerW)
	}
	// Half frequency at equal voltage: dynamic halves, leak unchanged.
	half, err := DVFSType(base, OperatingPoint{FreqMHz: base.FreqMHz / 2, VoltageV: base.VoltageV}, leakFrac)
	if err != nil {
		t.Fatal(err)
	}
	wantDyn := (1 - leakFrac) * base.PeakPowerW / 2
	wantLeak := leakFrac * base.PeakPowerW
	if math.Abs(half.PeakPowerW-(wantDyn+wantLeak)) > 1e-9 {
		t.Fatalf("half-frequency power %g, want %g", half.PeakPowerW, wantDyn+wantLeak)
	}
	// Micro-architecture unchanged; name and frequency differentiated.
	if half.IssueWidth != base.IssueWidth || half.ROBSize != base.ROBSize || half.PeakIPC != base.PeakIPC {
		t.Fatal("DVFS type changed the micro-architecture")
	}
	if half.Name == base.Name {
		t.Fatal("DVFS type name not differentiated")
	}
}

func TestDVFSTypeValidation(t *testing.T) {
	base := BigCore()
	if _, err := DVFSType(base, OperatingPoint{FreqMHz: 0, VoltageV: 1}, 0.2); err == nil {
		t.Fatal("zero frequency accepted")
	}
	if _, err := DVFSType(base, OperatingPoint{FreqMHz: 100, VoltageV: 0}, 0.2); err == nil {
		t.Fatal("zero voltage accepted")
	}
	if _, err := DVFSType(base, OperatingPoint{FreqMHz: 100, VoltageV: 0.5}, 1.2); err == nil {
		t.Fatal("bad leak fraction accepted")
	}
	bad := base
	bad.PeakPowerW = 0
	if _, err := DVFSType(bad, OperatingPoint{FreqMHz: 100, VoltageV: 0.5}, 0.2); err == nil {
		t.Fatal("invalid base accepted")
	}
}

func TestDVFSPlatform(t *testing.T) {
	points := []OperatingPoint{
		{FreqMHz: 1500, VoltageV: 0.80},
		{FreqMHz: 1000, VoltageV: 0.70},
		{FreqMHz: 500, VoltageV: 0.60},
	}
	p, err := DVFSPlatform(BigCore(), points, 2, 0.22)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumTypes() != 3 || p.NumCores() != 6 {
		t.Fatalf("%d types, %d cores", p.NumTypes(), p.NumCores())
	}
	// Power strictly decreasing with the operating point.
	for i := 1; i < p.NumTypes(); i++ {
		if p.Types[i].PeakPowerW >= p.Types[i-1].PeakPowerW {
			t.Fatalf("power not decreasing across points: %v", p.Types[i].PeakPowerW)
		}
	}
	if _, err := DVFSPlatform(BigCore(), nil, 2, 0.22); err == nil {
		t.Fatal("empty point list accepted")
	}
	if _, err := DVFSPlatform(BigCore(), points, 0, 0.22); err == nil {
		t.Fatal("zero cores per point accepted")
	}
}
