// Package workload models the multi-threaded workloads of the paper's
// evaluation: PARSEC-like benchmarks (including the x264 high/low
// frame-rate × crew/bowing input variants of Table 3), the six PARSEC
// mixes, and the interactive microbenchmarks (IMB) whose throughput and
// interactivity are controlled on a high/medium/low grid.
//
// A thread is described purely by *intrinsic*, core-independent phase
// attributes — instruction-level parallelism, instruction mix, working
// sets, branch entropy, memory-level parallelism, and sleep behaviour.
// The performance model (internal/perfmodel) maps these attributes onto
// a concrete core type to obtain IPC and event rates; the balancers only
// ever see the resulting counters, exactly as in the paper.
package workload

import (
	"errors"
	"fmt"

	"smartbalance/internal/rng"
)

// Phase is one execution phase of a thread: a burst of instructions with
// stationary characteristics, optionally followed by a sleep (the
// interactivity mechanism).
type Phase struct {
	// Name labels the phase for traces and tests.
	Name string
	// Instructions is the number of instructions the phase retires.
	Instructions uint64
	// ILP is the intrinsic instruction-level parallelism: how many
	// instructions per cycle the code could sustain on an infinitely
	// wide machine with perfect caches. Typical range [0.8, 6].
	ILP float64
	// MemShare is the fraction of instructions that are loads or stores
	// (the paper's I_msh).
	MemShare float64
	// BranchShare is the fraction of instructions that are branches (the
	// paper's I_bsh).
	BranchShare float64
	// WorkingSetIKB and WorkingSetDKB are the instruction and data
	// working-set sizes in KB; they determine L1 miss rates on a given
	// cache size.
	WorkingSetIKB float64
	WorkingSetDKB float64
	// BranchEntropy in [0,1] measures how hard the branches are to
	// predict: 0 is perfectly predictable, 1 is adversarial.
	BranchEntropy float64
	// MLP is the memory-level parallelism the code exposes (independent
	// outstanding misses), >= 1.
	MLP float64
	// TLBPressureI and TLBPressureD in [0,1] scale instruction/data TLB
	// miss rates (page-locality proxies).
	TLBPressureI float64
	TLBPressureD float64
	// SleepAfterNs is how long the thread sleeps after the phase
	// completes (0 for none). This is how IMB interactivity and I/O
	// waits enter the model.
	SleepAfterNs int64
}

// Validate checks phase attributes are inside their model domains.
func (p *Phase) Validate() error {
	switch {
	case p.Instructions == 0:
		return fmt.Errorf("workload: phase %q has zero instructions", p.Name)
	case p.ILP < 0.1 || p.ILP > 16:
		return fmt.Errorf("workload: phase %q ILP %.2f outside [0.1,16]", p.Name, p.ILP)
	case p.MemShare < 0 || p.MemShare > 0.75:
		return fmt.Errorf("workload: phase %q MemShare %.2f outside [0,0.75]", p.Name, p.MemShare)
	case p.BranchShare < 0 || p.BranchShare > 0.5:
		return fmt.Errorf("workload: phase %q BranchShare %.2f outside [0,0.5]", p.Name, p.BranchShare)
	case p.MemShare+p.BranchShare > 0.95:
		return fmt.Errorf("workload: phase %q mem+branch share %.2f too high", p.Name, p.MemShare+p.BranchShare)
	case p.WorkingSetIKB <= 0 || p.WorkingSetDKB <= 0:
		return fmt.Errorf("workload: phase %q non-positive working set", p.Name)
	case p.BranchEntropy < 0 || p.BranchEntropy > 1:
		return fmt.Errorf("workload: phase %q BranchEntropy %.2f outside [0,1]", p.Name, p.BranchEntropy)
	case p.MLP < 1 || p.MLP > 16:
		return fmt.Errorf("workload: phase %q MLP %.2f outside [1,16]", p.Name, p.MLP)
	case p.TLBPressureI < 0 || p.TLBPressureI > 1 || p.TLBPressureD < 0 || p.TLBPressureD > 1:
		return fmt.Errorf("workload: phase %q TLB pressure outside [0,1]", p.Name)
	case p.SleepAfterNs < 0:
		return fmt.Errorf("workload: phase %q negative sleep", p.Name)
	}
	return nil
}

// ThreadSpec is the full behavioural description of one thread: a cycle
// of phases repeated Repeats times (0 = repeat forever, for
// fixed-duration throughput experiments).
type ThreadSpec struct {
	// Name identifies the thread, e.g. "x264H-crew.w2".
	Name string
	// Benchmark is the owning benchmark's name, e.g. "x264H-crew".
	Benchmark string
	// Phases is the phase cycle. Must be non-empty.
	Phases []Phase
	// Repeats is how many times the phase cycle runs; 0 means forever.
	Repeats int
	// Nice is the Linux nice value in [-20, 19]; 0 for all paper
	// workloads but exposed for tests of CFS weighting.
	Nice int
	// KernelThread marks an OS-internal thread. Section 5.1: user
	// threads are "identified and marked during their creation in the
	// sched_fork() function"; SmartBalance focuses on user-level threads
	// and leaves kernel threads where the scheduler put them.
	KernelThread bool
}

// Validate checks the spec and all its phases.
func (t *ThreadSpec) Validate() error {
	if t.Name == "" {
		return errors.New("workload: thread without a name")
	}
	if len(t.Phases) == 0 {
		return fmt.Errorf("workload: thread %q has no phases", t.Name)
	}
	if t.Repeats < 0 {
		return fmt.Errorf("workload: thread %q negative repeats", t.Name)
	}
	if t.Nice < -20 || t.Nice > 19 {
		return fmt.Errorf("workload: thread %q nice %d outside [-20,19]", t.Name, t.Nice)
	}
	for i := range t.Phases {
		if err := t.Phases[i].Validate(); err != nil {
			return fmt.Errorf("thread %q: %w", t.Name, err)
		}
	}
	return nil
}

// TotalInstructions returns the instructions one full pass of the phase
// cycle retires.
func (t *ThreadSpec) TotalInstructions() uint64 {
	var total uint64
	for i := range t.Phases {
		total += t.Phases[i].Instructions
	}
	return total
}

// DutyCycle estimates the fraction of wall time the thread wants to run
// (1 = fully CPU bound), assuming it retires instructions at refIPS.
// Used by tests and by utilisation-based balancers' documentation; the
// kernel measures real utilisation at run time.
func (t *ThreadSpec) DutyCycle(refIPS float64) float64 {
	if refIPS <= 0 {
		return 1
	}
	var busyNs, sleepNs float64
	for i := range t.Phases {
		busyNs += float64(t.Phases[i].Instructions) / refIPS * 1e9
		sleepNs += float64(t.Phases[i].SleepAfterNs)
	}
	if busyNs+sleepNs == 0 { //sbvet:allow floateq(both terms are non-negative; exact zero guards the division below)
		return 1
	}
	return busyNs / (busyNs + sleepNs)
}

// jitter returns v scaled by a deterministic factor in [1-amount, 1+amount].
func jitter(r *rng.Rand, v, amount float64) float64 {
	return v * (1 + amount*(2*r.Float64()-1))
}

// clampF limits v to [lo, hi].
func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// perturbPhases returns a copy of phases with every attribute jittered
// by a few percent, so the m worker threads of one benchmark are similar
// but not identical — mirroring real data-dependent workers.
func perturbPhases(r *rng.Rand, phases []Phase, amount float64) []Phase {
	out := make([]Phase, len(phases))
	for i, p := range phases {
		q := p
		q.Instructions = uint64(jitter(r, float64(p.Instructions), amount))
		if q.Instructions == 0 {
			q.Instructions = 1
		}
		q.ILP = clampF(jitter(r, p.ILP, amount), 0.1, 16)
		q.MemShare = clampF(jitter(r, p.MemShare, amount), 0, 0.75)
		q.BranchShare = clampF(jitter(r, p.BranchShare, amount), 0, 0.5)
		q.WorkingSetIKB = clampF(jitter(r, p.WorkingSetIKB, amount), 0.25, 1<<20)
		q.WorkingSetDKB = clampF(jitter(r, p.WorkingSetDKB, amount), 0.25, 1<<20)
		q.BranchEntropy = clampF(jitter(r, p.BranchEntropy, amount), 0, 1)
		q.MLP = clampF(jitter(r, p.MLP, amount), 1, 16)
		q.TLBPressureI = clampF(jitter(r, p.TLBPressureI, amount), 0, 1)
		q.TLBPressureD = clampF(jitter(r, p.TLBPressureD, amount), 0, 1)
		if p.SleepAfterNs > 0 {
			q.SleepAfterNs = int64(jitter(r, float64(p.SleepAfterNs), amount))
			if q.SleepAfterNs < 0 {
				q.SleepAfterNs = 0
			}
		}
		out[i] = q
	}
	return out
}

// Spawn materialises nthreads worker threads from a benchmark profile,
// each with deterministic per-worker jitter derived from seed.
func Spawn(benchName string, base []Phase, nthreads int, seed uint64) ([]ThreadSpec, error) {
	if nthreads < 1 {
		return nil, fmt.Errorf("workload: Spawn %q needs >= 1 thread", benchName)
	}
	r := rng.New(seed)
	specs := make([]ThreadSpec, nthreads)
	for w := 0; w < nthreads; w++ {
		wr := r.Split()
		specs[w] = ThreadSpec{
			Name:      fmt.Sprintf("%s.w%d", benchName, w),
			Benchmark: benchName,
			Phases:    perturbPhases(wr, base, 0.08),
		}
		if err := specs[w].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}
