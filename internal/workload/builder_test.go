package workload

import (
	"testing"
	"time"
)

func TestBuilderHappyPath(t *testing.T) {
	spec, err := NewBuilder("codec").
		Compute(40e6, 3.0).
		Memory(20e6, 1024).
		Sleep(2*time.Millisecond).
		Branchy(10e6, 0.6).
		Repeats(3).
		Nice(5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Phases) != 3 {
		t.Fatalf("%d phases", len(spec.Phases))
	}
	if spec.Phases[1].SleepAfterNs != 2e6 {
		t.Fatal("Sleep did not attach to the memory phase")
	}
	if spec.Phases[0].SleepAfterNs != 0 || spec.Phases[2].SleepAfterNs != 0 {
		t.Fatal("Sleep leaked to other phases")
	}
	if spec.Repeats != 3 || spec.Nice != 5 {
		t.Fatal("Repeats/Nice lost")
	}
	if spec.Phases[1].WorkingSetDKB != 1024 {
		t.Fatal("memory working set lost")
	}
}

func TestBuilderArchetypesAreDistinct(t *testing.T) {
	spec, err := NewBuilder("x").Compute(1e6, 3).Memory(1e6, 2048).Branchy(1e6, 0.9).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, m, br := spec.Phases[0], spec.Phases[1], spec.Phases[2]
	if c.ILP <= m.ILP {
		t.Fatal("compute phase should have higher ILP than memory phase")
	}
	if m.MemShare <= c.MemShare {
		t.Fatal("memory phase should have higher memory share")
	}
	if br.BranchShare <= c.BranchShare {
		t.Fatal("branchy phase should have higher branch share")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("").Compute(1e6, 2).Build(); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewBuilder("x").Build(); err == nil {
		t.Fatal("phaseless spec accepted")
	}
	if _, err := NewBuilder("x").Sleep(time.Millisecond).Build(); err == nil {
		t.Fatal("Sleep before phases accepted")
	}
	if _, err := NewBuilder("x").Compute(1e6, 2).Sleep(-time.Second).Build(); err == nil {
		t.Fatal("negative sleep accepted")
	}
	if _, err := NewBuilder("x").Compute(1e6, 99).Build(); err == nil {
		t.Fatal("invalid ILP accepted")
	}
	if _, err := NewBuilder("x").Compute(1e6, 2).Repeats(-1).Build(); err == nil {
		t.Fatal("negative repeats accepted")
	}
	if _, err := NewBuilder("x").Compute(1e6, 2).Nice(99).Build(); err == nil {
		t.Fatal("bad nice accepted")
	}
	// First error wins and later calls are no-ops.
	b := NewBuilder("x").Compute(1e6, 99).Memory(1e6, 64)
	if _, err := b.Build(); err == nil {
		t.Fatal("error not sticky")
	}
}

func TestBuilderWorkers(t *testing.T) {
	workers, err := NewBuilder("w").Compute(5e6, 2.5).Repeats(2).Nice(-3).Workers(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 4 {
		t.Fatalf("%d workers", len(workers))
	}
	for _, w := range workers {
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		if w.Repeats != 2 || w.Nice != -3 {
			t.Fatal("worker lost Repeats/Nice")
		}
	}
	// Jittered: workers differ.
	if workers[0].Phases[0].ILP == workers[1].Phases[0].ILP {
		t.Fatal("workers not jittered")
	}
	if _, err := NewBuilder("w").Workers(2, 1); err == nil {
		t.Fatal("phaseless Workers accepted")
	}
}
