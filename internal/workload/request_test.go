package workload

import (
	"reflect"
	"testing"
)

func TestRequestClasses(t *testing.T) {
	got := RequestClasses()
	want := []string{"api", "page", "query"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RequestClasses() = %v, want %v", got, want)
	}
}

func TestRequestSpecShape(t *testing.T) {
	for _, class := range RequestClasses() {
		spec, err := RequestSpec(class, "r0."+class, 1)
		if err != nil {
			t.Fatalf("RequestSpec(%q): %v", class, err)
		}
		if spec.Repeats != 1 {
			t.Errorf("%s: Repeats = %d, want 1 (requests are run-to-completion)", class, spec.Repeats)
		}
		if len(spec.Phases) != 1 {
			t.Errorf("%s: %d phases, want 1", class, len(spec.Phases))
		}
		if spec.Benchmark != "req:"+class {
			t.Errorf("%s: Benchmark = %q", class, spec.Benchmark)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: perturbed spec invalid: %v", class, err)
		}
	}
}

func TestRequestSpecDeterministic(t *testing.T) {
	a, err := RequestSpec("page", "r1.page", 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RequestSpec("page", "r1.page", 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("equal seeds produced different request specs")
	}
	c, err := RequestSpec("page", "r1.page", 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Phases, c.Phases) {
		t.Error("distinct seeds produced identical perturbations")
	}
}

func TestRequestSpecJitterBounded(t *testing.T) {
	base := requestProfiles[0].phase // api
	for seed := uint64(0); seed < 50; seed++ {
		spec, err := RequestSpec("api", "r.api", seed)
		if err != nil {
			t.Fatal(err)
		}
		got := spec.Phases[0].Instructions
		lo := uint64(float64(base.Instructions) * 0.85)
		hi := uint64(float64(base.Instructions) * 1.15)
		if got < lo || got > hi {
			t.Fatalf("seed %d: instructions %d outside ±15%% of %d", seed, got, base.Instructions)
		}
	}
}

func TestRequestSpecUnknownClass(t *testing.T) {
	if _, err := RequestSpec("video", "r0.video", 1); err == nil {
		t.Fatal("unknown class accepted")
	}
}
