package workload

import (
	"fmt"
	"time"
)

// Builder assembles custom ThreadSpecs without hand-writing every phase
// attribute: each convenience method appends a phase with sensible
// defaults for its archetype, which can then be refined. Errors are
// accumulated and reported by Build.
//
//	spec, err := workload.NewBuilder("codec").
//	    Compute(40e6, 3.0).
//	    Memory(20e6, 1024).
//	    Sleep(2 * time.Millisecond).
//	    Build()
type Builder struct {
	name    string
	phases  []Phase
	repeats int
	nice    int
	err     error
}

// NewBuilder starts a spec named name.
func NewBuilder(name string) *Builder {
	b := &Builder{name: name}
	if name == "" {
		b.err = fmt.Errorf("workload: builder needs a name")
	}
	return b
}

// Compute appends a compute-bound phase: the given intrinsic ILP, a
// lean memory footprint, and predictable branches.
func (b *Builder) Compute(instructions uint64, ilp float64) *Builder {
	return b.Custom(Phase{
		Name:          fmt.Sprintf("compute%d", len(b.phases)),
		Instructions:  instructions,
		ILP:           ilp,
		MemShare:      0.22,
		BranchShare:   0.08,
		WorkingSetIKB: 6,
		WorkingSetDKB: 24,
		BranchEntropy: 0.15,
		MLP:           2.5,
		TLBPressureI:  0.05,
		TLBPressureD:  0.1,
	})
}

// Memory appends a memory-bound phase streaming over a working set of
// wsKB kilobytes.
func (b *Builder) Memory(instructions uint64, wsKB float64) *Builder {
	return b.Custom(Phase{
		Name:          fmt.Sprintf("memory%d", len(b.phases)),
		Instructions:  instructions,
		ILP:           1.4,
		MemShare:      0.42,
		BranchShare:   0.12,
		WorkingSetIKB: 8,
		WorkingSetDKB: wsKB,
		BranchEntropy: 0.4,
		MLP:           2.0,
		TLBPressureI:  0.08,
		TLBPressureD:  0.5,
	})
}

// Branchy appends a control-flow-heavy phase with the given branch
// entropy (0 = perfectly predictable, 1 = adversarial).
func (b *Builder) Branchy(instructions uint64, entropy float64) *Builder {
	return b.Custom(Phase{
		Name:          fmt.Sprintf("branchy%d", len(b.phases)),
		Instructions:  instructions,
		ILP:           1.8,
		MemShare:      0.28,
		BranchShare:   0.24,
		WorkingSetIKB: 12,
		WorkingSetDKB: 96,
		BranchEntropy: entropy,
		MLP:           1.8,
		TLBPressureI:  0.1,
		TLBPressureD:  0.2,
	})
}

// Custom appends an explicit phase.
func (b *Builder) Custom(p Phase) *Builder {
	if b.err != nil {
		return b
	}
	if err := p.Validate(); err != nil {
		b.err = err
		return b
	}
	b.phases = append(b.phases, p)
	return b
}

// Sleep attaches a sleep/wait period to the most recently added phase
// (the interactivity mechanism).
func (b *Builder) Sleep(d time.Duration) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.phases) == 0 {
		b.err = fmt.Errorf("workload: Sleep before any phase")
		return b
	}
	if d < 0 {
		b.err = fmt.Errorf("workload: negative sleep %v", d)
		return b
	}
	b.phases[len(b.phases)-1].SleepAfterNs = d.Nanoseconds()
	return b
}

// Repeats sets how many times the phase cycle runs (0 = forever).
func (b *Builder) Repeats(n int) *Builder {
	if b.err == nil && n < 0 {
		b.err = fmt.Errorf("workload: negative repeats %d", n)
		return b
	}
	b.repeats = n
	return b
}

// Nice sets the CFS nice level in [-20, 19].
func (b *Builder) Nice(n int) *Builder {
	if b.err == nil && (n < -20 || n > 19) {
		b.err = fmt.Errorf("workload: nice %d outside [-20,19]", n)
		return b
	}
	b.nice = n
	return b
}

// Build returns the assembled spec, or the first accumulated error.
func (b *Builder) Build() (ThreadSpec, error) {
	if b.err != nil {
		return ThreadSpec{}, b.err
	}
	spec := ThreadSpec{
		Name:      b.name,
		Benchmark: b.name,
		Phases:    append([]Phase(nil), b.phases...),
		Repeats:   b.repeats,
		Nice:      b.nice,
	}
	if err := spec.Validate(); err != nil {
		return ThreadSpec{}, err
	}
	return spec, nil
}

// Workers materialises n jittered worker threads of the built spec,
// like the built-in benchmarks' worker spawning.
func (b *Builder) Workers(n int, seed uint64) ([]ThreadSpec, error) {
	spec, err := b.Build()
	if err != nil {
		return nil, err
	}
	workers, err := Spawn(b.name, spec.Phases, n, seed)
	if err != nil {
		return nil, err
	}
	for i := range workers {
		workers[i].Repeats = spec.Repeats
		workers[i].Nice = spec.Nice
	}
	return workers, nil
}
