package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func validPhase() Phase {
	return Phase{
		Name: "p", Instructions: 1e6, ILP: 2, MemShare: 0.3, BranchShare: 0.1,
		WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.4, MLP: 2,
		TLBPressureI: 0.1, TLBPressureD: 0.2,
	}
}

func TestPhaseValidateAcceptsValid(t *testing.T) {
	p := validPhase()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseValidateRejectsBad(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Phase)
	}{
		{"zero instructions", func(p *Phase) { p.Instructions = 0 }},
		{"tiny ILP", func(p *Phase) { p.ILP = 0.01 }},
		{"huge ILP", func(p *Phase) { p.ILP = 20 }},
		{"mem share high", func(p *Phase) { p.MemShare = 0.9 }},
		{"negative mem share", func(p *Phase) { p.MemShare = -0.1 }},
		{"branch share high", func(p *Phase) { p.BranchShare = 0.6 }},
		{"combined share", func(p *Phase) { p.MemShare, p.BranchShare = 0.7, 0.4 }},
		{"zero WS", func(p *Phase) { p.WorkingSetDKB = 0 }},
		{"entropy out of range", func(p *Phase) { p.BranchEntropy = 1.5 }},
		{"MLP below 1", func(p *Phase) { p.MLP = 0.5 }},
		{"TLB pressure", func(p *Phase) { p.TLBPressureD = 2 }},
		{"negative sleep", func(p *Phase) { p.SleepAfterNs = -1 }},
	}
	for _, c := range cases {
		p := validPhase()
		c.mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestThreadSpecValidate(t *testing.T) {
	ts := ThreadSpec{Name: "t", Phases: []Phase{validPhase()}}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ThreadSpec{
		{Phases: []Phase{validPhase()}}, // no name
		{Name: "t"},                     // no phases
		{Name: "t", Phases: []Phase{validPhase()}, Repeats: -1}, // negative repeats
		{Name: "t", Phases: []Phase{validPhase()}, Nice: 30},    // bad nice
		{Name: "t", Phases: []Phase{{Name: "z"}}},               // invalid phase
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestTotalInstructions(t *testing.T) {
	ts := ThreadSpec{Name: "t", Phases: []Phase{validPhase(), validPhase()}}
	if got := ts.TotalInstructions(); got != 2e6 {
		t.Fatalf("TotalInstructions = %d", got)
	}
}

func TestDutyCycle(t *testing.T) {
	p := validPhase()
	p.Instructions = 1e9 // 1s at 1e9 IPS
	p.SleepAfterNs = 1e9 // then 1s sleep
	ts := ThreadSpec{Name: "t", Phases: []Phase{p}}
	dc := ts.DutyCycle(1e9)
	if dc < 0.49 || dc > 0.51 {
		t.Fatalf("DutyCycle = %g, want ~0.5", dc)
	}
	// No sleep -> fully busy.
	p.SleepAfterNs = 0
	ts = ThreadSpec{Name: "t", Phases: []Phase{p}}
	if ts.DutyCycle(1e9) != 1 {
		t.Fatal("busy thread should have duty cycle 1")
	}
}

func TestBenchmarksListStable(t *testing.T) {
	names := Benchmarks()
	if len(names) < 14 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	// Must include the Table 3 constituents.
	want := []string{"bodytrack", "x264H-crew", "x264H-bow", "x264L-crew", "x264L-bow"}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("benchmark %q missing", w)
		}
	}
	// Sorted.
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted at %d: %v", i, names)
		}
	}
}

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Benchmarks() {
		specs, err := Benchmark(name, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

func TestBenchmarkUnknown(t *testing.T) {
	if _, err := Benchmark("nope", 2, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarkThreadCountAndNames(t *testing.T) {
	specs, err := Benchmark("swaptions", 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d threads", len(specs))
	}
	for i, s := range specs {
		if s.Benchmark != "swaptions" {
			t.Errorf("thread %d benchmark = %q", i, s.Benchmark)
		}
		if !strings.HasPrefix(s.Name, "swaptions.w") {
			t.Errorf("thread %d name = %q", i, s.Name)
		}
	}
	if _, err := Benchmark("swaptions", 0, 7); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestSpawnDeterministicButJittered(t *testing.T) {
	a, err := Benchmark("canneal", 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Benchmark("canneal", 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: identical.
	for i := range a {
		if a[i].Phases[0].ILP != b[i].Phases[0].ILP {
			t.Fatal("same seed produced different workers")
		}
	}
	// Workers differ from each other (jitter applied per worker).
	if a[0].Phases[0].ILP == a[1].Phases[0].ILP {
		t.Fatal("workers not jittered")
	}
	// Different seed: different.
	c, _ := Benchmark("canneal", 4, 43)
	if a[0].Phases[0].ILP == c[0].Phases[0].ILP {
		t.Fatal("different seeds produced identical workers")
	}
}

func TestJitterBounded(t *testing.T) {
	base := parsecProfiles["swaptions"]
	specs, err := Spawn("swaptions", base, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		for i, p := range s.Phases {
			ref := base[i]
			if p.ILP < ref.ILP*0.9 || p.ILP > ref.ILP*1.1 {
				t.Fatalf("ILP jitter out of ±10%%: %g vs %g", p.ILP, ref.ILP)
			}
		}
	}
}

func TestX264VariantsDiffer(t *testing.T) {
	hc := parsecProfiles["x264H-crew"]
	lc := parsecProfiles["x264L-crew"]
	hb := parsecProfiles["x264H-bow"]
	if hc[0].Instructions <= lc[0].Instructions {
		t.Fatal("high frame-rate x264 should execute more instructions per frame burst")
	}
	if hc[0].BranchEntropy <= hb[0].BranchEntropy {
		t.Fatal("crew input should be less predictable than bowing")
	}
	// This is the paper's point: one benchmark, distinct characteristics.
	if hc[0].MemShare == hb[0].MemShare && hc[0].Instructions == hb[0].Instructions {
		t.Fatal("x264 input variants are indistinguishable")
	}
}

func TestMixContentsMatchTable3(t *testing.T) {
	want := map[string][]string{
		"Mix1": {"x264H-crew", "x264H-bow"},
		"Mix2": {"x264L-crew", "x264L-bow"},
		"Mix3": {"x264L-crew", "x264H-bow"},
		"Mix4": {"x264H-crew", "x264L-bow"},
		"Mix5": {"bodytrack", "x264H-crew"},
		"Mix6": {"bodytrack", "x264H-crew", "x264L-bow"},
	}
	for mix, benches := range want {
		got, err := MixContents(mix)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(benches) {
			t.Fatalf("%s: %v", mix, got)
		}
		for i := range benches {
			if got[i] != benches[i] {
				t.Fatalf("%s[%d] = %q, want %q", mix, i, got[i], benches[i])
			}
		}
	}
	if _, err := MixContents("Mix9"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestMixSpawns(t *testing.T) {
	specs, err := Mix("Mix6", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 { // 3 benchmarks x 2 threads
		t.Fatalf("Mix6 with 2 threads each: %d specs", len(specs))
	}
	if _, err := Mix("nope", 2, 1); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestIMBGrid(t *testing.T) {
	cfgs := IMBConfigs()
	if len(cfgs) != 9 {
		t.Fatalf("%d IMB configs", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		name := IMBName(c[0], c[1])
		if seen[name] {
			t.Fatalf("duplicate IMB config %s", name)
		}
		seen[name] = true
		specs, err := IMB(c[0], c[1], 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
	if !seen["HTHI"] || !seen["LTLI"] || !seen["MTMI"] {
		t.Fatal("expected paper-style names missing")
	}
}

func TestIMBLevelsShapeBehaviour(t *testing.T) {
	ht, _ := IMB(High, Low, 1, 1)
	lt, _ := IMB(Low, Low, 1, 1)
	if ht[0].Phases[0].Instructions <= lt[0].Phases[0].Instructions {
		t.Fatal("high throughput should burst more instructions")
	}
	hi, _ := IMB(Medium, High, 1, 1)
	li, _ := IMB(Medium, Low, 1, 1)
	if hi[0].Phases[0].SleepAfterNs <= li[0].Phases[0].SleepAfterNs {
		t.Fatal("high interactivity should sleep longer")
	}
	// Duty cycle ordering: more interactive -> lower duty cycle.
	if hi[0].DutyCycle(1e9) >= li[0].DutyCycle(1e9) {
		t.Fatal("duty cycle should fall with interactivity")
	}
}

func TestIMBInvalidLevels(t *testing.T) {
	if _, err := IMB(Level(9), Low, 1, 1); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Level
	}{{"H", High}, {"m", Medium}, {"L", Low}} {
		got, err := ParseLevel(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseLevel(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseLevel("x"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestLevelString(t *testing.T) {
	if High.String() != "H" || Medium.String() != "M" || Low.String() != "L" {
		t.Fatal("level strings wrong")
	}
	if !strings.Contains(Level(9).String(), "9") {
		t.Fatal("unknown level string should include value")
	}
}

func TestPerturbPhasesAlwaysValidProperty(t *testing.T) {
	// Jittering a valid phase must always produce a valid phase.
	f := func(seed uint16) bool {
		specs, err := Spawn("blackscholes", parsecProfiles["blackscholes"], 3, uint64(seed))
		if err != nil {
			return false
		}
		for _, s := range specs {
			if s.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
