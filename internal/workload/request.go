package workload

import (
	"fmt"

	"smartbalance/internal/rng"
)

// Request-shaped workloads: the short-lived, run-to-completion jobs a
// fleet-tier dispatcher admits from an open-loop traffic stream. Where
// the PARSEC-like benchmarks model long-running compute threads, a
// request is one phase, one pass (Repeats = 1): the thread retires a
// few million instructions and exits, and its wall time from arrival
// to exit is the request latency the fleet tier accounts.

// requestProfile is one request class's base phase shape.
type requestProfile struct {
	class string
	phase Phase
}

// requestProfiles are the built-in request classes, ordered. "api" is
// a small cache-friendly compute burst (an RPC handler), "page" a
// branchy mixed render (template assembly), and "query" a
// memory-bound scan with high MLP (a datastore lookup).
var requestProfiles = []requestProfile{
	{class: "api", phase: Phase{
		Name: "api", Instructions: 4_000_000,
		ILP: 2.2, MemShare: 0.18, BranchShare: 0.12,
		WorkingSetIKB: 24, WorkingSetDKB: 64,
		BranchEntropy: 0.35, MLP: 2.0,
		TLBPressureI: 0.05, TLBPressureD: 0.10,
	}},
	{class: "page", phase: Phase{
		Name: "page", Instructions: 12_000_000,
		ILP: 1.6, MemShare: 0.30, BranchShare: 0.20,
		WorkingSetIKB: 48, WorkingSetDKB: 256,
		BranchEntropy: 0.55, MLP: 2.5,
		TLBPressureI: 0.10, TLBPressureD: 0.20,
	}},
	{class: "query", phase: Phase{
		Name: "query", Instructions: 24_000_000,
		ILP: 1.2, MemShare: 0.45, BranchShare: 0.08,
		WorkingSetIKB: 32, WorkingSetDKB: 2048,
		BranchEntropy: 0.30, MLP: 4.0,
		TLBPressureI: 0.05, TLBPressureD: 0.35,
	}},
}

// RequestClasses lists the available request classes in canonical
// order.
func RequestClasses() []string {
	out := make([]string, len(requestProfiles))
	for i := range requestProfiles {
		out[i] = requestProfiles[i].class
	}
	return out
}

// RequestSpec materialises one short-lived request thread of the named
// class. The spec is a pure function of (class, name, seed): the seed
// drives a deterministic per-request jitter around the class's base
// phase, so two requests of one class are similar but not identical —
// the same worker-variation idiom Spawn applies to benchmark threads.
func RequestSpec(class, name string, seed uint64) (ThreadSpec, error) {
	for i := range requestProfiles {
		p := &requestProfiles[i]
		if p.class != class {
			continue
		}
		r := rng.New(seed)
		spec := ThreadSpec{
			Name:      name,
			Benchmark: "req:" + class,
			Phases:    perturbPhases(r, []Phase{p.phase}, 0.10),
			Repeats:   1,
		}
		if err := spec.Validate(); err != nil {
			return ThreadSpec{}, err
		}
		return spec, nil
	}
	return ThreadSpec{}, fmt.Errorf("workload: unknown request class %q (known: %v)", class, RequestClasses())
}
