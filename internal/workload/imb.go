package workload

import "fmt"

// Interactive microbenchmarks (IMB).
//
// The paper: "sets of multithreaded synthetic benchmarks ... that
// provide the ability to control the load, phasic behavior, and
// interactivity (sleep and wait periods). The IMBs can be configured to
// have throughput (T) and interactivity (I) that controls the
// sleep/wait periods for high (H), medium (M), and low (L) values."
// HTHI = high throughput, high interactivity, and so on for the other
// eight combinations.

// Level is an IMB configuration level.
type Level int

// IMB throughput/interactivity levels.
const (
	Low Level = iota
	Medium
	High
)

// String returns the single-letter paper notation (L/M/H).
func (l Level) String() string {
	switch l {
	case Low:
		return "L"
	case Medium:
		return "M"
	case High:
		return "H"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel converts "H"/"M"/"L" into a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "H", "h":
		return High, nil
	case "M", "m":
		return Medium, nil
	case "L", "l":
		return Low, nil
	}
	return 0, fmt.Errorf("workload: unknown level %q", s)
}

// IMBName returns the paper's label for a configuration, e.g. "HTHI"
// for high throughput, high interactivity.
func IMBName(throughput, interactivity Level) string {
	return fmt.Sprintf("%sT%sI", throughput, interactivity)
}

// IMBConfigs enumerates all nine throughput x interactivity
// combinations in the order (HT, MT, LT) x (HI, MI, LI).
func IMBConfigs() [][2]Level {
	var out [][2]Level
	for _, t := range []Level{High, Medium, Low} {
		for _, i := range []Level{High, Medium, Low} {
			out = append(out, [2]Level{t, i})
		}
	}
	return out
}

// imbProfile builds the phase cycle of one IMB configuration.
//
// Throughput controls the compute intensity of the busy burst: high
// throughput means long bursts of high-ILP work, low throughput short
// bursts of lean, memory-touching work. Interactivity controls the
// sleep period appended to each burst: high interactivity sleeps most
// of the time (like a UI or I/O-bound task), low interactivity almost
// never sleeps.
func imbProfile(throughput, interactivity Level) []Phase {
	var instr float64
	var ilp float64
	var ws float64
	switch throughput {
	case High:
		instr, ilp, ws = 40e6, 3.2, 48
	case Medium:
		instr, ilp, ws = 18e6, 2.0, 128
	case Low:
		instr, ilp, ws = 7e6, 1.2, 384
	}
	var sleepNs int64
	switch interactivity {
	case High:
		sleepNs = 24e6 // sleeps dominate: bursty, UI-like
	case Medium:
		sleepNs = 8e6
	case Low:
		sleepNs = 1e6
	}
	return []Phase{
		{
			Name:          "burst",
			Instructions:  uint64(instr),
			ILP:           ilp,
			MemShare:      0.3,
			BranchShare:   0.14,
			WorkingSetIKB: 10,
			WorkingSetDKB: ws,
			BranchEntropy: 0.35,
			MLP:           2.5,
			TLBPressureI:  0.1,
			TLBPressureD:  0.25,
			SleepAfterNs:  sleepNs,
		},
		{
			Name:          "service",
			Instructions:  uint64(instr * 0.25),
			ILP:           clampF(ilp*0.7, 0.8, 16),
			MemShare:      0.36,
			BranchShare:   0.18,
			WorkingSetIKB: 8,
			WorkingSetDKB: ws * 0.5,
			BranchEntropy: 0.5,
			MLP:           2.0,
			TLBPressureI:  0.12,
			TLBPressureD:  0.3,
			SleepAfterNs:  sleepNs / 4,
		},
	}
}

// IMB materialises nthreads workers of the given interactive
// microbenchmark configuration.
func IMB(throughput, interactivity Level, nthreads int, seed uint64) ([]ThreadSpec, error) {
	if throughput < Low || throughput > High || interactivity < Low || interactivity > High {
		return nil, fmt.Errorf("workload: invalid IMB levels (%v, %v)", throughput, interactivity)
	}
	name := "imb-" + IMBName(throughput, interactivity)
	return Spawn(name, imbProfile(throughput, interactivity), nthreads, seed)
}
