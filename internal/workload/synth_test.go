package workload

import (
	"strings"
	"testing"
)

func TestParseSynthDefaultsAndCanonicalForm(t *testing.T) {
	s, err := ParseSynth("synth:")
	if err != nil {
		t.Fatal(err)
	}
	if s != DefaultSynth() {
		t.Fatalf("bare synth: = %+v, want defaults %+v", s, DefaultSynth())
	}
	canon := s.String()
	if !strings.HasPrefix(canon, SynthPrefix+"phases=") {
		t.Fatalf("canonical form %q", canon)
	}
	again, err := ParseSynth(canon)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if again != s {
		t.Fatalf("round trip: %+v != %+v", again, s)
	}
	if again.String() != canon {
		t.Fatalf("canonical form unstable: %q then %q", canon, again.String())
	}
}

func TestParseSynthOverridesAndOrderIndependence(t *testing.T) {
	a, err := ParseSynth("synth:ilp=3.5,phases=4,mem=0.5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSynth("synth:mem=0.5,ilp=3.5,phases=4")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("parameter order changed the spec: %+v vs %+v", a, b)
	}
	if a.ILP != 3.5 || a.Phases != 4 || a.Mem != 0.5 {
		t.Fatalf("overrides not applied: %+v", a)
	}
	if a.InsM != DefaultSynth().InsM {
		t.Fatalf("omitted parameter not defaulted: %+v", a)
	}
}

func TestParseSynthRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"synth:phases=0",     // below domain
		"synth:phases=2.5",   // non-integer
		"synth:ins=0",        // below domain
		"synth:mem=0.9",      // above the jitter-safe cap
		"synth:bsh=0.4",      //
		"synth:mlp=32",       //
		"synth:sleep=-1",     //
		"synth:ant=3",        // unknown antagonist profile
		"synth:ant=-1",       //
		"synth:ant=1.5",      // non-integer
		"synth:bogus=1",      // unknown parameter
		"synth:ilp",          // malformed
		"synth:ilp=x",        // non-numeric
		"blackscholes",       // not a synth name
		"synthetic:phases=2", // wrong prefix
	}
	for _, in := range bad {
		if _, err := ParseSynth(in); err == nil {
			t.Errorf("ParseSynth(%q) accepted, want error", in)
		}
	}
}

// TestSynthAntagonistKnob: the ant knob round-trips through the
// canonical form, stays out of it when zero (so pre-existing names are
// byte-stable), and produces the documented steady aggressor shapes.
func TestSynthAntagonistKnob(t *testing.T) {
	if s := DefaultSynth().String(); strings.Contains(s, "ant=") {
		t.Fatalf("ant=0 leaked into the canonical form %q", s)
	}
	for _, ant := range []int{AntStreaming, AntCacheResident} {
		s, err := ParseSynth("synth:ant=" + string(rune('0'+ant)))
		if err != nil {
			t.Fatalf("ant=%d: %v", ant, err)
		}
		if s.Ant != ant {
			t.Fatalf("ant=%d parsed as %d", ant, s.Ant)
		}
		canon := s.String()
		if !strings.HasSuffix(canon, ",ant="+string(rune('0'+ant))) {
			t.Fatalf("canonical form %q does not carry ant=%d", canon, ant)
		}
		again, err := ParseSynth(canon)
		if err != nil || again != s {
			t.Fatalf("round trip of %q: %+v (%v)", canon, again, err)
		}
	}

	base, _ := ParseSynth("synth:phases=2")
	stream, _ := ParseSynth("synth:phases=2,ant=1")
	resident, _ := ParseSynth("synth:phases=2,ant=2")
	bp, sp, rp := base.phases(), stream.phases(), resident.phases()
	if sp[0].WorkingSetDKB < 8192 || sp[0].MemShare <= bp[0].MemShare {
		t.Fatalf("streaming antagonist not memory-aggressive: %+v", sp[0])
	}
	unnamed := func(p Phase) Phase { p.Name = ""; return p }
	if unnamed(sp[0]) != unnamed(sp[1]) || unnamed(rp[0]) != unnamed(rp[1]) {
		t.Fatalf("antagonist phases are not steady: %+v vs %+v", sp[0], sp[1])
	}
	if rp[0].WorkingSetDKB <= bp[0].WorkingSetDKB || rp[0].WorkingSetDKB > 8192 {
		t.Fatalf("cache-resident antagonist working set %v outside the LLC-slice regime", rp[0].WorkingSetDKB)
	}
	// Jittered spawns of the extreme corners must stay model-valid.
	for _, spec := range []string{
		"synth:phases=1,ins=1,ilp=0.5,mem=0,wsd=1,ant=1",
		"synth:phases=8,ins=500,ilp=8,mem=0.6,wsd=65536,ant=1",
		"synth:phases=8,ins=500,ilp=8,mem=0.6,wsd=65536,ant=2",
		"synth:wsd=64,ant=2",
	} {
		for seed := uint64(0); seed < 10; seed++ {
			threads, err := Synth(spec, 4, seed)
			if err != nil {
				t.Fatalf("Synth(%q, seed %d): %v", spec, seed, err)
			}
			for i := range threads {
				if err := threads[i].Validate(); err != nil {
					t.Fatalf("Synth(%q, seed %d) thread %d invalid: %v", spec, seed, i, err)
				}
			}
		}
	}
}

// TestSynthSpawnsValidThreads: every valid spec must materialise
// threads whose jittered phases still pass the model-domain
// validation, including the extreme corners of the spec domains.
func TestSynthSpawnsValidThreads(t *testing.T) {
	specs := []string{
		"synth:",
		"synth:phases=1,ins=1,ilp=0.5,mem=0,bsh=0,wsi=1,wsd=1,ent=0,mlp=1,sleep=0",
		"synth:phases=8,ins=500,ilp=8,mem=0.6,bsh=0.25,wsi=1024,wsd=65536,ent=1,mlp=8,sleep=50",
		"synth:phases=3,mem=0.6,bsh=0.25",
	}
	for _, spec := range specs {
		for seed := uint64(0); seed < 20; seed++ {
			threads, err := Synth(spec, 4, seed)
			if err != nil {
				t.Fatalf("Synth(%q, seed %d): %v", spec, seed, err)
			}
			if len(threads) != 4 {
				t.Fatalf("Synth(%q) made %d threads", spec, len(threads))
			}
			for i := range threads {
				if err := threads[i].Validate(); err != nil {
					t.Fatalf("Synth(%q, seed %d) thread %d invalid: %v", spec, seed, i, err)
				}
			}
		}
	}
}

// TestSynthDeterministicAndPhasic: equal (spec, seed) reproduce equal
// threads, and multi-phase specs alternate toward memory-bound odd
// phases.
func TestSynthDeterministicAndPhasic(t *testing.T) {
	a, err := Synth("synth:phases=2", 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth("synth:phases=2", 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Phases) != len(b[i].Phases) {
			t.Fatalf("nondeterministic spawn: %+v vs %+v", a[i], b[i])
		}
		for j := range a[i].Phases {
			if a[i].Phases[j] != b[i].Phases[j] {
				t.Fatalf("thread %d phase %d differs across identical spawns", i, j)
			}
		}
	}
	s, _ := ParseSynth("synth:phases=2")
	base := s.phases()
	if base[1].MemShare <= base[0].MemShare || base[1].WorkingSetDKB <= base[0].WorkingSetDKB {
		t.Fatalf("odd phase does not lean memory-bound: %+v vs %+v", base[0], base[1])
	}
	if base[1].ILP >= base[0].ILP {
		t.Fatalf("odd phase ILP did not drop: %v vs %v", base[1].ILP, base[0].ILP)
	}
}
