package workload

import (
	"strings"
	"testing"
)

func TestParseSynthDefaultsAndCanonicalForm(t *testing.T) {
	s, err := ParseSynth("synth:")
	if err != nil {
		t.Fatal(err)
	}
	if s != DefaultSynth() {
		t.Fatalf("bare synth: = %+v, want defaults %+v", s, DefaultSynth())
	}
	canon := s.String()
	if !strings.HasPrefix(canon, SynthPrefix+"phases=") {
		t.Fatalf("canonical form %q", canon)
	}
	again, err := ParseSynth(canon)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if again != s {
		t.Fatalf("round trip: %+v != %+v", again, s)
	}
	if again.String() != canon {
		t.Fatalf("canonical form unstable: %q then %q", canon, again.String())
	}
}

func TestParseSynthOverridesAndOrderIndependence(t *testing.T) {
	a, err := ParseSynth("synth:ilp=3.5,phases=4,mem=0.5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSynth("synth:mem=0.5,ilp=3.5,phases=4")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("parameter order changed the spec: %+v vs %+v", a, b)
	}
	if a.ILP != 3.5 || a.Phases != 4 || a.Mem != 0.5 {
		t.Fatalf("overrides not applied: %+v", a)
	}
	if a.InsM != DefaultSynth().InsM {
		t.Fatalf("omitted parameter not defaulted: %+v", a)
	}
}

func TestParseSynthRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"synth:phases=0",     // below domain
		"synth:phases=2.5",   // non-integer
		"synth:ins=0",        // below domain
		"synth:mem=0.9",      // above the jitter-safe cap
		"synth:bsh=0.4",      //
		"synth:mlp=32",       //
		"synth:sleep=-1",     //
		"synth:bogus=1",      // unknown parameter
		"synth:ilp",          // malformed
		"synth:ilp=x",        // non-numeric
		"blackscholes",       // not a synth name
		"synthetic:phases=2", // wrong prefix
	}
	for _, in := range bad {
		if _, err := ParseSynth(in); err == nil {
			t.Errorf("ParseSynth(%q) accepted, want error", in)
		}
	}
}

// TestSynthSpawnsValidThreads: every valid spec must materialise
// threads whose jittered phases still pass the model-domain
// validation, including the extreme corners of the spec domains.
func TestSynthSpawnsValidThreads(t *testing.T) {
	specs := []string{
		"synth:",
		"synth:phases=1,ins=1,ilp=0.5,mem=0,bsh=0,wsi=1,wsd=1,ent=0,mlp=1,sleep=0",
		"synth:phases=8,ins=500,ilp=8,mem=0.6,bsh=0.25,wsi=1024,wsd=65536,ent=1,mlp=8,sleep=50",
		"synth:phases=3,mem=0.6,bsh=0.25",
	}
	for _, spec := range specs {
		for seed := uint64(0); seed < 20; seed++ {
			threads, err := Synth(spec, 4, seed)
			if err != nil {
				t.Fatalf("Synth(%q, seed %d): %v", spec, seed, err)
			}
			if len(threads) != 4 {
				t.Fatalf("Synth(%q) made %d threads", spec, len(threads))
			}
			for i := range threads {
				if err := threads[i].Validate(); err != nil {
					t.Fatalf("Synth(%q, seed %d) thread %d invalid: %v", spec, seed, i, err)
				}
			}
		}
	}
}

// TestSynthDeterministicAndPhasic: equal (spec, seed) reproduce equal
// threads, and multi-phase specs alternate toward memory-bound odd
// phases.
func TestSynthDeterministicAndPhasic(t *testing.T) {
	a, err := Synth("synth:phases=2", 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth("synth:phases=2", 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Phases) != len(b[i].Phases) {
			t.Fatalf("nondeterministic spawn: %+v vs %+v", a[i], b[i])
		}
		for j := range a[i].Phases {
			if a[i].Phases[j] != b[i].Phases[j] {
				t.Fatalf("thread %d phase %d differs across identical spawns", i, j)
			}
		}
	}
	s, _ := ParseSynth("synth:phases=2")
	base := s.phases()
	if base[1].MemShare <= base[0].MemShare || base[1].WorkingSetDKB <= base[0].WorkingSetDKB {
		t.Fatalf("odd phase does not lean memory-bound: %+v vs %+v", base[0], base[1])
	}
	if base[1].ILP >= base[0].ILP {
		t.Fatalf("odd phase ILP did not drop: %v vs %v", base[1].ILP, base[0].ILP)
	}
}
