package workload

import (
	"fmt"
	"sort"
)

// PARSEC-like benchmark profiles.
//
// The attribute values below are shaped by the published PARSEC
// characterisation (Bienia et al., PACT'08) and the behaviour the paper
// exploits: compute-bound kernels (blackscholes, swaptions) with high
// ILP and small working sets; memory-bound kernels (canneal,
// streamcluster) dominated by cache misses; and mixed/phasic codecs
// (x264, bodytrack) whose behaviour changes with input and
// configuration. Absolute numbers are synthetic — the balancers only
// consume the relative diversity.

// parsecProfiles maps benchmark name to its phase cycle.
var parsecProfiles = map[string][]Phase{
	"blackscholes": {
		{Name: "price", Instructions: 60e6, ILP: 3.4, MemShare: 0.24, BranchShare: 0.08,
			WorkingSetIKB: 6, WorkingSetDKB: 24, BranchEntropy: 0.15, MLP: 2.5,
			TLBPressureI: 0.05, TLBPressureD: 0.1},
		{Name: "reduce", Instructions: 12e6, ILP: 2.2, MemShare: 0.3, BranchShare: 0.12,
			WorkingSetIKB: 5, WorkingSetDKB: 48, BranchEntropy: 0.25, MLP: 2.0,
			TLBPressureI: 0.05, TLBPressureD: 0.15},
	},
	"bodytrack": {
		{Name: "edge-detect", Instructions: 30e6, ILP: 2.6, MemShare: 0.3, BranchShare: 0.13,
			WorkingSetIKB: 14, WorkingSetDKB: 96, BranchEntropy: 0.4, MLP: 3.0,
			TLBPressureI: 0.1, TLBPressureD: 0.2},
		{Name: "particle-filter", Instructions: 45e6, ILP: 2.0, MemShare: 0.33, BranchShare: 0.17,
			WorkingSetIKB: 20, WorkingSetDKB: 160, BranchEntropy: 0.55, MLP: 2.2,
			TLBPressureI: 0.15, TLBPressureD: 0.3},
		{Name: "pose-update", Instructions: 15e6, ILP: 1.6, MemShare: 0.28, BranchShare: 0.2,
			WorkingSetIKB: 10, WorkingSetDKB: 40, BranchEntropy: 0.5, MLP: 1.6,
			TLBPressureI: 0.1, TLBPressureD: 0.15, SleepAfterNs: 2e6},
	},
	"canneal": {
		{Name: "swap-eval", Instructions: 40e6, ILP: 1.3, MemShare: 0.42, BranchShare: 0.16,
			WorkingSetIKB: 8, WorkingSetDKB: 2048, BranchEntropy: 0.65, MLP: 1.8,
			TLBPressureI: 0.1, TLBPressureD: 0.7},
		{Name: "temp-step", Instructions: 8e6, ILP: 1.8, MemShare: 0.3, BranchShare: 0.12,
			WorkingSetIKB: 6, WorkingSetDKB: 256, BranchEntropy: 0.4, MLP: 2.0,
			TLBPressureI: 0.08, TLBPressureD: 0.4},
	},
	"dedup": {
		{Name: "chunk", Instructions: 25e6, ILP: 2.0, MemShare: 0.36, BranchShare: 0.14,
			WorkingSetIKB: 12, WorkingSetDKB: 384, BranchEntropy: 0.45, MLP: 2.8,
			TLBPressureI: 0.12, TLBPressureD: 0.45},
		{Name: "hash-compress", Instructions: 35e6, ILP: 2.8, MemShare: 0.27, BranchShare: 0.1,
			WorkingSetIKB: 10, WorkingSetDKB: 64, BranchEntropy: 0.3, MLP: 3.2,
			TLBPressureI: 0.08, TLBPressureD: 0.2},
		{Name: "write-out", Instructions: 8e6, ILP: 1.4, MemShare: 0.45, BranchShare: 0.12,
			WorkingSetIKB: 8, WorkingSetDKB: 512, BranchEntropy: 0.35, MLP: 2.0,
			TLBPressureI: 0.1, TLBPressureD: 0.5, SleepAfterNs: 3e6},
	},
	"ferret": {
		{Name: "segment", Instructions: 28e6, ILP: 2.4, MemShare: 0.31, BranchShare: 0.13,
			WorkingSetIKB: 18, WorkingSetDKB: 128, BranchEntropy: 0.42, MLP: 2.6,
			TLBPressureI: 0.15, TLBPressureD: 0.3},
		{Name: "extract-vec", Instructions: 32e6, ILP: 3.0, MemShare: 0.26, BranchShare: 0.09,
			WorkingSetIKB: 14, WorkingSetDKB: 96, BranchEntropy: 0.3, MLP: 3.0,
			TLBPressureI: 0.1, TLBPressureD: 0.25},
		{Name: "rank", Instructions: 20e6, ILP: 1.7, MemShare: 0.38, BranchShare: 0.16,
			WorkingSetIKB: 12, WorkingSetDKB: 768, BranchEntropy: 0.55, MLP: 2.0,
			TLBPressureI: 0.12, TLBPressureD: 0.55},
	},
	"fluidanimate": {
		{Name: "rebuild-grid", Instructions: 18e6, ILP: 1.9, MemShare: 0.4, BranchShare: 0.12,
			WorkingSetIKB: 10, WorkingSetDKB: 512, BranchEntropy: 0.35, MLP: 2.4,
			TLBPressureI: 0.1, TLBPressureD: 0.5},
		{Name: "compute-forces", Instructions: 55e6, ILP: 3.1, MemShare: 0.29, BranchShare: 0.08,
			WorkingSetIKB: 12, WorkingSetDKB: 192, BranchEntropy: 0.2, MLP: 3.5,
			TLBPressureI: 0.08, TLBPressureD: 0.3},
		{Name: "advance", Instructions: 12e6, ILP: 2.4, MemShare: 0.33, BranchShare: 0.1,
			WorkingSetIKB: 8, WorkingSetDKB: 256, BranchEntropy: 0.25, MLP: 2.8,
			TLBPressureI: 0.08, TLBPressureD: 0.35},
	},
	"freqmine": {
		{Name: "build-fptree", Instructions: 30e6, ILP: 1.8, MemShare: 0.37, BranchShare: 0.19,
			WorkingSetIKB: 16, WorkingSetDKB: 896, BranchEntropy: 0.6, MLP: 2.0,
			TLBPressureI: 0.15, TLBPressureD: 0.6},
		{Name: "mine", Instructions: 42e6, ILP: 2.1, MemShare: 0.33, BranchShare: 0.21,
			WorkingSetIKB: 18, WorkingSetDKB: 640, BranchEntropy: 0.55, MLP: 2.2,
			TLBPressureI: 0.15, TLBPressureD: 0.5},
	},
	"streamcluster": {
		{Name: "dist-eval", Instructions: 50e6, ILP: 1.5, MemShare: 0.44, BranchShare: 0.1,
			WorkingSetIKB: 6, WorkingSetDKB: 1536, BranchEntropy: 0.3, MLP: 3.8,
			TLBPressureI: 0.06, TLBPressureD: 0.65},
		{Name: "recluster", Instructions: 15e6, ILP: 1.8, MemShare: 0.36, BranchShare: 0.15,
			WorkingSetIKB: 8, WorkingSetDKB: 512, BranchEntropy: 0.45, MLP: 2.4,
			TLBPressureI: 0.08, TLBPressureD: 0.45},
	},
	"swaptions": {
		{Name: "hjm-sim", Instructions: 70e6, ILP: 3.6, MemShare: 0.22, BranchShare: 0.07,
			WorkingSetIKB: 5, WorkingSetDKB: 20, BranchEntropy: 0.12, MLP: 2.8,
			TLBPressureI: 0.04, TLBPressureD: 0.08},
		{Name: "price-agg", Instructions: 10e6, ILP: 2.4, MemShare: 0.28, BranchShare: 0.1,
			WorkingSetIKB: 4, WorkingSetDKB: 32, BranchEntropy: 0.2, MLP: 2.2,
			TLBPressureI: 0.05, TLBPressureD: 0.1},
	},
	"facesim": {
		{Name: "update-state", Instructions: 34e6, ILP: 2.7, MemShare: 0.31, BranchShare: 0.09,
			WorkingSetIKB: 18, WorkingSetDKB: 448, BranchEntropy: 0.25, MLP: 3.0,
			TLBPressureI: 0.12, TLBPressureD: 0.4},
		{Name: "solve-cg", Instructions: 48e6, ILP: 2.2, MemShare: 0.38, BranchShare: 0.07,
			WorkingSetIKB: 10, WorkingSetDKB: 1280, BranchEntropy: 0.18, MLP: 3.6,
			TLBPressureI: 0.08, TLBPressureD: 0.55},
		{Name: "collisions", Instructions: 14e6, ILP: 1.7, MemShare: 0.33, BranchShare: 0.18,
			WorkingSetIKB: 14, WorkingSetDKB: 256, BranchEntropy: 0.55, MLP: 2.0,
			TLBPressureI: 0.12, TLBPressureD: 0.3},
	},
	"raytrace": {
		{Name: "traverse-bvh", Instructions: 40e6, ILP: 1.9, MemShare: 0.36, BranchShare: 0.2,
			WorkingSetIKB: 12, WorkingSetDKB: 960, BranchEntropy: 0.6, MLP: 2.2,
			TLBPressureI: 0.1, TLBPressureD: 0.5},
		{Name: "shade", Instructions: 26e6, ILP: 2.9, MemShare: 0.26, BranchShare: 0.1,
			WorkingSetIKB: 14, WorkingSetDKB: 128, BranchEntropy: 0.3, MLP: 2.8,
			TLBPressureI: 0.1, TLBPressureD: 0.25},
		{Name: "present", Instructions: 6e6, ILP: 1.5, MemShare: 0.42, BranchShare: 0.1,
			WorkingSetIKB: 8, WorkingSetDKB: 320, BranchEntropy: 0.25, MLP: 2.4,
			TLBPressureI: 0.08, TLBPressureD: 0.35, SleepAfterNs: 5e6},
	},
	"vips": {
		{Name: "decode-tile", Instructions: 22e6, ILP: 2.5, MemShare: 0.3, BranchShare: 0.12,
			WorkingSetIKB: 20, WorkingSetDKB: 224, BranchEntropy: 0.38, MLP: 3.0,
			TLBPressureI: 0.18, TLBPressureD: 0.35},
		{Name: "convolve", Instructions: 38e6, ILP: 3.2, MemShare: 0.27, BranchShare: 0.08,
			WorkingSetIKB: 16, WorkingSetDKB: 160, BranchEntropy: 0.2, MLP: 3.6,
			TLBPressureI: 0.12, TLBPressureD: 0.3},
		{Name: "write-tile", Instructions: 10e6, ILP: 1.6, MemShare: 0.42, BranchShare: 0.1,
			WorkingSetIKB: 10, WorkingSetDKB: 320, BranchEntropy: 0.3, MLP: 2.2,
			TLBPressureI: 0.1, TLBPressureD: 0.4, SleepAfterNs: 1e6},
	},
}

// x264 variants (Table 3): the same codec behaves differently under
// high (H) or low (L) frame-rate configuration and across the crew and
// bowing input videos. High rate means larger motion-estimation bursts
// with higher ILP demand; the crew sequence has more motion (more
// memory traffic, harder branches) than bowing.
func x264Profile(high bool, input string) []Phase {
	// Base numbers per phase; scaled by configuration below.
	meInstr, encInstr, filtInstr := 36e6, 26e6, 12e6
	ilpME, ilpEnc := 2.9, 2.3
	mem, entropy := 0.3, 0.45
	sleep := int64(4e6) // inter-frame pacing wait
	if high {
		meInstr *= 1.6
		encInstr *= 1.5
		ilpME += 0.4
		sleep = 1e6 // high frame rate barely waits
	}
	switch input {
	case "crew":
		mem += 0.05
		entropy += 0.12
	case "bow":
		meInstr *= 0.85
		entropy -= 0.08
	default:
		panic(fmt.Sprintf("workload: unknown x264 input %q", input))
	}
	return []Phase{
		{Name: "motion-est", Instructions: uint64(meInstr), ILP: ilpME, MemShare: mem,
			BranchShare: 0.14, WorkingSetIKB: 24, WorkingSetDKB: 288,
			BranchEntropy: clampF(entropy, 0, 1), MLP: 3.2, TLBPressureI: 0.2, TLBPressureD: 0.35},
		{Name: "encode", Instructions: uint64(encInstr), ILP: ilpEnc, MemShare: mem - 0.04,
			BranchShare: 0.16, WorkingSetIKB: 28, WorkingSetDKB: 192,
			BranchEntropy: clampF(entropy+0.05, 0, 1), MLP: 2.6, TLBPressureI: 0.22, TLBPressureD: 0.3},
		{Name: "deblock", Instructions: uint64(filtInstr), ILP: 2.0, MemShare: mem + 0.06,
			BranchShare: 0.11, WorkingSetIKB: 16, WorkingSetDKB: 160,
			BranchEntropy: clampF(entropy-0.1, 0, 1), MLP: 2.4, TLBPressureI: 0.15, TLBPressureD: 0.3,
			SleepAfterNs: sleep},
	}
}

func init() {
	parsecProfiles["x264H-crew"] = x264Profile(true, "crew")
	parsecProfiles["x264H-bow"] = x264Profile(true, "bow")
	parsecProfiles["x264L-crew"] = x264Profile(false, "crew")
	parsecProfiles["x264L-bow"] = x264Profile(false, "bow")
}

// Benchmarks returns the sorted list of available PARSEC-like benchmark
// names, including the four x264 variants.
func Benchmarks() []string {
	names := make([]string, 0, len(parsecProfiles))
	for n := range parsecProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Benchmark materialises nthreads workers of the named benchmark.
func Benchmark(name string, nthreads int, seed uint64) ([]ThreadSpec, error) {
	base, ok := parsecProfiles[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return Spawn(name, base, nthreads, seed)
}

// MixNames returns the identifiers of the six Table 3 mixes.
func MixNames() []string {
	return []string{"Mix1", "Mix2", "Mix3", "Mix4", "Mix5", "Mix6"}
}

// MixContents returns the benchmark list of each mix exactly as in
// Table 3 of the paper.
func MixContents(mix string) ([]string, error) {
	m := map[string][]string{
		"Mix1": {"x264H-crew", "x264H-bow"},
		"Mix2": {"x264L-crew", "x264L-bow"},
		"Mix3": {"x264L-crew", "x264H-bow"},
		"Mix4": {"x264H-crew", "x264L-bow"},
		"Mix5": {"bodytrack", "x264H-crew"},
		"Mix6": {"bodytrack", "x264H-crew", "x264L-bow"},
	}
	bs, ok := m[mix]
	if !ok {
		return nil, fmt.Errorf("workload: unknown mix %q", mix)
	}
	return bs, nil
}

// Mix materialises a Table 3 mix with nthreads workers per constituent
// benchmark.
func Mix(mix string, nthreads int, seed uint64) ([]ThreadSpec, error) {
	benches, err := MixContents(mix)
	if err != nil {
		return nil, err
	}
	var out []ThreadSpec
	for i, b := range benches {
		specs, err := Benchmark(b, nthreads, seed+uint64(i)*0x9E37)
		if err != nil {
			return nil, err
		}
		out = append(out, specs...)
	}
	return out, nil
}
