package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// Synthetic parametric benchmarks: the mutable corner of the workload
// vocabulary. The named PARSEC-like profiles are fixed points chosen to
// mirror the paper's evaluation; adversarial search (internal/hunt)
// instead needs a workload whose phase structure and attributes are
// continuous knobs it can push around. A SynthSpec is that knob set —
// small enough to minimize over, expressive enough to reach the
// compute-bound, memory-bound, and phasic regimes the balancers
// disagree on.
//
// The spec grammar mirrors the arrival specs ("kind:key=val,..."):
//
//	synth:phases=2,ins=30,ilp=2.4,mem=0.3,bsh=0.12,wsi=12,wsd=256,ent=0.4,mlp=2.5,sleep=0
//
// ins is instructions per phase in millions; sleep is the sleep after
// the last phase of each cycle in milliseconds (the interactivity
// mechanism); everything else matches the Phase attribute of the same
// (abbreviated) name. Odd-indexed phases lean memory-bound — working
// sets grow and ILP drops — so phases >= 2 produces the phasic
// behaviour that stresses epoch-based balancers. An optional ant=1|2
// reshapes the spec into a steady streaming (bandwidth) or
// cache-resident (occupancy) antagonist for the contention study; it
// is omitted from canonical names when zero.

// SynthPrefix starts every synthetic workload name.
const SynthPrefix = "synth:"

// SynthSpec is a parametric synthetic benchmark description.
type SynthSpec struct {
	Phases int     `json:"phases"`
	InsM   float64 `json:"ins_m"`
	ILP    float64 `json:"ilp"`
	Mem    float64 `json:"mem"`
	Bsh    float64 `json:"bsh"`
	WsIKB  float64 `json:"wsi_kb"`
	WsDKB  float64 `json:"wsd_kb"`
	Ent    float64 `json:"ent"`
	MLP    float64 `json:"mlp"`
	SleepM float64 `json:"sleep_ms"`
	// Ant selects an antagonist profile for the contention study
	// (internal/contention): AntNone leaves the spec as-is, the other
	// values reshape every phase into a steady shared-resource
	// aggressor. Rendered in String only when non-zero, so the knob
	// changes no pre-existing canonical name.
	Ant int `json:"ant,omitempty"`
}

// Antagonist profiles. A streaming antagonist sweeps a working set far
// beyond any LLC at high memory share — maximal bandwidth demand, no
// reuse for co-runners to evict. A cache-resident antagonist parks a
// working set sized to an LLC slice and re-references it — maximal
// occupancy pressure at modest bandwidth.
const (
	AntNone          = 0
	AntStreaming     = 1
	AntCacheResident = 2
)

// DefaultSynth is the spec every omitted parameter falls back to — a
// middle-of-the-road mixed workload.
func DefaultSynth() SynthSpec {
	return SynthSpec{
		Phases: 2, InsM: 30, ILP: 2.4, Mem: 0.3, Bsh: 0.12,
		WsIKB: 12, WsDKB: 256, Ent: 0.4, MLP: 2.5, SleepM: 0,
	}
}

// String renders the canonical spec name: every parameter explicit, in
// fixed order, shortest-exact numbers. ParseSynth(s.String()) == s for
// every valid spec.
func (s SynthSpec) String() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	name := fmt.Sprintf("%sphases=%d,ins=%s,ilp=%s,mem=%s,bsh=%s,wsi=%s,wsd=%s,ent=%s,mlp=%s,sleep=%s",
		SynthPrefix, s.Phases, f(s.InsM), f(s.ILP), f(s.Mem), f(s.Bsh),
		f(s.WsIKB), f(s.WsDKB), f(s.Ent), f(s.MLP), f(s.SleepM))
	if s.Ant != AntNone {
		name += ",ant=" + strconv.Itoa(s.Ant)
	}
	return name
}

// Validate checks the spec's own domains. They are deliberately tighter
// than Phase.Validate's: Spawn jitters every attribute by up to 8%, and
// these bounds keep the jittered phases inside the model domains.
func (s SynthSpec) Validate() error {
	switch {
	case s.Phases < 1 || s.Phases > 8:
		return fmt.Errorf("workload: synth phases %d outside [1,8]", s.Phases)
	case s.InsM < 1 || s.InsM > 500:
		return fmt.Errorf("workload: synth ins %v outside [1,500] (millions)", s.InsM)
	case s.ILP < 0.5 || s.ILP > 8:
		return fmt.Errorf("workload: synth ilp %v outside [0.5,8]", s.ILP)
	case s.Mem < 0 || s.Mem > 0.6:
		return fmt.Errorf("workload: synth mem %v outside [0,0.6]", s.Mem)
	case s.Bsh < 0 || s.Bsh > 0.25:
		return fmt.Errorf("workload: synth bsh %v outside [0,0.25]", s.Bsh)
	case s.WsIKB < 1 || s.WsIKB > 1024:
		return fmt.Errorf("workload: synth wsi %v outside [1,1024] KB", s.WsIKB)
	case s.WsDKB < 1 || s.WsDKB > 65536:
		return fmt.Errorf("workload: synth wsd %v outside [1,65536] KB", s.WsDKB)
	case s.Ent < 0 || s.Ent > 1:
		return fmt.Errorf("workload: synth ent %v outside [0,1]", s.Ent)
	case s.MLP < 1 || s.MLP > 8:
		return fmt.Errorf("workload: synth mlp %v outside [1,8]", s.MLP)
	case s.SleepM < 0 || s.SleepM > 50:
		return fmt.Errorf("workload: synth sleep %v outside [0,50] ms", s.SleepM)
	case s.Ant < AntNone || s.Ant > AntCacheResident:
		return fmt.Errorf("workload: synth ant %d outside [0,2]", s.Ant)
	}
	return nil
}

// ParseSynth parses a "synth:..." name. Omitted parameters take the
// DefaultSynth values; unknown parameters are errors.
func ParseSynth(name string) (SynthSpec, error) {
	s := DefaultSynth()
	if !strings.HasPrefix(name, SynthPrefix) {
		return s, fmt.Errorf("workload: %q is not a synth spec (want %q prefix)", name, SynthPrefix)
	}
	params := strings.TrimPrefix(name, SynthPrefix)
	if params == "" {
		return s, s.Validate()
	}
	for _, part := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("workload: synth parameter %q malformed (want key=value)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return s, fmt.Errorf("workload: synth parameter %q: %v", part, err)
		}
		switch strings.TrimSpace(k) {
		case "phases":
			s.Phases = int(f)
			if float64(s.Phases) != f { //sbvet:allow floateq(integrality check on a parsed literal, not a computed value)
				return s, fmt.Errorf("workload: synth phases %v is not an integer", f)
			}
		case "ins":
			s.InsM = f
		case "ilp":
			s.ILP = f
		case "mem":
			s.Mem = f
		case "bsh":
			s.Bsh = f
		case "wsi":
			s.WsIKB = f
		case "wsd":
			s.WsDKB = f
		case "ent":
			s.Ent = f
		case "mlp":
			s.MLP = f
		case "sleep":
			s.SleepM = f
		case "ant":
			s.Ant = int(f)
			if float64(s.Ant) != f { //sbvet:allow floateq(integrality check on a parsed literal, not a computed value)
				return s, fmt.Errorf("workload: synth ant %v is not an integer", f)
			}
		default:
			return s, fmt.Errorf("workload: unknown synth parameter %q", k)
		}
	}
	return s, s.Validate()
}

// phases materialises the spec's phase cycle. Even-indexed phases carry
// the spec's attributes as given; odd-indexed phases lean memory-bound
// (bigger data working set, lower ILP, higher memory share) so
// multi-phase specs exercise the phase-tracking paths of the balancers.
// Antagonist specs (Ant != AntNone) are deliberately steady instead:
// every phase carries the aggressor profile, so their pressure on
// co-runners is constant and contention effects are attributable.
func (s SynthSpec) phases() []Phase {
	out := make([]Phase, s.Phases)
	for i := range out {
		p := Phase{
			Name:          fmt.Sprintf("synth-p%d", i),
			Instructions:  uint64(s.InsM * 1e6),
			ILP:           s.ILP,
			MemShare:      s.Mem,
			BranchShare:   s.Bsh,
			WorkingSetIKB: s.WsIKB,
			WorkingSetDKB: s.WsDKB,
			BranchEntropy: s.Ent,
			MLP:           s.MLP,
			TLBPressureI:  clampF(s.WsIKB/1024, 0, 0.8),
			TLBPressureD:  clampF(s.WsDKB/8192, 0, 0.8),
		}
		switch s.Ant {
		case AntStreaming:
			// Steady bandwidth aggressor: no phasing, every phase sweeps.
			p.ILP = clampF(p.ILP*0.8, 0.5, 8)
			p.MemShare = clampF(p.MemShare*1.5+0.25, 0, 0.6)
			p.WorkingSetDKB = clampF(p.WorkingSetDKB*32, 8192, 65536)
			p.MLP = clampF(p.MLP+2, 1, 8)
		case AntCacheResident:
			// Steady occupancy aggressor: LLC-slice-sized reuse set.
			p.MemShare = clampF(p.MemShare+0.1, 0, 0.6)
			p.WorkingSetDKB = clampF(p.WorkingSetDKB*4, 512, 8192)
		default:
			if i%2 == 1 {
				p.ILP = clampF(p.ILP*0.6, 0.5, 8)
				p.MemShare = clampF(p.MemShare*1.4+0.1, 0, 0.6)
				p.WorkingSetDKB = clampF(p.WorkingSetDKB*8, 1, 65536)
				p.MLP = clampF(p.MLP*0.8, 1, 8)
			}
		}
		if i == len(out)-1 && s.SleepM > 0 {
			p.SleepAfterNs = int64(s.SleepM * 1e6)
		}
		out[i] = p
	}
	return out
}

// Synth materialises nthreads worker threads from a synthetic spec
// name, with the same deterministic per-worker jitter as the named
// benchmarks.
func Synth(name string, nthreads int, seed uint64) ([]ThreadSpec, error) {
	s, err := ParseSynth(name)
	if err != nil {
		return nil, err
	}
	// Spawn under the canonical name so equal specs produce equal
	// thread names regardless of parameter spelling or order.
	return Spawn(s.String(), s.phases(), nthreads, seed)
}
