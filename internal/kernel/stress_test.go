package kernel

import (
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/machine"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

// chaosBalancer performs random migrations every epoch — an adversarial
// policy for invariant stress testing.
type chaosBalancer struct {
	r *rng.Rand
}

func (c *chaosBalancer) Name() string { return "chaos" }
func (c *chaosBalancer) Rebalance(k *Kernel, _ Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	n := k.NumCores()
	for _, t := range k.ActiveTasks() {
		if c.r.Float64() < 0.7 {
			_ = k.Migrate(t.ID, arch.CoreID(c.r.Intn(n)))
		}
	}
}

// TestKernelStressInvariants interleaves spawns, migrations, finite and
// interactive workloads, and chaotic balancing, checking the scheduler
// invariants and accounting identities after every step.
func TestKernelStressInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		r := rng.New(seed)
		m, err := machine.New(arch.QuadHMP())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		k, err := New(m, &chaosBalancer{r: rng.New(seed ^ 0xC0)}, cfg)
		if err != nil {
			t.Fatal(err)
		}

		mkSpec := func(i int) *workload.ThreadSpec {
			spec := &workload.ThreadSpec{
				Name:      "stress",
				Benchmark: "stress",
				Phases: []workload.Phase{{
					Name:          "p",
					Instructions:  uint64(1e5 + r.Intn(5e7)),
					ILP:           0.8 + r.Float64()*3,
					MemShare:      r.Float64() * 0.5,
					BranchShare:   r.Float64() * 0.2,
					WorkingSetIKB: 1 + r.Float64()*64,
					WorkingSetDKB: 1 + r.Float64()*1024,
					BranchEntropy: r.Float64(),
					MLP:           1 + r.Float64()*3,
				}},
			}
			if r.Float64() < 0.4 {
				spec.Phases[0].SleepAfterNs = int64(r.Intn(30e6))
			}
			if r.Float64() < 0.3 {
				spec.Repeats = 1 + r.Intn(3) // finite: will exit
			}
			_ = i
			return spec
		}

		now := Time(0)
		for step := 0; step < 30; step++ {
			// Random batch of spawns.
			for i := 0; i < 1+r.Intn(3); i++ {
				if _, err := k.Spawn(mkSpec(step)); err != nil {
					t.Fatal(err)
				}
			}
			// Random direct migrations (on top of the chaos balancer).
			for _, task := range k.ActiveTasks() {
				if r.Float64() < 0.2 {
					if err := k.Migrate(task.ID, arch.CoreID(r.Intn(4))); err != nil {
						t.Fatal(err)
					}
				}
			}
			now += Time(5e6 + r.Intn(40e6))
			if err := k.Run(now); err != nil {
				t.Fatal(err)
			}
			if err := k.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			// Accounting identities.
			s := k.Stats()
			var taskInstr uint64
			var taskRun int64
			for _, ts := range s.Tasks {
				taskInstr += ts.Instr
				taskRun += ts.RunNs
			}
			var coreInstr uint64
			var coreBusy int64
			for _, cs := range s.Cores {
				coreInstr += cs.Instr
				coreBusy += cs.BusyNs
				if cs.BusyNs+cs.SleepNs > s.SpanNs+1 {
					t.Fatalf("seed %d step %d: core %d accounted %dns of %dns span",
						seed, step, cs.Core, cs.BusyNs+cs.SleepNs, s.SpanNs)
				}
			}
			if taskInstr != coreInstr || taskRun != coreBusy {
				t.Fatalf("seed %d step %d: accounting mismatch (%d/%d instr, %d/%d ns)",
					seed, step, taskInstr, coreInstr, taskRun, coreBusy)
			}
		}
	}
}

// TestKernelFinishedTasksStayFinished verifies finite tasks retire
// exactly their instruction budget under chaotic migration.
func TestKernelFinishedTasksStayFinished(t *testing.T) {
	m, err := machine.New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(m, &chaosBalancer{r: rng.New(3)}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const instr = 20e6
	var ids []ThreadID
	for i := 0; i < 6; i++ {
		spec := &workload.ThreadSpec{
			Name:      "finite",
			Benchmark: "finite",
			Phases: []workload.Phase{{
				Name: "p", Instructions: instr, ILP: 2, MemShare: 0.3, BranchShare: 0.1,
				WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.4, MLP: 2,
			}},
			Repeats: 1,
		}
		id, err := k.Spawn(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := k.Run(5e9); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		task := k.Task(id)
		if task.State() != StateFinished {
			t.Fatalf("task %d state %v after 5s", id, task.State())
		}
		if task.TotalInstructions() != instr {
			t.Fatalf("task %d retired %d instructions, want %d", id, task.TotalInstructions(), uint64(instr))
		}
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelManyCores exercises the event loop at the Fig. 7 upper
// scale.
func TestKernelManyCores(t *testing.T) {
	plat, err := arch.ScalingHMP(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(plat)
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(m, &chaosBalancer{r: rng.New(5)}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := workload.IMB(workload.Medium, workload.Medium, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if _, err := k.Spawn(&specs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(300e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	if s.TotalInstructions() == 0 {
		t.Fatal("no work at scale")
	}
	busyCores := 0
	for i := range s.Cores {
		if s.Cores[i].Instr > 0 {
			busyCores++
		}
	}
	if busyCores < 32 {
		t.Fatalf("only %d/64 cores ever ran work", busyCores)
	}
}
