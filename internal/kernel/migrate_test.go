package kernel

import (
	"errors"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/machine"
)

// rqSnapshot captures every core's runqueue accounting, the invariant
// that must be untouched by rejected migrations.
type rqSnapshot struct {
	lens  []int
	loads []int64
}

func snapshotRunqueues(k *Kernel) rqSnapshot {
	s := rqSnapshot{
		lens:  make([]int, k.NumCores()),
		loads: make([]int64, k.NumCores()),
	}
	for c := 0; c < k.NumCores(); c++ {
		s.lens[c] = k.RunqueueLen(arch.CoreID(c))
		s.loads[c] = k.CoreLoad(arch.CoreID(c))
	}
	return s
}

func assertRunqueuesUnchanged(t *testing.T, k *Kernel, before rqSnapshot, ctx string) {
	t.Helper()
	for c := 0; c < k.NumCores(); c++ {
		if got := k.RunqueueLen(arch.CoreID(c)); got != before.lens[c] {
			t.Fatalf("%s: core %d runqueue length changed %d -> %d", ctx, c, before.lens[c], got)
		}
		if got := k.CoreLoad(arch.CoreID(c)); got != before.loads[c] {
			t.Fatalf("%s: core %d load changed %d -> %d", ctx, c, before.loads[c], got)
		}
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants violated: %v", ctx, err)
	}
}

func TestMigrateErrorPathsLeaveRunqueuesUntouched(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, err := k.Spawn(busySpec("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn(busySpec("b")); err != nil {
		t.Fatal(err)
	}
	if err := k.SetAffinity(id, []arch.CoreID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	before := snapshotRunqueues(k)
	migBefore := k.Task(id).Migrations()

	// Out-of-range destination cores: negative and past the last core.
	if err := k.Migrate(id, arch.CoreID(-1)); err == nil {
		t.Fatal("negative core accepted")
	}
	if err := k.Migrate(id, arch.CoreID(k.NumCores())); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	assertRunqueuesUnchanged(t, k, before, "out-of-range core")

	// Destination outside the thread's affinity mask.
	if err := k.Migrate(id, 3); err == nil {
		t.Fatal("migration outside the affinity mask accepted")
	}
	assertRunqueuesUnchanged(t, k, before, "outside affinity mask")

	// Unknown thread id.
	if err := k.Migrate(9999, 0); err == nil {
		t.Fatal("unknown thread accepted")
	}
	assertRunqueuesUnchanged(t, k, before, "unknown thread")

	if got := k.Task(id).Migrations(); got != migBefore {
		t.Fatalf("rejected migrations were counted: %d -> %d", migBefore, got)
	}
}

func TestMigrateExitedThreadRejectedWithoutSideEffects(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	spec := busySpec("finite")
	spec.Repeats = 1
	id, err := k.Spawn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn(busySpec("bg")); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2e9); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).State() != StateFinished {
		t.Fatal("task should have exited")
	}
	before := snapshotRunqueues(k)
	migBefore := k.Task(id).Migrations()
	if err := k.Migrate(id, 1); err == nil {
		t.Fatal("migrating an exited thread accepted")
	}
	assertRunqueuesUnchanged(t, k, before, "exited thread")
	if got := k.Task(id).Migrations(); got != migBefore {
		t.Fatalf("exited thread's migration count changed: %d -> %d", migBefore, got)
	}
}

// refuseAll is a FaultInjector that rejects every migration and passes
// sensing through untouched.
type refuseAll struct{ calls int }

var errRefused = errors.New("refused by test injector")

func (r *refuseAll) FilterEpoch(epoch int, now Time, threads []ThreadSample, cores []CoreEpochSample) ([]ThreadSample, []CoreEpochSample) {
	return threads, cores
}

func (r *refuseAll) MigrateFault(now Time, id ThreadID, dst arch.CoreID) error {
	r.calls++
	return errRefused
}

func TestInjectedMigrateRefusalLeavesAccountingUnchanged(t *testing.T) {
	m, err := machine.New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	inj := &refuseAll{}
	cfg := DefaultConfig()
	cfg.Faults = inj
	k, err := New(m, &noopBalancer{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := k.Spawn(busySpec("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	before := snapshotRunqueues(k)
	migBefore := k.Task(id).Migrations()
	dst := arch.CoreID((int(k.Task(id).Core()) + 1) % k.NumCores())
	if err := k.Migrate(id, dst); !errors.Is(err, errRefused) {
		t.Fatalf("want the injector's refusal, got %v", err)
	}
	if inj.calls != 1 {
		t.Fatalf("injector consulted %d times, want 1", inj.calls)
	}
	assertRunqueuesUnchanged(t, k, before, "injected refusal")
	if got := k.Task(id).Migrations(); got != migBefore {
		t.Fatalf("refused migration was counted: %d -> %d", migBefore, got)
	}
	// Invalid requests must fail on their own validation before the
	// injector is consulted.
	if err := k.Migrate(id, arch.CoreID(99)); err == nil || errors.Is(err, errRefused) {
		t.Fatalf("invalid core should fail validation, got %v", err)
	}
	if inj.calls != 1 {
		t.Fatal("injector consulted for an invalid request")
	}
}
