package kernel

import (
	"errors"
	"fmt"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
)

// kick wakes a sleeping core so it can dispatch newly enqueued work.
// Sleep time and gated leakage energy are accounted on exit from the
// quiescent state.
func (k *Kernel) kick(c arch.CoreID) {
	cr := &k.cores[c]
	if !cr.sleeping {
		return
	}
	k.accountSleep(cr, k.now)
	cr.sleeping = false
	k.emit(TraceEvent{At: k.now, Kind: TraceCoreBusy, Core: c, Thread: -1})
	k.dispatch(c)
}

// accountSleep closes the core's quiescent interval at time t.
func (k *Kernel) accountSleep(cr *coreRun, t Time) {
	dur := t - cr.sleepStart
	if dur <= 0 {
		return
	}
	tid := k.plat.TypeID(cr.id)
	e := k.mach.PowerModels().ForType(tid).SleepW() * float64(dur) * 1e-9
	cr.sleepNs += dur
	cr.energyJ += e
	_ = k.bank.RecordSleep(int(cr.id), dur, e)
}

// dispatch picks and starts the next task on core c, or puts the core
// to sleep when the runqueue is empty. It must only be called when the
// core has no current task.
func (k *Kernel) dispatch(c arch.CoreID) {
	cr := &k.cores[c]
	if cr.current != nil {
		return // already running; the slice-end event will re-dispatch
	}
	t := k.pickNext(c)
	if t == nil {
		if !cr.sleeping {
			cr.sleeping = true
			cr.sleepStart = k.now
			k.emit(TraceEvent{At: k.now, Kind: TraceCoreIdle, Core: c, Thread: -1})
		}
		return
	}
	t.taskState = StateRunning
	t.pelt.Transition(k.now, true, true)
	cr.current = t
	// pickNext just removed t from the queue and current is nil, so t
	// is never accounted here.
	slice := k.timesliceCounted(t, c, false)
	debt := t.migrationDebt
	if max := k.horizon - k.now - debt; slice > max {
		slice = max
	}
	if slice <= 0 {
		// Horizon reached: park the task back on the runqueue; the core
		// stays awake (current == nil, not sleeping) and is re-dispatched
		// if Run is called again with a later horizon.
		t.taskState = StateRunnable
		cr.current = nil
		cr.runqWeight += t.weight
		k.rqInsert(cr, t)
		return
	}
	t.migrationDebt = 0
	if err := k.mach.ExecSliceOnCore(&cr.pending, t.state, c, slice); err != nil {
		// Impossible for a non-finished task and positive slice; fail
		// loudly rather than corrupt accounting.
		panic(fmt.Sprintf("kernel: ExecSlice: %v", err)) //sbvet:allow hotpath(formats only while crashing on corrupt accounting)
	}
	r := &cr.pending
	if debt > 0 {
		// Cold-cache debt after migration: stall time at idle-activity
		// power before the slice proper.
		ph := t.state.CurrentPhase()
		tid := k.plat.TypeID(c)
		r.EnergyJ += k.mach.PowerModels().ForType(tid).BusyPower(0, ph) * float64(debt) * 1e-9
		r.CyclesIdle += uint64(float64(debt) * k.plat.Type(c).FreqMHz / 1000)
		r.DurNs += debt
	}
	cr.sliceSeq++
	endAt := k.now + r.DurNs
	if endAt <= k.now {
		endAt = k.now + 1
	}
	k.push(event{at: endAt, kind: evSliceEnd, core: c, sliceSeq: cr.sliceSeq})
}

// handleSliceEnd performs context-switch accounting for the slice that
// just expired on core c, then re-dispatches.
func (k *Kernel) handleSliceEnd(c arch.CoreID, sliceSeq uint64) {
	cr := &k.cores[c]
	if cr.current == nil || sliceSeq != cr.sliceSeq {
		return // stale event
	}
	t := cr.current
	cr.current = nil
	cr.switches++
	res := &cr.pending
	dur := res.DurNs

	// Counter sampling at schedule() granularity (Section 5.1).
	_ = k.bank.RecordSlice(int(t.ID), int(c), hpc.Counters{
		RunNs:              dur,
		Instructions:       res.Instructions,
		MemInstructions:    res.MemInstructions,
		BranchInstructions: res.BranchInstructions,
		CyclesBusy:         res.CyclesBusy,
		CyclesIdle:         res.CyclesIdle,
		L1IMisses:          res.L1IMisses,
		L1DMisses:          res.L1DMisses,
		BranchMispredicts:  res.BranchMispredicts,
		ITLBMisses:         res.ITLBMisses,
		DTLBMisses:         res.DTLBMisses,
		LLCMisses:          res.LLCMisses,
		MemBytes:           res.MemBytes,
		EnergyJ:            res.EnergyJ,
	})

	k.emit(TraceEvent{At: k.now, Kind: TraceSlice, Core: c, Thread: t.ID, DurNs: dur, Instr: res.Instructions})

	cr.busyNs += dur
	cr.instr += res.Instructions
	cr.energyJ += res.EnergyJ
	t.totalRunNs += dur
	t.epochRunNs += dur
	t.totalInstr += res.Instructions
	t.totalEnergyJ += res.EnergyJ
	t.chargeVruntime(dur)

	// Apply a pending migration requested while the task ran.
	dst := t.core
	if t.pendingCore >= 0 {
		dst = t.pendingCore
		t.pendingCore = -1
		if dst != t.core {
			t.migrations++
			k.migrations++
			t.migrationDebt = k.cfg.MigrationPenaltyNs
			k.emit(TraceEvent{At: k.now, Kind: TraceMigrate, Core: dst, Thread: t.ID})
		}
	}

	switch {
	case res.Finished:
		t.taskState = StateFinished
		t.finishedAt = k.now
		t.accrueRunnable(k.now)
		t.pelt.Transition(k.now, false, false)
		k.exited = append(k.exited, t.ID) //sbvet:allow hotpath(exit backlog drains at every epoch boundary; capacity reaches one epoch's exits and is reused)
		k.emit(TraceEvent{At: k.now, Kind: TraceFinish, Core: c, Thread: t.ID})
	case res.SleepNs > 0:
		t.taskState = StateSleeping
		t.core = dst
		t.accrueRunnable(k.now)
		t.pelt.Transition(k.now, false, false)
		k.emit(TraceEvent{At: k.now, Kind: TraceSleep, Core: dst, Thread: t.ID, DurNs: res.SleepNs})
		k.push(event{at: k.now + res.SleepNs, kind: evWakeup, task: t.ID})
	default:
		t.pelt.Transition(k.now, true, false)
		k.enqueue(t, dst)
		if dst != c {
			k.kick(dst)
		}
	}
	k.dispatch(c)
}

// handleWakeup returns a sleeping task to its core's runqueue.
func (k *Kernel) handleWakeup(id ThreadID) {
	t := k.taskByID(id)
	if t == nil || t.taskState != StateSleeping {
		return
	}
	t.runnableSince = k.now
	t.pelt.Transition(k.now, true, false)
	k.emit(TraceEvent{At: k.now, Kind: TraceWake, Core: t.core, Thread: t.ID})
	k.enqueue(t, t.core)
	k.kick(t.core)
}

// handleEpoch snapshots the epoch's sensing data, invokes the balancer
// (the reimplemented rebalance_domains()), and resets per-epoch state.
//
//sbvet:hotpath
func (k *Kernel) handleEpoch() {
	k.epochs++
	k.emit(TraceEvent{At: k.now, Kind: TraceEpoch, Core: -1, Thread: -1})
	// Flush in-progress quiescent intervals so the epoch sample sees
	// them (the running slices' counters land in the next epoch, as on
	// real hardware where counters are read at context switch).
	for i := range k.cores {
		cr := &k.cores[i]
		if cr.sleeping {
			k.accountSleep(cr, k.now)
			cr.sleepStart = k.now
		}
	}
	// Flush runnable-time and tracked-load accounting so the balancer
	// sees up-to-date utilisation. Iterate the spawn-order slice, not the
	// task map: allocation-free and deterministic.
	for _, id := range k.order {
		t := k.tasks[id]
		if t.taskState == StateRunnable || t.taskState == StateRunning {
			t.accrueRunnable(k.now)
			t.runnableSince = k.now
		}
		t.pelt.Observe(k.now)
	}
	threads, cores := k.bank.Snapshot()
	// Slots of tasks that exited during the epoch are reclaimed now that
	// their final slices are safely copied into the snapshot arenas.
	for _, id := range k.exited {
		k.bank.ReleaseThread(int(id))
	}
	k.exited = k.exited[:0]
	if k.cfg.Faults != nil {
		// Sensor faults degrade only what the balancer observes; the
		// true samples above already fed the kernel's own accounting.
		threads, cores = k.cfg.Faults.FilterEpoch(k.epochs, k.now, threads, cores)
	}
	k.balancer.Rebalance(k, k.now, threads, cores)
	for _, id := range k.order {
		t := k.tasks[id]
		t.epochRunNs = 0
		t.epochRunnableNs = 0
	}
	k.nextEpoch += k.cfg.EpochNs
}

// accrueRunnable adds the elapsed runnable interval ending at now.
func (t *Task) accrueRunnable(now Time) {
	if d := now - t.runnableSince; d > 0 {
		t.epochRunnableNs += d
	}
	t.runnableSince = now
}

// Run advances the simulation until the given absolute time. It may be
// called repeatedly with increasing horizons; state (queues, sleeping
// tasks, pending wakeups) carries over.
func (k *Kernel) Run(until Time) error {
	if until <= k.now {
		return errors.New("kernel: Run horizon not in the future")
	}
	if k.nextEpoch == 0 {
		k.nextEpoch = k.now + k.cfg.EpochNs
	}
	k.horizon = until
	// (Re-)dispatch cores that have queued work but no running slice —
	// initial spawns before the first Run, or cores parked at a previous
	// horizon.
	for i := range k.cores {
		cr := &k.cores[i]
		if cr.current == nil && cr.runqHead < len(cr.runq) {
			if cr.sleeping {
				k.kick(arch.CoreID(i))
			} else {
				k.dispatch(arch.CoreID(i))
			}
		}
	}

	for {
		evAt, haveEv := k.peekTime()
		// Epoch ticks interleave deterministically with queue events;
		// ties resolve in favour of the already-queued event, matching a
		// timer interrupt arriving after the context switch completes.
		if k.nextEpoch <= until && (!haveEv || k.nextEpoch < evAt) {
			k.now = k.nextEpoch
			k.handleEpoch()
			continue
		}
		if !haveEv || evAt > until {
			break
		}
		e, _ := k.pop()
		if e.at > k.now {
			k.now = e.at
		}
		switch e.kind {
		case evSliceEnd:
			k.handleSliceEnd(e.core, e.sliceSeq)
		case evWakeup:
			k.handleWakeup(e.task)
		}
	}
	// Close the horizon: account sleep up to `until` on quiescent cores.
	k.now = until
	for i := range k.cores {
		cr := &k.cores[i]
		if cr.sleeping {
			k.accountSleep(cr, until)
			cr.sleepStart = until
		}
	}
	return nil
}
