// Package kernel is the reproduction's substitute for the Linux 2.6.x
// scheduling subsystem the paper modifies: a discrete-event simulator of
// per-core CFS (completely fair scheduler) runqueues with nice-weighted
// timeslices and virtual runtimes, task fork/sleep/wakeup/exit, counter
// sampling at schedule() granularity, thread migration via an
// allowed-CPU assignment, and a pluggable load-balancer hook invoked
// once per SmartBalance epoch — the reimplemented rebalance_domains() of
// Section 5.1.
//
// Within a core, scheduling is plain CFS exactly as the paper keeps it
// ("we use the standard Linux CFS to perform scheduling of the threads
// allocated to the same core"); all policy differences between the
// vanilla kernel, ARM GTS, and SmartBalance live behind the Balancer
// interface.
//
// # Fidelity notes
//
// Deliberate simplifications relative to a real Linux kernel, none of
// which change what the balancers can observe or decide:
//
//   - No wakeup preemption: a woken task waits for the running slice to
//     end (at most one timeslice) instead of preempting immediately.
//   - No wake-time idle stealing (select_idle_sibling): a waking task
//     returns to its assigned core; cross-core movement is the
//     balancers' job, at epoch granularity.
//   - One flat scheduling domain: the vanilla balancer balances across
//     all cores directly rather than through a domain hierarchy.
//   - Migration cost is modelled as a fixed cold-cache stall charged to
//     the first slice on the new core.
package kernel

import (
	"errors"
	"fmt"
	"math"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/machine"
	"smartbalance/internal/pelt"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

// Time is simulated time in nanoseconds.
type Time = int64

// ThreadID identifies a task within one kernel instance.
type ThreadID int

// TaskState enumerates the lifecycle states of a task.
type TaskState int

// Task lifecycle states.
const (
	StateRunnable TaskState = iota // on a runqueue, waiting for the CPU
	StateRunning                   // currently executing a slice
	StateSleeping                  // blocked in a sleep/wait period
	StateFinished                  // exited
)

// String returns the state name.
func (s TaskState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateFinished:
		return "finished"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// nice0Load is Linux's NICE_0_LOAD: the weight of a nice-0 task.
const nice0Load = 1024

// WeightForNice returns the CFS load weight for a nice level, following
// the kernel's ~1.25x-per-level rule.
func WeightForNice(nice int) int64 {
	w := 1024 * math.Pow(1.25, float64(-nice))
	if w < 15 {
		w = 15
	}
	return int64(w)
}

// Task is the kernel's task entity ("processes and threads are all
// treated as a task entity and scheduled independently").
type Task struct {
	ID    ThreadID
	Spec  *workload.ThreadSpec
	state *machine.ThreadState

	taskState TaskState
	core      arch.CoreID // runqueue the task belongs (or will return) to
	weight    int64
	vruntime  int64 // weighted virtual runtime, ns-scaled

	// pendingCore, when >= 0, is a migration requested while the task
	// was running; applied at the next context switch — the
	// set_cpus_allowed_ptr() path of Section 5.1.
	pendingCore arch.CoreID

	// migrationDebt is stall time charged before the first slice on a
	// new core (cold caches after migration).
	migrationDebt int64

	// Lifetime statistics.
	spawnedAt    Time
	finishedAt   Time
	totalRunNs   int64
	totalInstr   uint64
	totalEnergyJ float64
	migrations   int

	// epochRunNs is run time within the current epoch; epochRunnableNs
	// additionally counts time spent waiting on a runqueue. The latter
	// is the utilisation (tracked-load) signal GTS-style balancers
	// consume; both reset at each epoch tick.
	epochRunNs      int64
	epochRunnableNs int64
	runnableSince   Time

	// pelt tracks the Linux-style decayed runnable/running averages —
	// the signal GTS-class balancers consume.
	pelt pelt.Tracker

	// allowed is the CPU-affinity mask (nil = every core allowed). Set
	// via Kernel.SetAffinity; Migrate refuses disallowed destinations.
	allowed []bool
}

// State returns the task's lifecycle state.
func (t *Task) State() TaskState { return t.taskState }

// Core returns the core the task is currently assigned to.
func (t *Task) Core() arch.CoreID { return t.core }

// Weight returns the CFS load weight.
func (t *Task) Weight() int64 { return t.weight }

// TotalInstructions returns the instructions retired so far.
func (t *Task) TotalInstructions() uint64 { return t.totalInstr }

// TotalRunNs returns the accumulated execution time.
func (t *Task) TotalRunNs() int64 { return t.totalRunNs }

// Migrations returns how many times the task has changed cores.
func (t *Task) Migrations() int { return t.migrations }

// EpochRunNs returns the execution time accumulated since the last
// epoch tick.
func (t *Task) EpochRunNs() int64 { return t.epochRunNs }

// EpochRunnableNs returns the time the task has been runnable (running
// or queued) since the last epoch tick — the utilisation signal
// GTS-style balancers consume. It is flushed by the kernel just before
// each balancer invocation.
func (t *Task) EpochRunnableNs() int64 { return t.epochRunnableNs }

// TrackedLoad returns the PELT-style decayed *runnable* fraction in
// [0, 1] — Linux's load_avg_ratio, the quantity ARM GTS thresholds act
// on. Fresh as of the last epoch boundary or state change.
func (t *Task) TrackedLoad() float64 { return t.pelt.Load() }

// TrackedUtilization returns the PELT-style decayed *running* fraction
// in [0, 1].
func (t *Task) TrackedUtilization() float64 { return t.pelt.Utilization() }

// Utilization returns the runnable fraction of the elapsed epoch in
// [0, 1], given the epoch length.
func (t *Task) Utilization(epochNs int64) float64 {
	if epochNs <= 0 {
		return 0
	}
	u := float64(t.epochRunnableNs) / float64(epochNs)
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// Benchmark returns the owning benchmark name.
func (t *Task) Benchmark() string { return t.Spec.Benchmark }

// IsKernelThread reports whether the task was marked as an OS-internal
// thread at fork (Section 5.1's sched_fork() marking).
func (t *Task) IsKernelThread() bool { return t.Spec.KernelThread }

// MachineState exposes the task's execution-model state. Oracle-mode
// experiments use it to read exact per-core behaviour; policy code must
// treat it as read-only.
func (t *Task) MachineState() *machine.ThreadState { return t.state }

// AllowedOn reports whether the task's affinity mask permits core c.
func (t *Task) AllowedOn(c arch.CoreID) bool {
	if t.allowed == nil {
		return true
	}
	return int(c) < len(t.allowed) && t.allowed[int(c)]
}

// HasAffinity reports whether the task carries an explicit affinity
// mask. Allocation-free probe for hot-path callers that would otherwise
// reach for AllowedMask's defensive copy.
func (t *Task) HasAffinity() bool {
	return t.allowed != nil
}

// AllowedMask returns a copy of the affinity mask, or nil when every
// core is allowed.
func (t *Task) AllowedMask() []bool {
	if t.allowed == nil {
		return nil
	}
	return append([]bool(nil), t.allowed...)
}

// SetAffinity restricts the task to the given cores (the
// sched_setaffinity / cpuset analogue). The set must be non-empty and
// valid; if the task currently sits on a now-disallowed core it is
// migrated to the first allowed one.
func (k *Kernel) SetAffinity(id ThreadID, cores []arch.CoreID) error {
	t := k.taskByID(id)
	if t == nil {
		return fmt.Errorf("kernel: affinity for unknown task %d", id)
	}
	if t.taskState == StateFinished {
		return fmt.Errorf("kernel: affinity for finished task %d", id)
	}
	if len(cores) == 0 {
		return errors.New("kernel: empty affinity set")
	}
	mask := make([]bool, len(k.cores))
	first := arch.CoreID(-1)
	for _, c := range cores {
		if int(c) < 0 || int(c) >= len(k.cores) {
			return fmt.Errorf("kernel: affinity core %d out of range", c)
		}
		if !mask[c] && first < 0 {
			first = c
		}
		mask[c] = true
	}
	t.allowed = mask
	// Cancel a pending migration that the new mask forbids.
	if t.pendingCore >= 0 && !t.AllowedOn(t.pendingCore) {
		t.pendingCore = -1
	}
	if !t.AllowedOn(t.core) {
		return k.Migrate(id, first)
	}
	return nil
}

// ClearAffinity removes the task's affinity restriction.
func (k *Kernel) ClearAffinity(id ThreadID) error {
	t := k.taskByID(id)
	if t == nil {
		return fmt.Errorf("kernel: affinity for unknown task %d", id)
	}
	t.allowed = nil
	return nil
}

// FaultInjector perturbs what the sensing and migration paths observe,
// without ever touching ground truth: the kernel's own accounting
// (energy, run time, statistics) is computed before injection, so
// faults corrupt only the balancer's view of the machine, exactly like
// a flaky sensor or a transiently refused set_cpus_allowed_ptr() on
// real hardware. Implementations must be deterministic functions of
// their seed and the (simulated-time-ordered) call sequence; the
// canonical implementation lives in internal/fault.
type FaultInjector interface {
	// FilterEpoch maps the epoch's true sensing snapshot to the
	// (possibly degraded) snapshot the balancer receives. epoch counts
	// balancer invocations from 1; now is simulated time. The injector
	// owns the returned map/slice; it must not mutate the inputs it
	// does not return.
	// The snapshot slices follow the hpc.Bank.Snapshot contract: sorted
	// ascending by thread id, valid until the next epoch's snapshot.
	FilterEpoch(epoch int, now Time, threads []ThreadSample, cores []CoreEpochSample) ([]ThreadSample, []CoreEpochSample)
	// MigrateFault returns a non-nil error when a migration request
	// that passed all validity checks should be rejected anyway
	// (transient kernel refusal). A nil return lets the migration
	// proceed.
	MigrateFault(now Time, id ThreadID, dst arch.CoreID) error
}

// ThreadEpochSample and CoreEpochSample are re-exported so fault
// injectors can be written against kernel types alone.
type (
	// ThreadEpochSample is hpc.ThreadEpochSample.
	ThreadEpochSample = hpc.ThreadEpochSample
	// ThreadSample is hpc.ThreadSample.
	ThreadSample = hpc.ThreadSample
	// CoreEpochSample is hpc.CoreEpochSample.
	CoreEpochSample = hpc.CoreEpochSample
)

// Config parameterises a kernel instance.
type Config struct {
	// SchedLatencyNs is the CFS target latency: every runnable task runs
	// once within this window when few tasks are present.
	SchedLatencyNs int64
	// MinGranularityNs is the smallest timeslice CFS will hand out.
	MinGranularityNs int64
	// EpochNs is the SmartBalance epoch T_Epoch covering L CFS periods
	// (60 ms in the paper's evaluation).
	EpochNs int64
	// MigrationPenaltyNs is stall time charged to a task's first slice
	// on a new core (cold-cache effect).
	MigrationPenaltyNs int64
	// Noise configures the power sensors.
	Noise hpc.Noise
	// Seed drives all kernel-internal randomness (initial placement).
	Seed uint64
	// Faults, when non-nil, injects sensing and migration faults (see
	// FaultInjector). Nil runs with perfect sensing.
	Faults FaultInjector
	// EventQueue selects the event-queue implementation. The zero value
	// is the calendar queue; both drain the identical (at, seq) order,
	// so the choice never changes simulation output.
	EventQueue EventQueueKind
}

// DefaultConfig returns the configuration used across the paper's
// experiments.
func DefaultConfig() Config {
	return Config{
		SchedLatencyNs:     12e6,  // 12 ms CFS latency
		MinGranularityNs:   1.5e6, // 1.5 ms minimum slice
		EpochNs:            60e6,  // 60 ms SmartBalance epoch (Section 6.3)
		MigrationPenaltyNs: 50e3,  // 50 us cold-cache penalty
		Seed:               1,
	}
}

// Validate checks configuration sanity.
func (c *Config) Validate() error {
	switch {
	case c.SchedLatencyNs <= 0:
		return errors.New("kernel: non-positive sched latency")
	case c.MinGranularityNs <= 0 || c.MinGranularityNs > c.SchedLatencyNs:
		return errors.New("kernel: min granularity outside (0, sched latency]")
	case c.EpochNs < c.SchedLatencyNs:
		return errors.New("kernel: epoch shorter than one CFS period")
	case c.MigrationPenaltyNs < 0:
		return errors.New("kernel: negative migration penalty")
	case c.EventQueue != EventQueueCalendar && c.EventQueue != EventQueueHeap:
		return errors.New("kernel: unknown event-queue kind")
	}
	return nil
}

// Balancer is the load-balancing policy hook: the reimplementation
// point of Linux's rebalance_domains(). It is called once per epoch
// with the epoch's sensed per-thread and per-core samples and may call
// Kernel.Migrate to move tasks.
type Balancer interface {
	// Name identifies the policy in results tables.
	Name() string
	// Rebalance runs at an epoch boundary. threads holds the counters
	// sampled during the elapsed epoch, sorted ascending by thread id
	// (hpc.FindThread performs the per-task lookup); cores holds the
	// per-core aggregates. Both views are valid until the next epoch.
	Rebalance(k *Kernel, now Time, threads []hpc.ThreadSample, cores []hpc.CoreEpochSample)
}

// coreRun is the per-core scheduling state.
type coreRun struct {
	id   arch.CoreID
	runq []rqEntry // runnable tasks, sorted by (vruntime, seq); current excluded
	// runqHead indexes the first live entry: popping the minimum
	// advances the cursor instead of memmoving the whole queue, and the
	// drained prefix is reclaimed by amortized compaction (see pickNext).
	runqHead int
	// runqWeight is the summed CFS weight of runq, maintained
	// incrementally so CoreLoad and timeslice are O(1).
	runqWeight int64
	current    *Task
	// sliceSeq invalidates stale slice-end events after idling.
	sliceSeq uint64
	// pending is the precomputed outcome of the in-flight slice,
	// consumed at its end event.
	pending    machine.SliceResult
	sleeping   bool
	sleepStart Time

	// Cumulative accounting.
	busyNs   int64
	sleepNs  int64
	instr    uint64
	energyJ  float64
	switches int64
}

// Kernel is one simulated OS instance bound to a machine and a
// balancing policy.
type Kernel struct {
	mach     *machine.Machine
	plat     *arch.Platform
	balancer Balancer
	cfg      Config

	now Time
	seq uint64
	// rqCounter issues Task.rqSeq admission tickets.
	rqCounter uint64
	// Exactly one of the two event queues is active, selected by
	// cfg.EventQueue at construction (DESIGN.md §12).
	useHeap bool
	events  eventQueue
	cal     calendarQueue

	cores []coreRun
	// tasks is indexed by ThreadID: ids are assigned densely from 0 and
	// never reused, so the slice doubles as the id→task map.
	tasks []*Task
	order []ThreadID // spawn order, for deterministic iteration
	// activeScratch backs ActiveTasks between epochs.
	activeScratch []*Task
	// exited buffers tasks that finished since the last epoch boundary;
	// their bank slots are released after the next snapshot.
	exited []ThreadID
	nextID ThreadID

	bank *hpc.Bank
	r    *rng.Rand

	epochs     int
	migrations int

	// horizon caps slice lengths so no event crosses the end of Run;
	// nextEpoch is the time of the next balancer tick.
	horizon   Time
	nextEpoch Time

	// observers receive scheduling trace events; slots are assigned by
	// AddObserver and never reused. setSlot is the slot owned by the
	// single-observer SetObserver compatibility hook (-1 when none).
	observers []Observer
	setSlot   int
}

// New constructs a kernel over machine m with the given balancing
// policy and configuration.
func New(m *machine.Machine, b Balancer, cfg Config) (*Kernel, error) {
	if m == nil {
		return nil, errors.New("kernel: nil machine")
	}
	if b == nil {
		return nil, errors.New("kernel: nil balancer")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plat := m.Platform()
	bank, err := hpc.NewBank(plat.NumCores(), cfg.Noise, cfg.Seed^0xB4153)
	if err != nil {
		return nil, err
	}
	k := &Kernel{
		mach:     m,
		plat:     plat,
		balancer: b,
		cfg:      cfg,
		useHeap:  cfg.EventQueue == EventQueueHeap,
		cores:    make([]coreRun, plat.NumCores()),
		bank:     bank,
		r:        rng.New(cfg.Seed),
		setSlot:  -1,
	}
	if !k.useHeap {
		k.cal = newCalendarQueue(cfg.MinGranularityNs)
	}
	for i := range k.cores {
		k.cores[i] = coreRun{id: arch.CoreID(i), sleeping: true}
	}
	return k, nil
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Platform returns the underlying platform.
func (k *Kernel) Platform() *arch.Platform { return k.plat }

// Machine returns the underlying machine model.
func (k *Kernel) Machine() *machine.Machine { return k.mach }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Balancer returns the installed balancing policy (useful for
// attaching observability to policies that support it).
func (k *Kernel) Balancer() Balancer { return k.balancer }

// Task returns the task with the given id, or nil.
func (k *Kernel) Task(id ThreadID) *Task { return k.taskByID(id) }

// taskByID resolves a thread id against the dense task table; nil for
// ids never assigned.
func (k *Kernel) taskByID(id ThreadID) *Task {
	if id < 0 || int(id) >= len(k.tasks) {
		return nil
	}
	return k.tasks[id]
}

// Tasks returns all tasks in spawn order.
func (k *Kernel) Tasks() []*Task {
	out := make([]*Task, 0, len(k.order))
	for _, id := range k.order {
		out = append(out, k.tasks[id])
	}
	return out
}

// ActiveTasks returns all non-finished tasks in spawn order — "the set
// of threads to be optimized contains all threads active at the
// beginning of each SmartBalance epoch". The returned slice is
// kernel-owned scratch, valid until the next call.
func (k *Kernel) ActiveTasks() []*Task {
	out := k.activeScratch[:0]
	for _, id := range k.order {
		if t := k.tasks[id]; t.taskState != StateFinished {
			out = append(out, t) //sbvet:allow hotpath(kernel-owned scratch; capacity reaches the live task count and is reused every epoch)
		}
	}
	k.activeScratch = out
	return out
}

// NumCores returns the platform core count.
func (k *Kernel) NumCores() int { return len(k.cores) }

// RunqueueLen returns the number of runnable tasks on a core, counting
// the one currently executing.
func (k *Kernel) RunqueueLen(c arch.CoreID) int {
	cr := &k.cores[c]
	n := len(cr.runq) - cr.runqHead
	if cr.current != nil {
		n++
	}
	return n
}

// CoreLoad returns the summed CFS weight of the runnable tasks on a
// core (the vanilla balancer's load metric).
func (k *Kernel) CoreLoad(c arch.CoreID) int64 {
	cr := &k.cores[c]
	w := cr.runqWeight
	if cr.current != nil {
		w += cr.current.weight
	}
	return w
}

// Spawn creates a task from spec at the current simulated time
// (sched_fork analogue). Initial placement goes to the core with the
// fewest runnable tasks, ties broken by id — mirroring fork balancing.
func (k *Kernel) Spawn(spec *workload.ThreadSpec) (ThreadID, error) {
	st, err := k.mach.NewThreadState(spec)
	if err != nil {
		return 0, err
	}
	id := k.nextID
	k.nextID++
	best := arch.CoreID(0)
	bestLen := math.MaxInt
	for i := range k.cores {
		if l := k.RunqueueLen(arch.CoreID(i)); l < bestLen {
			bestLen = l
			best = arch.CoreID(i)
		}
	}
	t := &Task{
		ID:            id,
		Spec:          spec,
		state:         st,
		taskState:     StateRunnable,
		core:          best,
		weight:        WeightForNice(spec.Nice),
		pendingCore:   -1,
		spawnedAt:     k.now,
		runnableSince: k.now,
	}
	k.tasks = append(k.tasks, t)
	k.order = append(k.order, id)
	t.pelt.Transition(k.now, true, false)
	k.emit(TraceEvent{At: k.now, Kind: TraceSpawn, Core: best, Thread: id})
	k.enqueue(t, best)
	k.kick(best)
	return id, nil
}

// Migrate moves a task to the destination core. Runnable tasks move
// immediately; the currently running task is marked and moved at its
// next context switch; sleeping tasks wake up on the new core. This is
// the simulator's set_cpus_allowed_ptr().
func (k *Kernel) Migrate(id ThreadID, dst arch.CoreID) error {
	t := k.taskByID(id)
	if t == nil {
		return fmt.Errorf("kernel: migrate unknown task %d", id) //sbvet:allow hotpath(refused-migration diagnostic; formats only on the rejected-request path)
	}
	if int(dst) < 0 || int(dst) >= len(k.cores) {
		return fmt.Errorf("kernel: migrate to invalid core %d", dst) //sbvet:allow hotpath(refused-migration diagnostic; formats only on the rejected-request path)
	}
	if !t.AllowedOn(dst) {
		return fmt.Errorf("kernel: core %d not in task %d's affinity mask", dst, id) //sbvet:allow hotpath(refused-migration diagnostic; formats only on the rejected-request path)
	}
	if t.taskState != StateFinished && k.cfg.Faults != nil {
		// Injected transient refusal: the request was valid, but the
		// (simulated) kernel rejected it. No state has changed yet, so a
		// refused migration leaves runqueue accounting untouched.
		if err := k.cfg.Faults.MigrateFault(k.now, id, dst); err != nil {
			return err
		}
	}
	switch t.taskState {
	case StateFinished:
		return fmt.Errorf("kernel: migrate finished task %d", id) //sbvet:allow hotpath(refused-migration diagnostic; formats only on the rejected-request path)
	case StateRunning:
		if t.core != dst {
			t.pendingCore = dst
		}
		return nil
	case StateSleeping:
		if t.core != dst {
			t.core = dst
			t.migrations++
			k.migrations++
			t.migrationDebt = k.cfg.MigrationPenaltyNs
			k.emit(TraceEvent{At: k.now, Kind: TraceMigrate, Core: dst, Thread: id})
		}
		return nil
	case StateRunnable:
		if t.core == dst {
			return nil
		}
		k.dequeue(t)
		t.migrations++
		k.migrations++
		t.migrationDebt = k.cfg.MigrationPenaltyNs
		k.emit(TraceEvent{At: k.now, Kind: TraceMigrate, Core: dst, Thread: id})
		k.enqueue(t, dst)
		k.kick(dst)
		return nil
	}
	return fmt.Errorf("kernel: task %d in unexpected state %v", id, t.taskState) //sbvet:allow hotpath(refused-migration diagnostic; formats only on the rejected-request path)
}
