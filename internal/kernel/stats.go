package kernel

import (
	"fmt"
	"sort"
	"strings"

	"smartbalance/internal/arch"
)

// CoreStats is one core's cumulative accounting over the whole run.
type CoreStats struct {
	Core     arch.CoreID
	TypeName string
	BusyNs   int64
	SleepNs  int64
	Instr    uint64
	EnergyJ  float64
	Switches int64
}

// IPS returns the core's average throughput over the observed window.
func (c *CoreStats) IPS(spanNs int64) float64 {
	if spanNs <= 0 {
		return 0
	}
	return float64(c.Instr) / (float64(spanNs) * 1e-9)
}

// PowerW returns the core's average power over the observed window.
func (c *CoreStats) PowerW(spanNs int64) float64 {
	if spanNs <= 0 {
		return 0
	}
	return c.EnergyJ / (float64(spanNs) * 1e-9)
}

// TaskStats is one task's cumulative accounting.
type TaskStats struct {
	ID         ThreadID
	Name       string
	Benchmark  string
	State      TaskState
	RunNs      int64
	Instr      uint64
	EnergyJ    float64
	Migrations int
	SpawnedAt  Time
	FinishedAt Time
}

// RunStats is the complete observable outcome of a simulation run: the
// numbers every figure of the evaluation is computed from.
type RunStats struct {
	Balancer   string
	SpanNs     int64
	Epochs     int
	Migrations int
	Cores      []CoreStats
	Tasks      []TaskStats
}

// TotalInstructions sums retired instructions across cores.
func (s *RunStats) TotalInstructions() uint64 {
	var total uint64
	for i := range s.Cores {
		total += s.Cores[i].Instr
	}
	return total
}

// TotalEnergyJ sums energy across cores (busy, idle, and gated).
func (s *RunStats) TotalEnergyJ() float64 {
	var total float64
	for i := range s.Cores {
		total += s.Cores[i].EnergyJ
	}
	return total
}

// IPS returns aggregate throughput in instructions per second.
func (s *RunStats) IPS() float64 {
	if s.SpanNs <= 0 {
		return 0
	}
	return float64(s.TotalInstructions()) / (float64(s.SpanNs) * 1e-9)
}

// PowerW returns aggregate average power.
func (s *RunStats) PowerW() float64 {
	if s.SpanNs <= 0 {
		return 0
	}
	return s.TotalEnergyJ() / (float64(s.SpanNs) * 1e-9)
}

// EnergyEfficiency returns the paper's headline metric: throughput per
// watt (equivalently, instructions per joule).
func (s *RunStats) EnergyEfficiency() float64 {
	p := s.PowerW()
	if p <= 0 {
		return 0
	}
	return s.IPS() / p
}

// TotalEnergyJ returns the cumulative energy across all cores without
// building a full Stats snapshot — O(cores) and allocation-free, so
// callers that poll energy at a fine cadence (the fleet tier reads it
// every dispatch tick) never pay the per-task snapshot cost.
func (k *Kernel) TotalEnergyJ() float64 {
	var total float64
	for i := range k.cores {
		total += k.cores[i].energyJ
	}
	return total
}

// BenchmarkStats aggregates the tasks of one benchmark.
type BenchmarkStats struct {
	Benchmark string
	Tasks     int
	RunNs     int64
	Instr     uint64
	EnergyJ   float64
}

// IPS returns the benchmark's aggregate throughput over the span.
func (b *BenchmarkStats) IPS(spanNs int64) float64 {
	if spanNs <= 0 {
		return 0
	}
	return float64(b.Instr) / (float64(spanNs) * 1e-9)
}

// ByBenchmark groups the per-task statistics by owning benchmark,
// sorted by name — the per-application view of a mixed run.
func (s *RunStats) ByBenchmark() []BenchmarkStats {
	agg := map[string]*BenchmarkStats{}
	var names []string
	for i := range s.Tasks {
		t := &s.Tasks[i]
		b := agg[t.Benchmark]
		if b == nil {
			b = &BenchmarkStats{Benchmark: t.Benchmark}
			agg[t.Benchmark] = b
			names = append(names, t.Benchmark)
		}
		b.Tasks++
		b.RunNs += t.RunNs
		b.Instr += t.Instr
		b.EnergyJ += t.EnergyJ
	}
	sort.Strings(names)
	out := make([]BenchmarkStats, 0, len(names))
	for _, n := range names {
		out = append(out, *agg[n])
	}
	return out
}

// String renders a compact human-readable summary.
func (s *RunStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "balancer=%s span=%.1fms instr=%.3g power=%.3gW IPS/W=%.4g migrations=%d epochs=%d\n",
		s.Balancer, float64(s.SpanNs)/1e6, float64(s.TotalInstructions()), s.PowerW(), s.EnergyEfficiency(),
		s.Migrations, s.Epochs)
	for i := range s.Cores {
		c := &s.Cores[i]
		fmt.Fprintf(&sb, "  core %d (%s): busy=%.1fms sleep=%.1fms instr=%.3g energy=%.4gJ\n",
			c.Core, c.TypeName, float64(c.BusyNs)/1e6, float64(c.SleepNs)/1e6, float64(c.Instr), c.EnergyJ)
	}
	return sb.String()
}

// Stats snapshots the cumulative run statistics at the current time.
func (k *Kernel) Stats() *RunStats {
	s := &RunStats{
		Balancer:   k.balancer.Name(),
		SpanNs:     k.now,
		Epochs:     k.epochs,
		Migrations: k.migrations,
	}
	for i := range k.cores {
		cr := &k.cores[i]
		s.Cores = append(s.Cores, CoreStats{
			Core:     cr.id,
			TypeName: k.plat.Type(cr.id).Name,
			BusyNs:   cr.busyNs,
			SleepNs:  cr.sleepNs,
			Instr:    cr.instr,
			EnergyJ:  cr.energyJ,
			Switches: cr.switches,
		})
	}
	for _, id := range k.order {
		t := k.tasks[id]
		s.Tasks = append(s.Tasks, TaskStats{
			ID:         t.ID,
			Name:       t.Spec.Name,
			Benchmark:  t.Spec.Benchmark,
			State:      t.taskState,
			RunNs:      t.totalRunNs,
			Instr:      t.totalInstr,
			EnergyJ:    t.totalEnergyJ,
			Migrations: t.migrations,
			SpawnedAt:  t.spawnedAt,
			FinishedAt: t.finishedAt,
		})
	}
	return s
}

// CheckInvariants verifies internal consistency: every non-finished
// task is in exactly one scheduler location, runqueue membership
// matches task state, and accounting is non-negative. Tests call this
// after stress runs.
func (k *Kernel) CheckInvariants() error {
	seen := make(map[ThreadID]string)
	for i := range k.cores {
		cr := &k.cores[i]
		if cr.current != nil {
			t := cr.current
			if t.taskState != StateRunning {
				return fmt.Errorf("kernel: current task %d on core %d in state %v", t.ID, i, t.taskState)
			}
			if t.core != cr.id {
				return fmt.Errorf("kernel: current task %d core field %d != %d", t.ID, t.core, cr.id)
			}
			if loc, dup := seen[t.ID]; dup {
				return fmt.Errorf("kernel: task %d in two places (%s and core %d current)", t.ID, loc, i)
			}
			seen[t.ID] = fmt.Sprintf("core %d current", i)
		}
		for _, e := range cr.runq[cr.runqHead:] {
			t := k.tasks[e.id]
			if t.taskState != StateRunnable {
				return fmt.Errorf("kernel: queued task %d in state %v", t.ID, t.taskState)
			}
			if t.core != cr.id {
				return fmt.Errorf("kernel: queued task %d core field %d != queue %d", t.ID, t.core, cr.id)
			}
			if loc, dup := seen[t.ID]; dup {
				return fmt.Errorf("kernel: task %d in two places (%s and core %d queue)", t.ID, loc, i)
			}
			seen[t.ID] = fmt.Sprintf("core %d queue", i)
		}
		if cr.busyNs < 0 || cr.sleepNs < 0 || cr.energyJ < 0 {
			return fmt.Errorf("kernel: negative accounting on core %d", i)
		}
		if cr.sleeping && cr.current != nil {
			return fmt.Errorf("kernel: core %d sleeping while running", i)
		}
	}
	for i, t := range k.tasks {
		id := ThreadID(i)
		switch t.taskState {
		case StateRunnable, StateRunning:
			if _, ok := seen[id]; !ok {
				return fmt.Errorf("kernel: %v task %d not on any queue", t.taskState, id)
			}
		case StateSleeping, StateFinished:
			if loc, ok := seen[id]; ok {
				return fmt.Errorf("kernel: %v task %d found at %s", t.taskState, id, loc)
			}
		}
	}
	return nil
}
