package kernel

import (
	"container/heap"

	"smartbalance/internal/arch"
)

// eventKind enumerates discrete-event types.
type eventKind int

const (
	evSliceEnd eventKind = iota // a core's current timeslice expires
	evWakeup                    // a sleeping task becomes runnable
)

// event is one entry of the simulation event queue. Ordering is by time
// then by insertion sequence, which makes the simulation fully
// deterministic.
type event struct {
	at   Time
	seq  uint64
	kind eventKind

	core     arch.CoreID // evSliceEnd target
	sliceSeq uint64      // staleness guard for evSliceEnd
	task     ThreadID    // evWakeup target
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// push schedules an event; seq assignment keeps ordering deterministic.
func (k *Kernel) push(e event) {
	e.seq = k.seq
	k.seq++
	heap.Push(&k.events, e)
}

// pop removes and returns the earliest event; ok is false when empty.
func (k *Kernel) pop() (event, bool) {
	if len(k.events) == 0 {
		return event{}, false
	}
	return heap.Pop(&k.events).(event), true
}

// peekTime returns the time of the earliest pending event.
func (k *Kernel) peekTime() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}
