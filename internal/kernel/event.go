package kernel

import (
	"math/bits"

	"smartbalance/internal/arch"
)

// eventKind enumerates discrete-event types.
type eventKind int

const (
	evSliceEnd eventKind = iota // a core's current timeslice expires
	evWakeup                    // a sleeping task becomes runnable
)

// event is one entry of the simulation event queue. Ordering is by time
// then by insertion sequence, which makes the simulation fully
// deterministic.
type event struct {
	at   Time
	seq  uint64
	kind eventKind

	core     arch.CoreID // evSliceEnd target
	sliceSeq uint64      // staleness guard for evSliceEnd
	task     ThreadID    // evWakeup target
}

// eventLess is the queue's total order: (at, seq) lexicographic. seq is
// unique per kernel, so the order has no ties — any correct queue
// implementation drains an identical stream.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// EventQueueKind selects the event-queue implementation backing the
// simulation. Both drain events in the identical (at, seq) total order,
// so equal-seed runs are byte-identical under either; the calendar
// queue is O(1) amortized and the default, the binary heap is retained
// for the equivalence suite and as a conservative fallback.
type EventQueueKind int

const (
	// EventQueueCalendar is the calendar-queue scheduler (Brown 1988):
	// a ring of time-bucketed, sorted lanes with O(1) amortized
	// push/pop, sized and widened automatically from the live event
	// population.
	EventQueueCalendar EventQueueKind = iota
	// EventQueueHeap is the original binary min-heap.
	EventQueueHeap
)

// String names the queue kind.
func (q EventQueueKind) String() string {
	switch q {
	case EventQueueCalendar:
		return "calendar"
	case EventQueueHeap:
		return "heap"
	default:
		return "unknown"
	}
}

// eventQueue is a binary min-heap of events ordered by (at, seq). The
// sift routines are hand-rolled rather than delegated to container/heap
// because heap.Push/Pop traffic in `any`, boxing every event on the hot
// scheduling path.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	return eventLess(&q[i], &q[j])
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e) //sbvet:allow hotpath(event-queue capacity reaches the peak outstanding-event count once and is reused; pop truncates in place)
	q.siftUp(len(*q) - 1)
}

func (q *eventQueue) pop() (event, bool) {
	n := len(*q)
	if n == 0 {
		return event{}, false
	}
	e := (*q)[0]
	(*q)[0] = (*q)[n-1]
	*q = (*q)[:n-1]
	q.siftDown(0)
	return e, true
}

func (q eventQueue) peekTime() (Time, bool) {
	if len(q) == 0 {
		return 0, false
	}
	return q[0].at, true
}

// Calendar-queue sizing constants.
const (
	calMinBuckets = 16 // smallest ring; shrink stops here
	// calGrowFactor / calShrinkFactor bound the load factor: the ring
	// doubles above two events per bucket and halves below one half.
	calGrowFactor   = 2
	calShrinkDenom  = 4
	calInitialWidth = Time(1 << 20) // ~1 ms default lane width before the first resize
)

// calendarQueue is a calendar-queue priority queue over events (Randy
// Brown, CACM 1988): a power-of-two ring of buckets, each a "day" of
// fixed time width, holding its events sorted ascending by (at, seq).
// Bucket index is (at/width) mod nbuckets; dequeue scans forward from
// the current day and pops the head of the first bucket whose head
// falls inside the day's window, giving O(1) amortized operations when
// the width tracks the mean event spacing — which resize() maintains by
// re-deriving width from the live population's span whenever the load
// factor leaves [1/4, 2].
//
// Determinism contract (DESIGN.md §12): pop order is exactly the
// (at, seq) total order the heap implements. Within a bucket the sorted
// insert keeps equal-`at` events in seq order; across buckets the
// window scan visits days in increasing time order, and a resize only
// re-buckets events — their relative (at, seq) order inside any bucket
// is rebuilt by the same sorted insert, so no resize can reorder
// equal-`at` events.
type calendarQueue struct {
	buckets [][]event
	// heads[i] is the index of bucket i's first live entry: dequeue
	// advances the head instead of shifting the slice, so popping from a
	// bucket is O(1) even when thousands of same-timestamp events (e.g.
	// the spawn-time wakeup burst) share one day. The dead prefix is
	// reclaimed when the bucket drains or by amortized compaction.
	heads []int
	mask  int  // len(buckets) - 1; len is a power of two
	width Time // duration of one bucket's window ("day")
	size  int

	// cur/curTop define the scan position: bucket cur holds the window
	// [curTop-width, curTop). Invariant: no queued event has
	// at < curTop - width, maintained by rewinding on push.
	cur    int
	curTop Time

	// lowPops counts consecutive pops taken while the population sits
	// below the shrink threshold. A steady-state population breathes
	// every epoch (sleep wakeups accumulate, then drain), and shrinking
	// on the first undershoot would walk the ring down and back up a
	// ladder of geometries each epoch — ~8 resizes/epoch of pure churn.
	// Shrinking only after a full ring's worth of sustained-low pops
	// keeps the geometry stable through the dip while still letting a
	// genuinely shrunken population compact its ring.
	lowPops int

	// spares[k] retains the retired ring of 1<<k buckets, so when a
	// resize does revisit a geometry it swaps back into the retired ring
	// and reuses every bucket's capacity instead of reallocating. Total
	// retained memory is bounded by twice the largest ring.
	spares []calRing
}

// calRing is one retired ring geometry kept for reuse across resizes.
type calRing struct {
	buckets [][]event
	heads   []int
}

func newCalendarQueue(widthHint Time) calendarQueue {
	if widthHint <= 0 {
		widthHint = calInitialWidth
	}
	q := calendarQueue{width: widthHint}
	q.alloc(calMinBuckets)
	q.curTop = q.width
	return q
}

func (q *calendarQueue) alloc(nbuckets int) {
	q.buckets = make([][]event, nbuckets) //sbvet:allow hotpath(amortized calendar resize — rings double/halve O(log n) times over a run and are population-sized)
	q.heads = make([]int, nbuckets)       //sbvet:allow hotpath(amortized calendar resize — rings double/halve O(log n) times over a run and are population-sized)
	q.mask = nbuckets - 1
}

// bucketOf returns the ring index of an event time under the current
// geometry.
func (q *calendarQueue) bucketOf(at Time) int {
	return int((at / q.width) & Time(q.mask))
}

// windowTop returns the end of the day window containing at.
func (q *calendarQueue) windowTop(at Time) Time {
	return (at/q.width + 1) * q.width
}

// push inserts an event, keeping its bucket sorted by (at, seq) and
// rewinding the scan position when the event lands in an earlier day
// than the one being scanned.
func (q *calendarQueue) push(e event) {
	idx := q.bucketOf(e.at)
	b := q.buckets[idx]
	h := q.heads[idx]
	// Binary search the live region [h, len) for the insertion point:
	// first entry ordered after e. seq increases monotonically, so
	// equal-at events insert after their predecessors (usually a pure
	// append) and FIFO order within a timestamp is free.
	lo, hi := h, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(&b[mid], &e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == h && h > 0 {
		// The slot just before the live region is dead: O(1) prepend.
		q.heads[idx] = h - 1
		b[h-1] = e
	} else {
		b = append(b, event{}) //sbvet:allow hotpath(bucket capacity reaches its steady occupancy once and is reused; pop truncates in place)
		copy(b[lo+1:], b[lo:])
		b[lo] = e
		q.buckets[idx] = b
	}
	q.size++
	if eTop := q.windowTop(e.at); eTop < q.curTop {
		q.cur, q.curTop = idx, eTop
	}
	if q.size > calGrowFactor*(q.mask+1) {
		q.resize((q.mask + 1) * 2)
	}
}

// scan advances the (cur, curTop) cursor to the first day whose bucket
// head falls inside its window — i.e. to the bucket holding the global
// minimum. Must only be called on a non-empty queue. Empty-day advances
// are one length check each; after a full fruitless cycle (the
// population is sparser than one ring revolution) it locates the
// minimum directly and jumps the cursor to its day.
func (q *calendarQueue) scan() {
	for i := 0; i <= q.mask; i++ {
		if b, h := q.buckets[q.cur], q.heads[q.cur]; h < len(b) && b[h].at < q.curTop {
			return
		}
		q.cur = (q.cur + 1) & q.mask
		q.curTop += q.width
	}
	// Direct search: the sorted buckets make the candidate set the
	// bucket heads.
	var min *event
	minIdx := 0
	for i := range q.buckets {
		if b, h := q.buckets[i], q.heads[i]; h < len(b) && (min == nil || eventLess(&b[h], min)) {
			min = &b[h]
			minIdx = i
		}
	}
	q.cur = minIdx
	q.curTop = q.windowTop(min.at)
}

// pop removes and returns the earliest event in (at, seq) order.
func (q *calendarQueue) pop() (event, bool) {
	if q.size == 0 {
		return event{}, false
	}
	q.scan()
	b := q.buckets[q.cur]
	h := q.heads[q.cur]
	e := b[h]
	h++
	switch {
	case h == len(b):
		// Drained: reset to reuse the full capacity.
		q.buckets[q.cur] = b[:0]
		q.heads[q.cur] = 0
	case h >= 32 && 2*h >= len(b):
		// Amortized compaction: once the dead prefix dominates, slide
		// the live tail down. Each entry moves at most once per halving.
		n := copy(b, b[h:])
		q.buckets[q.cur] = b[:n]
		q.heads[q.cur] = 0
	default:
		q.heads[q.cur] = h
	}
	q.size--
	if n := q.mask + 1; n > calMinBuckets && q.size < n/calShrinkDenom {
		q.lowPops++
		if q.lowPops > n {
			q.resize(n / 2)
			q.lowPops = 0
		}
	} else {
		q.lowPops = 0
	}
	return e, true
}

// peekTime returns the time of the earliest pending event.
func (q *calendarQueue) peekTime() (Time, bool) {
	if q.size == 0 {
		return 0, false
	}
	q.scan()
	return q.buckets[q.cur][q.heads[q.cur]].at, true
}

// resize rebuilds the ring with nbuckets buckets and a width re-derived
// from the live population: span/size, clamped to at least 1 ns, so the
// mean occupancy of a day stays near one event. Rebucketing reinserts
// every event through the same sorted insert as push, preserving the
// (at, seq) order inside each new bucket.
func (q *calendarQueue) resize(nbuckets int) {
	q.lowPops = 0
	old := q.buckets
	oldHeads := q.heads
	minAt, maxAt := Time(0), Time(0)
	first := true
	for bi, b := range old {
		for i := oldHeads[bi]; i < len(b); i++ {
			if at := b[i].at; first {
				minAt, maxAt = at, at
				first = false
			} else {
				if at < minAt {
					minAt = at
				}
				if at > maxAt {
					maxAt = at
				}
			}
		}
	}
	if q.size > 0 {
		if w := (maxAt - minAt) / Time(q.size); w > 0 {
			q.width = w
		} else {
			q.width = 1
		}
	}
	newK := bits.TrailingZeros(uint(nbuckets))
	oldK := bits.TrailingZeros(uint(len(old)))
	if maxK := max(newK, oldK); maxK >= len(q.spares) {
		grown := make([]calRing, maxK+1) //sbvet:allow hotpath(spare-ring ladder grows to its log2(max geometry) height once per run)
		copy(grown, q.spares)
		q.spares = grown
	}
	if sp := q.spares[newK]; sp.buckets != nil {
		q.buckets, q.heads = sp.buckets, sp.heads
		for i := range q.buckets {
			q.buckets[i] = q.buckets[i][:0]
			q.heads[i] = 0
		}
		q.mask = nbuckets - 1
		q.spares[newK] = calRing{}
	} else {
		q.alloc(nbuckets)
	}
	q.spares[oldK] = calRing{buckets: old, heads: oldHeads}
	for obi, ob := range old {
		for i := oldHeads[obi]; i < len(ob); i++ {
			e := ob[i]
			idx := q.bucketOf(e.at)
			b := q.buckets[idx]
			lo, hi := 0, len(b)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if eventLess(&b[mid], &e) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			b = append(b, event{}) //sbvet:allow hotpath(amortized calendar resize — buckets are rebuilt O(log n) times over a run)
			copy(b[lo+1:], b[lo:])
			b[lo] = e
			q.buckets[idx] = b
		}
	}
	if q.size > 0 {
		q.cur = 0
		q.curTop = q.width
		q.scan()
	} else {
		q.cur = 0
		q.curTop = q.width
	}
}

// push schedules an event; seq assignment keeps ordering deterministic.
func (k *Kernel) push(e event) {
	e.seq = k.seq
	k.seq++
	if k.useHeap {
		k.events.push(e)
		return
	}
	k.cal.push(e)
}

// pop removes and returns the earliest event; ok is false when empty.
func (k *Kernel) pop() (event, bool) {
	if k.useHeap {
		return k.events.pop()
	}
	return k.cal.pop()
}

// peekTime returns the time of the earliest pending event.
func (k *Kernel) peekTime() (Time, bool) {
	if k.useHeap {
		return k.events.peekTime()
	}
	return k.cal.peekTime()
}
