package kernel

import "smartbalance/internal/arch"

// eventKind enumerates discrete-event types.
type eventKind int

const (
	evSliceEnd eventKind = iota // a core's current timeslice expires
	evWakeup                    // a sleeping task becomes runnable
)

// event is one entry of the simulation event queue. Ordering is by time
// then by insertion sequence, which makes the simulation fully
// deterministic.
type event struct {
	at   Time
	seq  uint64
	kind eventKind

	core     arch.CoreID // evSliceEnd target
	sliceSeq uint64      // staleness guard for evSliceEnd
	task     ThreadID    // evWakeup target
}

// eventQueue is a binary min-heap of events ordered by (at, seq). The
// sift routines are hand-rolled rather than delegated to container/heap
// because heap.Push/Pop traffic in `any`, boxing every event on the hot
// scheduling path.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

// push schedules an event; seq assignment keeps ordering deterministic.
func (k *Kernel) push(e event) {
	e.seq = k.seq
	k.seq++
	k.events = append(k.events, e) //sbvet:allow hotpath(event-queue capacity reaches the peak outstanding-event count once and is reused; pop truncates in place)
	k.events.siftUp(len(k.events) - 1)
}

// pop removes and returns the earliest event; ok is false when empty.
func (k *Kernel) pop() (event, bool) {
	n := len(k.events)
	if n == 0 {
		return event{}, false
	}
	e := k.events[0]
	k.events[0] = k.events[n-1]
	k.events = k.events[:n-1]
	k.events.siftDown(0)
	return e, true
}

// peekTime returns the time of the earliest pending event.
func (k *Kernel) peekTime() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}
