package kernel

import "smartbalance/internal/arch"

// This file implements the per-core CFS mechanics: weighted virtual
// runtime, timeslice computation, enqueue/dequeue with sleeper
// fairness, and next-task selection. The runqueue is a slice of
// pointer-free entries kept sorted ascending by (vruntime, seq) — the
// flat-array analogue of the kernel's red-black tree — so minimum
// lookups are O(1) and the pick is byte-identical to the historical
// linear first-minimum scan: that scan resolved equal-vruntime ties by
// queue position, which is insertion order, which is admission-ticket
// order. A task's vruntime only changes while it is off the queue, so
// the embedded key never goes stale.

// rqEntry is one sorted runqueue slot. The ordering keys are embedded
// so searches and shifts never dereference a task and the slice holds
// no pointers for the collector to scan.
type rqEntry struct {
	vruntime int64
	seq      uint64 // admission ticket; insertion-order tie-break
	id       ThreadID
}

// minVruntime returns the smallest vruntime among a core's runnable
// tasks (including current), or 0 when idle.
func (k *Kernel) minVruntime(c arch.CoreID) int64 {
	cr := &k.cores[c]
	var min int64
	have := false
	if t := cr.current; t != nil {
		min = t.vruntime
		have = true
	}
	if cr.runqHead < len(cr.runq) {
		if v := cr.runq[cr.runqHead].vruntime; !have || v < min {
			min = v
		}
	}
	return min
}

// rqInsert stamps t's admission ticket and places it at its sorted
// (vruntime, seq) position in the live region [runqHead, len) of core
// cr's runqueue. An insert that sorts before every live entry reuses
// the vacant slot just below the head cursor when one exists, so the
// common pop/insert cycle moves no memory. The caller accounts
// runqWeight.
func (k *Kernel) rqInsert(cr *coreRun, t *Task) {
	e := rqEntry{vruntime: t.vruntime, seq: k.rqCounter, id: t.ID}
	k.rqCounter++
	q := cr.runq
	h := cr.runqHead
	lo, hi := h, len(q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q[mid].vruntime < e.vruntime || (q[mid].vruntime == e.vruntime && q[mid].seq < e.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == h && h > 0 {
		cr.runqHead = h - 1
		q[h-1] = e
		return
	}
	q = append(q, rqEntry{}) //sbvet:allow hotpath(runqueue capacity reaches the core's peak occupancy once and is reused; dequeue truncates in place)
	copy(q[lo+1:], q[lo:])
	q[lo] = e
	cr.runq = q
}

// enqueue places a runnable task on core c's runqueue, applying the
// sleeper-fairness rule: a task that slept (or is new, or migrated in)
// resumes at no less than min_vruntime - latency/2, so it gets a modest
// wakeup advantage without starving the queue.
func (k *Kernel) enqueue(t *Task, c arch.CoreID) {
	cr := &k.cores[c]
	floor := k.minVruntime(c) - k.cfg.SchedLatencyNs/2
	if t.vruntime < floor {
		t.vruntime = floor
	}
	t.core = c
	t.taskState = StateRunnable
	cr.runqWeight += t.weight
	k.rqInsert(cr, t)
}

// dequeue removes a runnable task from its core's runqueue.
func (k *Kernel) dequeue(t *Task) {
	cr := &k.cores[t.core]
	for i := cr.runqHead; i < len(cr.runq); i++ {
		if cr.runq[i].id == t.ID {
			copy(cr.runq[i:], cr.runq[i+1:])
			cr.runq = cr.runq[:len(cr.runq)-1]
			cr.runqWeight -= t.weight
			if cr.runqHead == len(cr.runq) {
				cr.runq = cr.runq[:0]
				cr.runqHead = 0
			}
			return
		}
	}
}

// pickNext removes and returns the runnable task with the smallest
// vruntime (ties to the earliest-queued), or nil when the queue is
// empty. The sorted order makes this the live-region head; popping
// advances the cursor in O(1), with amortized compaction once the
// drained prefix dominates the backing array.
func (k *Kernel) pickNext(c arch.CoreID) *Task {
	cr := &k.cores[c]
	h := cr.runqHead
	if h == len(cr.runq) {
		return nil
	}
	t := k.tasks[cr.runq[h].id]
	cr.runqWeight -= t.weight
	h++
	switch {
	case h == len(cr.runq):
		cr.runq = cr.runq[:0]
		cr.runqHead = 0
	case h >= 32 && 2*h >= len(cr.runq):
		n := copy(cr.runq, cr.runq[h:])
		cr.runq = cr.runq[:n]
		cr.runqHead = 0
	default:
		cr.runqHead = h
	}
	return t
}

// timeslice computes the CFS timeslice for task t on core c:
// period * weight / total_weight, with the period stretched when many
// tasks are runnable, floored at the minimum granularity. t may already
// be accounted on the core (as current or queued) or not yet; both are
// handled without double counting.
func (k *Kernel) timeslice(t *Task, c arch.CoreID) int64 {
	cr := &k.cores[c]
	counted := cr.current == t
	if !counted {
		for i := cr.runqHead; i < len(cr.runq); i++ {
			if cr.runq[i].id == t.ID {
				counted = true
				break
			}
		}
	}
	return k.timesliceCounted(t, c, counted)
}

// timesliceCounted is timeslice with the membership question answered
// by the caller: dispatch picks t straight off the runqueue, so it
// knows t is unaccounted without rescanning the queue.
func (k *Kernel) timesliceCounted(t *Task, c arch.CoreID, counted bool) int64 {
	nr := k.RunqueueLen(c)
	total := k.CoreLoad(c)
	if !counted {
		nr++
		total += t.weight
	}
	period := k.cfg.SchedLatencyNs
	if minPeriod := int64(nr) * k.cfg.MinGranularityNs; minPeriod > period {
		period = minPeriod
	}
	if total <= 0 {
		total = t.weight
	}
	slice := period * t.weight / total
	if slice < k.cfg.MinGranularityNs {
		slice = k.cfg.MinGranularityNs
	}
	return slice
}

// chargeVruntime advances a task's virtual runtime after running for
// durNs of wall execution time.
func (t *Task) chargeVruntime(durNs int64) {
	t.vruntime += durNs * nice0Load / t.weight
}
