package kernel

import "smartbalance/internal/arch"

// This file implements the per-core CFS mechanics: weighted virtual
// runtime, timeslice computation, enqueue/dequeue with sleeper
// fairness, and next-task selection. The runqueues are small (tens of
// tasks), so a slice with linear minimum search stands in for the
// kernel's red-black tree without changing behaviour.

// minVruntime returns the smallest vruntime among a core's runnable
// tasks (including current), or 0 when idle.
func (k *Kernel) minVruntime(c arch.CoreID) int64 {
	cr := &k.cores[c]
	var min int64
	have := false
	if t := cr.current; t != nil {
		min = t.vruntime
		have = true
	}
	for _, t := range cr.runq {
		if t != nil && (!have || t.vruntime < min) {
			min = t.vruntime
			have = true
		}
	}
	return min
}

// enqueue places a runnable task on core c's runqueue, applying the
// sleeper-fairness rule: a task that slept (or is new, or migrated in)
// resumes at no less than min_vruntime - latency/2, so it gets a modest
// wakeup advantage without starving the queue.
func (k *Kernel) enqueue(t *Task, c arch.CoreID) {
	cr := &k.cores[c]
	floor := k.minVruntime(c) - k.cfg.SchedLatencyNs/2
	if t.vruntime < floor {
		t.vruntime = floor
	}
	t.core = c
	t.taskState = StateRunnable
	cr.runq = append(cr.runq, t) //sbvet:allow hotpath(runqueue capacity reaches the core's peak occupancy once and is reused; dequeue truncates in place)
}

// dequeue removes a runnable task from its core's runqueue.
func (k *Kernel) dequeue(t *Task) {
	cr := &k.cores[t.core]
	for i, q := range cr.runq {
		if q == t {
			copy(cr.runq[i:], cr.runq[i+1:])
			cr.runq[len(cr.runq)-1] = nil
			cr.runq = cr.runq[:len(cr.runq)-1]
			return
		}
	}
}

// pickNext removes and returns the runnable task with the smallest
// vruntime, or nil when the queue is empty.
func (k *Kernel) pickNext(c arch.CoreID) *Task {
	cr := &k.cores[c]
	if len(cr.runq) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(cr.runq); i++ {
		if cr.runq[i].vruntime < cr.runq[best].vruntime {
			best = i
		}
	}
	t := cr.runq[best]
	copy(cr.runq[best:], cr.runq[best+1:])
	cr.runq[len(cr.runq)-1] = nil
	cr.runq = cr.runq[:len(cr.runq)-1]
	return t
}

// timeslice computes the CFS timeslice for task t on core c:
// period * weight / total_weight, with the period stretched when many
// tasks are runnable, floored at the minimum granularity. t may already
// be accounted on the core (as current or queued) or not yet; both are
// handled without double counting.
func (k *Kernel) timeslice(t *Task, c arch.CoreID) int64 {
	cr := &k.cores[c]
	nr := k.RunqueueLen(c)
	total := k.CoreLoad(c)
	counted := cr.current == t
	if !counted {
		for _, q := range cr.runq {
			if q == t {
				counted = true
				break
			}
		}
	}
	if !counted {
		nr++
		total += t.weight
	}
	period := k.cfg.SchedLatencyNs
	if minPeriod := int64(nr) * k.cfg.MinGranularityNs; minPeriod > period {
		period = minPeriod
	}
	if total <= 0 {
		total = t.weight
	}
	slice := period * t.weight / total
	if slice < k.cfg.MinGranularityNs {
		slice = k.cfg.MinGranularityNs
	}
	return slice
}

// chargeVruntime advances a task's virtual runtime after running for
// durNs of wall execution time.
func (t *Task) chargeVruntime(durNs int64) {
	t.vruntime += durNs * nice0Load / t.weight
}
