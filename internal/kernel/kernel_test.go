package kernel

import (
	"math"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/hpc"
	"smartbalance/internal/machine"
	"smartbalance/internal/workload"
)

// noopBalancer leaves placement to fork-time choice.
type noopBalancer struct{ calls int }

func (b *noopBalancer) Name() string { return "noop" }
func (b *noopBalancer) Rebalance(*Kernel, Time, []hpc.ThreadSample, []hpc.CoreEpochSample) {
	b.calls++
}

// spreadBalancer round-robins all active tasks across cores each epoch.
type spreadBalancer struct{}

func (spreadBalancer) Name() string { return "spread" }
func (spreadBalancer) Rebalance(k *Kernel, _ Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
	n := k.NumCores()
	for i, t := range k.ActiveTasks() {
		_ = k.Migrate(t.ID, arch.CoreID(i%n))
	}
}

func busySpec(name string) *workload.ThreadSpec {
	return &workload.ThreadSpec{
		Name:      name,
		Benchmark: "busy",
		Phases: []workload.Phase{{
			Name: "spin", Instructions: 50e6, ILP: 2, MemShare: 0.3, BranchShare: 0.1,
			WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.4, MLP: 2,
			TLBPressureI: 0.1, TLBPressureD: 0.2,
		}},
	}
}

func interactiveSpec(name string, sleepNs int64) *workload.ThreadSpec {
	s := busySpec(name)
	s.Phases[0].Instructions = 5e6
	s.Phases[0].SleepAfterNs = sleepNs
	return s
}

func newKernel(t *testing.T, plat *arch.Platform, b Balancer) *Kernel {
	t.Helper()
	m, err := machine.New(plat)
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(m, b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestWeightForNice(t *testing.T) {
	if WeightForNice(0) != 1024 {
		t.Fatalf("nice 0 weight %d", WeightForNice(0))
	}
	if w := WeightForNice(-5); w <= 2*1024 {
		t.Fatalf("nice -5 weight %d too small", w)
	}
	if w := WeightForNice(19); w <= 0 || w >= 1024 {
		t.Fatalf("nice 19 weight %d", w)
	}
	// Roughly 1.25x per level.
	r := float64(WeightForNice(-1)) / float64(WeightForNice(0))
	if math.Abs(r-1.25) > 0.01 {
		t.Fatalf("weight ratio per nice level %g", r)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SchedLatencyNs = 0 },
		func(c *Config) { c.MinGranularityNs = 0 },
		func(c *Config) { c.MinGranularityNs = c.SchedLatencyNs * 2 },
		func(c *Config) { c.EpochNs = c.SchedLatencyNs / 2 },
		func(c *Config) { c.MigrationPenaltyNs = -1 },
	}
	for i, mod := range bad {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	m, _ := machine.New(arch.QuadHMP())
	if _, err := New(nil, &noopBalancer{}, DefaultConfig()); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := New(m, nil, DefaultConfig()); err == nil {
		t.Fatal("nil balancer accepted")
	}
	c := DefaultConfig()
	c.EpochNs = 0
	if _, err := New(m, &noopBalancer{}, c); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSpawnPlacesOnLeastLoaded(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	var cores []arch.CoreID
	for i := 0; i < 4; i++ {
		id, err := k.Spawn(busySpec("t"))
		if err != nil {
			t.Fatal(err)
		}
		cores = append(cores, k.Task(id).Core())
	}
	seen := map[arch.CoreID]bool{}
	for _, c := range cores {
		if seen[c] {
			t.Fatalf("fork balancing stacked two tasks: %v", cores)
		}
		seen[c] = true
	}
}

func TestSpawnRejectsInvalidSpec(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	if _, err := k.Spawn(&workload.ThreadSpec{Name: "bad"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSingleBusyTaskAccounting(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(busySpec("solo"))
	if err := k.Run(300e6); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	task := k.Task(id)
	home := int(task.Core())
	c := &s.Cores[home]
	// The task's core should be busy nearly the whole span.
	if float64(c.BusyNs) < 0.95*300e6 {
		t.Fatalf("home core busy only %dns of 300ms", c.BusyNs)
	}
	// All other cores should have slept nearly the whole span.
	for i := range s.Cores {
		if i == home {
			continue
		}
		if float64(s.Cores[i].SleepNs) < 0.95*300e6 {
			t.Fatalf("idle core %d slept only %dns", i, s.Cores[i].SleepNs)
		}
		if s.Cores[i].Instr != 0 {
			t.Fatalf("idle core %d retired %d instructions", i, s.Cores[i].Instr)
		}
		// Gated cores still leak a little energy.
		if s.Cores[i].EnergyJ <= 0 {
			t.Fatalf("idle core %d consumed no energy", i)
		}
	}
	if s.TotalInstructions() == 0 || s.TotalEnergyJ() <= 0 {
		t.Fatal("no work accounted")
	}
	if task.TotalInstructions() != s.TotalInstructions() {
		t.Fatal("task/core instruction accounting disagrees")
	}
}

func TestCFSFairnessEqualTasks(t *testing.T) {
	// Two identical tasks pinned (by fork placement) to the same single
	// core must share it ~50/50.
	plat, err := arch.HomogeneousPlatform(arch.BigCore(), 1)
	if err != nil {
		t.Fatal(err)
	}
	k := newKernel(t, plat, &noopBalancer{})
	a, _ := k.Spawn(busySpec("a"))
	b, _ := k.Spawn(busySpec("b"))
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	ra := k.Task(a).TotalRunNs()
	rb := k.Task(b).TotalRunNs()
	share := float64(ra) / float64(ra+rb)
	if share < 0.47 || share > 0.53 {
		t.Fatalf("CFS share %.3f, want ~0.5 (a=%d b=%d)", share, ra, rb)
	}
}

func TestCFSNiceWeighting(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, &noopBalancer{})
	hi := busySpec("hi")
	hi.Nice = -5
	lo := busySpec("lo")
	lo.Nice = 5
	a, _ := k.Spawn(hi)
	b, _ := k.Spawn(lo)
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	ra := float64(k.Task(a).TotalRunNs())
	rb := float64(k.Task(b).TotalRunNs())
	wantRatio := float64(WeightForNice(-5)) / float64(WeightForNice(5))
	gotRatio := ra / rb
	if gotRatio < wantRatio*0.7 || gotRatio > wantRatio*1.3 {
		t.Fatalf("nice ratio %.2f, want ~%.2f", gotRatio, wantRatio)
	}
}

func TestInteractiveTaskSleepsAndWakes(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(interactiveSpec("ia", 10e6))
	if err := k.Run(500e6); err != nil {
		t.Fatal(err)
	}
	task := k.Task(id)
	if task.State() == StateFinished {
		t.Fatal("endless interactive task finished")
	}
	run := task.TotalRunNs()
	if run <= 0 || run >= 500e6 {
		t.Fatalf("interactive run time %d implausible", run)
	}
	// It must have slept a significant fraction.
	if float64(run) > 0.9*500e6 {
		t.Fatal("interactive task never slept")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFiniteTaskFinishes(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	spec := busySpec("finite")
	spec.Repeats = 2
	id, _ := k.Spawn(spec)
	if err := k.Run(2e9); err != nil {
		t.Fatal(err)
	}
	task := k.Task(id)
	if task.State() != StateFinished {
		t.Fatalf("task state %v", task.State())
	}
	if task.TotalInstructions() != 100e6 {
		t.Fatalf("retired %d, want 1e8", task.TotalInstructions())
	}
	st := k.Stats()
	if st.Tasks[0].FinishedAt <= 0 || st.Tasks[0].FinishedAt > 2e9 {
		t.Fatalf("finish time %d", st.Tasks[0].FinishedAt)
	}
}

func TestMigrateRunnableSleepingAndUnknown(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(busySpec("m"))
	// Runnable (not yet run): migrate immediately.
	if err := k.Migrate(id, 3); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).Core() != 3 {
		t.Fatalf("core after migrate = %d", k.Task(id).Core())
	}
	if k.Task(id).Migrations() != 1 {
		t.Fatalf("migrations = %d", k.Task(id).Migrations())
	}
	// Same-core migration is a no-op.
	if err := k.Migrate(id, 3); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).Migrations() != 1 {
		t.Fatal("same-core migration counted")
	}
	if err := k.Migrate(99, 0); err == nil {
		t.Fatal("unknown task accepted")
	}
	if err := k.Migrate(id, 77); err == nil {
		t.Fatal("invalid core accepted")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateRunningAppliedAtSwitch(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 2)
	k := newKernel(t, plat, &noopBalancer{})
	id, _ := k.Spawn(busySpec("r"))
	if err := k.Run(5e6); err != nil { // task is now mid-slice or between
		t.Fatal(err)
	}
	if err := k.Migrate(id, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100e6); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).Core() != 1 {
		t.Fatalf("pending migration not applied; core=%d", k.Task(id).Core())
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The second core must have done work after the migration.
	if k.Stats().Cores[1].Instr == 0 {
		t.Fatal("migrated task never ran on destination")
	}
}

func TestMigrateFinishedRejected(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	spec := busySpec("f")
	spec.Repeats = 1
	id, _ := k.Spawn(spec)
	if err := k.Run(2e9); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).State() != StateFinished {
		t.Fatal("task should be finished")
	}
	if err := k.Migrate(id, 1); err == nil {
		t.Fatal("migrating finished task accepted")
	}
}

func TestEpochTicksAndBalancerCalls(t *testing.T) {
	b := &noopBalancer{}
	k := newKernel(t, arch.QuadHMP(), b)
	_, _ = k.Spawn(busySpec("x"))
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	// 600ms / 60ms = 10 epochs.
	if b.calls != 10 {
		t.Fatalf("balancer called %d times, want 10", b.calls)
	}
	if k.Stats().Epochs != 10 {
		t.Fatalf("Epochs stat %d", k.Stats().Epochs)
	}
}

func TestBalancerReceivesSamples(t *testing.T) {
	var got []hpc.ThreadSample
	var gotCores []hpc.CoreEpochSample
	b := balancerFunc(func(k *Kernel, now Time, th []hpc.ThreadSample, cs []hpc.CoreEpochSample) {
		if got != nil {
			return
		}
		// Snapshot views are only valid until the next epoch, so the
		// first epoch's samples must be copied out to survive Run.
		for _, ts := range th {
			c := &hpc.ThreadEpochSample{PerCore: append([]hpc.CoreCounters(nil), ts.Sample.PerCore...)}
			got = append(got, hpc.ThreadSample{Thread: ts.Thread, Sample: c})
		}
		gotCores = append([]hpc.CoreEpochSample(nil), cs...)
	})
	k := newKernel(t, arch.QuadHMP(), b)
	id, _ := k.Spawn(busySpec("sampled"))
	if err := k.Run(120e6); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("balancer never called")
	}
	s := hpc.FindThread(got, int(id))
	if s == nil {
		t.Fatal("running thread missing from samples")
	}
	total := s.Total()
	if total.Instructions == 0 || total.RunNs == 0 || total.EnergyJ <= 0 {
		t.Fatalf("empty sample: %+v", total)
	}
	if len(gotCores) != 4 {
		t.Fatalf("%d core samples", len(gotCores))
	}
	// Idle cores show sleep time in their epoch sample.
	sleepSeen := false
	for _, c := range gotCores {
		if c.SleepNs > 0 {
			sleepSeen = true
		}
	}
	if !sleepSeen {
		t.Fatal("no idle core reported sleep in epoch sample")
	}
}

// balancerFunc adapts a function to the Balancer interface.
type balancerFunc func(*Kernel, Time, []hpc.ThreadSample, []hpc.CoreEpochSample)

func (balancerFunc) Name() string { return "func" }
func (f balancerFunc) Rebalance(k *Kernel, now Time, th []hpc.ThreadSample, cs []hpc.CoreEpochSample) {
	f(k, now, th, cs)
}

func TestSpreadBalancerMovesWork(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), spreadBalancer{})
	// Eight busy tasks: fork places two per core; the balancer keeps
	// them spread. All cores should be busy.
	for i := 0; i < 8; i++ {
		_, _ = k.Spawn(busySpec("s"))
	}
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	for i := range s.Cores {
		if float64(s.Cores[i].BusyNs) < 0.9*600e6 {
			t.Fatalf("core %d busy only %dms under spread", i, s.Cores[i].BusyNs/1e6)
		}
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *RunStats {
		k := newKernel(t, arch.QuadHMP(), spreadBalancer{})
		specs, err := workload.Mix("Mix5", 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			if _, err := k.Spawn(&specs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := k.Run(400e6); err != nil {
			t.Fatal(err)
		}
		return k.Stats()
	}
	a, b := run(), run()
	if a.TotalInstructions() != b.TotalInstructions() {
		t.Fatalf("instruction totals diverge: %d vs %d", a.TotalInstructions(), b.TotalInstructions())
	}
	if a.TotalEnergyJ() != b.TotalEnergyJ() {
		t.Fatalf("energy totals diverge: %g vs %g", a.TotalEnergyJ(), b.TotalEnergyJ())
	}
	if a.Migrations != b.Migrations {
		t.Fatalf("migration counts diverge: %d vs %d", a.Migrations, b.Migrations)
	}
}

func TestRunExtension(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	_, _ = k.Spawn(busySpec("e"))
	if err := k.Run(100e6); err != nil {
		t.Fatal(err)
	}
	mid := k.Stats().TotalInstructions()
	if err := k.Run(200e6); err != nil {
		t.Fatal(err)
	}
	end := k.Stats().TotalInstructions()
	if end <= mid {
		t.Fatalf("no progress after extension: %d -> %d", mid, end)
	}
	if err := k.Run(100e6); err == nil {
		t.Fatal("non-monotonic horizon accepted")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Per-core: busy+sleep time must cover (almost) the whole span; the
	// small gap is the parked remainder at the horizon.
	k := newKernel(t, arch.QuadHMP(), spreadBalancer{})
	specs, _ := workload.IMB(workload.Medium, workload.Medium, 4, 3)
	for i := range specs {
		_, _ = k.Spawn(&specs[i])
	}
	if err := k.Run(500e6); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	for i := range s.Cores {
		covered := s.Cores[i].BusyNs + s.Cores[i].SleepNs
		if covered < 490e6 || covered > 501e6 {
			t.Fatalf("core %d covered %dns of 500ms", i, covered)
		}
	}
}

func TestTaskAndCoreAccountingAgree(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), spreadBalancer{})
	specs, _ := workload.Mix("Mix1", 2, 9)
	for i := range specs {
		_, _ = k.Spawn(&specs[i])
	}
	if err := k.Run(300e6); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	var taskInstr uint64
	var taskRun int64
	for _, ts := range s.Tasks {
		taskInstr += ts.Instr
		taskRun += ts.RunNs
	}
	var coreInstr uint64
	var coreBusy int64
	for _, cs := range s.Cores {
		coreInstr += cs.Instr
		coreBusy += cs.BusyNs
	}
	if taskInstr != coreInstr {
		t.Fatalf("instr mismatch: tasks %d, cores %d", taskInstr, coreInstr)
	}
	if taskRun != coreBusy {
		t.Fatalf("time mismatch: tasks %d, cores %d", taskRun, coreBusy)
	}
}

func TestStatsString(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	_, _ = k.Spawn(busySpec("s"))
	_ = k.Run(100e6)
	if s := k.Stats().String(); len(s) == 0 {
		t.Fatal("empty stats string")
	}
}

func TestHeterogeneousThroughputVisible(t *testing.T) {
	// The same benchmark pinned to Huge vs Small must retire vastly
	// different instruction counts — end-to-end check that kernel wiring
	// preserves the machine model's heterogeneity.
	pin := func(core arch.CoreID) uint64 {
		k := newKernel(t, arch.QuadHMP(), balancerFunc(func(k *Kernel, _ Time, _ []hpc.ThreadSample, _ []hpc.CoreEpochSample) {
			for _, task := range k.ActiveTasks() {
				_ = k.Migrate(task.ID, core)
			}
		}))
		specs, _ := workload.Benchmark("swaptions", 1, 4)
		id, _ := k.Spawn(&specs[0])
		if err := k.Run(500e6); err != nil {
			t.Fatal(err)
		}
		return k.Task(id).TotalInstructions()
	}
	huge := pin(0)
	small := pin(3)
	if huge < 3*small {
		t.Fatalf("Huge %d vs Small %d: heterogeneity lost in kernel", huge, small)
	}
}

func BenchmarkKernelQuadHMP8Threads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _ := machine.New(arch.QuadHMP())
		k, _ := New(m, &noopBalancer{}, DefaultConfig())
		specs, _ := workload.Mix("Mix1", 4, 1)
		for j := range specs {
			_, _ = k.Spawn(&specs[j])
		}
		if err := k.Run(200e6); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTrackedLoadLifecycle(t *testing.T) {
	// PELT exposure: a busy task converges to load ~1; an interactive
	// task stays well below; load >= utilization always.
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	busy, _ := k.Spawn(busySpec("busy"))
	idle, _ := k.Spawn(interactiveSpec("idle", 40e6))
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	bt := k.Task(busy)
	it := k.Task(idle)
	if l := bt.TrackedLoad(); l < 0.9 {
		t.Fatalf("busy tracked load %g", l)
	}
	if l := it.TrackedLoad(); l > 0.6 {
		t.Fatalf("interactive tracked load %g", l)
	}
	for _, task := range []*Task{bt, it} {
		if task.TrackedUtilization() > task.TrackedLoad()+1e-9 {
			t.Fatalf("utilization %g exceeds load %g", task.TrackedUtilization(), task.TrackedLoad())
		}
	}
}

func TestTrackedLoadSeparatesSharers(t *testing.T) {
	// Two busy tasks sharing one core: both have tracked load ~1
	// (runnable all the time) but utilization ~0.5 — the signal GTS
	// up-migration depends on.
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, &noopBalancer{})
	a, _ := k.Spawn(busySpec("a"))
	b, _ := k.Spawn(busySpec("b"))
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	for _, id := range []ThreadID{a, b} {
		task := k.Task(id)
		if l := task.TrackedLoad(); l < 0.9 {
			t.Fatalf("sharer load %g, want ~1", l)
		}
		if u := task.TrackedUtilization(); u < 0.3 || u > 0.7 {
			t.Fatalf("sharer utilization %g, want ~0.5", u)
		}
	}
}

func TestByBenchmark(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), spreadBalancer{})
	specs, err := workload.Mix("Mix5", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		_, _ = k.Spawn(&specs[i])
	}
	if err := k.Run(400e6); err != nil {
		t.Fatal(err)
	}
	s := k.Stats()
	groups := s.ByBenchmark()
	if len(groups) != 2 { // bodytrack + x264H-crew
		t.Fatalf("%d benchmark groups", len(groups))
	}
	var total uint64
	for _, g := range groups {
		if g.Tasks != 2 {
			t.Fatalf("%s has %d tasks", g.Benchmark, g.Tasks)
		}
		if g.IPS(s.SpanNs) <= 0 {
			t.Fatalf("%s has no throughput", g.Benchmark)
		}
		total += g.Instr
	}
	if total != s.TotalInstructions() {
		t.Fatalf("per-benchmark totals %d != %d", total, s.TotalInstructions())
	}
	// Sorted by name.
	if groups[0].Benchmark > groups[1].Benchmark {
		t.Fatal("groups not sorted")
	}
}
