package kernel

import (
	"fmt"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/machine"
	"smartbalance/internal/rng"
	"smartbalance/internal/workload"
)

// The calendar↔heap equivalence suite (DESIGN.md §12): both event-queue
// implementations must drain the identical (at, seq) total order, so
// any fixed-seed simulation is byte-identical under either. The tests
// attack the calendar queue where its mechanics differ from the heap —
// same-timestamp bursts sharing a bucket, pushes behind the scan
// cursor, resize-triggering churn — and then compare whole kernel runs.

// drainBoth pushes the same stream into a fresh calendar queue and a
// fresh heap, interleaving pops according to popEvery, and fails on the
// first divergence in pop order.
func drainBoth(t *testing.T, name string, stream []event, popEvery int) {
	t.Helper()
	cal := newCalendarQueue(0)
	var heap eventQueue
	pending := 0
	check := func(ctx string) {
		ce, cok := cal.pop()
		he, hok := heap.pop()
		if cok != hok || ce != he {
			t.Fatalf("%s: %s: calendar popped %+v (ok=%v), heap popped %+v (ok=%v)",
				name, ctx, ce, cok, he, hok)
		}
	}
	for i, e := range stream {
		cal.push(e)
		heap.push(e)
		pending++
		if popEvery > 0 && i%popEvery == popEvery-1 {
			check(fmt.Sprintf("interleaved pop after push %d", i))
			pending--
		}
	}
	for i := 0; i < pending; i++ {
		check(fmt.Sprintf("drain pop %d", i))
	}
	if _, ok := cal.pop(); ok {
		t.Fatalf("%s: calendar queue not empty after drain", name)
	}
	if _, ok := heap.pop(); ok {
		t.Fatalf("%s: heap not empty after drain", name)
	}
}

// TestEventQueueEquivalenceRandomStreams feeds seeded random event
// streams through both queues: uniform times, clustered times (many
// equal-at bursts), monotone times with occasional rewinds (pushes
// behind the scan cursor, as a wakeup scheduled before the current
// bucket would land), and sizes around the resize thresholds.
func TestEventQueueEquivalenceRandomStreams(t *testing.T) {
	type shape struct {
		name     string
		n        int
		popEvery int
		gen      func(r *rng.Rand, i int, prev Time) Time
	}
	shapes := []shape{
		{"uniform", 500, 0, func(r *rng.Rand, _ int, _ Time) Time {
			return Time(r.Intn(1e9))
		}},
		{"same-timestamp-burst", 1000, 0, func(r *rng.Rand, _ int, _ Time) Time {
			// 10240-thread spawn wakeups: most events share few times.
			return Time(r.Intn(4)) * 1e6
		}},
		{"clustered", 800, 3, func(r *rng.Rand, _ int, _ Time) Time {
			return Time(r.Intn(8))*50e6 + Time(r.Intn(3))
		}},
		{"monotone-with-rewinds", 600, 2, func(r *rng.Rand, i int, prev Time) Time {
			if r.Float64() < 0.2 && prev > 1e6 {
				return prev - Time(r.Intn(1e6)) // behind the cursor
			}
			return prev + Time(r.Intn(2e6))
		}},
		{"resize-churn", 5000, 1, func(r *rng.Rand, _ int, _ Time) Time {
			return Time(r.Intn(1e7))
		}},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 77} {
				r := rng.New(seed)
				stream := make([]event, sh.n)
				prev := Time(0)
				for i := range stream {
					at := sh.gen(r, i, prev)
					if at < 0 {
						at = 0
					}
					prev = at
					stream[i] = event{
						at:   at,
						seq:  uint64(i),
						kind: eventKind(r.Intn(2)),
						core: arch.CoreID(r.Intn(16)),
						task: ThreadID(r.Intn(64)),
					}
				}
				drainBoth(t, fmt.Sprintf("%s/seed%d", sh.name, seed), stream, sh.popEvery)
			}
		})
	}
}

// equivKernel builds a QuadHMP kernel with the requested event queue,
// a chaos balancer (heavy migration traffic leaves stale slice-end
// events in the queue — the kernel's cancellation mechanism), and a
// mixed finite/interactive workload.
func equivKernel(t *testing.T, seed uint64, q EventQueueKind) *Kernel {
	t.Helper()
	m, err := machine.New(arch.QuadHMP())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.EventQueue = q
	k, err := New(m, &chaosBalancer{r: rng.New(seed ^ 0xC0)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed ^ 0xE0)
	for i := 0; i < 24; i++ {
		spec := &workload.ThreadSpec{
			Name:      fmt.Sprintf("equiv-%d", i),
			Benchmark: "equiv",
			Phases: []workload.Phase{{
				Name:          "p",
				Instructions:  uint64(1e5 + r.Intn(2e7)),
				ILP:           0.8 + r.Float64()*3,
				MemShare:      r.Float64() * 0.5,
				BranchShare:   r.Float64() * 0.2,
				WorkingSetIKB: 1 + r.Float64()*64,
				WorkingSetDKB: 1 + r.Float64()*1024,
				BranchEntropy: r.Float64(),
				MLP:           1 + r.Float64()*3,
			}},
		}
		if r.Float64() < 0.5 {
			spec.Phases[0].SleepAfterNs = int64(r.Intn(10e6))
		}
		if r.Float64() < 0.3 {
			spec.Repeats = 1 + r.Intn(3)
		}
		if _, err := k.Spawn(spec); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

// TestKernelRunIdenticalUnderBothQueues runs the same seeded chaotic
// simulation under the calendar queue and the heap and requires the
// complete observable outcome — every per-core and per-task statistic —
// to match exactly. Chaos migrations continually invalidate in-flight
// slices, so the stale-event (cancellation) path is exercised under
// both queues too.
func TestKernelRunIdenticalUnderBothQueues(t *testing.T) {
	for _, seed := range []uint64{3, 11, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			kc := equivKernel(t, seed, EventQueueCalendar)
			kh := equivKernel(t, seed, EventQueueHeap)
			horizon := Time(0)
			for step := 0; step < 10; step++ {
				horizon += 37e6 // misaligned with the epoch length on purpose
				if err := kc.Run(horizon); err != nil {
					t.Fatal(err)
				}
				if err := kh.Run(horizon); err != nil {
					t.Fatal(err)
				}
				if err := kc.CheckInvariants(); err != nil {
					t.Fatalf("calendar invariants after step %d: %v", step, err)
				}
				sc := fmt.Sprintf("%+v", kc.Stats())
				sh := fmt.Sprintf("%+v", kh.Stats())
				if sc != sh {
					t.Fatalf("stats diverged at step %d:\ncalendar: %s\nheap:     %s", step, sc, sh)
				}
			}
		})
	}
}
