package kernel

import (
	"testing"

	"smartbalance/internal/arch"
)

// Unit tests for the CFS mechanics: timeslice computation, vruntime
// charging, sleeper fairness, and min-vruntime tracking.

func TestTimesliceSingleTask(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(busySpec("solo"))
	task := k.Task(id)
	// A lone nice-0 task gets the whole latency window.
	slice := k.timeslice(task, task.Core())
	if slice != k.cfg.SchedLatencyNs {
		t.Fatalf("solo timeslice %d, want %d", slice, k.cfg.SchedLatencyNs)
	}
}

func TestTimesliceSharedProportionally(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, &noopBalancer{})
	a, _ := k.Spawn(busySpec("a"))
	_, _ = k.Spawn(busySpec("b"))
	ta := k.Task(a)
	slice := k.timeslice(ta, 0)
	if slice != k.cfg.SchedLatencyNs/2 {
		t.Fatalf("two equal tasks: slice %d, want %d", slice, k.cfg.SchedLatencyNs/2)
	}
}

func TestTimesliceWeighted(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, &noopBalancer{})
	hi := busySpec("hi")
	hi.Nice = -5
	lo := busySpec("lo")
	lo.Nice = 5
	a, _ := k.Spawn(hi)
	b, _ := k.Spawn(lo)
	sa := k.timeslice(k.Task(a), 0)
	sb := k.timeslice(k.Task(b), 0)
	if sa <= sb {
		t.Fatalf("higher-weight task got slice %d <= %d", sa, sb)
	}
	// The low-weight task is still floored at the minimum granularity.
	if sb < k.cfg.MinGranularityNs {
		t.Fatalf("slice %d below min granularity", sb)
	}
}

func TestTimeslicePeriodStretchesWithLoad(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, &noopBalancer{})
	var last ThreadID
	// Enough tasks that nr*min_gran exceeds the latency window.
	n := int(k.cfg.SchedLatencyNs/k.cfg.MinGranularityNs) + 4
	for i := 0; i < n; i++ {
		last, _ = k.Spawn(busySpec("x"))
	}
	slice := k.timeslice(k.Task(last), 0)
	if slice != k.cfg.MinGranularityNs {
		t.Fatalf("overloaded queue slice %d, want min granularity %d", slice, k.cfg.MinGranularityNs)
	}
}

func TestChargeVruntimeWeighting(t *testing.T) {
	heavy := &Task{weight: 2048}
	light := &Task{weight: 512}
	heavy.chargeVruntime(1e6)
	light.chargeVruntime(1e6)
	// Heavier tasks accrue vruntime more slowly (factor weight/1024).
	if heavy.vruntime*4 != light.vruntime {
		t.Fatalf("vruntime ratio wrong: heavy %d, light %d", heavy.vruntime, light.vruntime)
	}
}

func TestSleeperFairnessFloor(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, &noopBalancer{})
	// Run one task long enough to build up vruntime.
	_, _ = k.Spawn(busySpec("runner"))
	if err := k.Run(300e6); err != nil {
		t.Fatal(err)
	}
	// A newcomer must start near min_vruntime - latency/2, not at 0
	// (which would let it monopolise the core for a long time).
	id, _ := k.Spawn(busySpec("newcomer"))
	nc := k.Task(id)
	floor := k.minVruntime(0) - k.cfg.SchedLatencyNs/2 - 1
	if nc.vruntime < floor {
		t.Fatalf("newcomer vruntime %d below sleeper-fairness floor %d", nc.vruntime, floor)
	}
}

func TestPickNextLowestVruntime(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 1)
	k := newKernel(t, plat, &noopBalancer{})
	a, _ := k.Spawn(busySpec("a"))
	b, _ := k.Spawn(busySpec("b"))
	c, _ := k.Spawn(busySpec("c"))
	k.Task(a).vruntime = 300
	k.Task(b).vruntime = 100
	k.Task(c).vruntime = 200
	// The runqueue sorts by (vruntime, rqSeq) at insert time, so a
	// direct key mutation must be followed by a re-insert — outside
	// tests, vruntime only changes while a task is off the queue.
	for _, id := range []ThreadID{a, b, c} {
		task := k.Task(id)
		k.dequeue(task)
		k.enqueue(task, 0)
	}
	picked := k.pickNext(0)
	if picked == nil || picked.ID != b {
		t.Fatalf("picked %v, want task %d", picked, b)
	}
	// b removed from the queue.
	if got := k.RunqueueLen(0); got != 2 {
		t.Fatalf("queue length after pick: %d", got)
	}
}

func TestMinVruntimeIdleCore(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	if k.minVruntime(2) != 0 {
		t.Fatal("idle core min vruntime should be 0")
	}
}
