package kernel

import (
	"fmt"

	"smartbalance/internal/arch"
)

// TraceKind enumerates observable scheduling events.
type TraceKind int

// Trace event kinds.
const (
	TraceSpawn    TraceKind = iota // task created
	TraceSlice                     // a timeslice completed (context switch)
	TraceSleep                     // task entered a sleep/wait period
	TraceWake                      // task became runnable again
	TraceMigrate                   // task changed cores
	TraceFinish                    // task exited
	TraceEpoch                     // balancer epoch boundary
	TraceCoreIdle                  // core entered the quiescent state
	TraceCoreBusy                  // core left the quiescent state
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSpawn:
		return "spawn"
	case TraceSlice:
		return "slice"
	case TraceSleep:
		return "sleep"
	case TraceWake:
		return "wake"
	case TraceMigrate:
		return "migrate"
	case TraceFinish:
		return "finish"
	case TraceEpoch:
		return "epoch"
	case TraceCoreIdle:
		return "core-idle"
	case TraceCoreBusy:
		return "core-busy"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observable scheduling event.
type TraceEvent struct {
	At   Time
	Kind TraceKind
	// Core is the event's core (for migrations, the destination); -1
	// when not core-specific (epochs).
	Core arch.CoreID
	// Thread is the involved task; -1 for core/epoch events.
	Thread ThreadID
	// DurNs carries the slice length for TraceSlice and the sleep
	// length for TraceSleep.
	DurNs int64
	// Instr carries retired instructions for TraceSlice.
	Instr uint64
}

// String renders the event compactly.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceSlice:
		return fmt.Sprintf("%9.3fms %-9s core=%d tid=%d dur=%.3fms instr=%d",
			float64(e.At)/1e6, e.Kind, e.Core, e.Thread, float64(e.DurNs)/1e6, e.Instr)
	case TraceEpoch:
		return fmt.Sprintf("%9.3fms %-9s", float64(e.At)/1e6, e.Kind)
	default:
		return fmt.Sprintf("%9.3fms %-9s core=%d tid=%d", float64(e.At)/1e6, e.Kind, e.Core, e.Thread)
	}
}

// Observer receives scheduling events as they occur. Observers must not
// call back into the kernel.
type Observer func(TraceEvent)

// SetObserver installs (or, with nil, removes) the trace observer.
func (k *Kernel) SetObserver(o Observer) { k.observer = o }

// emit delivers an event to the observer, if any.
func (k *Kernel) emit(e TraceEvent) {
	if k.observer != nil {
		k.observer(e)
	}
}
