package kernel

import (
	"fmt"

	"smartbalance/internal/arch"
)

// TraceKind enumerates observable scheduling events.
type TraceKind int

// Trace event kinds.
const (
	TraceSpawn    TraceKind = iota // task created
	TraceSlice                     // a timeslice completed (context switch)
	TraceSleep                     // task entered a sleep/wait period
	TraceWake                      // task became runnable again
	TraceMigrate                   // task changed cores
	TraceFinish                    // task exited
	TraceEpoch                     // balancer epoch boundary
	TraceCoreIdle                  // core entered the quiescent state
	TraceCoreBusy                  // core left the quiescent state
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSpawn:
		return "spawn"
	case TraceSlice:
		return "slice"
	case TraceSleep:
		return "sleep"
	case TraceWake:
		return "wake"
	case TraceMigrate:
		return "migrate"
	case TraceFinish:
		return "finish"
	case TraceEpoch:
		return "epoch"
	case TraceCoreIdle:
		return "core-idle"
	case TraceCoreBusy:
		return "core-busy"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observable scheduling event.
type TraceEvent struct {
	At   Time
	Kind TraceKind
	// Core is the event's core (for migrations, the destination); -1
	// when not core-specific (epochs).
	Core arch.CoreID
	// Thread is the involved task; -1 for core/epoch events.
	Thread ThreadID
	// DurNs carries the slice length for TraceSlice and the sleep
	// length for TraceSleep.
	DurNs int64
	// Instr carries retired instructions for TraceSlice.
	Instr uint64
}

// String renders the event compactly.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceSlice:
		return fmt.Sprintf("%9.3fms %-9s core=%d tid=%d dur=%.3fms instr=%d",
			float64(e.At)/1e6, e.Kind, e.Core, e.Thread, float64(e.DurNs)/1e6, e.Instr)
	case TraceEpoch:
		return fmt.Sprintf("%9.3fms %-9s", float64(e.At)/1e6, e.Kind)
	default:
		return fmt.Sprintf("%9.3fms %-9s core=%d tid=%d", float64(e.At)/1e6, e.Kind, e.Core, e.Thread)
	}
}

// Observer receives scheduling events as they occur. Observers must not
// call back into the kernel.
type Observer func(TraceEvent)

// AddObserver installs an additional trace observer and returns its
// slot id for RemoveObserver. Observers compose: every event fans out
// to all installed observers in installation order, so a trace recorder
// and a telemetry collector (for example) can watch the same kernel
// without fighting over a single hook.
func (k *Kernel) AddObserver(o Observer) int {
	if o == nil {
		return -1
	}
	k.observers = append(k.observers, o)
	return len(k.observers) - 1
}

// RemoveObserver uninstalls the observer with the given slot id;
// unknown and negative ids are ignored. Slot ids are not reused, so a
// stale id can never detach a later observer.
func (k *Kernel) RemoveObserver(id int) {
	if id < 0 || id >= len(k.observers) {
		return
	}
	k.observers[id] = nil
	if id == k.setSlot {
		k.setSlot = -1
	}
}

// SetObserver installs (or, with nil, removes) a single trace observer.
// Kept for single-observer call sites; it owns one slot, so repeated
// calls replace rather than accumulate, and it coexists with observers
// installed through AddObserver.
func (k *Kernel) SetObserver(o Observer) {
	if o == nil {
		k.RemoveObserver(k.setSlot)
		return
	}
	if k.setSlot >= 0 && k.setSlot < len(k.observers) {
		k.observers[k.setSlot] = o
		return
	}
	k.setSlot = k.AddObserver(o)
}

// emit delivers an event to every installed observer.
func (k *Kernel) emit(e TraceEvent) {
	for _, o := range k.observers {
		if o != nil {
			o(e)
		}
	}
}
