package kernel

import (
	"testing"

	"smartbalance/internal/arch"
)

func TestSetAffinityValidation(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(busySpec("a"))
	if err := k.SetAffinity(99, []arch.CoreID{0}); err == nil {
		t.Fatal("unknown task accepted")
	}
	if err := k.SetAffinity(id, nil); err == nil {
		t.Fatal("empty affinity accepted")
	}
	if err := k.SetAffinity(id, []arch.CoreID{9}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestSetAffinityMovesTaskOffDisallowedCore(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(busySpec("a"))
	cur := k.Task(id).Core()
	other := arch.CoreID((int(cur) + 1) % 4)
	if err := k.SetAffinity(id, []arch.CoreID{other}); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).Core() != other {
		t.Fatalf("task stayed on disallowed core %d", k.Task(id).Core())
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateRespectsAffinity(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(busySpec("a"))
	if err := k.SetAffinity(id, []arch.CoreID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := k.Migrate(id, 3); err == nil {
		t.Fatal("migration outside the mask accepted")
	}
	if err := k.Migrate(id, 2); err != nil {
		t.Fatalf("migration inside the mask rejected: %v", err)
	}
	task := k.Task(id)
	if !task.AllowedOn(1) || task.AllowedOn(3) {
		t.Fatal("AllowedOn wrong")
	}
	mask := task.AllowedMask()
	if mask == nil || mask[0] || !mask[2] {
		t.Fatalf("AllowedMask wrong: %v", mask)
	}
}

func TestAffinityPinsUnderLoad(t *testing.T) {
	// A task pinned to the Small core must never run elsewhere even
	// under a chaotic balancer that tries to move everything.
	k := newKernel(t, arch.QuadHMP(), spreadBalancer{})
	pinned, _ := k.Spawn(busySpec("pinned"))
	for i := 0; i < 3; i++ {
		_, _ = k.Spawn(busySpec("free"))
	}
	if err := k.SetAffinity(pinned, []arch.CoreID{3}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(600e6); err != nil {
		t.Fatal(err)
	}
	task := k.Task(pinned)
	if task.Core() != 3 {
		t.Fatalf("pinned task ended on core %d", task.Core())
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClearAffinity(t *testing.T) {
	k := newKernel(t, arch.QuadHMP(), &noopBalancer{})
	id, _ := k.Spawn(busySpec("a"))
	if err := k.SetAffinity(id, []arch.CoreID{0}); err != nil {
		t.Fatal(err)
	}
	if err := k.ClearAffinity(id); err != nil {
		t.Fatal(err)
	}
	if k.Task(id).AllowedMask() != nil {
		t.Fatal("mask survived ClearAffinity")
	}
	if err := k.Migrate(id, 3); err != nil {
		t.Fatalf("migration after clear rejected: %v", err)
	}
	if err := k.ClearAffinity(99); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestAffinityCancelsPendingMigration(t *testing.T) {
	plat, _ := arch.HomogeneousPlatform(arch.BigCore(), 3)
	k := newKernel(t, plat, &noopBalancer{})
	id, _ := k.Spawn(busySpec("a"))
	if err := k.Run(5e6); err != nil { // task now running
		t.Fatal(err)
	}
	if k.Task(id).State() == StateRunning {
		// Request a migration, then forbid the destination before the
		// context switch applies it.
		if err := k.Migrate(id, 1); err != nil {
			t.Fatal(err)
		}
		if err := k.SetAffinity(id, []arch.CoreID{k.Task(id).Core()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(100e6); err != nil {
		t.Fatal(err)
	}
	task := k.Task(id)
	if !task.AllowedOn(task.Core()) {
		t.Fatalf("task ended on disallowed core %d", task.Core())
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
