package fleet

import (
	"bytes"
	"testing"

	"smartbalance/internal/telemetry"
)

// burstyGateConfig is the canned scenario the energy-policy gate (and
// scripts/fleet_check.sh) runs: a heterogeneous 8-node fleet under
// bursty traffic.
func burstyGateConfig(policy string) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.Policy = policy
	cfg.Arrival = "bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25"
	cfg.DurationNs = 400e6
	cfg.Seed = 7
	return cfg
}

// runJSONL executes one run and returns its telemetry export bytes and
// result.
func runJSONL(t *testing.T, cfg Config) ([]byte, *Result) {
	t.Helper()
	cfg.Telemetry = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, f.Telemetry().Trace()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func TestFixedSeedByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := burstyGateConfig("energy")
	base, baseRes := runJSONL(t, cfg)
	for _, workers := range []int{2, 4, 16} {
		c := cfg
		c.Workers = workers
		got, res := runJSONL(t, c)
		if !bytes.Equal(base, got) {
			t.Fatalf("workers=%d: telemetry JSONL differs from serial run (%d vs %d bytes)",
				workers, len(base), len(got))
		}
		if *resHeadline(res) != *resHeadline(baseRes) {
			t.Fatalf("workers=%d: result differs from serial run:\n%v\nvs\n%v", workers, res, baseRes)
		}
	}
}

// resHeadline projects the comparable scalar fields of a Result.
func resHeadline(r *Result) *struct {
	Req, Done, Inflight int
	Energy, JPR, P99    float64
} {
	return &struct {
		Req, Done, Inflight int
		Energy, JPR, P99    float64
	}{r.Requests, r.Completed, r.InFlight, r.EnergyJ, r.JoulesPerRequest, r.P99Ms}
}

func TestFixedSeedByteIdenticalAcrossRuns(t *testing.T) {
	cfg := burstyGateConfig("energy")
	cfg.Workers = 4
	a, _ := runJSONL(t, cfg)
	b, _ := runJSONL(t, cfg)
	if !bytes.Equal(a, b) {
		t.Fatal("equal-seed runs produced different telemetry JSONL")
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	cfg := burstyGateConfig("energy")
	a, _ := runJSONL(t, cfg)
	cfg.Seed = 8
	b, _ := runJSONL(t, cfg)
	if bytes.Equal(a, b) {
		t.Fatal("seeds 7 and 8 produced identical telemetry JSONL")
	}
}

func TestEnergyPolicyBeatsBaselinesOnBurstyTraffic(t *testing.T) {
	// The headline acceptance gate: on the canned bursty scenario the
	// energy-aware dispatcher must complete everything and spend fewer
	// joules per request than round-robin AND least-loaded.
	jpr := map[string]float64{}
	for _, pol := range []string{"rr", "least", "energy"} {
		_, res := runJSONL(t, burstyGateConfig(pol))
		if res.Completed == 0 {
			t.Fatalf("%s: no requests completed", pol)
		}
		if res.InFlight > res.Requests/10 {
			t.Fatalf("%s: %d of %d requests still in flight after drain", pol, res.InFlight, res.Requests)
		}
		if res.P99Ms <= 0 {
			t.Fatalf("%s: p99 not reported", pol)
		}
		jpr[pol] = res.JoulesPerRequest
		t.Logf("%-7s j/req=%.5f", pol, res.JoulesPerRequest)
	}
	if jpr["energy"] >= jpr["rr"] {
		t.Errorf("energy policy (%.5f J/req) did not beat round-robin (%.5f)", jpr["energy"], jpr["rr"])
	}
	if jpr["energy"] >= jpr["least"] {
		t.Errorf("energy policy (%.5f J/req) did not beat least-loaded (%.5f)", jpr["energy"], jpr["least"])
	}
}

func TestPolicyChangesRouting(t *testing.T) {
	// Identical seeds, different policies: the arrival stream is the
	// same, the per-node assignment must not be.
	_, rr := runJSONL(t, burstyGateConfig("rr"))
	_, en := runJSONL(t, burstyGateConfig("energy"))
	if rr.Requests != en.Requests {
		t.Fatalf("same seed admitted %d vs %d requests", rr.Requests, en.Requests)
	}
	same := true
	for i := range rr.PerNode {
		if rr.PerNode[i].Requests != en.PerNode[i].Requests {
			same = false
			break
		}
	}
	if same {
		t.Error("rr and energy policies produced identical per-node assignments")
	}
}

func TestAccountingConsistent(t *testing.T) {
	_, res := runJSONL(t, burstyGateConfig("least"))
	var nodeReq, nodeDone int
	for _, n := range res.PerNode {
		nodeReq += n.Requests
		nodeDone += n.Completed
	}
	if nodeReq != res.Requests {
		t.Errorf("per-node requests sum to %d, fleet admitted %d", nodeReq, res.Requests)
	}
	if nodeDone != res.Completed {
		t.Errorf("per-node completions sum to %d, fleet counted %d", nodeDone, res.Completed)
	}
	if res.Completed+res.InFlight != res.Requests {
		t.Errorf("completed %d + inflight %d != admitted %d", res.Completed, res.InFlight, res.Requests)
	}
	if res.EnergyJ <= 0 {
		t.Error("fleet consumed no energy")
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.MaxMs < res.P99Ms {
		t.Errorf("latency percentiles disordered: p50=%v p99=%v max=%v", res.P50Ms, res.P99Ms, res.MaxMs)
	}
}

func TestTelemetryExportShape(t *testing.T) {
	raw, res := runJSONL(t, burstyGateConfig("energy"))
	tr, err := telemetry.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta["tier"] != "fleet" {
		t.Errorf("meta tier = %q, want fleet", tr.Meta["tier"])
	}
	if tr.Meta["policy"] != "energy" || tr.Meta["nodes"] != "8" {
		t.Errorf("meta policy/nodes = %q/%q", tr.Meta["policy"], tr.Meta["nodes"])
	}
	if _, ok := tr.Meta["workers"]; ok {
		t.Error("meta records workers; the export must not depend on it")
	}
	want := map[string]float64{
		"fleet_requests_total":     float64(res.Requests),
		"fleet_completed_total":    float64(res.Completed),
		"fleet_joules_per_request": res.JoulesPerRequest,
		"fleet_p99_ms":             res.P99Ms,
	}
	seen := map[string]bool{}
	var latCount int64
	for _, m := range tr.Metrics {
		if v, ok := want[m.Key]; ok {
			seen[m.Key] = true
			if m.Value != v { //sbvet:allow floateq(exact round-trip of an exported value, not a computed comparison)
				t.Errorf("metric %s = %v, want %v", m.Key, m.Value, v)
			}
		}
		if m.Key == "fleet_latency_ms" {
			latCount = m.Count
		}
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("metric %s missing from export", k)
		}
	}
	if latCount != int64(res.Completed) {
		t.Errorf("fleet_latency_ms observed %d completions, want %d", latCount, res.Completed)
	}
	if len(tr.Epochs) == 0 {
		t.Error("export has no tick epochs")
	}
	// Per-node rollups present for every node, in both the fleet_node_*
	// family and the node-prefixed kernel fold.
	perNode := 0
	folded := 0
	for _, m := range tr.Metrics {
		if len(m.Key) > 11 && m.Key[:11] == "fleet_node_" {
			perNode++
		}
		if len(m.Key) > 8 && m.Key[:4] == "node" && m.Key[7] == '_' {
			folded++
		}
	}
	if perNode < 5*8 {
		t.Errorf("expected >= 40 fleet_node_* metrics, found %d", perNode)
	}
	if folded == 0 {
		t.Error("no node-prefixed kernel metrics folded into the export")
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero duration", func(c *Config) { c.DurationNs = 0 }},
		{"tick beyond duration", func(c *Config) { c.TickNs = c.DurationNs * 2 }},
		{"bad policy", func(c *Config) { c.Policy = "random" }},
		{"bad arrival", func(c *Config) { c.Arrival = "storm" }},
		{"bad class", func(c *Config) { c.Classes = "api,video" }},
		{"bad platform", func(c *Config) { c.Profile = "hexa" }},
		{"bad balancer", func(c *Config) { c.Balancer = "cfs" }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		}
	}
}

func TestSingleNodeSingleClass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.Profile = "quad"
	cfg.Classes = "api"
	cfg.Arrival = "uniform:rate=200"
	cfg.DurationNs = 100e6
	_, res := runJSONL(t, cfg)
	if res.Completed == 0 {
		t.Fatal("single-node fleet completed nothing")
	}
	if len(res.PerNode) != 1 || res.PerNode[0].Requests != res.Requests {
		t.Errorf("single node did not receive all %d requests", res.Requests)
	}
}
