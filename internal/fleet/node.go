package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"smartbalance/internal/arch"
	"smartbalance/internal/balancer"
	"smartbalance/internal/core"
	"smartbalance/internal/kernel"
	"smartbalance/internal/machine"
	"smartbalance/internal/telemetry"
	"smartbalance/internal/workload"
)

// Request is one admitted unit of the open-loop stream: its identity,
// its open-loop arrival time (set by the arrival process, never by the
// fleet's load), the request class, and the seed that materialises its
// thread spec. Requests are created in the fleet's serial dispatch
// section; nodes only consume them.
type Request struct {
	ID        uint64
	ArrivalNs int64
	Class     string
	Seed      uint64
}

// finishRec is one request completion captured by the node's kernel
// observer, in event order (which the kernel keeps deterministic).
type finishRec struct {
	id   kernel.ThreadID
	atNs int64
}

// Node is one simulated MPSoC in the fleet: a full scheduling kernel
// with its own balancer, seeded RNG streams, and telemetry collector,
// plus the request-lifecycle state the dispatcher reads and writes.
// All mutable state is node-local, so nodes step in parallel without
// sharing; the fleet touches them only in its serial sections.
type Node struct {
	ID       int
	Platform string

	kern  *kernel.Kernel
	cores int
	tel   *telemetry.Collector // the node's own collector; nil when fleet telemetry is off

	// Dispatcher-owned request state.
	pending  []Request                   // assigned, spawning at the next tick boundary
	inflight map[kernel.ThreadID]Request // spawned, not yet finished

	// step-owned harvest state.
	finished  []finishRec // completions captured during the last step
	tickLatNs []int64     // scratch: completion latencies of the last step

	// Accounting.
	requests  int // requests ever assigned
	completed int
	stepErr   error

	// Signals, updated once per tick from the node's own measurements.
	lastEnergyJ   float64
	ewmaEnergyJ   float64 // decayed energy sum (J)
	ewmaCompleted float64 // decayed completion count
	p99EWMANs     float64 // decayed per-tick p99 latency (ns); 0 until first completion
}

// signalDecay is the per-tick retention of the energy/completion
// horizon behind the joules-per-request estimate, and p99Alpha the
// blend weight of a fresh per-tick p99 sample. Both are fleet-fixed so
// every node's signals are comparable.
const (
	signalDecay = 0.7
	p99Alpha    = 0.3
)

// newNode builds one fleet node. kernelSeed and annealSeed are the
// node's private streams, pre-derived from the fleet seed; trainSeed is
// the predictor-training seed (shared fleet-wide so same-platform nodes
// reuse one memoised fit).
func newNode(id int, platName, balName string, trainSeed, kernelSeed, annealSeed uint64, tel *telemetry.Collector) (*Node, error) {
	plat, err := buildPlatform(platName)
	if err != nil {
		return nil, err
	}
	bal, err := buildBalancer(balName, plat, trainSeed, annealSeed)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(plat)
	if err != nil {
		return nil, err
	}
	cfg := kernel.DefaultConfig()
	cfg.Seed = kernelSeed
	k, err := kernel.New(m, bal, cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{
		ID:       id,
		Platform: platName,
		kern:     k,
		cores:    plat.NumCores(),
		tel:      tel,
		inflight: make(map[kernel.ThreadID]Request),
	}
	k.AddObserver(func(e kernel.TraceEvent) {
		if e.Kind == kernel.TraceFinish {
			n.finished = append(n.finished, finishRec{id: e.Thread, atNs: int64(e.At)})
		}
	})
	if tel != nil {
		tel.SetMeta("node", strconv.Itoa(id))
		tel.SetMeta("platform", platName)
		tel.SetMeta("balancer", k.Balancer().Name())
		k.AddObserver(telemetry.KernelObserver(tel))
		if sink, ok := k.Balancer().(interface {
			SetTelemetry(*telemetry.Collector)
		}); ok {
			sink.SetTelemetry(tel)
		}
	}
	return n, nil
}

// assign hands the node one request; it spawns at the next tick
// boundary. Serial dispatch section only.
func (n *Node) assign(rq Request) {
	n.pending = append(n.pending, rq)
	n.requests++
}

// queueDepth is the node's load signal: requests assigned or spawned
// and not yet completed.
func (n *Node) queueDepth() int { return len(n.pending) + len(n.inflight) }

// jouleEstimate is the node's energy signal: joules per completed
// request over the decayed horizon, idle power included — the true
// marginal cost the energy-aware policy routes on. Returns ok = false
// until the node has completed enough requests to have a meaningful
// estimate.
func (n *Node) jouleEstimate() (jpr float64, ok bool) {
	if n.ewmaCompleted < 0.5 {
		return 0, false
	}
	return n.ewmaEnergyJ / n.ewmaCompleted, true
}

// step advances the node's kernel to toNs: spawn every pending request
// (in assignment order), run the kernel, harvest completions, and
// refresh the node's signals. Called in parallel across nodes — it
// must touch only node-local state.
func (n *Node) step(toNs int64) error {
	n.finished = n.finished[:0]
	for i := range n.pending {
		rq := n.pending[i]
		spec, err := workload.RequestSpec(rq.Class, requestName(rq), rq.Seed)
		if err != nil {
			return err
		}
		id, err := n.kern.Spawn(&spec)
		if err != nil {
			return fmt.Errorf("fleet: node %d spawn request %d: %w", n.ID, rq.ID, err)
		}
		n.inflight[id] = rq
	}
	n.pending = n.pending[:0]
	if err := n.kern.Run(toNs); err != nil {
		return fmt.Errorf("fleet: node %d: %w", n.ID, err)
	}

	// Harvest: completions arrive in kernel event order, which is a
	// pure function of the node's seed.
	n.tickLatNs = n.tickLatNs[:0]
	for _, f := range n.finished {
		rq, ok := n.inflight[f.id]
		if !ok {
			continue
		}
		delete(n.inflight, f.id)
		n.completed++
		n.tickLatNs = append(n.tickLatNs, f.atNs-rq.ArrivalNs)
	}

	// Signals.
	e := n.kern.TotalEnergyJ()
	tickE := e - n.lastEnergyJ
	n.lastEnergyJ = e
	n.ewmaEnergyJ = signalDecay*n.ewmaEnergyJ + tickE
	n.ewmaCompleted = signalDecay*n.ewmaCompleted + float64(len(n.tickLatNs))
	if len(n.tickLatNs) > 0 {
		sort.Slice(n.tickLatNs, func(i, j int) bool { return n.tickLatNs[i] < n.tickLatNs[j] })
		p99 := float64(quantile(n.tickLatNs, 0.99))
		if n.p99EWMANs <= 0 {
			n.p99EWMANs = p99
		} else {
			n.p99EWMANs = (1-p99Alpha)*n.p99EWMANs + p99Alpha*p99
		}
	}
	return nil
}

// quantile reads the q-quantile of a sorted sample by the nearest-rank
// method: rank = ceil(q*n), clamped to [1, n]. The epsilon shields the
// ceil from upward float slop in the product (0.55*100 evaluates to
// 55.000000000000007, which must still read rank 55, not 56). The old
// +0.999999 pseudo-ceil read one rank too low whenever q*n sat within
// 1e-6 above an integer, which bites hardest on the tiny samples of
// quiet ticks — with one or two completions in the window the p99
// EWMA absorbed the minimum instead of the maximum latency.
func quantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// requestName labels a request's thread, e.g. "r184.api".
func requestName(rq Request) string {
	return "r" + strconv.FormatUint(rq.ID, 10) + "." + rq.Class
}

// buildPlatform resolves a node platform name, matching cmd/sbsim's
// vocabulary.
func buildPlatform(name string) (*arch.Platform, error) {
	switch {
	case name == "quad":
		return arch.QuadHMP(), nil
	case name == "biglittle":
		return arch.OctaBigLittle(), nil
	case strings.HasPrefix(name, "scaling:"):
		nc, err := strconv.Atoi(strings.TrimPrefix(name, "scaling:"))
		if err != nil {
			return nil, fmt.Errorf("fleet: bad scaling core count in %q: %v", name, err)
		}
		return arch.ScalingHMP(nc)
	}
	return nil, fmt.Errorf("fleet: unknown platform %q (quad | biglittle | scaling:<n>)", name)
}

// buildBalancer resolves a node's intra-chip balancer.
func buildBalancer(name string, plat *arch.Platform, trainSeed, annealSeed uint64) (kernel.Balancer, error) {
	switch name {
	case "smartbalance":
		pred, err := trainedPredictor(plat.Types, trainSeed)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Anneal.Seed = annealSeed
		return core.New(pred, cfg)
	case "vanilla":
		return balancer.Vanilla{}, nil
	case "gts":
		return balancer.NewGTS(plat)
	case "iks":
		return balancer.NewIKS(plat)
	case "pinned":
		return balancer.Pinned{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown balancer %q (smartbalance | vanilla | gts | iks | pinned)", name)
}

// predictorEntry is one memoised training run.
type predictorEntry struct {
	once sync.Once
	pred *core.Predictor
	err  error
}

// predictorCache memoises trained predictors per (core-type set,
// seed), exactly like the sweep engine's: training is a pure function
// of both, so memoisation cannot change any result — it only stops N
// same-platform nodes from redoing one identical fit.
var predictorCache sync.Map

// trainedPredictor trains (or reuses) the predictor for the type set.
func trainedPredictor(types []arch.CoreType, seed uint64) (*core.Predictor, error) {
	names := make([]string, len(types))
	for i := range types {
		names[i] = types[i].Name
	}
	key := fmt.Sprintf("%s|%d", strings.Join(names, ","), seed)
	v, _ := predictorCache.LoadOrStore(key, &predictorEntry{})
	e := v.(*predictorEntry)
	e.once.Do(func() {
		tc := core.DefaultTrainConfig()
		tc.Seed = seed
		e.pred, e.err = core.Train(types, tc)
	})
	return e.pred, e.err
}
