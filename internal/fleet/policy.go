package fleet

import (
	"fmt"
	"sort"
)

// Dispatch policies: how the front dispatcher picks a node for each
// admitted request. All three are pure functions of the nodes' tick
// signals and the within-window assignments already made (assign
// updates queueDepth immediately, so a burst landing inside one tick
// window spreads instead of piling onto the tick-start argmin).
//
//	rr      round-robin, ignores all signals — the baseline
//	least   fewest outstanding requests, normalised by core count
//	energy  cheapest estimated joules per request, derated by load
type Policy string

const (
	PolicyRoundRobin Policy = "rr"
	PolicyLeastLoad  Policy = "least"
	PolicyEnergy     Policy = "energy"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyRoundRobin, PolicyLeastLoad, PolicyEnergy:
		return Policy(s), nil
	}
	return "", fmt.Errorf("fleet: unknown policy %q (rr | least | energy)", s)
}

// epsJoules floors the energy score so a node whose estimate is
// (near-)zero still gets load-derated instead of scoring flat zero.
const epsJoules = 1e-3

// picker routes one request. pick must be called from the serial
// dispatch section only.
type picker struct {
	policy Policy
	nodes  []*Node
	next   int       // round-robin cursor
	jprs   []float64 // scratch for the warm-median computation
}

func newPicker(policy Policy, nodes []*Node) *picker {
	return &picker{policy: policy, nodes: nodes}
}

// pick selects the destination node for the next request.
func (p *picker) pick() *Node {
	switch p.policy {
	case PolicyRoundRobin:
		n := p.nodes[p.next%len(p.nodes)]
		p.next++
		return n
	case PolicyLeastLoad:
		return p.argmin(loadScore)
	case PolicyEnergy:
		med, warm := p.warmMedianJPR()
		if !warm {
			// No node has an estimate yet: only load can separate them.
			return p.argmin(loadScore)
		}
		return p.argminEnergy(med)
	}
	// Unreachable: the policy was validated at construction.
	return p.nodes[0]
}

// warmMedianJPR is the median joules-per-request estimate across the
// nodes that have one. It is the stand-in cost for cold nodes: a node
// with no estimate is priced like a typical node, so only load
// separates it from the pack, instead of its unknown cost reading as
// free and every burst flooding it until it warms.
func (p *picker) warmMedianJPR() (float64, bool) {
	p.jprs = p.jprs[:0]
	for _, n := range p.nodes {
		if jpr, ok := n.jouleEstimate(); ok {
			p.jprs = append(p.jprs, jpr)
		}
	}
	if len(p.jprs) == 0 {
		return 0, false
	}
	sort.Float64s(p.jprs)
	m := len(p.jprs)
	if m%2 == 1 {
		return p.jprs[m/2], true
	}
	return (p.jprs[m/2-1] + p.jprs[m/2]) / 2, true
}

// argminEnergy is argmin over the energy score with cold nodes priced
// at the warm-median estimate.
func (p *picker) argminEnergy(medianJPR float64) *Node {
	best := p.nodes[0]
	bestScore := energyScore(best, medianJPR)
	for _, n := range p.nodes[1:] {
		if s := energyScore(n, medianJPR); s < bestScore {
			best, bestScore = n, s
		}
	}
	return best
}

// argmin returns the lowest-scoring node, ties to the lowest ID (the
// iteration order), which keeps routing deterministic.
func (p *picker) argmin(score func(*Node) float64) *Node {
	best := p.nodes[0]
	bestScore := score(best)
	for _, n := range p.nodes[1:] {
		if s := score(n); s < bestScore {
			best, bestScore = n, s
		}
	}
	return best
}

// loadScore is outstanding requests per core: a 4-core node with 8
// queued is busier than a 16-core node with 12.
func loadScore(n *Node) float64 {
	return float64(n.queueDepth()) / float64(n.cores)
}

// energyScore is the estimated marginal cost of routing here: the
// node's decayed joules-per-request estimate, derated by its current
// load (a cheap node that is saturated stops being cheap — queued
// requests burn idle energy elsewhere while they wait). A node with no
// estimate yet — cold start, or idle long enough for the decayed
// horizon to empty — is priced at the fleet's warm-median estimate
// rather than zero: the old zero pricing scored strictly below every
// warm node's real cost and flooded cold nodes with whole bursts.
func energyScore(n *Node, medianJPR float64) float64 {
	jpr, ok := n.jouleEstimate()
	if !ok {
		jpr = medianJPR
	}
	return (jpr + epsJoules) * (1 + loadScore(n))
}
