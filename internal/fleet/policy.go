package fleet

import "fmt"

// Dispatch policies: how the front dispatcher picks a node for each
// admitted request. All three are pure functions of the nodes' tick
// signals and the within-window assignments already made (assign
// updates queueDepth immediately, so a burst landing inside one tick
// window spreads instead of piling onto the tick-start argmin).
//
//	rr      round-robin, ignores all signals — the baseline
//	least   fewest outstanding requests, normalised by core count
//	energy  cheapest estimated joules per request, derated by load
type Policy string

const (
	PolicyRoundRobin Policy = "rr"
	PolicyLeastLoad  Policy = "least"
	PolicyEnergy     Policy = "energy"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyRoundRobin, PolicyLeastLoad, PolicyEnergy:
		return Policy(s), nil
	}
	return "", fmt.Errorf("fleet: unknown policy %q (rr | least | energy)", s)
}

// epsJoules floors the energy score. It is the tie-breaking mass that
// makes nodes with no joules-per-request estimate yet (cold start, or
// idle long enough for the decayed horizon to empty) score purely on
// load, so the energy policy degrades to least-loaded instead of
// flooding node zero during warmup.
const epsJoules = 1e-3

// picker routes one request. pick must be called from the serial
// dispatch section only.
type picker struct {
	policy Policy
	nodes  []*Node
	next   int // round-robin cursor
}

func newPicker(policy Policy, nodes []*Node) *picker {
	return &picker{policy: policy, nodes: nodes}
}

// pick selects the destination node for the next request.
func (p *picker) pick() *Node {
	switch p.policy {
	case PolicyRoundRobin:
		n := p.nodes[p.next%len(p.nodes)]
		p.next++
		return n
	case PolicyLeastLoad:
		return p.argmin(loadScore)
	case PolicyEnergy:
		return p.argmin(energyScore)
	}
	// Unreachable: the policy was validated at construction.
	return p.nodes[0]
}

// argmin returns the lowest-scoring node, ties to the lowest ID (the
// iteration order), which keeps routing deterministic.
func (p *picker) argmin(score func(*Node) float64) *Node {
	best := p.nodes[0]
	bestScore := score(best)
	for _, n := range p.nodes[1:] {
		if s := score(n); s < bestScore {
			best, bestScore = n, s
		}
	}
	return best
}

// loadScore is outstanding requests per core: a 4-core node with 8
// queued is busier than a 16-core node with 12.
func loadScore(n *Node) float64 {
	return float64(n.queueDepth()) / float64(n.cores)
}

// energyScore is the estimated marginal cost of routing here: the
// node's decayed joules-per-request estimate, derated by its current
// load (a cheap node that is saturated stops being cheap — queued
// requests burn idle energy elsewhere while they wait). Nodes with no
// estimate yet score as if free, so only load separates them.
func energyScore(n *Node) float64 {
	jpr, ok := n.jouleEstimate()
	if !ok {
		jpr = 0
	}
	return (jpr + epsJoules) * (1 + loadScore(n))
}
