package fleet

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"smartbalance/internal/rng"
)

// Arrival processes: the open-loop request streams the fleet admits.
// "Open-loop" means arrivals never wait for the system — the stream
// stands in for millions of independent users, whose request times do
// not depend on how loaded the fleet is. Each process is a
// deterministic function of the fleet seed: the dispatcher draws the
// per-tick arrival counts and offsets from one seeded stream, so equal
// seeds regenerate the identical request sequence for any policy or
// worker count.
//
// The spec grammar is "kind" or "kind:key=val,key=val":
//
//	uniform:rate=400                        constant-rate Poisson
//	diurnal:rate=400,depth=0.6,period=2000  sinusoid-modulated Poisson
//	bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25
//
// diurnal's period is in simulated milliseconds (one compressed
// "day"); bursty is a two-state MMPP: a calm state at the base rate
// and a burst state at burst x the base rate, switching per tick with
// the given probabilities.

// Arrival is one open-loop arrival process. Implementations are
// stateful (the MMPP remembers its phase) and not safe for concurrent
// use; the fleet drives them from its serial dispatch section only.
type Arrival interface {
	// Spec returns the canonical spec string the process was built
	// from, with every parameter made explicit.
	Spec() string
	// Rate returns the instantaneous arrival rate in requests per
	// simulated second at time atNs, advancing any internal state the
	// process keeps per observation window. Callers sample it once per
	// tick, at the tick's start.
	Rate(atNs int64) float64
}

// uniformArrival is a constant-rate Poisson process.
type uniformArrival struct {
	rate float64
}

func (u *uniformArrival) Spec() string {
	return "uniform:rate=" + formatRate(u.rate)
}

func (u *uniformArrival) Rate(int64) float64 { return u.rate }

// diurnalArrival modulates a Poisson process with one sinusoid —
// the compressed day/night cycle. The phase starts at the trough so a
// run opens in the quiet period and climbs toward peak traffic.
type diurnalArrival struct {
	rate  float64 // mean rate, req/s
	depth float64 // modulation depth in [0, 1)
	// periodMs is one full cycle in (possibly fractional) simulated
	// milliseconds — kept exactly as parsed so Spec() round-trips. The
	// old int64-nanosecond field made the round trip lossy twice over:
	// Spec() rendered it with %d (truncating fractional milliseconds)
	// and the parse truncated rather than rounded the ms->ns scaling.
	periodMs float64
}

func (d *diurnalArrival) Spec() string {
	return fmt.Sprintf("diurnal:rate=%s,depth=%s,period=%s",
		formatRate(d.rate), formatRate(d.depth), formatRate(d.periodMs))
}

func (d *diurnalArrival) Rate(atNs int64) float64 {
	phase := 2 * math.Pi * float64(atNs) / (d.periodMs * 1e6)
	return d.rate * (1 + d.depth*math.Sin(phase-math.Pi/2))
}

// burstyArrival is a two-state Markov-modulated Poisson process: calm
// at the base rate, bursting at burst x base, with per-tick switching
// probabilities. The state chain draws from its own split of the fleet
// arrival stream, so the burst schedule is seed-deterministic.
type burstyArrival struct {
	rate    float64 // calm-state rate, req/s
	burst   float64 // burst-state multiplier, > 1
	pBurst  float64 // P(calm -> burst) per rate sample
	pCalm   float64 // P(burst -> calm) per rate sample
	r       *rng.Rand
	inBurst bool
}

func (b *burstyArrival) Spec() string {
	return fmt.Sprintf("bursty:rate=%s,burst=%s,pburst=%s,pcalm=%s",
		formatRate(b.rate), formatRate(b.burst), formatRate(b.pBurst), formatRate(b.pCalm))
}

func (b *burstyArrival) Rate(int64) float64 {
	if b.inBurst {
		if b.r.Float64() < b.pCalm {
			b.inBurst = false
		}
	} else {
		if b.r.Float64() < b.pBurst {
			b.inBurst = true
		}
	}
	if b.inBurst {
		return b.rate * b.burst
	}
	return b.rate
}

// ParseArrival parses an arrival spec. stream seeds the process's own
// randomness (the MMPP state chain); derive it from the fleet seed so
// one knob reproduces the whole run.
func ParseArrival(spec string, stream *rng.Rand) (Arrival, error) {
	kind := spec
	params := ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		kind, params = spec[:i], spec[i+1:]
	}
	kv, err := parseParams(params)
	if err != nil {
		return nil, fmt.Errorf("fleet: arrival %q: %w", spec, err)
	}
	get := func(key string, def float64) float64 {
		if v, ok := kv[key]; ok {
			delete(kv, key)
			return v
		}
		return def
	}
	var a Arrival
	switch kind {
	case "uniform":
		u := &uniformArrival{rate: get("rate", 400)}
		if u.rate <= 0 {
			return nil, fmt.Errorf("fleet: arrival %q: non-positive rate", spec)
		}
		a = u
	case "diurnal":
		d := &diurnalArrival{
			rate:     get("rate", 400),
			depth:    get("depth", 0.6),
			periodMs: get("period", 2000),
		}
		if d.rate <= 0 || d.periodMs <= 0 {
			return nil, fmt.Errorf("fleet: arrival %q: non-positive rate or period", spec)
		}
		if d.depth < 0 || d.depth >= 1 {
			return nil, fmt.Errorf("fleet: arrival %q: depth %v outside [0,1)", spec, d.depth)
		}
		a = d
	case "bursty":
		b := &burstyArrival{
			rate:   get("rate", 300),
			burst:  get("burst", 6),
			pBurst: get("pburst", 0.08),
			pCalm:  get("pcalm", 0.25),
			r:      stream.Split(),
		}
		if b.rate <= 0 || b.burst <= 1 {
			return nil, fmt.Errorf("fleet: arrival %q: need rate > 0 and burst > 1", spec)
		}
		if b.pBurst <= 0 || b.pBurst > 1 || b.pCalm <= 0 || b.pCalm > 1 {
			return nil, fmt.Errorf("fleet: arrival %q: switching probabilities outside (0,1]", spec)
		}
		a = b
	default:
		return nil, fmt.Errorf("fleet: unknown arrival kind %q (uniform | diurnal | bursty)", kind)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("fleet: arrival %q: unknown parameters %v", spec, keys)
	}
	return a, nil
}

// parseParams splits "k=v,k=v" into a map.
func parseParams(s string) (map[string]float64, error) {
	kv := map[string]float64{}
	if s == "" {
		return kv, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("malformed parameter %q (want key=value)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %v", part, err)
		}
		kv[strings.TrimSpace(k)] = f
	}
	return kv, nil
}

// formatRate renders a parameter with the shortest exact form.
func formatRate(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// poisson draws a Poisson-distributed count with the given mean, via
// Knuth's product-of-uniforms method — O(mean) per draw, exact, and a
// pure function of the stream. Per-tick means stay small (rate x tick,
// tens at most), so the linear cost is irrelevant.
func poisson(r *rng.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Split very large means to keep exp(-mean) away from underflow.
	k := 0
	for mean > 256 {
		k += poisson(r, 256)
		mean -= 256
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := -1
	for p > limit {
		p *= r.Float64()
		n++
	}
	if n < 0 {
		n = 0
	}
	return k + n
}

// drawWindow appends the sorted arrival times of one tick window
// [fromNs, toNs) to buf: a Poisson count at the window's sampled rate,
// with offsets uniform over the window. Equal draws are
// interchangeable, so the sort is canonical.
func drawWindow(r *rng.Rand, a Arrival, fromNs, toNs int64, buf []int64) []int64 {
	rate := a.Rate(fromNs)
	span := toNs - fromNs
	if span <= 0 {
		return buf
	}
	mean := rate * float64(span) * 1e-9
	n := poisson(r, mean)
	start := len(buf)
	for i := 0; i < n; i++ {
		buf = append(buf, fromNs+int64(r.Float64()*float64(span)))
	}
	win := buf[start:]
	sort.Slice(win, func(i, j int) bool { return win[i] < win[j] })
	return buf
}
