package fleet

import (
	"math"
	"testing"

	"smartbalance/internal/rng"
)

// refQuantile is the nearest-rank definition straight from the
// textbook: rank = ceil(q*n) clamped to [1, n], element rank-1 of the
// sorted sample. Written independently of quantile so the table test
// below checks the production code against it rather than against
// itself. The big.Float detour would be overkill; the epsilon-free
// ceil here is fine because the table feeds it exact products only.
func refQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileNearestRank is the regression test for the quantile
// off-by-one: the old pseudo-ceil (+0.999999) read one rank too low
// whenever q*n sat within 1e-6 above an integer (q=0.5000001, n=2
// returned the minimum instead of the maximum), which skewed the p99
// EWMA on quiet ticks with one- and two-sample windows. Cases whose
// product carries upward float slop set slop and skip the reference
// comparison: the naive ceil in refQuantile jumps the extra rank
// there, and correcting that is precisely the production epsilon's
// job.
func TestQuantileNearestRank(t *testing.T) {
	seq := func(n int) []int64 {
		s := make([]int64, n)
		for i := range s {
			s[i] = int64((i + 1) * 100)
		}
		return s
	}
	cases := []struct {
		name   string
		sorted []int64
		q      float64
		want   int64
		slop   bool
	}{
		{"empty", nil, 0.99, 0, false},
		{"n=1 q=0.99", seq(1), 0.99, 100, false},
		{"n=1 q=0.5", seq(1), 0.5, 100, false},
		{"n=1 q=0", seq(1), 0, 100, false},
		{"n=2 q=0.99", seq(2), 0.99, 200, false},
		{"n=2 q=0.5", seq(2), 0.5, 100, false},
		// Pre-fix failure: 0.5000001*2 + 0.999999 = 1.9999992, so the
		// old code truncated to rank 1; nearest rank is ceil(1.0000002)
		// = 2.
		{"n=2 q just above half", seq(2), 0.5000001, 200, false},
		{"n=10 q=0.7", seq(10), 0.7, 700, false},
		{"n=10 q=0.99", seq(10), 0.99, 1000, false},
		{"n=10 q=0.5", seq(10), 0.5, 500, false},
		{"n=100 q=0.99", seq(100), 0.99, 9900, false},
		{"n=100 q=0.95", seq(100), 0.95, 9500, false},
		// 0.55*100 = 55.000000000000007 in float64: the exact product
		// is 55, so nearest rank is 55, and only the epsilon keeps the
		// ceil from reading 56.
		{"n=100 q=0.55 upward slop", seq(100), 0.55, 5500, true},
		{"q=1 is the max", seq(7), 1, 700, false},
	}
	for _, c := range cases {
		if got := quantile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: quantile = %d, want %d", c.name, got, c.want)
		}
		if c.slop {
			continue
		}
		if got, want := quantile(c.sorted, c.q), refQuantile(c.sorted, c.q); got != want {
			t.Errorf("%s: quantile = %d, reference = %d", c.name, got, want)
		}
	}
}

// TestQuantileMatchesReferenceSeeded sweeps seeded random samples and
// quantiles whose products are exact (multiples of 1/64), where the
// production epsilon cannot move the rank, and demands exact agreement
// with the reference on every draw.
func TestQuantileMatchesReferenceSeeded(t *testing.T) {
	r := rng.New(0x9E37)
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(r.Uint64()%50)
		sorted := make([]int64, n)
		v := int64(0)
		for i := range sorted {
			v += int64(r.Uint64() % 1000)
			sorted[i] = v
		}
		q := float64(r.Uint64()%65) / 64
		if got, want := quantile(sorted, q), refQuantile(sorted, q); got != want {
			t.Fatalf("trial %d: n=%d q=%v: quantile = %d, reference = %d", trial, n, q, got, want)
		}
	}
}
