package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkFleet measures end-to-end fleet throughput — full kernels
// per node, parallel node stepping — on the canned bursty scenario at
// the 8- and 32-node points scripts/bench.sh records in
// BENCH_core.json. Reported as completed requests per wall second and
// nanoseconds of wall time per completed request.
func BenchmarkFleet(b *testing.B) {
	for _, nodes := range []int{8, 32} {
		b.Run(fmt.Sprintf("n%d", nodes), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Nodes = nodes
			cfg.Arrival = "bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25"
			cfg.DurationNs = 200e6
			cfg.Seed = 7
			cfg.Workers = 8
			completed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := f.Run()
				if err != nil {
					b.Fatal(err)
				}
				completed += res.Completed
			}
			b.StopTimer()
			if completed == 0 {
				b.Fatal("benchmark completed no requests")
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(completed)/secs, "req/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(completed), "ns/request")
		})
	}
}
