package fleet

import (
	"fmt"
	"strings"
	"testing"

	"smartbalance/internal/rng"
)

func TestParseArrivalCanonicalSpecs(t *testing.T) {
	cases := []struct{ in, want string }{
		{"uniform", "uniform:rate=400"},
		{"uniform:rate=250", "uniform:rate=250"},
		{"diurnal", "diurnal:rate=400,depth=0.6,period=2000"},
		{"diurnal:rate=100,depth=0.3,period=500", "diurnal:rate=100,depth=0.3,period=500"},
		{"bursty", "bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25"},
		{"bursty:rate=120,burst=3,pburst=0.1,pcalm=0.5", "bursty:rate=120,burst=3,pburst=0.1,pcalm=0.5"},
	}
	for _, c := range cases {
		a, err := ParseArrival(c.in, rng.New(1))
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", c.in, err)
		}
		if got := a.Spec(); got != c.want {
			t.Errorf("ParseArrival(%q).Spec() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseArrivalRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"poisson",                // unknown kind
		"uniform:rate=0",         // non-positive rate
		"uniform:rate=-5",        //
		"uniform:burst=2",        // unknown parameter
		"uniform:rate",           // malformed key=value
		"uniform:rate=x",         // non-numeric
		"diurnal:depth=1.5",      // depth outside [0,1)
		"diurnal:period=0",       // non-positive period
		"bursty:burst=1",         // burst must exceed 1
		"bursty:pburst=0",        // probability outside (0,1]
		"bursty:pcalm=2",         //
		"bursty:rate=10,extra=1", // unknown parameter
	}
	for _, in := range bad {
		if _, err := ParseArrival(in, rng.New(1)); err == nil {
			t.Errorf("ParseArrival(%q) accepted, want error", in)
		}
	}
}

// drawAll draws count ticks of tickNs each and returns every arrival
// offset in order.
func drawAll(t *testing.T, spec string, seed uint64, ticks int, tickNs int64) []int64 {
	t.Helper()
	stream := rng.New(seed)
	a, err := ParseArrival(spec, stream)
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	for i := 0; i < ticks; i++ {
		out = drawWindow(stream, a, int64(i)*tickNs, int64(i+1)*tickNs, out)
	}
	return out
}

func TestArrivalsDeterministicUnderEqualSeeds(t *testing.T) {
	for _, spec := range []string{"uniform", "diurnal", "bursty"} {
		a := drawAll(t, spec, 42, 400, 5e6)
		b := drawAll(t, spec, 42, 400, 5e6)
		if len(a) != len(b) {
			t.Fatalf("%s: equal seeds drew %d vs %d arrivals", spec, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: equal seeds diverge at arrival %d: %d vs %d", spec, i, a[i], b[i])
			}
		}
	}
}

func TestArrivalsDistinctUnderDistinctSeeds(t *testing.T) {
	for _, spec := range []string{"uniform", "diurnal", "bursty"} {
		a := drawAll(t, spec, 1, 400, 5e6)
		b := drawAll(t, spec, 2, 400, 5e6)
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 drew identical streams (%d arrivals)", spec, len(a))
		}
	}
}

func TestArrivalsSortedWithinWindows(t *testing.T) {
	stream := rng.New(9)
	a, err := ParseArrival("bursty", stream)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int64
	const tick = 5e6
	for i := 0; i < 200; i++ {
		from, to := int64(i)*tick, int64(i+1)*tick
		buf = drawWindow(stream, a, from, to, buf[:0])
		for j, at := range buf {
			if at < from || at >= to {
				t.Fatalf("tick %d: arrival %d at %dns outside [%d, %d)", i, j, at, from, to)
			}
			if j > 0 && buf[j-1] > at {
				t.Fatalf("tick %d: arrivals out of order at %d", i, j)
			}
		}
	}
}

// meanRate estimates the empirical rate in requests per second over
// the drawn span.
func meanRate(arrivals []int64, spanNs int64) float64 {
	return float64(len(arrivals)) / (float64(spanNs) * 1e-9)
}

func TestUniformMeanRate(t *testing.T) {
	const ticks, tick = 2000, int64(5e6) // 10 simulated seconds
	got := meanRate(drawAll(t, "uniform:rate=400", 3, ticks, tick), int64(ticks)*tick)
	if got < 360 || got > 440 {
		t.Errorf("uniform rate=400 drew %.1f req/s, want within [360, 440]", got)
	}
}

func TestDiurnalMeanRate(t *testing.T) {
	// Whole periods: the sinusoid averages out, so the empirical mean
	// approaches the base rate; and the trough/peak windows must differ.
	const tick = int64(5e6)
	const ticks = 2000 // 10s = 5 full 2000ms periods
	arrivals := drawAll(t, "diurnal:rate=400,depth=0.6,period=2000", 4, ticks, tick)
	got := meanRate(arrivals, int64(ticks)*tick)
	if got < 360 || got > 440 {
		t.Errorf("diurnal rate=400 drew %.1f req/s over whole periods, want within [360, 440]", got)
	}

	// The first quarter-period sits at the trough, the third at the
	// peak: (1-depth) vs (1+depth) of the base rate.
	periodNs := int64(2000) * 1e6
	var trough, peak int
	for _, at := range arrivals {
		switch phase := at % periodNs; {
		case phase < periodNs/4:
			trough++
		case phase >= periodNs/2 && phase < 3*periodNs/4:
			peak++
		}
	}
	if trough*2 >= peak {
		t.Errorf("diurnal modulation missing: trough quarter drew %d, peak quarter %d", trough, peak)
	}
}

func TestBurstyMeanRate(t *testing.T) {
	// The MMPP's stationary burst fraction is pburst/(pburst+pcalm);
	// its long-run mean rate is rate*(1 + frac*(burst-1)).
	const tick = int64(5e6)
	const ticks = 8000 // 40 simulated seconds to let the chain mix
	got := meanRate(drawAll(t, "bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25", 5, ticks, tick), int64(ticks)*tick)
	frac := 0.08 / (0.08 + 0.25)
	want := 300 * (1 + frac*5)
	if got < want*0.85 || got > want*1.15 {
		t.Errorf("bursty drew %.1f req/s, want within 15%% of %.1f", got, want)
	}
	// And it must actually burst: the peak rate observed in some window
	// should reach the burst multiplier, not hover at the base rate.
	stream := rng.New(5)
	a, err := ParseArrival("bursty:rate=300,burst=6,pburst=0.08,pcalm=0.25", stream)
	if err != nil {
		t.Fatal(err)
	}
	sawBurst := false
	for i := 0; i < 1000 && !sawBurst; i++ {
		sawBurst = a.Rate(int64(i)*tick) > 300*5
	}
	if !sawBurst {
		t.Error("bursty process never entered the burst state in 1000 ticks")
	}
}

func TestPoissonMean(t *testing.T) {
	r := rng.New(11)
	for _, mean := range []float64{0.5, 3, 40, 700} {
		var total int
		const draws = 4000
		for i := 0; i < draws; i++ {
			total += poisson(r, mean)
		}
		got := float64(total) / draws
		if got < mean*0.9 || got > mean*1.1 {
			t.Errorf("poisson(mean=%v) averaged %.3f over %d draws", mean, got, draws)
		}
	}
	if n := poisson(r, 0); n != 0 {
		t.Errorf("poisson(0) = %d, want 0", n)
	}
	if n := poisson(r, -3); n != 0 {
		t.Errorf("poisson(-3) = %d, want 0", n)
	}
}

func TestArrivalSpecRoundTrips(t *testing.T) {
	// Canonical specs must re-parse to themselves: the fleet records
	// them in telemetry meta, and reproducing a run from the export
	// depends on the round trip.
	for _, spec := range []string{"uniform", "diurnal", "bursty"} {
		a, err := ParseArrival(spec, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		canon := a.Spec()
		b, err := ParseArrival(canon, rng.New(1))
		if err != nil {
			t.Fatalf("canonical spec %q does not re-parse: %v", canon, err)
		}
		if got := b.Spec(); got != canon {
			t.Errorf("spec %q round-trips to %q", canon, got)
		}
		if !strings.HasPrefix(canon, spec+":") {
			t.Errorf("canonical spec %q does not extend %q", canon, spec)
		}
	}
}

// TestArrivalSpecRoundTripsProperty is the regression test for the
// diurnal period truncation bug: Spec() rendered periodNs/1e6 with %d,
// so any non-integral-millisecond period (period=2.5) came back as its
// floor (period=2) from ParseArrival(a.Spec()). The round trip must be
// an identity for every valid parameter combination, so this drives it
// with seeded random params, including gnarly fractional ones.
func TestArrivalSpecRoundTripsProperty(t *testing.T) {
	r := rng.New(0xA221)
	// in (lo, hi]: arrival params are all strictly positive.
	draw := func(lo, hi float64) float64 {
		return lo + (hi-lo)*r.Float64()
	}
	for i := 0; i < 500; i++ {
		var spec string
		switch i % 3 {
		case 0:
			spec = "uniform:rate=" + formatRate(draw(0, 2000))
		case 1:
			spec = fmt.Sprintf("diurnal:rate=%s,depth=%s,period=%s",
				formatRate(draw(0, 2000)), formatRate(draw(0, 0.999)), formatRate(draw(0, 5000)))
		case 2:
			spec = fmt.Sprintf("bursty:rate=%s,burst=%s,pburst=%s,pcalm=%s",
				formatRate(draw(0, 2000)), formatRate(draw(1, 20)),
				formatRate(draw(0, 1)), formatRate(draw(0, 1)))
		}
		a, err := ParseArrival(spec, rng.New(1))
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", spec, err)
		}
		if got := a.Spec(); got != spec {
			t.Fatalf("round trip broke: ParseArrival(%q).Spec() = %q", spec, got)
		}
	}
	// The documented pre-fix victim, pinned explicitly.
	spec := "diurnal:rate=400,depth=0.6,period=2.5"
	a, err := ParseArrival(spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Spec(); got != spec {
		t.Fatalf("fractional period truncated: got %q, want %q", got, spec)
	}
}
