package fleet

import "testing"

// warmNode fabricates a node whose decayed signals read as a warm node
// with the given joules-per-request estimate.
func warmNode(id, cores int, jpr float64) *Node {
	return &Node{
		ID:          id,
		cores:       cores,
		ewmaEnergyJ: jpr * 10,
		// ewmaCompleted >= 0.5 makes jouleEstimate report ok.
		ewmaCompleted: 10,
	}
}

// coldNode fabricates a node with no joules estimate yet.
func coldNode(id, cores int) *Node {
	return &Node{ID: id, cores: cores}
}

// TestEnergyPolicyColdStartNotFlooded is the regression test for the
// cold-start starvation bug: a single cold node among warm ones used to
// score epsJoules*(1+load) — strictly below any warm node's real cost —
// so an entire burst piled onto it until it warmed. With the cold node
// priced at the warm-median estimate, a burst must spread by load
// instead.
func TestEnergyPolicyColdStartNotFlooded(t *testing.T) {
	nodes := []*Node{coldNode(0, 4)}
	for i := 1; i < 8; i++ {
		// Warm estimates around 0.03 J/req, all well above epsJoules.
		nodes = append(nodes, warmNode(i, 4, 0.03+0.001*float64(i)))
	}
	p := newPicker(PolicyEnergy, nodes)

	const burst = 32
	counts := make([]int, len(nodes))
	for i := 0; i < burst; i++ {
		n := p.pick()
		n.assign(Request{ID: uint64(i)})
		counts[n.ID]++
	}

	fair := burst / len(nodes)
	if counts[0] > 2*fair {
		t.Fatalf("cold node absorbed %d of %d burst requests (fair share %d): cold-start starvation is back; counts=%v",
			counts[0], burst, fair, counts)
	}
	spread := 0
	for _, c := range counts {
		if c > 0 {
			spread++
		}
	}
	if spread < len(nodes)/2 {
		t.Fatalf("burst landed on only %d of %d nodes: %v", spread, len(nodes), counts)
	}
}

// TestEnergyPolicyAllColdDegradesToLoad: with no estimates anywhere the
// energy policy must order nodes purely by load (ties to lowest ID),
// exactly like least-loaded.
func TestEnergyPolicyAllColdDegradesToLoad(t *testing.T) {
	nodes := []*Node{coldNode(0, 4), coldNode(1, 4), coldNode(2, 4)}
	p := newPicker(PolicyEnergy, nodes)
	for i := 0; i < 9; i++ {
		n := p.pick()
		n.assign(Request{ID: uint64(i)})
	}
	for _, n := range nodes {
		if got := n.queueDepth(); got != 3 {
			t.Fatalf("node %d queue depth %d, want 3 (pure load ordering)", n.ID, got)
		}
	}
}

// TestEnergyPolicyStillPrefersCheapWarmNodes: the median pricing must
// not blunt the policy's point — an idle cheap warm node still wins
// over an idle expensive one.
func TestEnergyPolicyStillPrefersCheapWarmNodes(t *testing.T) {
	nodes := []*Node{
		warmNode(0, 4, 0.08),
		warmNode(1, 4, 0.02),
		warmNode(2, 4, 0.05),
	}
	p := newPicker(PolicyEnergy, nodes)
	if n := p.pick(); n.ID != 1 {
		t.Fatalf("picked node %d, want the cheapest warm node 1", n.ID)
	}
}
