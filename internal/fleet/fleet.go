// Package fleet is the inter-node tier of the SmartBalance
// reproduction: N independent simulated MPSoC nodes — each a full
// scheduling kernel with its own balancer, RNG streams, and telemetry
// collector — behind an L4-style dispatcher that admits an open-loop
// request stream and routes each request on per-node signals (estimated
// joules per request, queue depth, p99 latency EWMA).
//
// The paper balances threads within one chip; this tier adds the level
// above it, so the sense→predict→balance loop runs twice: once per
// node (the existing controller) and once across nodes (the
// dispatcher). Headline metrics are fleet-level joules per request and
// p99 request latency.
//
// Determinism contract: a fleet run is a pure function of its Config.
// Every random choice — arrival counts and offsets, request classes
// and per-request jitter seeds, each node's kernel service order and
// annealer — draws from a stream derived from Config.Seed by
// splitmix64, one stream per concern, so no consumer can perturb
// another. Nodes share no mutable state: the parallel section of a
// tick touches only node-local state, and every cross-node read or
// write happens in the serial sections in node-ID order. Equal seeds
// therefore produce byte-identical telemetry for any Workers value.
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"smartbalance/internal/rng"
	"smartbalance/internal/telemetry"
	"smartbalance/internal/workload"
)

// Seed-stream tags: xored into the fleet seed so each concern draws
// from its own decorrelated splitmix64 chain.
const (
	arrivalSeedTag = 0xA221_7A1F_EE75
	requestSeedTag = 0x2E90_E575_C1A5
)

// Config describes one fleet run. The zero value is not runnable; use
// DefaultConfig and override.
type Config struct {
	// Nodes is the fleet size.
	Nodes int
	// Profile is a comma-separated platform list cycled across nodes
	// (e.g. "quad,biglittle" alternates 4-core and 8-core chips). Names
	// match cmd/sbsim: quad | biglittle | scaling:<n>.
	Profile string
	// Balancer is the intra-node balancer every node runs
	// (smartbalance | vanilla | gts | iks | pinned).
	Balancer string
	// Policy picks the dispatcher (rr | least | energy).
	Policy string
	// Arrival is the open-loop arrival spec; see ParseArrival.
	Arrival string
	// Classes is the comma-separated request-class mix, drawn uniformly
	// per request (subset of workload.RequestClasses).
	Classes string
	// Seed reproduces the whole run.
	Seed uint64
	// DurationNs is the admission window: arrivals stop after it.
	DurationNs int64
	// TickNs is the dispatch quantum (default 5ms): arrivals within a
	// tick are routed together at its end and spawn at the next tick
	// boundary.
	TickNs int64
	// DrainNs bounds the post-admission drain that lets in-flight
	// requests finish (default: DurationNs).
	DrainNs int64
	// Workers bounds the node-stepping worker pool; <= 1 steps nodes
	// serially. The value never changes any output, only wall-clock.
	Workers int
	// Telemetry enables the fleet collector and per-node collectors.
	Telemetry bool
}

// DefaultConfig returns a small runnable fleet.
func DefaultConfig() Config {
	return Config{
		Nodes:      8,
		Profile:    "quad,biglittle",
		Balancer:   "smartbalance",
		Policy:     string(PolicyEnergy),
		Arrival:    "diurnal",
		Classes:    strings.Join(workload.RequestClasses(), ","),
		Seed:       1,
		DurationNs: 400e6,
		TickNs:     5e6,
		Workers:    1,
	}
}

// withDefaults resolves zero-valued optional fields.
func (c Config) withDefaults() Config {
	if c.TickNs == 0 {
		c.TickNs = 5e6
	}
	if c.DrainNs == 0 {
		c.DrainNs = c.DurationNs
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Classes == "" {
		c.Classes = strings.Join(workload.RequestClasses(), ",")
	}
	return c
}

// Fleet is one constructed run; call Run exactly once.
type Fleet struct {
	cfg    Config
	policy Policy
	nodes  []*Node
	proc   Arrival
	pick   *picker

	arrStream *rng.Rand // arrival counts and offsets
	reqStream *rng.Rand // request classes and jitter seeds
	classes   []string

	tel     *telemetry.Collector
	latHist *telemetry.Histogram

	nextID   uint64
	requests int
	latNs    []int64 // every completion latency, canonical order
	arrBuf   []int64 // per-tick arrival scratch
}

// latencyBoundsMs are the fleet latency histogram's upper bounds.
var latencyBoundsMs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// New validates the config and builds the fleet: nodes, arrival
// process, dispatcher, and (optionally) telemetry.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 node, have %d", cfg.Nodes)
	}
	if cfg.DurationNs <= 0 {
		return nil, fmt.Errorf("fleet: non-positive duration %d", cfg.DurationNs)
	}
	if cfg.TickNs <= 0 || cfg.TickNs > cfg.DurationNs {
		return nil, fmt.Errorf("fleet: tick %dns outside (0, duration]", cfg.TickNs)
	}
	policy, err := ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	classes, err := splitClasses(cfg.Classes)
	if err != nil {
		return nil, err
	}

	// One derived stream per concern: arrival draws, request draws, and
	// per-node kernel/annealer seeds, all chained off Config.Seed.
	arrState := cfg.Seed ^ arrivalSeedTag
	reqState := cfg.Seed ^ requestSeedTag
	f := &Fleet{
		cfg:       cfg,
		policy:    policy,
		proc:      nil,
		arrStream: rng.New(rng.Splitmix64(&arrState)),
		reqStream: rng.New(rng.Splitmix64(&reqState)),
		classes:   classes,
	}
	f.proc, err = ParseArrival(cfg.Arrival, f.arrStream)
	if err != nil {
		return nil, err
	}

	if cfg.Telemetry {
		f.tel = telemetry.New(telemetry.Config{})
		f.latHist = f.tel.Histogram("fleet_latency_ms", latencyBoundsMs)
	}

	plats := strings.Split(cfg.Profile, ",")
	nodeState := cfg.Seed
	for i := 0; i < cfg.Nodes; i++ {
		kernelSeed := rng.Splitmix64(&nodeState)
		annealSeed := rng.Splitmix64(&nodeState)
		var ntel *telemetry.Collector
		if cfg.Telemetry {
			ntel = telemetry.New(telemetry.Config{})
		}
		platName := strings.TrimSpace(plats[i%len(plats)])
		n, err := newNode(i, platName, cfg.Balancer, cfg.Seed, kernelSeed, annealSeed, ntel)
		if err != nil {
			return nil, err
		}
		f.nodes = append(f.nodes, n)
	}
	f.pick = newPicker(policy, f.nodes)

	if f.tel != nil {
		f.tel.SetMeta("tier", "fleet")
		f.tel.SetMeta("nodes", strconv.Itoa(cfg.Nodes))
		f.tel.SetMeta("profile", cfg.Profile)
		f.tel.SetMeta("balancer", cfg.Balancer)
		f.tel.SetMeta("policy", string(policy))
		f.tel.SetMeta("arrival", f.proc.Spec())
		f.tel.SetMeta("classes", strings.Join(classes, ","))
		f.tel.SetMeta("seed", strconv.FormatUint(cfg.Seed, 10))
		f.tel.SetMeta("duration_ms", strconv.FormatInt(cfg.DurationNs/1e6, 10))
		f.tel.SetMeta("tick_ms", strconv.FormatInt(cfg.TickNs/1e6, 10))
		// Workers is deliberately absent: the export must be
		// byte-identical for any worker count.
	}
	return f, nil
}

// splitClasses validates the class mix against the known classes.
func splitClasses(spec string) ([]string, error) {
	known := workload.RequestClasses()
	var out []string
	for _, c := range strings.Split(spec, ",") {
		c = strings.TrimSpace(c)
		found := false
		for _, k := range known {
			if c == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fleet: unknown request class %q (known: %v)", c, known)
		}
		out = append(out, c)
	}
	return out, nil
}

// Telemetry returns the fleet collector (nil unless Config.Telemetry).
func (f *Fleet) Telemetry() *telemetry.Collector { return f.tel }

// Run executes the whole fleet simulation: admit arrivals for
// DurationNs in TickNs windows, then drain in-flight requests for up
// to DrainNs more, and distill the result.
//
// Each tick is: draw the window's arrivals (serial) → step every node
// to the window's end (parallel-safe) → harvest completions in node-ID
// order (serial) → dispatch the window's arrivals on fresh signals
// (serial). Dispatched requests spawn at the next tick boundary, so a
// request's latency includes up to one tick of dispatch quantisation —
// the price of a deterministic parallel section.
func (f *Fleet) Run() (*Result, error) {
	tick := 0
	var now int64
	for now < f.cfg.DurationNs {
		end := now + f.cfg.TickNs
		if end > f.cfg.DurationNs {
			end = f.cfg.DurationNs
		}
		f.arrBuf = drawWindow(f.arrStream, f.proc, now, end, f.arrBuf[:0])
		if err := f.stepNodes(end); err != nil {
			return nil, err
		}
		completed := f.harvest()
		for _, at := range f.arrBuf {
			f.dispatch(at)
		}
		f.recordTick(tick, now, end, len(f.arrBuf), completed)
		now = end
		tick++
	}
	deadline := f.cfg.DurationNs + f.cfg.DrainNs
	for f.outstanding() > 0 && now < deadline {
		end := now + f.cfg.TickNs
		if end > deadline {
			end = deadline
		}
		if err := f.stepNodes(end); err != nil {
			return nil, err
		}
		completed := f.harvest()
		f.recordTick(tick, now, end, 0, completed)
		now = end
		tick++
	}
	res := f.result(now)
	f.exportTelemetry(res)
	return res, nil
}

// dispatch admits one request: class and jitter seed from the request
// stream, destination from the policy. Serial section.
func (f *Fleet) dispatch(atNs int64) {
	cls := f.classes[0]
	if len(f.classes) > 1 {
		cls = f.classes[f.reqStream.Intn(len(f.classes))]
	}
	rq := Request{
		ID:        f.nextID,
		ArrivalNs: atNs,
		Class:     cls,
		Seed:      f.reqStream.Uint64(),
	}
	f.nextID++
	f.requests++
	f.pick.pick().assign(rq)
}

// stepNodes advances every node to toNs. With Workers > 1 nodes step
// concurrently on a bounded pool; each goroutine touches only
// node-local state, and errors are collected per node and surfaced in
// node-ID order, so the outcome is identical to the serial path.
func (f *Fleet) stepNodes(toNs int64) error {
	if f.cfg.Workers <= 1 || len(f.nodes) == 1 {
		for _, n := range f.nodes {
			if err := n.step(toNs); err != nil {
				return err
			}
		}
		return nil
	}
	w := f.cfg.Workers
	if w > len(f.nodes) {
		w = len(f.nodes)
	}
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= len(f.nodes) {
					return
				}
				n := f.nodes[j]
				n.stepErr = n.step(toNs)
			}
		}()
	}
	wg.Wait()
	for _, n := range f.nodes {
		if n.stepErr != nil {
			return n.stepErr
		}
	}
	return nil
}

// harvest folds the tick's completions into the fleet accounting, in
// node-ID order (within a node, latencies are already in the node's
// canonical sorted order). Serial section.
func (f *Fleet) harvest() int {
	completed := 0
	for _, n := range f.nodes {
		for _, lat := range n.tickLatNs {
			f.latNs = append(f.latNs, lat)
			f.latHist.Observe(float64(lat) / 1e6)
		}
		completed += len(n.tickLatNs)
	}
	return completed
}

// recordTick emits the tick's telemetry epoch. No-op without a
// collector.
func (f *Fleet) recordTick(tick int, startNs, endNs int64, arrivals, completed int) {
	if f.tel == nil {
		return
	}
	f.tel.BeginEpoch(tick, startNs)
	f.tel.Span("tick", startNs, endNs-startNs,
		telemetry.Int("arrivals", int64(arrivals)),
		telemetry.Int("completed", int64(completed)),
		telemetry.Int("inflight", int64(f.outstanding())),
	)
}

// outstanding counts requests assigned but not completed, fleet-wide.
func (f *Fleet) outstanding() int {
	total := 0
	for _, n := range f.nodes {
		total += n.queueDepth()
	}
	return total
}

// NodeStats is one node's distilled outcome.
type NodeStats struct {
	ID               int
	Platform         string
	Requests         int
	Completed        int
	EnergyJ          float64
	JoulesPerRequest float64 // whole-run energy over completions; 0 if none completed
	P99Ms            float64 // the node's p99 latency EWMA at run end
}

// Result is the distilled outcome of one fleet run.
type Result struct {
	Nodes   int
	Policy  Policy
	Arrival string // canonical spec

	Requests  int // admitted by the arrival process
	Completed int
	InFlight  int // still outstanding when the drain deadline hit

	DurationNs int64 // admission window
	ElapsedNs  int64 // admission + drain actually simulated

	EnergyJ          float64 // fleet-wide, idle and drain included
	JoulesPerRequest float64 // EnergyJ over Completed; 0 if none completed

	P50Ms float64
	P95Ms float64
	P99Ms float64
	MaxMs float64

	PerNode []NodeStats
}

// result distills the run.
func (f *Fleet) result(elapsedNs int64) *Result {
	res := &Result{
		Nodes:      len(f.nodes),
		Policy:     f.policy,
		Arrival:    f.proc.Spec(),
		Requests:   f.requests,
		Completed:  len(f.latNs),
		InFlight:   f.outstanding(),
		DurationNs: f.cfg.DurationNs,
		ElapsedNs:  elapsedNs,
	}
	for _, n := range f.nodes {
		e := n.kern.TotalEnergyJ()
		ns := NodeStats{
			ID:        n.ID,
			Platform:  n.Platform,
			Requests:  n.requests,
			Completed: n.completed,
			EnergyJ:   e,
			P99Ms:     n.p99EWMANs / 1e6,
		}
		if n.completed > 0 {
			ns.JoulesPerRequest = e / float64(n.completed)
		}
		res.EnergyJ += e
		res.PerNode = append(res.PerNode, ns)
	}
	if res.Completed > 0 {
		res.JoulesPerRequest = res.EnergyJ / float64(res.Completed)
		sorted := append([]int64(nil), f.latNs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res.P50Ms = float64(quantile(sorted, 0.50)) / 1e6
		res.P95Ms = float64(quantile(sorted, 0.95)) / 1e6
		res.P99Ms = float64(quantile(sorted, 0.99)) / 1e6
		res.MaxMs = float64(sorted[len(sorted)-1]) / 1e6
	}
	return res
}

// exportTelemetry folds the result and the per-node collectors into
// the fleet collector: fleet totals first, then per-node rollups in
// node-ID order — the canonical merge order the byte-identity
// contract depends on.
func (f *Fleet) exportTelemetry(res *Result) {
	if f.tel == nil {
		return
	}
	f.tel.Counter("fleet_requests_total").Add(int64(res.Requests))
	f.tel.Counter("fleet_completed_total").Add(int64(res.Completed))
	f.tel.Gauge("fleet_inflight").Set(float64(res.InFlight))
	f.tel.Gauge("fleet_energy_j").Set(res.EnergyJ)
	f.tel.Gauge("fleet_joules_per_request").Set(res.JoulesPerRequest)
	f.tel.Gauge("fleet_p50_ms").Set(res.P50Ms)
	f.tel.Gauge("fleet_p95_ms").Set(res.P95Ms)
	f.tel.Gauge("fleet_p99_ms").Set(res.P99Ms)
	f.tel.Gauge("fleet_max_ms").Set(res.MaxMs)
	for i, n := range f.nodes {
		ns := &res.PerNode[i]
		id := strconv.Itoa(n.ID)
		f.tel.Counter(telemetry.Name("fleet_node_requests_total", "node", id)).Add(int64(ns.Requests))
		f.tel.Counter(telemetry.Name("fleet_node_completed_total", "node", id)).Add(int64(ns.Completed))
		f.tel.Gauge(telemetry.Name("fleet_node_energy_j", "node", id)).Set(ns.EnergyJ)
		f.tel.Gauge(telemetry.Name("fleet_node_joules_per_request", "node", id)).Set(ns.JoulesPerRequest)
		f.tel.Gauge(telemetry.Name("fleet_node_p99_ms", "node", id)).Set(ns.P99Ms)
		f.foldNode(n)
	}
}

// foldNode re-emits one node collector's counters and gauges under a
// node-prefixed key (node003_kernel_events_total{...}), making each
// node's kernel-level signals part of the fleet's single JSONL export
// — the same sbtelemetry-v1 bus the intra-node tier already speaks.
// Histograms and spans stay node-local: the fleet's epoch timeline is
// the tick sequence, and interleaving per-node kernel epochs into it
// would corrupt that contract.
func (f *Fleet) foldNode(n *Node) {
	if n.tel == nil {
		return
	}
	prefix := fmt.Sprintf("node%03d_", n.ID)
	for _, m := range n.tel.Trace().Metrics {
		switch m.Kind {
		case telemetry.KindCounter:
			f.tel.Counter(prefix + m.Key).Add(int64(m.Value))
		case telemetry.KindGauge:
			f.tel.Gauge(prefix + m.Key).Set(m.Value)
		}
	}
}

// String renders the result compactly.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet nodes=%d policy=%s arrival=%s\n", r.Nodes, r.Policy, r.Arrival)
	fmt.Fprintf(&sb, "  requests=%d completed=%d inflight=%d elapsed=%.0fms\n",
		r.Requests, r.Completed, r.InFlight, float64(r.ElapsedNs)/1e6)
	fmt.Fprintf(&sb, "  energy=%.4gJ joules/request=%.4g\n", r.EnergyJ, r.JoulesPerRequest)
	fmt.Fprintf(&sb, "  latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs)
	for i := range r.PerNode {
		n := &r.PerNode[i]
		fmt.Fprintf(&sb, "  node %d (%s): requests=%d completed=%d energy=%.4gJ j/req=%.4g p99~%.2fms\n",
			n.ID, n.Platform, n.Requests, n.Completed, n.EnergyJ, n.JoulesPerRequest, n.P99Ms)
	}
	return sb.String()
}
