package powermodel

import (
	"math"
	"testing"

	"smartbalance/internal/arch"
	"smartbalance/internal/workload"
)

func refPhase() workload.Phase {
	return workload.Phase{
		Name: "ref", Instructions: 1e6, ILP: 2, MemShare: refMemShare, BranchShare: refBranchShare,
		WorkingSetIKB: 8, WorkingSetDKB: 64, BranchEntropy: 0.3, MLP: 2,
	}
}

func TestCalibrationAnchorsToTable2(t *testing.T) {
	// At peak IPC on the reference mix, power must equal Table 2's peak
	// power exactly, for every core type.
	ph := refPhase()
	for _, ct := range arch.Table2Types() {
		ct := ct
		m, err := NewCoreModel(&ct)
		if err != nil {
			t.Fatal(err)
		}
		got := m.BusyPower(ct.PeakIPC, &ph)
		if math.Abs(got-ct.PeakPowerW) > 1e-9 {
			t.Errorf("%s: BusyPower(peak) = %g, want %g", ct.Name, got, ct.PeakPowerW)
		}
	}
}

func TestNewCoreModelRejectsInvalidType(t *testing.T) {
	bad := arch.BigCore()
	bad.PeakPowerW = 0
	if _, err := NewCoreModel(&bad); err == nil {
		t.Fatal("invalid core type accepted")
	}
}

func TestPowerOrderingAcrossStates(t *testing.T) {
	ct := arch.BigCore()
	m, _ := NewCoreModel(&ct)
	ph := refPhase()
	sleep := m.SleepW()
	leak := m.LeakW()
	idle := m.IdleW()
	busyLow := m.BusyPower(0.1, &ph)
	busyPeak := m.BusyPower(ct.PeakIPC, &ph)
	if !(sleep < leak && leak < idle && idle <= busyLow && busyLow < busyPeak) {
		t.Fatalf("power states out of order: sleep %.4g leak %.4g idle %.4g low %.4g peak %.4g",
			sleep, leak, idle, busyLow, busyPeak)
	}
}

func TestPowerMonotoneInIPC(t *testing.T) {
	ct := arch.HugeCore()
	m, _ := NewCoreModel(&ct)
	ph := refPhase()
	prev := 0.0
	for ipc := 0.0; ipc <= ct.PeakIPC; ipc += 0.1 {
		p := m.BusyPower(ipc, &ph)
		if p <= prev {
			t.Fatalf("power not increasing at ipc=%.2f", ipc)
		}
		prev = p
	}
	// Above peak IPC the activity clamps.
	if m.BusyPower(ct.PeakIPC+5, &ph) != m.BusyPower(ct.PeakIPC, &ph) {
		t.Fatal("activity not clamped above peak")
	}
	if m.BusyPower(-1, &ph) != m.BusyPower(0, &ph) {
		t.Fatal("activity not clamped below zero")
	}
}

func TestMixAffectsPower(t *testing.T) {
	ct := arch.BigCore()
	m, _ := NewCoreModel(&ct)
	memHeavy := refPhase()
	memHeavy.MemShare = 0.5
	lean := refPhase()
	lean.MemShare = 0.1
	if m.BusyPower(1, &memHeavy) <= m.BusyPower(1, &lean) {
		t.Fatal("memory-heavy mix should draw more power")
	}
	branchy := refPhase()
	branchy.BranchShare = 0.3
	base := refPhase()
	if m.BusyPower(1, &branchy) <= m.BusyPower(1, &base) {
		t.Fatal("branch-heavy mix should draw more power")
	}
}

func TestEnergyIntegration(t *testing.T) {
	ct := arch.MediumCore()
	m, _ := NewCoreModel(&ct)
	ph := refPhase()
	p := m.BusyPower(1.0, &ph)
	e := m.EnergyJ(1.0, &ph, 1e9) // one second
	if math.Abs(e-p) > 1e-12 {
		t.Fatalf("1s at %gW should be %gJ, got %g", p, p, e)
	}
	if m.EnergyJ(1.0, &ph, 0) != 0 {
		t.Fatal("zero duration should integrate to zero energy")
	}
}

func TestSmallCoreVastlyMoreEfficient(t *testing.T) {
	// The Table 2 power spread is ~90x between Huge and Small while the
	// performance spread is ~20x (IPCxF); the small core must therefore
	// win on energy per instruction at peak. This asymmetry is what the
	// balancer exploits.
	ph := refPhase()
	types := arch.Table2Types()
	mHuge, _ := NewCoreModel(&types[0])
	mSmall, _ := NewCoreModel(&types[3])
	epiHuge := mHuge.EnergyPerInstruction(types[0].PeakIPC, &ph)
	epiSmall := mSmall.EnergyPerInstruction(types[3].PeakIPC, &ph)
	if epiSmall >= epiHuge {
		t.Fatalf("EPI: Small %.3g >= Huge %.3g", epiSmall, epiHuge)
	}
	if epiHuge/epiSmall < 3 {
		t.Fatalf("EPI ratio %.2f too small to drive efficiency balancing", epiHuge/epiSmall)
	}
}

func TestEnergyPerInstructionDegenerate(t *testing.T) {
	ct := arch.BigCore()
	m, _ := NewCoreModel(&ct)
	ph := refPhase()
	if !math.IsInf(m.EnergyPerInstruction(0, &ph), 1) {
		t.Fatal("zero IPC should have infinite EPI")
	}
}

func TestVoltageScaling(t *testing.T) {
	ct := arch.BigCore()
	m, _ := NewCoreModel(&ct)
	// Halving frequency at equal voltage halves dynamic power.
	half, err := m.VoltageScaled(ct.VoltageV, ct.FreqMHz/2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.dynPeakW-m.dynPeakW/2) > 1e-9 {
		t.Fatalf("dynamic power at F/2: %g, want %g", half.dynPeakW, m.dynPeakW/2)
	}
	if math.Abs(half.leakW-m.leakW) > 1e-9 {
		t.Fatal("leakage should not change with frequency alone")
	}
	// Scaling voltage scales dynamic quadratically, leakage linearly.
	low, err := m.VoltageScaled(ct.VoltageV/2, ct.FreqMHz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(low.dynPeakW-m.dynPeakW/4) > 1e-9 {
		t.Fatalf("dynamic power at V/2: %g, want %g", low.dynPeakW, m.dynPeakW/4)
	}
	if math.Abs(low.leakW-m.leakW/2) > 1e-9 {
		t.Fatalf("leakage at V/2: %g, want %g", low.leakW, m.leakW/2)
	}
	if _, err := m.VoltageScaled(0, 100); err == nil {
		t.Fatal("zero voltage accepted")
	}
}

func TestPlatformBundle(t *testing.T) {
	p := arch.QuadHMP()
	pm, err := NewPlatform(p)
	if err != nil {
		t.Fatal(err)
	}
	for tid := range p.Types {
		m := pm.ForType(arch.CoreTypeID(tid))
		if m == nil {
			t.Fatalf("missing model for type %d", tid)
		}
		if m.LeakW() <= 0 {
			t.Fatalf("type %d leakage %g", tid, m.LeakW())
		}
	}
	// Invalid platform rejected.
	if _, err := NewPlatform(&arch.Platform{}); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestSleepSavesNearlyEverything(t *testing.T) {
	ct := arch.HugeCore()
	m, _ := NewCoreModel(&ct)
	if m.SleepW() > 0.05*ct.PeakPowerW {
		t.Fatalf("sleep power %g too high relative to peak %g", m.SleepW(), ct.PeakPowerW)
	}
}
