// Package powermodel is the reproduction's substitute for the paper's
// McPAT integration: an activity-based analytical power model that
// yields per-core power while executing a given workload phase at a
// given IPC, plus leakage and a power-gated sleep state.
//
// The model is anchored so that each Table 2 core type consumes exactly
// its PeakPowerW when sustaining its PeakIPC on a reference instruction
// mix at the nominal voltage/frequency. Between idle-clocking and peak,
// dynamic power scales with the activity factor (IPC relative to peak)
// and with the instruction mix (memory operations toggle the caches,
// branches the predictor). Leakage scales with die area and voltage and
// persists whenever the core is not power-gated.
//
// What the balancers consume is the per-thread average power p_ij of
// Eq. (3)/(5); this model provides the "power sensor" those numbers are
// sensed from.
package powermodel

import (
	"fmt"
	"math"

	"smartbalance/internal/arch"
	"smartbalance/internal/workload"
)

// Model constants (properties of the 22 nm substrate, not SmartBalance
// tunables).
const (
	// LeakageFraction is the share of Table 2 peak power that is static
	// leakage at the nominal operating point.
	LeakageFraction = 0.22
	// SleepLeakFraction is the fraction of leakage that survives power
	// gating in the quiescent (cySleep) state.
	SleepLeakFraction = 0.12
	// idleActivity is the dynamic-power floor of a clocked but fully
	// stalled core relative to peak dynamic power (clock tree, always-on
	// structures).
	idleActivity = 0.30
	// mixMemWeight and mixBranchWeight scale dynamic energy with the
	// instruction mix around the reference mix.
	mixMemWeight    = 0.25
	mixBranchWeight = 0.10
	// Reference instruction mix for calibration (a typical PARSEC blend).
	refMemShare    = 0.30
	refBranchShare = 0.12
)

// CoreModel holds the calibrated power parameters of one core type.
type CoreModel struct {
	ct *arch.CoreType
	// leakW is static leakage at nominal voltage, in watts.
	leakW float64
	// dynPeakW is dynamic power at peak activity on the reference mix.
	dynPeakW float64
}

// NewCoreModel calibrates a power model for ct. The calibration
// invariant is BusyPower(PeakIPC, reference mix) == PeakPowerW.
func NewCoreModel(ct *arch.CoreType) (*CoreModel, error) {
	if err := ct.Validate(); err != nil {
		return nil, fmt.Errorf("powermodel: %w", err)
	}
	leak := LeakageFraction * ct.PeakPowerW
	return &CoreModel{
		ct:       ct,
		leakW:    leak,
		dynPeakW: ct.PeakPowerW - leak,
	}, nil
}

// mixFactor scales dynamic energy with instruction mix; 1.0 at the
// reference mix.
func mixFactor(memShare, branchShare float64) float64 {
	return 1 + mixMemWeight*(memShare-refMemShare) + mixBranchWeight*(branchShare-refBranchShare)
}

// activity maps relative throughput onto the dynamic activity factor:
// idleActivity at zero IPC (clocked, stalled) rising linearly to 1 at
// peak IPC.
func (m *CoreModel) activity(ipc float64) float64 {
	rel := ipc / m.ct.PeakIPC
	if rel < 0 {
		rel = 0
	}
	if rel > 1 {
		rel = 1
	}
	return idleActivity + (1-idleActivity)*rel
}

// LeakW returns the static leakage power of the (non-gated) core.
func (m *CoreModel) LeakW() float64 { return m.leakW }

// SleepW returns the power of the power-gated quiescent state the
// kernel enters when a core has no runnable threads (cySleep).
func (m *CoreModel) SleepW() float64 { return m.leakW * SleepLeakFraction }

// IdleW returns the power of a clocked but architecturally idle core
// (stalled, spinning in the idle loop before the governor gates it).
func (m *CoreModel) IdleW() float64 { return m.leakW + m.dynPeakW*idleActivity }

// BusyPower returns the total core power (dynamic + leakage) while
// retiring the phase's mix at the given IPC.
func (m *CoreModel) BusyPower(ipc float64, ph *workload.Phase) float64 {
	return m.leakW + m.dynPeakW*m.activity(ipc)*mixFactor(ph.MemShare, ph.BranchShare)
}

// EnergyJ integrates BusyPower over durNs nanoseconds.
func (m *CoreModel) EnergyJ(ipc float64, ph *workload.Phase, durNs int64) float64 {
	return m.BusyPower(ipc, ph) * float64(durNs) * 1e-9
}

// VoltageScaled returns a copy of the model recalibrated for operation
// at a different voltage/frequency point. Dynamic power scales with
// V^2*F, leakage approximately with V. Used by ablation studies; the
// paper fixes all cores at their nominal points.
func (m *CoreModel) VoltageScaled(newVoltage, newFreqMHz float64) (*CoreModel, error) {
	if newVoltage <= 0 || newFreqMHz <= 0 {
		return nil, fmt.Errorf("powermodel: invalid operating point V=%g F=%g", newVoltage, newFreqMHz)
	}
	ctCopy := *m.ct
	vr := newVoltage / m.ct.VoltageV
	fr := newFreqMHz / m.ct.FreqMHz
	scaledDyn := m.dynPeakW * vr * vr * fr
	scaledLeak := m.leakW * vr
	ctCopy.VoltageV = newVoltage
	ctCopy.FreqMHz = newFreqMHz
	ctCopy.PeakPowerW = scaledDyn + scaledLeak
	return &CoreModel{ct: &ctCopy, leakW: scaledLeak, dynPeakW: scaledDyn}, nil
}

// Platform bundles calibrated models for every core type of a platform,
// indexed by core-type id.
type Platform struct {
	models []*CoreModel
}

// NewPlatform calibrates all core types of p.
func NewPlatform(p *arch.Platform) (*Platform, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("powermodel: %w", err)
	}
	pm := &Platform{models: make([]*CoreModel, p.NumTypes())}
	for i := range p.Types {
		m, err := NewCoreModel(&p.Types[i])
		if err != nil {
			return nil, err
		}
		pm.models[i] = m
	}
	return pm, nil
}

// ForType returns the model of core-type id tid.
func (pm *Platform) ForType(tid arch.CoreTypeID) *CoreModel {
	return pm.models[tid]
}

// EnergyPerInstruction returns the marginal energy (J) of one
// instruction of the given phase at the given IPC on this core — a
// convenient derived quantity for tests and docs.
func (m *CoreModel) EnergyPerInstruction(ipc float64, ph *workload.Phase) float64 {
	if ipc <= 0 {
		return math.Inf(1)
	}
	ips := ipc * m.ct.FreqHz()
	return m.BusyPower(ipc, ph) / ips
}
