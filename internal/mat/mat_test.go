package mat

import (
	"math"
	"testing"
	"testing/quick"

	"smartbalance/internal/rng"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g", m.At(2, 1))
	}
	if r := m.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	if c := m.Col(0); c[0] != 1 || c[1] != 3 || c[2] != 5 {
		t.Fatalf("Col(0) = %v", c)
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowColAreCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned a view, want a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col returned a view, want a copy")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(21)
	m := randomMatrix(r, 5, 7)
	tt := m.T().T()
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if m.At(i, j) != tt.At(i, j) {
				t.Fatal("T(T(m)) != m")
			}
		}
	}
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	s, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 1) != 44 {
		t.Fatalf("Add wrong: %v", s)
	}
	d, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 9 {
		t.Fatalf("Sub wrong: %v", d)
	}
}

func TestAddShapeError(t *testing.T) {
	if _, err := Add(New(2, 2), New(2, 3)); err != ErrShape {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(31)
	m := randomMatrix(r, 4, 4)
	p, err := Mul(m, Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !approxEq(p.At(i, j), m.At(i, j), 1e-12) {
				t.Fatal("M*I != M")
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul wrong at (%d,%d): %g", i, j, p.At(i, j))
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	if _, err := Mul(New(2, 3), New(2, 3)); err != ErrShape {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(r, 3, 4)
		b := randomMatrix(r, 4, 2)
		c := randomMatrix(r, 2, 5)
		ab, _ := Mul(a, b)
		left, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		right, _ := Mul(a, bc)
		for i := 0; i < 3; i++ {
			for j := 0; j < 5; j++ {
				if !approxEq(left.At(i, j), right.At(i, j), 1e-9) {
					t.Fatalf("associativity broken at trial %d", trial)
				}
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 6 || v[1] != 15 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := m.MulVec([]float64{1}); err != ErrShape {
		t.Fatal("MulVec shape error not reported")
	}
}

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !approxEq(x[i], want[i], 1e-9) {
			t.Fatalf("Solve x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveShapeError(t *testing.T) {
	if _, err := Solve(New(2, 3), []float64{1, 2}); err != ErrShape {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := Solve(New(2, 2), []float64{1}); err != ErrShape {
		t.Fatalf("want ErrShape for short b, got %v", err)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || a.At(1, 0) != 1 || b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestSolveProperty(t *testing.T) {
	// For random well-conditioned A and random x, Solve(A, A*x) == x.
	r := rng.New(51)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := 2 + rr.Intn(6)
		a := randomDiagDominant(rr, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rr.Float64()*10 - 5
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !approxEq(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestLeastSquaresExact(t *testing.T) {
	// Square full-rank system: least squares must reproduce Solve.
	a := FromRows([][]float64{{3, 1}, {1, 2}})
	b := []float64{9, 8}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 2, 1e-9) || !approxEq(x[1], 3, 1e-9) {
		t.Fatalf("LeastSquares = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 with noise-free samples: exact recovery.
	rows := [][]float64{}
	ys := []float64{}
	for i := 0; i < 10; i++ {
		x := float64(i)
		rows = append(rows, []float64{x, 1})
		ys = append(ys, 2*x+1)
	}
	coef, err := LeastSquares(FromRows(rows), ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(coef[0], 2, 1e-9) || !approxEq(coef[1], 1, 1e-9) {
		t.Fatalf("coef = %v", coef)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The residual of a least-squares solution is orthogonal to the
	// column space of A: A^T (Ax - b) == 0.
	r := rng.New(61)
	a := randomMatrix(r, 12, 4)
	b := make([]float64, 12)
	for i := range b {
		b[i] = r.Float64()*4 - 2
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	res := make([]float64, len(b))
	for i := range res {
		res[i] = ax[i] - b[i]
	}
	proj, _ := a.T().MulVec(res)
	for i, v := range proj {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("residual not orthogonal: A^T r [%d] = %g", i, v)
		}
	}
}

func TestLeastSquaresUnderdeterminedRejected(t *testing.T) {
	if _, err := LeastSquares(New(2, 3), []float64{1, 2}); err != ErrShape {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Second column is a multiple of the first.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestNorm2AndDot(t *testing.T) {
	if !approxEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestStringRendering(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("String() empty")
	}
}

func randomMatrix(r *rng.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.Float64()*10-5)
		}
	}
	return m
}

// randomDiagDominant builds a random strictly diagonally dominant matrix
// (guaranteed nonsingular and well-conditioned enough for the property
// test).
func randomDiagDominant(r *rng.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := r.Float64()*2 - 1
			m.Set(i, j, v)
			sum += math.Abs(v)
		}
		m.Set(i, i, sum+1+r.Float64())
	}
	return m
}

func BenchmarkSolve8(b *testing.B) {
	r := rng.New(71)
	a := randomDiagDominant(r, 8)
	v := make([]float64, 8)
	for i := range v {
		v[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquares32x10(b *testing.B) {
	r := rng.New(81)
	a := randomMatrix(r, 32, 10)
	v := make([]float64, 32)
	for i := range v {
		v[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, v); err != nil {
			b.Fatal(err)
		}
	}
}
