// Package mat implements the small dense-matrix kernel the SmartBalance
// reproduction needs: basic arithmetic, linear system solving via
// Gaussian elimination with partial pivoting, and least-squares fitting
// via the QR decomposition (Householder reflections).
//
// The matrices involved are tiny (tens of rows for the predictor
// training sets, ~10 columns of workload features), so clarity and
// numerical robustness are preferred over blocking or vectorisation.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a linear system has no unique solution at
// working precision.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-filled rows x cols matrix. It panics if either
// dimension is non-positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d (len %d, want %d)", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j). Indices are bounds-checked by the
// underlying slice access.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns a+b. It returns ErrShape if dimensions differ.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	c := New(a.rows, a.cols)
	for i := range c.data {
		c.data[i] = a.data[i] + b.data[i]
	}
	return c, nil
}

// Sub returns a-b. It returns ErrShape if dimensions differ.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, ErrShape
	}
	c := New(a.rows, a.cols)
	for i := range c.data {
		c.data[i] = a.data[i] - b.data[i]
	}
	return c, nil
}

// Scale returns s*m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	c := m.Clone()
	for i := range c.data {
		c.data[i] *= s
	}
	return c
}

// Mul returns the matrix product a*b. It returns ErrShape if the inner
// dimensions disagree.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, ErrShape
	}
	c := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			aik := a.At(i, k)
			if aik == 0 { //sbvet:allow floateq(exact-zero sparsity skip; a skipped zero term contributes nothing either way)
				continue
			}
			for j := 0; j < b.cols; j++ {
				c.data[i*c.cols+j] += aik * b.At(k, j)
			}
		}
	}
	return c, nil
}

// MulVec returns the matrix-vector product m*x. It returns ErrShape if
// len(x) != m.Cols().
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, ErrShape
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Solve solves the square system A*x = b by Gaussian elimination with
// partial pivoting. A and b are not modified. It returns ErrShape for a
// non-square A or mismatched b, and ErrSingular if a pivot underflows.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, ErrShape
	}
	// Working copies.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below the
		// diagonal.
		pivot := col
		maxAbs := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 { //sbvet:allow floateq(exact-zero elimination skip; the update is a no-op for an exactly zero factor)
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.data[a*m.cols : (a+1)*m.cols]
	rb := m.data[b*m.cols : (b+1)*m.cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// LeastSquares solves min ||A*x - b||_2 for x using Householder QR. A
// must have at least as many rows as columns; otherwise ErrShape is
// returned. ErrSingular is returned when A is rank-deficient at working
// precision.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	mRows, nCols := a.rows, a.cols
	if len(b) != mRows {
		return nil, ErrShape
	}
	if mRows < nCols {
		return nil, ErrShape
	}
	r := a.Clone()
	y := make([]float64, mRows)
	copy(y, b)

	// Householder triangularisation, applying reflections to y as we go.
	for k := 0; k < nCols; k++ {
		// Norm of the k-th column below (and including) the diagonal.
		norm := 0.0
		for i := k; i < mRows; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm < 1e-12 {
			return nil, ErrSingular
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// v = x - norm*e1, normalised so v[k] = 1 implicitly via beta.
		v := make([]float64, mRows)
		for i := k; i < mRows; i++ {
			v[i] = r.At(i, k)
		}
		v[k] -= norm
		vtv := 0.0
		for i := k; i < mRows; i++ {
			vtv += v[i] * v[i]
		}
		if vtv == 0 { //sbvet:allow floateq(a sum of squares is exactly zero iff the vector is all zeros)
			return nil, ErrSingular
		}
		beta := 2 / vtv
		// Apply H = I - beta*v*v^T to the remaining columns of R.
		for j := k; j < nCols; j++ {
			dot := 0.0
			for i := k; i < mRows; i++ {
				dot += v[i] * r.At(i, j)
			}
			dot *= beta
			for i := k; i < mRows; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i])
			}
		}
		// Apply H to y.
		dot := 0.0
		for i := k; i < mRows; i++ {
			dot += v[i] * y[i]
		}
		dot *= beta
		for i := k; i < mRows; i++ {
			y[i] -= dot * v[i]
		}
	}

	// Back-substitute the upper-triangular system R[0:n,0:n] x = y[0:n].
	x := make([]float64, nCols)
	for i := nCols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < nCols; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s = math.Hypot(s, x)
	}
	return s
}

// Dot returns the inner product of a and b. It panics on length
// mismatch, as that is always a programming error here.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// String renders the matrix with 4 significant digits, one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.4g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
