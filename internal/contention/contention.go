// Package contention models the shared resources the private-cache
// interval model (internal/perfmodel) deliberately ignores: the
// cluster-level last-level cache each LLC domain's co-runners fight
// over, and the domain's slice of memory bandwidth. It supplies the
// two per-core degradation factors the machine applies on top of the
// private-cache metrics:
//
//   - MissScale: working-set overlap with co-runners in the same LLC
//     domain inflates the conditional L2->memory miss rate (capacity
//     stolen by neighbours turns would-be LLC hits into DRAM trips);
//   - LatScale: aggregate co-runner miss traffic approaching the
//     domain's bandwidth saturates the fabric, inflating effective
//     memory latency with an M/M/1-style queueing factor (which
//     flattens effective IPS).
//
// Both factors deliberately exclude the core's own footprint: a thread
// alone in its domain sees MissScale == LatScale == 1 exactly, so a
// contention-enabled run with zero co-runner overlap is byte-identical
// to the pre-contention model (the invariant scripts/contention_check.sh
// pins). Self-induced bus pressure is already modelled by the machine's
// global shared-bus option; this package adds only the *interference*
// term.
//
// The model is deterministic: per-core EWMAs updated at slice end in
// event order, no randomness, no wall-clock, and a fixed per-domain
// array layout allocated at construction — nothing on the epoch hot
// path allocates (the sbvet hotpath analyzer and
// TestEpochHotAllocsPinned both cover it).
package contention

import (
	"fmt"
	"strconv"
	"strings"

	"smartbalance/internal/arch"
)

// Model constants.
const (
	// ewmaTauNs is the footprint-EWMA window: the same 5 ms scale as the
	// machine's bus-traffic EWMA, slow against a slice, fast against an
	// epoch.
	ewmaTauNs = 5e6
	// DefaultMissSlope is the miss-rate inflation per unit of co-runner
	// pressure (overlapKB / domainLLCKB).
	DefaultMissSlope = 0.9
	// DefaultPressureCap bounds the pressure term: beyond ~2x
	// oversubscription extra co-runner footprint cannot evict more.
	DefaultPressureCap = 2.0
	// DefaultBWGBps is the per-domain memory bandwidth when the spec
	// does not override it (a mobile-class LPDDR channel per cluster).
	DefaultBWGBps = 8.0
	// maxBWUtil caps the queueing factor (LatScale <= 10x), mirroring
	// the machine's busMaxUtil clamp.
	maxBWUtil = 0.9
)

// SpecPrefix introduces optional key=value overrides in the spec
// grammar after the leading "on".
const specOn = "on"

// Spec is the canonical, serialisable configuration of the contention
// model — the sweep/hunt scenario axis. The zero Spec is disabled.
type Spec struct {
	// Enabled turns the model on.
	Enabled bool `json:"enabled,omitempty"`
	// LLCKB, when positive, overrides every domain's pooled LLC
	// capacity (KB); zero derives it from the platform topology.
	LLCKB float64 `json:"llc_kb,omitempty"`
	// BWGBps, when positive, overrides the per-domain memory bandwidth;
	// zero selects DefaultBWGBps.
	BWGBps float64 `json:"bw_gbps,omitempty"`
	// MissSlope, when positive, overrides DefaultMissSlope.
	MissSlope float64 `json:"miss_slope,omitempty"`
}

// String renders the canonical spec: "" when disabled, "on" for pure
// defaults, and "on,key=val,..." with overrides in fixed order and
// shortest-exact floats — ParseSpec(s.String()) == s for every valid
// spec, mirroring the synth: and fault-plan grammars.
func (s Spec) String() string {
	if !s.Enabled {
		return ""
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	out := specOn
	if s.LLCKB > 0 {
		out += ",llc=" + f(s.LLCKB)
	}
	if s.BWGBps > 0 {
		out += ",bw=" + f(s.BWGBps)
	}
	if s.MissSlope > 0 {
		out += ",slope=" + f(s.MissSlope)
	}
	return out
}

// Validate checks the spec's value domains.
func (s Spec) Validate() error {
	if !s.Enabled {
		if s.LLCKB != 0 || s.BWGBps != 0 || s.MissSlope != 0 { //sbvet:allow floateq(zero means "unset": overrides are rejected only when a literal zero value was left untouched)
			return fmt.Errorf("contention: disabled spec carries overrides")
		}
		return nil
	}
	switch {
	case s.LLCKB < 0 || s.LLCKB > 1<<20:
		return fmt.Errorf("contention: llc override %g outside [0, 1048576] KB", s.LLCKB)
	case s.BWGBps < 0 || s.BWGBps > 1024:
		return fmt.Errorf("contention: bandwidth override %g outside [0, 1024] GB/s", s.BWGBps)
	case s.MissSlope < 0 || s.MissSlope > 8:
		return fmt.Errorf("contention: miss slope %g outside [0, 8]", s.MissSlope)
	}
	return nil
}

// ParseSpec parses the canonical contention spec grammar. "", "none",
// and "off" mean disabled; "on" enables the defaults; overrides follow
// as comma-separated key=value pairs (llc, bw, slope). Unknown keys are
// errors.
func ParseSpec(spec string) (Spec, error) {
	var s Spec
	switch spec {
	case "", "none", "off":
		return s, nil
	}
	parts := strings.Split(spec, ",")
	if parts[0] != specOn {
		return s, fmt.Errorf("contention: spec %q must start with %q (or be empty/none/off)", spec, specOn)
	}
	s.Enabled = true
	for _, part := range parts[1:] {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return s, fmt.Errorf("contention: parameter %q malformed (want key=value)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return s, fmt.Errorf("contention: parameter %q: %v", part, err)
		}
		switch strings.TrimSpace(k) {
		case "llc":
			s.LLCKB = f
		case "bw":
			s.BWGBps = f
		case "slope":
			s.MissSlope = f
		default:
			return s, fmt.Errorf("contention: unknown parameter %q", k)
		}
	}
	return s, s.Validate()
}

// missSlope resolves the spec's effective slope.
func (s Spec) missSlope() float64 {
	if s.MissSlope > 0 {
		return s.MissSlope
	}
	return DefaultMissSlope
}

// bwGBps resolves the spec's effective per-domain bandwidth.
func (s Spec) bwGBps() float64 {
	if s.BWGBps > 0 {
		return s.BWGBps
	}
	return DefaultBWGBps
}

// Model is the runtime shared-resource state of one machine: the LLC
// domain partition plus per-core and per-domain EWMAs of working-set
// footprint and miss traffic. All arrays are fixed at construction;
// RecordSlice and the factor queries allocate nothing.
type Model struct {
	spec Spec

	// domainOf maps core id -> domain index.
	domainOf []int32
	// domLLCKB and domBWGBps are the per-domain capacities.
	domLLCKB  []float64
	domBWGBps []float64

	// coreWsKB and coreBwBPNs are per-core EWMAs of the resident data
	// working set (KB) and L2-miss traffic (bytes per ns == GB/s).
	coreWsKB   []float64
	coreBwBPNs []float64
	// domWsKB and domBwBPNs mirror the per-core EWMAs summed per
	// domain, maintained incrementally so the factor queries are O(1).
	domWsKB   []float64
	domBwBPNs []float64
}

// NewModel builds the model for a platform: domains from the
// arch.LLCDomains partition, capacities from the spec (or derived).
// Returns nil for a disabled spec — a nil *Model is the "no
// contention" model everywhere it is consumed.
func NewModel(p *arch.Platform, spec Spec) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Enabled {
		return nil, nil
	}
	if p == nil || p.NumCores() == 0 {
		return nil, fmt.Errorf("contention: nil or empty platform")
	}
	doms := arch.LLCDomains(p)
	m := &Model{
		spec:       spec,
		domainOf:   make([]int32, p.NumCores()),
		domLLCKB:   make([]float64, len(doms)),
		domBWGBps:  make([]float64, len(doms)),
		coreWsKB:   make([]float64, p.NumCores()),
		coreBwBPNs: make([]float64, p.NumCores()),
		domWsKB:    make([]float64, len(doms)),
		domBwBPNs:  make([]float64, len(doms)),
	}
	for d, dom := range doms {
		llc := dom.LLCKB
		if spec.LLCKB > 0 {
			llc = spec.LLCKB
		}
		m.domLLCKB[d] = llc
		m.domBWGBps[d] = spec.bwGBps()
		for _, c := range dom.Cores {
			m.domainOf[c] = int32(d)
		}
	}
	return m, nil
}

// Spec returns the spec the model was built from.
func (m *Model) Spec() Spec { return m.spec }

// NumDomains returns the number of LLC domains.
func (m *Model) NumDomains() int { return len(m.domLLCKB) }

// NumCores returns the number of cores the model covers.
func (m *Model) NumCores() int { return len(m.domainOf) }

// DomainOf returns core c's domain index.
func (m *Model) DomainOf(c arch.CoreID) int { return int(m.domainOf[c]) }

// DomainLLCKB returns domain d's pooled LLC capacity in KB.
func (m *Model) DomainLLCKB(d int) float64 { return m.domLLCKB[d] }

// DomainBWGBps returns domain d's memory bandwidth in GB/s.
func (m *Model) DomainBWGBps(d int) float64 { return m.domBWGBps[d] }

// MissSlope returns the effective miss-inflation slope.
func (m *Model) MissSlope() float64 { return m.spec.missSlope() }

// PressureCap returns the pressure clamp.
func (m *Model) PressureCap() float64 { return DefaultPressureCap }

// MaxBWUtil returns the bandwidth-utilisation clamp.
func (m *Model) MaxBWUtil() float64 { return maxBWUtil }

// MissScale returns the L2-miss inflation factor for core c: 1 plus
// the slope times the co-runner pressure (neighbours' pooled working
// set over the domain LLC), clamped. Exactly 1 when c has no co-runner
// footprint.
func (m *Model) MissScale(c arch.CoreID) float64 {
	d := m.domainOf[c]
	overlapKB := m.domWsKB[d] - m.coreWsKB[c]
	if overlapKB <= 0 {
		return 1
	}
	pressure := overlapKB / m.domLLCKB[d]
	if pressure > DefaultPressureCap {
		pressure = DefaultPressureCap
	}
	return 1 + m.spec.missSlope()*pressure
}

// LatScale returns the memory-latency inflation factor for core c from
// co-runner bandwidth demand: 1/(1-util) with util the neighbours'
// miss traffic over the domain bandwidth, clamped at maxBWUtil.
// Exactly 1 when c's co-runners generate no traffic. It composes
// multiplicatively with the machine's global shared-bus factor.
func (m *Model) LatScale(c arch.CoreID) float64 {
	d := m.domainOf[c]
	demand := m.domBwBPNs[d] - m.coreBwBPNs[c]
	if demand <= 0 {
		return 1
	}
	util := demand / m.domBWGBps[d]
	if util > maxBWUtil {
		util = maxBWUtil
	}
	return 1 / (1 - util)
}

// RecordSlice folds one executed slice on core c into the EWMAs: wsKB
// is the resident data working set of the phase that ran, missBytes the
// slice's L2-miss traffic. Called by the machine at slice end, in event
// order — the model is a pure function of the slice sequence.
func (m *Model) RecordSlice(c arch.CoreID, durNs int64, wsKB, missBytes float64) {
	if durNs <= 0 {
		return
	}
	w := float64(durNs) / (float64(durNs) + ewmaTauNs)
	d := m.domainOf[c]

	old := m.coreWsKB[c]
	next := (1-w)*old + w*wsKB
	m.coreWsKB[c] = next
	m.domWsKB[d] += next - old

	old = m.coreBwBPNs[c]
	next = (1-w)*old + w*(missBytes/float64(durNs))
	m.coreBwBPNs[c] = next
	m.domBwBPNs[d] += next - old
}

// MaxPressure returns the largest per-domain LLC pressure (pooled
// working set over capacity) — the telemetry gauge value.
func (m *Model) MaxPressure() float64 {
	var max float64
	for d := range m.domWsKB {
		if p := m.domWsKB[d] / m.domLLCKB[d]; p > max {
			max = p
		}
	}
	return max
}

// MaxBWUtilization returns the largest per-domain bandwidth
// utilisation (pooled miss traffic over bandwidth), unclamped — the
// telemetry gauge value.
func (m *Model) MaxBWUtilization() float64 {
	var max float64
	for d := range m.domBwBPNs {
		if u := m.domBwBPNs[d] / m.domBWGBps[d]; u > max {
			max = u
		}
	}
	return max
}
