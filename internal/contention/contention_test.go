package contention

import (
	"math"
	"testing"

	"smartbalance/internal/arch"
)

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Enabled: true},
		{Enabled: true, LLCKB: 512},
		{Enabled: true, BWGBps: 4},
		{Enabled: true, MissSlope: 1.5},
		{Enabled: true, LLCKB: 2048, BWGBps: 12.5, MissSlope: 0.25},
	}
	for _, s := range specs {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %q: got %+v want %+v", s.String(), got, s)
		}
	}
}

func TestParseSpecDisabledForms(t *testing.T) {
	for _, in := range []string{"", "none", "off"} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if s.Enabled {
			t.Fatalf("ParseSpec(%q) enabled", in)
		}
		if s.String() != "" {
			t.Fatalf("disabled spec renders %q, want empty", s.String())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"maybe",          // unknown mode
		"on,llc",         // malformed pair
		"on,llc=x",       // non-numeric
		"on,cache=64",    // unknown key
		"on,llc=-1",      // negative capacity
		"on,llc=2097152", // capacity above 1 GiB
		"on,bw=-2",       // negative bandwidth
		"on,bw=4096",     // bandwidth above 1 TB/s
		"on,slope=-0.1",  // negative slope
		"on,slope=9",     // slope above cap
		"off,llc=64",     // disabled spec with overrides
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

func TestValidateDisabledWithOverrides(t *testing.T) {
	if err := (Spec{LLCKB: 64}).Validate(); err == nil {
		t.Fatal("disabled spec with llc override accepted")
	}
}

func TestNewModelDisabledIsNil(t *testing.T) {
	m, err := NewModel(arch.QuadHMP(), Spec{})
	if err != nil || m != nil {
		t.Fatalf("disabled spec: got (%v, %v), want (nil, nil)", m, err)
	}
}

func TestNewModelRejectsEmptyPlatform(t *testing.T) {
	if _, err := NewModel(nil, Spec{Enabled: true}); err == nil {
		t.Fatal("nil platform accepted")
	}
	if _, err := NewModel(&arch.Platform{}, Spec{Enabled: true}); err == nil {
		t.Fatal("empty platform accepted")
	}
}

// TestDomainsQuadSingletons: the per-core-type quad has no contiguous
// same-type run longer than one core, so every core is its own LLC
// domain — contention flows only through the memory fabric.
func TestDomainsQuadSingletons(t *testing.T) {
	m, err := NewModel(arch.QuadHMP(), Spec{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDomains() != 4 || m.NumCores() != 4 {
		t.Fatalf("quad: %d domains over %d cores, want 4/4", m.NumDomains(), m.NumCores())
	}
	wantLLC := []float64{1024, 512, 256, 256}
	for c := 0; c < 4; c++ {
		if m.DomainOf(arch.CoreID(c)) != c {
			t.Fatalf("core %d in domain %d, want singleton", c, m.DomainOf(arch.CoreID(c)))
		}
		if m.DomainLLCKB(c) != wantLLC[c] {
			t.Fatalf("domain %d LLC %g KB, want %g", c, m.DomainLLCKB(c), wantLLC[c])
		}
		if m.DomainBWGBps(c) != DefaultBWGBps {
			t.Fatalf("domain %d BW %g, want default %g", c, m.DomainBWGBps(c), DefaultBWGBps)
		}
	}
}

// TestDomainsOctaClusters: big.LITTLE groups into one big and one
// little cluster with the members' L2 allocations pooled.
func TestDomainsOctaClusters(t *testing.T) {
	m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true, BWGBps: 16})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDomains() != 2 {
		t.Fatalf("octa: %d domains, want 2", m.NumDomains())
	}
	if m.DomainLLCKB(0) != 2048 || m.DomainLLCKB(1) != 1024 {
		t.Fatalf("cluster LLCs %g/%g KB, want 2048/1024", m.DomainLLCKB(0), m.DomainLLCKB(1))
	}
	for c := 0; c < 8; c++ {
		want := 0
		if c >= 4 {
			want = 1
		}
		if m.DomainOf(arch.CoreID(c)) != want {
			t.Fatalf("core %d in domain %d, want %d", c, m.DomainOf(arch.CoreID(c)), want)
		}
		if d := m.DomainOf(arch.CoreID(c)); m.DomainBWGBps(d) != 16 {
			t.Fatalf("bw override not applied on domain %d", d)
		}
	}
}

func TestLLCOverrideAppliesToEveryDomain(t *testing.T) {
	m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true, LLCKB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < m.NumDomains(); d++ {
		if m.DomainLLCKB(d) != 4096 {
			t.Fatalf("domain %d LLC %g, want override 4096", d, m.DomainLLCKB(d))
		}
	}
}

// TestSoloFactorsExactlyOne pins the byte-identity invariant: a core's
// own footprint never degrades itself, so a thread alone in its domain
// sees MissScale == LatScale == 1 exactly (not approximately).
func TestSoloFactorsExactlyOne(t *testing.T) {
	m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 runs hot, alone in the big cluster; core 4 alone in the
	// little cluster.
	for i := 0; i < 50; i++ {
		m.RecordSlice(0, 1e6, 1024, 5e6)
		m.RecordSlice(4, 1e6, 256, 2e6)
	}
	for _, c := range []arch.CoreID{0, 4} {
		if ms := m.MissScale(c); ms != 1 {
			t.Fatalf("solo core %d MissScale %v, want exactly 1", c, ms)
		}
		if ls := m.LatScale(c); ls != 1 {
			t.Fatalf("solo core %d LatScale %v, want exactly 1", c, ls)
		}
	}
	// Its idle neighbours, however, see the pressure.
	if ms := m.MissScale(1); ms <= 1 {
		t.Fatalf("co-runner MissScale %v, want > 1", ms)
	}
	if ls := m.LatScale(1); ls <= 1 {
		t.Fatalf("co-runner LatScale %v, want > 1", ls)
	}
	// The little cluster's pressure stays inside the little cluster.
	if m.MissScale(5) <= 1 || m.MissScale(1) == m.MissScale(5) {
		t.Fatalf("cluster isolation broken: big-neighbour %v vs little-neighbour %v",
			m.MissScale(1), m.MissScale(5))
	}
}

// TestMissScaleMonotoneInOverlap: more co-runner working set means a
// larger (or equal, once clamped) inflation factor.
func TestMissScaleMonotoneInOverlap(t *testing.T) {
	prev := 0.0
	for _, wsKB := range []float64{0, 256, 1024, 4096, 16384, 1 << 20} {
		m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			m.RecordSlice(1, 1e6, wsKB, 0)
		}
		ms := m.MissScale(0)
		if ms < prev {
			t.Fatalf("MissScale not monotone: ws %g KB gives %v after %v", wsKB, ms, prev)
		}
		if !finite(ms) || ms < 1 {
			t.Fatalf("MissScale(ws=%g) = %v outside [1, inf)", wsKB, ms)
		}
		if max := 1 + DefaultMissSlope*DefaultPressureCap; ms > max {
			t.Fatalf("MissScale %v above pressure-cap bound %v", ms, max)
		}
		prev = ms
	}
}

// TestLatScaleSaturationClamp: unbounded co-runner traffic saturates at
// the maxBWUtil queueing clamp and never goes non-finite.
func TestLatScaleSaturationClamp(t *testing.T) {
	m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true, BWGBps: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, missBytes := range []float64{0, 1e5, 1e6, 1e7, 1e9, 1e12} {
		mm, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true, BWGBps: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			mm.RecordSlice(1, 1e6, 0, missBytes)
		}
		ls := mm.LatScale(0)
		if !finite(ls) || ls < 1 {
			t.Fatalf("LatScale(miss=%g) = %v outside [1, inf)", missBytes, ls)
		}
		if ls < prev {
			t.Fatalf("LatScale not monotone at miss=%g: %v after %v", missBytes, ls, prev)
		}
		if lim := 1 / (1 - m.MaxBWUtil()); ls > lim+1e-12 {
			t.Fatalf("LatScale %v above clamp %v", ls, lim)
		}
		prev = ls
	}
}

// TestRecordSliceDeterministic: the model is a pure function of the
// slice sequence — two models fed the same events agree bit-for-bit.
func TestRecordSliceDeterministic(t *testing.T) {
	build := func() *Model {
		m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			c := arch.CoreID(i % 8)
			m.RecordSlice(c, int64(5e5+1e4*float64(i%7)), float64(100*i%9000), float64(1e5*(i%13)))
		}
		return m
	}
	a, b := build(), build()
	for c := arch.CoreID(0); c < 8; c++ {
		if a.MissScale(c) != b.MissScale(c) || a.LatScale(c) != b.LatScale(c) {
			t.Fatalf("core %d factors diverge between identical replays", c)
		}
	}
	if a.MaxPressure() != b.MaxPressure() || a.MaxBWUtilization() != b.MaxBWUtilization() {
		t.Fatal("telemetry gauges diverge between identical replays")
	}
	if a.MaxPressure() <= 0 || a.MaxBWUtilization() <= 0 {
		t.Fatalf("gauges not populated: pressure %v util %v", a.MaxPressure(), a.MaxBWUtilization())
	}
}

func TestRecordSliceIgnoresNonPositiveDuration(t *testing.T) {
	m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	m.RecordSlice(0, 0, 1e6, 1e9)
	m.RecordSlice(0, -5, 1e6, 1e9)
	if m.MaxPressure() != 0 || m.MaxBWUtilization() != 0 {
		t.Fatal("non-positive duration mutated the EWMAs")
	}
}

// TestHotPathAllocFree: RecordSlice and the factor queries are on the
// machine's slice-end hot path and must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	m, err := NewModel(arch.OctaBigLittle(), Spec{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		m.RecordSlice(2, 1e6, 4096, 1e6)
		sink += m.MissScale(3) + m.LatScale(3) + m.MaxPressure() + m.MaxBWUtilization()
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.0f/op, want 0 (sink %v)", allocs, sink)
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
