// Package hpc models the on-chip sensing infrastructure of the paper's
// Section 4.1: per-thread hardware performance counters sampled at
// every context switch (cycle, instruction, and performance-degradation
// event counters) and per-core power sensors. A Bank accumulates
// samples over one SmartBalance epoch and yields the measurements the
// estimation phase consumes.
//
// Real sensors are imperfect; the Bank optionally injects multiplicative
// Gaussian noise into the power readings (the counters themselves are
// exact in hardware). This keeps the Fig. 6 prediction-error evaluation
// honest.
//
// # Storage layout
//
// The Bank is a flat structure-of-arrays slot store (DESIGN.md §12):
// each live (thread, core) pair owns one slot in parallel arrays
// (counters, owning core, chain link, epoch stamp), threaded into a
// per-thread chain kept sorted by core id. Epoch rollover is O(1) — a
// stamp bump lazily invalidates every slot — and slots freed by
// ReleaseThread go to an ordered free-list so the lowest slot index is
// always reused first, keeping the store dense and slot assignment
// deterministic. Snapshots copy the epoch's live slots into
// double-buffered output arenas sorted by (thread, core), so the hot
// sense path performs no map operations and no steady-state
// allocations.
package hpc

import (
	"fmt"

	"smartbalance/internal/rng"
)

// Counters is the set of raw per-thread counter deltas collected during
// one scheduled slice: exactly the counters listed in Section 4.1.
type Counters struct {
	RunNs              int64  // execution time on the core
	Instructions       uint64 // I_total
	MemInstructions    uint64 // I_mem (committed loads + stores)
	BranchInstructions uint64 // I_branch
	CyclesBusy         uint64 // cyBusy
	CyclesIdle         uint64 // cyIdle (stalls)
	L1IMisses          uint64
	L1DMisses          uint64
	BranchMispredicts  uint64
	ITLBMisses         uint64
	DTLBMisses         uint64
	LLCMisses          uint64  // L1D misses that escaped the private L2 to memory
	MemBytes           uint64  // line traffic of those misses on the memory fabric
	EnergyJ            float64 // from the per-core power sensor
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.RunNs += o.RunNs
	c.Instructions += o.Instructions
	c.MemInstructions += o.MemInstructions
	c.BranchInstructions += o.BranchInstructions
	c.CyclesBusy += o.CyclesBusy
	c.CyclesIdle += o.CyclesIdle
	c.L1IMisses += o.L1IMisses
	c.L1DMisses += o.L1DMisses
	c.BranchMispredicts += o.BranchMispredicts
	c.ITLBMisses += o.ITLBMisses
	c.DTLBMisses += o.DTLBMisses
	c.LLCMisses += o.LLCMisses
	c.MemBytes += o.MemBytes
	c.EnergyJ += o.EnergyJ
}

// Derived per-thread quantities (Section 4.1's rates). All are guarded
// against zero denominators.

// IPS returns instructions per second over the accumulated run time.
func (c *Counters) IPS() float64 {
	if c.RunNs <= 0 {
		return 0
	}
	return float64(c.Instructions) / (float64(c.RunNs) * 1e-9)
}

// IPC returns instructions per non-sleep cycle.
func (c *Counters) IPC() float64 {
	tot := c.CyclesBusy + c.CyclesIdle
	if tot == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(tot)
}

// PowerW returns average power over the accumulated run time.
func (c *Counters) PowerW() float64 {
	if c.RunNs <= 0 {
		return 0
	}
	return c.EnergyJ / (float64(c.RunNs) * 1e-9)
}

// MemShare returns I_msh = I_mem / I_total.
func (c *Counters) MemShare() float64 { return ratio(c.MemInstructions, c.Instructions) }

// BranchShare returns I_bsh = I_branch / I_total.
func (c *Counters) BranchShare() float64 { return ratio(c.BranchInstructions, c.Instructions) }

// MissRateL1I returns L1I misses per instruction.
func (c *Counters) MissRateL1I() float64 { return ratio(c.L1IMisses, c.Instructions) }

// MissRateL1D returns L1D misses per memory access.
func (c *Counters) MissRateL1D() float64 { return ratio(c.L1DMisses, c.MemInstructions) }

// MispredictRate returns mispredictions per branch.
func (c *Counters) MispredictRate() float64 { return ratio(c.BranchMispredicts, c.BranchInstructions) }

// MissRateITLB returns ITLB misses per instruction.
func (c *Counters) MissRateITLB() float64 { return ratio(c.ITLBMisses, c.Instructions) }

// MissRateDTLB returns DTLB misses per memory access.
func (c *Counters) MissRateDTLB() float64 { return ratio(c.DTLBMisses, c.MemInstructions) }

// MissRateLLC returns LLC (private-L2-to-memory) misses per L1D miss —
// the conditional miss probability the contention model inflates.
func (c *Counters) MissRateLLC() float64 { return ratio(c.LLCMisses, c.L1DMisses) }

// MemBWGBps returns the memory traffic rate in GB/s (bytes per
// nanosecond) over the accumulated run time.
func (c *Counters) MemBWGBps() float64 {
	if c.RunNs <= 0 {
		return 0
	}
	return float64(c.MemBytes) / float64(c.RunNs)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Noise configures sensor imperfection.
type Noise struct {
	// PowerSigma is the relative standard deviation of the power-sensor
	// reading (e.g. 0.02 for 2%). Zero disables noise.
	PowerSigma float64
}

// CoreCounters pairs a core id with the counters a thread accumulated
// on that core.
type CoreCounters struct {
	Core int
	C    Counters
}

// ThreadEpochSample is the per-thread measurement of one epoch: counters
// accumulated per core the thread ran on (threads can migrate
// mid-epoch under balancers that act asynchronously).
type ThreadEpochSample struct {
	// PerCore holds the accumulated counters per core, sorted ascending
	// by core id. Iteration order is therefore deterministic; no caller
	// can reintroduce map-order dependence.
	PerCore []CoreCounters
}

// Total returns all counters summed across cores.
func (s *ThreadEpochSample) Total() Counters {
	var t Counters
	for i := range s.PerCore {
		t.Add(&s.PerCore[i].C)
	}
	return t
}

// DominantCore returns the core the thread spent most run time on
// during the epoch and the counters accumulated there; ties resolve to
// the smallest core id (free with the sorted PerCore order). ok is
// false when the thread never ran.
func (s *ThreadEpochSample) DominantCore() (core int, c *Counters, ok bool) {
	best := int64(-1)
	for i := range s.PerCore {
		cc := &s.PerCore[i]
		if cc.C.RunNs > best {
			best = cc.C.RunNs
			core, c, ok = cc.Core, &cc.C, true
		}
	}
	return core, c, ok
}

// ThreadSample pairs a thread id with its epoch sample inside a
// snapshot, which is sorted ascending by Thread.
type ThreadSample struct {
	Thread int
	Sample *ThreadEpochSample
}

// FindThread binary-searches a snapshot (sorted ascending by thread id)
// for tid; nil when the thread has no sample this epoch.
func FindThread(threads []ThreadSample, tid int) *ThreadEpochSample {
	lo, hi := 0, len(threads)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if threads[mid].Thread < tid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(threads) && threads[lo].Thread == tid {
		return threads[lo].Sample
	}
	return nil
}

// CoreEpochSample aggregates a core's view of one epoch.
type CoreEpochSample struct {
	BusyNs  int64 // time executing threads
	SleepNs int64 // time in the quiescent state
	Agg     Counters
	// SleepEnergyJ is the energy burnt while power-gated.
	SleepEnergyJ float64
}

// PowerW returns the core's average power over the epoch window
// (busy + sleep time).
func (c *CoreEpochSample) PowerW() float64 {
	tot := c.BusyNs + c.SleepNs
	if tot <= 0 {
		return 0
	}
	return (c.Agg.EnergyJ + c.SleepEnergyJ) / (float64(tot) * 1e-9)
}

// snapBuf is one of the two rotating snapshot output arenas.
type snapBuf struct {
	threads []ThreadSample
	samples []ThreadEpochSample
	perCore []CoreCounters
}

// Bank accumulates samples for one epoch across all cores and threads.
type Bank struct {
	numCores int
	noise    Noise
	r        *rng.Rand

	// Slot store: parallel arrays indexed by slot. A slot belongs to one
	// (thread, core) pair until the thread is released.
	counters  []Counters
	slotCore  []int32
	slotNext  []int32  // next slot in the owning thread's chain, -1 ends
	slotStamp []uint32 // epoch the slot was last written; lazy zeroing

	// free holds released slots sorted descending, so allocSlot pops the
	// lowest index first (the "ordered free-list": deterministic, dense).
	free []int32

	// threadHead maps thread id -> first chain slot (-1 none). Thread
	// ids are expected dense (the kernel assigns them from 0).
	threadHead []int32

	epoch uint32

	cores    []CoreEpochSample // accumulating buffer (coreBufs[active])
	coreBufs [2][]CoreEpochSample
	active   int
	snaps    [2]snapBuf
	snapIdx  int
}

// NewBank creates a counter bank for numCores cores.
func NewBank(numCores int, noise Noise, seed uint64) (*Bank, error) {
	if numCores < 1 {
		return nil, fmt.Errorf("hpc: need at least one core, got %d", numCores)
	}
	if noise.PowerSigma < 0 || noise.PowerSigma > 0.5 {
		return nil, fmt.Errorf("hpc: power sigma %g outside [0, 0.5]", noise.PowerSigma)
	}
	b := &Bank{
		numCores: numCores,
		noise:    noise,
		r:        rng.New(seed),
		epoch:    1,
	}
	b.coreBufs[0] = make([]CoreEpochSample, numCores)
	b.coreBufs[1] = make([]CoreEpochSample, numCores)
	b.cores = b.coreBufs[0]
	return b, nil
}

// slotFor finds or creates the slot for (tid, core), keeping the
// thread's chain sorted ascending by core. threadHead must already
// cover tid.
func (b *Bank) slotFor(tid, core int) int32 {
	prev := int32(-1)
	s := b.threadHead[tid]
	for s >= 0 && int(b.slotCore[s]) < core {
		prev, s = s, b.slotNext[s]
	}
	if s >= 0 && int(b.slotCore[s]) == core {
		return s
	}
	ns := b.allocSlot(core)
	b.slotNext[ns] = s
	if prev < 0 {
		b.threadHead[tid] = ns
	} else {
		b.slotNext[prev] = ns
	}
	return ns
}

// allocSlot takes the lowest free slot, or extends the store.
func (b *Bank) allocSlot(core int) int32 {
	if n := len(b.free); n > 0 {
		s := b.free[n-1]
		b.free = b.free[:n-1]
		b.slotCore[s] = int32(core)
		b.slotStamp[s] = 0
		return s
	}
	s := int32(len(b.counters))
	b.counters = append(b.counters, Counters{})  //sbvet:allow hotpath(slot store grows to the live (thread,core) population once; slots are reused via the free-list)
	b.slotCore = append(b.slotCore, int32(core)) //sbvet:allow hotpath(slot store grows to the live (thread,core) population once; slots are reused via the free-list)
	b.slotNext = append(b.slotNext, -1)          //sbvet:allow hotpath(slot store grows to the live (thread,core) population once; slots are reused via the free-list)
	b.slotStamp = append(b.slotStamp, 0)         //sbvet:allow hotpath(slot store grows to the live (thread,core) population once; slots are reused via the free-list)
	return s
}

// RecordSlice records the counter deltas of one scheduled slice of
// thread tid on core core, applying power-sensor noise. Called by the
// kernel at every context switch (the granularity of Linux's
// schedule(), as in Section 5.1).
func (b *Bank) RecordSlice(tid, core int, c Counters) error {
	if core < 0 || core >= b.numCores {
		return fmt.Errorf("hpc: core %d out of range [0,%d)", core, b.numCores)
	}
	if tid < 0 {
		return fmt.Errorf("hpc: negative thread id %d", tid)
	}
	if c.RunNs < 0 {
		return fmt.Errorf("hpc: negative run time %d", c.RunNs)
	}
	if b.noise.PowerSigma > 0 {
		c.EnergyJ *= 1 + b.noise.PowerSigma*b.r.NormFloat64()
		if c.EnergyJ < 0 {
			c.EnergyJ = 0
		}
	}
	if tid >= len(b.threadHead) {
		b.growThreads(tid + 1)
	}
	s := b.slotFor(tid, core)
	if b.slotStamp[s] != b.epoch {
		b.slotStamp[s] = b.epoch
		b.counters[s] = c
	} else {
		b.counters[s].Add(&c)
	}

	cs := &b.cores[core]
	cs.BusyNs += c.RunNs
	cs.Agg.Add(&c)
	return nil
}

// growThreads extends threadHead to cover n thread ids.
func (b *Bank) growThreads(n int) {
	for len(b.threadHead) < n {
		b.threadHead = append(b.threadHead, -1) //sbvet:allow hotpath(thread table grows to the peak thread-id once over a run)
	}
}

// ReleaseThread returns every slot of an exited thread to the free-list
// (lowest-index-first reuse). Call only after the thread's final epoch
// has been snapshotted: snapshots copy slot data out, so released slots
// never alias a live view.
func (b *Bank) ReleaseThread(tid int) {
	if tid < 0 || tid >= len(b.threadHead) {
		return
	}
	for s := b.threadHead[tid]; s >= 0; {
		next := b.slotNext[s]
		b.slotNext[s] = -1
		b.slotStamp[s] = 0
		b.freeSlot(s)
		s = next
	}
	b.threadHead[tid] = -1
}

// freeSlot inserts s into the descending-sorted free-list.
func (b *Bank) freeSlot(s int32) {
	lo, hi := 0, len(b.free)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.free[mid] > s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b.free = append(b.free, 0) //sbvet:allow hotpath(free-list capacity is bounded by the peak live slot count; growth is amortized and the backing array is reused across epochs)
	copy(b.free[lo+1:], b.free[lo:])
	b.free[lo] = s
}

// RecordSleep accounts quiescent time (and its residual leakage energy)
// on a core.
func (b *Bank) RecordSleep(core int, ns int64, energyJ float64) error {
	if core < 0 || core >= b.numCores {
		return fmt.Errorf("hpc: core %d out of range [0,%d)", core, b.numCores) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
	}
	if ns < 0 {
		return fmt.Errorf("hpc: negative sleep %d", ns) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
	}
	b.cores[core].SleepNs += ns
	b.cores[core].SleepEnergyJ += energyJ
	return nil
}

// Snapshot returns the accumulated epoch samples — threads sorted
// ascending by thread id, each sample's PerCore sorted ascending by
// core — and resets the bank for the next epoch in O(live slots).
//
// The returned views are double-buffered bank scratch: they stay valid
// until the *next* Snapshot call and must not be written. Callers that
// need longer retention (e.g. fault injectors replaying stale samples)
// must copy.
func (b *Bank) Snapshot() ([]ThreadSample, []CoreEpochSample) {
	o := &b.snaps[b.snapIdx]
	b.snapIdx ^= 1
	o.threads = o.threads[:0]
	o.samples = o.samples[:0]
	o.perCore = o.perCore[:0]
	for tid := 0; tid < len(b.threadHead); tid++ {
		start := len(o.perCore)
		for s := b.threadHead[tid]; s >= 0; s = b.slotNext[s] {
			if b.slotStamp[s] == b.epoch {
				o.perCore = append(o.perCore, CoreCounters{Core: int(b.slotCore[s]), C: b.counters[s]}) //sbvet:allow hotpath(double-buffered snapshot arena — capacity reaches the live slot count once and is reused every other epoch)
			}
		}
		if len(o.perCore) > start {
			o.samples = append(o.samples, ThreadEpochSample{PerCore: o.perCore[start:len(o.perCore):len(o.perCore)]}) //sbvet:allow hotpath(double-buffered snapshot arena — capacity reaches the live thread count once and is reused every other epoch)
			o.threads = append(o.threads, ThreadSample{Thread: tid, Sample: &o.samples[len(o.samples)-1]})            //sbvet:allow hotpath(double-buffered snapshot arena — capacity reaches the live thread count once and is reused every other epoch)
		}
	}
	b.epoch++

	cores := b.cores
	b.active ^= 1
	next := b.coreBufs[b.active]
	for i := range next {
		next[i] = CoreEpochSample{}
	}
	b.cores = next
	return o.threads, cores
}

// NumCores returns the bank's core count.
func (b *Bank) NumCores() int { return b.numCores }
