// Package hpc models the on-chip sensing infrastructure of the paper's
// Section 4.1: per-thread hardware performance counters sampled at
// every context switch (cycle, instruction, and performance-degradation
// event counters) and per-core power sensors. A Bank accumulates
// samples over one SmartBalance epoch and yields the measurements the
// estimation phase consumes.
//
// Real sensors are imperfect; the Bank optionally injects multiplicative
// Gaussian noise into the power readings (the counters themselves are
// exact in hardware). This keeps the Fig. 6 prediction-error evaluation
// honest.
package hpc

import (
	"fmt"

	"smartbalance/internal/rng"
)

// Counters is the set of raw per-thread counter deltas collected during
// one scheduled slice: exactly the counters listed in Section 4.1.
type Counters struct {
	RunNs              int64  // execution time on the core
	Instructions       uint64 // I_total
	MemInstructions    uint64 // I_mem (committed loads + stores)
	BranchInstructions uint64 // I_branch
	CyclesBusy         uint64 // cyBusy
	CyclesIdle         uint64 // cyIdle (stalls)
	L1IMisses          uint64
	L1DMisses          uint64
	BranchMispredicts  uint64
	ITLBMisses         uint64
	DTLBMisses         uint64
	EnergyJ            float64 // from the per-core power sensor
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.RunNs += o.RunNs
	c.Instructions += o.Instructions
	c.MemInstructions += o.MemInstructions
	c.BranchInstructions += o.BranchInstructions
	c.CyclesBusy += o.CyclesBusy
	c.CyclesIdle += o.CyclesIdle
	c.L1IMisses += o.L1IMisses
	c.L1DMisses += o.L1DMisses
	c.BranchMispredicts += o.BranchMispredicts
	c.ITLBMisses += o.ITLBMisses
	c.DTLBMisses += o.DTLBMisses
	c.EnergyJ += o.EnergyJ
}

// Derived per-thread quantities (Section 4.1's rates). All are guarded
// against zero denominators.

// IPS returns instructions per second over the accumulated run time.
func (c *Counters) IPS() float64 {
	if c.RunNs <= 0 {
		return 0
	}
	return float64(c.Instructions) / (float64(c.RunNs) * 1e-9)
}

// IPC returns instructions per non-sleep cycle.
func (c *Counters) IPC() float64 {
	tot := c.CyclesBusy + c.CyclesIdle
	if tot == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(tot)
}

// PowerW returns average power over the accumulated run time.
func (c *Counters) PowerW() float64 {
	if c.RunNs <= 0 {
		return 0
	}
	return c.EnergyJ / (float64(c.RunNs) * 1e-9)
}

// MemShare returns I_msh = I_mem / I_total.
func (c *Counters) MemShare() float64 { return ratio(c.MemInstructions, c.Instructions) }

// BranchShare returns I_bsh = I_branch / I_total.
func (c *Counters) BranchShare() float64 { return ratio(c.BranchInstructions, c.Instructions) }

// MissRateL1I returns L1I misses per instruction.
func (c *Counters) MissRateL1I() float64 { return ratio(c.L1IMisses, c.Instructions) }

// MissRateL1D returns L1D misses per memory access.
func (c *Counters) MissRateL1D() float64 { return ratio(c.L1DMisses, c.MemInstructions) }

// MispredictRate returns mispredictions per branch.
func (c *Counters) MispredictRate() float64 { return ratio(c.BranchMispredicts, c.BranchInstructions) }

// MissRateITLB returns ITLB misses per instruction.
func (c *Counters) MissRateITLB() float64 { return ratio(c.ITLBMisses, c.Instructions) }

// MissRateDTLB returns DTLB misses per memory access.
func (c *Counters) MissRateDTLB() float64 { return ratio(c.DTLBMisses, c.MemInstructions) }

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Noise configures sensor imperfection.
type Noise struct {
	// PowerSigma is the relative standard deviation of the power-sensor
	// reading (e.g. 0.02 for 2%). Zero disables noise.
	PowerSigma float64
}

// ThreadEpochSample is the per-thread measurement of one epoch: counters
// accumulated per core the thread ran on (threads can migrate
// mid-epoch under balancers that act asynchronously).
type ThreadEpochSample struct {
	// PerCore maps core id -> accumulated counters on that core.
	PerCore map[int]*Counters
}

// Total returns all counters summed across cores.
func (s *ThreadEpochSample) Total() Counters {
	var t Counters
	for _, c := range s.PerCore {
		t.Add(c)
	}
	return t
}

// DominantCore returns the core the thread spent most run time on
// during the epoch and the counters accumulated there. ok is false when
// the thread never ran.
func (s *ThreadEpochSample) DominantCore() (core int, c *Counters, ok bool) {
	best := int64(-1)
	for id, cc := range s.PerCore { //sbvet:allow hotpath(tiny map — one entry per core the thread touched this epoch; the id tie-break below keeps the pick order-independent)
		if cc.RunNs > best || (cc.RunNs == best && ok && id < core) {
			best = cc.RunNs
			core, c, ok = id, cc, true
		}
	}
	return core, c, ok
}

// CoreEpochSample aggregates a core's view of one epoch.
type CoreEpochSample struct {
	BusyNs  int64 // time executing threads
	SleepNs int64 // time in the quiescent state
	Agg     Counters
	// SleepEnergyJ is the energy burnt while power-gated.
	SleepEnergyJ float64
}

// PowerW returns the core's average power over the epoch window
// (busy + sleep time).
func (c *CoreEpochSample) PowerW() float64 {
	tot := c.BusyNs + c.SleepNs
	if tot <= 0 {
		return 0
	}
	return (c.Agg.EnergyJ + c.SleepEnergyJ) / (float64(tot) * 1e-9)
}

// Bank accumulates samples for one epoch across all cores and threads.
type Bank struct {
	numCores int
	noise    Noise
	r        *rng.Rand

	threads map[int]*ThreadEpochSample
	cores   []CoreEpochSample
}

// NewBank creates a counter bank for numCores cores.
func NewBank(numCores int, noise Noise, seed uint64) (*Bank, error) {
	if numCores < 1 {
		return nil, fmt.Errorf("hpc: need at least one core, got %d", numCores)
	}
	if noise.PowerSigma < 0 || noise.PowerSigma > 0.5 {
		return nil, fmt.Errorf("hpc: power sigma %g outside [0, 0.5]", noise.PowerSigma)
	}
	return &Bank{
		numCores: numCores,
		noise:    noise,
		r:        rng.New(seed),
		threads:  make(map[int]*ThreadEpochSample),
		cores:    make([]CoreEpochSample, numCores),
	}, nil
}

// RecordSlice records the counter deltas of one scheduled slice of
// thread tid on core core, applying power-sensor noise. Called by the
// kernel at every context switch (the granularity of Linux's
// schedule(), as in Section 5.1).
func (b *Bank) RecordSlice(tid, core int, c Counters) error {
	if core < 0 || core >= b.numCores {
		return fmt.Errorf("hpc: core %d out of range [0,%d)", core, b.numCores)
	}
	if c.RunNs < 0 {
		return fmt.Errorf("hpc: negative run time %d", c.RunNs)
	}
	if b.noise.PowerSigma > 0 {
		c.EnergyJ *= 1 + b.noise.PowerSigma*b.r.NormFloat64()
		if c.EnergyJ < 0 {
			c.EnergyJ = 0
		}
	}
	ts := b.threads[tid]
	if ts == nil {
		ts = &ThreadEpochSample{PerCore: make(map[int]*Counters)}
		b.threads[tid] = ts
	}
	cc := ts.PerCore[core]
	if cc == nil {
		cc = &Counters{}
		ts.PerCore[core] = cc
	}
	cc.Add(&c)

	cs := &b.cores[core]
	cs.BusyNs += c.RunNs
	cs.Agg.Add(&c)
	return nil
}

// RecordSleep accounts quiescent time (and its residual leakage energy)
// on a core.
func (b *Bank) RecordSleep(core int, ns int64, energyJ float64) error {
	if core < 0 || core >= b.numCores {
		return fmt.Errorf("hpc: core %d out of range [0,%d)", core, b.numCores) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
	}
	if ns < 0 {
		return fmt.Errorf("hpc: negative sleep %d", ns) //sbvet:allow hotpath(diagnostic formats only on the rejected-input path)
	}
	b.cores[core].SleepNs += ns
	b.cores[core].SleepEnergyJ += energyJ
	return nil
}

// Snapshot returns the accumulated epoch samples and resets the bank
// for the next epoch. The returned maps/slices are owned by the caller.
func (b *Bank) Snapshot() (map[int]*ThreadEpochSample, []CoreEpochSample) {
	threads := b.threads
	cores := b.cores
	b.threads = make(map[int]*ThreadEpochSample)  //sbvet:allow hotpath(ownership transfer — the snapshot hands last epoch's containers to the caller, so the bank must start fresh ones)
	b.cores = make([]CoreEpochSample, b.numCores) //sbvet:allow hotpath(ownership transfer — the snapshot hands last epoch's containers to the caller, so the bank must start fresh ones)
	return threads, cores
}

// NumCores returns the bank's core count.
func (b *Bank) NumCores() int { return b.numCores }
