package hpc

import (
	"math"
	"testing"
)

func sampleCounters() Counters {
	return Counters{
		RunNs:              1e6,
		Instructions:       2e6,
		MemInstructions:    6e5,
		BranchInstructions: 2e5,
		CyclesBusy:         1e6,
		CyclesIdle:         5e5,
		L1IMisses:          1000,
		L1DMisses:          30000,
		BranchMispredicts:  4000,
		ITLBMisses:         200,
		DTLBMisses:         1200,
		EnergyJ:            1.41e-3,
	}
}

func TestCountersAdd(t *testing.T) {
	a := sampleCounters()
	b := sampleCounters()
	a.Add(&b)
	if a.Instructions != 4e6 || a.RunNs != 2e6 || a.EnergyJ != 2.82e-3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestDerivedRates(t *testing.T) {
	c := sampleCounters()
	if got := c.IPS(); math.Abs(got-2e9) > 1 {
		t.Fatalf("IPS = %g", got)
	}
	if got := c.IPC(); math.Abs(got-2e6/1.5e6) > 1e-9 {
		t.Fatalf("IPC = %g", got)
	}
	if got := c.PowerW(); math.Abs(got-1.41) > 1e-9 {
		t.Fatalf("PowerW = %g", got)
	}
	if got := c.MemShare(); got != 0.3 {
		t.Fatalf("MemShare = %g", got)
	}
	if got := c.BranchShare(); got != 0.1 {
		t.Fatalf("BranchShare = %g", got)
	}
	if got := c.MissRateL1D(); got != 0.05 {
		t.Fatalf("MissRateL1D = %g", got)
	}
	if got := c.MispredictRate(); got != 0.02 {
		t.Fatalf("MispredictRate = %g", got)
	}
	if got := c.MissRateL1I(); got != 1000.0/2e6 {
		t.Fatalf("MissRateL1I = %g", got)
	}
	if got := c.MissRateITLB(); got != 200.0/2e6 {
		t.Fatalf("MissRateITLB = %g", got)
	}
	if got := c.MissRateDTLB(); got != 1200.0/6e5 {
		t.Fatalf("MissRateDTLB = %g", got)
	}
}

func TestDerivedRatesZeroSafe(t *testing.T) {
	var c Counters
	for name, f := range map[string]func() float64{
		"IPS": c.IPS, "IPC": c.IPC, "PowerW": c.PowerW,
		"MemShare": c.MemShare, "MissRateL1D": c.MissRateL1D,
		"MispredictRate": c.MispredictRate,
	} {
		if v := f(); v != 0 {
			t.Errorf("%s on zero counters = %g", name, v)
		}
	}
}

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(0, Noise{}, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewBank(4, Noise{PowerSigma: -0.1}, 1); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := NewBank(4, Noise{PowerSigma: 0.9}, 1); err == nil {
		t.Fatal("huge sigma accepted")
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	b, err := NewBank(2, Noise{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RecordSlice(7, 0, sampleCounters()); err != nil {
		t.Fatal(err)
	}
	if err := b.RecordSlice(7, 0, sampleCounters()); err != nil {
		t.Fatal(err)
	}
	if err := b.RecordSlice(8, 1, sampleCounters()); err != nil {
		t.Fatal(err)
	}
	if err := b.RecordSleep(1, 5e5, 1e-6); err != nil {
		t.Fatal(err)
	}
	threads, cores := b.Snapshot()
	if len(threads) != 2 {
		t.Fatalf("%d threads", len(threads))
	}
	t7 := FindThread(threads, 7).Total()
	if t7.Instructions != 4e6 {
		t.Fatalf("thread 7 instructions %d", t7.Instructions)
	}
	if cores[0].BusyNs != 2e6 || cores[1].BusyNs != 1e6 {
		t.Fatalf("core busy %d/%d", cores[0].BusyNs, cores[1].BusyNs)
	}
	if cores[1].SleepNs != 5e5 || cores[1].SleepEnergyJ != 1e-6 {
		t.Fatal("sleep not recorded")
	}
	// Snapshot resets.
	threads2, cores2 := b.Snapshot()
	if len(threads2) != 0 || cores2[0].BusyNs != 0 {
		t.Fatal("Snapshot did not reset the bank")
	}
}

func TestRecordSliceValidation(t *testing.T) {
	b, _ := NewBank(2, Noise{}, 1)
	if err := b.RecordSlice(1, 5, sampleCounters()); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if err := b.RecordSlice(1, -1, sampleCounters()); err == nil {
		t.Fatal("negative core accepted")
	}
	c := sampleCounters()
	c.RunNs = -1
	if err := b.RecordSlice(1, 0, c); err == nil {
		t.Fatal("negative run time accepted")
	}
	if err := b.RecordSleep(9, 1, 0); err == nil {
		t.Fatal("sleep on bad core accepted")
	}
	if err := b.RecordSleep(0, -1, 0); err == nil {
		t.Fatal("negative sleep accepted")
	}
}

func TestDominantCore(t *testing.T) {
	b, _ := NewBank(3, Noise{}, 1)
	short := sampleCounters()
	short.RunNs = 1e5
	long := sampleCounters()
	long.RunNs = 9e5
	_ = b.RecordSlice(1, 0, short)
	_ = b.RecordSlice(1, 2, long)
	threads, _ := b.Snapshot()
	core, c, ok := FindThread(threads, 1).DominantCore()
	if !ok || core != 2 {
		t.Fatalf("dominant core = %d, ok=%v", core, ok)
	}
	if c.RunNs != 9e5 {
		t.Fatalf("dominant counters RunNs = %d", c.RunNs)
	}
	empty := &ThreadEpochSample{}
	if _, _, ok := empty.DominantCore(); ok {
		t.Fatal("empty sample should report !ok")
	}
}

func TestPowerNoiseApplied(t *testing.T) {
	clean, _ := NewBank(1, Noise{}, 1)
	noisy, _ := NewBank(1, Noise{PowerSigma: 0.05}, 1)
	var cleanE, noisyE float64
	n := 500
	for i := 0; i < n; i++ {
		_ = clean.RecordSlice(1, 0, sampleCounters())
		_ = noisy.RecordSlice(1, 0, sampleCounters())
	}
	tc, _ := clean.Snapshot()
	tn, _ := noisy.Snapshot()
	cleanE = FindThread(tc, 1).Total().EnergyJ
	noisyE = FindThread(tn, 1).Total().EnergyJ
	if math.Abs(cleanE-float64(n)*1.41e-3) > 1e-9 {
		t.Fatalf("clean energy %g", cleanE)
	}
	if noisyE == cleanE {
		t.Fatal("noise had no effect")
	}
	// Unbiased: the mean should stay within ~1% over 500 samples at 5%.
	if math.Abs(noisyE-cleanE)/cleanE > 0.01 {
		t.Fatalf("noise bias too large: %g vs %g", noisyE, cleanE)
	}
}

func TestNoiseDeterministicUnderSeed(t *testing.T) {
	a, _ := NewBank(1, Noise{PowerSigma: 0.05}, 42)
	b, _ := NewBank(1, Noise{PowerSigma: 0.05}, 42)
	_ = a.RecordSlice(1, 0, sampleCounters())
	_ = b.RecordSlice(1, 0, sampleCounters())
	ta, _ := a.Snapshot()
	tb, _ := b.Snapshot()
	if FindThread(ta, 1).Total().EnergyJ != FindThread(tb, 1).Total().EnergyJ {
		t.Fatal("same seed produced different noise")
	}
}

func TestCoreEpochPower(t *testing.T) {
	c := CoreEpochSample{
		BusyNs:       5e8,
		SleepNs:      5e8,
		Agg:          Counters{EnergyJ: 1.0},
		SleepEnergyJ: 0.01,
	}
	if got := c.PowerW(); math.Abs(got-1.01) > 1e-12 {
		t.Fatalf("core power %g, want 1.01", got)
	}
	var zero CoreEpochSample
	if zero.PowerW() != 0 {
		t.Fatal("zero-window power should be 0")
	}
}

func TestHighSigmaNoiseNeverNegative(t *testing.T) {
	// Regression: at sigma = 0.5 (the maximum NewBank accepts) roughly
	// 2.3% of Gaussian draws land below -1/sigma, which would flip the
	// multiplier 1 + sigma*N negative and yield negative energy (and so
	// negative power and nonsense IPS/W) without the clamp.
	b, err := NewBank(1, Noise{PowerSigma: 0.5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	clamped := 0
	for i := 0; i < n; i++ {
		if err := b.RecordSlice(1, 0, sampleCounters()); err != nil {
			t.Fatal(err)
		}
		threads, cores := b.Snapshot()
		e := FindThread(threads, 1).Total().EnergyJ
		if e < 0 {
			t.Fatalf("sample %d: negative energy %g", i, e)
		}
		if cores[0].Agg.EnergyJ < 0 {
			t.Fatalf("sample %d: negative core energy %g", i, cores[0].Agg.EnergyJ)
		}
		if e == 0 {
			clamped++
		}
	}
	// The clamp must actually have fired: ~2.3% of 5000 draws.
	if clamped == 0 {
		t.Fatal("no sample hit the zero clamp at sigma=0.5; test is vacuous")
	}
	if frac := float64(clamped) / n; frac > 0.1 {
		t.Fatalf("clamped fraction %g implausibly high", frac)
	}
}
