package hpc

import (
	"sort"
	"testing"
)

// Regression tests for the flat SoA slot store (DESIGN.md §12): slot
// reuse through the ordered free-list, snapshot ordering under thread
// churn, and the steady-state allocation contract at 1024-core scale.

// liveSlots walks every thread chain and returns the set of slot
// indices currently owned.
func liveSlots(b *Bank) []int32 {
	var out []int32
	for tid := range b.threadHead {
		for s := b.threadHead[tid]; s >= 0; s = b.slotNext[s] {
			out = append(out, s)
		}
	}
	return out
}

// TestSlotReuseAfterRelease pins the ordered free-list contract:
// releasing a thread returns its slots, and the next allocations reuse
// exactly those indices lowest-first, so the store stays dense and slot
// assignment is deterministic.
func TestSlotReuseAfterRelease(t *testing.T) {
	b, err := NewBank(4, Noise{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Threads 0..3 each touch cores 0 and 1: slots 0..7 in order.
	for tid := 0; tid < 4; tid++ {
		for core := 0; core < 2; core++ {
			if err := b.RecordSlice(tid, core, Counters{RunNs: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := len(b.counters); got != 8 {
		t.Fatalf("slot store has %d slots, want 8", got)
	}
	b.Snapshot() // retire the epoch so release is legal

	// Release thread 1 (slots 2,3) then thread 0 (slots 0,1).
	b.ReleaseThread(1)
	b.ReleaseThread(0)
	if got := len(b.free); got != 4 {
		t.Fatalf("free-list has %d entries, want 4", got)
	}

	// A new thread's slots must reuse the lowest freed indices first.
	for core := 0; core < 3; core++ {
		if err := b.RecordSlice(9, core, Counters{RunNs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int32
	for s := b.threadHead[9]; s >= 0; s = b.slotNext[s] {
		got = append(got, s)
	}
	want := []int32{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("thread 9 owns slots %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("thread 9 owns slots %v, want lowest-first reuse %v", got, want)
		}
	}
	// No growth: the store still has 8 slots.
	if got := len(b.counters); got != 8 {
		t.Fatalf("slot store grew to %d slots, want 8 (reuse)", got)
	}
}

// TestSnapshotSortedUnderChurn spawns, records, and releases threads in
// adversarial orders across epochs and verifies every snapshot is
// sorted ascending by thread id with each PerCore sorted ascending by
// core id — the ordering contract everything downstream (FindThread,
// the sense loop, fault filters) relies on.
func TestSnapshotSortedUnderChurn(t *testing.T) {
	const cores = 8
	b, err := NewBank(cores, Noise{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic pseudo-random stream without package rand.
	next := uint64(0x9E3779B97F4A7C15)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(n))
	}
	live := map[int]bool{}
	for epoch := 0; epoch < 20; epoch++ {
		// Mutate the population: admit and retire a few threads.
		for i := 0; i < 6; i++ {
			tid := rnd(40)
			if live[tid] && rnd(3) == 0 {
				b.ReleaseThread(tid)
				delete(live, tid)
			} else {
				live[tid] = true
			}
		}
		// Record slices for the live threads on scattered cores.
		for tid := range live {
			for i := 0; i < 1+rnd(3); i++ {
				if err := b.RecordSlice(tid, rnd(cores), Counters{RunNs: int64(1 + rnd(100))}); err != nil {
					t.Fatal(err)
				}
			}
		}
		threads, _ := b.Snapshot()
		if !sort.SliceIsSorted(threads, func(i, j int) bool { return threads[i].Thread < threads[j].Thread }) {
			t.Fatalf("epoch %d: snapshot threads not sorted: %v", epoch, threadIDs(threads))
		}
		for _, ts := range threads {
			pc := ts.Sample.PerCore
			if !sort.SliceIsSorted(pc, func(i, j int) bool { return pc[i].Core < pc[j].Core }) {
				t.Fatalf("epoch %d: thread %d PerCore not sorted by core", epoch, ts.Thread)
			}
			for i := 1; i < len(pc); i++ {
				if pc[i].Core == pc[i-1].Core {
					t.Fatalf("epoch %d: thread %d has duplicate core %d", epoch, ts.Thread, pc[i].Core)
				}
			}
		}
		// FindThread agrees with linear search for every live thread.
		for tid := range live {
			want := false
			for _, ts := range threads {
				if ts.Thread == tid {
					want = true
				}
			}
			if got := FindThread(threads, tid) != nil; got != want {
				t.Fatalf("epoch %d: FindThread(%d)=%v, linear=%v", epoch, tid, got, want)
			}
		}
	}
	// Dangling-slot audit: live chains and the free-list partition the
	// store with no overlap.
	seen := map[int32]bool{}
	for _, s := range liveSlots(b) {
		if seen[s] {
			t.Fatalf("slot %d owned twice", s)
		}
		seen[s] = true
	}
	for _, s := range b.free {
		if seen[s] {
			t.Fatalf("slot %d both live and free", s)
		}
		seen[s] = true
	}
	if len(seen) != len(b.counters) {
		t.Fatalf("%d slots accounted, store has %d", len(seen), len(b.counters))
	}
}

func threadIDs(threads []ThreadSample) []int {
	ids := make([]int, len(threads))
	for i, ts := range threads {
		ids[i] = ts.Thread
	}
	return ids
}

// TestBankSteadyStateAllocFree pins the SoA bank's allocation contract
// at 1024-core scale: once slot storage and both snapshot arenas reach
// their high-water mark, a full epoch of recording plus Snapshot
// allocates nothing.
func TestBankSteadyStateAllocFree(t *testing.T) {
	const cores, threads = 1024, 4096
	b, err := NewBank(cores, Noise{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	epoch := func() {
		for tid := 0; tid < threads; tid++ {
			if err := b.RecordSlice(tid, tid%cores, Counters{RunNs: 10, Instructions: 100}); err != nil {
				t.Fatal(err)
			}
		}
		b.Snapshot()
	}
	// Two warm epochs fill the slot store and both double-buffered
	// arenas.
	epoch()
	epoch()
	if allocs := testing.AllocsPerRun(3, epoch); allocs != 0 {
		t.Fatalf("steady-state epoch allocates %.1f times, want 0", allocs)
	}
}
