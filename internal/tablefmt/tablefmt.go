// Package tablefmt renders the experiment harness's result tables as
// aligned plain text and as CSV. The smartbench tool prints one table
// per paper table/figure, so a tiny dedicated renderer keeps output
// uniform across experiments.
package tablefmt

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-oriented text table. The zero value is not
// usable; construct with New.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded
// with empty cells; long rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowValues formats arbitrary values into cells: floats with 4
// significant digits, everything else via %v.
func (t *Table) AddRowValues(vals ...any) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			cells[i] = FormatFloat(x)
		case float32:
			cells[i] = FormatFloat(float64(x))
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// AddNote appends a footnote line printed below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows reports how many data rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// FormatFloat renders a float compactly: 4 significant digits, plain
// notation for the magnitudes the harness produces.
func FormatFloat(x float64) string {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	switch {
	case x == 0: //sbvet:allow floateq(renders the exact zero value; near-zeros must keep their magnitude)
		return "0"
	case ax >= 1e7 || ax < 1e-3:
		return strconv.FormatFloat(x, 'e', 3, 64)
	case ax >= 100:
		return strconv.FormatFloat(x, 'f', 1, 64)
	case ax >= 10:
		return strconv.FormatFloat(x, 'f', 2, 64)
	default:
		return strconv.FormatFloat(x, 'f', 3, 64)
	}
}

// Render writes the aligned text form to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.title)))
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		sb.WriteString("  note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string, ignoring write errors (none are
// possible with a strings.Builder).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes applied only
// when needed). The title and notes are omitted; CSV output is meant for
// machine consumption.
func (t *Table) RenderCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeLine(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
