package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Bars is a horizontal ASCII bar chart — the textual analogue of the
// paper's bar figures (Fig. 4 and Fig. 5 are per-workload bar charts).
type Bars struct {
	Title  string
	Labels []string
	Values []float64
	// Unit is appended to each value (e.g. "x" for gain factors).
	Unit string
	// Baseline, when non-zero, draws a marker at that value (e.g. 1.0
	// for "parity with the baseline balancer").
	Baseline float64
}

// Valid reports whether the chart is renderable.
func (b *Bars) Valid() bool {
	return len(b.Labels) > 0 && len(b.Labels) == len(b.Values)
}

// Render writes the chart with bars scaled to width characters for the
// largest value. width must be at least 10.
func (b *Bars) Render(w io.Writer, width int) error {
	if !b.Valid() {
		return fmt.Errorf("tablefmt: unrenderable bar chart (%d labels, %d values)",
			len(b.Labels), len(b.Values))
	}
	if width < 10 {
		width = 10
	}
	maxVal := 0.0
	labelW := 0
	for i, v := range b.Values {
		if v > maxVal {
			maxVal = v
		}
		if len(b.Labels[i]) > labelW {
			labelW = len(b.Labels[i])
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title)
		sb.WriteByte('\n')
	}
	markerCol := -1
	if b.Baseline > 0 && b.Baseline <= maxVal {
		markerCol = int(b.Baseline / maxVal * float64(width))
	}
	for i, v := range b.Values {
		n := int(v / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		bar := []rune(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if markerCol >= 0 && markerCol < len(bar) && bar[markerCol] == ' ' {
			bar[markerCol] = '|'
		}
		fmt.Fprintf(&sb, "  %-*s %s %.2f%s\n", labelW, b.Labels[i], string(bar), v, b.Unit)
	}
	if b.Baseline > 0 {
		fmt.Fprintf(&sb, "  %-*s %s\n", labelW, "", strings.Repeat("-", width)+
			fmt.Sprintf("  | = baseline %.2f%s", b.Baseline, b.Unit))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders with a default width of 40.
func (b *Bars) String() string {
	var sb strings.Builder
	_ = b.Render(&sb, 40)
	return sb.String()
}
