package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + underline + header + separator + 2 rows
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// Column boundaries must align: "value" column starts at the same
	// offset in every data line.
	headerIdx := strings.Index(lines[2], "value")
	row2Idx := strings.Index(lines[5], "22")
	if headerIdx != row2Idx {
		t.Fatalf("columns misaligned: header at %d, row at %d\n%s", headerIdx, row2Idx, out)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "extra-ignored")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	if strings.Contains(out, "extra-ignored") {
		t.Fatal("over-wide row not truncated")
	}
}

func TestAddRowValuesFormatsFloats(t *testing.T) {
	tb := New("", "v")
	tb.AddRowValues(3.14159)
	tb.AddRowValues(42)
	tb.AddRowValues("str")
	out := tb.String()
	if !strings.Contains(out, "3.142") {
		t.Fatalf("float not formatted to 4 sig digits:\n%s", out)
	}
	if !strings.Contains(out, "42") || !strings.Contains(out, "str") {
		t.Fatalf("non-float values mangled:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1.23456, "1.235"},
		{12.3456, "12.35"},
		{123.456, "123.5"},
		{0.0001234, "1.234e-04"},
		{12345678, "1.235e+07"},
		{-5.5, "-5.500"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNotes(t *testing.T) {
	tb := New("T", "c")
	tb.AddRow("1")
	tb.AddNote("epoch = %d ms", 60)
	if !strings.Contains(tb.String(), "note: epoch = 60 ms") {
		t.Fatal("note missing")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("Title Is Omitted", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow(`with"quote`, "a,b")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "name,value\nplain,1\n\"with\"\"quote\",\"a,b\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestEmptyTableRenders(t *testing.T) {
	tb := New("Empty", "a", "b")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("headers missing from empty table:\n%s", out)
	}
}

func TestBarsRender(t *testing.T) {
	b := &Bars{
		Title:    "demo",
		Labels:   []string{"a", "longer"},
		Values:   []float64{2, 4},
		Unit:     "x",
		Baseline: 1,
	}
	out := b.String()
	for _, frag := range []string{"demo", "a", "longer", "2.00x", "4.00x", "baseline 1.00x"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("bars missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The largest value fills the width; the half value fills half.
	full := strings.Count(lines[2], "#")
	half := strings.Count(lines[1], "#")
	if full != 40 {
		t.Fatalf("max bar %d chars, want 40", full)
	}
	if half < 18 || half > 22 {
		t.Fatalf("half bar %d chars, want ~20", half)
	}
	// Baseline marker present in the shorter bar's whitespace.
	if !strings.Contains(out, "|") {
		t.Fatal("baseline marker missing")
	}
}

func TestBarsValidation(t *testing.T) {
	bad := &Bars{Labels: []string{"a"}, Values: []float64{1, 2}}
	if bad.Valid() {
		t.Fatal("mismatched chart reported valid")
	}
	var sb strings.Builder
	if err := bad.Render(&sb, 40); err == nil {
		t.Fatal("mismatched chart rendered")
	}
	empty := &Bars{}
	if err := empty.Render(&sb, 40); err == nil {
		t.Fatal("empty chart rendered")
	}
	// Tiny width is clamped, zero values tolerated.
	ok := &Bars{Labels: []string{"z"}, Values: []float64{0}}
	if err := ok.Render(&sb, 1); err != nil {
		t.Fatal(err)
	}
}
