// Package regress implements ordinary least-squares linear regression,
// the tool the paper uses twice: to train the cross-core IPC predictor
// coefficient matrix Θ (Eq. 8, "we employ standard linear regression
// using the least squares method") and the per-core-type power fit
// p = α₁·ipc + α₀ (Eq. 9, "obtained from offline profiling").
package regress

import (
	"errors"
	"fmt"
	"math"

	"smartbalance/internal/mat"
)

// ErrBadData is returned when the training set is unusable (empty,
// ragged, or fewer samples than features).
var ErrBadData = errors.New("regress: unusable training data")

// Model is a fitted linear model y ~= Coef · x. If the caller wants an
// intercept it appends a constant-1 feature, which is the convention
// used throughout this repository (it mirrors the "const" column of the
// paper's Table 4).
type Model struct {
	// Coef holds one weight per feature.
	Coef []float64
	// R2 is the coefficient of determination on the training set.
	R2 float64
	// RMSE is the root-mean-square training error.
	RMSE float64
	// MeanAbsPct is the mean absolute percentage error on the training
	// set, ignoring targets with magnitude below 1e-9. This is the error
	// measure reported in the paper's Fig. 6.
	MeanAbsPct float64
	// N is the number of training samples.
	N int
}

// Fit computes the least-squares solution for the design matrix rows
// (one sample per entry, one feature per column) against targets y.
func Fit(rows [][]float64, y []float64) (*Model, error) {
	if len(rows) == 0 || len(rows) != len(y) {
		return nil, ErrBadData
	}
	p := len(rows[0])
	if p == 0 || len(rows) < p {
		return nil, ErrBadData
	}
	for _, r := range rows {
		if len(r) != p {
			return nil, ErrBadData
		}
	}
	a := mat.FromRows(rows)
	coef, err := mat.LeastSquares(a, y)
	if err != nil {
		if errors.Is(err, mat.ErrSingular) {
			// Fall back to ridge-regularised normal equations: the
			// training corpora occasionally contain a collinear feature
			// (e.g. a TLB miss-rate column that is identically zero for a
			// core type, as in the zero entries of the paper's Table 4).
			coef, err = ridge(a, y, 1e-6)
		}
		if err != nil {
			return nil, fmt.Errorf("regress: %w", err)
		}
	}
	m := &Model{Coef: coef, N: len(y)}
	m.computeStats(rows, y)
	return m, nil
}

// ridge solves (A^T A + λI) x = A^T b.
func ridge(a *mat.Matrix, y []float64, lambda float64) ([]float64, error) {
	at := a.T()
	ata, err := mat.Mul(at, a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ata.Rows(); i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	aty, err := at.MulVec(y)
	if err != nil {
		return nil, err
	}
	return mat.Solve(ata, aty)
}

// Predict evaluates the model on a single feature vector.
func (m *Model) Predict(x []float64) float64 {
	return mat.Dot(m.Coef, x)
}

// computeStats fills R2, RMSE, and MeanAbsPct from the training set.
func (m *Model) computeStats(rows [][]float64, y []float64) {
	n := float64(len(y))
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= n

	var ssRes, ssTot, sumSq, sumPct float64
	nPct := 0
	for i, r := range rows {
		pred := m.Predict(r)
		d := y[i] - pred
		ssRes += d * d
		t := y[i] - meanY
		ssTot += t * t
		sumSq += d * d
		if math.Abs(y[i]) > 1e-9 {
			sumPct += math.Abs(d / y[i])
			nPct++
		}
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1
	}
	m.RMSE = math.Sqrt(sumSq / n)
	if nPct > 0 {
		m.MeanAbsPct = 100 * sumPct / float64(nPct)
	}
}

// Evaluate returns the mean absolute percentage error of the model on a
// held-out set, the paper's Fig. 6 metric. Targets below 1e-9 in
// magnitude are skipped.
func (m *Model) Evaluate(rows [][]float64, y []float64) (mape float64, err error) {
	if len(rows) != len(y) || len(rows) == 0 {
		return 0, ErrBadData
	}
	sum := 0.0
	n := 0
	for i, r := range rows {
		if len(r) != len(m.Coef) {
			return 0, ErrBadData
		}
		if math.Abs(y[i]) <= 1e-9 {
			continue
		}
		sum += math.Abs((y[i] - m.Predict(r)) / y[i])
		n++
	}
	if n == 0 {
		return 0, ErrBadData
	}
	return 100 * sum / float64(n), nil
}

// SimpleFit fits the one-dimensional affine model y = a1*x + a0 and
// returns (a1, a0). It is the Eq. 9 power fit. It returns ErrBadData for
// fewer than two samples or a degenerate x.
func SimpleFit(x, y []float64) (a1, a0 float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, ErrBadData
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, 0, ErrBadData
	}
	a1 = (n*sxy - sx*sy) / den
	a0 = (sy - a1*sx) / n
	return a1, a0, nil
}
