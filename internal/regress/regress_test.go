package regress

import (
	"math"
	"testing"
	"testing/quick"

	"smartbalance/internal/rng"
)

func TestFitRecoversExactLinearModel(t *testing.T) {
	// y = 3*x1 - 2*x2 + 0.5 with a constant-1 feature.
	r := rng.New(1)
	var rows [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x1 := r.Float64() * 10
		x2 := r.Float64() * 10
		rows = append(rows, []float64{x1, x2, 1})
		y = append(y, 3*x1-2*x2+0.5)
	}
	m, err := Fit(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 0.5}
	for i, w := range want {
		if math.Abs(m.Coef[i]-w) > 1e-9 {
			t.Fatalf("coef[%d] = %g, want %g", i, m.Coef[i], w)
		}
	}
	if m.R2 < 0.999999 {
		t.Fatalf("R2 = %g on noise-free data", m.R2)
	}
	if m.RMSE > 1e-9 {
		t.Fatalf("RMSE = %g on noise-free data", m.RMSE)
	}
}

func TestFitWithNoiseIsUnbiased(t *testing.T) {
	r := rng.New(2)
	var rows [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		x := r.Float64() * 4
		rows = append(rows, []float64{x, 1})
		y = append(y, 2.5*x+1+r.NormFloat64()*0.1)
	}
	m, err := Fit(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2.5) > 0.02 || math.Abs(m.Coef[1]-1) > 0.03 {
		t.Fatalf("noisy fit coef = %v", m.Coef)
	}
	if m.R2 < 0.98 {
		t.Fatalf("R2 = %g", m.R2)
	}
}

func TestFitRejectsBadData(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("fewer samples than features accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFitCollinearFallsBackToRidge(t *testing.T) {
	// Feature 2 is identically zero (like Table 4's itlb column for Big
	// sources); QR reports singular and the ridge path must kick in.
	r := rng.New(3)
	var rows [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		x := r.Float64() * 5
		rows = append(rows, []float64{x, 0, 1})
		y = append(y, 4*x+2)
	}
	m, err := Fit(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-4) > 1e-3 || math.Abs(m.Coef[2]-2) > 1e-2 {
		t.Fatalf("ridge fallback coef = %v", m.Coef)
	}
	if math.Abs(m.Predict([]float64{2, 0, 1})-10) > 0.05 {
		t.Fatalf("ridge prediction off: %g", m.Predict([]float64{2, 0, 1}))
	}
}

func TestEvaluateMAPE(t *testing.T) {
	m := &Model{Coef: []float64{2, 0}}
	rows := [][]float64{{1, 1}, {2, 1}, {3, 1}}
	y := []float64{2.2, 3.6, 6.6} // errors: +10%, -10%, +10% vs predictions 2,4,6
	mape, err := m.Evaluate(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	// |2-2.2|/2.2 + |4-3.6|/3.6 + |6-6.6|/6.6 ≈ 0.0909+0.1111+0.0909
	want := 100 * (0.2/2.2 + 0.4/3.6 + 0.6/6.6) / 3
	if math.Abs(mape-want) > 1e-9 {
		t.Fatalf("MAPE = %g, want %g", mape, want)
	}
}

func TestEvaluateSkipsNearZeroTargets(t *testing.T) {
	m := &Model{Coef: []float64{1}}
	if _, err := m.Evaluate([][]float64{{1}}, []float64{0}); err == nil {
		t.Fatal("all-zero targets should be ErrBadData")
	}
}

func TestEvaluateErrors(t *testing.T) {
	m := &Model{Coef: []float64{1, 2}}
	if _, err := m.Evaluate(nil, nil); err == nil {
		t.Fatal("empty eval set accepted")
	}
	if _, err := m.Evaluate([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("feature-width mismatch accepted")
	}
}

func TestSimpleFitKnown(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	a1, a0, err := SimpleFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1-2) > 1e-12 || math.Abs(a0-1) > 1e-12 {
		t.Fatalf("SimpleFit = (%g, %g)", a1, a0)
	}
}

func TestSimpleFitDegenerate(t *testing.T) {
	if _, _, err := SimpleFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, _, err := SimpleFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
	if _, _, err := SimpleFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSimpleFitProperty(t *testing.T) {
	// For any true (a1, a0) and >= 3 distinct points, recovery is exact.
	f := func(a1i, a0i int8) bool {
		a1 := float64(a1i) / 8
		a0 := float64(a0i) / 8
		x := []float64{0, 1, 2, 5, 9}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a1*x[i] + a0
		}
		g1, g0, err := SimpleFit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(g1-a1) < 1e-9 && math.Abs(g0-a0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitPredictConsistency(t *testing.T) {
	// Predict on a training row should equal the fitted value used in
	// the stats computation (internal consistency).
	rows := [][]float64{{1, 1}, {2, 1}, {4, 1}, {8, 1}}
	y := []float64{3, 5, 9, 17}
	m, err := Fit(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if math.Abs(m.Predict(r)-y[i]) > 1e-9 {
			t.Fatalf("predict(%v) = %g, want %g", r, m.Predict(r), y[i])
		}
	}
	if m.MeanAbsPct > 1e-9 {
		t.Fatalf("MeanAbsPct = %g on perfect fit", m.MeanAbsPct)
	}
}

func BenchmarkFit64x10(b *testing.B) {
	r := rng.New(4)
	rows := make([][]float64, 64)
	y := make([]float64, 64)
	for i := range rows {
		rows[i] = make([]float64, 10)
		for j := range rows[i] {
			rows[i][j] = r.Float64()
		}
		y[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(rows, y); err != nil {
			b.Fatal(err)
		}
	}
}
